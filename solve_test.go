package obddopt

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestSolveDefaultMatchesLegacy pins the migration contract: a bare
// Solve call returns the same optimal cost as the deprecated
// OptimalOrdering, for both rules.
func TestSolveDefaultMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, rule := range []Rule{OBDD, ZDD} {
		for i := 0; i < 4; i++ {
			tt := RandomTable(3+rng.Intn(6), rng)
			want := OptimalOrdering(tt, &Options{Rule: rule})
			got, err := Solve(context.Background(), tt, WithRule(rule))
			if err != nil {
				t.Fatal(err)
			}
			if got.MinCost != want.MinCost {
				t.Errorf("rule %v: Solve MinCost = %d, OptimalOrdering = %d", rule, got.MinCost, want.MinCost)
			}
		}
	}
}

// TestSolveNamedSolvers drives every registered solver through the
// facade and checks agreement on one function.
func TestSolveNamedSolvers(t *testing.T) {
	tt := RandomTable(7, rand.New(rand.NewSource(2)))
	want := OptimalOrdering(tt, nil)
	for _, name := range SolverNames() {
		res, err := Solve(context.Background(), tt, WithSolver(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MinCost != want.MinCost {
			t.Errorf("%s: MinCost = %d, want %d", name, res.MinCost, want.MinCost)
		}
	}
}

// TestSolveInvalidInput verifies malformed calls surface ErrInvalidInput
// instead of panicking.
func TestSolveInvalidInput(t *testing.T) {
	if _, err := Solve(context.Background(), nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("nil table: err = %v, want ErrInvalidInput", err)
	}
	tt := NewTable(3)
	_, err := Solve(context.Background(), tt, WithSolver("no-such-solver"))
	if !errors.Is(err, ErrInvalidInput) {
		t.Errorf("unknown solver: err = %v, want ErrInvalidInput", err)
	}
	if err == nil || !strings.Contains(err.Error(), "portfolio") {
		t.Errorf("unknown-solver error %q should list the registered names", err)
	}
	if _, err := NewTableChecked(-1); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("NewTableChecked(-1): err = %v, want ErrInvalidInput", err)
	}
	if _, err := NewTableChecked(31); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("NewTableChecked(31): err = %v, want ErrInvalidInput", err)
	}
	if tbl, err := NewTableChecked(4); err != nil || tbl == nil || tbl.NumVars() != 4 {
		t.Errorf("NewTableChecked(4) = %v, %v", tbl, err)
	}
	if _, err := SolveShared(context.Background(), nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("SolveShared(nil): err = %v, want ErrInvalidInput", err)
	}
	rng := rand.New(rand.NewSource(4))
	mixed := []*Table{RandomTable(4, rng), RandomTable(5, rng)}
	if _, err := SolveShared(context.Background(), mixed); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("SolveShared mixed arity: err = %v, want ErrInvalidInput", err)
	}
}

// TestSolveDeadlineOption verifies WithDeadline cancels a large run and
// the portfolio degrades to an incumbent.
func TestSolveDeadlineOption(t *testing.T) {
	tt := RandomTable(14, rand.New(rand.NewSource(9)))
	res, err := Solve(context.Background(), tt, WithDeadline(50*time.Millisecond))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || len(res.Ordering) != 14 {
		t.Fatalf("res = %+v, want a 14-variable incumbent", res)
	}
}

// TestSolveBudgetOption verifies WithBudget surfaces ErrBudgetExceeded
// through the facade and the meter option balances.
func TestSolveBudgetOption(t *testing.T) {
	tt := RandomTable(10, rand.New(rand.NewSource(13)))
	var m Meter
	_, err := Solve(context.Background(), tt,
		WithSolver("fs"), WithMeter(&m), WithBudget(Budget{MaxCells: 4096}))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after abort, want 0", m.LiveCells)
	}
	if m.CellOps == 0 {
		t.Error("CellOps = 0; the aborted run still did work that the meter should count")
	}
}

// TestSolveSharedMatchesLegacy verifies the shared facade against the
// deprecated entry point.
func TestSolveSharedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tts := []*Table{RandomTable(6, rng), RandomTable(6, rng)}
	want := OptimalOrderingShared(tts, nil)
	got, err := SolveShared(context.Background(), tts)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinCost != want.MinCost {
		t.Errorf("SolveShared MinCost = %d, legacy = %d", got.MinCost, want.MinCost)
	}
}
