package obddopt

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"obddopt/internal/core"
	"obddopt/internal/obs"
)

// TestSolveDefaultMatchesLegacy pins the migration contract: a bare
// Solve call returns the same optimal cost as the original dynamic
// program entry point, for both rules.
func TestSolveDefaultMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, rule := range []Rule{OBDD, ZDD} {
		for i := 0; i < 4; i++ {
			tt := RandomTable(3+rng.Intn(6), rng)
			want := core.OptimalOrdering(tt, core.NewSolveOptions(core.WithRule(rule)))
			got, err := Solve(context.Background(), tt, WithRule(rule))
			if err != nil {
				t.Fatal(err)
			}
			if got.MinCost != want.MinCost {
				t.Errorf("rule %v: Solve MinCost = %d, OptimalOrdering = %d", rule, got.MinCost, want.MinCost)
			}
		}
	}
}

// TestSolveNamedSolvers drives every registered solver through the
// facade and checks agreement on one function. Test-only registrations
// from other packages ("slowtest") don't exist here, so the full
// registry is exercised.
func TestSolveNamedSolvers(t *testing.T) {
	tt := RandomTable(7, rand.New(rand.NewSource(2)))
	want := core.OptimalOrdering(tt, nil)
	for _, name := range SolverNames() {
		res, err := Solve(context.Background(), tt, WithSolver(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MinCost != want.MinCost {
			t.Errorf("%s: MinCost = %d, want %d", name, res.MinCost, want.MinCost)
		}
	}
}

// TestSolveNilContext is the regression test for the nil-context hole:
// applyDeadline used to return a nil ctx untouched when no deadline was
// configured, crashing the solver's first checkpoint. Both facade entry
// points must normalize nil to context.Background.
func TestSolveNilContext(t *testing.T) {
	var nilCtx context.Context
	tt := RandomTable(5, rand.New(rand.NewSource(31)))

	// No deadline: the path that previously passed nil through.
	res, err := Solve(nilCtx, tt, WithSolver("fs"))
	if err != nil || res == nil {
		t.Fatalf("Solve(nil ctx) = %v, %v", res, err)
	}
	// With a deadline: the path that always worked, pinned against
	// regressions in the reordered normalization.
	res, err = Solve(nilCtx, tt, WithSolver("fs"), WithDeadline(time.Minute))
	if err != nil || res == nil {
		t.Fatalf("Solve(nil ctx, deadline) = %v, %v", res, err)
	}

	shared, err := SolveShared(nilCtx, []*Table{tt, RandomTable(5, rand.New(rand.NewSource(32)))})
	if err != nil || shared == nil {
		t.Fatalf("SolveShared(nil ctx) = %v, %v", shared, err)
	}
}

// TestSolveSharedOptionValidation pins the option contract: options that
// cannot take effect on the shared problem are rejected with
// ErrInvalidInput, never silently ignored.
func TestSolveSharedOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tts := []*Table{RandomTable(5, rng), RandomTable(5, rng)}
	cases := []struct {
		name    string
		opts    []Option
		wantErr bool
	}{
		{"no options", nil, false},
		{"explicit fs", []Option{WithSolver("fs")}, false},
		{"accepted subset", []Option{WithRule(ZDD), WithDeadline(time.Minute), WithBudget(Budget{MaxCells: 1 << 30})}, false},
		{"portfolio rejected", []Option{WithSolver("portfolio")}, true},
		{"bnb rejected", []Option{WithSolver("bnb")}, true},
		{"unknown solver rejected", []Option{WithSolver("no-such")}, true},
		{"workers accepted", []Option{WithWorkers(4)}, false},
		{"workers with fs accepted", []Option{WithSolver("fs"), WithWorkers(2)}, false},
		{"schedule accepted", []Option{WithSchedule(Schedule{Workers: 2})}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolveShared(context.Background(), tts, tc.opts...)
			if tc.wantErr {
				if !errors.Is(err, ErrInvalidInput) {
					t.Fatalf("err = %v, want ErrInvalidInput", err)
				}
				if res != nil {
					t.Fatalf("res = %+v alongside rejection, want nil", res)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if res == nil || len(res.Ordering) != 5 {
				t.Fatalf("res = %+v", res)
			}
		})
	}
}

// TestWithScheduleFacade drives the Schedule API end to end through the
// facade: a scheduled parallel solve, the deprecated WithWorkers shim,
// and a scheduled shared solve all return results bit-identical to their
// default-configured counterparts.
func TestWithScheduleFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tt := RandomTable(7, rng)
	want, err := Solve(context.Background(), tt, WithSolver("fs"))
	if err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	for name, opts := range map[string][]Option{
		"schedule": {WithSolver("parallel"), WithSchedule(Schedule{Workers: 3, ShardBits: 2, Pinned: true})},
		"shim":     {WithSolver("parallel"), WithWorkers(2)},
	} {
		got, err := Solve(context.Background(), tt, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.MinCost != want.MinCost {
			t.Errorf("%s: MinCost %d != serial %d", name, got.MinCost, want.MinCost)
		}
		for i := range want.Ordering {
			if got.Ordering[i] != want.Ordering[i] {
				t.Errorf("%s: ordering %v != serial %v", name, got.Ordering, want.Ordering)
				break
			}
		}
	}

	roots := []*Table{RandomTable(5, rng), RandomTable(5, rng), RandomTable(5, rng)}
	sharedWant, err := SolveShared(context.Background(), roots)
	if err != nil {
		t.Fatalf("shared reference: %v", err)
	}
	sharedGot, err := SolveShared(context.Background(), roots, WithSchedule(Schedule{Workers: 4}))
	if err != nil {
		t.Fatalf("scheduled shared: %v", err)
	}
	if sharedGot.MinCost != sharedWant.MinCost {
		t.Errorf("scheduled shared MinCost %d != serial %d", sharedGot.MinCost, sharedWant.MinCost)
	}
	for i := range sharedWant.Ordering {
		if sharedGot.Ordering[i] != sharedWant.Ordering[i] {
			t.Errorf("scheduled shared ordering %v != serial %v", sharedGot.Ordering, sharedWant.Ordering)
			break
		}
	}
}

// TestSolveInvalidInput verifies malformed calls surface ErrInvalidInput
// instead of panicking.
func TestSolveInvalidInput(t *testing.T) {
	if _, err := Solve(context.Background(), nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("nil table: err = %v, want ErrInvalidInput", err)
	}
	tt := NewTable(3)
	_, err := Solve(context.Background(), tt, WithSolver("no-such-solver"))
	if !errors.Is(err, ErrInvalidInput) {
		t.Errorf("unknown solver: err = %v, want ErrInvalidInput", err)
	}
	if err == nil || !strings.Contains(err.Error(), "portfolio") {
		t.Errorf("unknown-solver error %q should list the registered names", err)
	}
	if _, err := NewTableChecked(-1); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("NewTableChecked(-1): err = %v, want ErrInvalidInput", err)
	}
	if _, err := NewTableChecked(31); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("NewTableChecked(31): err = %v, want ErrInvalidInput", err)
	}
	if tbl, err := NewTableChecked(4); err != nil || tbl == nil || tbl.NumVars() != 4 {
		t.Errorf("NewTableChecked(4) = %v, %v", tbl, err)
	}
	if _, err := SolveShared(context.Background(), nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("SolveShared(nil): err = %v, want ErrInvalidInput", err)
	}
	rng := rand.New(rand.NewSource(4))
	mixed := []*Table{RandomTable(4, rng), RandomTable(5, rng)}
	if _, err := SolveShared(context.Background(), mixed); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("SolveShared mixed arity: err = %v, want ErrInvalidInput", err)
	}
}

// TestSolveDeadlineOption verifies WithDeadline cancels a large run and
// the portfolio degrades to an incumbent.
func TestSolveDeadlineOption(t *testing.T) {
	tt := RandomTable(14, rand.New(rand.NewSource(9)))
	res, err := Solve(context.Background(), tt, WithDeadline(50*time.Millisecond))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || len(res.Ordering) != 14 {
		t.Fatalf("res = %+v, want a 14-variable incumbent", res)
	}
}

// TestSolveBudgetOption verifies WithBudget surfaces ErrBudgetExceeded
// through the facade and the meter option balances.
func TestSolveBudgetOption(t *testing.T) {
	tt := RandomTable(10, rand.New(rand.NewSource(13)))
	var m Meter
	_, err := Solve(context.Background(), tt,
		WithSolver("fs"), WithMeter(&m), WithBudget(Budget{MaxCells: 4096}))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after abort, want 0", m.LiveCells)
	}
	if m.CellOps == 0 {
		t.Error("CellOps = 0; the aborted run still did work that the meter should count")
	}
}

// TestSolveSharedMatchesLegacy verifies the shared facade against the
// original core entry point.
func TestSolveSharedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tts := []*Table{RandomTable(6, rng), RandomTable(6, rng)}
	want := core.OptimalOrderingShared(tts, nil)
	got, err := SolveShared(context.Background(), tts)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinCost != want.MinCost {
		t.Errorf("SolveShared MinCost = %d, legacy = %d", got.MinCost, want.MinCost)
	}
}

// TestSolveSpanInstrumentation checks the request-scoped span contract
// of the facade: a caller-attached span collects solver phase events
// (plus portfolio lane events when racing), a bare call mints its own
// span without disturbing the caller, and the per-solver wall-time
// histogram in the registry grows by one observation per call.
func TestSolveSpanInstrumentation(t *testing.T) {
	tt := RandomTable(6, rand.New(rand.NewSource(9)))

	sp := obs.NewSpan("test-span-1")
	ctx := obs.ContextWithSpan(context.Background(), sp)
	before := obs.Hist(obs.HistNameSolverWall, "solver", "portfolio").Count()
	if _, err := Solve(ctx, tt); err != nil {
		t.Fatal(err)
	}
	if got := obs.Hist(obs.HistNameSolverWall, "solver", "portfolio").Count(); got != before+1 {
		t.Errorf("solver_wall_ns{solver=portfolio} count = %d, want %d", got, before+1)
	}
	names := map[string]bool{}
	for _, ev := range sp.Events() {
		names[ev.Name] = true
	}
	for _, want := range []string{"solver_start:portfolio", "solver_done:portfolio", "race_won:fs", "race_won:bnb"} {
		if want == "race_won:fs" || want == "race_won:bnb" {
			continue // exactly one of the two is present, checked below
		}
		if !names[want] {
			t.Errorf("span missing event %q (have %v)", want, sp.Events())
		}
	}
	if !names["race_won:fs"] && !names["race_won:bnb"] {
		t.Errorf("span recorded no race winner: %v", sp.Events())
	}

	// Lane histograms grew too.
	if obs.Hist(obs.HistNameLaneWall, "lane", "bnb").Count() == 0 {
		t.Error("lane_wall_ns{lane=bnb} never recorded")
	}
}
