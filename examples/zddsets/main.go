// ZDD sets: represent sparse families of sets as zero-suppressed decision
// diagrams (the discrete-optimization application of Remark 2), perform
// family algebra, and use the exact dynamic program (with its two-line ZDD
// modification) to find the element ordering minimizing the ZDD.
//
// The concrete family: all maximal matchings of the path graph
// P_n — a classic frontier-style enumeration — built with ZDD set algebra.
//
//	go run ./examples/zddsets
package main

import (
	"fmt"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
	"obddopt/internal/zdd"
)

func main() {
	const edges = 8 // path graph with 8 edges (9 vertices)

	// Enumerate all matchings of the path explicitly (small n), then load
	// them into a ZDD and compare orderings.
	matchings := pathMatchings(edges)
	fmt.Printf("path P_%d: %d matchings over %d edge-variables\n",
		edges+1, len(matchings), edges)

	m := zdd.New(edges, nil)
	fam := m.FromFamily(matchings)
	fmt.Printf("ZDD under natural ordering: %d nodes, %d member sets\n",
		m.CountNodes(fam), m.Count(fam))

	// Family algebra: matchings that use edge 0, and those that don't.
	withE0 := m.Intersect(fam, m.Join(m.Single(0), powerset(m, edges, 1)))
	without := m.Diff(fam, withE0)
	fmt.Printf("matchings using edge 1: %d; not using it: %d (sum %d)\n",
		m.Count(withE0), m.Count(without), m.Count(withE0)+m.Count(without))

	// Exact optimal element ordering for the characteristic function,
	// using the ZDD compaction rule of the dynamic program.
	chi := truthtable.New(edges)
	for _, s := range matchings {
		chi.Set(uint64(s), true)
	}
	res := core.OptimalOrdering(chi, core.NewSolveOptions(core.WithRule(core.ZDD)))
	obdd := core.OptimalOrdering(chi, nil)
	fmt.Printf("exact minimum ZDD: %d nodes under %s\n", res.MinCost, res.Ordering)
	fmt.Printf("exact minimum OBDD of the same family: %d nodes (ZDD/OBDD = %.3f)\n",
		obdd.MinCost, float64(res.MinCost)/float64(obdd.MinCost))

	// Verify with the independent ZDD manager under the optimal ordering.
	mOpt := zdd.New(edges, res.Ordering)
	famOpt := mOpt.FromFamily(matchings)
	fmt.Printf("manager check under optimal ordering: %d nodes (agrees: %v)\n",
		mOpt.CountNodes(famOpt), mOpt.CountNodes(famOpt) == res.MinCost)
}

// pathMatchings lists all matchings of the path with the given number of
// edges: subsets of edges with no two adjacent.
func pathMatchings(edges int) []bitops.Mask {
	var out []bitops.Mask
	for s := bitops.Mask(0); s < 1<<uint(edges); s++ {
		if s&(s<<1) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// powerset builds the family of all subsets of elements from..edges−1.
func powerset(m *zdd.Manager, edges, from int) zdd.Node {
	f := m.Base()
	for v := from; v < edges; v++ {
		f = m.Union(f, m.Join(f, m.Single(v)))
	}
	return f
}
