// Quickstart: parse a formula, find the exact optimal variable ordering,
// materialize the minimum OBDD, and inspect it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	obddopt "obddopt"
)

func main() {
	// The running example of the paper (Fig. 1): x1·x2 + x3·x4 + x5·x6.
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4 | x5 & x6", 6)

	// The exact optimum: Solve races the Friedman–Supowit O*(3^n)
	// dynamic program against branch-and-bound behind a heuristic seed;
	// a nil error proves optimality.
	res, err := obddopt.Solve(context.Background(), f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal ordering:", res.Ordering)       // (x1, x2, x3, x4, x5, x6)
	fmt.Println("minimum OBDD size:", res.Size, "nodes") // 8 = 2k+2 with k=3 pairs
	fmt.Println("level widths bottom-up:", res.Profile)  // [1 1 1 1 1 1]

	// How bad can it get? The blocked ordering is exponential: 2^{k+1}.
	blocked := obddopt.Ordering{5, 3, 1, 4, 2, 0} // bottom-up: x1,x3,x5 on top
	fmt.Println("blocked-ordering size:", obddopt.SizeUnder(f, blocked, obddopt.OBDD), "nodes")

	// Materialize the minimum diagram and query it.
	m, root := obddopt.BuildBDD(f, res.Ordering)
	fmt.Println("satisfying assignments:", m.SatCount(root)) // 37
	if x, ok := m.AnySat(root); ok {
		fmt.Println("a satisfying assignment:", x)
	}

	// Heuristics compared against the exact optimum.
	sift := obddopt.Sift(f, obddopt.OBDD, 0)
	fmt.Printf("sifting found %d nonterminals (optimum %d)\n", sift.MinCost, res.MinCost)
}
