// Ordering quality: use the exact algorithm as the yardstick the paper
// says it is for — judging ordering heuristics. For a spread of workloads
// the exact optimum (FS), sifting, window permutation, greedy append and
// best-of-k random orderings are compared, and the distribution of OBDD
// sizes over many random orderings is summarized so the optimum can be
// seen in context.
//
//	go run ./examples/ordering-quality
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/heuristics"
	"obddopt/internal/truthtable"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	workloads := []struct {
		name string
		tt   *truthtable.Table
	}{
		{"achilles-5pairs", funcs.AchillesHeel(5)},
		{"adder-sum-bit4", funcs.AdderSumBit(5, 4)},
		{"comparator-5bit", funcs.Comparator(5)},
		{"multiplexer-3sel", funcs.Multiplexer(3)},
		{"hidden-wtd-bit-10", funcs.HiddenWeightedBit(10)},
		{"random-dnf-10", funcs.RandomDNF(10, 12, 3, rng)},
	}

	fmt.Printf("%-18s %3s | %7s %7s %7s %7s %7s | %9s %9s %9s\n",
		"workload", "n", "exact", "sift", "win3", "greedy", "rand64", "med-rand", "p90-rand", "worst-seen")
	for _, wl := range workloads {
		n := wl.tt.NumVars()
		opt := core.OptimalOrdering(wl.tt, nil).MinCost
		sift := heuristics.Sift(wl.tt, core.OBDD, 0).MinCost
		win := heuristics.Window(wl.tt, core.OBDD, 3).MinCost
		greedy := heuristics.GreedyAppend(wl.tt, core.OBDD).MinCost
		rb := heuristics.RandomBest(wl.tt, core.OBDD, 64, rng).MinCost

		// Distribution over 200 random orderings.
		oracle := heuristics.NewOracle(wl.tt, core.OBDD)
		samples := make([]uint64, 200)
		for i := range samples {
			samples[i] = oracle.Cost(truthtable.RandomOrdering(n, rng))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		fmt.Printf("%-18s %3d | %7d %7d %7d %7d %7d | %9d %9d %9d\n",
			wl.name, n, opt, sift, win, greedy, rb,
			samples[100], samples[180], samples[199])
	}
	fmt.Println("\nexact = FS dynamic program (provable optimum); all heuristic columns are ≥ exact.")
	fmt.Println("hidden-weighted-bit stays large even at the optimum: no ordering can help it (Bryant).")
}
