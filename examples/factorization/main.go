// Factorization: use ZDD weak division (Minato's unate cube-set algebra)
// to factor a two-level cover — the discrete-optimization application
// Remark 2 gestures at. The cover of f = a·c + a·d + b·c + b·d + e is
// represented as a family of cubes; dividing by the kernel {a, b}
// extracts the factor (a + b)(c + d), leaving remainder e. The exact
// ordering algorithm (ZDD rule) then certifies the cover family's minimum
// ZDD representation.
//
//	go run ./examples/factorization
package main

import (
	"fmt"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
	"obddopt/internal/zdd"
)

func main() {
	// Elements 0..4 = literals a, b, c, d, e. A cube is a set of literals.
	names := []string{"a", "b", "c", "d", "e"}
	m := zdd.New(5, nil)
	cover := m.FromFamily([]bitops.Mask{
		0b00101, // a·c
		0b01001, // a·d
		0b00110, // b·c
		0b01010, // b·d
		0b10000, // e
	})
	fmt.Println("cover F =", famString(m, cover, names))

	divisor := m.FromFamily([]bitops.Mask{0b00001, 0b00010}) // {a, b}
	q := m.Divide(cover, divisor)
	r := m.Remainder(cover, divisor)
	fmt.Println("divisor D =", famString(m, divisor, names))
	fmt.Println("quotient F/D =", famString(m, q, names))
	fmt.Println("remainder =", famString(m, r, names))

	// Verify the factorization F = (F/D ⋈ D) ∪ rem recomposes the cover.
	recomposed := m.Union(m.Join(q, divisor), r)
	fmt.Println("recomposes exactly:", recomposed == cover)

	// Certify the minimum ZDD of the cover family with the exact DP.
	chi := truthtable.New(5)
	for _, s := range m.ToFamily(cover) {
		chi.Set(uint64(s), true)
	}
	res := core.OptimalOrdering(chi, core.NewSolveOptions(core.WithRule(core.ZDD)))
	fmt.Printf("minimum ZDD of the cover: %d nodes under %s\n", res.MinCost, res.Ordering)
	mOpt := zdd.New(5, res.Ordering)
	fmt.Println("manager agrees:", mOpt.CountNodes(mOpt.FromTruthTable(chi)) == res.MinCost)
}

func famString(m *zdd.Manager, f zdd.Node, names []string) string {
	out := ""
	for i, s := range m.ToFamily(f) {
		if i > 0 {
			out += " + "
		}
		if s == 0 {
			out += "1"
			continue
		}
		for _, v := range s.Members(nil) {
			out += names[v]
		}
	}
	if out == "" {
		return "0"
	}
	return out
}
