// Achilles heel: reproduce Fig. 1 of the paper — the function family
// whose OBDD flips between linear (2k+2) and exponential (2^{k+1}) size
// depending on the variable ordering — and print the actual diagrams in
// Graphviz format for k = 3 (the figure's instance).
//
//	go run ./examples/achilles
package main

import (
	"context"
	"fmt"
	"log"

	obddopt "obddopt"
)

// solve runs the exact portfolio and fails loudly on the impossible.
func solve(f *obddopt.Table) *obddopt.Result {
	res, err := obddopt.Solve(context.Background(), f)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func achilles(pairs int) *obddopt.Table {
	return obddopt.FromFunc(2*pairs, func(x []bool) bool {
		for i := 0; i < len(x); i += 2 {
			if x[i] && x[i+1] {
				return true
			}
		}
		return false
	})
}

func main() {
	fmt.Println("f = x1·x2 + x3·x4 + … + x_{2k−1}·x_{2k}  (Fig. 1 family)")
	fmt.Printf("%5s %4s %12s %12s %10s\n", "k", "n", "interleaved", "blocked", "optimal")
	for k := 1; k <= 6; k++ {
		f := achilles(k)
		n := 2 * k
		inter := make([]int, n)
		for i := range inter {
			inter[i] = i
		}
		var blockedRF []int
		for i := 0; i < n; i += 2 {
			blockedRF = append(blockedRF, i)
		}
		for i := 1; i < n; i += 2 {
			blockedRF = append(blockedRF, i)
		}
		good := obddopt.SizeUnder(f, fromRootFirst(inter), obddopt.OBDD)
		bad := obddopt.SizeUnder(f, fromRootFirst(blockedRF), obddopt.OBDD)
		opt := solve(f)
		fmt.Printf("%5d %4d %12d %12d %10d\n", k, n, good, bad, opt.Size)
	}

	// Render the two k=3 diagrams of Fig. 1.
	f := achilles(3)
	res := solve(f)
	mGood, rGood := obddopt.BuildBDD(f, res.Ordering)
	fmt.Println("\n--- minimum OBDD (Fig. 1 left), Graphviz ---")
	fmt.Print(mGood.DOT(rGood, "achilles_optimal"))

	mBad, rBad := obddopt.BuildBDD(f, fromRootFirst([]int{0, 2, 4, 1, 3, 5}))
	fmt.Printf("--- blocked OBDD (Fig. 1 right) has %d nodes; DOT omitted for brevity ---\n",
		mBad.Size(rBad))
}

func fromRootFirst(vars []int) obddopt.Ordering {
	o := make(obddopt.Ordering, len(vars))
	for i, v := range vars {
		o[len(vars)-1-i] = v
	}
	return o
}
