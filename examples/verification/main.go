// Verification: combinational equivalence checking — the VLSI-design
// application that motivates OBDDs in the paper's introduction. Two
// structurally different adder implementations are compiled to BDDs; by
// canonicity, equivalence is pointer equality. A seeded bug is then
// detected and a counterexample extracted. Finally the exact optimal
// ordering for the hardest output is compared with the natural and the
// interleaved orderings.
//
//	go run ./examples/verification
package main

import (
	"fmt"

	"obddopt/internal/bdd"
	"obddopt/internal/circuit"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

func main() {
	const bits = 4
	ripple := circuit.RippleCarryAdder(bits)
	carrySelect := circuit.CarrySelectAdder(bits)

	// Equivalence check output by output, in one shared manager.
	m := bdd.New(2*bits, nil)
	allEq := true
	for i := 0; i <= bits; i++ {
		a := ripple.ToBDD(m, i)
		b := carrySelect.ToBDD(m, i)
		eq := a == b // canonicity: same node ⇔ same function
		fmt.Printf("output %d (sum bit %s): equivalent = %v\n", i, bitName(i, bits), eq)
		allEq = allEq && eq
	}
	fmt.Println("adders equivalent:", allEq)

	// Seed a bug: swap an AND for an OR in the ripple carry chain.
	buggy := circuit.RippleCarryAdder(bits)
	for gi, g := range buggy.Gates {
		if g.Kind == circuit.And {
			buggy.Gates[gi].Kind = circuit.Or
			break
		}
	}
	good := ripple.ToBDD(m, bits)
	bad := buggy.ToBDD(m, bits)
	if good == bad {
		fmt.Println("bug not observable on the carry output")
	} else {
		diff := m.Xor(good, bad)
		cex, _ := m.AnySat(diff)
		a, b := operands(cex, bits)
		fmt.Printf("bug detected on carry-out; counterexample a=%d b=%d (%d differing assignments)\n",
			a, b, m.SatCount(diff))
	}

	// Ordering quality for the carry-out function.
	carry := ripple.OutputTable(bits)
	opt := core.OptimalOrdering(carry, nil)
	natural := core.SizeUnder(carry, truthtable.ReverseOrdering(2*bits), core.OBDD, nil)
	interleaved := interleavedOrdering(bits)
	inter := core.SizeUnder(carry, interleaved, core.OBDD, nil)
	fmt.Printf("\ncarry-out OBDD sizes: natural %d, interleaved %d, exact optimum %d under %s\n",
		natural, inter, opt.Size, opt.Ordering)
}

func bitName(i, bits int) string {
	if i == bits {
		return "carry"
	}
	return fmt.Sprintf("%d", i)
}

func operands(x []bool, bits int) (a, b uint64) {
	for i := 0; i < bits; i++ {
		if x[i] {
			a |= 1 << uint(i)
		}
		if x[bits+i] {
			b |= 1 << uint(i)
		}
	}
	return
}

// interleavedOrdering returns a0,b0,a1,b1,… root-first, bottom-up encoded.
func interleavedOrdering(bits int) truthtable.Ordering {
	var rf []int
	for i := 0; i < bits; i++ {
		rf = append(rf, i, bits+i)
	}
	return truthtable.FromRootFirst(rf)
}
