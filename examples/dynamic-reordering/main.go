// Dynamic reordering: the production-package workflow. A diagram is built
// under a bad ordering, then improved IN PLACE — node identities survive,
// so held roots stay valid — first by swap-based sifting, then by exact
// reordering driven by the Friedman–Supowit dynamic program (the workflow
// CUDD calls cuddExact). Swap counts show the incremental cost.
//
//	go run ./examples/dynamic-reordering
package main

import (
	"fmt"

	obddopt "obddopt"
)

func main() {
	// The Achilles-heel function under its pessimal "blocked" ordering.
	const pairs = 6
	f := obddopt.FromFunc(2*pairs, func(x []bool) bool {
		for i := 0; i < len(x); i += 2 {
			if x[i] && x[i+1] {
				return true
			}
		}
		return false
	})
	var blockedRF []int
	for i := 0; i < 2*pairs; i += 2 {
		blockedRF = append(blockedRF, i)
	}
	for i := 1; i < 2*pairs; i += 2 {
		blockedRF = append(blockedRF, i)
	}
	blocked := fromRootFirst(blockedRF)

	fmt.Printf("f = Σ x_{2i−1}·x_{2i}, %d pairs; blocked ordering %s\n\n", pairs, blocked)

	// In-place sifting.
	m := obddopt.NewReorderableManager(2*pairs, blocked)
	root := m.FromTruthTable(f)
	fmt.Printf("built: %d nonterminal nodes (2^{k+1}−2 = %d)\n", m.TotalNodes(), 1<<uint(pairs+1)-2)
	sift := m.Sift(0)
	fmt.Printf("sift:  %d → %d nodes in %d adjacent swaps (%d passes)\n",
		sift.Initial, sift.Final, sift.Swaps, sift.Passes)
	fmt.Printf("       ordering now %s\n", m.Ordering())

	// The root survived and still denotes f.
	if !m.ToTruthTable(root).Equal(f) {
		panic("root corrupted — impossible")
	}
	fmt.Println("       held root still valid ✓")

	// Exact reordering from scratch on a second manager.
	m2 := obddopt.NewReorderableManager(2*pairs, blocked)
	root2 := m2.FromTruthTable(f)
	stats, opt := m2.ExactReorder(root2)
	fmt.Printf("exact: %d → %d nodes in %d swaps; provably optimal ordering %s\n",
		stats.Initial, stats.Final, stats.Swaps, opt.Ordering)
	fmt.Printf("       DP certificate: MinCost = %d, size with terminals = %d\n", opt.MinCost, opt.Size)

	// Window permutation as a cheap maintenance pass.
	m3 := obddopt.NewReorderableManager(2*pairs, blocked)
	m3.FromTruthTable(f)
	win := m3.WindowPermute(3)
	fmt.Printf("win3:  %d → %d nodes in %d swaps\n", win.Initial, win.Final, win.Swaps)
}

func fromRootFirst(vars []int) obddopt.Ordering {
	o := make(obddopt.Ordering, len(vars))
	for i, v := range vars {
		o[len(vars)-1-i] = v
	}
	return o
}
