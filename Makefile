# Developer entry points. Everything is plain `go` underneath; the targets
# just bundle the common invocations.

GO ?= go

.PHONY: all build test test-short race bench experiments examples fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/core/ ./internal/dynbdd/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation table/figure at full size (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/bddbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/achilles
	$(GO) run ./examples/verification
	$(GO) run ./examples/zddsets
	$(GO) run ./examples/ordering-quality
	$(GO) run ./examples/dynamic-reordering
	$(GO) run ./examples/factorization

# Short fuzzing sessions over the two text-format parsers.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/expr/
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/pla/

clean:
	$(GO) clean ./...
