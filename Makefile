# Developer entry points. Everything is plain `go` underneath; the targets
# just bundle the common invocations.

GO ?= go

.PHONY: all build lint lint-fixtures test test-short race bench experiments examples fuzz fuzz-smoke trace-demo portfolio-demo serve-demo steal-demo artifact-demo verify cover cover-gate trajectory trajectory-check clean

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Static analysis: go vet plus the repository's own invariant checkers
# (see "Static analysis" in README.md). bddlint must exit 0 — fix the
# finding or annotate the sanctioned site with //lint:allow <rule> <why>.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/bddlint ./...

# The analyzers' own test corpus: golden fixture packages with // want
# expectations plus the CFG builder's table-driven shape tests, under
# the race detector (the dataflow solver must stay data-race free — CI
# gates on this next to lint).
lint-fixtures:
	$(GO) test -race ./internal/analysis/... ./cmd/bddlint/

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/core/ ./internal/dynbdd/ ./internal/server/ ./internal/cache/ ./internal/conformance/

# The one-command correctness gate (see "Verification" in README.md):
# golden-corpus replay across every solver, the metamorphic oracle
# suite, and a 200-request fault-injected chaos round. Reproduce any
# failure with the printed seed; soak longer with
# `go run ./cmd/bddverify -duration 60s`.
verify:
	$(GO) run ./cmd/bddverify -chaos 200

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation table/figure at full size (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/bddbench -exp all

# Regenerate the committed benchmark-trajectory baseline (see
# "Performance trajectory" in README.md). Run on a quiet machine, eyeball
# the diff, and commit BENCH_8.json alongside the change that moved it.
trajectory:
	$(GO) run ./cmd/bddbench -trajectory -quick -json > BENCH_8.json

# Diff a fresh sweep against the committed baseline; a max-feasible-n
# drop exits nonzero, ns/op growth past 3x is reported but advisory (the
# CI bench-smoke job runs exactly this and gates on it).
trajectory-check:
	$(GO) run ./cmd/bddbench -trajectory -quick -json > /tmp/bench_new.json
	$(GO) run ./cmd/bddbench -compare -threshold 3.0 -ns-advisory BENCH_8.json /tmp/bench_new.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/achilles
	$(GO) run ./examples/verification
	$(GO) run ./examples/zddsets
	$(GO) run ./examples/ordering-quality
	$(GO) run ./examples/dynamic-reordering
	$(GO) run ./examples/factorization

# Observability demo: live per-layer progress on stderr plus the JSON run
# report on stdout for a 12-variable instance (three disjoint AND pairs
# plus a parity tail — large enough that the layer cadence is visible).
trace-demo:
	$(GO) run ./cmd/optobdd \
		-expr 'x1&x2 | x3&x4 | x5&x6 | x7&x8 | x9&x10 | x11&x12' \
		-progress -json

# Portfolio demo: the heuristic phase seeds a DP-vs-BnB race (watch the
# lane_start/race_won/lane_canceled narration on stderr), then the same
# solver under a 50ms deadline on a 14-variable parity chain degrades to
# the heuristic incumbent instead of hanging.
portfolio-demo:
	$(GO) run ./cmd/optobdd \
		-expr 'x1&x2 | x3&x4 | x5&x6 | x7&x8' \
		-solver portfolio -progress
	$(GO) run ./cmd/optobdd \
		-expr 'x1^x2^x3^x4^x5^x6^x7 | x8&x9&x10 | x11&x12&x13&x14' \
		-solver portfolio -deadline 50ms -progress

# Scheduler demo: a deliberately contended parallel run — 8 workers over
# 2-rank shards on a 13-variable instance — whose JSON report's metrics
# block shows the work-stealing pipeline at work (shards_executed,
# shard_steals; distributions under ws_shard_occupancy / ws_run_steals
# in /v1/stats when serving).
steal-demo:
	$(GO) run ./cmd/optobdd \
		-expr '(x1^x2^x3^x4^x5^x6) | x7&x8&x9 | x10&x11 | x12&x13' \
		-solver parallel -workers 8 -shard-bits 1 -json

# Artifact demo: solve the Achilles-heel 8-variable instance, emit the
# compressed OBDD artifact, and independently re-verify it against the
# original function (bddverify replays the pinned golden digests too).
artifact-demo:
	$(GO) run ./cmd/optobdd \
		-expr 'x1&x2 | x3&x4 | x5&x6 | x7&x8' \
		-emit-bdd /tmp/achilles8.obdd
	$(GO) run ./cmd/bddverify -chaos 0

# Serving demo: an in-process obddd exercises the whole admission story
# under the race detector — cold solve, cached re-solve (single-flight),
# 429s under a 32-request burst against a 2-worker pool, graceful drain.
serve-demo:
	$(GO) run -race ./cmd/obddd -smoke

# Short fuzzing sessions over the text-format parsers, the table
# constructors, and the FS-vs-brute-force differential oracle.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/expr/
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/pla/
	$(GO) test -fuzz FuzzTruthTableNew -fuzztime 30s ./internal/truthtable/
	$(GO) test -fuzz FuzzFSvsBrute -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzArtifactRoundTrip -fuzztime 30s ./internal/artifact/
	$(GO) test -fuzz FuzzSolveFacade -fuzztime 30s .

# CI-sized fuzz pass: long enough to exercise the mutators, short enough
# for every push.
fuzz-smoke:
	$(GO) test -fuzz FuzzTruthTableNew -fuzztime 10s ./internal/truthtable/
	$(GO) test -fuzz FuzzFSvsBrute -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzArtifactRoundTrip -fuzztime 10s ./internal/artifact/
	$(GO) test -fuzz FuzzSolveFacade -fuzztime 10s .

# Per-package coverage table.
cover:
	$(GO) test -count=1 -cover ./... | grep -v "no test files"

# Coverage floors for the engine and the network service — measured
# baselines rounded down; CI fails a PR that regresses below them.
COVER_FLOOR_CORE ?= 92
COVER_FLOOR_SERVER ?= 90
COVER_FLOOR_ARTIFACT ?= 90

cover-gate:
	@for spec in ./internal/core:$(COVER_FLOOR_CORE) ./internal/server:$(COVER_FLOOR_SERVER) ./internal/artifact:$(COVER_FLOOR_ARTIFACT); do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		pct=$$($(GO) test -count=1 -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover-gate: no coverage reported for $$pkg"; exit 1; fi; \
		if [ "$$(awk -v p=$$pct -v f=$$floor 'BEGIN{print (p>=f)?1:0}')" != 1 ]; then \
			echo "cover-gate: $$pkg coverage $$pct% fell below the $$floor% floor"; exit 1; \
		fi; \
		echo "cover-gate: $$pkg $$pct% >= $$floor%"; \
	done

clean:
	$(GO) clean ./...
