package obddopt

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFacadeClientServer drives the public serving surface end to end:
// NewServer + Dial + Client.Solve, with the in-process error contract
// holding across the wire.
func TestFacadeClientServer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := NewServer(ctx, ServerConfig{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c, err := Dial(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	f := MustParseExpr("x1 & x2 | x3 & x4 | x5 & x6", 6)
	remote, err := c.Solve(ctx, f, &ClientParams{Solver: "fs"})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Solve(ctx, f, WithSolver("fs"))
	if err != nil {
		t.Fatal(err)
	}
	if remote.MinCost != local.MinCost || remote.Size != local.Size {
		t.Errorf("remote = %+v, local = %+v", remote, local)
	}

	// The sentinel contract crosses the wire.
	big := RandomTable(14, rand.New(rand.NewSource(8)))
	_, err = c.Solve(ctx, big, &ClientParams{Deadline: 50 * time.Millisecond, NoCache: true})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("remote deadline err = %v, want errors.Is ErrCanceled", err)
	}
	if _, err := c.Solve(ctx, nil, nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("nil table err = %v, want ErrInvalidInput", err)
	}

	drainCtx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(context.Background(), f, nil); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain err = %v, want ErrDraining", err)
	}
}

// TestSolveBatchFacade checks the batch path through the public facade.
func TestSolveBatchFacade(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := NewServer(ctx, ServerConfig{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c, err := Dial(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	tts := []*Table{RandomTable(6, rng), RandomTable(6, rng)}
	results, err := c.SolveBatch(ctx, tts, &ClientParams{Solver: "fs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil || r.Result == nil {
			t.Errorf("item %d: %+v", i, r)
		}
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	_ = s.Drain(drainCtx)
}
