package obddopt

// Benchmark harness: one testing.B benchmark per reproduced table/figure
// (experiments E1–E14 of DESIGN.md), each delegating to the experiment
// runner in internal/exp, plus micro-benchmarks for the core primitives.
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The experiment tables themselves are printed by `go run ./cmd/bddbench`;
// here the runners execute against io.Discard so the benchmark numbers
// measure the computation, not terminal I/O.

import (
	"io"
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/exp"
	"obddopt/internal/funcs"
	"obddopt/internal/heuristics"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

func benchExperiment(b *testing.B, id string) {
	cfg := exp.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(id, io.Discard, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkE1AchillesHeel regenerates Fig. 1 (ordering sensitivity).
func BenchmarkE1AchillesHeel(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Table1 regenerates Table 1 (γ_k and α vectors).
func BenchmarkE2Table1(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Table2 regenerates Table 2 (composition iteration).
func BenchmarkE3Table2(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4FSScaling regenerates the O*(3^n) scaling experiment.
func BenchmarkE4FSScaling(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5BruteForce regenerates the brute-force comparison.
func BenchmarkE5BruteForce(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6QueryModel regenerates the quantum-query-model comparison.
func BenchmarkE6QueryModel(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7CrossCheck regenerates the agreement experiment.
func BenchmarkE7CrossCheck(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Heuristics regenerates the heuristic-quality table.
func BenchmarkE8Heuristics(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9ZDD regenerates the ZDD-adaptation experiment.
func BenchmarkE9ZDD(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10MTBDD regenerates the MTBDD-generalization experiment.
func BenchmarkE10MTBDD(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Representations regenerates the Corollary 2 experiment.
func BenchmarkE11Representations(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12FSStar regenerates the composable-FS* cost-shape sweep.
func BenchmarkE12FSStar(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13ErrorModel regenerates the error-injection experiment.
func BenchmarkE13ErrorModel(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Space regenerates the space-accounting experiment.
func BenchmarkE14Space(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15BranchAndBound regenerates the B&B-vs-DP ablation.
func BenchmarkE15BranchAndBound(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16QuantumValidation regenerates the statevector-vs-model and
// dynamic-reordering validation.
func BenchmarkE16QuantumValidation(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17SharedForest regenerates the multi-output shared-forest
// extension experiment.
func BenchmarkE17SharedForest(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Symmetry regenerates the symmetry-exploitation experiment.
func BenchmarkE18Symmetry(b *testing.B) { benchExperiment(b, "E18") }

// --- micro-benchmarks for the core primitives ---

func benchOptimal(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	f := truthtable.Random(n, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.OptimalOrdering(f, nil)
	}
}

// BenchmarkFS10 runs the full dynamic program on a random 10-variable
// function (3^10 ≈ 59k subset-cells).
func BenchmarkFS10(b *testing.B) { benchOptimal(b, 10) }

// BenchmarkFS12 runs the full dynamic program on 12 variables.
func BenchmarkFS12(b *testing.B) { benchOptimal(b, 12) }

// BenchmarkFS14 runs the full dynamic program on 14 variables.
func BenchmarkFS14(b *testing.B) {
	if testing.Short() {
		b.Skip("long")
	}
	benchOptimal(b, 14)
}

// BenchmarkOptimalOrdering is the untraced baseline for the tracing
// overhead comparison: the full dynamic program on a random 12-variable
// function with metering but no tracer attached (the nil fast path).
func BenchmarkOptimalOrdering(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := truthtable.Random(12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.OptimalOrdering(f, &core.SolveOptions{Meter: &core.Meter{}})
	}
}

// BenchmarkOptimalOrderingTraced is the same run with a Collector tracer
// attached, measuring the cost of live event folding. Measured deltas on
// the development machine: the nil-tracer path (BenchmarkOptimalOrdering)
// is within noise (<1%) of the pre-instrumentation baseline because all
// emissions sit behind a single `tr != nil` branch per layer/compaction
// and global metrics are flushed once per layer, not per cell; attaching
// the Collector costs ~1–2% on n=12 (one mutexed event per compaction,
// amortized over ~2000 table-cell operations each).
func BenchmarkOptimalOrderingTraced(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := truthtable.Random(12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewRunCollector()
		core.OptimalOrdering(f, &core.SolveOptions{Meter: &core.Meter{}, Trace: col})
		if col.Report().Events == 0 {
			b.Fatal("tracer saw no events")
		}
	}
}

// BenchmarkOptimalOrderingHistogram is the same run with the histogram
// sink attached instead of the Collector: every KindLayerEnd folds into
// the dp_layer histograms (a few atomic adds per layer). This is the
// histogram half of the overhead contract — the nil-tracer baseline
// (BenchmarkOptimalOrdering) must stay within 2% of its
// pre-instrumentation numbers, and the sink's per-layer cost is
// amortized over thousands of cell operations per layer.
func BenchmarkOptimalOrderingHistogram(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := truthtable.Random(12, rng)
	sink := obs.NewHistogramSink()
	before := obs.Hist(obs.HistNameDPLayer).Count()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.OptimalOrdering(f, &core.SolveOptions{Meter: &core.Meter{}, Trace: sink})
	}
	b.StopTimer()
	if obs.Hist(obs.HistNameDPLayer).Count() == before {
		b.Fatal("histogram sink recorded no layers")
	}
}

// BenchmarkProfile12 measures the single-ordering width oracle.
func BenchmarkProfile12(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	f := truthtable.Random(12, rng)
	ord := truthtable.RandomOrdering(12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Profile(f, ord, core.OBDD, nil)
	}
}

// BenchmarkSift12 measures a full sifting run on 12 variables.
func BenchmarkSift12(b *testing.B) {
	f := funcs.AchillesHeel(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heuristics.Sift(f, core.OBDD, 0)
	}
}

// BenchmarkBuildBDD12 measures materializing a 12-variable diagram in the
// BDD manager.
func BenchmarkBuildBDD12(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	f := truthtable.Random(12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildBDD(f, truthtable.IdentityOrdering(12))
	}
}

// BenchmarkDivideAndConquer9 measures the simulated-quantum algorithm end
// to end on 9 variables.
func BenchmarkDivideAndConquer9(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	f := truthtable.Random(9, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DivideAndConquer(f, nil)
	}
}
