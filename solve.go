package obddopt

import (
	"context"
	"fmt"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/core"
	_ "obddopt/internal/heuristics" // installs the portfolio's default heuristic seeder
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// This file is the unified entry point of the package: one Solve call
// behind which every solving strategy — the Friedman–Supowit dynamic
// program, its parallel variant, branch-and-bound, divide-and-conquer,
// brute force, and the portfolio racing them — is selected by name,
// configured by functional options, and supervised by a context deadline
// and a resource budget.

// Sentinel errors of the Solve API; test with errors.Is.
var (
	// ErrCanceled reports that the run stopped early because its context
	// was canceled or its deadline expired. The *Result returned
	// alongside it, when non-nil, is the best incumbent found before the
	// stop — a valid ordering whose optimality is NOT proven.
	ErrCanceled = core.ErrCanceled
	// ErrBudgetExceeded reports that the run stopped early because a
	// resource budget (live DP cells, search nodes) was exhausted; the
	// incumbent contract matches ErrCanceled's.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrInvalidInput reports a malformed problem: nil table, variable
	// count out of range, or an unknown solver name.
	ErrInvalidInput = core.ErrInvalidInput
)

// Budget bounds the resources a Solve run may consume; the zero value is
// unlimited. Enforcement is cooperative, at the same checkpoints as
// context cancellation.
type Budget = core.Budget

// Option configures one Solve call.
type Option func(*solveConfig)

type solveConfig struct {
	solver   string
	opts     core.SolveOptions
	deadline time.Duration
}

// WithSolver selects the solving strategy by registered name: "fs" (the
// serial dynamic program), "parallel", "bnb", "dnc", "brute" or
// "portfolio" (the default). SolverNames lists what is available.
func WithSolver(name string) Option {
	return func(c *solveConfig) { c.solver = name }
}

// WithRule selects the diagram variant to minimize (OBDD, the default,
// or ZDD).
func WithRule(rule Rule) Option {
	return func(c *solveConfig) { c.opts.Rule = rule }
}

// WithDeadline bounds the run's wall-clock time: after d the solver
// stops cooperatively and Solve returns ErrCanceled, carrying the best
// incumbent when one exists. It composes with (tightens, never loosens)
// any deadline already on the ctx passed to Solve.
func WithDeadline(d time.Duration) Option {
	return func(c *solveConfig) { c.deadline = d }
}

// WithBudget bounds the run's resources (live DP cells, search nodes);
// exhaustion surfaces as ErrBudgetExceeded, carrying the best incumbent
// when one exists.
func WithBudget(b Budget) Option {
	return func(c *solveConfig) { c.opts.Budget = b }
}

// WithTrace attaches a Tracer to the run. The portfolio solver runs
// lanes concurrently against one tracer, so the implementation must be
// safe for concurrent Emit calls (all tracers in this package are).
func WithTrace(tr Tracer) Option {
	return func(c *solveConfig) { c.opts.Trace = tr }
}

// WithMeter attaches a Meter accumulating the run's operation counts.
// The portfolio merges its lanes' private meters into it after the race.
func WithMeter(m *Meter) Option {
	return func(c *solveConfig) { c.opts.Meter = m }
}

// Schedule configures the work-stealing scheduler behind the parallel
// solver paths: worker count, shard granularity, and whether stealing is
// enabled. The zero value is the automatic default (GOMAXPROCS workers,
// auto-sized shards, stealing on).
type Schedule struct {
	// Workers is the goroutine count of the parallel dynamic program and
	// the shared-forest worker pool; 0 selects GOMAXPROCS.
	Workers int
	// ShardBits overrides the shard granularity of the work-stealing DP:
	// when positive, each popcount layer is split into shards of
	// 2^ShardBits lattice ranks. 0 sizes shards automatically from the
	// layer size and worker count. Scheduling-experiment knob; the
	// default is right for production use.
	ShardBits int
	// Pinned disables work stealing: each worker runs only shards it
	// claimed itself. Throughput is generally worse than the stealing
	// default; useful for isolating scheduling effects.
	Pinned bool
}

// WithSchedule configures the parallel scheduler: worker count, shard
// granularity, and stealing. It applies to the "parallel" solver, to the
// portfolio's DP lane, and to SolveShared's worker pool (which uses the
// schedule's Workers; shard granularity and pinning only affect the
// work-stealing single-function engine).
func WithSchedule(s Schedule) Option {
	return func(c *solveConfig) {
		c.opts.Workers = s.Workers
		c.opts.ShardBits = s.ShardBits
		c.opts.Pinned = s.Pinned
	}
}

// WithWorkers sets the goroutine count of the parallel lanes; 0 (the
// default) selects GOMAXPROCS.
//
// Deprecated: Use WithSchedule(Schedule{Workers: n}), which also exposes
// shard granularity and pinning. WithWorkers remains as a shim and sets
// only the worker count.
func WithWorkers(n int) Option {
	return func(c *solveConfig) { c.opts.Workers = n }
}

// SolverNames lists the registered solver names, sorted — the valid
// arguments to WithSolver and the CLIs' -solver flag.
func SolverNames() []string { return core.SolverNames() }

// NewTableChecked returns the all-false function over n variables, or
// ErrInvalidInput when n is outside [0, 30] — the error-returning
// counterpart of NewTable for untrusted input.
func NewTableChecked(n int) (*Table, error) {
	t, err := truthtable.NewChecked(n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	return t, nil
}

// Solve finds an optimal variable ordering for tt under the configured
// strategy. With no options it runs the portfolio solver on OBDDs: a
// heuristic phase (sifting, then simulated annealing) seeds a race
// between the Friedman–Supowit dynamic program and branch-and-bound, and
// the first lane to prove optimality wins.
//
// A nil error guarantees Result.MinCost is the exact optimum. On
// cancellation, deadline expiry or budget exhaustion, Solve returns
// ErrCanceled / ErrBudgetExceeded — and, when the strategy holds one, a
// non-nil *Result with the best incumbent found, so callers can degrade
// to a valid (merely unproven) ordering:
//
//	res, err := obddopt.Solve(ctx, f,
//	    obddopt.WithDeadline(100*time.Millisecond))
//	if errors.Is(err, obddopt.ErrCanceled) && res != nil {
//	    // use res.Ordering, exactness not proven
//	}
func Solve(ctx context.Context, tt *Table, opts ...Option) (*Result, error) {
	cfg := solveConfig{solver: "portfolio"}
	for _, o := range opts {
		o(&cfg)
	}
	if tt == nil {
		return nil, fmt.Errorf("%w: nil truth table", ErrInvalidInput)
	}
	solver, ok := core.LookupSolver(cfg.solver)
	if !ok {
		return nil, fmt.Errorf("%w: unknown solver %q (have %v)", ErrInvalidInput, cfg.solver, SolverNames())
	}
	ctx, cancel := applyDeadline(ctx, cfg.deadline)
	defer cancel()
	// Every Solve call runs under a request-scoped span: the caller's (a
	// server handler that already minted a request ID) or a fresh one, so
	// the run is attributable end to end. Span events and the per-solver
	// wall-time histogram are run-granular — they never touch the solver's
	// per-cell hot path.
	ctx, sp := obs.EnsureSpan(ctx)
	sp.Event("solver_start:" + cfg.solver) //lint:allow tracesafe EnsureSpan mints a span when the context has none, so sp is never nil
	start := time.Now()
	res, err := solver(ctx, tt, &cfg.opts)
	obs.Hist(obs.HistNameSolverWall, "solver", cfg.solver).RecordDuration(time.Since(start))
	if m := cfg.opts.Meter; m != nil {
		obs.Hist(obs.HistNameSolverCells, "solver", cfg.solver).Record(m.CellOps)
		obs.Hist(obs.HistNameSolverPeak, "solver", cfg.solver).Record(m.PeakCells)
	}
	sp.Event("solver_done:" + cfg.solver) //lint:allow tracesafe EnsureSpan mints a span when the context has none, so sp is never nil
	return res, err
}

// SolveArtifact is Solve additionally returning the solved function's
// compact OBDD artifact: the reduced diagram under the proven-optimal
// ordering, in the canonical level-indexed encoding of
// Artifact.Encode. It accepts the same options as Solve except that
// WithRule(ZDD) is ErrInvalidInput — artifacts are defined for the
// OBDD rule only. On early stops (ErrCanceled / ErrBudgetExceeded) the
// incumbent result comes back with a nil artifact: an unproven
// ordering's diagram is not a canonical artifact.
func SolveArtifact(ctx context.Context, tt *Table, opts ...Option) (*Result, *Artifact, error) {
	probe := solveConfig{}
	for _, o := range opts {
		o(&probe)
	}
	if probe.opts.Rule != core.OBDD {
		return nil, nil, fmt.Errorf("%w: artifacts are defined for the OBDD rule only", ErrInvalidInput)
	}
	res, err := Solve(ctx, tt, opts...)
	if err != nil {
		return res, nil, err
	}
	a, err := artifact.Build(tt, res.Ordering)
	if err != nil {
		return res, nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	return res, a, nil
}

// SolveShared is Solve for the multi-rooted (shared-forest) problem: the
// ordering minimizing the node count of the shared diagram of several
// functions over the same variables.
//
// Only the Friedman–Supowit dynamic program solves the shared problem,
// so SolveShared accepts a subset of Solve's options: WithRule,
// WithDeadline, WithBudget, WithMeter, WithTrace and WithSchedule /
// WithWorkers (a schedule with more than one worker fans each DP layer
// out over a worker pool, bit-identical to the serial path), plus
// WithSolver("fs") as an explicit no-op. Any other WithSolver name
// returns ErrInvalidInput — an option that cannot take effect is
// rejected, never silently ignored. The early-stop contract matches
// Solve's, except the dynamic program carries no incumbent, so an early
// stop always returns a nil result with the error.
func SolveShared(ctx context.Context, tts []*Table, opts ...Option) (*SharedResult, error) {
	var cfg solveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.solver != "" && cfg.solver != "fs" {
		return nil, fmt.Errorf("%w: SolveShared supports only the dynamic program; WithSolver(%q) cannot take effect (omit the option or pass \"fs\")",
			ErrInvalidInput, cfg.solver)
	}
	if len(tts) == 0 {
		return nil, fmt.Errorf("%w: no truth tables", ErrInvalidInput)
	}
	n := -1
	for _, tt := range tts {
		if tt == nil {
			return nil, fmt.Errorf("%w: nil truth table", ErrInvalidInput)
		}
		if n >= 0 && tt.NumVars() != n {
			return nil, fmt.Errorf("%w: shared roots must have the same variable count", ErrInvalidInput)
		}
		n = tt.NumVars()
	}
	ctx, cancel := applyDeadline(ctx, cfg.deadline)
	defer cancel()
	return core.OptimalOrderingSharedCtx(ctx, tts, &cfg.opts)
}

// applyDeadline layers the WithDeadline option onto the caller's
// context. A nil ctx is normalized to context.Background before any
// other handling — previously a nil ctx with no deadline flowed through
// untouched and crashed the solver's first checkpoint.
func applyDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
