package obddopt

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFacadePLA(t *testing.T) {
	src := ".i 2\n.o 1\n11 1\n.e\n"
	p, err := ParsePLA(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParsePLA: %v", err)
	}
	tt := p.OutputTable(0)
	if OptimalOrdering(tt, nil).MinCost != 2 {
		t.Errorf("AND cover optimum wrong")
	}
	back := PLAFromTable(tt)
	if !back.OutputTable(0).Equal(tt) {
		t.Errorf("PLAFromTable round trip failed")
	}
}

func TestFacadeCircuit(t *testing.T) {
	c := RippleCarryAdder(2)
	if len(c.Outputs) != 3 {
		t.Fatalf("adder outputs %d", len(c.Outputs))
	}
	shared := OptimalOrderingShared(c.AllOutputTables(), nil)
	if shared.Roots != 3 || shared.MinCost == 0 {
		t.Errorf("shared adder optimization wrong: %+v", shared)
	}
	c2 := NewCircuit(2)
	if c2.NumInputs != 2 {
		t.Errorf("NewCircuit wrong")
	}
	if _, err := ParseCircuit(strings.NewReader("inputs 1\noutputs 0\n")); err != nil {
		t.Errorf("ParseCircuit: %v", err)
	}
	if ComparatorCircuit(2).OutputTable(0).Equal(Comparator(2)) == false {
		t.Errorf("comparator circuit != comparator function")
	}
	if len(PriorityEncoderCircuit(4).Outputs) != 3 {
		t.Errorf("priority encoder outputs wrong")
	}
	if len(PopCountCircuit(3).Outputs) != 2 {
		t.Errorf("popcount outputs wrong")
	}
	if CarrySelectAdder(2).OutputTable(0).Equal(RippleCarryAdder(2).OutputTable(0)) == false {
		t.Errorf("adder variants differ")
	}
}

func TestFacadeFunctionFamilies(t *testing.T) {
	if OptimalOrdering(AchillesHeel(3), nil).Size != 8 {
		t.Errorf("AchillesHeel optimum wrong")
	}
	if OptimalOrdering(Parity(4), nil).MinCost != 7 {
		t.Errorf("Parity optimum wrong")
	}
	if Majority(3).CountOnes() != 4 {
		t.Errorf("Majority wrong")
	}
	if Threshold(3, 0).CountOnes() != 8 {
		t.Errorf("Threshold wrong")
	}
	if HiddenWeightedBit(4).NumVars() != 4 {
		t.Errorf("HWB wrong")
	}
	if AdderSumBit(2, 0).NumVars() != 4 {
		t.Errorf("AdderSumBit wrong")
	}
	if Multiplexer(1).NumVars() != 3 {
		t.Errorf("Multiplexer wrong")
	}
	rng := rand.New(rand.NewSource(1))
	if RandomTable(5, rng).NumVars() != 5 {
		t.Errorf("RandomTable wrong")
	}
}
