package obddopt

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func TestFacadePLA(t *testing.T) {
	src := ".i 2\n.o 1\n11 1\n.e\n"
	p, err := ParsePLA(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParsePLA: %v", err)
	}
	tt := p.OutputTable(0)
	if mustSolve(t, tt).MinCost != 2 {
		t.Errorf("AND cover optimum wrong")
	}
	back := PLAFromTable(tt)
	if !back.OutputTable(0).Equal(tt) {
		t.Errorf("PLAFromTable round trip failed")
	}
}

// TestPLASolveRoundTrip drives the full frontend-to-facade pipeline: a
// multi-output PLA source parses, each output table solves through the
// unified Solve API, and the certified optimum is consistent with an
// explicit size evaluation under the returned ordering.
func TestPLASolveRoundTrip(t *testing.T) {
	// Two outputs over three inputs: an AND3 cover and a parity-ish one.
	src := ".i 3\n.o 2\n111 10\n1-0 01\n011 01\n.e\n"
	p, err := ParsePLA(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParsePLA: %v", err)
	}
	for out := 0; out < 2; out++ {
		tt := p.OutputTable(out)
		res, err := Solve(context.Background(), tt, WithSolver("fs"))
		if err != nil {
			t.Fatalf("output %d: %v", out, err)
		}
		if res.N != 3 {
			t.Fatalf("output %d: N = %d", out, res.N)
		}
		if got := SizeUnder(tt, res.Ordering, OBDD); got != res.Size {
			t.Errorf("output %d: SizeUnder(optimal ordering) = %d, result says %d", out, got, res.Size)
		}
	}
	// The two outputs jointly, through the shared facade.
	shared, err := SolveShared(context.Background(), []*Table{p.OutputTable(0), p.OutputTable(1)})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Roots != 2 {
		t.Errorf("shared roots = %d", shared.Roots)
	}
}

func TestFacadeCircuit(t *testing.T) {
	c := RippleCarryAdder(2)
	if len(c.Outputs) != 3 {
		t.Fatalf("adder outputs %d", len(c.Outputs))
	}
	shared, err := SolveShared(context.Background(), c.AllOutputTables())
	if err != nil {
		t.Fatal(err)
	}
	if shared.Roots != 3 || shared.MinCost == 0 {
		t.Errorf("shared adder optimization wrong: %+v", shared)
	}
	c2 := NewCircuit(2)
	if c2.NumInputs != 2 {
		t.Errorf("NewCircuit wrong")
	}
	if _, err := ParseCircuit(strings.NewReader("inputs 1\noutputs 0\n")); err != nil {
		t.Errorf("ParseCircuit: %v", err)
	}
	if ComparatorCircuit(2).OutputTable(0).Equal(Comparator(2)) == false {
		t.Errorf("comparator circuit != comparator function")
	}
	if len(PriorityEncoderCircuit(4).Outputs) != 3 {
		t.Errorf("priority encoder outputs wrong")
	}
	if len(PopCountCircuit(3).Outputs) != 2 {
		t.Errorf("popcount outputs wrong")
	}
	if CarrySelectAdder(2).OutputTable(0).Equal(RippleCarryAdder(2).OutputTable(0)) == false {
		t.Errorf("adder variants differ")
	}
}

// TestCircuitSolveRoundTrip parses a gate netlist, evaluates it to truth
// tables, and solves each through the facade — the full circuit
// frontend to Solve pipeline on a hand-written source.
func TestCircuitSolveRoundTrip(t *testing.T) {
	// Signals 0-3 are inputs; 4 = x0·x1, 5 = x2·x3, 6 = 4 + 5 — the
	// Fig. 1 function with k=2 pairs, optimum size 2k+2 = 6.
	src := `inputs 4
4 = and 0 1
5 = and 2 3
6 = or 4 5
outputs 6
`
	c, err := ParseCircuit(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseCircuit: %v", err)
	}
	tt := c.OutputTable(0)
	res, err := Solve(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 6 {
		t.Errorf("netlist optimum size = %d, want 6 (Fig. 1 with k=2)", res.Size)
	}
	// The same function built directly must agree.
	direct, err := Solve(context.Background(), AchillesHeel(2))
	if err != nil {
		t.Fatal(err)
	}
	if direct.MinCost != res.MinCost {
		t.Errorf("netlist MinCost %d != direct construction %d", res.MinCost, direct.MinCost)
	}
}

func TestFacadeFunctionFamilies(t *testing.T) {
	if mustSolve(t, AchillesHeel(3)).Size != 8 {
		t.Errorf("AchillesHeel optimum wrong")
	}
	if mustSolve(t, Parity(4)).MinCost != 7 {
		t.Errorf("Parity optimum wrong")
	}
	if Majority(3).CountOnes() != 4 {
		t.Errorf("Majority wrong")
	}
	if Threshold(3, 0).CountOnes() != 8 {
		t.Errorf("Threshold wrong")
	}
	if HiddenWeightedBit(4).NumVars() != 4 {
		t.Errorf("HWB wrong")
	}
	if AdderSumBit(2, 0).NumVars() != 4 {
		t.Errorf("AdderSumBit wrong")
	}
	if Multiplexer(1).NumVars() != 3 {
		t.Errorf("Multiplexer wrong")
	}
	rng := rand.New(rand.NewSource(1))
	if RandomTable(5, rng).NumVars() != 5 {
		t.Errorf("RandomTable wrong")
	}
}
