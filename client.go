package obddopt

import (
	"context"
	"net/http"

	"obddopt/internal/artifact"
	"obddopt/internal/server"
)

// This file is the public face of the obddd network solve service
// (internal/server, cmd/obddd): the typed client, the service
// configuration for embedding the server in another process, and the
// admission sentinels. Remote solves keep the in-process error
// contract — errors.Is against ErrCanceled / ErrBudgetExceeded /
// ErrInvalidInput works identically for both — so callers switch
// between local Solve and Client.Solve without touching their error
// handling.

// Client is the typed client of an obddd solve service; create one with
// Dial. It is safe for concurrent use.
type Client = server.Client

// ClientParams configures one remote solve (solver, rule, deadline,
// budget, cache bypass); the zero value requests the portfolio solver
// on OBDDs under the server's default limits.
type ClientParams = server.Params

// BatchResult is one outcome of Client.SolveBatch, index-aligned with
// its input.
type BatchResult = server.BatchResult

// SchedulingEcho reports the server's batch co-scheduling decision for
// one item (see ClientParams.Coschedule); it arrives in
// BatchResult.Scheduling when the request carried hints.
type SchedulingEcho = server.SchedulingEcho

// ServerConfig sizes an embedded solve service (workers, queue depth,
// deadline and budget caps, cache bytes); the zero value selects
// production defaults.
type ServerConfig = server.Config

// Server is the solve service itself, for embedding its Handler into an
// existing http.Server; cmd/obddd is the standalone daemon.
type Server = server.Server

// Admission sentinels of the solve service; test with errors.Is.
var (
	// ErrSaturated reports that the server's admission queue was full
	// (HTTP 429); retry after the response's Retry-After interval.
	ErrSaturated = server.ErrSaturated
	// ErrDraining reports that the server is shutting down and no
	// longer admits work (HTTP 503).
	ErrDraining = server.ErrDraining
)

// Artifact is a function's reduced OBDD under a concrete ordering in
// the compact canonical level-indexed form served by /v1/solve and
// emitted by optobdd -emit-bdd: equal (function, ordering) pairs
// always encode to byte-identical artifacts, so the bytes are suitable
// as content-addressed store values. Obtain one locally with
// BuildArtifact or SolveArtifact, remotely with Client.SolveArtifact,
// or from stored bytes with DecodeArtifact.
type Artifact = artifact.Artifact

// ArtifactMediaType is the HTTP content type of a raw encoded artifact
// (Client.SolveArtifactRaw negotiates it via the Accept header).
const ArtifactMediaType = artifact.MediaType

// BuildArtifact constructs the canonical artifact of tt's reduced OBDD
// under the given bottom-up ordering (nil selects the natural
// ordering). Serialize with Artifact.Encode.
func BuildArtifact(tt *Table, order Ordering) (*Artifact, error) {
	return artifact.Build(tt, order)
}

// DecodeArtifact parses and fully validates encoded artifact bytes; it
// never panics on arbitrary input. Accepted streams are canonical:
// re-encoding reproduces the input byte for byte.
func DecodeArtifact(data []byte) (*Artifact, error) {
	return artifact.Decode(data)
}

// VerifyArtifact checks that a denotes exactly the function tt
// (exhaustively up to 16 variables, by deterministic sampling above).
func VerifyArtifact(a *Artifact, tt *Table) error {
	return artifact.Verify(a, tt)
}

// Dial validates baseURL ("http://host:port") and verifies an obddd
// service is reachable there.
func Dial(ctx context.Context, baseURL string) (*Client, error) {
	return server.Dial(ctx, baseURL)
}

// DialWithClient is Dial with a caller-supplied http.Client (custom
// timeouts, transports); nil uses a fresh default client.
func DialWithClient(ctx context.Context, baseURL string, hc *http.Client) (*Client, error) {
	return server.DialWithClient(ctx, baseURL, hc)
}

// NewServer returns a ready-to-serve solve service; ctx anchors its
// lifetime (canceling it is equivalent to Drain). Mount its Handler
// wherever the process serves HTTP.
func NewServer(ctx context.Context, cfg ServerConfig) *Server {
	return server.New(ctx, cfg)
}
