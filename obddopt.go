// Package obddopt finds provably optimal variable orderings for binary
// decision diagrams. It implements the Friedman–Supowit exact dynamic
// program (DAC 1987): given the truth table of a Boolean function over n
// variables — or any representation evaluable in polynomial time — it
// computes a variable ordering minimizing the size of the reduced ordered
// BDD, in O*(3^n) time and space, far below the trivial O*(n!·2^n)
// enumeration. The same engine minimizes zero-suppressed BDDs (ZDDs) and
// multi-terminal BDDs (MTBDDs), and a divide-and-conquer variant driven by
// simulated quantum minimum finding reproduces the structure of the
// quantum speedup literature built on this dynamic program.
//
// # Quick start
//
//	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4 | x5 & x6", 6)
//	res, err := obddopt.Solve(context.Background(), f)
//	if err != nil {
//	    log.Fatal(err)
//	}
//	fmt.Println(res.Size, res.Ordering) // 8 (x1, x2, x3, x4, x5, x6)
//
// Solve races the exact solvers behind a heuristic seed (the portfolio)
// and honors context cancellation, deadlines (WithDeadline) and resource
// budgets (WithBudget); WithSolver selects a single strategy. The same
// engine is served over HTTP by cmd/obddd — Dial returns a Client whose
// Solve keeps this exact error contract across the wire.
//
// This package is a facade over the implementation packages under
// internal/: the type aliases below expose the full public surface.
//
// Conventions: variables are 0-based in code (the formula syntax uses the
// papers' 1-based x1, x2, …); orderings are stored bottom-up —
// Ordering[0] is the variable read last, adjacent to the terminals — and
// rendered root-first by their String method, matching the papers.
package obddopt

import (
	"fmt"
	"io"

	"obddopt/internal/bdd"
	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/dynbdd"
	"obddopt/internal/expr"
	"obddopt/internal/heuristics"
	"obddopt/internal/obs"
	"obddopt/internal/sym"
	"obddopt/internal/truthtable"
)

// Table is the truth table of a Boolean function (see
// internal/truthtable): the canonical input representation of the exact
// algorithms.
type Table = truthtable.Table

// MultiTable is the truth table of a multi-valued function, the MTBDD
// minimization input.
type MultiTable = truthtable.MultiTable

// Ordering is a variable ordering, stored bottom-up.
type Ordering = truthtable.Ordering

// Result reports an exact minimization: minimum size, an optimal ordering
// and the per-level width profile.
type Result = core.Result

// Meter accumulates operation counts (table-compaction cells, peak space).
type Meter = core.Meter

// Rule selects the diagram variant being minimized.
type Rule = core.Rule

// The supported diagram rules.
const (
	OBDD = core.OBDD
	ZDD  = core.ZDD
)

// NewTable returns the all-false function over n variables.
func NewTable(n int) *Table { return truthtable.New(n) }

// FromFunc builds a truth table by evaluating f on all 2^n assignments —
// the O*(2^n) preparation step that extends the algorithms to any
// polynomial-time-evaluable representation (Corollary 2 of the
// literature).
func FromFunc(n int, f func(x []bool) bool) *Table { return truthtable.FromFunc(n, f) }

// ParseTableHex parses the "n:hexdigits" truth-table literal produced by
// (*Table).Hex.
func ParseTableHex(s string) (*Table, error) { return truthtable.ParseHex(s) }

// ParseExpr compiles a Boolean formula over x1, x2, … (operators ! & ^ |
// -> <->, constants 0/1, parentheses) to its truth table over n variables.
func ParseExpr(src string, n int) (*Table, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return expr.ToTruthTable(e, n)
}

// MustParseExpr is ParseExpr that panics on error, for fixed literals.
func MustParseExpr(src string, n int) *Table {
	t, err := ParseExpr(src, n)
	if err != nil {
		panic(fmt.Sprintf("obddopt: %v", err))
	}
	return t
}

// OptimalOrderingMulti minimizes a multi-terminal decision diagram for a
// multi-valued function (the papers' Remark 2 generalization). It accepts
// the same functional options as Solve that apply to a single serial DP
// run: WithMeter, WithTrace (WithRule must stay at the OBDD default — the
// MTBDD generalization has no ZDD analogue).
func OptimalOrderingMulti(mt *MultiTable, opts ...Option) *Result {
	var cfg solveConfig
	for _, o := range opts {
		o(&cfg)
	}
	return core.OptimalOrderingMulti(mt, &cfg.opts)
}

// SharedResult reports a multi-rooted (shared-forest) minimization; see
// SolveShared.
type SharedResult = core.SharedResult

// SharedSizeUnder returns the total shared-forest size of the functions
// under the given ordering.
func SharedSizeUnder(tts []*Table, order Ordering, rule Rule) uint64 {
	return core.SharedSizeUnder(tts, order, rule)
}

// Profile returns the per-level widths of the diagram of tt under an
// arbitrary ordering (no optimization), bottom-up.
func Profile(tt *Table, order Ordering, rule Rule) []uint64 {
	return core.Profile(tt, order, rule, nil)
}

// SizeUnder returns the total diagram size of tt under the ordering.
func SizeUnder(tt *Table, order Ordering, rule Rule) uint64 {
	return core.SizeUnder(tt, order, rule, nil)
}

// HeuristicResult reports a heuristic ordering search outcome.
type HeuristicResult = heuristics.Result

// Sift runs Rudell-style sifting (exact cost oracle, heuristic search);
// maxPasses 0 means run to convergence.
func Sift(tt *Table, rule Rule, maxPasses int) HeuristicResult {
	return heuristics.Sift(tt, rule, maxPasses)
}

// WindowPermute runs window permutation with window width w ∈ {2, 3, 4}.
func WindowPermute(tt *Table, rule Rule, w int) HeuristicResult {
	return heuristics.Window(tt, rule, w)
}

// AnnealOptions configures simulated annealing over orderings.
type AnnealOptions = heuristics.AnnealOptions

// Anneal runs simulated annealing on the ordering space (random
// transpositions, geometric cooling, exact cost evaluation).
func Anneal(tt *Table, rule Rule, opts *AnnealOptions) HeuristicResult {
	return heuristics.Anneal(tt, rule, opts)
}

// VarSet is a set of variables encoded as a bitmask (bit i = variable i),
// used for symmetry groups and quantification.
type VarSet = bitops.Mask

// SymmetryGroups returns the symmetry groups of f (variables whose
// exchange leaves f invariant) as variable sets sorted by smallest
// member. Orderings differing only inside a group yield identical
// diagrams.
func SymmetryGroups(f *Table) []VarSet { return sym.Groups(f) }

// GroupSiftResult reports a symmetric-sifting outcome.
type GroupSiftResult = sym.Result

// GroupSift runs symmetric sifting: symmetry groups are detected and
// sifted as indivisible blocks, typically matching plain sifting's
// quality at a fraction of the evaluations on structured functions.
func GroupSift(f *Table, rule Rule) GroupSiftResult { return sym.GroupSift(f, rule) }

// Tracer receives typed solver events (DP layers, compactions,
// branch-and-bound nodes, divide-and-conquer splits, heuristic passes,
// quantum query batches); attach one via Options.Trace or the per-solver
// option structs. A nil tracer costs nothing.
type Tracer = obs.Tracer

// TraceEvent is one typed solver event; see internal/obs for the kinds
// and field conventions.
type TraceEvent = obs.Event

// RunReport is the machine-readable run summary emitted by the CLI
// `-json` modes and assembled by NewRunCollector.
type RunReport = obs.RunReport

// NewTraceRecorder returns a Tracer that buffers every event in memory,
// for tests and offline analysis.
func NewTraceRecorder() *obs.Recorder { return &obs.Recorder{} }

// NewProgressTracer returns a Tracer that renders coarse live progress
// (layer completions, incumbent improvements) to w.
func NewProgressTracer(w io.Writer) Tracer { return obs.NewProgress(w) }

// NewRunCollector returns a Tracer folding the event stream into a
// RunReport as it arrives; call Report when the run finishes.
func NewRunCollector() *obs.Collector { return obs.NewCollector() }

// MultiTracer fans events out to several tracers; nil entries are
// skipped and an empty call returns nil.
func MultiTracer(tracers ...Tracer) Tracer { return obs.Multi(tracers...) }

// StartDebugServer serves net/http/pprof and expvar metrics
// (/debug/vars, including the process-wide "obddopt" counter map) on
// addr, returning the bound address. Pass "localhost:0" for an
// OS-assigned port.
func StartDebugServer(addr string) (string, error) { return obs.StartDebugServer(addr) }

// BDDManager is a shared-node BDD package (unique table, memoized ITE,
// quantification, satisfiability counting, DOT export).
type BDDManager = bdd.Manager

// BDDNode identifies a node within a BDDManager.
type BDDNode = bdd.Node

// NewBDDManager returns a BDD manager over n variables under the given
// bottom-up ordering (nil = variable 0 at the root).
func NewBDDManager(n int, order Ordering) *BDDManager { return bdd.New(n, order) }

// ReorderableManager is a dynamically reorderable BDD manager (CUDD-style
// reference-counted nodes with in-place adjacent-level swaps): see
// internal/dynbdd. Roots stay valid across reordering.
type ReorderableManager = dynbdd.Manager

// NewReorderableManager returns a reorderable manager over n variables
// under the given bottom-up ordering (nil = variable 0 at the root).
// Typical flow:
//
//	m := obddopt.NewReorderableManager(f.NumVars(), start)
//	root := m.FromTruthTable(f)
//	m.Sift(0)              // in-place heuristic reordering
//	m.ExactReorder(root)   // in-place provably optimal reordering
func NewReorderableManager(n int, order Ordering) *ReorderableManager {
	return dynbdd.New(n, order)
}

// BuildBDD constructs the reduced OBDD of tt in a fresh manager under the
// given ordering and returns the manager and root — the way to
// materialize the minimum diagram found by Solve:
//
//	res, err := obddopt.Solve(ctx, f)
//	// handle err
//	m, root := obddopt.BuildBDD(f, res.Ordering)
func BuildBDD(tt *Table, order Ordering) (*BDDManager, BDDNode) {
	m := bdd.New(tt.NumVars(), order)
	return m, m.FromTruthTable(tt)
}
