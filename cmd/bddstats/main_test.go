package main

import (
	"testing"

	"obddopt/internal/truthtable"
)

func TestRunBasics(t *testing.T) {
	if err := run("x1 & x2 | x3 & x4", 0, "", "", true); err != nil {
		t.Errorf("expr+compare: %v", err)
	}
	if err := run("", 0, "3:e8", "3,1,2", false); err != nil {
		t.Errorf("hex+order: %v", err)
	}
	if err := run("x1 ^ x2", 4, "", "", false); err != nil {
		t.Errorf("explicit n: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"no source", run("", 0, "", "", false)},
		{"two sources", run("x1", 0, "1:2", "", false)},
		{"bad expr", run("x1 |", 0, "", "", false)},
		{"bad hex", run("", 0, "nope", "", false)},
		{"order length", run("x1 & x2", 0, "", "1", false)},
		{"order value", run("x1 & x2", 0, "", "1,5", false)},
		{"order dup", run("x1 & x2", 0, "", "1,1", false)},
		{"order junk", run("x1 & x2", 0, "", "a,b", false)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseOrder(t *testing.T) {
	ord, err := parseOrder("3,1,2", 3)
	if err != nil {
		t.Fatalf("parseOrder: %v", err)
	}
	// Root-first 3,1,2 (1-based) → bottom-up (1,0,2) 0-based.
	want := truthtable.FromRootFirst([]int{2, 0, 1})
	for i := range want {
		if ord[i] != want[i] {
			t.Errorf("parseOrder = %v, want %v", ord, want)
		}
	}
}
