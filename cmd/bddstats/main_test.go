package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

func TestRunBasics(t *testing.T) {
	if err := run(io.Discard, "x1 & x2 | x3 & x4", 0, "", "", true, false); err != nil {
		t.Errorf("expr+compare: %v", err)
	}
	if err := run(io.Discard, "", 0, "3:e8", "3,1,2", false, false); err != nil {
		t.Errorf("hex+order: %v", err)
	}
	if err := run(io.Discard, "x1 ^ x2", 4, "", "", false, false); err != nil {
		t.Errorf("explicit n: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "x1 & x2 | x3 & x4", 0, "", "", true, true); err != nil {
		t.Fatalf("json run: %v", err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "bddstats" || rep.N != 4 {
		t.Errorf("report identity wrong: tool=%s n=%d", rep.Tool, rep.N)
	}
	details, ok := rep.Details.(map[string]any)
	if !ok {
		t.Fatalf("details missing: %T", rep.Details)
	}
	rules, ok := details["rules"].([]any)
	if !ok || len(rules) != 2 {
		t.Errorf("want OBDD+ZDD rule stats, got %v", details["rules"])
	}
	if _, ok := details["compare"].(map[string]any); !ok {
		t.Errorf("compare section missing: %v", details["compare"])
	}
	if !strings.Contains(out.String(), `"rule": "OBDD"`) {
		t.Errorf("rule names not serialized: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"no source", run(io.Discard, "", 0, "", "", false, false)},
		{"two sources", run(io.Discard, "x1", 0, "1:2", "", false, false)},
		{"bad expr", run(io.Discard, "x1 |", 0, "", "", false, false)},
		{"bad hex", run(io.Discard, "", 0, "nope", "", false, false)},
		{"order length", run(io.Discard, "x1 & x2", 0, "", "1", false, false)},
		{"order value", run(io.Discard, "x1 & x2", 0, "", "1,5", false, false)},
		{"order dup", run(io.Discard, "x1 & x2", 0, "", "1,1", false, false)},
		{"order junk", run(io.Discard, "x1 & x2", 0, "", "a,b", false, false)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseOrder(t *testing.T) {
	ord, err := parseOrder("3,1,2", 3)
	if err != nil {
		t.Fatalf("parseOrder: %v", err)
	}
	// Root-first 3,1,2 (1-based) → bottom-up (1,0,2) 0-based.
	want := truthtable.FromRootFirst([]int{2, 0, 1})
	for i := range want {
		if ord[i] != want[i] {
			t.Errorf("parseOrder = %v, want %v", ord, want)
		}
	}
}
