// Command bddstats inspects a Boolean function's decision diagrams: sizes
// and level profiles under a chosen (or the natural) ordering for both the
// OBDD and ZDD rules, satisfiability counts, support, and how the chosen
// ordering compares to the exact optimum and the sifting heuristic.
//
// Usage examples:
//
//	bddstats -expr 'x1 & x2 | x3 & x4'
//	bddstats -expr '…' -order 3,1,2,4       # root-first, 1-based
//	bddstats -hex '4:8001' -compare
//	bddstats -hex '4:8001' -compare -json   # machine-readable report
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"obddopt/internal/core"
	"obddopt/internal/expr"
	"obddopt/internal/heuristics"
	"obddopt/internal/obs"
	"obddopt/internal/sym"
	"obddopt/internal/truthtable"
)

func main() {
	var (
		exprSrc  = flag.String("expr", "", "Boolean formula over x1, x2, …")
		nVars    = flag.Int("n", 0, "variable count for -expr (default: highest used)")
		hexSrc   = flag.String("hex", "", "truth-table literal n:hexdigits")
		orderStr = flag.String("order", "", "root-first 1-based ordering, e.g. 3,1,2 (default natural)")
		compare  = flag.Bool("compare", false, "also compute the exact optimum and the sifting result")
		jsonOut  = flag.Bool("json", false, "emit a JSON run report on stdout instead of the text summary")
	)
	flag.Parse()
	// Buffer stdout and flush exactly once, after the run completes, so
	// output is emitted deterministically even when interleaved with
	// stderr diagnostics.
	w := bufio.NewWriter(os.Stdout)
	err := run(w, *exprSrc, *nVars, *hexSrc, *orderStr, *compare, *jsonOut)
	w.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddstats:", err)
		os.Exit(1)
	}
}

// statsReport is the `details` payload of the bddstats -json report.
type statsReport struct {
	Hex        string              `json:"hex"`
	Satisfying uint64              `json:"satisfying"`
	Assignment uint64              `json:"assignments"`
	Support    int                 `json:"support"`
	Ordering   truthtable.Ordering `json:"ordering"`
	Rules      []ruleStats         `json:"rules"`
	Symmetry   []string            `json:"symmetry,omitempty"`
	Compare    *compareStats       `json:"compare,omitempty"`
}

type ruleStats struct {
	Rule    core.Rule `json:"rule"`
	Size    uint64    `json:"size"`
	Profile []uint64  `json:"profile"`
}

type compareStats struct {
	OptimalSize     uint64              `json:"optimal_size"`
	OptimalOrdering truthtable.Ordering `json:"optimal_ordering"`
	SiftCost        uint64              `json:"sift_nonterminals"`
	SiftOrdering    truthtable.Ordering `json:"sift_ordering"`
	Ratio           float64             `json:"size_ratio"`
}

func run(w io.Writer, exprSrc string, nVars int, hexSrc, orderStr string, compare, jsonOut bool) error {
	var tt *truthtable.Table
	switch {
	case exprSrc != "" && hexSrc == "":
		e, err := expr.Parse(exprSrc)
		if err != nil {
			return err
		}
		n := nVars
		if n == 0 {
			n = e.MaxVar() + 1
		}
		tt, err = expr.ToTruthTable(e, n)
		if err != nil {
			return err
		}
	case hexSrc != "" && exprSrc == "":
		var err error
		tt, err = truthtable.ParseHex(hexSrc)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("give exactly one of -expr or -hex")
	}
	n := tt.NumVars()

	ord := truthtable.ReverseOrdering(n) // natural: x1 at the root
	if orderStr != "" {
		parsed, err := parseOrder(orderStr, n)
		if err != nil {
			return err
		}
		ord = parsed
	}

	stats := statsReport{
		Hex:        tt.Hex(),
		Satisfying: tt.CountOnes(),
		Assignment: tt.Size(),
		Support:    tt.Support().Count(),
		Ordering:   ord,
	}
	for _, rule := range []core.Rule{core.OBDD, core.ZDD} {
		stats.Rules = append(stats.Rules, ruleStats{
			Rule:    rule,
			Size:    core.SizeUnder(tt, ord, rule, nil),
			Profile: core.Profile(tt, ord, rule, nil),
		})
	}
	groups := sym.Groups(tt)
	if len(groups) < n {
		for _, g := range groups {
			var names []string
			for _, v := range g.Members(nil) {
				names = append(names, fmt.Sprintf("x%d", v+1))
			}
			stats.Symmetry = append(stats.Symmetry, "{"+strings.Join(names, ",")+"}")
		}
	}
	if compare {
		opt := core.OptimalOrdering(tt, nil)
		sift := heuristics.Sift(tt, core.OBDD, 0)
		cur := core.SizeUnder(tt, ord, core.OBDD, nil)
		stats.Compare = &compareStats{
			OptimalSize:     opt.Size,
			OptimalOrdering: opt.Ordering,
			SiftCost:        sift.MinCost,
			SiftOrdering:    sift.Ordering,
			Ratio:           float64(cur) / float64(opt.Size),
		}
	}

	if jsonOut {
		rep := &obs.RunReport{Tool: "bddstats", N: n, Details: stats}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Fprintf(w, "function:   %d variables, %d/%d satisfying, support %d vars\n",
		n, stats.Satisfying, stats.Assignment, stats.Support)
	fmt.Fprintf(w, "hex:        %s\n", stats.Hex)
	fmt.Fprintf(w, "ordering:   %s (read first → last)\n", ord)
	for _, rs := range stats.Rules {
		fmt.Fprintf(w, "%-5s size: %d   level widths (bottom-up): %v\n", rs.Rule, rs.Size, rs.Profile)
	}
	if len(stats.Symmetry) > 0 {
		fmt.Fprintf(w, "symmetry:   %s (%.3g effective orderings of %d! total)\n",
			strings.Join(stats.Symmetry, " "), sym.EffectiveOrderings(groups), n)
	} else {
		fmt.Fprintf(w, "symmetry:   none (all %d variables asymmetric)\n", n)
	}
	if stats.Compare != nil {
		c := stats.Compare
		fmt.Fprintf(w, "optimum:    %d nodes under %s\n", c.OptimalSize, c.OptimalOrdering)
		fmt.Fprintf(w, "sifting:    %d nonterminals under %s\n", c.SiftCost, c.SiftOrdering)
		fmt.Fprintf(w, "your order: %.3f× the optimal size\n", c.Ratio)
	}
	return nil
}

func parseOrder(s string, n int) (truthtable.Ordering, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("ordering has %d entries, function has %d variables", len(parts), n)
	}
	rootFirst := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 || v > n {
			return nil, fmt.Errorf("bad ordering entry %q (1-based variable numbers)", p)
		}
		rootFirst[i] = v - 1
	}
	ord := truthtable.FromRootFirst(rootFirst)
	if !ord.Valid() {
		return nil, fmt.Errorf("ordering is not a permutation")
	}
	return ord, nil
}
