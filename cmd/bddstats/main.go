// Command bddstats inspects a Boolean function's decision diagrams: sizes
// and level profiles under a chosen (or the natural) ordering for both the
// OBDD and ZDD rules, satisfiability counts, support, and how the chosen
// ordering compares to the exact optimum and the sifting heuristic.
//
// Usage examples:
//
//	bddstats -expr 'x1 & x2 | x3 & x4'
//	bddstats -expr '…' -order 3,1,2,4       # root-first, 1-based
//	bddstats -hex '4:8001' -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"obddopt/internal/core"
	"obddopt/internal/expr"
	"obddopt/internal/heuristics"
	"obddopt/internal/sym"
	"obddopt/internal/truthtable"
)

func main() {
	var (
		exprSrc  = flag.String("expr", "", "Boolean formula over x1, x2, …")
		nVars    = flag.Int("n", 0, "variable count for -expr (default: highest used)")
		hexSrc   = flag.String("hex", "", "truth-table literal n:hexdigits")
		orderStr = flag.String("order", "", "root-first 1-based ordering, e.g. 3,1,2 (default natural)")
		compare  = flag.Bool("compare", false, "also compute the exact optimum and the sifting result")
	)
	flag.Parse()
	if err := run(*exprSrc, *nVars, *hexSrc, *orderStr, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "bddstats:", err)
		os.Exit(1)
	}
}

func run(exprSrc string, nVars int, hexSrc, orderStr string, compare bool) error {
	var tt *truthtable.Table
	switch {
	case exprSrc != "" && hexSrc == "":
		e, err := expr.Parse(exprSrc)
		if err != nil {
			return err
		}
		n := nVars
		if n == 0 {
			n = e.MaxVar() + 1
		}
		tt, err = expr.ToTruthTable(e, n)
		if err != nil {
			return err
		}
	case hexSrc != "" && exprSrc == "":
		var err error
		tt, err = truthtable.ParseHex(hexSrc)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("give exactly one of -expr or -hex")
	}
	n := tt.NumVars()

	ord := truthtable.ReverseOrdering(n) // natural: x1 at the root
	if orderStr != "" {
		parsed, err := parseOrder(orderStr, n)
		if err != nil {
			return err
		}
		ord = parsed
	}

	fmt.Printf("function:   %d variables, %d/%d satisfying, support %d vars\n",
		n, tt.CountOnes(), tt.Size(), tt.Support().Count())
	fmt.Printf("hex:        %s\n", tt.Hex())
	fmt.Printf("ordering:   %s (read first → last)\n", ord)
	for _, rule := range []core.Rule{core.OBDD, core.ZDD} {
		widths := core.Profile(tt, ord, rule, nil)
		size := core.SizeUnder(tt, ord, rule, nil)
		fmt.Printf("%-5s size: %d   level widths (bottom-up): %v\n", rule, size, widths)
	}
	groups := sym.Groups(tt)
	if len(groups) < n {
		var parts []string
		for _, g := range groups {
			var names []string
			for _, v := range g.Members(nil) {
				names = append(names, fmt.Sprintf("x%d", v+1))
			}
			parts = append(parts, "{"+strings.Join(names, ",")+"}")
		}
		fmt.Printf("symmetry:   %s (%.3g effective orderings of %d! total)\n",
			strings.Join(parts, " "), sym.EffectiveOrderings(groups), n)
	} else {
		fmt.Printf("symmetry:   none (all %d variables asymmetric)\n", n)
	}
	if compare {
		opt := core.OptimalOrdering(tt, nil)
		sift := heuristics.Sift(tt, core.OBDD, 0)
		cur := core.SizeUnder(tt, ord, core.OBDD, nil)
		fmt.Printf("optimum:    %d nodes under %s\n", opt.Size, opt.Ordering)
		fmt.Printf("sifting:    %d nonterminals under %s\n", sift.MinCost, sift.Ordering)
		fmt.Printf("your order: %.3f× the optimal size\n", float64(cur)/float64(opt.Size))
	}
	return nil
}

func parseOrder(s string, n int) (truthtable.Ordering, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("ordering has %d entries, function has %d variables", len(parts), n)
	}
	rootFirst := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 || v > n {
			return nil, fmt.Errorf("bad ordering entry %q (1-based variable numbers)", p)
		}
		rootFirst[i] = v - 1
	}
	ord := truthtable.FromRootFirst(rootFirst)
	if !ord.Valid() {
		return nil, fmt.Errorf("ordering is not a permutation")
	}
	return ord, nil
}
