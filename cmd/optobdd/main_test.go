package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const adderPLA = ".i 3\n.o 2\n100 10\n010 10\n001 10\n111 11\n11- 01\n1-1 01\n-11 01\n.e\n"

const andCircuit = "inputs 2\n2 = and 0 1\n3 = not 2\noutputs 2 3\n"

func TestRunExpr(t *testing.T) {
	for _, algo := range []string{"fs", "brute", "bnb", "dnc"} {
		if err := run("x1 & x2 | x3 & x4", 0, "", "", "", 0, algo, "obdd", true, ""); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunHexAndZDD(t *testing.T) {
	if err := run("", 0, "3:e8", "", "", 0, "fs", "zdd", false, ""); err != nil {
		t.Errorf("hex+zdd: %v", err)
	}
}

func TestRunCircuitAndPLA(t *testing.T) {
	ck := writeTemp(t, "and.ckt", andCircuit)
	if err := run("", 0, "", ck, "", 1, "fs", "obdd", false, ""); err != nil {
		t.Errorf("circuit: %v", err)
	}
	pl := writeTemp(t, "adder.pla", adderPLA)
	if err := run("", 0, "", "", pl, 1, "fs", "obdd", false, ""); err != nil {
		t.Errorf("pla: %v", err)
	}
}

func TestRunDotOutput(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := run("x1 ^ x2", 0, "", "", "", 0, "fs", "obdd", false, dot); err != nil {
		t.Fatalf("dot: %v", err)
	}
	data, err := os.ReadFile(dot)
	if err != nil || len(data) == 0 {
		t.Errorf("dot file not written: %v", err)
	}
	// DOT output is OBDD-only.
	if err := run("x1 ^ x2", 0, "", "", "", 0, "fs", "zdd", false, dot); err == nil {
		t.Errorf("zdd+dot should error")
	}
}

func TestRunShared(t *testing.T) {
	pl := writeTemp(t, "adder.pla", adderPLA)
	if err := runShared("", pl, "obdd", true); err != nil {
		t.Errorf("shared pla: %v", err)
	}
	ck := writeTemp(t, "and.ckt", andCircuit)
	if err := runShared(ck, "", "obdd", false); err != nil {
		t.Errorf("shared circuit: %v", err)
	}
	if err := runShared("", "", "obdd", false); err == nil {
		t.Errorf("shared without source should error")
	}
	if err := runShared(ck, pl, "obdd", false); err == nil {
		t.Errorf("shared with two sources should error")
	}
	if err := runShared("", pl, "frob", false); err == nil {
		t.Errorf("bad rule should error")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"no source", func() error { return run("", 0, "", "", "", 0, "fs", "obdd", false, "") }},
		{"two sources", func() error { return run("x1", 0, "1:2", "", "", 0, "fs", "obdd", false, "") }},
		{"bad algo", func() error { return run("x1", 0, "", "", "", 0, "frob", "obdd", false, "") }},
		{"bad rule", func() error { return run("x1", 0, "", "", "", 0, "fs", "frob", false, "") }},
		{"bad expr", func() error { return run("x1 &", 0, "", "", "", 0, "fs", "obdd", false, "") }},
		{"const expr", func() error { return run("0", 0, "", "", "", 0, "fs", "obdd", false, "") }},
		{"bad hex", func() error { return run("", 0, "zz", "", "", 0, "fs", "obdd", false, "") }},
		{"missing file", func() error { return run("", 0, "", "/nonexistent", "", 0, "fs", "obdd", false, "") }},
		{"missing pla", func() error { return run("", 0, "", "", "/nonexistent", 0, "fs", "obdd", false, "") }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunOutputRange(t *testing.T) {
	ck := writeTemp(t, "and.ckt", andCircuit)
	if err := run("", 0, "", ck, "", 9, "fs", "obdd", false, ""); err == nil {
		t.Errorf("out-of-range circuit output should error")
	}
	pl := writeTemp(t, "adder.pla", adderPLA)
	if err := run("", 0, "", "", pl, 9, "fs", "obdd", false, ""); err == nil {
		t.Errorf("out-of-range PLA output should error")
	}
}
