package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"obddopt/internal/obs"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// cfg returns a config with quiet output streams; tests override fields.
func cfg(mut func(*config)) *config {
	c := &config{algo: "fs", ruleName: "obdd", stdout: io.Discard, stderr: io.Discard}
	mut(c)
	return c
}

const adderPLA = ".i 3\n.o 2\n100 10\n010 10\n001 10\n111 11\n11- 01\n1-1 01\n-11 01\n.e\n"

const andCircuit = "inputs 2\n2 = and 0 1\n3 = not 2\noutputs 2 3\n"

func TestRunExpr(t *testing.T) {
	for _, algo := range []string{"fs", "brute", "bnb", "dnc"} {
		c := cfg(func(c *config) { c.exprSrc = "x1 & x2 | x3 & x4"; c.algo = algo; c.meter = true })
		if err := c.run(); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunHexAndZDD(t *testing.T) {
	c := cfg(func(c *config) { c.hexSrc = "3:e8"; c.ruleName = "zdd" })
	if err := c.run(); err != nil {
		t.Errorf("hex+zdd: %v", err)
	}
}

func TestRunCircuitAndPLA(t *testing.T) {
	ck := writeTemp(t, "and.ckt", andCircuit)
	if err := cfg(func(c *config) { c.circFile = ck; c.outIdx = 1 }).run(); err != nil {
		t.Errorf("circuit: %v", err)
	}
	pl := writeTemp(t, "adder.pla", adderPLA)
	if err := cfg(func(c *config) { c.plaFile = pl; c.outIdx = 1 }).run(); err != nil {
		t.Errorf("pla: %v", err)
	}
}

func TestRunDotOutput(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := cfg(func(c *config) { c.exprSrc = "x1 ^ x2"; c.dotFile = dot }).run(); err != nil {
		t.Fatalf("dot: %v", err)
	}
	data, err := os.ReadFile(dot)
	if err != nil || len(data) == 0 {
		t.Errorf("dot file not written: %v", err)
	}
	// DOT output is OBDD-only.
	if err := cfg(func(c *config) { c.exprSrc = "x1 ^ x2"; c.ruleName = "zdd"; c.dotFile = dot }).run(); err == nil {
		t.Errorf("zdd+dot should error")
	}
}

// TestRunJSON checks the acceptance contract: -json emits one valid JSON
// run report with per-layer events and the final meter counts.
func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	c := cfg(func(c *config) {
		c.exprSrc = "x1&x2|x3&x4|x5&x6"
		c.jsonOut = true
		c.progress = true // exercise the chained stderr renderer too
		c.stdout = &out
	})
	if err := c.run(); err != nil {
		t.Fatalf("json run: %v", err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "optobdd" || rep.Algorithm != "fs" || rep.Rule != "OBDD" {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if rep.N != 6 || len(rep.Layers) != 6 {
		t.Errorf("want 6 layers for n=6, got n=%d layers=%d", rep.N, len(rep.Layers))
	}
	meter, ok := rep.Meter.(map[string]any)
	if !ok {
		t.Fatalf("meter section missing: %T", rep.Meter)
	}
	if v, ok := meter["cell_ops"].(float64); !ok || v <= 0 {
		t.Errorf("meter.cell_ops missing or zero: %v", meter["cell_ops"])
	}
	var layerOps float64
	for _, l := range rep.Layers {
		layerOps += float64(l.CellOps)
	}
	if layerOps != meter["cell_ops"].(float64) {
		t.Errorf("layer cell ops %v != meter cell ops %v", layerOps, meter["cell_ops"])
	}
	if rep.Result == nil {
		t.Errorf("report missing result")
	}
}

func TestRunJSONAlgos(t *testing.T) {
	for _, algo := range []string{"bnb", "dnc"} {
		var out bytes.Buffer
		c := cfg(func(c *config) { c.exprSrc = "x1 & x2 | x3"; c.algo = algo; c.jsonOut = true; c.stdout = &out })
		if err := c.run(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var rep obs.RunReport
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("%s: invalid JSON: %v", algo, err)
		}
		switch algo {
		case "bnb":
			if rep.BnB == nil || rep.BnB.Expansions == 0 {
				t.Errorf("bnb report missing expansion stats: %+v", rep.BnB)
			}
		case "dnc":
			if rep.Quantum == nil || rep.Quantum.Batches == 0 {
				t.Errorf("dnc report missing quantum stats: %+v", rep.Quantum)
			}
		}
	}
}

func TestRunShared(t *testing.T) {
	pl := writeTemp(t, "adder.pla", adderPLA)
	if err := cfg(func(c *config) { c.plaFile = pl; c.meter = true }).runShared(); err != nil {
		t.Errorf("shared pla: %v", err)
	}
	ck := writeTemp(t, "and.ckt", andCircuit)
	if err := cfg(func(c *config) { c.circFile = ck }).runShared(); err != nil {
		t.Errorf("shared circuit: %v", err)
	}
	if err := cfg(func(c *config) {}).runShared(); err == nil {
		t.Errorf("shared without source should error")
	}
	if err := cfg(func(c *config) { c.circFile = ck; c.plaFile = pl }).runShared(); err == nil {
		t.Errorf("shared with two sources should error")
	}
	if err := cfg(func(c *config) { c.plaFile = pl; c.ruleName = "frob" }).runShared(); err == nil {
		t.Errorf("bad rule should error")
	}
}

func TestRunSharedJSON(t *testing.T) {
	pl := writeTemp(t, "adder.pla", adderPLA)
	var out bytes.Buffer
	c := cfg(func(c *config) { c.plaFile = pl; c.jsonOut = true; c.stdout = &out })
	if err := c.runShared(); err != nil {
		t.Fatalf("shared json: %v", err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Algorithm != "shared" || rep.N != 3 || len(rep.Layers) != 3 {
		t.Errorf("shared report wrong: algo=%s n=%d layers=%d", rep.Algorithm, rep.N, len(rep.Layers))
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
	}{
		{"no source", func(c *config) {}},
		{"two sources", func(c *config) { c.exprSrc = "x1"; c.hexSrc = "1:2" }},
		{"bad algo", func(c *config) { c.exprSrc = "x1"; c.algo = "frob" }},
		{"bad rule", func(c *config) { c.exprSrc = "x1"; c.ruleName = "frob" }},
		{"bad expr", func(c *config) { c.exprSrc = "x1 &" }},
		{"const expr", func(c *config) { c.exprSrc = "0" }},
		{"bad hex", func(c *config) { c.hexSrc = "zz" }},
		{"missing file", func(c *config) { c.circFile = "/nonexistent" }},
		{"missing pla", func(c *config) { c.plaFile = "/nonexistent" }},
	}
	for _, tc := range cases {
		if err := cfg(tc.mut).run(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunOutputRange(t *testing.T) {
	ck := writeTemp(t, "and.ckt", andCircuit)
	if err := cfg(func(c *config) { c.circFile = ck; c.outIdx = 9 }).run(); err == nil {
		t.Errorf("out-of-range circuit output should error")
	}
	pl := writeTemp(t, "adder.pla", adderPLA)
	if err := cfg(func(c *config) { c.plaFile = pl; c.outIdx = 9 }).run(); err == nil {
		t.Errorf("out-of-range PLA output should error")
	}
}
