// Command optobdd computes an exact optimal variable ordering for a
// Boolean function using any registered solver: the Friedman–Supowit
// dynamic program (serial or parallel), branch-and-bound, divide-and-
// conquer, brute force, or the portfolio racing them.
//
// Usage examples:
//
//	optobdd -expr 'x1 & x2 | x3 & x4 | x5 & x6' -n 6
//	optobdd -hex '3:e8' -solver brute
//	optobdd -circuit adder.ckt -output 2 -rule zdd -meter
//	optobdd -pla benchmark.pla -output 0 -solver bnb
//	optobdd -expr 'x1 ^ x2 ^ x3' -dot out.dot
//	optobdd -expr 'x1 & x2 | x3 & x4' -progress -json
//	optobdd -hex '4:cafe' -debug-addr localhost:6060
//	optobdd -expr '…' -n 14 -solver portfolio -deadline 100ms
//
// The function is given as exactly one of -expr (formula over x1, x2, …),
// -hex (truth-table literal "n:hexdigits"), -circuit (netlist file, see
// internal/circuit), or -pla (Berkeley/espresso two-level cover); -output
// selects the primary output for multi-output sources.
//
// Cancellation and budgets: -deadline bounds wall-clock time; -max-cells
// and -max-nodes bound space and work. When a limit stops the run early,
// solvers that carry an incumbent (bnb, brute, portfolio) report the best
// ordering found — flagged as not proven optimal — and the process exits
// zero; solvers without one (fs, parallel, dnc) fail with the error.
//
// Observability: -progress streams per-layer DP progress to stderr as the
// run advances; -json replaces the human-readable summary with one JSON
// run report (schema internal/obs.RunReport) on stdout; -debug-addr
// serves net/http/pprof and expvar metrics (/debug/vars) while running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"obddopt/internal/circuit"
	"obddopt/internal/cliutil"
	"obddopt/internal/core"
	"obddopt/internal/expr"
	"obddopt/internal/obs"
	"obddopt/internal/pla"
	"obddopt/internal/truthtable"

	obddopt "obddopt"
)

// config carries all flag values plus the output streams, so tests can
// drive the tool end to end without touching process-global state.
type config struct {
	exprSrc  string
	nVars    int
	hexSrc   string
	circFile string
	plaFile  string
	outIdx   int
	algo     string // deprecated alias of flags.Solver
	ruleName string
	meter    bool
	dotFile  string
	bddFile  string
	progress bool
	jsonOut  bool
	flags    cliutil.SolverFlags
	stdout   io.Writer
	stderr   io.Writer
}

// solverName resolves the -solver / legacy -algo pair: -solver wins,
// then -algo, then the historical default "fs".
func (c *config) solverName() string {
	if s := strings.ToLower(c.flags.Solver); s != "" {
		return s
	}
	if s := strings.ToLower(c.algo); s != "" {
		return s
	}
	return "fs"
}

func main() {
	var cfg config
	flag.StringVar(&cfg.exprSrc, "expr", "", "Boolean formula over x1, x2, … (operators ! & ^ | -> <->)")
	flag.IntVar(&cfg.nVars, "n", 0, "variable count for -expr (default: highest variable used)")
	flag.StringVar(&cfg.hexSrc, "hex", "", "truth-table literal in n:hexdigits form")
	flag.StringVar(&cfg.circFile, "circuit", "", "netlist file (see internal/circuit format)")
	flag.StringVar(&cfg.plaFile, "pla", "", "PLA (espresso) file")
	flag.IntVar(&cfg.outIdx, "output", 0, "primary output index for -circuit")
	flag.StringVar(&cfg.algo, "algo", "", "deprecated alias of -solver")
	cfg.flags.Register(flag.CommandLine, "")
	flag.StringVar(&cfg.ruleName, "rule", "obdd", "diagram rule: obdd | zdd")
	flag.BoolVar(&cfg.meter, "meter", false, "print operation counts")
	flag.StringVar(&cfg.dotFile, "dot", "", "write the minimum diagram in Graphviz format to this file")
	flag.StringVar(&cfg.bddFile, "emit-bdd", "", "write the minimum diagram as a compact binary OBDD artifact to this file")
	flag.BoolVar(&cfg.progress, "progress", false, "stream per-layer progress to stderr")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit a JSON run report on stdout instead of the text summary")
	shared := flag.Bool("shared", false, "optimize all outputs of a -circuit/-pla source as one shared forest")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	flag.Parse()
	cfg.stdout, cfg.stderr = os.Stdout, os.Stderr

	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optobdd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "optobdd: debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	var err error
	if *shared {
		err = cfg.runShared()
	} else {
		err = cfg.run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "optobdd:", err)
		os.Exit(1)
	}
}

// tracer assembles the run's tracer chain: a Collector when a JSON report
// is requested, a live Progress renderer when -progress is set. The
// returned Tracer is nil when neither is active (the zero-cost path).
func (c *config) tracer() (*obs.Collector, obs.Tracer) {
	var chain []obs.Tracer
	var col *obs.Collector
	if c.jsonOut {
		col = obs.NewCollector()
		chain = append(chain, col)
	}
	if c.progress {
		chain = append(chain, obs.NewProgress(c.stderr))
	}
	return col, obs.Multi(chain...)
}

// emitReport fills the run-identification fields and writes the report as
// indented JSON to stdout.
func (c *config) emitReport(rep *obs.RunReport, elapsed time.Duration) error {
	rep.Tool = "optobdd"
	rep.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	rep.Metrics = obs.MetricsSnapshot()
	enc := json.NewEncoder(c.stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func (c *config) run() error {
	tt, err := loadFunction(c.exprSrc, c.nVars, c.hexSrc, c.circFile, c.plaFile, c.outIdx)
	if err != nil {
		return err
	}

	rule, err := parseRule(c.ruleName)
	if err != nil {
		return err
	}

	name := c.solverName()
	solver, ok := core.LookupSolver(name)
	if !ok {
		return fmt.Errorf("unknown solver %q (have %s)", name, strings.Join(core.SolverNames(), ", "))
	}

	col, tr := c.tracer()
	meter := &core.Meter{}
	ctx, cancel := c.flags.Context()
	defer cancel()
	start := time.Now()
	runOpts := &core.SolveOptions{
		Rule:   rule,
		Meter:  meter,
		Trace:  tr,
		Budget: c.flags.Budget(),
	}
	c.flags.Schedule(runOpts)
	res, runErr := solver(ctx, tt, runOpts)
	elapsed := time.Since(start)
	if runErr != nil {
		if res == nil {
			return runErr
		}
		// Degrade gracefully: report the incumbent, flagged as unproven.
		fmt.Fprintf(c.stderr, "optobdd: %v — reporting best incumbent, optimality NOT proven\n", runErr)
	}

	if c.jsonOut {
		rep := col.Report()
		rep.Algorithm = name
		rep.Rule = res.Rule.String()
		rep.N = res.N
		rep.Meter = meter
		rep.Result = res
		if runErr != nil {
			rep.Details = map[string]string{"stopped_early": runErr.Error()}
		}
		if err := c.emitReport(rep, elapsed); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(c.stdout, "function:        %d variables, %d satisfying assignments\n", tt.NumVars(), tt.CountOnes())
		fmt.Fprintf(c.stdout, "solver:          %s\n", name)
		fmt.Fprintf(c.stdout, "rule:            %s\n", res.Rule)
		sizeLabel, ordLabel := "minimum size:   ", "optimal ordering"
		if runErr != nil {
			sizeLabel, ordLabel = "incumbent size: ", "best ordering   "
		}
		fmt.Fprintf(c.stdout, "%s %s (read first → last)\n", ordLabel, res.Ordering)
		fmt.Fprintf(c.stdout, "%s %d nodes (%d nonterminal + %d terminal)\n", sizeLabel, res.Size, res.MinCost, res.Terminals)
		fmt.Fprintf(c.stdout, "level widths:    %v (bottom-up)\n", res.Profile)
		if c.meter {
			fmt.Fprintf(c.stdout, "meter:           %d cell ops, %d compactions, peak %d cells, %d evaluations\n",
				meter.CellOps, meter.Compactions, meter.PeakCells, meter.Evaluations)
		}
	}
	if c.dotFile != "" {
		if rule != core.OBDD {
			return fmt.Errorf("-dot supports the OBDD rule only")
		}
		m, root := obddopt.BuildBDD(tt, res.Ordering)
		if err := os.WriteFile(c.dotFile, []byte(m.DOT(root, "optobdd")), 0o644); err != nil {
			return err
		}
		if !c.jsonOut {
			fmt.Fprintf(c.stdout, "wrote diagram:   %s\n", c.dotFile)
		}
	}
	if c.bddFile != "" {
		if rule != core.OBDD {
			return fmt.Errorf("-emit-bdd supports the OBDD rule only")
		}
		if runErr != nil {
			return fmt.Errorf("-emit-bdd refuses an unproven incumbent ordering: %v", runErr)
		}
		a, err := obddopt.BuildArtifact(tt, res.Ordering)
		if err != nil {
			return err
		}
		enc := a.Encode()
		if err := os.WriteFile(c.bddFile, enc, 0o644); err != nil {
			return err
		}
		if !c.jsonOut {
			fmt.Fprintf(c.stdout, "wrote artifact:  %s (%d bytes, %d nodes, %d satisfying)\n",
				c.bddFile, len(enc), a.NodeCount(), a.SatCount())
		}
	}
	return nil
}

// runShared optimizes all outputs of a multi-output source jointly.
func (c *config) runShared() error {
	var tts []*truthtable.Table
	switch {
	case c.circFile != "" && c.plaFile == "":
		f, err := os.Open(c.circFile)
		if err != nil {
			return err
		}
		defer f.Close()
		ck, err := circuit.Parse(f)
		if err != nil {
			return err
		}
		for i := range ck.Outputs {
			tts = append(tts, ck.OutputTable(i))
		}
	case c.plaFile != "" && c.circFile == "":
		f, err := os.Open(c.plaFile)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err := pla.Parse(f)
		if err != nil {
			return err
		}
		tts = p.Tables()
	default:
		return fmt.Errorf("-shared needs exactly one of -circuit or -pla")
	}
	rule, err := parseRule(c.ruleName)
	if err != nil {
		return err
	}
	col, tr := c.tracer()
	meter := &core.Meter{}
	ctx, cancel := c.flags.Context()
	defer cancel()
	start := time.Now()
	res, err := core.OptimalOrderingSharedCtx(ctx, tts, core.NewSolveOptions(core.WithRule(rule), core.WithMeter(meter), core.WithTrace(tr), core.WithBudget(c.flags.Budget())))
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if c.jsonOut {
		rep := col.Report()
		rep.Algorithm = "shared"
		rep.Rule = res.Rule.String()
		rep.N = res.N
		rep.Meter = meter
		rep.Result = res
		return c.emitReport(rep, elapsed)
	}
	fmt.Fprintf(c.stdout, "shared forest:   %d roots over %d variables\n", res.Roots, res.N)
	fmt.Fprintf(c.stdout, "rule:            %s\n", res.Rule)
	fmt.Fprintf(c.stdout, "optimal ordering %s (read first → last)\n", res.Ordering)
	fmt.Fprintf(c.stdout, "minimum size:    %d nodes (%d nonterminal + %d terminal)\n", res.Size, res.MinCost, res.Terminals)
	fmt.Fprintf(c.stdout, "level widths:    %v (bottom-up)\n", res.Profile)
	if c.meter {
		fmt.Fprintf(c.stdout, "meter:           %d cell ops, %d compactions, peak %d cells\n",
			meter.CellOps, meter.Compactions, meter.PeakCells)
	}
	return nil
}

func parseRule(name string) (core.Rule, error) { return cliutil.ParseRule(name) }

func loadFunction(exprSrc string, nVars int, hexSrc, circFile, plaFile string, outIdx int) (*truthtable.Table, error) {
	sources := 0
	for _, s := range []string{exprSrc, hexSrc, circFile, plaFile} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("give exactly one of -expr, -hex, -circuit, -pla")
	}
	switch {
	case exprSrc != "":
		e, err := expr.Parse(exprSrc)
		if err != nil {
			return nil, err
		}
		n := nVars
		if n == 0 {
			n = e.MaxVar() + 1
		}
		if n < 1 {
			return nil, fmt.Errorf("expression uses no variables; pass -n")
		}
		return expr.ToTruthTable(e, n)
	case hexSrc != "":
		return truthtable.ParseHex(hexSrc)
	case plaFile != "":
		f, err := os.Open(plaFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err := pla.Parse(f)
		if err != nil {
			return nil, err
		}
		if outIdx < 0 || outIdx >= p.NumOutputs {
			return nil, fmt.Errorf("PLA has %d outputs; -output %d out of range", p.NumOutputs, outIdx)
		}
		return p.OutputTable(outIdx), nil
	default:
		f, err := os.Open(circFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ck, err := circuit.Parse(f)
		if err != nil {
			return nil, err
		}
		if outIdx < 0 || outIdx >= len(ck.Outputs) {
			return nil, fmt.Errorf("circuit has %d outputs; -output %d out of range", len(ck.Outputs), outIdx)
		}
		return ck.OutputTable(outIdx), nil
	}
}
