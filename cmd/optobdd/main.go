// Command optobdd computes an exact optimal variable ordering for a
// Boolean function using the Friedman–Supowit dynamic program (or the
// brute-force / divide-and-conquer alternatives).
//
// Usage examples:
//
//	optobdd -expr 'x1 & x2 | x3 & x4 | x5 & x6' -n 6
//	optobdd -hex '3:e8' -algo brute
//	optobdd -circuit adder.ckt -output 2 -rule zdd -meter
//	optobdd -pla benchmark.pla -output 0 -algo bnb
//	optobdd -expr 'x1 ^ x2 ^ x3' -dot out.dot
//
// The function is given as exactly one of -expr (formula over x1, x2, …),
// -hex (truth-table literal "n:hexdigits"), -circuit (netlist file, see
// internal/circuit), or -pla (Berkeley/espresso two-level cover); -output
// selects the primary output for multi-output sources.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"obddopt/internal/circuit"
	"obddopt/internal/core"
	"obddopt/internal/expr"
	"obddopt/internal/pla"
	"obddopt/internal/truthtable"

	obddopt "obddopt"
)

func main() {
	var (
		exprSrc   = flag.String("expr", "", "Boolean formula over x1, x2, … (operators ! & ^ | -> <->)")
		nVars     = flag.Int("n", 0, "variable count for -expr (default: highest variable used)")
		hexSrc    = flag.String("hex", "", "truth-table literal in n:hexdigits form")
		circFile  = flag.String("circuit", "", "netlist file (see internal/circuit format)")
		plaFile   = flag.String("pla", "", "PLA (espresso) file")
		outIdx    = flag.Int("output", 0, "primary output index for -circuit")
		algo      = flag.String("algo", "fs", "algorithm: fs | brute | bnb | dnc")
		ruleName  = flag.String("rule", "obdd", "diagram rule: obdd | zdd")
		meterFlag = flag.Bool("meter", false, "print operation counts")
		dotFile   = flag.String("dot", "", "write the minimum diagram in Graphviz format to this file")
		shared    = flag.Bool("shared", false, "optimize all outputs of a -circuit/-pla source as one shared forest")
	)
	flag.Parse()
	if *shared {
		if err := runShared(*circFile, *plaFile, *ruleName, *meterFlag); err != nil {
			fmt.Fprintln(os.Stderr, "optobdd:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exprSrc, *nVars, *hexSrc, *circFile, *plaFile, *outIdx, *algo, *ruleName, *meterFlag, *dotFile); err != nil {
		fmt.Fprintln(os.Stderr, "optobdd:", err)
		os.Exit(1)
	}
}

func run(exprSrc string, nVars int, hexSrc, circFile, plaFile string, outIdx int, algo, ruleName string, meterFlag bool, dotFile string) error {
	tt, err := loadFunction(exprSrc, nVars, hexSrc, circFile, plaFile, outIdx)
	if err != nil {
		return err
	}

	var rule core.Rule
	switch strings.ToLower(ruleName) {
	case "obdd":
		rule = core.OBDD
	case "zdd":
		rule = core.ZDD
	default:
		return fmt.Errorf("unknown rule %q (obdd or zdd)", ruleName)
	}

	meter := &core.Meter{}
	opts := &core.Options{Rule: rule, Meter: meter}
	var res *core.Result
	switch strings.ToLower(algo) {
	case "fs":
		res = core.OptimalOrdering(tt, opts)
	case "brute":
		res = core.BruteForce(tt, &core.BruteForceOptions{Rule: rule, Meter: meter})
	case "bnb":
		res = core.BranchAndBound(tt, &core.BnBOptions{Rule: rule, Meter: meter})
	case "dnc":
		res = core.DivideAndConquer(tt, &core.DnCOptions{Rule: rule, Meter: meter})
	default:
		return fmt.Errorf("unknown algorithm %q (fs, brute, bnb or dnc)", algo)
	}

	fmt.Printf("function:        %d variables, %d satisfying assignments\n", tt.NumVars(), tt.CountOnes())
	fmt.Printf("rule:            %s\n", res.Rule)
	fmt.Printf("optimal ordering %s (read first → last)\n", res.Ordering)
	fmt.Printf("minimum size:    %d nodes (%d nonterminal + %d terminal)\n", res.Size, res.MinCost, res.Terminals)
	fmt.Printf("level widths:    %v (bottom-up)\n", res.Profile)
	if meterFlag {
		fmt.Printf("meter:           %d cell ops, %d compactions, peak %d cells, %d evaluations\n",
			meter.CellOps, meter.Compactions, meter.PeakCells, meter.Evaluations)
	}
	if dotFile != "" {
		if rule != core.OBDD {
			return fmt.Errorf("-dot supports the OBDD rule only")
		}
		m, root := obddopt.BuildBDD(tt, res.Ordering)
		if err := os.WriteFile(dotFile, []byte(m.DOT(root, "optobdd")), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote diagram:   %s\n", dotFile)
	}
	return nil
}

// runShared optimizes all outputs of a multi-output source jointly.
func runShared(circFile, plaFile, ruleName string, meterFlag bool) error {
	var tts []*truthtable.Table
	switch {
	case circFile != "" && plaFile == "":
		f, err := os.Open(circFile)
		if err != nil {
			return err
		}
		defer f.Close()
		c, err := circuit.Parse(f)
		if err != nil {
			return err
		}
		for i := range c.Outputs {
			tts = append(tts, c.OutputTable(i))
		}
	case plaFile != "" && circFile == "":
		f, err := os.Open(plaFile)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err := pla.Parse(f)
		if err != nil {
			return err
		}
		tts = p.Tables()
	default:
		return fmt.Errorf("-shared needs exactly one of -circuit or -pla")
	}
	var rule core.Rule
	switch strings.ToLower(ruleName) {
	case "obdd":
		rule = core.OBDD
	case "zdd":
		rule = core.ZDD
	default:
		return fmt.Errorf("unknown rule %q", ruleName)
	}
	meter := &core.Meter{}
	res := core.OptimalOrderingShared(tts, &core.Options{Rule: rule, Meter: meter})
	fmt.Printf("shared forest:   %d roots over %d variables\n", res.Roots, res.N)
	fmt.Printf("rule:            %s\n", res.Rule)
	fmt.Printf("optimal ordering %s (read first → last)\n", res.Ordering)
	fmt.Printf("minimum size:    %d nodes (%d nonterminal + %d terminal)\n", res.Size, res.MinCost, res.Terminals)
	fmt.Printf("level widths:    %v (bottom-up)\n", res.Profile)
	if meterFlag {
		fmt.Printf("meter:           %d cell ops, %d compactions, peak %d cells\n",
			meter.CellOps, meter.Compactions, meter.PeakCells)
	}
	return nil
}

func loadFunction(exprSrc string, nVars int, hexSrc, circFile, plaFile string, outIdx int) (*truthtable.Table, error) {
	sources := 0
	for _, s := range []string{exprSrc, hexSrc, circFile, plaFile} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("give exactly one of -expr, -hex, -circuit, -pla")
	}
	switch {
	case exprSrc != "":
		e, err := expr.Parse(exprSrc)
		if err != nil {
			return nil, err
		}
		n := nVars
		if n == 0 {
			n = e.MaxVar() + 1
		}
		if n < 1 {
			return nil, fmt.Errorf("expression uses no variables; pass -n")
		}
		return expr.ToTruthTable(e, n)
	case hexSrc != "":
		return truthtable.ParseHex(hexSrc)
	case plaFile != "":
		f, err := os.Open(plaFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err := pla.Parse(f)
		if err != nil {
			return nil, err
		}
		if outIdx < 0 || outIdx >= p.NumOutputs {
			return nil, fmt.Errorf("PLA has %d outputs; -output %d out of range", p.NumOutputs, outIdx)
		}
		return p.OutputTable(outIdx), nil
	default:
		f, err := os.Open(circFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := circuit.Parse(f)
		if err != nil {
			return nil, err
		}
		if outIdx < 0 || outIdx >= len(c.Outputs) {
			return nil, fmt.Errorf("circuit has %d outputs; -output %d out of range", len(c.Outputs), outIdx)
		}
		return c.OutputTable(outIdx), nil
	}
}
