// Command bddverify is the one-command correctness gate: it replays the
// golden corpus of known-optimal orderings, runs the metamorphic oracle
// suite over every registered solver, and drives a fault-injected chaos
// round against an in-process obddd server. A zero exit means zero
// violations; any failure prints the seed that reproduces it.
//
// Usage:
//
//	bddverify [-seed N] [-duration 30s] [-solvers fs,brute] [-chaos 200] [-json]
//	bddverify -gen [-golden path]   # regenerate the corpus (maintainers)
//
// With -duration the tool loops — a fresh seed per iteration — until the
// budget expires: the CI soak mode.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"obddopt/internal/conformance"
	"obddopt/internal/obs"

	_ "obddopt/internal/heuristics" // installs the portfolio's default seeder
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	seed     int64
	duration time.Duration
	solvers  []string
	chaos    int
	tables   int
	jsonOut    bool
	gen        bool
	golden     string
	allowDrift bool
}

// verifySummary is the Details payload of the -json run report.
type verifySummary struct {
	Seed          int64    `json:"seed"`
	Iterations    int      `json:"iterations"`
	Solvers       []string `json:"solvers"`
	SuiteChecks   int      `json:"suite_checks"`
	GoldenEntries int      `json:"golden_entries"`
	GoldenChecks  int      `json:"golden_checks"`
	ChaosRequests int      `json:"chaos_requests"`
	Violations    []string `json:"violations,omitempty"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bddverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := config{}
	var solversCSV string
	fs.Int64Var(&cfg.seed, "seed", 1, "master seed; every table draw, property and fault derives from it")
	fs.DurationVar(&cfg.duration, "duration", 0, "soak budget: loop with fresh seeds until it expires (0 = one pass)")
	fs.StringVar(&solversCSV, "solvers", "", "comma-separated solver names (default: all registered)")
	fs.IntVar(&cfg.chaos, "chaos", 200, "fault-injected requests per chaos round (0 disables chaos)")
	fs.IntVar(&cfg.tables, "tables", 2, "tables per family in the metamorphic suite")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit a machine-readable run report")
	fs.BoolVar(&cfg.gen, "gen", false, "regenerate the golden corpus and write it to -golden")
	fs.StringVar(&cfg.golden, "golden", "", "corpus path (default: the embedded testdata/golden.json)")
	fs.BoolVar(&cfg.allowDrift, "allow-drift", false, "let -gen overwrite entries whose pinned artifact digest changed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if solversCSV != "" {
		for _, s := range strings.Split(solversCSV, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.solvers = append(cfg.solvers, s)
			}
		}
	}

	if cfg.gen {
		return generate(ctx, cfg, stdout, stderr)
	}
	return verify(ctx, cfg, stdout, stderr)
}

func generate(ctx context.Context, cfg config, stdout, stderr io.Writer) int {
	path := cfg.golden
	if path == "" {
		path = "internal/conformance/testdata/golden.json"
	}
	entries, err := conformance.GenerateGolden(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "bddverify: generate: %v\n", err)
		return 1
	}
	// Digest-drift gate: a regenerated entry whose (table, rule) already
	// carries a pinned artifact digest must reproduce it bit for bit.
	// Artifact bytes are a pure function of (function, ordering), so
	// drift means the wire format or the canonical solve ordering moved —
	// a contract change that demands an explicit -allow-drift, never a
	// silent overwrite.
	if prev, err := conformance.LoadGolden(path); err == nil {
		drifted := driftedEntries(prev, entries)
		if len(drifted) > 0 && !cfg.allowDrift {
			for _, d := range drifted {
				fmt.Fprintf(stderr, "bddverify: artifact digest drift: %s\n", d)
			}
			fmt.Fprintf(stderr, "bddverify: refusing to overwrite %s (%d drifted entries); rerun with -allow-drift to accept the new digests\n",
				path, len(drifted))
			return 1
		}
		if len(drifted) > 0 {
			fmt.Fprintf(stderr, "bddverify: accepting %d drifted artifact digest(s) (-allow-drift)\n", len(drifted))
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "bddverify: encode: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "bddverify: write: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "bddverify: wrote %d verified entries to %s\n", len(entries), path)
	return 0
}

// driftedEntries compares pinned artifact digests between the corpus on
// disk and a fresh regeneration, keyed by (table, rule). Entries without
// a previous pin (a corpus predating the artifact fields, or a brand-new
// table) never count as drift.
func driftedEntries(prev, next []conformance.GoldenEntry) []string {
	pinned := make(map[string]string, len(prev))
	for _, e := range prev {
		if e.ArtifactSHA256 != "" {
			pinned[e.Table+"|"+e.Rule] = e.ArtifactSHA256
		}
	}
	var drifted []string
	for _, e := range next {
		if want, ok := pinned[e.Table+"|"+e.Rule]; ok && want != e.ArtifactSHA256 {
			drifted = append(drifted, fmt.Sprintf("%s %s: pinned %s, regenerated %s", e.Table, e.Rule, want, e.ArtifactSHA256))
		}
	}
	return drifted
}

func verify(ctx context.Context, cfg config, stdout, stderr io.Writer) int {
	start := time.Now()
	var entries []conformance.GoldenEntry
	var err error
	if cfg.golden != "" {
		entries, err = conformance.LoadGolden(cfg.golden)
	} else {
		entries, err = conformance.DefaultGolden()
	}
	if err != nil {
		fmt.Fprintf(stderr, "bddverify: %v\n", err)
		return 1
	}

	sum := verifySummary{Seed: cfg.seed, Solvers: cfg.solvers, GoldenEntries: len(entries)}
	for iter := 0; iter == 0 || (cfg.duration > 0 && time.Since(start) < cfg.duration); iter++ {
		if ctx.Err() != nil {
			break
		}
		iterSeed := cfg.seed + int64(iter)
		sum.Iterations++

		grep, err := conformance.VerifyGolden(ctx, entries, cfg.solvers)
		if err != nil {
			break // context death; partial results stand
		}
		sum.GoldenChecks += grep.Checks
		for _, v := range grep.Violations {
			sum.Violations = append(sum.Violations, fmt.Sprintf("[golden seed=%d] %s %s solver=%s: %s",
				iterSeed, v.Entry.Table, v.Entry.Rule, v.Solver, v.Err))
		}

		srep, err := conformance.RunSuite(ctx, conformance.SuiteConfig{
			Seed: iterSeed, Solvers: cfg.solvers, TablesPerFamily: cfg.tables,
		})
		if err != nil {
			break
		}
		sum.SuiteChecks += srep.Checks
		for _, v := range srep.Violations {
			sum.Violations = append(sum.Violations, fmt.Sprintf("[suite seed=%d] %s", iterSeed, v))
		}

		if cfg.chaos > 0 {
			crep, err := conformance.RunChaos(ctx, conformance.ChaosConfig{Seed: iterSeed, Requests: cfg.chaos})
			if err != nil {
				fmt.Fprintf(stderr, "bddverify: chaos harness: %v\n", err)
				return 1
			}
			sum.ChaosRequests += crep.Requests
			for _, v := range crep.Violations {
				sum.Violations = append(sum.Violations, fmt.Sprintf("[chaos seed=%d] %s", iterSeed, v))
			}
		}
	}

	if cfg.jsonOut {
		report := &obs.RunReport{Tool: "bddverify", ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond), Details: sum}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "bddverify: encode: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "bddverify: seed=%d iterations=%d golden=%d entries/%d checks suite=%d checks chaos=%d requests elapsed=%s\n",
			cfg.seed, sum.Iterations, sum.GoldenEntries, sum.GoldenChecks, sum.SuiteChecks, sum.ChaosRequests,
			time.Since(start).Round(time.Millisecond))
		for _, v := range sum.Violations {
			fmt.Fprintf(stdout, "VIOLATION %s\n", v)
		}
	}
	if len(sum.Violations) > 0 {
		fmt.Fprintf(stderr, "bddverify: %d violation(s); reproduce with -seed %d\n", len(sum.Violations), cfg.seed)
		return 1
	}
	return 0
}
