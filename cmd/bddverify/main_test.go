package main

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"obddopt/internal/obs"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunSinglePass(t *testing.T) {
	code, out, errOut := runCLI(t, "-seed", "3", "-chaos", "30", "-tables", "1", "-solvers", "fs,brute")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "seed=3") || !strings.Contains(out, "golden=") {
		t.Errorf("summary line missing: %q", out)
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("violations reported: %s", out)
	}
}

func TestRunJSONReport(t *testing.T) {
	code, out, errOut := runCLI(t, "-seed", "4", "-chaos", "0", "-tables", "1", "-solvers", "fs", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var report obs.RunReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not a RunReport: %v\n%s", err, out)
	}
	if report.Tool != "bddverify" {
		t.Errorf("tool = %q, want bddverify", report.Tool)
	}
	details, err := json.Marshal(report.Details)
	if err != nil {
		t.Fatal(err)
	}
	var sum verifySummary
	if err := json.Unmarshal(details, &sum); err != nil {
		t.Fatalf("details do not decode as verifySummary: %v", err)
	}
	if sum.Seed != 4 || sum.Iterations != 1 || sum.SuiteChecks == 0 || sum.GoldenChecks == 0 {
		t.Errorf("summary incomplete: %+v", sum)
	}
	if len(sum.Violations) != 0 {
		t.Errorf("violations: %v", sum.Violations)
	}
}

func TestRunBadFlags(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code, _, errOut := runCLI(t, "-golden", "does-not-exist.json"); code != 1 || errOut == "" {
		t.Errorf("missing corpus exit = %d (stderr %q), want 1 with a message", code, errOut)
	}
	if code, _, errOut := runCLI(t, "-chaos", "0", "-tables", "1", "-solvers", "no-such-solver"); code != 1 || !strings.Contains(errOut, "violation") {
		t.Errorf("unknown solver exit = %d (stderr %q), want 1 with violations", code, errOut)
	}
}

func TestGenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus regeneration is a long test")
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	code, out, errOut := runCLI(t, "-gen", "-golden", path)
	if code != 0 {
		t.Fatalf("gen exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("gen output: %q", out)
	}
	code, _, errOut = runCLI(t, "-golden", path, "-chaos", "0", "-tables", "1", "-solvers", "fs")
	if code != 0 {
		t.Fatalf("verify against regenerated corpus: exit %d, stderr: %s", code, errOut)
	}
}
