// Command obddd is the network solve daemon: the cancellable Solve
// engine served over HTTP/JSON behind admission control and a canonical
// result cache (see internal/server for the endpoint and wire schema
// documentation).
//
// Typical invocations:
//
//	obddd -addr :8344                      # serve with production defaults
//	obddd -workers 4 -queue 16 -cache-mb 128
//	obddd -access-log                      # one JSON line per request on stderr
//	obddd -smoke                           # self-test: cold/cached/429/drain
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops admitting
// (new requests get 503), cancels in-flight solver contexts — those
// requests still receive their best incumbents — and exits once the
// in-flight count reaches zero or -drain-timeout expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"obddopt/internal/cliutil"
	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/server"
	"obddopt/internal/truthtable"
)

func main() {
	var (
		sf       cliutil.ServeFlags
		progress bool
		smoke    bool
	)
	fs := flag.NewFlagSet("obddd", flag.ExitOnError)
	sf.Register(fs)
	fs.BoolVar(&progress, "progress", false, "stream solver progress events to stderr")
	fs.BoolVar(&smoke, "smoke", false, "run the serving self-test against an in-process server and exit")
	_ = fs.Parse(os.Args[1:])

	var tr obs.Tracer
	if progress {
		tr = obs.NewProgress(os.Stderr)
	}

	if smoke {
		if err := runSmoke(sf.Config(tr, os.Stderr)); err != nil {
			log.Fatalf("obddd: smoke test failed: %v", err)
		}
		fmt.Println("obddd: smoke test ok")
		return
	}
	if err := serve(sf, tr); err != nil {
		log.Fatalf("obddd: %v", err)
	}
}

// serve runs the daemon until a termination signal, then drains.
func serve(sf cliutil.ServeFlags, tr obs.Tracer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := server.New(ctx, sf.Config(tr, os.Stderr))
	hs := &http.Server{Addr: sf.Addr, Handler: s.Handler()}

	ln, err := net.Listen("tcp", sf.Addr)
	if err != nil {
		return err
	}
	log.Printf("obddd: serving on %s (workers/queue per /v1/solvers)", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("obddd: draining (timeout %s)", sf.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), sf.DrainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("obddd: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("obddd: drained cleanly")
	return nil
}

// runSmoke drives the serving contract end to end against an in-process
// server: a cold solve, a cached re-solve that must skip the solver,
// load shedding under saturation, and a graceful drain. It is the CI
// smoke test (run under -race) and a deployment sanity check.
func runSmoke(cfg server.Config) error {
	// Small fixed pool so saturation is reachable with modest load.
	cfg.Workers = 2
	cfg.QueueDepth = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s := server.New(ctx, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	base := "http://" + ln.Addr().String()
	c, err := server.Dial(ctx, base)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}

	// 1. Cold solve: the Fig. 1 three-pair function, known optimum 6.
	tt := truthtable.FromFunc(6, func(x []bool) bool {
		return x[0] && x[1] || x[2] && x[3] || x[4] && x[5]
	})
	res, err := c.Solve(ctx, tt, &server.Params{Solver: "fs"})
	if err != nil {
		return fmt.Errorf("cold solve: %w", err)
	}
	if res.MinCost != 6 {
		return fmt.Errorf("cold solve: MinCost = %d, want 6", res.MinCost)
	}
	log.Printf("smoke: cold solve ok (MinCost %d)", res.MinCost)

	// 2. Cached re-solve: same request again must not run a solver.
	before := s.SolveCount()
	if _, err := c.Solve(ctx, tt, &server.Params{Solver: "fs"}); err != nil {
		return fmt.Errorf("warm solve: %w", err)
	}
	if got := s.SolveCount(); got != before {
		return fmt.Errorf("warm solve ran the solver (%d -> %d invocations); cache not serving", before, got)
	}
	if st := s.CacheStats(); st.Hits == 0 {
		return fmt.Errorf("no cache hit recorded: %+v", st)
	}
	log.Printf("smoke: cached re-solve ok (no solver run)")

	// 3. Saturation: 32 concurrent 13-variable solves against the
	// 4-slot building must shed load with 429/ErrSaturated and must
	// never fail any other way.
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[string]int{}
	fail := func(f string, a ...any) {
		mu.Lock()
		counts["other"]++
		mu.Unlock()
		log.Printf("smoke: "+f, a...)
	}
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			big := truthtable.FromFunc(13, func(x []bool) bool {
				acc := i%2 == 0
				for j, b := range x {
					if b && j%(i%5+2) == 0 {
						acc = !acc
					}
				}
				return acc
			})
			_, err := c.Solve(ctx, big, &server.Params{Solver: "fs", NoCache: true})
			switch {
			case err == nil:
				mu.Lock()
				counts["ok"]++
				mu.Unlock()
			case errors.Is(err, server.ErrSaturated):
				mu.Lock()
				counts["saturated"]++
				mu.Unlock()
			case errors.Is(err, core.ErrCanceled), errors.Is(err, core.ErrBudgetExceeded):
				mu.Lock()
				counts["stopped"]++
				mu.Unlock()
			default:
				fail("unexpected solve error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if counts["other"] != 0 {
		return fmt.Errorf("saturation run had %d unexpected failures", counts["other"])
	}
	if counts["saturated"] == 0 {
		return fmt.Errorf("no request was shed under saturation: %v", counts)
	}
	if counts["ok"] == 0 {
		return fmt.Errorf("no request succeeded under saturation: %v", counts)
	}
	log.Printf("smoke: saturation ok (%d served, %d shed)", counts["ok"]+counts["stopped"], counts["saturated"])

	// 4. Graceful drain: stops admitting, then refuses new work.
	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if _, err := c.Solve(context.Background(), tt, nil); !errors.Is(err, server.ErrDraining) {
		return fmt.Errorf("post-drain solve error = %v, want ErrDraining", err)
	}
	log.Printf("smoke: drain ok")
	return nil
}
