package main

import (
	"testing"

	"obddopt/internal/server"
)

// TestRunSmoke drives the daemon's self-test end to end: cold solve,
// cached re-solve, load shedding under saturation, graceful drain.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving smoke test skipped in -short mode")
	}
	if err := runSmoke(server.Config{}); err != nil {
		t.Fatal(err)
	}
}
