// Command bddlint is the repository's multichecker: it runs the custom
// invariant analyzers of internal/analysis — the solver-engine contracts
// that go vet and staticcheck cannot know about — over the module and
// exits nonzero when any unsuppressed finding remains.
//
// Usage:
//
//	bddlint [flags] [packages]
//
// Packages default to ./... and follow the go tool's pattern syntax
// (testdata, vendor and hidden directories are skipped). Findings print
// as path:line:col: [analyzer] message. A finding is suppressed by a
//
//	//lint:allow <analyzer> <justification>
//
// comment on the flagged line or the line above; the justification is
// mandatory. -verbose additionally prints the suppressed findings, which
// doubles as an inventory of every sanctioned contract violation in the
// tree.
//
// Each analyzer is pinned to the packages its contract is stated for
// (e.g. meterbalance to internal/core); -all-packages lifts the scopes
// for exploratory runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"obddopt/internal/analysis"
)

// scopes pins each analyzer to the packages whose contract it encodes.
// meterbalance and tracesafe are self-scoping (they key on the Meter and
// Tracer types), atomicfield triggers only where sync/atomic is used, and
// solverregistry only where RegisterSolver is called, so they run
// everywhere; the ctx and panic rules are stated for the solver engine
// packages, and the ownership rules (arenaowner, pooldiscipline) for the
// engine core, whose arena and workspace pools they audit.
var scopes = map[string][]string{
	"arenaowner":     {"internal/core"},
	"pooldiscipline": {"internal/core"},
	"ctxcheckpoint":  {"internal/core", "internal/heuristics", "internal/quantum", "internal/server", "internal/cache", "internal/conformance", "cmd/bddverify"},
	"nopanic":        {"internal/core", "internal/heuristics", "internal/quantum", "internal/obs", "internal/server", "internal/cache", "internal/conformance", "internal/artifact", "cmd/bddverify"},
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bddlint", flag.ExitOnError)
	var (
		verbose     = fs.Bool("verbose", false, "also print suppressed findings and their justifications")
		allPackages = fs.Bool("all-packages", false, "ignore the per-analyzer package scopes and lint everything")
		list        = fs.Bool("list", false, "list the analyzers and exit")
		only        = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		summary     = fs.Bool("summary", false, "print a per-analyzer findings table (markdown) after linting")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bddlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := analysis.ByName(strings.TrimSpace(name))
			if !ok {
				valid := make([]string, 0, len(analysis.All()))
				for _, a := range analysis.All() {
					valid = append(valid, a.Name)
				}
				fmt.Fprintf(os.Stderr, "bddlint: unknown analyzer %q (valid analyzers: %s)\n",
					name, strings.Join(valid, ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddlint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddlint:", err)
		return 2
	}

	// Surface type-check failures: an analyzer running on a package it
	// could not fully resolve may under-report, and that must be visible.
	typeErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "bddlint: %s: %v\n", pkg.Path, e)
			typeErrs++
		}
	}

	opts := &analysis.RunOptions{Scopes: scopes}
	if *allPackages {
		opts = nil
	}
	findings, err := analysis.Run(pkgs, analyzers, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddlint:", err)
		return 2
	}

	active, suppressed := 0, 0
	type ruleCount struct{ active, suppressed int }
	perRule := map[string]*ruleCount{}
	for _, a := range analyzers {
		perRule[a.Name] = &ruleCount{}
	}
	for _, f := range findings {
		rc := perRule[f.Analyzer]
		if rc == nil {
			// Pseudo-analyzers (malformed allow directives).
			rc = &ruleCount{}
			perRule[f.Analyzer] = rc
		}
		if f.Suppressed {
			suppressed++
			rc.suppressed++
			if *verbose {
				fmt.Printf("%s (suppressed: %s)\n", rel(cwd, f), f.Justification)
			}
			continue
		}
		active++
		rc.active++
		fmt.Println(rel(cwd, f))
	}
	if *summary {
		names := make([]string, 0, len(perRule))
		for name := range perRule {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("| analyzer | findings | suppressed |\n|---|---:|---:|\n")
		for _, name := range names {
			rc := perRule[name]
			fmt.Printf("| %s | %d | %d |\n", name, rc.active, rc.suppressed)
		}
	}
	if *verbose || active > 0 {
		fmt.Fprintf(os.Stderr, "bddlint: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), active, suppressed)
	}
	if active > 0 || typeErrs > 0 {
		return 1
	}
	return 0
}

// rel shortens a finding's path relative to the working directory.
func rel(cwd string, f analysis.Finding) string {
	if r, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		f.Pos.Filename = r
	}
	return f.String()
}
