package main

import (
	"os"
	"strings"
	"testing"
)

// TestRunRealTree is the self-audit acceptance gate: the multichecker
// must exit 0 over the repository's own module — every engine contract
// holds (or carries a justified //lint:allow).
func TestRunRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	if code := run(nil); code != 0 {
		t.Fatalf("bddlint over the module exited %d, want 0", code)
	}
}

func TestListFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-list"}); code != 0 {
			t.Fatalf("bddlint -list exited %d, want 0", code)
		}
	})
	for _, name := range []string{
		"meterbalance", "arenaowner", "pooldiscipline", "atomicfield",
		"ctxcheckpoint", "nopanic", "tracesafe", "solverregistry",
	} {
		if !strings.Contains(out, name+":") {
			t.Errorf("bddlint -list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestOnlyFlagSelects(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-only", "nopanic", "-list"}); code != 0 {
			t.Fatalf("bddlint -only=nopanic -list exited %d, want 0", code)
		}
	})
	if !strings.Contains(out, "nopanic:") {
		t.Errorf("-only=nopanic -list did not print nopanic:\n%s", out)
	}
	if strings.Contains(out, "meterbalance:") {
		t.Errorf("-only=nopanic -list still printed meterbalance:\n%s", out)
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	errOut := captureStderr(t, func() {
		if code := run([]string{"-only", "nosuchrule", "-list"}); code != 2 {
			t.Fatalf("bddlint -only=nosuchrule exited %d, want 2", code)
		}
	})
	if !strings.Contains(errOut, `unknown analyzer "nosuchrule"`) {
		t.Errorf("error message does not name the rejected analyzer:\n%s", errOut)
	}
	// The error must list every valid rule so the caller can fix the
	// invocation without consulting -list.
	for _, name := range []string{
		"meterbalance", "arenaowner", "pooldiscipline", "atomicfield",
		"ctxcheckpoint", "nopanic", "tracesafe", "solverregistry",
	} {
		if !strings.Contains(errOut, name) {
			t.Errorf("error message does not list valid analyzer %q:\n%s", name, errOut)
		}
	}
}

// TestSummaryFlag checks the per-rule findings table the CI job summary
// is built from: one row per analyzer run, findings and suppressed
// columns.
func TestSummaryFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages; skipped in -short mode")
	}
	out := captureStdout(t, func() {
		if code := run([]string{"-only", "pooldiscipline", "-summary", "internal/core/arena"}); code != 0 {
			t.Fatalf("bddlint -summary over internal/core/arena exited %d, want 0", code)
		}
	})
	if !strings.Contains(out, "| analyzer | findings | suppressed |") {
		t.Errorf("-summary output missing table header:\n%s", out)
	}
	// arena.Release carries the one sanctioned pooldiscipline waiver.
	if !strings.Contains(out, "| pooldiscipline | 0 | 1 |") {
		t.Errorf("-summary output missing pooldiscipline row with the arena.Release waiver counted:\n%s", out)
	}
}

// captureStderr redirects os.Stderr around fn and returns what it wrote.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = orig }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	out := <-done
	os.Stderr = orig
	return out
}

// captureStdout redirects os.Stdout around fn and returns what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	return out
}
