// Command bddbench regenerates the evaluation tables and figures
// (experiments E1–E14 of DESIGN.md) and benchmarks individual solvers
// from the named-solver registry.
//
// Usage:
//
//	bddbench            # list experiments
//	bddbench -exp E4    # run one experiment at full size
//	bddbench -exp all   # run everything (minutes)
//	bddbench -exp all -quick -seed 7
//	bddbench -exp E2 -json          # machine-readable per-experiment reports
//	bddbench -exp all -progress     # live per-experiment status on stderr
//	bddbench -exp E5 -debug-addr localhost:6060
//	bddbench -solver portfolio -n 12 -reps 3      # time one solver
//	bddbench -solver fs -n 14 -deadline 100ms     # deadline behavior
//	bddbench -trajectory -json > BENCH.json       # solver x n sweep artifact
//	bddbench -compare old.json new.json           # diff artifacts; nonzero on regression
//
// Observability: -json wraps each experiment in a run report (schema
// internal/obs.RunReport) carrying wall time, the experiment's table text
// in `details`, and the delta of the process-wide obs metrics counters
// (cell ops, compactions, evaluations, …) attributable to that
// experiment; the reports are emitted as one JSON array on stdout.
// -progress announces each experiment on stderr as it starts and
// finishes. -debug-addr serves net/http/pprof and expvar (/debug/vars).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"obddopt/internal/cliutil"
	"obddopt/internal/core"
	"obddopt/internal/exp"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment ID (E1..E18) or 'all'")
		seed      = flag.Int64("seed", 1, "random seed for workload generation")
		quick     = flag.Bool("quick", false, "shrink problem sizes (CI-friendly)")
		jsonOut   = flag.Bool("json", false, "emit one JSON run report per experiment (array on stdout)")
		progress  = flag.Bool("progress", false, "announce each experiment on stderr")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /debug/vars on this address")
		benchN    = flag.Int("n", 10, "variable count for -solver benchmark mode")
		reps      = flag.Int("reps", 3, "random functions per -solver benchmark run")
		ruleName  = flag.String("rule", "obdd", "diagram rule for -solver benchmark mode: obdd | zdd")

		trajectory = flag.Bool("trajectory", false, "sweep every registered solver over growing n under -time-cap; with -json, emit the trajectory artifact")
		compare    = flag.Bool("compare", false, "diff two trajectory artifacts given as positional args (old.json new.json); exit nonzero past -threshold")
		timeCap    = flag.Duration("time-cap", 0, "per-run wall cap in -trajectory mode (0 = 2s, or 300ms with -quick)")
		threshold  = flag.Float64("threshold", 1.5, "-compare regression threshold: flag points whose ns/op grew more than this factor")
		nsAdvisory = flag.Bool("ns-advisory", false, "-compare: report ns/op regressions without failing; only max-feasible-n drops exit nonzero")
		maxN       = flag.Int("max-n", 0, "largest variable count swept in -trajectory mode (0 = 16)")
	)
	var solverFlags cliutil.SolverFlags
	solverFlags.Register(flag.CommandLine, "")
	flag.Parse()
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bddbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bddbench: debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}
	var err error
	switch {
	case *compare:
		args := flag.Args()
		if len(args) != 2 {
			err = errors.New("-compare needs exactly two positional arguments: old.json new.json (flags must precede them)")
		} else {
			err = runCompare(os.Stdout, args[0], args[1], *threshold, *nsAdvisory)
		}
	case *trajectory:
		rule, rerr := cliutil.ParseRule(*ruleName)
		if rerr != nil {
			err = rerr
		} else {
			cfg := resolveTrajectoryConfig(*seed, *quick, *timeCap, *maxN, rule)
			err = runTrajectory(os.Stdout, os.Stderr, cfg, *jsonOut, *progress)
		}
	case solverFlags.Solver != "":
		err = runSolverBench(os.Stdout, solverFlags, *benchN, *reps, *ruleName, *seed)
	default:
		err = runMain(os.Stdout, os.Stderr, *expID, *seed, *quick, *jsonOut, *progress)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bddbench:", err)
		os.Exit(1)
	}
}

// runSolverBench is the -solver benchmark mode: it times one registered
// solver on reps uniformly random functions of n variables — the same
// registry and flag semantics as optobdd's -solver, so solvers can be
// compared across tools on identical names. Runs that hit the -deadline
// or budget count as timeouts; an incumbent-carrying timeout still
// reports its (unproven) cost.
func runSolverBench(stdout io.Writer, flags cliutil.SolverFlags, n, reps int, ruleName string, seed int64) error {
	solver, name, err := flags.Resolve()
	if err != nil {
		return err
	}
	rule, err := cliutil.ParseRule(ruleName)
	if err != nil {
		return err
	}
	if n < 1 || n > truthtable.MaxVars {
		return fmt.Errorf("-n %d out of range [1,%d]", n, truthtable.MaxVars)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	fmt.Fprintf(stdout, "solver %s, rule %s, %d random functions of n=%d (seed %d)\n",
		name, rule, reps, n, seed)
	var total time.Duration
	for i := 0; i < reps; i++ {
		tt := truthtable.Random(n, rng)
		ctx, cancel := flags.Context()
		start := time.Now()
		runOpts := &core.SolveOptions{Rule: rule, Budget: flags.Budget()}
		flags.Schedule(runOpts)
		res, runErr := solver(ctx, tt, runOpts)
		elapsed := time.Since(start)
		cancel()
		total += elapsed
		switch {
		case runErr == nil:
			fmt.Fprintf(stdout, "  rep %d: cost %d in %v\n", i+1, res.MinCost, elapsed.Round(time.Microsecond))
		case res != nil:
			fmt.Fprintf(stdout, "  rep %d: stopped early (%v), incumbent cost %d after %v\n",
				i+1, shortErr(runErr), res.MinCost, elapsed.Round(time.Microsecond))
		default:
			fmt.Fprintf(stdout, "  rep %d: stopped early (%v), no incumbent, after %v\n",
				i+1, shortErr(runErr), elapsed.Round(time.Microsecond))
		}
	}
	fmt.Fprintf(stdout, "mean wall time: %v\n", (total / time.Duration(reps)).Round(time.Microsecond))
	return nil
}

// shortErr collapses wrapped sentinel errors to their bare names for
// compact benchmark lines.
func shortErr(err error) error {
	switch {
	case errors.Is(err, core.ErrCanceled):
		return core.ErrCanceled
	case errors.Is(err, core.ErrBudgetExceeded):
		return core.ErrBudgetExceeded
	default:
		return err
	}
}

// runMain dispatches one invocation; factored out of main for testing.
func runMain(stdout, stderr io.Writer, expID string, seed int64, quick, jsonOut, progress bool) error {
	cfg := exp.Config{Seed: seed, Quick: quick}
	if expID == "" {
		fmt.Fprintln(stdout, "available experiments (run with -exp <id> or -exp all):")
		for _, id := range exp.IDs() {
			desc, _ := exp.Describe(id)
			fmt.Fprintf(stdout, "  %-4s %s\n", id, desc)
		}
		return nil
	}

	ids := []string{expID}
	if expID == "all" {
		ids = exp.IDs()
	}

	var reports []*obs.RunReport
	for _, id := range ids {
		if progress {
			desc, _ := exp.Describe(id)
			fmt.Fprintf(stderr, "[bddbench] %s: %s ...\n", id, desc)
		}
		out := stdout
		var buf bytes.Buffer
		if jsonOut {
			out = &buf
		}
		before := obs.MetricsSnapshot()
		start := time.Now()
		err := exp.Run(id, out, cfg)
		elapsed := time.Since(start)
		if err != nil {
			if expID == "all" {
				return fmt.Errorf("%s: %w", id, err)
			}
			return err
		}
		if progress {
			fmt.Fprintf(stderr, "[bddbench] %s: done in %s\n", id, elapsed.Round(time.Millisecond))
		}
		if jsonOut {
			desc, _ := exp.Describe(id)
			reports = append(reports, &obs.RunReport{
				Tool:      "bddbench",
				Algorithm: id,
				ElapsedMS: float64(elapsed) / float64(time.Millisecond),
				Metrics:   obs.MetricsDelta(before, obs.MetricsSnapshot()),
				Details: map[string]string{
					"description": desc,
					"output":      buf.String(),
				},
			})
		} else if expID == "all" {
			fmt.Fprintln(stdout)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}
