// Command bddbench regenerates the evaluation tables and figures
// (experiments E1–E14 of DESIGN.md).
//
// Usage:
//
//	bddbench            # list experiments
//	bddbench -exp E4    # run one experiment at full size
//	bddbench -exp all   # run everything (minutes)
//	bddbench -exp all -quick -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"obddopt/internal/exp"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment ID (E1..E18) or 'all'")
		seed  = flag.Int64("seed", 1, "random seed for workload generation")
		quick = flag.Bool("quick", false, "shrink problem sizes (CI-friendly)")
	)
	flag.Parse()
	if err := runMain(os.Stdout, *expID, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bddbench:", err)
		os.Exit(1)
	}
}

// runMain dispatches one invocation; factored out of main for testing.
func runMain(w io.Writer, expID string, seed int64, quick bool) error {
	cfg := exp.Config{Seed: seed, Quick: quick}
	switch expID {
	case "":
		fmt.Fprintln(w, "available experiments (run with -exp <id> or -exp all):")
		for _, id := range exp.IDs() {
			desc, _ := exp.Describe(id)
			fmt.Fprintf(w, "  %-4s %s\n", id, desc)
		}
		return nil
	case "all":
		return exp.RunAll(w, cfg)
	default:
		return exp.Run(expID, w, cfg)
	}
}
