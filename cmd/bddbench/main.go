// Command bddbench regenerates the evaluation tables and figures
// (experiments E1–E14 of DESIGN.md).
//
// Usage:
//
//	bddbench            # list experiments
//	bddbench -exp E4    # run one experiment at full size
//	bddbench -exp all   # run everything (minutes)
//	bddbench -exp all -quick -seed 7
//	bddbench -exp E2 -json          # machine-readable per-experiment reports
//	bddbench -exp all -progress     # live per-experiment status on stderr
//	bddbench -exp E5 -debug-addr localhost:6060
//
// Observability: -json wraps each experiment in a run report (schema
// internal/obs.RunReport) carrying wall time, the experiment's table text
// in `details`, and the delta of the process-wide obs metrics counters
// (cell ops, compactions, evaluations, …) attributable to that
// experiment; the reports are emitted as one JSON array on stdout.
// -progress announces each experiment on stderr as it starts and
// finishes. -debug-addr serves net/http/pprof and expvar (/debug/vars).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"obddopt/internal/exp"
	"obddopt/internal/obs"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment ID (E1..E18) or 'all'")
		seed      = flag.Int64("seed", 1, "random seed for workload generation")
		quick     = flag.Bool("quick", false, "shrink problem sizes (CI-friendly)")
		jsonOut   = flag.Bool("json", false, "emit one JSON run report per experiment (array on stdout)")
		progress  = flag.Bool("progress", false, "announce each experiment on stderr")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /debug/vars on this address")
	)
	flag.Parse()
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bddbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bddbench: debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}
	if err := runMain(os.Stdout, os.Stderr, *expID, *seed, *quick, *jsonOut, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "bddbench:", err)
		os.Exit(1)
	}
}

// runMain dispatches one invocation; factored out of main for testing.
func runMain(stdout, stderr io.Writer, expID string, seed int64, quick, jsonOut, progress bool) error {
	cfg := exp.Config{Seed: seed, Quick: quick}
	if expID == "" {
		fmt.Fprintln(stdout, "available experiments (run with -exp <id> or -exp all):")
		for _, id := range exp.IDs() {
			desc, _ := exp.Describe(id)
			fmt.Fprintf(stdout, "  %-4s %s\n", id, desc)
		}
		return nil
	}

	ids := []string{expID}
	if expID == "all" {
		ids = exp.IDs()
	}

	var reports []*obs.RunReport
	for _, id := range ids {
		if progress {
			desc, _ := exp.Describe(id)
			fmt.Fprintf(stderr, "[bddbench] %s: %s ...\n", id, desc)
		}
		out := stdout
		var buf bytes.Buffer
		if jsonOut {
			out = &buf
		}
		before := obs.MetricsSnapshot()
		start := time.Now()
		err := exp.Run(id, out, cfg)
		elapsed := time.Since(start)
		if err != nil {
			if expID == "all" {
				return fmt.Errorf("%s: %w", id, err)
			}
			return err
		}
		if progress {
			fmt.Fprintf(stderr, "[bddbench] %s: done in %s\n", id, elapsed.Round(time.Millisecond))
		}
		if jsonOut {
			desc, _ := exp.Describe(id)
			reports = append(reports, &obs.RunReport{
				Tool:      "bddbench",
				Algorithm: id,
				ElapsedMS: float64(elapsed) / float64(time.Millisecond),
				Metrics:   obs.MetricsDelta(before, obs.MetricsSnapshot()),
				Details: map[string]string{
					"description": desc,
					"output":      buf.String(),
				},
			})
		} else if expID == "all" {
			fmt.Fprintln(stdout)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}
