package main

// Benchmark trajectory mode: a fixed-seed sweep of every registered
// solver over growing variable counts under a per-point time cap,
// emitted as a committed JSON artifact (BENCH_<pr>.json) so the repo
// carries its own performance history — each PR's numbers diff against
// the previous ones with `bddbench -compare old.json new.json`, which
// exits nonzero past a regression threshold. The workload is fully
// deterministic: one random function per (seed, n), shared by every
// solver, so points are comparable across solvers and across commits.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// trajectorySchema versions the artifact; compare refuses to diff
// across schema changes.
const trajectorySchema = "obddopt/bench-trajectory/v1"

// TrajPoint is one (solver, rule, n) measurement.
type TrajPoint struct {
	Solver string `json:"solver"`
	Rule   string `json:"rule"`
	N      int    `json:"n"`
	// Reps is how many runs the point averaged over (adaptive: enough
	// runs to accumulate a minimum sample time, capped at 64).
	Reps int `json:"reps"`
	// NsPerOp is the mean wall time per solve in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// CellOps / PeakCells are the metered table work and peak live cells
	// of the final rep.
	CellOps   uint64 `json:"cell_ops,omitempty"`
	PeakCells uint64 `json:"peak_cells,omitempty"`
	// MinCost is the solved optimum (or best incumbent on a timeout) —
	// a correctness tripwire: solvers must agree per (rule, n).
	MinCost uint64 `json:"min_cost,omitempty"`
	// TimedOut marks the point where the time cap stopped the solver;
	// the sweep for that solver ends here.
	TimedOut bool   `json:"timed_out,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Trajectory is the committed artifact.
type Trajectory struct {
	Schema    string `json:"schema"`
	GitRev    string `json:"git_rev,omitempty"`
	Seed      int64  `json:"seed"`
	Quick     bool   `json:"quick,omitempty"`
	TimeCapMS int64  `json:"time_cap_ms"`
	// MaxFeasibleN maps solver -> largest n it finished inside the cap.
	MaxFeasibleN map[string]int `json:"max_feasible_n"`
	Points       []TrajPoint    `json:"points"`
}

// trajectoryConfig bundles the sweep parameters after flag resolution.
type trajectoryConfig struct {
	seed      int64
	quick     bool
	timeCap   time.Duration
	maxN      int
	rule      core.Rule
	minSample time.Duration
	maxReps   int
}

// resolveTrajectoryConfig applies the quick/full defaults: quick keeps
// the sweep CI-sized (seconds), full gives stabler numbers.
func resolveTrajectoryConfig(seed int64, quick bool, timeCap time.Duration, maxN int, rule core.Rule) trajectoryConfig {
	c := trajectoryConfig{seed: seed, quick: quick, timeCap: timeCap, maxN: maxN, rule: rule,
		minSample: 30 * time.Millisecond, maxReps: 64}
	if quick {
		c.minSample = 10 * time.Millisecond
	}
	if c.timeCap <= 0 {
		c.timeCap = 2 * time.Second
		if quick {
			c.timeCap = 300 * time.Millisecond
		}
	}
	if c.maxN <= 0 {
		// High enough that the committed quick artifact records where
		// solvers actually stop under the cap (the work-stealing parallel
		// engine clears n=15 since the width-counting kernel), low enough
		// to stay CI-sized — the exponential solvers bail out at their
		// first over-cap point anyway.
		c.maxN = 16
	}
	if c.maxN > truthtable.MaxVars {
		c.maxN = truthtable.MaxVars
	}
	return c
}

// trajectoryStep densifies the sweep where each increment is decisive:
// steps of 2 through n=12 (the low points move together), then every n —
// the layer-DP solvers' max-feasible frontier sits above 12, and a
// 2-step would overshoot the time cap and under-report it.
func trajectoryStep(n int) int {
	if n >= 12 {
		return 1
	}
	return 2
}

// trajectoryTable is the shared workload: one fixed random function per
// (seed, n), identical for every solver at that point.
func trajectoryTable(seed int64, n int) *truthtable.Table {
	return truthtable.Random(n, rand.New(rand.NewSource(seed*1_000_003+int64(n))))
}

// runTrajectory sweeps every registered solver from n=4 upward in steps
// of 2 until the time cap stops it (or maxN is reached), and writes the
// Trajectory artifact (JSON) or a human table to stdout.
func runTrajectory(stdout, stderr io.Writer, cfg trajectoryConfig, jsonOut, progress bool) error {
	traj := &Trajectory{
		Schema:       trajectorySchema,
		GitRev:       gitRev(),
		Seed:         cfg.seed,
		Quick:        cfg.quick,
		TimeCapMS:    cfg.timeCap.Milliseconds(),
		MaxFeasibleN: map[string]int{},
	}
	for _, solverName := range core.SolverNames() {
		solver, _ := core.LookupSolver(solverName)
		for n := 4; n <= cfg.maxN; n += trajectoryStep(n) {
			if progress {
				fmt.Fprintf(stderr, "[bddbench] trajectory %s n=%d ...\n", solverName, n)
			}
			pt := measurePoint(solver, solverName, n, cfg)
			traj.Points = append(traj.Points, pt)
			if pt.TimedOut || pt.Err != "" {
				break
			}
			traj.MaxFeasibleN[solverName] = n
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(traj)
	}
	printTrajectory(stdout, traj)
	return nil
}

// measurePoint times one solver on the fixed function of n variables:
// repeated runs until minSample of wall time accumulates (or maxReps),
// each run bounded by the time cap. A capped run marks the point timed
// out; any other error is recorded verbatim.
func measurePoint(solver core.Solver, solverName string, n int, cfg trajectoryConfig) TrajPoint {
	pt := TrajPoint{Solver: solverName, Rule: strings.ToLower(cfg.rule.String()), N: n}
	tt := trajectoryTable(cfg.seed, n)
	var total time.Duration
	for pt.Reps < cfg.maxReps && (pt.Reps == 0 || total < cfg.minSample) {
		m := &core.Meter{}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeCap)
		start := time.Now()
		res, err := solver(ctx, tt, &core.SolveOptions{Rule: cfg.rule, Meter: m})
		elapsed := time.Since(start)
		cancel()
		total += elapsed
		pt.Reps++
		pt.CellOps = m.CellOps
		pt.PeakCells = m.PeakCells
		if res != nil {
			pt.MinCost = res.MinCost
		}
		if err != nil {
			if errors.Is(err, core.ErrCanceled) {
				pt.TimedOut = true
			} else {
				pt.Err = err.Error()
			}
			break
		}
	}
	pt.NsPerOp = (total / time.Duration(pt.Reps)).Nanoseconds()
	return pt
}

// printTrajectory renders the human-readable table.
func printTrajectory(w io.Writer, traj *Trajectory) {
	fmt.Fprintf(w, "benchmark trajectory (seed %d, cap %dms, rev %s)\n",
		traj.Seed, traj.TimeCapMS, orDash(traj.GitRev))
	fmt.Fprintf(w, "%-10s %-5s %3s %5s %14s %12s %12s %8s\n",
		"solver", "rule", "n", "reps", "ns/op", "cell_ops", "peak_cells", "status")
	for _, p := range traj.Points {
		status := "ok"
		if p.TimedOut {
			status = "timeout"
		} else if p.Err != "" {
			status = "error"
		}
		fmt.Fprintf(w, "%-10s %-5s %3d %5d %14d %12d %12d %8s\n",
			p.Solver, p.Rule, p.N, p.Reps, p.NsPerOp, p.CellOps, p.PeakCells, status)
	}
	solvers := make([]string, 0, len(traj.MaxFeasibleN))
	for s := range traj.MaxFeasibleN {
		solvers = append(solvers, s)
	}
	sort.Strings(solvers)
	for _, s := range solvers {
		fmt.Fprintf(w, "max feasible n: %-10s %d\n", s, traj.MaxFeasibleN[s])
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// gitRev stamps the artifact with the working tree's short revision;
// best-effort (empty outside a git checkout).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadTrajectory reads and schema-checks one artifact.
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.Schema != trajectorySchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, t.Schema, trajectorySchema)
	}
	return &t, nil
}

// errRegression distinguishes "the comparison itself worked but found
// regressions" (exit nonzero in main) from operational failures.
var errRegression = errors.New("bddbench: benchmark regression past threshold")

// runCompare diffs two trajectory artifacts: points are joined on
// (solver, rule, n) — points present in only one file (different sweep
// depth, timeouts) are skipped — and a completed point whose ns/op grew
// by more than threshold× is a regression, as is a solver whose
// max-feasible-n shrank. Returns errRegression when any were found.
//
// With nsAdvisory, ns/op growth is still reported but never fails the
// comparison; only a max-feasible-n drop does. This is the CI gate mode:
// feasibility is machine-independent (a solver either finishes inside
// the cap or it does not), while ns/op on shared runners is too noisy to
// block merges on.
func runCompare(stdout io.Writer, oldPath, newPath string, threshold float64, nsAdvisory bool) error {
	if threshold <= 1 {
		return fmt.Errorf("-threshold must be > 1 (got %g)", threshold)
	}
	oldT, err := loadTrajectory(oldPath)
	if err != nil {
		return err
	}
	newT, err := loadTrajectory(newPath)
	if err != nil {
		return err
	}
	type key struct {
		solver, rule string
		n            int
	}
	oldPts := map[key]TrajPoint{}
	for _, p := range oldT.Points {
		oldPts[key{p.Solver, p.Rule, p.N}] = p
	}
	regressions := 0
	compared := 0
	mode := ""
	if nsAdvisory {
		mode = " (ns/op advisory)"
	}
	fmt.Fprintf(stdout, "comparing %s (rev %s) -> %s (rev %s), threshold %.2fx%s\n",
		oldPath, orDash(oldT.GitRev), newPath, orDash(newT.GitRev), threshold, mode)
	for _, np := range newT.Points {
		op, ok := oldPts[key{np.Solver, np.Rule, np.N}]
		if !ok || op.TimedOut || np.TimedOut || op.Err != "" || np.Err != "" || op.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := float64(np.NsPerOp) / float64(op.NsPerOp)
		mark := ""
		if ratio > threshold {
			if nsAdvisory {
				mark = "  slower (advisory)"
			} else {
				regressions++
				mark = "  REGRESSION"
			}
		}
		fmt.Fprintf(stdout, "  %-10s %-5s n=%-3d %12d -> %12d ns/op  (%.2fx)%s\n",
			np.Solver, np.Rule, np.N, op.NsPerOp, np.NsPerOp, ratio, mark)
	}
	for solver, oldN := range oldT.MaxFeasibleN {
		if newN, ok := newT.MaxFeasibleN[solver]; ok && newN < oldN {
			regressions++
			fmt.Fprintf(stdout, "  %-10s max feasible n shrank: %d -> %d  REGRESSION\n", solver, oldN, newN)
		}
	}
	fmt.Fprintf(stdout, "%d points compared, %d regressions\n", compared, regressions)
	if compared == 0 {
		return fmt.Errorf("no comparable points between %s and %s", oldPath, newPath)
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d of %d points", errRegression, regressions, compared)
	}
	return nil
}
