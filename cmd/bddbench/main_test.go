package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"obddopt/internal/obs"
)

func TestRunMainList(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, io.Discard, "", 1, true, false, false); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, want := range []string{"E1", "E18", "available experiments"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunMainSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, io.Discard, "E2", 1, true, false, false); err != nil {
		t.Fatalf("E2: %v", err)
	}
	if !strings.Contains(buf.String(), "2.97625") {
		t.Errorf("E2 output missing γ₁")
	}
}

func TestRunMainJSON(t *testing.T) {
	var out, errw bytes.Buffer
	// E4 runs the FS dynamic program, so the metrics delta must show the
	// cell operations it performed.
	if err := runMain(&out, &errw, "E4", 1, true, true, true); err != nil {
		t.Fatalf("E4 json: %v", err)
	}
	var reports []obs.RunReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(reports))
	}
	rep := reports[0]
	if rep.Tool != "bddbench" || rep.Algorithm != "E4" {
		t.Errorf("report identity wrong: %+v", rep)
	}
	details, ok := rep.Details.(map[string]any)
	if !ok || details["output"].(string) == "" {
		t.Errorf("report details missing experiment table: %v", rep.Details)
	}
	metrics, ok := rep.Metrics.(map[string]any)
	if !ok {
		t.Fatalf("metrics delta missing: %T", rep.Metrics)
	}
	if v, ok := metrics["cell_ops"].(float64); !ok || v <= 0 {
		t.Errorf("metrics delta cell_ops missing or zero: %v", metrics["cell_ops"])
	}
	if !strings.Contains(errw.String(), "E4: done in") {
		t.Errorf("progress lines missing from stderr: %q", errw.String())
	}
}

func TestRunMainUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, io.Discard, "E99", 1, true, false, false); err == nil {
		t.Errorf("unknown experiment should error")
	}
}
