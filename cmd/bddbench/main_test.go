package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMainList(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "", 1, true); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, want := range []string{"E1", "E18", "available experiments"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunMainSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "E2", 1, true); err != nil {
		t.Fatalf("E2: %v", err)
	}
	if !strings.Contains(buf.String(), "2.97625") {
		t.Errorf("E2 output missing γ₁")
	}
}

func TestRunMainUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "E99", 1, true); err == nil {
		t.Errorf("unknown experiment should error")
	}
}
