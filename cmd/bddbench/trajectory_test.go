package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"obddopt/internal/core"
)

// tinyTrajectory runs a minimal sweep (n up to 6, short cap) — enough
// structure for the compare tests without slowing the suite down.
func tinyTrajectory(t *testing.T) *Trajectory {
	t.Helper()
	cfg := resolveTrajectoryConfig(1, true, 200*time.Millisecond, 6, core.OBDD)
	cfg.minSample = time.Millisecond
	cfg.maxReps = 2
	var out bytes.Buffer
	if err := runTrajectory(&out, io.Discard, cfg, true, false); err != nil {
		t.Fatalf("runTrajectory: %v", err)
	}
	var traj Trajectory
	if err := json.Unmarshal(out.Bytes(), &traj); err != nil {
		t.Fatalf("trajectory output is not valid JSON: %v\n%s", err, out.String())
	}
	return &traj
}

func writeTrajectory(t *testing.T, name string, traj *Trajectory) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(traj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrajectorySweep(t *testing.T) {
	traj := tinyTrajectory(t)
	if traj.Schema != trajectorySchema {
		t.Errorf("schema = %q, want %q", traj.Schema, trajectorySchema)
	}
	if len(traj.Points) == 0 {
		t.Fatal("sweep produced no points")
	}
	// Every registered solver must appear, and within a (rule, n) slice
	// all completed solvers must agree on MinCost — the artifact doubles
	// as a cross-solver correctness tripwire.
	seen := map[string]bool{}
	cost := map[int]uint64{}
	for _, p := range traj.Points {
		seen[p.Solver] = true
		if p.TimedOut || p.Err != "" {
			continue
		}
		if p.NsPerOp <= 0 || p.Reps < 1 {
			t.Errorf("%s n=%d: ns_per_op %d reps %d", p.Solver, p.N, p.NsPerOp, p.Reps)
		}
		if want, ok := cost[p.N]; ok && p.MinCost != want {
			t.Errorf("%s n=%d: MinCost %d disagrees with %d", p.Solver, p.N, p.MinCost, want)
		} else {
			cost[p.N] = p.MinCost
		}
	}
	for _, name := range core.SolverNames() {
		if !seen[name] {
			t.Errorf("solver %s missing from sweep", name)
		}
		if traj.MaxFeasibleN[name] < 4 {
			t.Errorf("solver %s max_feasible_n = %d, want >= 4", name, traj.MaxFeasibleN[name])
		}
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	traj := tinyTrajectory(t)
	path := writeTrajectory(t, "self.json", traj)
	var out bytes.Buffer
	if err := runCompare(&out, path, path, 1.5, false); err != nil {
		t.Fatalf("self-compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 regressions") {
		t.Errorf("self-compare output missing zero-regression line:\n%s", out.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	traj := tinyTrajectory(t)
	oldPath := writeTrajectory(t, "old.json", traj)

	slow := *traj
	slow.Points = append([]TrajPoint(nil), traj.Points...)
	for i := range slow.Points {
		slow.Points[i].NsPerOp *= 10
	}
	newPath := writeTrajectory(t, "new.json", &slow)

	var out bytes.Buffer
	err := runCompare(&out, oldPath, newPath, 1.5, false)
	if err == nil {
		t.Fatalf("10x slowdown not reported as regression:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("error does not mention regression: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION marks:\n%s", out.String())
	}

	// The reverse direction (new is faster) must stay clean.
	out.Reset()
	if err := runCompare(&out, newPath, oldPath, 1.5, false); err != nil {
		t.Errorf("speedup flagged as regression: %v", err)
	}
}

// TestCompareNsAdvisory pins the CI gate mode: with ns-advisory set, a
// pure ns/op slowdown is reported but does not fail, while a
// max-feasible-n drop still does.
func TestCompareNsAdvisory(t *testing.T) {
	traj := tinyTrajectory(t)
	oldPath := writeTrajectory(t, "old.json", traj)

	slow := *traj
	slow.Points = append([]TrajPoint(nil), traj.Points...)
	for i := range slow.Points {
		slow.Points[i].NsPerOp *= 10
	}
	slowPath := writeTrajectory(t, "slow.json", &slow)

	var out bytes.Buffer
	if err := runCompare(&out, oldPath, slowPath, 1.5, true); err != nil {
		t.Fatalf("advisory mode failed on a pure ns/op slowdown: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Errorf("advisory output missing the advisory mark:\n%s", out.String())
	}

	shrunk := slow
	shrunk.MaxFeasibleN = map[string]int{}
	for s, n := range traj.MaxFeasibleN {
		shrunk.MaxFeasibleN[s] = n - 2
	}
	shrunkPath := writeTrajectory(t, "shrunk.json", &shrunk)
	out.Reset()
	if err := runCompare(&out, oldPath, shrunkPath, 1.5, true); err == nil {
		t.Fatalf("advisory mode let a max-feasible-n drop pass:\n%s", out.String())
	}
}

func TestCompareDetectsFeasibilityDrop(t *testing.T) {
	traj := tinyTrajectory(t)
	oldPath := writeTrajectory(t, "old.json", traj)

	shrunk := *traj
	shrunk.MaxFeasibleN = map[string]int{}
	for s, n := range traj.MaxFeasibleN {
		shrunk.MaxFeasibleN[s] = n - 2
	}
	newPath := writeTrajectory(t, "new.json", &shrunk)

	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath, 1.5, false); err == nil {
		t.Fatalf("max-feasible-n drop not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "max feasible n shrank") {
		t.Errorf("output missing feasibility-drop line:\n%s", out.String())
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	traj := tinyTrajectory(t)
	good := writeTrajectory(t, "good.json", traj)

	if err := runCompare(io.Discard, good, good, 0.5, false); err == nil {
		t.Error("threshold <= 1 accepted")
	}
	if err := runCompare(io.Discard, filepath.Join(t.TempDir(), "absent.json"), good, 1.5, false); err == nil {
		t.Error("missing old file accepted")
	}
	bad := *traj
	bad.Schema = "some/other/v9"
	badPath := writeTrajectory(t, "bad.json", &bad)
	if err := runCompare(io.Discard, good, badPath, 1.5, false); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not rejected: %v", err)
	}
}

// TestCommittedArtifactIsCurrent guards BENCH_6.json: it must parse,
// carry the current schema, and self-compare clean — so the CI smoke
// job always has a valid baseline to diff against.
func TestCommittedArtifactIsCurrent(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_7.json")
	traj, err := loadTrajectory(path)
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	if len(traj.Points) == 0 || len(traj.MaxFeasibleN) == 0 {
		t.Fatal("committed artifact is empty")
	}
	var out bytes.Buffer
	if err := runCompare(&out, path, path, 1.5, false); err != nil {
		t.Fatalf("committed artifact self-compare: %v\n%s", err, out.String())
	}
}
