package obddopt_test

import (
	"fmt"

	obddopt "obddopt"
)

// The paper's running example: the Fig. 1 function has an 8-node OBDD
// under the optimal (interleaved) ordering and a 16-node one under the
// blocked ordering.
func Example() {
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4 | x5 & x6", 6)
	res := obddopt.OptimalOrdering(f, nil)
	fmt.Println(res.Size, res.Ordering)

	blocked := obddopt.Ordering{5, 3, 1, 4, 2, 0}
	fmt.Println(obddopt.SizeUnder(f, blocked, obddopt.OBDD))
	// Output:
	// 8 (x1, x2, x3, x4, x5, x6)
	// 16
}

// ExampleOptimalOrdering shows the exact dynamic program on a multiplexer:
// the optimum reads the select variable first.
func ExampleOptimalOrdering() {
	// f = s ? d1 : d0 over variables s=x1, d0=x2, d1=x3.
	f := obddopt.MustParseExpr("(!x1 & x2) | (x1 & x3)", 3)
	res := obddopt.OptimalOrdering(f, nil)
	fmt.Println(res.MinCost, res.Ordering)
	// Output:
	// 3 (x1, x2, x3)
}

// ExampleOptimalOrdering_zdd minimizes a zero-suppressed DD instead: the
// family {∅} needs no nonterminal nodes at all.
func ExampleOptimalOrdering_zdd() {
	f := obddopt.MustParseExpr("!x1 & !x2 & !x3", 3)
	res := obddopt.OptimalOrdering(f, &obddopt.Options{Rule: obddopt.ZDD})
	fmt.Println(res.MinCost)
	// Output:
	// 0
}

// ExampleBuildBDD materializes the minimum diagram and queries it.
func ExampleBuildBDD() {
	f := obddopt.MustParseExpr("x1 ^ x2 ^ x3", 3)
	res := obddopt.OptimalOrdering(f, nil)
	m, root := obddopt.BuildBDD(f, res.Ordering)
	fmt.Println(m.SatCount(root))
	fmt.Println(m.Size(root) == res.Size)
	// Output:
	// 4
	// true
}

// ExampleSift compares the sifting heuristic to the certified optimum.
func ExampleSift() {
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4", 4)
	s := obddopt.Sift(f, obddopt.OBDD, 0)
	opt := obddopt.OptimalOrdering(f, nil)
	fmt.Println(s.MinCost == opt.MinCost)
	// Output:
	// true
}

// ExampleSymmetryGroups detects the interchangeable variables of the
// Fig. 1 function: each product pair forms a group.
func ExampleSymmetryGroups() {
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4", 4)
	for _, g := range obddopt.SymmetryGroups(f) {
		fmt.Println(g.Members(nil))
	}
	// Output:
	// [0 1]
	// [2 3]
}

// ExampleOptimalOrderingShared optimizes two functions jointly: the shared
// forest of a function and a cofactor-like variant reuses structure.
func ExampleOptimalOrderingShared() {
	sum := obddopt.MustParseExpr("x1 ^ x2 ^ x3", 3)
	carry := obddopt.MustParseExpr("x1 & x2 | x3 & (x1 ^ x2)", 3)
	res := obddopt.OptimalOrderingShared([]*obddopt.Table{sum, carry}, nil)
	fmt.Println(res.Roots, res.MinCost)
	// Output:
	// 2 8
}
