package obddopt_test

import (
	"context"
	"fmt"

	obddopt "obddopt"
)

// The paper's running example: the Fig. 1 function has an 8-node OBDD
// under the optimal (interleaved) ordering and a 16-node one under the
// blocked ordering. WithSolver("fs") pins the Friedman–Supowit dynamic
// program, whose tie-breaking makes the reported ordering deterministic.
func Example() {
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4 | x5 & x6", 6)
	res, err := obddopt.Solve(context.Background(), f, obddopt.WithSolver("fs"))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Size, res.Ordering)

	blocked := obddopt.Ordering{5, 3, 1, 4, 2, 0}
	fmt.Println(obddopt.SizeUnder(f, blocked, obddopt.OBDD))
	// Output:
	// 8 (x1, x2, x3, x4, x5, x6)
	// 16
}

// ExampleSolve shows the exact solve on a multiplexer: the optimum reads
// the select variable first. A nil error proves res.MinCost is optimal.
func ExampleSolve() {
	// f = s ? d1 : d0 over variables s=x1, d0=x2, d1=x3.
	f := obddopt.MustParseExpr("(!x1 & x2) | (x1 & x3)", 3)
	res, err := obddopt.Solve(context.Background(), f, obddopt.WithSolver("fs"))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.MinCost, res.Ordering)
	// Output:
	// 3 (x1, x2, x3)
}

// ExampleSolve_zdd minimizes a zero-suppressed DD instead: the family
// {∅} needs no nonterminal nodes at all.
func ExampleSolve_zdd() {
	f := obddopt.MustParseExpr("!x1 & !x2 & !x3", 3)
	res, err := obddopt.Solve(context.Background(), f, obddopt.WithRule(obddopt.ZDD))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.MinCost)
	// Output:
	// 0
}

// ExampleBuildBDD materializes the minimum diagram and queries it.
func ExampleBuildBDD() {
	f := obddopt.MustParseExpr("x1 ^ x2 ^ x3", 3)
	res, err := obddopt.Solve(context.Background(), f)
	if err != nil {
		panic(err)
	}
	m, root := obddopt.BuildBDD(f, res.Ordering)
	fmt.Println(m.SatCount(root))
	fmt.Println(m.Size(root) == res.Size)
	// Output:
	// 4
	// true
}

// ExampleSift compares the sifting heuristic to the certified optimum.
func ExampleSift() {
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4", 4)
	s := obddopt.Sift(f, obddopt.OBDD, 0)
	opt, err := obddopt.Solve(context.Background(), f)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.MinCost == opt.MinCost)
	// Output:
	// true
}

// ExampleSymmetryGroups detects the interchangeable variables of the
// Fig. 1 function: each product pair forms a group.
func ExampleSymmetryGroups() {
	f := obddopt.MustParseExpr("x1 & x2 | x3 & x4", 4)
	for _, g := range obddopt.SymmetryGroups(f) {
		fmt.Println(g.Members(nil))
	}
	// Output:
	// [0 1]
	// [2 3]
}

// ExampleSolveShared optimizes two functions jointly: the shared forest
// of a full adder's sum and carry reuses structure across the roots.
func ExampleSolveShared() {
	sum := obddopt.MustParseExpr("x1 ^ x2 ^ x3", 3)
	carry := obddopt.MustParseExpr("x1 & x2 | x3 & (x1 ^ x2)", 3)
	res, err := obddopt.SolveShared(context.Background(), []*obddopt.Table{sum, carry})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Roots, res.MinCost)
	// Output:
	// 2 8
}
