module obddopt

go 1.22
