package obddopt

// Facade exports for the input frontends (PLA covers, gate-level
// circuits) and the benchmark function generators, so downstream users
// can reach them without access to the internal packages.

import (
	"io"
	"math/rand"

	"obddopt/internal/circuit"
	"obddopt/internal/funcs"
	"obddopt/internal/pla"
	"obddopt/internal/truthtable"
)

// PLA is a parsed Berkeley/espresso two-level cover; see internal/pla for
// the format. Use OutputTable/Tables to obtain optimizable truth tables.
type PLA = pla.PLA

// ParsePLA reads a PLA description.
func ParsePLA(r io.Reader) (*PLA, error) { return pla.Parse(r) }

// PLAFromTable builds a canonical one-output PLA (one term per minterm).
func PLAFromTable(tt *Table) *PLA { return pla.FromTable(tt) }

// Circuit is a combinational gate-level netlist; see internal/circuit for
// the line format and the builder API.
type Circuit = circuit.Circuit

// ParseCircuit reads a netlist description.
func ParseCircuit(r io.Reader) (*Circuit, error) { return circuit.Parse(r) }

// NewCircuit returns an empty netlist with n primary inputs.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// Netlist generators for benchmark workloads.
var (
	// RippleCarryAdder builds a bits-wide adder netlist (sum bits + carry).
	RippleCarryAdder = circuit.RippleCarryAdder
	// CarrySelectAdder builds a structurally different, equivalent adder.
	CarrySelectAdder = circuit.CarrySelectAdder
	// ComparatorCircuit builds the magnitude comparator [a > b].
	ComparatorCircuit = circuit.ComparatorGT
	// PriorityEncoderCircuit builds an n-input priority encoder.
	PriorityEncoderCircuit = circuit.PriorityEncoder
	// PopCountCircuit builds the Hamming-weight counter netlist.
	PopCountCircuit = circuit.PopCount
)

// Benchmark Boolean functions (see internal/funcs for the full catalog).
var (
	// AchillesHeel is the Fig. 1 family x1·x2 + x3·x4 + … over 2k vars.
	AchillesHeel = funcs.AchillesHeel
	// Parity is x1 ⊕ … ⊕ xn (ordering-invariant OBDD of 2n−1 nodes).
	Parity = funcs.Parity
	// Majority is the n-input majority function.
	Majority = funcs.Majority
	// Threshold is [Σ x_i ≥ k].
	Threshold = funcs.Threshold
	// HiddenWeightedBit is Bryant's function, exponential under every
	// ordering.
	HiddenWeightedBit = funcs.HiddenWeightedBit
	// AdderSumBit is bit i of a bits-wide addition.
	AdderSumBit = funcs.AdderSumBit
	// Comparator is [a > b] over two bits-wide operands.
	Comparator = funcs.Comparator
	// Multiplexer is the 2^sel-way multiplexer (strongly
	// ordering-sensitive).
	Multiplexer = funcs.Multiplexer
)

// RandomTable returns a uniformly random n-variable function drawn from
// rng (seed-deterministic).
func RandomTable(n int, rng *rand.Rand) *Table { return truthtable.Random(n, rng) }
