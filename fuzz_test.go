package obddopt

import (
	"context"
	"errors"
	"testing"
	"time"

	"obddopt/internal/core"
)

// FuzzSolveFacade fuzzes the root Solve facade across option
// combinations — solver × rule × budget × deadline — asserting the API
// contract rather than a fixed outcome: no panic ever; a nil error means
// the proven optimum (cross-checked against the unlimited FS reference);
// an early stop surfaces exactly ErrCanceled or ErrBudgetExceeded, and
// any incumbent alongside it is a valid ordering achieving its claimed
// cost. Explore with `go test -fuzz FuzzSolveFacade .`.
func FuzzSolveFacade(f *testing.F) {
	f.Add(3, uint64(0xCA), uint8(0), false, uint64(0), int64(0))
	f.Add(4, uint64(0x8778), uint8(1), true, uint64(0), int64(0))
	f.Add(5, uint64(0x96696996_00FF), uint8(2), false, uint64(200), int64(0))
	f.Add(5, uint64(0x0123456789ABCDEF), uint8(3), true, uint64(0), int64(5000))
	f.Add(2, uint64(0x8), uint8(4), false, uint64(1), int64(1))
	f.Add(0, uint64(1), uint8(5), true, uint64(0), int64(0))
	f.Fuzz(func(t *testing.T, n int, bits uint64, solverIdx uint8, zdd bool, maxCells uint64, deadlineUS int64) {
		n = ((n % 6) + 6) % 6 // fold the arity into [0, 5]
		tt := NewTable(n)
		for idx := uint64(0); idx < tt.Size() && idx < 64; idx++ {
			tt.Set(idx, bits>>idx&1 == 1)
		}
		names := SolverNames()
		name := names[int(solverIdx)%len(names)]
		rule := OBDD
		if zdd {
			rule = ZDD
		}
		opts := []Option{WithSolver(name), WithRule(rule)}
		if maxCells > 0 {
			opts = append(opts, WithBudget(Budget{MaxCells: maxCells % 4096}))
		}
		if deadlineUS != 0 {
			us := ((deadlineUS % 50_000) + 50_000) % 50_000 // fold into [0, 50ms)
			opts = append(opts, WithDeadline(time.Duration(us+1)*time.Microsecond))
		}

		res, err := Solve(context.Background(), tt, opts...)
		switch {
		case err == nil:
			if res == nil {
				t.Fatalf("solver=%s rule=%v: nil error with nil result", name, rule)
			}
			ref, refErr := Solve(context.Background(), tt, WithSolver("fs"), WithRule(rule))
			if refErr != nil {
				t.Fatalf("unlimited fs reference failed: %v", refErr)
			}
			if res.MinCost != ref.MinCost {
				t.Fatalf("solver=%s rule=%v n=%d bits=%#x: MinCost %d, fs reference %d",
					name, rule, n, bits, res.MinCost, ref.MinCost)
			}
			checkClaimedCost(t, tt, res, rule, name)
		case errors.Is(err, ErrCanceled), errors.Is(err, ErrBudgetExceeded):
			// The graceful-degradation contract: an incumbent, when
			// present, is a real ordering achieving its claimed cost —
			// optimality is simply not proven.
			if res != nil {
				checkClaimedCost(t, tt, res, rule, name)
			}
		default:
			t.Fatalf("solver=%s rule=%v n=%d bits=%#x maxCells=%d: error maps onto no sentinel: %v",
				name, rule, n, bits, maxCells, err)
		}
	})
}

// checkClaimedCost asserts res's ordering is a permutation whose
// evaluated diagram size matches the result's own accounting.
func checkClaimedCost(t *testing.T, tt *Table, res *Result, rule Rule, solver string) {
	t.Helper()
	if len(res.Ordering) != tt.NumVars() || !res.Ordering.Valid() {
		t.Fatalf("solver=%s: ordering %v is not a permutation of %d variables", solver, res.Ordering, tt.NumVars())
	}
	want := res.MinCost + uint64(res.Terminals)
	if got := core.SizeUnder(tt, res.Ordering, rule, nil); got != want {
		t.Fatalf("solver=%s: ordering %v evaluates to %d, result claims %d", solver, res.Ordering, got, want)
	}
}
