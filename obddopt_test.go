package obddopt

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"obddopt/internal/truthtable"
)

// mustSolve runs the unified Solve facade and fails the test on error —
// the migration shim for the old always-succeeding entry points.
func mustSolve(t *testing.T, f *Table, opts ...Option) *Result {
	t.Helper()
	res, err := Solve(context.Background(), f, opts...)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestQuickstartFlow(t *testing.T) {
	f := MustParseExpr("x1 & x2 | x3 & x4 | x5 & x6", 6)
	res := mustSolve(t, f)
	if res.Size != 8 {
		t.Fatalf("Fig. 1 optimal size = %d, want 8", res.Size)
	}
	if got := res.Ordering.String(); !strings.HasPrefix(got, "(") {
		t.Errorf("ordering renders oddly: %s", got)
	}
	m, root := BuildBDD(f, res.Ordering)
	if m.Size(root) != res.Size {
		t.Errorf("materialized diagram size %d != %d", m.Size(root), res.Size)
	}
}

func TestParseExprErrors(t *testing.T) {
	if _, err := ParseExpr("x1 &", 2); err == nil {
		t.Errorf("bad formula should error")
	}
	if _, err := ParseExpr("x5", 2); err == nil {
		t.Errorf("too few variables should error")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustParseExpr should panic")
		}
	}()
	MustParseExpr("x1 &", 2)
}

func TestFacadeAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := truthtable.Random(5, rng)
	a := mustSolve(t, f, WithSolver("fs"))
	b := mustSolve(t, f, WithSolver("brute"))
	c := mustSolve(t, f, WithSolver("dnc"))
	if a.MinCost != b.MinCost || a.MinCost != c.MinCost {
		t.Fatalf("facade algorithms disagree: %d %d %d", a.MinCost, b.MinCost, c.MinCost)
	}
	if SizeUnder(f, a.Ordering, OBDD) != a.Size {
		t.Errorf("SizeUnder inconsistent")
	}
	widths := Profile(f, a.Ordering, OBDD)
	var sum uint64
	for _, w := range widths {
		sum += w
	}
	if sum != a.MinCost {
		t.Errorf("Profile sum %d != MinCost %d", sum, a.MinCost)
	}
}

func TestFacadeZDDAndMulti(t *testing.T) {
	f := MustParseExpr("x1 & !x2 | x3", 3)
	z := mustSolve(t, f, WithRule(ZDD))
	if z.Rule != ZDD {
		t.Errorf("rule not propagated")
	}
	mt := truthtable.MultiFromFunc(3, func(x []bool) int {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return c
	})
	res := OptimalOrderingMulti(mt)
	if res.MinCost != 6 || res.Terminals != 4 {
		t.Errorf("weight-3 MTBDD: %d nodes %d terminals", res.MinCost, res.Terminals)
	}
}

func TestFacadeHeuristics(t *testing.T) {
	f := MustParseExpr("x1 & x2 | x3 & x4", 4)
	s := Sift(f, OBDD, 0)
	w := WindowPermute(f, OBDD, 2)
	opt := mustSolve(t, f).MinCost
	if s.MinCost < opt || w.MinCost < opt {
		t.Errorf("heuristics beat the optimum")
	}
}

func TestTableHelpers(t *testing.T) {
	f := FromFunc(2, func(x []bool) bool { return x[0] != x[1] })
	hex := f.Hex()
	back, err := ParseTableHex(hex)
	if err != nil || !back.Equal(f) {
		t.Errorf("hex round trip failed: %v", err)
	}
	if NewTable(3).CountOnes() != 0 {
		t.Errorf("NewTable not empty")
	}
	mgr := NewBDDManager(2, nil)
	if mgr.NumVars() != 2 {
		t.Errorf("manager facade wrong")
	}
}

func TestMeterExposed(t *testing.T) {
	m := &Meter{}
	f := MustParseExpr("x1 ^ x2 ^ x3", 3)
	mustSolve(t, f, WithSolver("fs"), WithMeter(m))
	if m.CellOps == 0 {
		t.Errorf("meter not counting through the facade")
	}
}

func TestFacadeExtendedAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := truthtable.Random(6, rng)
	want := mustSolve(t, f).MinCost
	if got := mustSolve(t, f, WithSolver("bnb")).MinCost; got != want {
		t.Errorf("facade B&B %d != %d", got, want)
	}
	if got := mustSolve(t, f, WithSolver("parallel"), WithWorkers(2)).MinCost; got != want {
		t.Errorf("facade parallel %d != %d", got, want)
	}
	if got := Anneal(f, OBDD, &AnnealOptions{Rng: rng, Steps: 200}).MinCost; got < want {
		t.Errorf("facade anneal beat the optimum")
	}
	gs := GroupSift(f, OBDD)
	if gs.MinCost < want {
		t.Errorf("facade group sift beat the optimum")
	}
	m := NewReorderableManager(6, nil)
	root := m.FromTruthTable(f)
	if _, opt := m.ExactReorder(root); opt.MinCost != want {
		t.Errorf("facade reorderable manager exact reorder wrong")
	}
}
