package funcs

import (
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

func TestAchillesHeelSizes(t *testing.T) {
	for pairs := 1; pairs <= 4; pairs++ {
		f := AchillesHeel(pairs)
		good := core.SizeUnder(f, InterleavedOrdering(pairs), core.OBDD, nil)
		bad := core.SizeUnder(f, BlockedOrdering(pairs), core.OBDD, nil)
		if good != uint64(2*pairs+2) {
			t.Errorf("pairs=%d interleaved size %d, want %d", pairs, good, 2*pairs+2)
		}
		if bad != 1<<uint(pairs+1) {
			t.Errorf("pairs=%d blocked size %d, want %d", pairs, bad, 1<<uint(pairs+1))
		}
	}
}

func TestParitySymmetry(t *testing.T) {
	f := Parity(5)
	if f.CountOnes() != 16 {
		t.Errorf("parity ones = %d, want 16", f.CountOnes())
	}
	// Value flips when any single bit flips.
	for idx := uint64(0); idx < 32; idx++ {
		if f.Bit(idx) == f.Bit(idx^1) {
			t.Fatalf("parity does not flip at %d", idx)
		}
	}
}

func TestThresholdAndMajority(t *testing.T) {
	f := Threshold(4, 2)
	if !f.Eval([]bool{true, true, false, false}) || f.Eval([]bool{true, false, false, false}) {
		t.Errorf("threshold wrong")
	}
	if Threshold(3, 0).CountOnes() != 8 {
		t.Errorf("threshold k=0 should be constant true")
	}
	m := Majority(5)
	if !m.Eval([]bool{true, true, true, false, false}) || m.Eval([]bool{true, true, false, false, false}) {
		t.Errorf("majority wrong")
	}
}

func TestSymmetricSpectrum(t *testing.T) {
	// Spectrum picking exactly weight 2 of 4.
	f := Symmetric(4, []bool{false, false, true, false, false})
	if f.CountOnes() != 6 {
		t.Errorf("exactly-2 ones = %d, want C(4,2)=6", f.CountOnes())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("bad spectrum length did not panic")
		}
	}()
	Symmetric(3, []bool{true})
}

func TestHiddenWeightedBit(t *testing.T) {
	f := HiddenWeightedBit(4)
	// wt(0110) = 2 → selects x2 (1-based) = bit index 1 = true.
	if !f.Eval([]bool{false, true, true, false}) {
		t.Errorf("HWB(0110) should be 1")
	}
	// wt(1000) = 1 → selects x1 = true.
	if !f.Eval([]bool{true, false, false, false}) {
		t.Errorf("HWB(1000) should be 1")
	}
	// wt(0100) = 1 → selects x1 = false.
	if f.Eval([]bool{false, true, false, false}) {
		t.Errorf("HWB(0100) should be 0")
	}
	if f.Eval([]bool{false, false, false, false}) {
		t.Errorf("HWB(0) should be 0")
	}
}

func TestAdderBits(t *testing.T) {
	bits := 3
	for i := 0; i <= bits; i++ {
		var f *truthtable.Table
		if i < bits {
			f = AdderSumBit(bits, i)
		} else {
			f = AdderCarry(bits)
		}
		for a := uint64(0); a < 8; a++ {
			for b := uint64(0); b < 8; b++ {
				x := make([]bool, 2*bits)
				for j := 0; j < bits; j++ {
					x[j] = a>>uint(j)&1 == 1
					x[bits+j] = b>>uint(j)&1 == 1
				}
				want := (a+b)>>uint(i)&1 == 1
				if f.Eval(x) != want {
					t.Fatalf("adder bit %d wrong at a=%d b=%d", i, a, b)
				}
			}
		}
	}
}

func TestComparatorAndEquality(t *testing.T) {
	gt, eq := Comparator(2), Equality(2)
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			x := []bool{a&1 == 1, a&2 == 2, b&1 == 1, b&2 == 2}
			if gt.Eval(x) != (a > b) {
				t.Fatalf("comparator wrong at %d,%d", a, b)
			}
			if eq.Eval(x) != (a == b) {
				t.Fatalf("equality wrong at %d,%d", a, b)
			}
		}
	}
}

func TestMultiplexerOrderingSensitivity(t *testing.T) {
	f := Multiplexer(2) // 2 select + 4 data = 6 vars
	// Select-first (root-first: selects then data) is small.
	selFirst := truthtable.FromRootFirst([]int{0, 1, 2, 3, 4, 5})
	dataFirst := truthtable.FromRootFirst([]int{2, 3, 4, 5, 0, 1})
	small := core.SizeUnder(f, selFirst, core.OBDD, nil)
	big := core.SizeUnder(f, dataFirst, core.OBDD, nil)
	if small >= big {
		t.Errorf("multiplexer not ordering sensitive: sel-first %d vs data-first %d", small, big)
	}
	opt := core.OptimalOrdering(f, nil)
	if opt.Size > small {
		t.Errorf("optimal %d worse than select-first %d", opt.Size, small)
	}
}

func TestRandomDNFEvaluates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := RandomDNF(6, 4, 3, rng)
	if c, _ := f.IsConst(); c {
		t.Logf("random DNF happened to be constant; acceptable but unusual")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("width > n did not panic")
		}
	}()
	RandomDNF(3, 1, 4, rng)
}

func TestReadOnceChainLinear(t *testing.T) {
	f := ReadOnceChain(6)
	res := core.OptimalOrdering(f, nil)
	// A read-once function has an OBDD linear in n under some ordering.
	if res.MinCost > uint64(2*6) {
		t.Errorf("read-once chain optimal cost %d too large", res.MinCost)
	}
}

func TestSumWordAndWeight(t *testing.T) {
	s := SumWord(2)
	// a=3,b=2 → 5. Variables: a bits 0,1; b bits 2,3 → idx = 3 | 2<<2 = 11.
	if s.At(11) != 5 {
		t.Errorf("SumWord(3,2) = %d, want 5", s.At(11))
	}
	if got := len(s.Values()); got != 7 { // sums 0..6
		t.Errorf("SumWord values = %d, want 7", got)
	}
	w := Weight(3)
	if w.At(7) != 3 || w.At(0) != 0 {
		t.Errorf("Weight wrong")
	}
}

func TestSparseFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := SparseFamily(8, 10, 3, rng)
	if f.CountOnes() != 10 {
		t.Errorf("SparseFamily ones = %d, want 10", f.CountOnes())
	}
	// Every member must have cardinality ≤ 3.
	for idx := uint64(0); idx < f.Size(); idx++ {
		if f.Bit(idx) {
			c := 0
			for b := idx; b != 0; b &= b - 1 {
				c++
			}
			if c > 3 {
				t.Errorf("member %b has cardinality %d", idx, c)
			}
		}
	}
	// ZDDs of sparse families are much smaller than their OBDDs on
	// average; at minimum the minimized ZDD must not exceed the OBDD by
	// more than the structural bound here — we just check both run.
	z := core.OptimalOrdering(f, &core.SolveOptions{Rule: core.ZDD})
	b := core.OptimalOrdering(f, nil)
	if z.MinCost == 0 && b.MinCost == 0 {
		t.Errorf("degenerate family")
	}
}
