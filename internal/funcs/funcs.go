// Package funcs generates the benchmark Boolean functions used by the
// experiments: the ordering-sensitivity family of Fig. 1, arithmetic
// circuits (adders, comparators, multiplier slices), symmetric and
// threshold functions, the hidden-weighted-bit function (exponential under
// every ordering), multiplexers, and random DNFs. Each generator documents
// the known OBDD-size behavior that the experiments rely on.
package funcs

import (
	"math/rand"

	"obddopt/internal/truthtable"
)

// AchillesHeel returns f = x₀·x₁ + x₂·x₃ + … + x_{2k−2}·x_{2k−1} over
// n = 2k variables, the running example of both papers (Fig. 1): its OBDD
// has size 2k+2 under the interleaved ordering (pairs adjacent) and
// 2^{k+1} under the blocked ordering (all left factors above all right
// factors).
func AchillesHeel(pairs int) *truthtable.Table {
	n := 2 * pairs
	return truthtable.FromFunc(n, func(x []bool) bool {
		for i := 0; i < n; i += 2 {
			if x[i] && x[i+1] {
				return true
			}
		}
		return false
	})
}

// BlockedOrdering returns the pessimal root-first ordering for
// AchillesHeel — x₀, x₂, …, x₁, x₃, … — converted to the bottom-up
// convention. Under it the OBDD has 2^{pairs+1} nodes.
func BlockedOrdering(pairs int) truthtable.Ordering {
	rootFirst := make([]int, 0, 2*pairs)
	for i := 0; i < 2*pairs; i += 2 {
		rootFirst = append(rootFirst, i)
	}
	for i := 1; i < 2*pairs; i += 2 {
		rootFirst = append(rootFirst, i)
	}
	return truthtable.FromRootFirst(rootFirst)
}

// InterleavedOrdering returns the optimal root-first ordering
// x₀, x₁, x₂, x₃, … for AchillesHeel, bottom-up.
func InterleavedOrdering(pairs int) truthtable.Ordering {
	rootFirst := make([]int, 2*pairs)
	for i := range rootFirst {
		rootFirst[i] = i
	}
	return truthtable.FromRootFirst(rootFirst)
}

// Parity returns x₀ ⊕ x₁ ⊕ … ⊕ x_{n−1}. Parity is totally symmetric: the
// OBDD has exactly 2n−1 nonterminal nodes under every ordering, making it
// the control workload for which reordering cannot help.
func Parity(n int) *truthtable.Table {
	return truthtable.FromFunc(n, func(x []bool) bool {
		p := false
		for _, v := range x {
			p = p != v
		}
		return p
	})
}

// Threshold returns the function [Σ x_i ≥ k]. Threshold functions are
// totally symmetric; their OBDD width is O(n) per level.
func Threshold(n, k int) *truthtable.Table {
	return truthtable.FromFunc(n, func(x []bool) bool {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return c >= k
	})
}

// Majority returns Threshold(n, ⌈(n+1)/2⌉), the majority function.
func Majority(n int) *truthtable.Table { return Threshold(n, (n+1)/2) }

// Symmetric returns the symmetric function whose value on an assignment of
// weight w is spectrum[w]. len(spectrum) must be n+1.
func Symmetric(n int, spectrum []bool) *truthtable.Table {
	if len(spectrum) != n+1 {
		panic("funcs: Symmetric spectrum must have n+1 entries")
	}
	return truthtable.FromFunc(n, func(x []bool) bool {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return spectrum[c]
	})
}

// HiddenWeightedBit returns HWB(x) = x_{wt(x)} (1-based bit selection;
// HWB(0…0) = 0), Bryant's function whose OBDD is exponential under every
// variable ordering — the stress workload where even the optimal ordering
// cannot avoid exponential size.
func HiddenWeightedBit(n int) *truthtable.Table {
	return truthtable.FromFunc(n, func(x []bool) bool {
		w := 0
		for _, v := range x {
			if v {
				w++
			}
		}
		if w == 0 {
			return false
		}
		return x[w-1]
	})
}

// AdderSumBit returns bit i (0 = least significant) of the sum a + b of
// two bits-wide operands. Variables 0..bits−1 are a's bits (LSB first),
// bits..2·bits−1 are b's. Interleaving a and b is the well-known optimal
// ordering; separating them is exponential in i.
func AdderSumBit(bits, i int) *truthtable.Table {
	if i < 0 || i > bits {
		panic("funcs: AdderSumBit index out of range")
	}
	return truthtable.FromFunc(2*bits, func(x []bool) bool {
		a, b := operands(x, bits)
		return (a+b)>>uint(i)&1 == 1
	})
}

// AdderCarry returns the carry-out of the bits-wide addition a + b.
func AdderCarry(bits int) *truthtable.Table {
	return truthtable.FromFunc(2*bits, func(x []bool) bool {
		a, b := operands(x, bits)
		return (a+b)>>uint(bits)&1 == 1
	})
}

// Comparator returns [a > b] over two bits-wide operands, variable layout
// as in AdderSumBit.
func Comparator(bits int) *truthtable.Table {
	return truthtable.FromFunc(2*bits, func(x []bool) bool {
		a, b := operands(x, bits)
		return a > b
	})
}

// Equality returns [a == b] over two bits-wide operands.
func Equality(bits int) *truthtable.Table {
	return truthtable.FromFunc(2*bits, func(x []bool) bool {
		a, b := operands(x, bits)
		return a == b
	})
}

// MultiplierMiddleBit returns bit bits−1 of the product a·b of two
// bits-wide operands — the classic function whose OBDD is exponential
// under every ordering (Bryant 1991).
func MultiplierMiddleBit(bits int) *truthtable.Table {
	return truthtable.FromFunc(2*bits, func(x []bool) bool {
		a, b := operands(x, bits)
		return (a*b)>>uint(bits-1)&1 == 1
	})
}

func operands(x []bool, bits int) (a, b uint64) {
	for i := 0; i < bits; i++ {
		if x[i] {
			a |= 1 << uint(i)
		}
		if x[bits+i] {
			b |= 1 << uint(i)
		}
	}
	return a, b
}

// Multiplexer returns the 2^sel-way multiplexer over sel select variables
// (variables 0..sel−1) and 2^sel data variables: f = data[select value].
// Reading the select variables first gives a linear-size OBDD; reading the
// data variables first is exponential — a strongly ordering-sensitive
// workload.
func Multiplexer(sel int) *truthtable.Table {
	data := 1 << uint(sel)
	return truthtable.FromFunc(sel+data, func(x []bool) bool {
		idx := 0
		for i := 0; i < sel; i++ {
			if x[i] {
				idx |= 1 << uint(i)
			}
		}
		return x[sel+idx]
	})
}

// RandomDNF returns a random DNF with the given number of terms, each
// containing exactly width distinct literals over n variables, drawn from
// rng. Random DNFs model the "imposing additional constraints" workloads
// of the introduction.
func RandomDNF(n, terms, width int, rng *rand.Rand) *truthtable.Table {
	if width > n {
		panic("funcs: RandomDNF width exceeds variable count")
	}
	type lit struct {
		v   int
		neg bool
	}
	clauses := make([][]lit, terms)
	for t := range clauses {
		perm := rng.Perm(n)[:width]
		cl := make([]lit, width)
		for i, v := range perm {
			cl[i] = lit{v: v, neg: rng.Intn(2) == 1}
		}
		clauses[t] = cl
	}
	return truthtable.FromFunc(n, func(x []bool) bool {
		for _, cl := range clauses {
			sat := true
			for _, l := range cl {
				if x[l.v] == l.neg {
					sat = false
					break
				}
			}
			if sat {
				return true
			}
		}
		return false
	})
}

// ReadOnceChain returns f = (…((x₀ op₁ x₁) op₂ x₂) …) for a fixed pattern
// of alternating AND/OR — a read-once function, whose minimum OBDD is
// linear under a suitable ordering.
func ReadOnceChain(n int) *truthtable.Table {
	return truthtable.FromFunc(n, func(x []bool) bool {
		acc := x[0]
		for i := 1; i < n; i++ {
			if i%2 == 1 {
				acc = acc && x[i]
			} else {
				acc = acc || x[i]
			}
		}
		return acc
	})
}

// SumWord returns the multi-valued function (a + b) over two bits-wide
// operands — the MTBDD workload of experiment E10.
func SumWord(bits int) *truthtable.MultiTable {
	return truthtable.MultiFromFunc(2*bits, func(x []bool) int {
		a, b := operands(x, bits)
		return int(a + b)
	})
}

// Weight returns the multi-valued Hamming-weight function Σ x_i.
func Weight(n int) *truthtable.MultiTable {
	return truthtable.MultiFromFunc(n, func(x []bool) int {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return c
	})
}

// SparseFamily returns the characteristic function of m random subsets of
// {0,…,n−1}, each of cardinality ≤ maxCard — the sparse set families that
// motivate ZDDs (experiment E9).
func SparseFamily(n, m, maxCard int, rng *rand.Rand) *truthtable.Table {
	members := map[uint64]bool{}
	for len(members) < m {
		card := rng.Intn(maxCard + 1)
		var set uint64
		perm := rng.Perm(n)
		for i := 0; i < card; i++ {
			set |= 1 << uint(perm[i])
		}
		members[set] = true
	}
	t := truthtable.New(n)
	for idx := range members {
		t.Set(idx, true)
	}
	return t
}
