// Package mtbdd implements multi-terminal binary decision diagrams
// (MTBDDs/ADDs): decision diagrams whose terminals carry integer values
// instead of Boolean constants. The papers note (Remark 2) that the
// optimal-ordering dynamic program applies to MTBDDs almost unchanged;
// this package provides the independent diagram substrate that experiment
// E10 cross-checks core.OptimalOrderingMulti against, plus arithmetic
// Apply operations for building multi-valued functions structurally.
package mtbdd

import (
	"fmt"

	"obddopt/internal/truthtable"
)

// Node identifies an MTBDD node within its Manager. Terminal and
// nonterminal nodes share one index space.
type Node uint32

type nodeData struct {
	level  uint32 // nvars for terminals
	value  int    // terminal value (terminals only)
	lo, hi Node
}

type mkKey struct {
	level  uint32
	lo, hi Node
}

type applyKey struct {
	op   uint32
	f, g Node
}

// Manager owns a collection of shared MTBDD nodes over a fixed variable
// ordering. Managers are not safe for concurrent use.
type Manager struct {
	nvars      int
	varAtLevel []int
	levelOfVar []int
	nodes      []nodeData
	terminals  map[int]Node
	unique     map[mkKey]Node
	applyCache map[applyKey]Node
	applyOps   []func(a, b int) int
	// Lazily registered handles for the built-in Add and Max operations.
	addOp, maxOp *int
}

// New returns a manager over n variables with the given bottom-up ordering
// (nil selects variable 0 at the root).
func New(n int, order truthtable.Ordering) *Manager {
	if order == nil {
		order = truthtable.ReverseOrdering(n)
	}
	if len(order) != n || !order.Valid() {
		panic("mtbdd: ordering is not a permutation of the variables")
	}
	m := &Manager{
		nvars:      n,
		varAtLevel: order.RootFirst(),
		levelOfVar: make([]int, n),
		terminals:  map[int]Node{},
		unique:     map[mkKey]Node{},
		applyCache: map[applyKey]Node{},
	}
	for lvl, v := range m.varAtLevel {
		m.levelOfVar[v] = lvl
	}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// Ordering returns the manager's ordering, bottom-up.
func (m *Manager) Ordering() truthtable.Ordering {
	return truthtable.FromRootFirst(append([]int{}, m.varAtLevel...))
}

func (m *Manager) level(f Node) uint32 { return m.nodes[f].level }

// IsTerminal reports whether f is a terminal, and its value.
func (m *Manager) IsTerminal(f Node) (value int, ok bool) {
	d := m.nodes[f]
	if d.level == uint32(m.nvars) {
		return d.value, true
	}
	return 0, false
}

// Terminal returns the canonical terminal node for the value.
func (m *Manager) Terminal(v int) Node {
	if n, ok := m.terminals[v]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: uint32(m.nvars), value: v})
	m.terminals[v] = n
	return n
}

func (m *Manager) mk(level uint32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := mkKey{level, lo, hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique[key] = n
	return n
}

// Indicator returns the function that is hi on x_v = 1 and lo otherwise,
// with integer terminal values.
func (m *Manager) Indicator(v, lo, hi int) Node {
	if v < 0 || v >= m.nvars {
		panic("mtbdd: Indicator variable out of range")
	}
	return m.mk(uint32(m.levelOfVar[v]), m.Terminal(lo), m.Terminal(hi))
}

// RegisterOp registers a binary integer operation for Apply and returns
// its handle. Operations must be pure functions.
func (m *Manager) RegisterOp(op func(a, b int) int) int {
	m.applyOps = append(m.applyOps, op)
	return len(m.applyOps) - 1
}

// Apply combines f and g pointwise with the registered operation.
func (m *Manager) Apply(opHandle int, f, g Node) Node {
	if opHandle < 0 || opHandle >= len(m.applyOps) {
		panic("mtbdd: unknown Apply operation handle")
	}
	op := m.applyOps[opHandle]
	var rec func(f, g Node) Node
	rec = func(f, g Node) Node {
		fv, fok := m.IsTerminal(f)
		gv, gok := m.IsTerminal(g)
		if fok && gok {
			return m.Terminal(op(fv, gv))
		}
		key := applyKey{uint32(opHandle), f, g}
		if r, ok := m.applyCache[key]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(g); l < top {
			top = l
		}
		f0, f1 := m.cofactorsAt(f, top)
		g0, g1 := m.cofactorsAt(g, top)
		r := m.mk(top, rec(f0, g0), rec(f1, g1))
		m.applyCache[key] = r
		return r
	}
	return rec(f, g)
}

func (m *Manager) cofactorsAt(f Node, level uint32) (lo, hi Node) {
	if m.level(f) == level {
		d := m.nodes[f]
		return d.lo, d.hi
	}
	return f, f
}

// Add returns f + g pointwise. The operation handle is registered lazily
// and cached on the manager.
func (m *Manager) Add(f, g Node) Node {
	if m.addOp == nil {
		h := m.RegisterOp(func(a, b int) int { return a + b })
		m.addOp = &h
	}
	return m.Apply(*m.addOp, f, g)
}

// Max returns max(f, g) pointwise.
func (m *Manager) Max(f, g Node) Node {
	if m.maxOp == nil {
		h := m.RegisterOp(func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		m.maxOp = &h
	}
	return m.Apply(*m.maxOp, f, g)
}

// Eval evaluates f on an assignment (x[i] = value of variable i).
func (m *Manager) Eval(f Node, x []bool) int {
	if len(x) != m.nvars {
		panic("mtbdd: Eval assignment length mismatch")
	}
	for {
		if v, ok := m.IsTerminal(f); ok {
			return v
		}
		d := m.nodes[f]
		if x[m.varAtLevel[d.level]] {
			f = d.hi
		} else {
			f = d.lo
		}
	}
}

// FromMultiTable builds the reduced MTBDD of mt under the manager's
// ordering by a bottom-up fold (O(2^n) mk calls).
func (m *Manager) FromMultiTable(mt *truthtable.MultiTable) Node {
	if mt.NumVars() != m.nvars {
		panic("mtbdd: table variable count mismatch")
	}
	n := m.nvars
	size := mt.Size()
	cur := make([]Node, size)
	for idx := uint64(0); idx < size; idx++ {
		var tblIdx uint64
		for j := 0; j < n; j++ {
			if idx>>uint(j)&1 == 1 {
				tblIdx |= 1 << uint(m.varAtLevel[n-1-j])
			}
		}
		cur[idx] = m.Terminal(mt.At(tblIdx))
	}
	for level := n - 1; level >= 0; level-- {
		next := make([]Node, len(cur)/2)
		for i := range next {
			next[i] = m.mk(uint32(level), cur[2*i], cur[2*i+1])
		}
		cur = next
	}
	return cur[0]
}

// ToMultiTable materializes the function of f.
func (m *Manager) ToMultiTable(f Node) *truthtable.MultiTable {
	mt := truthtable.NewMulti(m.nvars)
	x := make([]bool, m.nvars)
	for idx := uint64(0); idx < mt.Size(); idx++ {
		for i := 0; i < m.nvars; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		mt.Set(idx, m.Eval(f, x))
	}
	return mt
}

// CountNodes returns the number of reachable nonterminal nodes.
func (m *Manager) CountNodes(f Node) uint64 {
	var count uint64
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		if _, term := m.IsTerminal(g); term {
			return
		}
		count++
		rec(m.nodes[g].lo)
		rec(m.nodes[g].hi)
	}
	rec(f)
	return count
}

// CountTerminals returns the number of distinct reachable terminals.
func (m *Manager) CountTerminals(f Node) int {
	terms := map[Node]bool{}
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		if _, term := m.IsTerminal(g); term {
			terms[g] = true
			return
		}
		rec(m.nodes[g].lo)
		rec(m.nodes[g].hi)
	}
	rec(f)
	return len(terms)
}

// LevelCounts returns reachable node counts per level, bottom-up, matching
// core.OptimalOrderingMulti's profile convention.
func (m *Manager) LevelCounts(f Node) []uint64 {
	counts := make([]uint64, m.nvars)
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		if _, term := m.IsTerminal(g); term {
			return
		}
		d := m.nodes[g]
		counts[uint32(m.nvars)-1-d.level]++
		rec(d.lo)
		rec(d.hi)
	}
	rec(f)
	return counts
}

// NodeString renders a node for diagnostics.
func (m *Manager) NodeString(f Node) string {
	if v, ok := m.IsTerminal(f); ok {
		return fmt.Sprintf("[%d]", v)
	}
	d := m.nodes[f]
	return fmt.Sprintf("n%d(x%d, lo=%d, hi=%d)", f, m.varAtLevel[d.level]+1, d.lo, d.hi)
}
