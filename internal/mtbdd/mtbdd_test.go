package mtbdd

import (
	"math/rand"
	"strings"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func randomMulti(n, values int, rng *rand.Rand) *truthtable.MultiTable {
	mt := truthtable.NewMulti(n)
	for idx := uint64(0); idx < mt.Size(); idx++ {
		mt.Set(idx, rng.Intn(values))
	}
	return mt
}

func TestTerminalsCanonical(t *testing.T) {
	m := New(3, nil)
	if m.Terminal(7) != m.Terminal(7) {
		t.Errorf("terminals not canonical")
	}
	if m.Terminal(7) == m.Terminal(8) {
		t.Errorf("distinct values share a terminal")
	}
	if v, ok := m.IsTerminal(m.Terminal(-3)); !ok || v != -3 {
		t.Errorf("IsTerminal wrong: %d %v", v, ok)
	}
}

func TestIndicatorAndEval(t *testing.T) {
	m := New(2, nil)
	f := m.Indicator(1, 10, 20)
	if m.Eval(f, []bool{false, false}) != 10 || m.Eval(f, []bool{false, true}) != 20 {
		t.Errorf("Indicator evaluates wrong")
	}
}

func TestFromToMultiTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%5
		mt := randomMulti(n, 4, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromMultiTable(mt)
		if !m.ToMultiTable(f).Equal(mt) {
			t.Fatalf("round trip failed n=%d", n)
		}
	}
}

func TestApplyAddMax(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	n := 4
	a, b := randomMulti(n, 5, rng), randomMulti(n, 5, rng)
	m := New(n, nil)
	fa, fb := m.FromMultiTable(a), m.FromMultiTable(b)
	sum := m.Add(fa, fb)
	max := m.Max(fa, fb)
	for idx := uint64(0); idx < a.Size(); idx++ {
		x := make([]bool, n)
		for i := 0; i < n; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		if m.Eval(sum, x) != a.At(idx)+b.At(idx) {
			t.Fatalf("Add wrong at %d", idx)
		}
		wantMax := a.At(idx)
		if b.At(idx) > wantMax {
			wantMax = b.At(idx)
		}
		if m.Eval(max, x) != wantMax {
			t.Fatalf("Max wrong at %d", idx)
		}
	}
}

func TestApplyCustomOp(t *testing.T) {
	m := New(2, nil)
	f := m.Indicator(0, 1, 2)
	g := m.Indicator(1, 3, 4)
	mul := m.RegisterOp(func(a, b int) int { return a * b })
	p := m.Apply(mul, f, g)
	if m.Eval(p, []bool{true, true}) != 8 || m.Eval(p, []bool{false, false}) != 3 {
		t.Errorf("custom op wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("bad op handle did not panic")
		}
	}()
	m.Apply(99, f, g)
}

func TestSumWordStructuralBuild(t *testing.T) {
	// Build a 2-bit adder word as Σ indicator terms and compare against
	// the truth-table build.
	bits := 2
	n := 2 * bits
	m := New(n, nil)
	f := m.Terminal(0)
	for i := 0; i < bits; i++ {
		f = m.Add(f, m.Indicator(i, 0, 1<<uint(i)))
		f = m.Add(f, m.Indicator(bits+i, 0, 1<<uint(i)))
	}
	want := m.FromMultiTable(funcs.SumWord(bits))
	if f != want {
		t.Errorf("structural adder != table adder")
	}
}

func TestLevelCountsMatchDPMultiProfile(t *testing.T) {
	// Cross-check of the MTBDD generalization (experiment E10).
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%4
		mt := randomMulti(n, 3, rng)
		res := core.OptimalOrderingMulti(mt, nil)
		m := New(n, res.Ordering)
		f := m.FromMultiTable(mt)
		if m.CountNodes(f) != res.MinCost {
			t.Fatalf("n=%d: manager nodes %d != DP MinCost %d", n, m.CountNodes(f), res.MinCost)
		}
		got := m.LevelCounts(f)
		for i, w := range res.Profile {
			if got[i] != w {
				t.Fatalf("n=%d level %d: %d != %d", n, i+1, got[i], w)
			}
		}
		if m.CountTerminals(f) > res.Terminals {
			t.Fatalf("reachable terminals %d exceed value count %d", m.CountTerminals(f), res.Terminals)
		}
	}
}

func TestMTBDDOptimalIsMinimalOverSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	mt := randomMulti(5, 3, rng)
	res := core.OptimalOrderingMulti(mt, nil)
	for s := 0; s < 15; s++ {
		ord := truthtable.RandomOrdering(5, rng)
		m := New(5, ord)
		if m.CountNodes(m.FromMultiTable(mt)) < res.MinCost {
			t.Fatalf("sampled ordering beats claimed MTBDD optimum")
		}
	}
}

func TestWeightFunctionDiagram(t *testing.T) {
	n := 4
	m := New(n, nil)
	f := m.FromMultiTable(funcs.Weight(n))
	// Totally symmetric: n(n+1)/2 nonterminals under any ordering.
	if m.CountNodes(f) != uint64(n*(n+1)/2) {
		t.Errorf("weight nodes = %d, want %d", m.CountNodes(f), n*(n+1)/2)
	}
	if m.CountTerminals(f) != n+1 {
		t.Errorf("weight terminals = %d, want %d", m.CountTerminals(f), n+1)
	}
}

func TestPanics(t *testing.T) {
	m := New(2, nil)
	for name, fn := range map[string]func(){
		"bad order":     func() { New(2, truthtable.Ordering{0, 2}) },
		"indicator oob": func() { m.Indicator(5, 0, 1) },
		"eval length":   func() { m.Eval(m.Terminal(0), []bool{true}) },
		"table vars":    func() { m.FromMultiTable(truthtable.NewMulti(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDOTOutput(t *testing.T) {
	m := New(2, nil)
	f := m.Indicator(0, 3, 7)
	dot := m.DOT(f, "ind")
	for _, want := range []string{"digraph", "x1", "\"3\"", "\"7\"", "shape=box", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
