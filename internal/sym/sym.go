// Package sym detects symmetric variables of Boolean functions and
// exploits them for ordering search. Two variables are symmetric when
// exchanging them leaves the function invariant (equivalently
// f|x_i=0,x_j=1 ≡ f|x_i=1,x_j=0); symmetry is an equivalence relation, so
// the variables partition into symmetry groups. Orderings that permute
// variables within a group yield identical diagrams, which
//
//   - shrinks the effective search space of ordering optimization
//     (orderings modulo group-internal permutations), and
//   - motivates group sifting: moving whole groups instead of single
//     variables, the classical symmetric-sifting heuristic.
//
// Detection runs in O(n²·2ⁿ) on the truth table and is exact.
package sym

import (
	"sort"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// SymmetricPair reports whether exchanging variables i and j leaves f
// invariant.
func SymmetricPair(f *truthtable.Table, i, j int) bool {
	n := f.NumVars()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic("sym: variable index out of range")
	}
	if i == j {
		return true
	}
	size := f.Size()
	bi, bj := uint64(1)<<uint(i), uint64(1)<<uint(j)
	for idx := uint64(0); idx < size; idx++ {
		// Only check the (i=0, j=1) half; the swapped index covers the
		// other half, and equal-bit cells are trivially invariant.
		if idx&bi != 0 || idx&bj == 0 {
			continue
		}
		if f.Bit(idx) != f.Bit(idx^bi^bj) {
			return false
		}
	}
	return true
}

// Groups returns the symmetry groups of f as variable masks, sorted by
// their smallest member. Every variable appears in exactly one group;
// variables with no symmetric partner form singleton groups.
func Groups(f *truthtable.Table) []bitops.Mask {
	n := f.NumVars()
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	var groups []bitops.Mask
	for i := 0; i < n; i++ {
		if assigned[i] >= 0 {
			continue
		}
		g := bitops.Mask(0).With(i)
		assigned[i] = len(groups)
		for j := i + 1; j < n; j++ {
			if assigned[j] < 0 && SymmetricPair(f, i, j) {
				g = g.With(j)
				assigned[j] = len(groups)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// TotallySymmetric reports whether all variables form one symmetry group
// (every ordering yields the same diagram).
func TotallySymmetric(f *truthtable.Table) bool {
	g := Groups(f)
	return len(g) == 1
}

// EffectiveOrderings returns the number of distinct orderings modulo
// group-internal permutations: n! / Π |g_i|!. It quantifies the search
// reduction symmetry gives (reported by experiment E18).
func EffectiveOrderings(groups []bitops.Mask) float64 {
	n := 0
	for _, g := range groups {
		n += g.Count()
	}
	r := 1.0
	for i := 2; i <= n; i++ {
		r *= float64(i)
	}
	for _, g := range groups {
		for i := 2; i <= g.Count(); i++ {
			r /= float64(i)
		}
	}
	return r
}

// Result reports a group-sifting outcome.
type Result struct {
	// Ordering is the best ordering found, bottom-up.
	Ordering truthtable.Ordering
	// MinCost is the exact nonterminal count under Ordering.
	MinCost uint64
	// Groups are the detected symmetry groups (sorted by smallest
	// member), in their final bottom-up arrangement order.
	Groups []bitops.Mask
	// Evaluations counts cost-oracle calls.
	Evaluations uint64
}

// GroupSift runs symmetric sifting: the symmetry groups of f are detected
// and then sifted as indivisible blocks — each group is moved through
// every block position (others fixed) and parked where the exact cost is
// smallest, sweeping until convergence. Within a group the member order
// is irrelevant by symmetry; members are kept in index order.
func GroupSift(f *truthtable.Table, rule core.Rule) Result {
	groups := Groups(f)
	// arrangement is the current bottom-up list of group indices.
	arrangement := make([]int, len(groups))
	for i := range arrangement {
		arrangement[i] = i
	}
	var evals uint64
	cost := func(arr []int) uint64 {
		evals++
		ord := flatten(groups, arr)
		widths := core.Profile(f, ord, rule, nil)
		var sum uint64
		for _, w := range widths {
			sum += w
		}
		return sum
	}
	best := cost(arrangement)
	for {
		improved := false
		for gi := range groups {
			pos := indexOf(arrangement, gi)
			bestPos, bestCost := pos, best
			for target := 0; target < len(arrangement); target++ {
				if target == pos {
					continue
				}
				cand := moveTo(arrangement, pos, target)
				if c := cost(cand); c < bestCost {
					bestPos, bestCost = target, c
				}
			}
			if bestPos != pos {
				arrangement = moveTo(arrangement, pos, bestPos)
				best = bestCost
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	finalGroups := make([]bitops.Mask, len(arrangement))
	for i, gi := range arrangement {
		finalGroups[i] = groups[gi]
	}
	return Result{
		Ordering:    flatten(groups, arrangement),
		MinCost:     best,
		Groups:      finalGroups,
		Evaluations: evals,
	}
}

// flatten expands a group arrangement into a bottom-up variable ordering,
// members of each group in ascending index order.
func flatten(groups []bitops.Mask, arr []int) truthtable.Ordering {
	var ord truthtable.Ordering
	for _, gi := range arr {
		members := groups[gi].Members(nil)
		sort.Ints(members)
		ord = append(ord, members...)
	}
	return ord
}

func indexOf(arr []int, v int) int {
	for i, x := range arr {
		if x == v {
			return i
		}
	}
	panic("sym: group vanished from arrangement")
}

// moveTo returns a copy of arr with the element at from moved to to.
func moveTo(arr []int, from, to int) []int {
	out := make([]int, 0, len(arr))
	v := arr[from]
	for i, x := range arr {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out, 0)
	copy(out[to+1:], out[to:])
	out[to] = v
	return out
}
