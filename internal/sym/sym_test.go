package sym

import (
	"math"
	"math/rand"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func TestSymmetricPairBasics(t *testing.T) {
	// x0 ∧ x1 is symmetric in (0,1); x0 ∧ ¬x1 is not.
	and := truthtable.Var(2, 0).And(truthtable.Var(2, 1))
	if !SymmetricPair(and, 0, 1) {
		t.Errorf("AND should be symmetric")
	}
	andn := truthtable.Var(2, 0).And(truthtable.Var(2, 1).Not())
	if SymmetricPair(andn, 0, 1) {
		t.Errorf("x0∧¬x1 should not be symmetric")
	}
	if !SymmetricPair(and, 1, 1) {
		t.Errorf("reflexive symmetry must hold")
	}
}

func TestSymmetricPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on bad index")
		}
	}()
	SymmetricPair(truthtable.New(2), 0, 5)
}

func TestGroupsOfSymmetricFunctions(t *testing.T) {
	for name, f := range map[string]*truthtable.Table{
		"parity6":   funcs.Parity(6),
		"majority5": funcs.Majority(5),
		"threshold": funcs.Threshold(6, 2),
	} {
		if !TotallySymmetric(f) {
			t.Errorf("%s should be totally symmetric: groups %v", name, Groups(f))
		}
	}
}

func TestGroupsOfAchillesHeel(t *testing.T) {
	// The pairs {2i, 2i+1} are the symmetry groups.
	f := funcs.AchillesHeel(3)
	groups := Groups(f)
	if len(groups) != 3 {
		t.Fatalf("achilles groups = %v", groups)
	}
	for i, g := range groups {
		want := bitops.Mask(0b11) << uint(2*i)
		if g != want {
			t.Errorf("group %d = %#b, want %#b", i, g, want)
		}
	}
}

func TestGroupsOfAdder(t *testing.T) {
	// The carry of an adder is symmetric in each (a_i, b_i) pair.
	bits := 3
	f := funcs.AdderCarry(bits)
	groups := Groups(f)
	if len(groups) != bits {
		t.Fatalf("adder carry groups = %v", groups)
	}
	for i, g := range groups {
		want := bitops.Mask(0).With(i).With(bits + i)
		if g != want {
			t.Errorf("group %d = %#b, want %#b", i, g, want)
		}
	}
}

func TestGroupsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%7
		f := truthtable.Random(n, rng)
		groups := Groups(f)
		var union bitops.Mask
		for _, g := range groups {
			if g&union != 0 {
				t.Fatalf("groups overlap: %v", groups)
			}
			union |= g
		}
		if union != bitops.FullMask(n) {
			t.Fatalf("groups do not cover: %v", groups)
		}
	}
}

func TestGroupOrderingsYieldEqualSizes(t *testing.T) {
	// Permuting within a group never changes the diagram size — the
	// defining property the heuristic exploits.
	f := funcs.AdderCarry(3)
	groups := Groups(f)
	rng := rand.New(rand.NewSource(132))
	base := flatten(groups, []int{0, 1, 2})
	baseCost := core.SizeUnder(f, base, core.OBDD, nil)
	for trial := 0; trial < 10; trial++ {
		// Shuffle members within each group, keep group order.
		var ord truthtable.Ordering
		for _, g := range groups {
			members := g.Members(nil)
			rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			ord = append(ord, members...)
		}
		if core.SizeUnder(f, ord, core.OBDD, nil) != baseCost {
			t.Fatalf("within-group permutation changed the size")
		}
	}
}

func TestEffectiveOrderings(t *testing.T) {
	// Parity over 6 vars: one group of 6 → a single effective ordering.
	if got := EffectiveOrderings(Groups(funcs.Parity(6))); got != 1 {
		t.Errorf("parity effective orderings = %v, want 1", got)
	}
	// Achilles 3 pairs: 6!/2!³ = 90.
	if got := EffectiveOrderings(Groups(funcs.AchillesHeel(3))); math.Abs(got-90) > 1e-9 {
		t.Errorf("achilles effective orderings = %v, want 90", got)
	}
	// No symmetry: n! unchanged.
	singles := []bitops.Mask{1, 2, 4}
	if got := EffectiveOrderings(singles); got != 6 {
		t.Errorf("singleton groups = %v, want 6", got)
	}
}

func TestGroupSiftFindsOptimaOnStructured(t *testing.T) {
	for name, f := range map[string]*truthtable.Table{
		"achilles4":  funcs.AchillesHeel(4),
		"adder4":     funcs.AdderCarry(4),
		"comparator": funcs.Comparator(4),
	} {
		res := GroupSift(f, core.OBDD)
		opt := core.OptimalOrdering(f, nil).MinCost
		if res.MinCost != opt {
			t.Errorf("%s: group sift %d, optimal %d", name, res.MinCost, opt)
		}
		if !res.Ordering.Valid() {
			t.Errorf("%s: invalid ordering", name)
		}
	}
}

func TestGroupSiftSoundOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	for trial := 0; trial < 10; trial++ {
		n := 4 + trial%4
		f := truthtable.Random(n, rng)
		res := GroupSift(f, core.OBDD)
		if res.MinCost < core.OptimalOrdering(f, nil).MinCost {
			t.Fatalf("group sift beat the optimum")
		}
		// The reported cost must be realized by the ordering.
		widths := core.Profile(f, res.Ordering, core.OBDD, nil)
		var sum uint64
		for _, w := range widths {
			sum += w
		}
		if sum != res.MinCost {
			t.Fatalf("group sift misreports cost")
		}
	}
}

func TestGroupSiftCheaperThanPlainSiftOnSymmetric(t *testing.T) {
	// On the Achilles-heel function group sifting needs far fewer oracle
	// evaluations than per-variable sifting (4 blocks vs 8 variables).
	f := funcs.AchillesHeel(4)
	res := GroupSift(f, core.OBDD)
	// Plain sifting: n passes over n positions ≥ n·(n−1) evaluations.
	if res.Evaluations >= 8*7 {
		t.Errorf("group sift used %d evaluations, expected fewer than plain sifting's 56", res.Evaluations)
	}
}

func TestTotallySymmetricRandomUnlikely(t *testing.T) {
	// A random 6-variable function is essentially never totally symmetric.
	rng := rand.New(rand.NewSource(134))
	f := truthtable.Random(6, rng)
	if TotallySymmetric(f) {
		t.Errorf("random function reported totally symmetric — suspicious")
	}
}
