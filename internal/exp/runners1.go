package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/params"
	"obddopt/internal/truthtable"
)

// E1 reproduces Fig. 1: the Achilles-heel function f = Σ x_{2i−1}x_{2i}
// under the interleaved ordering (size 2k+2), the blocked ordering (size
// 2^{k+1}), and the exact optimum found by FS (which must equal the
// interleaved size).
func E1(w io.Writer, cfg Config) error {
	maxPairs := 8
	fsPairs := 6
	if cfg.Quick {
		maxPairs, fsPairs = 5, 4
	}
	fmt.Fprintf(w, "%5s %4s %12s %12s %12s %12s\n",
		"pairs", "n", "interleaved", "blocked", "FS-optimal", "paper")
	for pairs := 1; pairs <= maxPairs; pairs++ {
		f := funcs.AchillesHeel(pairs)
		good := core.SizeUnder(f, funcs.InterleavedOrdering(pairs), core.OBDD, nil)
		bad := core.SizeUnder(f, funcs.BlockedOrdering(pairs), core.OBDD, nil)
		opt := "-"
		if pairs <= fsPairs {
			res := core.OptimalOrdering(f, nil)
			opt = fmt.Sprintf("%d", res.Size)
			if res.Size != good {
				return fmt.Errorf("E1: FS optimum %d != interleaved size %d at pairs=%d", res.Size, good, pairs)
			}
		}
		fmt.Fprintf(w, "%5d %4d %12d %12d %12s %12s\n",
			pairs, 2*pairs, good, bad, opt,
			fmt.Sprintf("%d/%d", 2*pairs+2, 1<<uint(pairs+1)))
	}
	return nil
}

// E2 reproduces Table 1 by solving the balance equations for k = 1..6.
func E2(w io.Writer, cfg Config) error {
	maxK := 6
	if cfg.Quick {
		maxK = 3
	}
	rows, err := params.Table1(maxK)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%2s %9s  %s\n", "k", "gamma_k", "alpha_1..alpha_k")
	for _, r := range rows {
		fmt.Fprintf(w, "%2d %9.5f ", r.K, r.Exponent)
		for _, a := range r.Alphas {
			fmt.Fprintf(w, " %8.6f", a)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// E3 reproduces Table 2: the composed exponents from γ = 3 down to the
// Theorem 13 bound 2.77286.
func E3(w io.Writer, cfg Config) error {
	rounds := 10
	if cfg.Quick {
		rounds = 4
	}
	rows, err := params.Table2(rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%5s %10s %10s  %s\n", "round", "gamma_in", "beta_6", "alpha_1..alpha_6")
	for i, r := range rows {
		fmt.Fprintf(w, "%5d %10.5f %10.5f ", i+1, r.Gamma, r.Exponent)
		for _, a := range r.Alphas {
			fmt.Fprintf(w, " %8.6f", a)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// E4 measures the operation count of algorithm FS against the analytic
// Σ_k k·C(n,k)·2^{n−k} bound and fits the empirical exponent, which must
// approach log2 3 (Theorem 5).
func E4(w io.Writer, cfg Config) error {
	minN, maxN := 4, 14
	if cfg.Quick {
		maxN = 10
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	fmt.Fprintf(w, "%3s %14s %14s %8s %10s\n", "n", "cell-ops", "analytic", "ratio", "log2(ops)/n")
	var lastOps uint64
	for n := minN; n <= maxN; n++ {
		f := truthtable.Random(n, rng)
		m := &core.Meter{}
		core.OptimalOrdering(f, core.NewSolveOptions(core.WithMeter(m)))
		var analytic uint64
		for k := 1; k <= n; k++ {
			analytic += bitops.Binomial(n, k) * uint64(k) << uint(n-k)
		}
		growth := "-"
		if lastOps > 0 {
			growth = fmt.Sprintf("%.3f", float64(m.CellOps)/float64(lastOps))
		}
		fmt.Fprintf(w, "%3d %14d %14d %8s %10.4f\n",
			n, m.CellOps, analytic, growth, math.Log2(float64(m.CellOps))/float64(n))
		lastOps = m.CellOps
	}
	fmt.Fprintf(w, "reference: log2(3) = %.4f (the FS exponent); per-n ratio → 3\n", math.Log2(3))
	return nil
}

// E5 compares brute force against FS on identical inputs: both optima must
// agree; operation counts realize the n!·2^n vs 3^n separation.
func E5(w io.Writer, cfg Config) error {
	minN, maxN := 2, 8
	if cfg.Quick {
		maxN = 6
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	fmt.Fprintf(w, "%3s %12s %12s %9s %10s %10s %7s\n",
		"n", "BF-ops", "FS-ops", "ops-ratio", "BF-time", "FS-time", "agree")
	for n := minN; n <= maxN; n++ {
		f := truthtable.Random(n, rng)
		bm, fm := &core.Meter{}, &core.Meter{}
		t0 := time.Now()
		bf := core.BruteForce(f, &core.BruteForceOptions{Meter: bm})
		bfTime := time.Since(t0)
		t0 = time.Now()
		fs := core.OptimalOrdering(f, core.NewSolveOptions(core.WithMeter(fm)))
		fsTime := time.Since(t0)
		fmt.Fprintf(w, "%3d %12d %12d %9.2f %10s %10s %7v\n",
			n, bm.CellOps, fm.CellOps,
			float64(bm.CellOps)/float64(fm.CellOps),
			bfTime.Round(time.Microsecond), fsTime.Round(time.Microsecond),
			bf.MinCost == fs.MinCost)
		if bf.MinCost != fs.MinCost {
			return fmt.Errorf("E5: disagreement at n=%d", n)
		}
	}
	return nil
}
