package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"obddopt/internal/bitops"
	"obddopt/internal/circuit"
	"obddopt/internal/core"
	"obddopt/internal/expr"
	"obddopt/internal/funcs"
	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
)

// E11 demonstrates Corollary 2: the same function supplied as a raw truth
// table, a parsed expression, a DNF, and a gate-level circuit yields
// identical optima, with the only extra cost being the O*(2^n) table
// preparation.
func E11(w io.Writer, cfg Config) error {
	bits := 3
	if cfg.Quick {
		bits = 2
	}
	n := 2 * bits

	// The comparator [a > b] in four representations.
	direct := funcs.Comparator(bits)

	src := comparatorExpr(bits)
	parsed, err := expr.Parse(src)
	if err != nil {
		return fmt.Errorf("E11: parse: %w", err)
	}
	fromExpr, err := expr.ToTruthTable(parsed, n)
	if err != nil {
		return err
	}

	circ := circuit.ComparatorGT(bits)
	fromCirc := circ.OutputTable(0)

	reps := []struct {
		name string
		tt   *truthtable.Table
	}{
		{"truth-table", direct},
		{"expression", fromExpr},
		{"circuit", fromCirc},
	}
	fmt.Fprintf(w, "function: %d-bit comparator [a > b], n = %d\n", bits, n)
	fmt.Fprintf(w, "%-12s %10s %10s %12s\n", "source", "optimal", "size", "prep-cells")
	var first uint64
	for i, rep := range reps {
		if !rep.tt.Equal(direct) {
			return fmt.Errorf("E11: representation %s compiled to a different function", rep.name)
		}
		res := core.OptimalOrdering(rep.tt, nil)
		if i == 0 {
			first = res.MinCost
		} else if res.MinCost != first {
			return fmt.Errorf("E11: optimum differs for %s", rep.name)
		}
		fmt.Fprintf(w, "%-12s %10d %10d %12d\n", rep.name, res.MinCost, res.Size, rep.tt.Size())
	}
	fmt.Fprintf(w, "all representations agree on the optimum (%d nonterminals)\n", first)
	return nil
}

// comparatorExpr builds the [a > b] formula text for two bits-wide
// operands with the funcs variable layout (x1..xbits = a, rest = b).
func comparatorExpr(bits int) string {
	var terms []string
	for i := bits - 1; i >= 0; i-- {
		// a_i > b_i while all higher bits equal.
		var conj []string
		for j := bits - 1; j > i; j-- {
			conj = append(conj, fmt.Sprintf("(x%d <-> x%d)", j+1, bits+j+1))
		}
		conj = append(conj, fmt.Sprintf("(x%d & !x%d)", i+1, bits+i+1))
		terms = append(terms, "("+strings.Join(conj, " & ")+")")
	}
	return strings.Join(terms, " | ")
}

// E12 sweeps the composable FS* over prefix sizes: for a fixed bottom
// block I the extension over J = [n]∖I costs Θ(2^{n−|I|−|J|}·3^{|J|})
// cell operations, and the block-constrained optimum is sandwiched between
// the global optimum and every sampled compatible ordering.
func E12(w io.Writer, cfg Config) error {
	n := 10
	if cfg.Quick {
		n = 8
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	f := truthtable.Random(n, rng)
	global := core.OptimalOrdering(f, nil)
	fmt.Fprintf(w, "n=%d random function, global optimum %d nonterminals\n", n, global.MinCost)
	fmt.Fprintf(w, "%4s %12s %12s %14s %14s\n", "|I|", "constrained", "vs-global", "cell-ops", "analytic")
	for k := 1; k < n; k++ {
		var I bitops.Mask
		perm := rng.Perm(n)
		for i := 0; i < k; i++ {
			I = I.With(perm[i])
		}
		J := bitops.FullMask(n) &^ I
		m := &core.Meter{}
		res := core.OptimalOrderingBlocks(f, []bitops.Mask{I, J}, core.NewSolveOptions(core.WithMeter(m)))
		if res.MinCost < global.MinCost {
			return fmt.Errorf("E12: constrained optimum beat global at |I|=%d", k)
		}
		// Analytic cell count for the two-block DP:
		// Σ_{j≤k} j·C(k,j)·2^{n−j} scaled + second block.
		var analytic uint64
		for j := 1; j <= k; j++ {
			analytic += bitops.Binomial(k, j) * uint64(j) << uint(n-j)
		}
		for j := 1; j <= n-k; j++ {
			analytic += bitops.Binomial(n-k, j) * uint64(j) << uint(n-k-j)
		}
		fmt.Fprintf(w, "%4d %12d %+12d %14d %14d\n",
			k, res.MinCost, int64(res.MinCost)-int64(global.MinCost), m.CellOps, analytic)
	}
	return nil
}

// E13 measures the error-injection degradation: with failure probability ε
// per minimum-finding call, the returned ordering is always valid, and the
// end-to-end non-optimality rate tracks (is bounded by a small multiple
// of) ε — Theorem 1's "valid OBDD, non-minimum with small probability".
func E13(w io.Writer, cfg Config) error {
	trials := 300
	if cfg.Quick {
		trials = 60
	}
	n := 6
	rng := rand.New(rand.NewSource(cfg.seed()))
	f := truthtable.Random(n, rng)
	opt := core.OptimalOrdering(f, nil).MinCost
	fmt.Fprintf(w, "n=%d fixed random function, optimum %d, %d trials per ε\n", n, opt, trials)
	fmt.Fprintf(w, "%8s %12s %12s %10s\n", "eps", "subopt-rate", "valid-rate", "mean-size")
	for _, eps := range []float64{0, 0.05, 0.25, 1} {
		subopt, valid := 0, 0
		var sizeSum uint64
		for trial := 0; trial < trials; trial++ {
			res := core.DivideAndConquer(f, &core.DnCOptions{
				Minimizer: &quantum.Noisy{Eps: eps, Rng: rng},
			})
			if res.Ordering.Valid() && core.SizeUnder(f, res.Ordering, core.OBDD, nil) == res.Size {
				valid++
			}
			if res.MinCost > opt {
				subopt++
			}
			if res.MinCost < opt {
				return fmt.Errorf("E13: beat the optimum — impossible")
			}
			sizeSum += res.MinCost
		}
		fmt.Fprintf(w, "%8.2f %12.3f %12.3f %10.2f\n",
			eps, float64(subopt)/float64(trials), float64(valid)/float64(trials),
			float64(sizeSum)/float64(trials))
		if valid != trials {
			return fmt.Errorf("E13: invalid ordering produced at eps=%v", eps)
		}
	}
	fmt.Fprintln(w, "validity holds at every ε; only minimality degrades (Theorem 1)")
	return nil
}

// E14 verifies the space accounting of Remark 1: the DP's peak live table
// cells match the analytic two-layer bound max_k [C(n,k)·2^{n−k} +
// C(n,k−1)·2^{n−k+1}] up to the base table.
func E14(w io.Writer, cfg Config) error {
	minN, maxN := 6, 13
	if cfg.Quick {
		maxN = 10
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	fmt.Fprintf(w, "%3s %14s %14s %8s\n", "n", "peak-cells", "2-layer-bound", "peak/bound")
	for n := minN; n <= maxN; n++ {
		f := truthtable.Random(n, rng)
		m := &core.Meter{}
		core.OptimalOrdering(f, core.NewSolveOptions(core.WithMeter(m)))
		var bound uint64
		for k := 1; k <= n; k++ {
			v := bitops.Binomial(n, k)<<uint(n-k) + bitops.Binomial(n, k-1)<<uint(n-k+1)
			if v > bound {
				bound = v
			}
		}
		bound += 1 << uint(n) // the base truth-table context
		fmt.Fprintf(w, "%3d %14d %14d %8.3f\n", n, m.PeakCells, bound, float64(m.PeakCells)/float64(bound))
		if m.PeakCells > 2*bound {
			return fmt.Errorf("E14: peak cells exceed twice the analytic bound at n=%d", n)
		}
	}
	return nil
}
