package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"obddopt/internal/bdd"
	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/heuristics"
	"obddopt/internal/params"
	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
	"obddopt/internal/zdd"
)

// E6 runs OptOBDD with the exact quantum simulator and reports the metered
// quantum query counts alongside classical FS cell operations and the
// analytic predictions of the parameter tables. Absolute constants differ
// from the asymptotic analysis (as expected at laptop n); the reproduced
// shape is that the metered quantum exponent stays below the classical
// log2 3 slope.
func E6(w io.Writer, cfg Config) error {
	minN, maxN := 6, 12
	if cfg.Quick {
		maxN = 9
	}
	sol, err := params.Solve(3, 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "single-split OptOBDD (k=1, α=0.274862) vs classical FS\n")
	fmt.Fprintf(w, "%3s %14s %14s %14s %12s %12s\n",
		"n", "q-queries", "q-cellops", "FS-cellops", "log2(q)/n", "log2(FS)/n")
	rng := rand.New(rand.NewSource(cfg.seed()))
	for n := minN; n <= maxN; n++ {
		f := truthtable.Random(n, rng)
		qm := &quantum.Meter{}
		dm := &core.Meter{}
		dnc := core.DivideAndConquer(f, &core.DnCOptions{
			Meter:     dm,
			Minimizer: &quantum.Exact{Eps: math.Pow(2, -float64(n)), Meter: qm},
			Alphas:    []float64{0.274862},
		})
		fm := &core.Meter{}
		fs := core.OptimalOrdering(f, core.NewSolveOptions(core.WithMeter(fm)))
		if dnc.MinCost != fs.MinCost {
			return fmt.Errorf("E6: DnC %d != FS %d at n=%d", dnc.MinCost, fs.MinCost, n)
		}
		// The quantum cost model charges the metered queries times the
		// per-query subroutine work; we report the raw query count and
		// the compaction work the simulation actually performed.
		fmt.Fprintf(w, "%3d %14.1f %14d %14d %12.4f %12.4f\n",
			n, qm.Queries, dm.CellOps, fm.CellOps,
			math.Log2(qm.Queries)/float64(n),
			math.Log2(float64(fm.CellOps))/float64(n))
	}
	fmt.Fprintf(w, "analytic exponents: classical log2(3)=%.4f; quantum k=2 bound log2(%.5f)=%.4f; Theorem 13 log2(2.77286)=%.4f\n",
		math.Log2(3), sol.Exponent, math.Log2(sol.Exponent), math.Log2(2.77286))
	return nil
}

// E7 is the agreement experiment: FS = brute force = divide-and-conquer on
// random functions, exhaustively for every 3-variable function, and the FS
// profile equals the BDD manager's per-level node counts.
func E7(w io.Writer, cfg Config) error {
	trials := 60
	if cfg.Quick {
		trials = 15
	}
	rng := rand.New(rand.NewSource(cfg.seed()))

	// Exhaustive sweep over all 256 three-variable functions.
	for bits := 0; bits < 256; bits++ {
		f := truthtable.New(3)
		for idx := uint64(0); idx < 8; idx++ {
			f.Set(idx, bits>>idx&1 == 1)
		}
		if core.OptimalOrdering(f, nil).MinCost != core.BruteForce(f, nil).MinCost {
			return fmt.Errorf("E7: exhaustive disagreement at function %02x", bits)
		}
	}
	fmt.Fprintf(w, "exhaustive n=3 sweep: 256/256 functions FS == brute force\n")

	agree := 0
	for trial := 0; trial < trials; trial++ {
		n := 4 + trial%4
		f := truthtable.Random(n, rng)
		fs := core.OptimalOrdering(f, nil)
		bf := core.BruteForce(f, nil)
		dnc := core.DivideAndConquer(f, nil)
		if fs.MinCost != bf.MinCost || fs.MinCost != dnc.MinCost {
			return fmt.Errorf("E7: disagreement at trial %d (n=%d)", trial, n)
		}
		m := bdd.New(n, fs.Ordering)
		node := m.FromTruthTable(f)
		counts := m.LevelCounts(node)
		for i, want := range fs.Profile {
			if counts[i] != want {
				return fmt.Errorf("E7: profile mismatch at trial %d level %d", trial, i+1)
			}
		}
		agree++
	}
	fmt.Fprintf(w, "random sweep (n=4..7): %d/%d trials FS == BF == DnC, profile == BDD structure\n", agree, trials)
	return nil
}

// E8 measures heuristic quality against the exact optimum on structured
// and random workloads: the use-case the papers motivate exact methods
// for. Reported is size ratio heuristic/optimal (1.000 = exact).
func E8(w io.Writer, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	type workload struct {
		name string
		tt   *truthtable.Table
	}
	n := 10
	if cfg.Quick {
		n = 8
	}
	workloads := []workload{
		{"achilles", funcs.AchillesHeel(n / 2)},
		{"adder-sum", funcs.AdderSumBit(n/2, n/2-1)},
		{"comparator", funcs.Comparator(n / 2)},
		{"multiplexer", funcs.Multiplexer(wMuxSel(n))},
		{"hidden-wtd-bit", funcs.HiddenWeightedBit(n)},
		{"random-dnf", funcs.RandomDNF(n, n, 3, rng)},
		{"random", truthtable.Random(n, rng)},
	}
	fmt.Fprintf(w, "%-15s %3s %9s %9s %9s %9s %9s %9s %9s\n",
		"workload", "n", "optimal", "sift", "window3", "greedy", "anneal", "random32", "worst≈id")
	for _, wl := range workloads {
		nn := wl.tt.NumVars()
		opt := core.OptimalOrdering(wl.tt, nil).MinCost
		sift := heuristics.Sift(wl.tt, core.OBDD, 0).MinCost
		win := heuristics.Window(wl.tt, core.OBDD, 3).MinCost
		greedy := heuristics.GreedyAppend(wl.tt, core.OBDD).MinCost
		ann := heuristics.Anneal(wl.tt, core.OBDD, &heuristics.AnnealOptions{Rng: rng}).MinCost
		rb := heuristics.RandomBest(wl.tt, core.OBDD, 32, rng).MinCost
		id := heuristics.NewOracle(wl.tt, core.OBDD).Cost(truthtable.IdentityOrdering(nn))
		fmt.Fprintf(w, "%-15s %3d %9d %9s %9s %9s %9s %9s %9d\n",
			wl.name, nn, opt, ratio(sift, opt), ratio(win, opt), ratio(greedy, opt), ratio(ann, opt), ratio(rb, opt), id)
	}
	return nil
}

func wMuxSel(n int) int {
	// Largest sel with sel + 2^sel ≤ n.
	sel := 1
	for sel+1+(1<<uint(sel+1)) <= n {
		sel++
	}
	return sel
}

func ratio(h, opt uint64) string {
	if opt == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(h)/float64(opt))
}

// E9 exercises the ZDD adaptation: on sparse set families the minimized
// ZDD is (much) smaller than the minimized OBDD, and the DP's ZDD count
// matches the independent ZDD manager.
func E9(w io.Writer, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	sizes := []int{8, 10, 12}
	if cfg.Quick {
		sizes = []int{6, 8}
	}
	fmt.Fprintf(w, "%3s %6s %9s %9s %9s %10s\n", "n", "|F|", "OBDD*", "ZDD*", "ratio", "mgr-agree")
	for _, n := range sizes {
		fam := funcs.SparseFamily(n, n+2, 3, rng)
		ob := core.OptimalOrdering(fam, nil)
		zd := core.OptimalOrdering(fam, core.NewSolveOptions(core.WithRule(core.ZDD)))
		zm := zdd.New(n, zd.Ordering)
		agree := zm.CountNodes(zm.FromTruthTable(fam)) == zd.MinCost
		if !agree {
			return fmt.Errorf("E9: manager disagreement at n=%d", n)
		}
		fmt.Fprintf(w, "%3d %6d %9d %9d %9.3f %10v\n",
			n, fam.CountOnes(), ob.MinCost, zd.MinCost,
			float64(zd.MinCost)/float64(ob.MinCost), agree)
	}
	fmt.Fprintln(w, "(ratio < 1: zero-suppression wins on sparse families, Minato's motivation)")
	return nil
}

// E10 exercises the MTBDD generalization on multi-valued workloads.
func E10(w io.Writer, cfg Config) error {
	maxBits := 5
	if cfg.Quick {
		maxBits = 3
	}
	fmt.Fprintf(w, "%-10s %3s %6s %9s %10s\n", "workload", "n", "terms", "MTBDD*", "ordering")
	for bits := 2; bits <= maxBits; bits++ {
		s := funcs.SumWord(bits)
		res := core.OptimalOrderingMulti(s, nil)
		fmt.Fprintf(w, "%-10s %3d %6d %9d %10s\n",
			fmt.Sprintf("sum%d", bits), 2*bits, res.Terminals, res.MinCost, res.Ordering)
	}
	for _, n := range []int{4, 6, 8} {
		if cfg.Quick && n > 6 {
			break
		}
		res := core.OptimalOrderingMulti(funcs.Weight(n), nil)
		want := uint64(n * (n + 1) / 2)
		if res.MinCost != want {
			return fmt.Errorf("E10: weight function minimum %d != %d", res.MinCost, want)
		}
		fmt.Fprintf(w, "%-10s %3d %6d %9d %10s\n",
			fmt.Sprintf("weight%d", n), n, res.Terminals, res.MinCost, "(any)")
	}
	return nil
}
