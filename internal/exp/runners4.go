package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"obddopt/internal/core"
	"obddopt/internal/dynbdd"
	"obddopt/internal/funcs"
	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
)

// E15 is the branch-and-bound ablation: the same exact optima as the
// dynamic program, with DFS-path space (Θ(2ⁿ)) instead of layer space
// (Θ(3ⁿ/√n)), at the price of more cell operations. The lower bound's
// contribution is measured by disabling it.
func E15(w io.Writer, cfg Config) error {
	minN, maxN := 4, 10
	if cfg.Quick {
		maxN = 8
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	fmt.Fprintf(w, "%3s %12s %12s %12s %10s %10s %7s\n",
		"n", "FS-ops", "BnB-ops", "BnB-noLB", "FS-peak", "BnB-peak", "agree")
	for n := minN; n <= maxN; n++ {
		f := truthtable.Random(n, rng)
		fsM, bbM, nlM := &core.Meter{}, &core.Meter{}, &core.Meter{}
		fs := core.OptimalOrdering(f, core.NewSolveOptions(core.WithMeter(fsM)))
		bb := core.BranchAndBound(f, &core.BnBOptions{Meter: bbM})
		core.BranchAndBound(f, &core.BnBOptions{Meter: nlM, DisableLowerBound: true})
		if fs.MinCost != bb.MinCost {
			return fmt.Errorf("E15: disagreement at n=%d", n)
		}
		fmt.Fprintf(w, "%3d %12d %12d %12d %10d %10d %7v\n",
			n, fsM.CellOps, bbM.CellOps, nlM.CellOps, fsM.PeakCells, bbM.PeakCells,
			fs.MinCost == bb.MinCost)
	}
	fmt.Fprintln(w, "(BnB-peak stays Θ(2^n): one DFS path of tables; FS-peak grows with the widest layer)")
	return nil
}

// E16 validates the quantum cost model against real amplitudes and
// exercises the in-place dynamic-reordering engine:
//
//   - statevector Grover minimum finding (exponential-cost simulation of
//     the actual algorithm) vs the fast Dürr–Høyer query model used by
//     OptOBDD — measured queries must track the metered model;
//   - dynbdd's swap-based sifting from a pessimal ordering vs the exact
//     optimum, with swap counts.
func E16(w io.Writer, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.seed()))

	// Part 1: statevector vs model.
	qubits := []int{4, 6, 8}
	if cfg.Quick {
		qubits = []int{4, 6}
	}
	fmt.Fprintf(w, "Grover statevector vs Dürr–Høyer query model (mean over 15 instances)\n")
	fmt.Fprintf(w, "%3s %8s %14s %12s %8s\n", "q", "N", "statevector-q", "model-q", "ratio")
	for _, q := range qubits {
		n := uint64(1) << uint(q)
		var sv float64
		meter := &quantum.Meter{}
		dh := &quantum.DurrHoyer{Rng: rng, Meter: meter}
		const reps = 15
		costs := make([]uint64, n)
		for r := 0; r < reps; r++ {
			for i := range costs {
				costs[i] = uint64(rng.Intn(1 << 16))
			}
			cost := func(x uint64) uint64 { return costs[x] }
			_, qs := quantum.GroverMinimum(q, cost, rng)
			sv += float64(qs)
			dh.MinIndex(n, cost)
		}
		sv /= reps
		model := meter.Queries / reps
		fmt.Fprintf(w, "%3d %8d %14.1f %12.1f %8.2f\n", q, n, sv, model, sv/model)
	}
	fmt.Fprintf(w, "reference √N: %v\n\n", []float64{4, 8, 16})

	// Part 2: in-place dynamic reordering.
	pairs := 6
	if cfg.Quick {
		pairs = 5
	}
	f := funcs.AchillesHeel(pairs)
	m := dynbdd.New(2*pairs, funcs.BlockedOrdering(pairs))
	root := m.FromTruthTable(f)
	sift := m.Sift(0)
	m2 := dynbdd.New(2*pairs, funcs.BlockedOrdering(pairs))
	root2 := m2.FromTruthTable(f)
	exact, opt := m2.ExactReorder(root2)
	fmt.Fprintf(w, "in-place reordering of the %d-pair Achilles-heel from the blocked ordering\n", pairs)
	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "method", "initial", "final", "swaps")
	fmt.Fprintf(w, "%-14s %10d %10d %10d\n", "sifting", sift.Initial, sift.Final, sift.Swaps)
	fmt.Fprintf(w, "%-14s %10d %10d %10d\n", "exact (FS)", exact.Initial, exact.Final, exact.Swaps)
	if exact.Final != opt.MinCost {
		return fmt.Errorf("E16: in-place exact reorder %d != DP optimum %d", exact.Final, opt.MinCost)
	}
	if got := m.ToTruthTable(root); !got.Equal(f) {
		return fmt.Errorf("E16: sifting changed the function")
	}
	expected := uint64(2 * pairs)
	fmt.Fprintf(w, "expected optimum %d nonterminals (2k+2 minus terminals); log2 of blocked start: %.0f\n",
		expected, math.Log2(float64(sift.Initial)))
	return nil
}
