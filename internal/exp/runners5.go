package exp

import (
	"fmt"
	"io"

	"obddopt/internal/circuit"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// E17 measures shared-forest optimization on multi-output circuits: the
// exact optimal ordering for ALL outputs of an adder jointly, compared to
// (a) the sum of per-output optima (a lower-bound fiction: no single
// ordering achieves all of them at once in general), (b) the best
// per-output ordering applied to the forest, and (c) the natural
// ordering. Sharing pays: the forest is far smaller than the sum, and
// only the joint optimization certifies the forest optimum.
func E17(w io.Writer, cfg Config) error {
	maxBits := 4
	if cfg.Quick {
		maxBits = 3
	}
	fmt.Fprintf(w, "%5s %3s %6s %10s %12s %14s %12s\n",
		"adder", "n", "roots", "shared*", "sum-solo*", "best-solo-ord", "natural-ord")
	for bits := 2; bits <= maxBits; bits++ {
		c := circuit.RippleCarryAdder(bits)
		var roots []*truthtable.Table
		for i := range c.Outputs {
			roots = append(roots, c.OutputTable(i))
		}
		shared := core.OptimalOrderingShared(roots, nil)

		var sumSolo uint64
		var bestSoloOrd truthtable.Ordering
		bestSoloForest := ^uint64(0)
		for _, f := range roots {
			solo := core.OptimalOrdering(f, nil)
			sumSolo += solo.MinCost
			if forest := core.SharedSizeUnder(roots, solo.Ordering, core.OBDD); forest < bestSoloForest {
				bestSoloForest = forest
				bestSoloOrd = solo.Ordering
			}
		}
		natural := core.SharedSizeUnder(roots, truthtable.ReverseOrdering(2*bits), core.OBDD)

		if shared.Size > bestSoloForest {
			return fmt.Errorf("E17: joint optimum %d beaten by a per-output ordering %d", shared.Size, bestSoloForest)
		}
		fmt.Fprintf(w, "%5d %3d %6d %10d %12d %14d %12d\n",
			bits, 2*bits, len(roots), shared.Size, sumSolo, bestSoloForest, natural)
		_ = bestSoloOrd
	}
	fmt.Fprintln(w, "(shared* counts each subfunction once across outputs; sum-solo* ignores sharing entirely)")
	return nil
}
