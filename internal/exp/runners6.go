package exp

import (
	"fmt"
	"io"
	"math/rand"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/heuristics"
	"obddopt/internal/sym"
	"obddopt/internal/truthtable"
)

// E18 measures symmetry exploitation: detected symmetry groups on the
// benchmark families, the search-space reduction n!/Π|g|! they induce,
// and group sifting's quality/cost against plain sifting and the exact
// optimum.
func E18(w io.Writer, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	n := 10
	if cfg.Quick {
		n = 8
	}
	type workload struct {
		name string
		tt   *truthtable.Table
	}
	workloads := []workload{
		{"achilles", funcs.AchillesHeel(n / 2)},
		{"adder-carry", funcs.AdderCarry(n / 2)},
		{"majority", funcs.Majority(n)},
		{"comparator", funcs.Comparator(n / 2)},
		{"hidden-wtd-bit", funcs.HiddenWeightedBit(n)},
		{"random", truthtable.Random(n, rng)},
	}
	fmt.Fprintf(w, "%-15s %3s %7s %12s %9s %9s %9s %11s %11s\n",
		"workload", "n", "groups", "eff-orders", "optimal", "gsift", "sift", "gsift-evals", "sift-evals")
	for _, wl := range workloads {
		nn := wl.tt.NumVars()
		groups := sym.Groups(wl.tt)
		eff := sym.EffectiveOrderings(groups)
		total := bitops.Factorial(nn)
		opt := core.OptimalOrdering(wl.tt, nil).MinCost
		gs := sym.GroupSift(wl.tt, core.OBDD)
		ps := heuristics.Sift(wl.tt, core.OBDD, 0)
		fmt.Fprintf(w, "%-15s %3d %7d %12.3g %9d %9d %9d %11d %11d\n",
			wl.name, nn, len(groups), eff, opt, gs.MinCost, ps.MinCost,
			gs.Evaluations, ps.Evaluations)
		if gs.MinCost < opt {
			return fmt.Errorf("E18: group sift beat the optimum")
		}
		_ = total
	}
	fmt.Fprintln(w, "(eff-orders = n!/Π|g|!: orderings that remain distinct after symmetry reduction)")
	return nil
}
