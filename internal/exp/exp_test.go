package exp

import (
	"bytes"
	"strings"
	"testing"
)

var quick = Config{Seed: 1, Quick: true}

func runQuick(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, &buf, quick); err != nil {
		t.Fatalf("%s failed: %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("expected 18 experiments, got %d: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[17] != "E18" {
		t.Errorf("ID ordering wrong: %v", ids)
	}
	for _, id := range ids {
		if d, ok := Describe(id); !ok || d == "" {
			t.Errorf("Describe(%s) missing", id)
		}
	}
	if _, ok := Describe("E99"); ok {
		t.Errorf("Describe should fail for unknown ID")
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, quick); err == nil {
		t.Errorf("unknown experiment should error")
	}
}

func TestE1Output(t *testing.T) {
	out := runQuick(t, "E1")
	// pairs=4 row: interleaved 10, blocked 32.
	if !strings.Contains(out, "10") || !strings.Contains(out, "32") {
		t.Errorf("E1 missing expected sizes:\n%s", out)
	}
	if !strings.Contains(out, "interleaved") {
		t.Errorf("E1 missing header")
	}
}

func TestE2Output(t *testing.T) {
	out := runQuick(t, "E2")
	for _, want := range []string{"2.97625", "2.85689", "0.274863"} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 missing %q:\n%s", want, out)
		}
	}
}

func TestE3Output(t *testing.T) {
	out := runQuick(t, "E3")
	for _, want := range []string{"2.83728", "2.79364"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 missing %q:\n%s", want, out)
		}
	}
}

func TestE4Output(t *testing.T) {
	out := runQuick(t, "E4")
	if !strings.Contains(out, "log2(3) = 1.5850") {
		t.Errorf("E4 missing reference exponent:\n%s", out)
	}
	// Metered ops must equal the analytic count exactly (ratio column
	// grows toward 3); spot check: the analytic column appears.
	if !strings.Contains(out, "analytic") {
		t.Errorf("E4 missing analytic column")
	}
}

func TestE5Output(t *testing.T) {
	out := runQuick(t, "E5")
	if !strings.Contains(out, "true") || strings.Contains(out, "false") {
		t.Errorf("E5 agreement column wrong:\n%s", out)
	}
}

func TestE6Output(t *testing.T) {
	out := runQuick(t, "E6")
	if !strings.Contains(out, "q-queries") || !strings.Contains(out, "2.77286") {
		t.Errorf("E6 output incomplete:\n%s", out)
	}
}

func TestE7Output(t *testing.T) {
	out := runQuick(t, "E7")
	if !strings.Contains(out, "256/256") {
		t.Errorf("E7 exhaustive sweep missing:\n%s", out)
	}
}

func TestE8Output(t *testing.T) {
	out := runQuick(t, "E8")
	for _, wl := range []string{"achilles", "hidden-wtd-bit", "sift"} {
		if !strings.Contains(out, wl) {
			t.Errorf("E8 missing %q:\n%s", wl, out)
		}
	}
}

func TestE9Output(t *testing.T) {
	out := runQuick(t, "E9")
	if !strings.Contains(out, "ZDD*") || !strings.Contains(out, "true") {
		t.Errorf("E9 output incomplete:\n%s", out)
	}
}

func TestE10Output(t *testing.T) {
	out := runQuick(t, "E10")
	if !strings.Contains(out, "sum2") || !strings.Contains(out, "weight4") {
		t.Errorf("E10 output incomplete:\n%s", out)
	}
}

func TestE11Output(t *testing.T) {
	out := runQuick(t, "E11")
	for _, want := range []string{"truth-table", "expression", "circuit", "agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("E11 missing %q:\n%s", want, out)
		}
	}
}

func TestE12Output(t *testing.T) {
	out := runQuick(t, "E12")
	if !strings.Contains(out, "constrained") || !strings.Contains(out, "global optimum") {
		t.Errorf("E12 output incomplete:\n%s", out)
	}
}

func TestE13Output(t *testing.T) {
	out := runQuick(t, "E13")
	if !strings.Contains(out, "validity holds") {
		t.Errorf("E13 output incomplete:\n%s", out)
	}
	// At eps=0 the suboptimality rate must be exactly 0.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "0.00" && fields[1] != "0.000" {
			t.Errorf("E13: nonzero failure rate at eps=0: %s", line)
		}
	}
}

func TestE14Output(t *testing.T) {
	out := runQuick(t, "E14")
	if !strings.Contains(out, "peak-cells") {
		t.Errorf("E14 output incomplete:\n%s", out)
	}
}

func TestE15Output(t *testing.T) {
	out := runQuick(t, "E15")
	if !strings.Contains(out, "BnB-ops") || !strings.Contains(out, "true") {
		t.Errorf("E15 output incomplete:\n%s", out)
	}
}

func TestE16Output(t *testing.T) {
	out := runQuick(t, "E16")
	for _, want := range []string{"statevector", "sifting", "exact (FS)"} {
		if !strings.Contains(out, want) {
			t.Errorf("E16 missing %q:\n%s", want, out)
		}
	}
}

func TestE17Output(t *testing.T) {
	out := runQuick(t, "E17")
	if !strings.Contains(out, "shared*") || !strings.Contains(out, "adder") {
		t.Errorf("E17 output incomplete:\n%s", out)
	}
}

func TestE18Output(t *testing.T) {
	out := runQuick(t, "E18")
	for _, want := range []string{"groups", "eff-orders", "gsift"} {
		if !strings.Contains(out, want) {
			t.Errorf("E18 missing %q:\n%s", want, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered by individual tests")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, quick); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("RunAll missing section %s", id)
		}
	}
}
