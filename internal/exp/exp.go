// Package exp is the experiment harness: one runner per reproduced table
// or figure (see DESIGN.md's per-experiment index). Each runner writes a
// self-describing plain-text table to an io.Writer; cmd/bddbench exposes
// them on the command line and bench_test.go wraps them in testing.B
// benchmarks. All runners are deterministic for a fixed Config.Seed.
package exp

import (
	"fmt"
	"io"
	"sort"
)

// Config tunes experiment sizes.
type Config struct {
	// Seed drives all pseudo-randomness (default 1).
	Seed int64
	// Quick shrinks problem sizes for use under `go test` and CI; full
	// sizes are the defaults used by cmd/bddbench.
	Quick bool
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Runner executes one experiment, writing its table to w.
type Runner func(w io.Writer, cfg Config) error

// registry maps experiment IDs to runners and descriptions.
var registry = map[string]struct {
	runner Runner
	desc   string
}{
	"E1":  {E1, "Fig. 1 — ordering sensitivity of the Achilles-heel function"},
	"E2":  {E2, "Table 1 — exponents γ_k and fractions α for k = 1..6"},
	"E3":  {E3, "Table 2 — composition iteration γ = 3 → 2.77286"},
	"E4":  {E4, "Theorem 5 — O*(3^n) operation scaling of algorithm FS"},
	"E5":  {E5, "brute force O*(n!·2^n) vs FS: operations and agreement"},
	"E6":  {E6, "Theorems 10/13 — simulated quantum query counts vs classical ops"},
	"E7":  {E7, "Theorem 1 validity — cross-algorithm and cross-structure agreement"},
	"E8":  {E8, "heuristic quality vs the exact optimum (sifting, window, greedy, random)"},
	"E9":  {E9, "Remark 2 — ZDD adaptation on sparse set families"},
	"E10": {E10, "Remark 2 — MTBDD generalization on multi-valued functions"},
	"E11": {E11, "Corollary 2 — representation independence (table/expression/circuit)"},
	"E12": {E12, "Lemma 8 — composable FS* extension cost shape"},
	"E13": {E13, "error injection — valid-but-non-minimum degradation rate"},
	"E14": {E14, "Remark 1 — peak space vs the analytic layer bound"},
	"E15": {E15, "ablation — branch-and-bound exact search vs the dynamic program"},
	"E16": {E16, "validation — Grover statevector vs query model; in-place dynamic reordering"},
	"E17": {E17, "extension — exact shared-forest ordering for multi-output circuits"},
	"E18": {E18, "extension — symmetry detection, search-space reduction, group sifting"},
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Describe returns the one-line description of an experiment ID.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	return e.desc, ok
}

// Run executes the experiment with the given ID.
func Run(id string, w io.Writer, cfg Config) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	fmt.Fprintf(w, "== %s: %s ==\n", id, e.desc)
	return e.runner(w, cfg)
}

// RunAll executes every experiment in ID order.
func RunAll(w io.Writer, cfg Config) error {
	for _, id := range IDs() {
		if err := Run(id, w, cfg); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
