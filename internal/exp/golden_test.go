package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The fully deterministic experiments (no timing, no randomness beyond the
// fixed seed) are pinned against golden files: any drift in the reproduced
// paper tables fails this test. Regenerate with:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden experiment outputs")

// goldenIDs lists experiments whose full output is bit-stable: the
// parameter tables (pure numerics) and the Fig. 1 size table.
var goldenIDs = []string{"E1", "E2", "E3"}

func TestGoldenExperiments(t *testing.T) {
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, &buf, Config{Seed: 1, Quick: true}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			path := filepath.Join("testdata", "golden_"+id+".txt")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.String(), want)
			}
		})
	}
}
