// Package heuristics implements the variable-ordering heuristics the exact
// algorithms are meant to judge (the papers' stated motivation for
// theoretically sound methods: "to judge the optimization quality of
// heuristics"). Provided are Rudell-style sifting, window permutation,
// best-of-k random restarts, and greedy bottom-up construction. All
// heuristics work against an exact width oracle derived from the truth
// table, so their reported sizes are exact; experiment E8 compares them to
// the DP optimum.
package heuristics

import (
	"context"
	"math/rand"

	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// SiftOptions configures the sifting heuristic.
type SiftOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule core.Rule
	// MaxPasses bounds the improvement sweeps; 0 means run to
	// convergence.
	MaxPasses int
	// Trace, if non-nil, receives KindHeurPass events per sweep and
	// KindHeurSwap events per accepted variable move.
	Trace obs.Tracer
	// Ctx, if non-nil, is polled between oracle evaluations; once it is
	// done the sweep stops and the best ordering found so far is
	// returned. Heuristics carry no optimality proof either way, so a
	// canceled run degrades gracefully rather than failing.
	Ctx context.Context
}

// WindowOptions configures the window-permutation heuristic.
type WindowOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule core.Rule
	// Width is the window width (2, 3 or 4).
	Width int
	// Trace, if non-nil, receives pass and swap events.
	Trace obs.Tracer
	// Ctx, if non-nil, is polled between window positions; once it is
	// done the sweep stops and the best ordering so far is returned.
	Ctx context.Context
}

// ctxDone reports whether the optional cancellation context has fired.
func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Result reports a heuristic outcome.
type Result struct {
	// Ordering is the best ordering found, bottom-up.
	Ordering truthtable.Ordering
	// MinCost is the number of nonterminal nodes under Ordering (exact,
	// by oracle evaluation — only the search is heuristic).
	MinCost uint64
	// Evaluations counts cost-oracle calls (each O(n·2^n)).
	Evaluations uint64
	// Passes counts improvement sweeps until convergence.
	Passes int
}

// Oracle evaluates exact diagram costs for orderings of one function.
type Oracle struct {
	tt    *truthtable.Table
	rule  core.Rule
	evals uint64
}

// NewOracle returns a width oracle for tt under the given rule.
func NewOracle(tt *truthtable.Table, rule core.Rule) *Oracle {
	return &Oracle{tt: tt, rule: rule}
}

// Cost returns the number of nonterminal nodes of the diagram of the
// oracle's function under ord.
func (o *Oracle) Cost(ord truthtable.Ordering) uint64 {
	o.evals++
	widths := core.Profile(o.tt, ord, o.rule, nil)
	var sum uint64
	for _, w := range widths {
		sum += w
	}
	return sum
}

// Evaluations returns the number of Cost calls so far.
func (o *Oracle) Evaluations() uint64 { return o.evals }

// Sift runs Rudell's sifting on the function: each variable in turn is
// moved through every position (others fixed), and kept at the best one;
// sweeps repeat until a sweep yields no improvement or maxPasses is
// reached (0 means unbounded). Variables are processed in decreasing order
// of their current level width, the classic schedule.
func Sift(tt *truthtable.Table, rule core.Rule, maxPasses int) Result {
	return SiftOpts(tt, &SiftOptions{Rule: rule, MaxPasses: maxPasses})
}

// SiftOpts is Sift with full configuration, including tracing and
// cooperative cancellation.
func SiftOpts(tt *truthtable.Table, opts *SiftOptions) Result {
	var rule core.Rule
	maxPasses := 0
	var tr obs.Tracer
	var ctx context.Context
	if opts != nil {
		rule, maxPasses, tr, ctx = opts.Rule, opts.MaxPasses, opts.Trace, opts.Ctx
	}
	n := tt.NumVars()
	o := NewOracle(tt, rule)
	ord := truthtable.IdentityOrdering(n)
	best := o.Cost(ord)
	passes := 0
	stopped := false
	for !stopped {
		passes++
		improvedThisPass := false
		for _, v := range siftSchedule(tt, ord, rule) {
			pos := ord.LevelOf(v) - 1
			bestPos, bestCost := pos, best
			for target := 0; target < n; target++ {
				if target == pos {
					continue
				}
				if ctxDone(ctx) {
					stopped = true
					break
				}
				cand := ord.Clone()
				cand.MoveTo(pos, target)
				c := o.Cost(cand)
				if c < bestCost {
					bestPos, bestCost = target, c
				}
			}
			if bestPos != pos {
				ord.MoveTo(pos, bestPos)
				best = bestCost
				improvedThisPass = true
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindHeurSwap, K: passes, Var: v, Depth: bestPos, Cost: best})
				}
			}
			if stopped {
				break
			}
		}
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindHeurPass, K: passes, Cost: best, Evals: o.Evaluations()})
		}
		if !improvedThisPass || (maxPasses > 0 && passes >= maxPasses) {
			break
		}
	}
	return Result{Ordering: ord, MinCost: best, Evaluations: o.Evaluations(), Passes: passes}
}

// siftSchedule orders the variables by decreasing level width under the
// current ordering, the standard sifting schedule.
func siftSchedule(tt *truthtable.Table, ord truthtable.Ordering, rule core.Rule) []int {
	widths := core.Profile(tt, ord, rule, nil)
	n := len(ord)
	vars := make([]int, n)
	copy(vars, ord)
	// Insertion sort by the width of each variable's level, descending.
	key := func(v int) uint64 { return widths[ord.LevelOf(v)-1] }
	for i := 1; i < n; i++ {
		for j := i; j > 0 && key(vars[j]) > key(vars[j-1]); j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	return vars
}

// Window runs window permutation with the given window width w (2, 3 or
// 4): every block of w adjacent levels is replaced by its best internal
// permutation, sweeping until a fixpoint.
func Window(tt *truthtable.Table, rule core.Rule, w int) Result {
	return WindowOpts(tt, &WindowOptions{Rule: rule, Width: w})
}

// WindowOpts is Window with full configuration, including tracing and
// cooperative cancellation.
func WindowOpts(tt *truthtable.Table, opts *WindowOptions) Result {
	var rule core.Rule
	w := 0
	var tr obs.Tracer
	var ctx context.Context
	if opts != nil {
		rule, w, tr, ctx = opts.Rule, opts.Width, opts.Trace, opts.Ctx
	}
	if w < 2 || w > 4 {
		panic("heuristics: window width must be 2, 3 or 4") //lint:allow nopanic documented programmer-error precondition: window width is 2, 3 or 4
	}
	n := tt.NumVars()
	o := NewOracle(tt, rule)
	ord := truthtable.IdentityOrdering(n)
	best := o.Cost(ord)
	passes := 0
	if w > n {
		w = n
	}
	stopped := false
	for !stopped {
		passes++
		improved := false
		for start := 0; start+w <= n; start++ {
			if ctxDone(ctx) {
				stopped = true
				break
			}
			bestPerm, bestCost := ord.Clone(), best
			permute(ord, start, w, func(cand truthtable.Ordering) {
				if c := o.Cost(cand); c < bestCost {
					bestPerm, bestCost = cand.Clone(), c
				}
			})
			if bestCost < best {
				ord, best = bestPerm, bestCost
				improved = true
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindHeurSwap, K: passes, Var: ord[start], Depth: start, Cost: best})
				}
			}
		}
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindHeurPass, K: passes, Cost: best, Evals: o.Evaluations()})
		}
		if !improved {
			break
		}
	}
	return Result{Ordering: ord, MinCost: best, Evaluations: o.Evaluations(), Passes: passes}
}

// permute enumerates all permutations of ord[start:start+w] (excluding the
// identity arrangement it starts from being revisited is harmless),
// invoking fn with a scratch ordering that must not be retained.
func permute(ord truthtable.Ordering, start, w int, fn func(truthtable.Ordering)) {
	scratch := ord.Clone()
	var rec func(k int)
	rec = func(k int) {
		if k == w {
			fn(scratch)
			return
		}
		for i := k; i < w; i++ {
			scratch.Swap(start+k, start+i)
			rec(k + 1)
			scratch.Swap(start+k, start+i)
		}
	}
	rec(0)
}

// RandomBest evaluates k orderings drawn uniformly at random and returns
// the best — the naive baseline heuristic.
func RandomBest(tt *truthtable.Table, rule core.Rule, k int, rng *rand.Rand) Result {
	n := tt.NumVars()
	o := NewOracle(tt, rule)
	best := truthtable.IdentityOrdering(n)
	bestCost := o.Cost(best)
	for i := 0; i < k; i++ {
		cand := truthtable.RandomOrdering(n, rng)
		if c := o.Cost(cand); c < bestCost {
			best, bestCost = cand, c
		}
	}
	return Result{Ordering: best, MinCost: bestCost, Evaluations: o.Evaluations(), Passes: 1}
}

// GreedyAppend builds an ordering bottom-up, at each step appending the
// variable whose level would be narrowest given the set already placed —
// the greedy single-chain restriction of the dynamic program. By Lemma 3
// each candidate width is well defined; unlike FS, only one chain is kept,
// so the result is not guaranteed optimal.
func GreedyAppend(tt *truthtable.Table, rule core.Rule) Result {
	n := tt.NumVars()
	o := NewOracle(tt, rule)
	placed := make([]int, 0, n)
	remaining := make(map[int]bool, n)
	for v := 0; v < n; v++ {
		remaining[v] = true
	}
	for len(placed) < n {
		level := len(placed)
		bestV, bestW := -1, ^uint64(0)
		for v := 0; v < n; v++ {
			if !remaining[v] {
				continue
			}
			// Complete the ordering arbitrarily; only widths up to the
			// candidate's level matter and they depend on sets only.
			cand := append(append([]int{}, placed...), v)
			for u := 0; u < n; u++ {
				if remaining[u] && u != v {
					cand = append(cand, u)
				}
			}
			widths := core.Profile(tt, truthtable.Ordering(cand), rule, nil)
			o.evals++
			if widths[level] < bestW || (widths[level] == bestW && v < bestV) {
				bestV, bestW = v, widths[level]
			}
		}
		placed = append(placed, bestV)
		delete(remaining, bestV)
	}
	ord := truthtable.Ordering(placed)
	return Result{Ordering: ord, MinCost: o.Cost(ord), Evaluations: o.Evaluations(), Passes: 1}
}
