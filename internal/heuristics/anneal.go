package heuristics

import (
	"context"
	"math"
	"math/rand"

	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// AnnealOptions configures simulated annealing over orderings (Bollig,
// Löbbing & Wegener studied this search for BDD minimization).
type AnnealOptions struct {
	// Steps is the number of proposal steps (default 200·n).
	Steps int
	// T0 is the initial temperature, in units of diagram nodes
	// (default: the cost of the initial ordering / 4).
	T0 float64
	// Cooling is the geometric cooling factor per step (default chosen
	// so the temperature decays to ~0.1 over Steps).
	Cooling float64
	// Rng drives proposals and acceptance; it must be non-nil.
	Rng *rand.Rand
	// Trace, if non-nil, receives a KindHeurSwap event per accepted move
	// that improves the best-so-far cost, and one final KindHeurPass.
	Trace obs.Tracer
	// Ctx, if non-nil, is polled between proposal steps; once it is done
	// the walk stops and the best ordering visited so far is returned.
	Ctx context.Context
}

// Anneal runs simulated annealing on the ordering space: proposals are
// random transpositions (adjacent with probability ½, arbitrary
// otherwise); worse orderings are accepted with probability
// exp(−Δ/T) under a geometric cooling schedule. The best ordering ever
// visited is returned — like all heuristics here the cost of each visited
// ordering is exact, only the search is stochastic.
func Anneal(tt *truthtable.Table, rule core.Rule, opts *AnnealOptions) Result {
	if opts == nil || opts.Rng == nil {
		panic("heuristics: Anneal requires options with a random source") //lint:allow nopanic documented programmer-error precondition: Anneal requires a seeded Rng
	}
	n := tt.NumVars()
	o := NewOracle(tt, rule)
	cur := truthtable.IdentityOrdering(n)
	curCost := o.Cost(cur)
	best := cur.Clone()
	bestCost := curCost

	steps := opts.Steps
	if steps <= 0 {
		steps = 200 * n
	}
	temp := opts.T0
	if temp <= 0 {
		temp = float64(curCost)/4 + 1
	}
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Decay to 1% of T0 across the run.
		cooling = math.Pow(0.01, 1/float64(steps))
	}
	rng := opts.Rng

	for step := 0; step < steps && n > 1; step++ {
		if ctxDone(opts.Ctx) {
			break
		}
		i := rng.Intn(n)
		var j int
		if rng.Intn(2) == 0 {
			// Adjacent transposition.
			j = i + 1
			if j == n {
				j = i - 1
			}
		} else {
			for j = rng.Intn(n); j == i; j = rng.Intn(n) {
			}
		}
		cur.Swap(i, j)
		candCost := o.Cost(cur)
		delta := float64(candCost) - float64(curCost)
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			curCost = candCost
			if curCost < bestCost {
				bestCost = curCost
				copy(best, cur)
				if opts.Trace != nil {
					opts.Trace.Emit(obs.Event{Kind: obs.KindHeurSwap, K: step + 1, Var: cur[i], Depth: i, Cost: bestCost})
				}
			}
		} else {
			cur.Swap(i, j) // reject: undo
		}
		temp *= cooling
	}
	if opts.Trace != nil {
		opts.Trace.Emit(obs.Event{Kind: obs.KindHeurPass, K: 1, Cost: bestCost, Evals: o.Evaluations()})
	}
	return Result{Ordering: best, MinCost: bestCost, Evaluations: o.Evaluations(), Passes: 1}
}
