package heuristics

import (
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func TestAnnealSolvesAchillesHeel(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	f := funcs.AchillesHeel(4)
	res := Anneal(f, core.OBDD, &AnnealOptions{Rng: rng})
	if res.MinCost != 8 {
		t.Errorf("anneal found %d, optimal 8", res.MinCost)
	}
	if !res.Ordering.Valid() {
		t.Errorf("invalid ordering")
	}
}

func TestAnnealSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	for trial := 0; trial < 8; trial++ {
		n := 4 + trial%4
		f := truthtable.Random(n, rng)
		res := Anneal(f, core.OBDD, &AnnealOptions{Rng: rng, Steps: 300})
		opt := core.OptimalOrdering(f, nil).MinCost
		if res.MinCost < opt {
			t.Fatalf("anneal beat the optimum")
		}
		// Reported cost must be realized by the reported ordering.
		if NewOracle(f, core.OBDD).Cost(res.Ordering) != res.MinCost {
			t.Fatalf("anneal misreports its cost")
		}
	}
}

func TestAnnealBestNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	f := truthtable.Random(7, rng)
	start := NewOracle(f, core.OBDD).Cost(truthtable.IdentityOrdering(7))
	res := Anneal(f, core.OBDD, &AnnealOptions{Rng: rng})
	if res.MinCost > start {
		t.Errorf("anneal returned worse than its own start: %d > %d", res.MinCost, start)
	}
}

func TestAnnealMoreStepsHelps(t *testing.T) {
	// On a strongly ordering-sensitive function, many steps should do at
	// least as well as very few (statistically guaranteed since the best
	// visited ordering is returned and runs share the start).
	f := funcs.Multiplexer(2)
	short := Anneal(f, core.OBDD, &AnnealOptions{Rng: rand.New(rand.NewSource(7)), Steps: 5})
	long := Anneal(f, core.OBDD, &AnnealOptions{Rng: rand.New(rand.NewSource(7)), Steps: 2000})
	if long.MinCost > short.MinCost {
		t.Errorf("longer anneal worse: %d vs %d", long.MinCost, short.MinCost)
	}
}

func TestAnnealSingleVariable(t *testing.T) {
	f := truthtable.Var(1, 0)
	res := Anneal(f, core.OBDD, &AnnealOptions{Rng: rand.New(rand.NewSource(1))})
	if res.MinCost != 1 {
		t.Errorf("n=1 anneal cost %d", res.MinCost)
	}
}

func TestAnnealPanicsWithoutRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic without rng")
		}
	}()
	Anneal(truthtable.New(3), core.OBDD, nil)
}

func TestAnnealZDD(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	f := funcs.SparseFamily(7, 9, 3, rng)
	res := Anneal(f, core.ZDD, &AnnealOptions{Rng: rng})
	opt := core.OptimalOrdering(f, &core.SolveOptions{Rule: core.ZDD}).MinCost
	if res.MinCost < opt {
		t.Fatalf("ZDD anneal beat the ZDD optimum")
	}
}
