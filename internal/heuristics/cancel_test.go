package heuristics

import (
	"context"
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// TestHeuristicsHonorContext verifies the heuristics return a valid
// (merely unimproved) ordering instead of running on when their context
// is already done — the behavior the portfolio's seeding phase relies on
// under tight deadlines.
func TestHeuristicsHonorContext(t *testing.T) {
	tt := truthtable.Random(8, rand.New(rand.NewSource(6)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if res := SiftOpts(tt, &SiftOptions{Ctx: ctx}); !res.Ordering.Valid() || len(res.Ordering) != 8 {
		t.Errorf("SiftOpts under canceled ctx returned invalid ordering %v", res.Ordering)
	}
	if res := WindowOpts(tt, &WindowOptions{Width: 2, Ctx: ctx}); !res.Ordering.Valid() || len(res.Ordering) != 8 {
		t.Errorf("WindowOpts under canceled ctx returned invalid ordering %v", res.Ordering)
	}
	rng := rand.New(rand.NewSource(1))
	if res := Anneal(tt, core.OBDD, &AnnealOptions{Steps: 1000, Rng: rng, Ctx: ctx}); !res.Ordering.Valid() || len(res.Ordering) != 8 {
		t.Errorf("Anneal under canceled ctx returned invalid ordering %v", res.Ordering)
	}
}

// TestSeederAlwaysYields pins the portfolio contract of the default
// seeder: it reports ok even when the context is already done, so the
// portfolio always has an incumbent to degrade to.
func TestSeederAlwaysYields(t *testing.T) {
	tt := truthtable.Random(7, rand.New(rand.NewSource(8)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ord, cost, ok := Seed(ctx, tt, core.OBDD, nil)
	if !ok {
		t.Fatal("Seed reported no incumbent")
	}
	if !ord.Valid() || len(ord) != 7 {
		t.Fatalf("Seed ordering %v invalid", ord)
	}
	// Seed's cost is in MinCost units (nonterminal nodes), the oracle's.
	if got := NewOracle(tt, core.OBDD).Cost(ord); got != cost {
		t.Errorf("Seed cost %d but ordering achieves %d", cost, got)
	}
}
