package heuristics

import (
	"context"
	"math/rand"

	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// init installs the Sift→Anneal pipeline as the portfolio engine's
// default heuristic seeding phase. The hook (core.DefaultSeeder) exists
// because this package imports core for its cost oracle, so core cannot
// import it back; linking heuristics in — which every Solve user does via
// the top-level facade — wires the portfolio automatically, in the
// database/sql-driver style.
func init() {
	core.DefaultSeeder = Seed
}

// Seed is the portfolio's heuristic phase: a sifting pass followed by a
// short simulated-annealing walk started independently (the annealer
// explores from the identity ordering; its acceptance of uphill moves
// covers a different part of the ordering space than sifting's steepest
// descent). The better of the two orderings is returned. Both passes poll
// ctx and return best-so-far on cancellation; the seed is deterministic —
// the annealer runs on a fixed-seed source — so portfolio runs are
// reproducible.
func Seed(ctx context.Context, tt *truthtable.Table, rule core.Rule, tr obs.Tracer) (truthtable.Ordering, uint64, bool) {
	if tt.NumVars() == 0 {
		return truthtable.Ordering{}, 0, true
	}
	sift := SiftOpts(tt, &SiftOptions{Rule: rule, MaxPasses: 2, Trace: tr, Ctx: ctx})
	best, bestCost := sift.Ordering, sift.MinCost
	if !ctxDone(ctx) {
		ann := Anneal(tt, rule, &AnnealOptions{
			Steps: 50 * tt.NumVars(),
			Rng:   rand.New(rand.NewSource(1)),
			Trace: tr,
			Ctx:   ctx,
		})
		if ann.MinCost < bestCost {
			best, bestCost = ann.Ordering, ann.MinCost
		}
	}
	return best, bestCost, true
}
