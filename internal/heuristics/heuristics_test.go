package heuristics

import (
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func optimal(tt *truthtable.Table) uint64 {
	return core.OptimalOrdering(tt, nil).MinCost
}

func TestOracleMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	tt := truthtable.Random(5, rng)
	o := NewOracle(tt, core.OBDD)
	ord := truthtable.RandomOrdering(5, rng)
	widths := core.Profile(tt, ord, core.OBDD, nil)
	var sum uint64
	for _, w := range widths {
		sum += w
	}
	if o.Cost(ord) != sum {
		t.Fatalf("oracle disagrees with Profile")
	}
	if o.Evaluations() != 1 {
		t.Errorf("evaluation count wrong")
	}
}

func TestSiftSolvesAchillesHeel(t *testing.T) {
	// Sifting famously fixes the interleaving of the Fig. 1 function.
	for pairs := 2; pairs <= 4; pairs++ {
		f := funcs.AchillesHeel(pairs)
		res := Sift(f, core.OBDD, 0)
		want := uint64(2 * pairs)
		if res.MinCost != want {
			t.Errorf("pairs=%d: sift cost %d, want optimal %d", pairs, res.MinCost, want)
		}
		if !res.Ordering.Valid() {
			t.Errorf("sift returned invalid ordering")
		}
	}
}

func TestSiftNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 10; trial++ {
		n := 4 + trial%4
		tt := truthtable.Random(n, rng)
		start := NewOracle(tt, core.OBDD).Cost(truthtable.IdentityOrdering(n))
		res := Sift(tt, core.OBDD, 0)
		if res.MinCost > start {
			t.Fatalf("sifting made things worse: %d > %d", res.MinCost, start)
		}
		if res.MinCost < optimal(tt) {
			t.Fatalf("heuristic beat the exact optimum — impossible")
		}
	}
}

func TestSiftMaxPassesRespected(t *testing.T) {
	tt := funcs.AchillesHeel(3)
	res := Sift(tt, core.OBDD, 1)
	if res.Passes != 1 {
		t.Errorf("Passes = %d with maxPasses 1", res.Passes)
	}
}

func TestWindowImprovesAndIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, w := range []int{2, 3, 4} {
		for trial := 0; trial < 5; trial++ {
			n := 5 + trial%3
			tt := truthtable.Random(n, rng)
			res := Window(tt, core.OBDD, w)
			if !res.Ordering.Valid() {
				t.Fatalf("w=%d invalid ordering", w)
			}
			if res.MinCost < optimal(tt) {
				t.Fatalf("window beat the optimum")
			}
			// Cost reported must match the oracle on the ordering.
			if NewOracle(tt, core.OBDD).Cost(res.Ordering) != res.MinCost {
				t.Fatalf("reported cost does not match ordering")
			}
		}
	}
}

func TestWindowPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for w=5")
		}
	}()
	Window(truthtable.New(3), core.OBDD, 5)
}

func TestWindowWidthLargerThanN(t *testing.T) {
	// w is clamped to n; must still terminate and be exact for tiny n.
	tt := funcs.Parity(3)
	res := Window(tt, core.OBDD, 4)
	if res.MinCost != optimal(tt) {
		t.Errorf("w≥n window should find the optimum of a 3-var function")
	}
}

func TestRandomBest(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	tt := funcs.AchillesHeel(3)
	res1 := RandomBest(tt, core.OBDD, 1, rng)
	res100 := RandomBest(tt, core.OBDD, 200, rng)
	if res100.MinCost > res1.MinCost {
		t.Errorf("more samples made RandomBest worse")
	}
	if res100.MinCost < optimal(tt) {
		t.Errorf("random best beat the optimum")
	}
	if res100.Evaluations != 201 {
		t.Errorf("Evaluations = %d, want 201", res100.Evaluations)
	}
}

func TestGreedyAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 8; trial++ {
		n := 4 + trial%3
		tt := truthtable.Random(n, rng)
		res := GreedyAppend(tt, core.OBDD)
		if !res.Ordering.Valid() {
			t.Fatalf("greedy invalid ordering %v", res.Ordering)
		}
		if res.MinCost < optimal(tt) {
			t.Fatalf("greedy beat the optimum")
		}
		if NewOracle(tt, core.OBDD).Cost(res.Ordering) != res.MinCost {
			t.Fatalf("greedy misreports its cost")
		}
	}
}

func TestGreedyIsDeterministic(t *testing.T) {
	tt := funcs.AchillesHeel(3)
	a := GreedyAppend(tt, core.OBDD)
	b := GreedyAppend(tt, core.OBDD)
	for i := range a.Ordering {
		if a.Ordering[i] != b.Ordering[i] {
			t.Fatalf("greedy not deterministic")
		}
	}
}

func TestHeuristicsOnZDDRule(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	tt := funcs.SparseFamily(7, 9, 3, rng)
	opt := core.OptimalOrdering(tt, &core.SolveOptions{Rule: core.ZDD}).MinCost
	res := Sift(tt, core.ZDD, 0)
	if res.MinCost < opt {
		t.Fatalf("ZDD sifting beat the ZDD optimum")
	}
}

func TestSiftQualityOnStructuredFamilies(t *testing.T) {
	// On the structured families sifting should land within 2× of the
	// optimum (it is usually exact); this guards against oracle misuse.
	fns := map[string]*truthtable.Table{
		"adder-sum2": funcs.AdderSumBit(3, 2),
		"comparator": funcs.Comparator(3),
		"mux2":       funcs.Multiplexer(2),
		"majority7":  funcs.Majority(7),
		"readonce7":  funcs.ReadOnceChain(7),
	}
	for name, tt := range fns {
		opt := optimal(tt)
		res := Sift(tt, core.OBDD, 0)
		if res.MinCost > 2*opt {
			t.Errorf("%s: sift %d vs optimal %d (ratio > 2)", name, res.MinCost, opt)
		}
	}
}
