package bdd

import (
	"fmt"
	"sort"
	"strings"

	"obddopt/internal/truthtable"
)

// FromTruthTable builds the reduced OBDD of tt under the manager's
// ordering by a bottom-up fold over the 2^n leaf vector: O(2^n) mk calls.
// The resulting node count per level equals the widths the dynamic
// program's Profile reports for the same ordering (experiment E7's
// structural cross-check).
func (m *Manager) FromTruthTable(tt *truthtable.Table) Node {
	if tt.NumVars() != m.nvars {
		panic("bdd: truth table variable count mismatch")
	}
	n := m.nvars
	size := tt.Size()
	cur := make([]Node, size)
	// Leaf vector index: bit j (from the least significant) carries the
	// value of the variable at level n−1−j, so that consecutive pairs
	// share all variables except the bottommost.
	for idx := uint64(0); idx < size; idx++ {
		var ttIdx uint64
		for j := 0; j < n; j++ {
			if idx>>uint(j)&1 == 1 {
				v := m.varAtLevel[n-1-j]
				ttIdx |= 1 << uint(v)
			}
		}
		if tt.Bit(ttIdx) {
			cur[idx] = True
		} else {
			cur[idx] = False
		}
	}
	for level := n - 1; level >= 0; level-- {
		half := uint64(1) << uint(level) // number of nodes after folding… see below
		_ = half
		next := make([]Node, len(cur)/2)
		for i := range next {
			next[i] = m.mk(uint32(level), cur[2*i], cur[2*i+1])
		}
		cur = next
	}
	return cur[0]
}

// ToTruthTable materializes the truth table of f.
func (m *Manager) ToTruthTable(f Node) *truthtable.Table {
	tt := truthtable.New(m.nvars)
	x := make([]bool, m.nvars)
	size := tt.Size()
	for idx := uint64(0); idx < size; idx++ {
		for i := 0; i < m.nvars; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		if m.Eval(f, x) {
			tt.Set(idx, true)
		}
	}
	return tt
}

// Transfer rebuilds the function f of manager src inside manager dst
// (which may use a different ordering) and returns the corresponding dst
// node. It recurses over src structure with memoization and composes with
// ITE in dst, the standard cross-manager transfer.
func Transfer(src *Manager, f Node, dst *Manager) Node {
	if src.nvars != dst.nvars {
		panic("bdd: Transfer across managers with different variable counts")
	}
	memo := map[Node]Node{}
	var rec func(Node) Node
	rec = func(g Node) Node {
		switch g {
		case False:
			return False
		case True:
			return True
		}
		if r, ok := memo[g]; ok {
			return r
		}
		d := src.nodes[g]
		v := src.varAtLevel[d.level]
		r := dst.ITE(dst.Var(v), rec(d.hi), rec(d.lo))
		memo[g] = r
		return r
	}
	return rec(f)
}

// ReorderTo returns a fresh manager using the given bottom-up ordering and
// the images of the given roots in it. It realizes global reordering by
// transfer; the swap-in-place machinery of production packages is traded
// for simplicity since diagram sizes here stay within the exact
// algorithms' reach.
func (m *Manager) ReorderTo(order truthtable.Ordering, roots ...Node) (*Manager, []Node) {
	dst := New(m.nvars, order)
	out := make([]Node, len(roots))
	for i, r := range roots {
		out[i] = Transfer(m, r, dst)
	}
	return dst, out
}

// DOT renders the diagram rooted at f in Graphviz format, with solid
// 1-edges and dashed 0-edges, terminals as boxes — the conventional BDD
// picture (Fig. 1 of the papers).
func (m *Manager) DOT(f Node, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=TB;\n")
	seen := map[Node]bool{}
	var nodesByLevel [][]Node
	nodesByLevel = make([][]Node, m.nvars+1)
	var collect func(Node)
	collect = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		lvl := m.level(g)
		nodesByLevel[lvl] = append(nodesByLevel[lvl], g)
		if g == True || g == False {
			return
		}
		collect(m.nodes[g].lo)
		collect(m.nodes[g].hi)
	}
	collect(f)
	for lvl, ns := range nodesByLevel {
		if len(ns) == 0 {
			continue
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		if lvl < m.nvars {
			fmt.Fprintf(&sb, "  { rank=same;")
			for _, g := range ns {
				fmt.Fprintf(&sb, " n%d;", g)
			}
			sb.WriteString(" }\n")
			for _, g := range ns {
				v := m.varAtLevel[lvl]
				fmt.Fprintf(&sb, "  n%d [label=\"x%d\", shape=circle];\n", g, v+1)
			}
		} else {
			for _, g := range ns {
				label := "F"
				if g == True {
					label = "T"
				}
				fmt.Fprintf(&sb, "  n%d [label=%q, shape=box];\n", g, label)
			}
		}
	}
	for g := range seen {
		if g == True || g == False {
			continue
		}
		d := m.nodes[g]
		fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed];\n", g, d.lo)
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", g, d.hi)
	}
	sb.WriteString("}\n")
	return sb.String()
}
