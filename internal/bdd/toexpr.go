package bdd

import "obddopt/internal/expr"

// ToExpr extracts a Boolean formula denoting f by Shannon factoring the
// diagram, with local simplifications at terminal children (v, ¬v, v∧g,
// v∨g, …). Shared nodes are factored once but inlined per reference, so
// the formula can be exponentially larger than the diagram in the worst
// case; it is exact and reparses to the same function (tested), which
// makes it the bridge from diagrams back to the text frontend.
func (m *Manager) ToExpr(f Node) expr.Expr {
	memo := map[Node]expr.Expr{}
	var rec func(Node) expr.Expr
	rec = func(g Node) expr.Expr {
		switch g {
		case False:
			return expr.Const(false)
		case True:
			return expr.Const(true)
		}
		if e, ok := memo[g]; ok {
			return e
		}
		d := m.nodes[g]
		v, _ := m.VarOf(g)
		xv := expr.Var(v)
		var e expr.Expr
		switch {
		case d.lo == False && d.hi == True:
			e = xv
		case d.lo == True && d.hi == False:
			e = expr.Not{X: xv}
		case d.lo == False:
			e = expr.Binary{Op: expr.And, L: xv, R: rec(d.hi)}
		case d.hi == True:
			e = expr.Binary{Op: expr.Or, L: xv, R: rec(d.lo)}
		case d.hi == False:
			e = expr.Binary{Op: expr.And, L: expr.Not{X: xv}, R: rec(d.lo)}
		case d.lo == True:
			e = expr.Binary{Op: expr.Or, L: expr.Not{X: xv}, R: rec(d.hi)}
		default:
			e = expr.Binary{
				Op: expr.Or,
				L:  expr.Binary{Op: expr.And, L: xv, R: rec(d.hi)},
				R:  expr.Binary{Op: expr.And, L: expr.Not{X: xv}, R: rec(d.lo)},
			}
		}
		memo[g] = e
		return e
	}
	return rec(f)
}
