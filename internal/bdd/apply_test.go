package bdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

func TestBinaryOpEval(t *testing.T) {
	cases := []struct {
		op   BinaryOp
		want [4]bool // (a,b) = 00,01,10,11
	}{
		{OpAnd, [4]bool{false, false, false, true}},
		{OpOr, [4]bool{false, true, true, true}},
		{OpXor, [4]bool{false, true, true, false}},
		{OpNand, [4]bool{true, true, true, false}},
		{OpNor, [4]bool{true, false, false, false}},
		{OpXnor, [4]bool{true, false, false, true}},
		{OpImp, [4]bool{true, true, false, true}},
		{OpDiff, [4]bool{false, false, true, false}},
	}
	for _, c := range cases {
		i := 0
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				if c.op.Eval(a, b) != c.want[i] {
					t.Errorf("%s(%v,%v) = %v, want %v", c.op, a, b, c.op.Eval(a, b), c.want[i])
				}
				i++
			}
		}
	}
	if OpAnd.String() != "AND" || BinaryOp(0b0011).String() == "" {
		t.Errorf("String naming wrong")
	}
}

func TestApplyMatchesITEBasedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%5
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(truthtable.Random(n, rng))
		g := m.FromTruthTable(truthtable.Random(n, rng))
		pairs := []struct {
			op   BinaryOp
			want Node
		}{
			{OpAnd, m.And(f, g)},
			{OpOr, m.Or(f, g)},
			{OpXor, m.Xor(f, g)},
			{OpNand, m.Not(m.And(f, g))},
			{OpNor, m.Not(m.Or(f, g))},
			{OpXnor, m.Equiv(f, g)},
			{OpImp, m.Implies(f, g)},
			{OpDiff, m.And(f, m.Not(g))},
		}
		for _, p := range pairs {
			if got := m.Apply(p.op, f, g); got != p.want {
				t.Fatalf("n=%d %s: Apply %d != ITE %d", n, p.op, got, p.want)
			}
		}
	}
}

func TestApplyAllSixteenOps(t *testing.T) {
	// Every one of the 16 connectives must match pointwise evaluation.
	rng := rand.New(rand.NewSource(212))
	n := 4
	ft := truthtable.Random(n, rng)
	gt := truthtable.Random(n, rng)
	m := New(n, nil)
	f, g := m.FromTruthTable(ft), m.FromTruthTable(gt)
	for op := BinaryOp(0); op < 16; op++ {
		r := m.Apply(op, f, g)
		want := truthtable.FromFunc(n, func(x []bool) bool {
			return op.Eval(ft.Eval(x), gt.Eval(x))
		})
		if !m.ToTruthTable(r).Equal(want) {
			t.Fatalf("op %04b wrong", uint8(op))
		}
	}
}

func TestApplyTerminalShortCircuits(t *testing.T) {
	m := New(3, nil)
	f := m.Var(0)
	if m.Apply(OpAnd, False, f) != False {
		t.Errorf("⊥∧f != ⊥")
	}
	if m.Apply(OpOr, True, f) != True {
		t.Errorf("⊤∨f != ⊤")
	}
	if m.Apply(OpImp, f, True) != True {
		t.Errorf("f→⊤ != ⊤")
	}
	if m.Apply(OpAnd, True, f) != f {
		t.Errorf("⊤∧f != f")
	}
}
