package bdd

import (
	"math/rand"
	"strings"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(3, nil)
	if m.Constant(true) != True || m.Constant(false) != False {
		t.Fatalf("constants wrong")
	}
	x0 := m.Var(0)
	if !m.Eval(x0, []bool{true, false, false}) || m.Eval(x0, []bool{false, true, true}) {
		t.Errorf("Var(0) evaluates wrong")
	}
	nx0 := m.NVar(0)
	if m.Eval(nx0, []bool{true, false, false}) {
		t.Errorf("NVar wrong")
	}
	if v, ok := m.VarOf(x0); !ok || v != 0 {
		t.Errorf("VarOf = %d,%v", v, ok)
	}
	if _, ok := m.VarOf(True); ok {
		t.Errorf("VarOf terminal should be !ok")
	}
}

func TestCanonicityAndSharing(t *testing.T) {
	m := New(4, nil)
	// x0∧x1 built twice must be the same node.
	a := m.And(m.Var(0), m.Var(1))
	b := m.And(m.Var(1), m.Var(0))
	if a != b {
		t.Errorf("AND not canonical: %d vs %d", a, b)
	}
	// (x0∧x1)∨¬(x0∧x1) = true.
	if m.Or(a, m.Not(a)) != True {
		t.Errorf("f ∨ ¬f != ⊤")
	}
	if m.And(a, m.Not(a)) != False {
		t.Errorf("f ∧ ¬f != ⊥")
	}
	if m.Xor(a, a) != False {
		t.Errorf("f ⊕ f != ⊥")
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%5
		ft := truthtable.Random(n, rng)
		gt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f, g := m.FromTruthTable(ft), m.FromTruthTable(gt)
		checks := []struct {
			name string
			node Node
			want *truthtable.Table
		}{
			{"and", m.And(f, g), ft.And(gt)},
			{"or", m.Or(f, g), ft.Or(gt)},
			{"xor", m.Xor(f, g), ft.Xor(gt)},
			{"not", m.Not(f), ft.Not()},
			{"implies", m.Implies(f, g), ft.Not().Or(gt)},
			{"equiv", m.Equiv(f, g), ft.Xor(gt).Not()},
		}
		for _, c := range checks {
			if !m.ToTruthTable(c.node).Equal(c.want) {
				t.Fatalf("n=%d %s: wrong function", n, c.name)
			}
		}
	}
}

func TestFromToTruthTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		n := 1 + trial%6
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(tt)
		if !m.ToTruthTable(f).Equal(tt) {
			t.Fatalf("round trip failed for n=%d %s order %v", n, tt.Hex(), m.Ordering())
		}
	}
}

func TestLevelCountsMatchDPProfile(t *testing.T) {
	// The structural cross-check of experiment E7: manager node counts
	// per level equal the DP's width profile for the same ordering.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%5
		tt := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		m := New(n, ord)
		f := m.FromTruthTable(tt)
		got := m.LevelCounts(f)
		want := core.Profile(tt, ord, core.OBDD, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d trial=%d: level %d count %d != DP width %d (f=%s ord=%v)",
					n, trial, i+1, got[i], want[i], tt.Hex(), ord)
			}
		}
	}
}

func TestManagerSizeMatchesDPOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		n := 3 + trial%4
		tt := truthtable.Random(n, rng)
		res := core.OptimalOrdering(tt, nil)
		m := New(n, res.Ordering)
		f := m.FromTruthTable(tt)
		if m.Size(f) != res.Size {
			t.Fatalf("manager size %d != DP optimal size %d", m.Size(f), res.Size)
		}
		if m.CountNodes(f) != res.MinCost {
			t.Fatalf("manager nodes %d != DP MinCost %d", m.CountNodes(f), res.MinCost)
		}
	}
}

func TestRestrictAndCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 5
	ft := truthtable.Random(n, rng)
	gt := truthtable.Random(n, rng)
	m := New(n, nil)
	f, g := m.FromTruthTable(ft), m.FromTruthTable(gt)
	for v := 0; v < n; v++ {
		for _, val := range []bool{false, true} {
			r := m.Restrict(f, v, val)
			// Evaluate against the definition.
			x := make([]bool, n)
			for idx := uint64(0); idx < ft.Size(); idx++ {
				for i := 0; i < n; i++ {
					x[i] = idx>>uint(i)&1 == 1
				}
				xx := append([]bool{}, x...)
				xx[v] = val
				if m.Eval(r, x) != ft.Eval(xx) {
					t.Fatalf("Restrict(%d,%v) wrong at %v", v, val, x)
				}
			}
		}
		// Compose: f[x_v := g] evaluated pointwise.
		c := m.Compose(f, v, g)
		x := make([]bool, n)
		for idx := uint64(0); idx < ft.Size(); idx++ {
			for i := 0; i < n; i++ {
				x[i] = idx>>uint(i)&1 == 1
			}
			xx := append([]bool{}, x...)
			xx[v] = gt.Eval(x)
			if m.Eval(c, x) != ft.Eval(xx) {
				t.Fatalf("Compose(%d) wrong at %v", v, x)
			}
		}
	}
}

func TestQuantification(t *testing.T) {
	m := New(3, nil)
	// f = x0∧x1 ∨ x2. ∃x2.f = true when x0∧x1 ∨ 1 possible → always true.
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	if m.Exists(f, bitops.Mask(0b100)) != True {
		t.Errorf("∃x2 (x0x1 ∨ x2) should be ⊤")
	}
	// ∀x2.f = x0∧x1.
	if m.Forall(f, bitops.Mask(0b100)) != m.And(m.Var(0), m.Var(1)) {
		t.Errorf("∀x2 wrong")
	}
	// ∃ over empty mask is identity.
	if m.Exists(f, 0) != f {
		t.Errorf("∃∅ not identity")
	}
	// ∃ over all vars of a satisfiable f is ⊤, ∀ of a non-tautology ⊥.
	if m.Exists(f, bitops.FullMask(3)) != True || m.Forall(f, bitops.FullMask(3)) != False {
		t.Errorf("full quantification wrong")
	}
}

func TestSatCountAndAnySat(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%6
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(tt)
		if m.SatCount(f) != tt.CountOnes() {
			t.Fatalf("SatCount %d != %d", m.SatCount(f), tt.CountOnes())
		}
		x, ok := m.AnySat(f)
		if ok != (tt.CountOnes() > 0) {
			t.Fatalf("AnySat ok mismatch")
		}
		if ok && !tt.Eval(x) {
			t.Fatalf("AnySat returned non-satisfying %v", x)
		}
	}
	m := New(2, nil)
	if _, ok := m.AnySat(False); ok {
		t.Errorf("AnySat(⊥) should be !ok")
	}
	if m.SatCount(True) != 4 {
		t.Errorf("SatCount(⊤) over 2 vars = %d, want 4", m.SatCount(True))
	}
}

func TestSupport(t *testing.T) {
	m := New(4, nil)
	f := m.Xor(m.Var(1), m.Var(3))
	if m.Support(f) != bitops.Mask(0b1010) {
		t.Errorf("Support = %#b", m.Support(f))
	}
	if m.Support(True) != 0 {
		t.Errorf("terminal support should be empty")
	}
}

func TestTransferPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%5
		tt := truthtable.Random(n, rng)
		src := New(n, truthtable.RandomOrdering(n, rng))
		f := src.FromTruthTable(tt)
		dst, roots := src.ReorderTo(truthtable.RandomOrdering(n, rng), f)
		if !dst.ToTruthTable(roots[0]).Equal(tt) {
			t.Fatalf("ReorderTo changed the function")
		}
	}
}

func TestReorderToOptimalShrinks(t *testing.T) {
	// Transfer an Achilles-heel diagram from the pessimal to the optimal
	// ordering and observe the exponential-to-linear collapse.
	pairs := 4
	f := truthtable.FromFunc(2*pairs, func(x []bool) bool {
		for i := 0; i < 2*pairs; i += 2 {
			if x[i] && x[i+1] {
				return true
			}
		}
		return false
	})
	res := core.OptimalOrdering(f, nil)
	blocked := make([]int, 0, 2*pairs)
	for i := 0; i < 2*pairs; i += 2 {
		blocked = append(blocked, i)
	}
	for i := 1; i < 2*pairs; i += 2 {
		blocked = append(blocked, i)
	}
	src := New(2*pairs, truthtable.FromRootFirst(blocked))
	root := src.FromTruthTable(f)
	if src.Size(root) != 1<<uint(pairs+1) {
		t.Fatalf("blocked size %d, want %d", src.Size(root), 1<<uint(pairs+1))
	}
	dst, roots := src.ReorderTo(res.Ordering, root)
	if dst.Size(roots[0]) != res.Size {
		t.Fatalf("optimal transfer size %d, want %d", dst.Size(roots[0]), res.Size)
	}
}

func TestDOTOutput(t *testing.T) {
	m := New(2, nil)
	f := m.And(m.Var(0), m.Var(1))
	dot := m.DOT(f, "and2")
	for _, want := range []string{"digraph", "x1", "x2", "shape=box", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	m := New(2, nil)
	for name, fn := range map[string]func(){
		"bad ordering":  func() { New(2, truthtable.Ordering{0, 0}) },
		"var range":     func() { m.Var(5) },
		"nvar range":    func() { m.NVar(-1) },
		"eval length":   func() { m.Eval(True, []bool{true}) },
		"tt mismatch":   func() { m.FromTruthTable(truthtable.New(3)) },
		"transfer vars": func() { Transfer(m, True, New(3, nil)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEquivalenceCheckingScenario(t *testing.T) {
	// Two structurally different implementations of the same function
	// must reach the identical node (the application of §1.1).
	m := New(3, nil)
	// Implementation 1: carry of a full adder: ab + c(a⊕b).
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	impl1 := m.Or(m.And(a, b), m.And(c, m.Xor(a, b)))
	// Implementation 2: majority(a, b, c).
	impl2 := m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c))
	if impl1 != impl2 {
		t.Errorf("equivalent circuits got different nodes")
	}
	// A buggy variant (OR where AND belongs in the first term) differs.
	bug := m.Or(m.Or(a, b), m.And(c, m.Xor(a, b)))
	if bug == impl1 {
		t.Errorf("non-equivalent circuit compared equal")
	}
	cex, ok := m.AnySat(m.Xor(bug, impl1))
	if !ok {
		t.Fatalf("no counterexample for buggy circuit")
	}
	if m.Eval(bug, cex) == m.Eval(impl1, cex) {
		t.Errorf("counterexample does not distinguish")
	}
}

func TestLevelNodesGroupsAndSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		tt := truthtable.Random(n, rng)
		m := New(n, nil)
		f := m.FromTruthTable(tt)
		levels := m.LevelNodes(f)
		if len(levels) != n {
			t.Fatalf("LevelNodes returned %d levels for n=%d", len(levels), n)
		}
		counts := m.LevelCounts(f)
		var total uint64
		seen := map[Node]bool{}
		for lvl, ns := range levels {
			// Group sizes agree with LevelCounts (bottom-up indexed there).
			if uint64(len(ns)) != counts[n-1-lvl] {
				t.Fatalf("level %d has %d nodes, LevelCounts says %d", lvl, len(ns), counts[n-1-lvl])
			}
			for i, g := range ns {
				if g == True || g == False {
					t.Fatalf("terminal %v in level %d", g, lvl)
				}
				if seen[g] {
					t.Fatalf("node %v appears twice", g)
				}
				seen[g] = true
				if int(m.level(g)) != lvl {
					t.Fatalf("node %v grouped at level %d but carries level %d", g, lvl, m.level(g))
				}
				if i > 0 && ns[i-1] >= g {
					t.Fatalf("level %d not in ascending node order", lvl)
				}
				// Children sit strictly deeper or are terminals.
				lo, hi, _ := m.Children(g)
				for _, c := range []Node{lo, hi} {
					if c != True && c != False && int(m.level(c)) <= lvl {
						t.Fatalf("child %v of %v does not sit deeper", c, g)
					}
				}
			}
			total += uint64(len(ns))
		}
		if total != m.CountNodes(f) {
			t.Fatalf("LevelNodes covers %d nodes, CountNodes says %d", total, m.CountNodes(f))
		}
	}
	// Constants yield all-empty levels.
	m := New(3, nil)
	for _, lvls := range [][][]Node{m.LevelNodes(True), m.LevelNodes(False)} {
		for lvl, ns := range lvls {
			if len(ns) != 0 {
				t.Fatalf("constant has %d nodes at level %d", len(ns), lvl)
			}
		}
	}
}
