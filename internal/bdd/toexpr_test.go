package bdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/expr"
	"obddopt/internal/truthtable"
)

func TestToExprRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 30; trial++ {
		n := 1 + trial%6
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(tt)
		e := m.ToExpr(f)
		back, err := expr.ToTruthTable(e, n)
		if err != nil {
			t.Fatalf("compile extracted formula: %v", err)
		}
		if !back.Equal(tt) {
			t.Fatalf("n=%d: extracted formula differs (f=%s, expr=%s)", n, tt.Hex(), e.String())
		}
		// And it reparses from its own rendering.
		reparsed, err := expr.Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		back2, _ := expr.ToTruthTable(reparsed, n)
		if !back2.Equal(tt) {
			t.Fatalf("reparse changed semantics")
		}
	}
}

func TestToExprTerminalsAndSimplifications(t *testing.T) {
	m := New(3, nil)
	if m.ToExpr(True).String() != "1" || m.ToExpr(False).String() != "0" {
		t.Errorf("terminal extraction wrong")
	}
	if got := m.ToExpr(m.Var(1)).String(); got != "x2" {
		t.Errorf("Var extraction = %q", got)
	}
	if got := m.ToExpr(m.Not(m.Var(0))).String(); got != "!x1" {
		t.Errorf("NVar extraction = %q", got)
	}
	// x0 ∧ x1 extracts without redundant branches.
	and := m.And(m.Var(0), m.Var(1))
	if got := m.ToExpr(and).String(); got != "(x1 & x2)" {
		t.Errorf("AND extraction = %q", got)
	}
	or := m.Or(m.Var(0), m.Var(1))
	if got := m.ToExpr(or).String(); got != "(x1 | x2)" {
		t.Errorf("OR extraction = %q", got)
	}
}
