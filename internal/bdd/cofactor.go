package bdd

// Generalized cofactors and satisfying-assignment enumeration — the
// don't-care minimization operators of production BDD packages
// (Coudert–Madre), used when a function only matters on a care set.

// Constrain returns the Coudert–Madre generalized cofactor f ↓ c: a
// function agreeing with f everywhere c holds, obtained by mapping each
// assignment outside c to the "nearest" assignment inside it. The
// defining property (tested) is (f ↓ c) ∧ c ≡ f ∧ c. Constrain(f, ⊥)
// is ⊥ by convention.
func (m *Manager) Constrain(f, c Node) Node {
	memo := map[iteKey]Node{}
	var rec func(f, c Node) Node
	rec = func(f, c Node) Node {
		switch {
		case c == False:
			return False
		case c == True || f == True || f == False:
			return f
		case f == c:
			return True
		}
		key := iteKey{f, c, 0}
		if r, ok := memo[key]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(c); l < top {
			top = l
		}
		f0, f1 := m.cofactorsAt(f, top)
		c0, c1 := m.cofactorsAt(c, top)
		var r Node
		switch {
		case c0 == False:
			r = rec(f1, c1)
		case c1 == False:
			r = rec(f0, c0)
		default:
			r = m.mk(top, rec(f0, c0), rec(f1, c1))
		}
		memo[key] = r
		return r
	}
	return rec(f, c)
}

// RestrictTo returns Coudert–Madre's restrict operator: like Constrain it
// agrees with f on c ((RestrictTo(f,c) ∧ c) ≡ (f ∧ c)), but it
// existentially quantifies care-set variables that f does not test at the
// top, which avoids Constrain's occasional size blowups. (Named
// RestrictTo because Restrict is the positional cofactor method.)
func (m *Manager) RestrictTo(f, c Node) Node {
	memo := map[iteKey]Node{}
	var rec func(f, c Node) Node
	rec = func(f, c Node) Node {
		switch {
		case c == False:
			return False
		case c == True || f == True || f == False:
			return f
		case f == c:
			return True
		}
		key := iteKey{f, c, 0}
		if r, ok := memo[key]; ok {
			return r
		}
		var r Node
		if m.level(c) < m.level(f) {
			// The care set tests a variable above f's support: drop it
			// existentially.
			d := m.nodes[c]
			r = rec(f, m.Or(d.lo, d.hi))
		} else {
			top := m.level(f)
			f0, f1 := m.cofactorsAt(f, top)
			c0, c1 := m.cofactorsAt(c, top)
			switch {
			case c0 == False:
				r = rec(f1, c1)
			case c1 == False:
				r = rec(f0, c0)
			default:
				r = m.mk(top, rec(f0, c0), rec(f1, c1))
			}
		}
		memo[key] = r
		return r
	}
	return rec(f, c)
}

// Cube is a partial assignment: Values[v] is 0 or 1 for bound variables
// and -1 for don't-cares.
type Cube struct {
	Values []int8
}

// Count returns the number of complete assignments the cube covers over
// n variables.
func (c Cube) Count() uint64 {
	free := 0
	for _, v := range c.Values {
		if v < 0 {
			free++
		}
	}
	return 1 << uint(free)
}

// AllSat returns the satisfying assignments of f as a disjoint list of
// cubes (one per root-to-⊤ path, unset variables as don't-cares). The
// cube counts sum to SatCount(f).
func (m *Manager) AllSat(f Node) []Cube {
	var out []Cube
	vals := make([]int8, m.nvars)
	for i := range vals {
		vals[i] = -1
	}
	var rec func(Node)
	rec = func(g Node) {
		switch g {
		case False:
			return
		case True:
			out = append(out, Cube{Values: append([]int8{}, vals...)})
			return
		}
		d := m.nodes[g]
		v := m.varAtLevel[d.level]
		vals[v] = 0
		rec(d.lo)
		vals[v] = 1
		rec(d.hi)
		vals[v] = -1
	}
	rec(f)
	return out
}
