package bdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

func TestConstrainAgreementProperty(t *testing.T) {
	// (f ↓ c) ∧ c ≡ f ∧ c for random f, c.
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%5
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(truthtable.Random(n, rng))
		c := m.FromTruthTable(truthtable.Random(n, rng))
		fc := m.Constrain(f, c)
		if m.And(fc, c) != m.And(f, c) {
			t.Fatalf("n=%d: (f↓c)∧c != f∧c", n)
		}
	}
}

func TestConstrainSpecialCases(t *testing.T) {
	m := New(3, nil)
	f := m.Xor(m.Var(0), m.Var(1))
	if m.Constrain(f, False) != False {
		t.Errorf("f↓⊥ != ⊥")
	}
	if m.Constrain(f, True) != f {
		t.Errorf("f↓⊤ != f")
	}
	if m.Constrain(f, f) != True {
		t.Errorf("f↓f != ⊤")
	}
	if m.Constrain(True, m.Var(2)) != True {
		t.Errorf("⊤↓c != ⊤")
	}
	// Constraining to a single minterm yields a constant.
	minterm := m.And(m.And(m.Var(0), m.Not(m.Var(1))), m.Var(2))
	got := m.Constrain(f, minterm)
	if got != True { // f(1,0,·) = 1
		t.Errorf("f↓minterm = %v, want ⊤", got)
	}
}

func TestRestrictToAgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%5
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(truthtable.Random(n, rng))
		c := m.FromTruthTable(truthtable.Random(n, rng))
		fr := m.RestrictTo(f, c)
		if m.And(fr, c) != m.And(f, c) {
			t.Fatalf("n=%d: restrict agreement fails", n)
		}
	}
}

func TestRestrictToDropsUpperCareVars(t *testing.T) {
	// f depends only on x2, x3 (deep); c constrains x1 (top): restrict
	// must ignore x1 entirely and return f when both branches of c keep
	// f's care region full.
	m := New(3, nil) // natural: x1 at the root
	f := m.Xor(m.Var(1), m.Var(2))
	c := m.Var(0)
	if got := m.RestrictTo(f, c); got != f {
		t.Errorf("restrict with upper care var should return f unchanged")
	}
}

func TestConstrainCanExceedRestrict(t *testing.T) {
	// Both operators satisfy the agreement property; restrict never
	// introduces variables outside f's support while constrain can.
	rng := rand.New(rand.NewSource(183))
	n := 6
	m := New(n, nil)
	// f over the deep half only.
	fTT := truthtable.Random(3, rng)
	f := m.ITE(m.Var(3), m.FromTruthTable(expand(fTT, n)), m.FromTruthTable(expand(fTT, n)))
	c := m.FromTruthTable(truthtable.Random(n, rng))
	fr := m.RestrictTo(f, c)
	support := m.Support(fr)
	if support&^m.Support(f)&^m.Support(c) != 0 {
		t.Errorf("restrict introduced variables outside both supports")
	}
}

// expand lifts a 3-variable table to n variables on variables 0..2.
func expand(tt *truthtable.Table, n int) *truthtable.Table {
	return truthtable.FromFunc(n, func(x []bool) bool {
		return tt.Eval(x[:3])
	})
}

func TestAllSatCountsMatchSatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%6
		m := New(n, truthtable.RandomOrdering(n, rng))
		tt := truthtable.Random(n, rng)
		f := m.FromTruthTable(tt)
		cubes := m.AllSat(f)
		var total uint64
		for _, c := range cubes {
			total += c.Count()
			// Every completion of the cube satisfies f.
			x := make([]bool, n)
			var fill func(i int) bool
			fill = func(i int) bool {
				if i == n {
					return tt.Eval(x)
				}
				switch c.Values[i] {
				case 0:
					x[i] = false
					return fill(i + 1)
				case 1:
					x[i] = true
					return fill(i + 1)
				default:
					x[i] = false
					if !fill(i + 1) {
						return false
					}
					x[i] = true
					return fill(i + 1)
				}
			}
			if !fill(0) {
				t.Fatalf("cube %v contains a non-satisfying completion", c.Values)
			}
		}
		if total != m.SatCount(f) {
			t.Fatalf("n=%d: cube counts %d != SatCount %d", n, total, m.SatCount(f))
		}
	}
}

func TestAllSatTerminals(t *testing.T) {
	m := New(2, nil)
	if len(m.AllSat(False)) != 0 {
		t.Errorf("AllSat(⊥) not empty")
	}
	cubes := m.AllSat(True)
	if len(cubes) != 1 || cubes[0].Count() != 4 {
		t.Errorf("AllSat(⊤) = %v", cubes)
	}
}
