// Package bdd is a shared-node ordered-binary-decision-diagram package: a
// unique-table-based node manager with memoized ITE/apply operations,
// restriction, composition, quantification, satisfiability counting and
// DOT export. It serves two roles in this repository:
//
//   - an independent cross-check of the dynamic program: building the
//     diagram of a function under the DP's optimal ordering and counting
//     its nodes must reproduce the DP's MINCOST (experiment E7);
//   - the substrate for the application examples (combinational
//     equivalence checking, the VLSI motivation of the papers).
//
// Node convention: Node is an index into the manager's node table; the
// terminals are False = 0 and True = 1. Internally nodes live at levels
// numbered root-first (level 0 is the topmost); the package accepts and
// reports orderings in the repository-wide bottom-up convention of
// truthtable.Ordering and converts at the boundary.
package bdd

import (
	"fmt"
	"sort"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// Node identifies a BDD node within its Manager.
type Node uint32

// Terminal nodes, shared by all managers.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  uint32 // root-first level of the node's variable
	lo, hi Node   // 0-edge and 1-edge destinations
}

type pairLevelKey struct {
	level  uint32
	lo, hi Node
}

type iteKey struct{ f, g, h Node }

// Manager owns a collection of shared BDD nodes over a fixed variable
// ordering. All Nodes returned by a Manager are only meaningful with that
// Manager. Managers are not safe for concurrent use.
type Manager struct {
	nvars      int
	varAtLevel []int // varAtLevel[level] = variable index (root-first)
	levelOfVar []int
	nodes      []nodeData
	unique     map[pairLevelKey]Node
	iteCache   map[iteKey]Node
}

// New returns a manager over n variables using the given bottom-up
// ordering; a nil ordering selects the natural ordering (variable 0 at the
// root). The ordering is copied.
func New(n int, order truthtable.Ordering) *Manager {
	if order == nil {
		order = truthtable.ReverseOrdering(n)
	}
	if len(order) != n || !order.Valid() {
		panic("bdd: ordering is not a permutation of the variables")
	}
	m := &Manager{
		nvars:      n,
		varAtLevel: order.RootFirst(),
		levelOfVar: make([]int, n),
		// Terminal sentinels occupy slots 0 and 1 with level = nvars.
		nodes:    []nodeData{{level: uint32(n)}, {level: uint32(n)}},
		unique:   make(map[pairLevelKey]Node),
		iteCache: make(map[iteKey]Node),
	}
	for lvl, v := range m.varAtLevel {
		m.levelOfVar[v] = lvl
	}
	return m
}

// NumVars returns the number of variables of the manager.
func (m *Manager) NumVars() int { return m.nvars }

// Ordering returns the manager's variable ordering, bottom-up.
func (m *Manager) Ordering() truthtable.Ordering {
	return truthtable.FromRootFirst(append([]int{}, m.varAtLevel...))
}

// NumNodes returns the total number of nodes the manager has allocated
// (including the two terminals); a measure of memory, not of any single
// function's size.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// level returns the root-first level of node f (nvars for terminals).
func (m *Manager) level(f Node) uint32 { return m.nodes[f].level }

// mk returns the canonical node (level, lo, hi), applying the OBDD
// reduction rule and the unique table.
func (m *Manager) mk(level uint32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := pairLevelKey{level, lo, hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique[key] = n
	return n
}

// Constant returns the terminal for v.
func (m *Manager) Constant(v bool) Node {
	if v {
		return True
	}
	return False
}

// Var returns the function x_v.
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.nvars {
		panic("bdd: Var index out of range")
	}
	return m.mk(uint32(m.levelOfVar[v]), False, True)
}

// NVar returns the function ¬x_v.
func (m *Manager) NVar(v int) Node {
	if v < 0 || v >= m.nvars {
		panic("bdd: NVar index out of range")
	}
	return m.mk(uint32(m.levelOfVar[v]), True, False)
}

// VarOf returns the variable tested by node f; ok is false for terminals.
func (m *Manager) VarOf(f Node) (v int, ok bool) {
	lvl := m.level(f)
	if lvl >= uint32(m.nvars) {
		return 0, false
	}
	return m.varAtLevel[lvl], true
}

// Cofactors returns the children (lo, hi) of f with respect to the
// variable at the given level: if f tests a deeper variable, both
// cofactors are f itself.
func (m *Manager) cofactorsAt(f Node, level uint32) (lo, hi Node) {
	if m.level(f) == level {
		d := m.nodes[f]
		return d.lo, d.hi
	}
	return f, f
}

// ITE computes if-then-else(f, g, h) = f·g + f̄·h, the universal binary
// operator of Brace–Rudell–Bryant.
func (m *Manager) ITE(f, g, h Node) Node {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := iteKey{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactorsAt(f, top)
	g0, g1 := m.cofactorsAt(g, top)
	h0, h1 := m.cofactorsAt(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.iteCache[key] = r
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Node) Node { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Node) Node { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Node) Node { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Node) Node { return m.ITE(f, m.Not(g), g) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Node) Node { return m.ITE(f, g, True) }

// Equiv returns f ↔ g.
func (m *Manager) Equiv(f, g Node) Node { return m.ITE(f, g, m.Not(g)) }

// Restrict returns f with variable v fixed to val.
func (m *Manager) Restrict(f Node, v int, val bool) Node {
	level := uint32(m.levelOfVar[v])
	memo := map[Node]Node{}
	var rec func(Node) Node
	rec = func(g Node) Node {
		if m.level(g) > level {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		d := m.nodes[g]
		var r Node
		if d.level == level {
			if val {
				r = d.hi
			} else {
				r = d.lo
			}
		} else {
			r = m.mk(d.level, rec(d.lo), rec(d.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Compose returns f with variable v replaced by the function g:
// f[x_v := g] = ITE(g, f|_{v=1}, f|_{v=0}).
func (m *Manager) Compose(f Node, v int, g Node) Node {
	return m.ITE(g, m.Restrict(f, v, true), m.Restrict(f, v, false))
}

// Exists returns ∃ vars. f, quantifying over the variables in the mask.
func (m *Manager) Exists(f Node, vars bitops.Mask) Node {
	return m.quantify(f, vars, true)
}

// Forall returns ∀ vars. f.
func (m *Manager) Forall(f Node, vars bitops.Mask) Node {
	return m.quantify(f, vars, false)
}

func (m *Manager) quantify(f Node, vars bitops.Mask, existential bool) Node {
	memo := map[Node]Node{}
	var rec func(Node) Node
	rec = func(g Node) Node {
		if g == True || g == False {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		d := m.nodes[g]
		v := m.varAtLevel[d.level]
		lo, hi := rec(d.lo), rec(d.hi)
		var r Node
		if vars.Has(v) {
			if existential {
				r = m.Or(lo, hi)
			} else {
				r = m.And(lo, hi)
			}
		} else {
			r = m.mk(d.level, lo, hi)
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f on the assignment x (x[i] = value of variable i).
func (m *Manager) Eval(f Node, x []bool) bool {
	if len(x) != m.nvars {
		panic("bdd: Eval assignment length mismatch")
	}
	for f != True && f != False {
		d := m.nodes[f]
		if x[m.varAtLevel[d.level]] {
			f = d.hi
		} else {
			f = d.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// nvars variables.
func (m *Manager) SatCount(f Node) uint64 {
	memo := map[Node]uint64{}
	var rec func(g Node) uint64 // returns count over variables below g's level
	rec = func(g Node) uint64 {
		if g == False {
			return 0
		}
		if g == True {
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		d := m.nodes[g]
		c := rec(d.lo)<<uint(m.level(d.lo)-d.level-1) +
			rec(d.hi)<<uint(m.level(d.hi)-d.level-1)
		memo[g] = c
		return c
	}
	return rec(f) << uint(m.level(f))
}

// AnySat returns a satisfying assignment of f, or ok = false if f is
// unsatisfiable. Unconstrained variables are reported false.
func (m *Manager) AnySat(f Node) (x []bool, ok bool) {
	if f == False {
		return nil, false
	}
	x = make([]bool, m.nvars)
	for f != True {
		d := m.nodes[f]
		v := m.varAtLevel[d.level]
		if d.lo != False {
			f = d.lo
		} else {
			x[v] = true
			f = d.hi
		}
	}
	return x, true
}

// Support returns the mask of variables the function f depends on.
func (m *Manager) Support(f Node) bitops.Mask {
	var sup bitops.Mask
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		d := m.nodes[g]
		sup = sup.With(m.varAtLevel[d.level])
		rec(d.lo)
		rec(d.hi)
	}
	rec(f)
	return sup
}

// CountNodes returns the number of nonterminal nodes reachable from f.
func (m *Manager) CountNodes(f Node) uint64 {
	var count uint64
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		count++
		rec(m.nodes[g].lo)
		rec(m.nodes[g].hi)
	}
	rec(f)
	return count
}

// Size returns the diagram size of f counted as the papers count it:
// reachable nonterminal nodes plus reachable terminals.
func (m *Manager) Size(f Node) uint64 {
	terms := map[Node]bool{}
	seen := map[Node]bool{}
	var count uint64
	var rec func(Node)
	rec = func(g Node) {
		if g == True || g == False {
			terms[g] = true
			return
		}
		if seen[g] {
			return
		}
		seen[g] = true
		count++
		rec(m.nodes[g].lo)
		rec(m.nodes[g].hi)
	}
	rec(f)
	return count + uint64(len(terms))
}

// LevelCounts returns the number of reachable nodes per level, indexed
// bottom-up to match core.Result.Profile: LevelCounts(f)[i] is the width
// of level i+1 (the level whose variable is Ordering()[i]).
func (m *Manager) LevelCounts(f Node) []uint64 {
	counts := make([]uint64, m.nvars)
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		d := m.nodes[g]
		counts[uint32(m.nvars)-1-d.level]++
		rec(d.lo)
		rec(d.hi)
	}
	rec(f)
	return counts
}

// LevelNodes returns the nonterminal nodes reachable from f grouped by
// root-first level: LevelNodes(f)[lvl] lists the nodes testing the
// variable at level lvl, in ascending Node order (allocation order, not
// canonical). Levels skipped by the reduction rule are empty slices.
// This is the traversal the artifact serializer (internal/artifact)
// builds its level-indexed encoding from.
func (m *Manager) LevelNodes(f Node) [][]Node {
	levels := make([][]Node, m.nvars)
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		d := m.nodes[g]
		levels[d.level] = append(levels[d.level], g)
		rec(d.lo)
		rec(d.hi)
	}
	rec(f)
	for _, ns := range levels {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return levels
}

// Equal reports whether two nodes of this manager denote the same
// function; by canonicity this is pointer equality.
func (m *Manager) Equal(f, g Node) bool { return f == g }

// Children returns the (lo, hi) children of a nonterminal node.
func (m *Manager) Children(f Node) (lo, hi Node, ok bool) {
	if f == True || f == False {
		return 0, 0, false
	}
	d := m.nodes[f]
	return d.lo, d.hi, true
}

// String renders a node for diagnostics.
func (m *Manager) NodeString(f Node) string {
	switch f {
	case False:
		return "⊥"
	case True:
		return "⊤"
	}
	v, _ := m.VarOf(f)
	d := m.nodes[f]
	return fmt.Sprintf("n%d(x%d, lo=%d, hi=%d)", f, v+1, d.lo, d.hi)
}
