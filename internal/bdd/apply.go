package bdd

import "fmt"

// BinaryOp is a two-argument Boolean connective given by its truth table:
// bit (2·a + b) of the value is op(a, b). The sixteen possible ops cover
// every binary connective; the named constants below are the common ones.
type BinaryOp uint8

// The common connectives as BinaryOp tables.
const (
	OpAnd  BinaryOp = 0b1000
	OpOr   BinaryOp = 0b1110
	OpXor  BinaryOp = 0b0110
	OpNand BinaryOp = 0b0111
	OpNor  BinaryOp = 0b0001
	OpXnor BinaryOp = 0b1001
	OpImp  BinaryOp = 0b1011 // a → b
	OpDiff BinaryOp = 0b0100 // a ∧ ¬b
)

// Eval applies the connective to two Boolean values.
func (op BinaryOp) Eval(a, b bool) bool {
	idx := 0
	if a {
		idx |= 2
	}
	if b {
		idx |= 1
	}
	return op>>uint(idx)&1 == 1
}

// String names the common connectives.
func (op BinaryOp) String() string {
	switch op {
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpXor:
		return "XOR"
	case OpNand:
		return "NAND"
	case OpNor:
		return "NOR"
	case OpXnor:
		return "XNOR"
	case OpImp:
		return "IMP"
	case OpDiff:
		return "DIFF"
	}
	return fmt.Sprintf("Op(%04b)", uint8(op))
}

// Apply combines f and g with an arbitrary binary connective — Bryant's
// original apply algorithm, generalized over the op truth table. For the
// common connectives it is equivalent to the dedicated ITE-based methods.
func (m *Manager) Apply(op BinaryOp, f, g Node) Node {
	type key struct {
		f, g Node
		op   BinaryOp
	}
	memo := map[key]Node{}
	var rec func(f, g Node) Node
	rec = func(f, g Node) Node {
		if (f == True || f == False) && (g == True || g == False) {
			if op.Eval(f == True, g == True) {
				return True
			}
			return False
		}
		// Short circuits: if one argument is terminal and the op column
		// for it is constant, the result is that constant.
		if f == True || f == False {
			if c, ok := constantColumn(op, f == True, true); ok {
				return m.Constant(c)
			}
		}
		if g == True || g == False {
			if c, ok := constantColumn(op, g == True, false); ok {
				return m.Constant(c)
			}
		}
		k := key{f, g, op}
		if r, ok := memo[k]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(g); l < top {
			top = l
		}
		f0, f1 := m.cofactorsAt(f, top)
		g0, g1 := m.cofactorsAt(g, top)
		r := m.mk(top, rec(f0, g0), rec(f1, g1))
		memo[k] = r
		return r
	}
	return rec(f, g)
}

// constantColumn reports whether fixing one argument of op to val makes
// the result independent of the other argument, and the constant result.
// first selects which argument is fixed.
func constantColumn(op BinaryOp, val, first bool) (result, ok bool) {
	var a, b bool
	if first {
		a = val
		r0 := op.Eval(a, false)
		r1 := op.Eval(a, true)
		return r0, r0 == r1
	}
	b = val
	r0 := op.Eval(false, b)
	r1 := op.Eval(true, b)
	return r0, r0 == r1
}
