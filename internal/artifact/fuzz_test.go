package artifact_test

import (
	"bytes"
	"errors"
	"testing"

	"obddopt/internal/artifact"
	"obddopt/internal/truthtable"
)

// FuzzArtifactRoundTrip drives both directions of the codec contract:
//
//   - Arbitrary bytes through Decode must never panic; rejections carry
//     exactly one of the typed sentinels, and any accepted stream is
//     canonical (re-encoding reproduces the input byte for byte).
//   - Bytes read as a truth table must survive Build → Encode → Decode
//     node-identically, with SatCount agreeing with the table's
//     population count.
//
// Seed corpus lives under testdata/fuzz/FuzzArtifactRoundTrip.
func FuzzArtifactRoundTrip(f *testing.F) {
	// Valid artifacts of a few shapes, plus near-misses.
	for _, tt := range []*truthtable.Table{
		truthtable.New(0),
		truthtable.New(3),
		parityTable(2),
		parityTable(5),
	} {
		a, err := artifact.Build(tt, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(a.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte("OBDa"))
	f.Add([]byte("OBDa\x01\x02\x01\x00\x01\x01\x03"))
	f.Add([]byte("not an artifact at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := artifact.Decode(data)
		if err != nil {
			if !errors.Is(err, artifact.ErrBadMagic) && !errors.Is(err, artifact.ErrBadVersion) &&
				!errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrCorrupt) {
				t.Fatalf("Decode error %v lacks a typed sentinel", err)
			}
		} else {
			if re := a.Encode(); !bytes.Equal(re, data) {
				t.Fatalf("accepted stream is not canonical: decode→encode changed %x to %x", data, re)
			}
			if ord, oerr := artifact.DecodedOrdering(data); oerr != nil {
				t.Fatalf("full Decode accepted what DecodedOrdering rejects: %v", oerr)
			} else if len(ord) != a.NumVars() {
				t.Fatalf("header ordering arity %d, artifact has %d variables", len(ord), a.NumVars())
			}
			if a.SatCount() > uint64(1)<<uint(a.NumVars()) {
				t.Fatalf("SatCount %d exceeds the %d-variable assignment space", a.SatCount(), a.NumVars())
			}
		}

		// Second direction: the same bytes as a function. First byte picks
		// the arity, the rest fill the table cyclically.
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 7
		tt := truthtable.New(n)
		body := data[1:]
		if len(body) > 0 {
			for idx := uint64(0); idx < tt.Size(); idx++ {
				byteAt := body[idx/8%uint64(len(body))]
				tt.Set(idx, byteAt>>(idx%8)&1 == 1)
			}
		}
		built, err := artifact.Build(tt, nil)
		if err != nil {
			t.Fatalf("Build on a %d-variable table: %v", n, err)
		}
		dec, err := artifact.Decode(built.Encode())
		if err != nil {
			t.Fatalf("decode of a fresh encode: %v", err)
		}
		if !built.Equal(dec) {
			t.Fatal("decode(encode(f)) is not node-identical to f")
		}
		if got, want := dec.SatCount(), tt.CountOnes(); got != want {
			t.Fatalf("SatCount %d, table has %d ones", got, want)
		}
	})
}

// parityTable builds the n-variable parity function without importing
// internal/funcs into the fuzz path.
func parityTable(n int) *truthtable.Table {
	tt := truthtable.New(n)
	for idx := uint64(0); idx < tt.Size(); idx++ {
		v := false
		for b := 0; b < n; b++ {
			v = v != (idx>>uint(b)&1 == 1)
		}
		tt.Set(idx, v)
	}
	return tt
}
