// Package artifact is the compact binary OBDD result format of the
// solve service: the reduced ordered BDD of a function under a concrete
// variable ordering, serialized level-indexed with bit-packed edges so
// equal functions under equal orderings produce byte-identical bytes.
//
// The representation follows the level-indexed school of BDD
// compression (Hansen/Rao/Tiedemann, "Compressing Binary Decision
// Diagrams"): random access into the node table is traded away, and in
// exchange every edge is addressed relative to how many nodes can
// possibly be its target. Nodes are emitted level by level from the
// bottom (the level adjacent to the terminals) upward, so an edge from
// level ℓ can only point at the two terminals or at a node of a deeper
// level — an id in [0, base_ℓ) where base_ℓ = 2 + Σ_{k>ℓ} count_k —
// and is stored in exactly ⌈log₂ base_ℓ⌉ bits. Within a level, nodes
// are sorted by their (lo, hi) id pair, which makes the id assignment —
// and therefore the whole byte stream — a pure function of (function,
// ordering): the canonical form the content-addressed result store
// keys on.
//
// Analytics ride on the decoded form without rebuilding a node
// manager: NodeCount is a header field sum, and SatCount runs Clément's
// iterative bottom-up counting pass over the node arrays — children
// always precede parents in emission order, so one linear scan
// suffices.
package artifact

import (
	"fmt"

	"obddopt/internal/bdd"
	"obddopt/internal/truthtable"
)

// Artifact is a decoded (or freshly built) OBDD in canonical
// level-indexed form. The zero value is not meaningful; obtain one from
// Build or Decode. An Artifact is immutable after construction and safe
// for concurrent use.
type Artifact struct {
	n        int
	ordering truthtable.Ordering // bottom-up, as everywhere in this module
	counts   []uint32            // nodes per root-first level; len n
	// Node storage in emission (canonical) order: levels bottom-up,
	// within a level ascending (lo, hi). Node index i carries edge ids
	// lo[i], hi[i]; id space is 0 = False, 1 = True, i+2 = node i.
	lo, hi []uint32
	// level[i] is the root-first level of node i (derived, not stored
	// on the wire).
	level []uint8
	// root is the id of the function's root: total+1 for nonconstant
	// functions (the last node emitted), 0 or 1 for constants.
	root uint32
}

// NumVars returns the artifact's variable count.
func (a *Artifact) NumVars() int { return a.n }

// Ordering returns the artifact's variable ordering (bottom-up); the
// slice is a copy.
func (a *Artifact) Ordering() truthtable.Ordering { return a.ordering.Clone() }

// NodeCount returns the number of nonterminal nodes of the diagram —
// the quantity the dynamic program calls MINCOST under the OBDD rule.
func (a *Artifact) NodeCount() uint64 { return uint64(len(a.lo)) }

// LevelCounts returns the nodes per root-first level (a copy).
func (a *Artifact) LevelCounts() []uint32 {
	return append([]uint32(nil), a.counts...)
}

// Build constructs the canonical artifact of tt's reduced OBDD under
// the given bottom-up ordering (nil selects the natural ordering). The
// diagram is materialized once through a bdd.Manager and re-enumerated
// into canonical ids; the O(2^n) fold is the dominant cost, far below
// any exact solve on the same table.
func Build(tt *truthtable.Table, order truthtable.Ordering) (*Artifact, error) {
	if tt == nil {
		return nil, fmt.Errorf("artifact: nil truth table")
	}
	n := tt.NumVars()
	if order == nil {
		order = truthtable.ReverseOrdering(n)
	}
	if len(order) != n || !order.Valid() {
		return nil, fmt.Errorf("artifact: ordering %v is not a permutation of %d variables", order, n)
	}
	m := bdd.New(n, order)
	root := m.FromTruthTable(tt)
	levels := m.LevelNodes(root)

	a := &Artifact{
		n:        n,
		ordering: order.Clone(),
		counts:   make([]uint32, n),
	}
	// Canonical re-enumeration: bottom level first, each level sorted by
	// the (lo, hi) pair of already-canonical child ids.
	idOf := map[bdd.Node]uint32{bdd.False: 0, bdd.True: 1}
	next := uint32(2)
	for lvl := n - 1; lvl >= 0; lvl-- {
		ns := levels[lvl]
		if len(ns) == 0 {
			continue
		}
		ps := make([]packed, len(ns))
		for i, g := range ns {
			lo, hi, _ := m.Children(g)
			ps[i] = packed{lo: idOf[lo], hi: idOf[hi], src: g}
		}
		sortPacked(ps)
		for _, p := range ps {
			idOf[p.src] = next
			next++
			a.lo = append(a.lo, p.lo)
			a.hi = append(a.hi, p.hi)
			a.level = append(a.level, uint8(lvl))
		}
		a.counts[lvl] = uint32(len(ns))
	}
	a.root = idOf[root]
	return a, nil
}

// packed is one node mid-canonicalization: its children's canonical ids
// and the manager node it came from.
type packed struct {
	lo, hi uint32
	src    bdd.Node
}

// sortPacked orders a level's nodes by (lo, hi) ascending — the
// canonical within-level order. Insertion sort: levels of exact-solve
// diagrams are small, and the comparator is two integer compares.
func sortPacked(ps []packed) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].lo < ps[j-1].lo || (ps[j].lo == ps[j-1].lo && ps[j].hi < ps[j-1].hi)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// levelOfID returns the root-first level of an edge target id (n for
// the terminals).
func (a *Artifact) levelOfID(id uint32) int {
	if id < 2 {
		return a.n
	}
	return int(a.level[id-2])
}

// Eval evaluates the diagram on the assignment x (x[i] = value of
// variable i), walking root to terminal.
func (a *Artifact) Eval(x []bool) (bool, error) {
	if len(x) != a.n {
		return false, fmt.Errorf("artifact: Eval assignment length %d, want %d", len(x), a.n)
	}
	varAtLevel := a.ordering.RootFirst()
	id := a.root
	for id >= 2 {
		i := id - 2
		if x[varAtLevel[a.level[i]]] {
			id = a.hi[i]
		} else {
			id = a.lo[i]
		}
	}
	return id == 1, nil
}

// ToTruthTable materializes the function the artifact denotes.
func (a *Artifact) ToTruthTable() *truthtable.Table {
	tt := truthtable.New(a.n)
	x := make([]bool, a.n)
	size := tt.Size()
	for idx := uint64(0); idx < size; idx++ {
		for i := 0; i < a.n; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		if v, _ := a.Eval(x); v {
			tt.Set(idx, true)
		}
	}
	return tt
}

// SatCount returns the number of satisfying assignments over all n
// variables, computed by one iterative bottom-up pass over the node
// arrays (children precede parents in emission order, so no recursion
// and no node-manager inflation is needed).
func (a *Artifact) SatCount() uint64 {
	total := len(a.lo)
	if total == 0 {
		if a.root == 1 {
			return uint64(1) << uint(a.n)
		}
		return 0
	}
	cnt := make([]uint64, total)
	// cnt[i] counts assignments of the variables at node i's level and
	// below (the convention of bdd.SatCount's rec).
	branch := func(child uint32, lvl int) uint64 {
		var c uint64
		switch {
		case child == 1:
			c = 1
		case child >= 2:
			c = cnt[child-2]
		}
		return c << uint(a.levelOfID(child)-lvl-1)
	}
	for i := 0; i < total; i++ {
		lvl := int(a.level[i])
		cnt[i] = branch(a.lo[i], lvl) + branch(a.hi[i], lvl)
	}
	return cnt[a.root-2] << uint(a.level[a.root-2])
}

// Equal reports whether two artifacts are node-identical: same variable
// count, ordering, level structure, edges and root. Canonical encoding
// makes this equivalent to byte equality of Encode, but Equal needs no
// serialization pass.
func (a *Artifact) Equal(b *Artifact) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.n != b.n || a.root != b.root || len(a.lo) != len(b.lo) {
		return false
	}
	for i := range a.ordering {
		if a.ordering[i] != b.ordering[i] {
			return false
		}
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	for i := range a.lo {
		if a.lo[i] != b.lo[i] || a.hi[i] != b.hi[i] {
			return false
		}
	}
	return true
}

// Verify checks that the artifact denotes exactly the function tt: a
// full sweep of all 2^n assignments up to n = 16, a fixed-size
// deterministic sample above (the client-side re-verification of a
// served artifact; the conformance suite's n ≤ 10 oracle always takes
// the exhaustive branch).
func Verify(a *Artifact, tt *truthtable.Table) error {
	if a == nil || tt == nil {
		return fmt.Errorf("artifact: Verify on nil artifact or table")
	}
	if a.n != tt.NumVars() {
		return fmt.Errorf("artifact: variable count %d, table has %d", a.n, tt.NumVars())
	}
	size := tt.Size()
	const exhaustiveMax = 1 << 16
	x := make([]bool, a.n)
	check := func(idx uint64) error {
		for i := 0; i < a.n; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		got, err := a.Eval(x)
		if err != nil {
			return err
		}
		if got != tt.Bit(idx) {
			return fmt.Errorf("artifact: disagrees with table at assignment %d: artifact %v, table %v", idx, got, tt.Bit(idx))
		}
		return nil
	}
	if size <= exhaustiveMax {
		for idx := uint64(0); idx < size; idx++ {
			if err := check(idx); err != nil {
				return err
			}
		}
		return nil
	}
	// Deterministic sample: a Weyl sequence over the index space hits
	// 2^13 well-spread assignments.
	const samples = 1 << 13
	const step = 0x9e3779b97f4a7c15
	var idx uint64
	for i := 0; i < samples; i++ {
		idx += step
		if err := check(idx % size); err != nil {
			return err
		}
	}
	return nil
}
