package artifact_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"obddopt/internal/artifact"
	"obddopt/internal/bdd"
	"obddopt/internal/conformance"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

// roundTripTables is the structured roster the unit tests sweep:
// constants, single literals, and the function families with distinct
// level shapes (full levels, skipped levels, wide bottom levels).
func roundTripTables(t *testing.T) []*truthtable.Table {
	t.Helper()
	tables := []*truthtable.Table{
		truthtable.New(0), // constant false, n = 0
	}
	one := truthtable.New(0)
	one.Set(0, true)
	tables = append(tables, one)
	for n := 1; n <= 6; n++ {
		tables = append(tables,
			truthtable.New(n),
			funcs.Parity(n),
			funcs.Threshold(n, (n+1)/2),
		)
		allOnes := truthtable.New(n)
		for i := uint64(0); i < allOnes.Size(); i++ {
			allOnes.Set(i, true)
		}
		tables = append(tables, allOnes)
	}
	tables = append(tables,
		funcs.Multiplexer(1),
		funcs.Multiplexer(2),
		funcs.HiddenWeightedBit(5),
		funcs.ReadOnceChain(8),
		funcs.Comparator(3),
	)
	rng := rand.New(rand.NewSource(42))
	for n := 2; n <= 8; n++ {
		tables = append(tables, truthtable.Random(n, rng))
	}
	return tables
}

// orderingsFor yields a few distinct orderings per table: natural,
// identity-reversed, and one seeded shuffle.
func orderingsFor(n int, rng *rand.Rand) []truthtable.Ordering {
	ords := []truthtable.Ordering{nil, truthtable.ReverseOrdering(n)}
	if n >= 2 {
		perm := make(truthtable.Ordering, n)
		for i, v := range rng.Perm(n) {
			perm[i] = v
		}
		ords = append(ords, perm)
	}
	return ords
}

func TestRoundTripLosslessAndCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tt := range roundTripTables(t) {
		for _, ord := range orderingsFor(tt.NumVars(), rng) {
			a, err := artifact.Build(tt, ord)
			if err != nil {
				t.Fatalf("Build(%s, %v): %v", tt.Hex(), ord, err)
			}
			enc := a.Encode()
			dec, err := artifact.Decode(enc)
			if err != nil {
				t.Fatalf("Decode(Encode(%s)): %v", tt.Hex(), err)
			}
			if !a.Equal(dec) {
				t.Fatalf("decode(encode) not node-identical for %s under %v", tt.Hex(), ord)
			}
			if re := dec.Encode(); !bytes.Equal(enc, re) {
				t.Fatalf("encode→decode→encode not byte-identical for %s under %v", tt.Hex(), ord)
			}
			if got := dec.ToTruthTable(); got.Hex() != tt.Hex() {
				t.Fatalf("decoded artifact denotes %s, want %s", got.Hex(), tt.Hex())
			}
			if err := artifact.Verify(dec, tt); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if got, want := dec.SatCount(), tt.CountOnes(); got != want {
				t.Fatalf("SatCount %d, table has %d ones (%s under %v)", got, want, tt.Hex(), ord)
			}
		}
	}
}

// TestBuildMatchesManager cross-checks NodeCount and level structure
// against the bdd.Manager the artifact was distilled from.
func TestBuildMatchesManager(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tt := range roundTripTables(t) {
		n := tt.NumVars()
		for _, ord := range orderingsFor(n, rng) {
			a, err := artifact.Build(tt, ord)
			if err != nil {
				t.Fatal(err)
			}
			eff := ord
			if eff == nil {
				eff = truthtable.ReverseOrdering(n)
			}
			m := bdd.New(n, eff)
			root := m.FromTruthTable(tt)
			if got, want := a.NodeCount(), m.CountNodes(root); got != want {
				t.Fatalf("NodeCount %d, manager counts %d (%s under %v)", got, want, tt.Hex(), ord)
			}
			if got, want := a.SatCount(), m.SatCount(root); got != want {
				t.Fatalf("SatCount %d, manager says %d", got, want)
			}
			// bdd.LevelCounts is indexed bottom-up (Profile order), the
			// artifact root-first.
			lc := m.LevelCounts(root)
			for lvl, c := range a.LevelCounts() {
				if want := lc[n-1-lvl]; uint64(c) != want {
					t.Fatalf("level %d count %d, manager says %d", lvl, c, want)
				}
			}
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := artifact.Build(nil, nil); err == nil {
		t.Fatal("Build(nil) accepted")
	}
	tt := funcs.Parity(3)
	for _, ord := range []truthtable.Ordering{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		if _, err := artifact.Build(tt, ord); err == nil {
			t.Fatalf("Build accepted bad ordering %v", ord)
		}
	}
}

func TestSatCountConstants(t *testing.T) {
	for n := 0; n <= 4; n++ {
		f := truthtable.New(n)
		af, err := artifact.Build(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := af.SatCount(); got != 0 {
			t.Fatalf("n=%d constant false: SatCount %d", n, got)
		}
		for i := uint64(0); i < f.Size(); i++ {
			f.Set(i, true)
		}
		at, err := artifact.Build(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := at.SatCount(), uint64(1)<<uint(n); got != want {
			t.Fatalf("n=%d constant true: SatCount %d, want %d", n, got, want)
		}
		if at.NodeCount() != 0 {
			t.Fatalf("constant with %d nodes", at.NodeCount())
		}
	}
}

// TestGoldenCorpus replays the artifact contract over the full golden
// corpus: byte-identical round trips, truth-table equivalence, SatCount
// against CountOnes, NodeCount against the pinned MinCost for OBDD
// entries — and the compression criterion of the acceptance bar:
// artifact bytes at most 60% of a naive fixed-width (level, lo, hi)
// dump, summed over the corpus.
func TestGoldenCorpus(t *testing.T) {
	entries, err := conformance.DefaultGolden()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty golden corpus")
	}
	var artifactBytes, naiveBytes uint64
	for _, e := range entries {
		tt, err := truthtable.ParseHex(e.Table)
		if err != nil {
			t.Fatalf("%s: %v", e.Table, err)
		}
		a, err := artifact.Build(tt, truthtable.Ordering(e.Ordering))
		if err != nil {
			t.Fatalf("%s/%s: %v", e.Table, e.Rule, err)
		}
		enc := a.Encode()
		dec, err := artifact.Decode(enc)
		if err != nil {
			t.Fatalf("%s/%s: decode: %v", e.Table, e.Rule, err)
		}
		if !bytes.Equal(enc, dec.Encode()) {
			t.Fatalf("%s/%s: encode→decode→encode drifted", e.Table, e.Rule)
		}
		if err := artifact.Verify(dec, tt); err != nil {
			t.Fatalf("%s/%s: %v", e.Table, e.Rule, err)
		}
		if got, want := dec.SatCount(), tt.CountOnes(); got != want {
			t.Fatalf("%s/%s: SatCount %d, want %d", e.Table, e.Rule, got, want)
		}
		if e.Rule == "obdd" {
			if got := dec.NodeCount(); got != e.MinCost {
				t.Fatalf("%s: NodeCount %d, corpus pins MinCost %d", e.Table, got, e.MinCost)
			}
		}
		artifactBytes += uint64(len(enc))
		// Naive fixed-width dump: uint32 n + per-variable uint32 ordering
		// + a (level, lo, hi) uint32 triple per node + uint32 root.
		naiveBytes += uint64(8 + 4*tt.NumVars() + 12*int(a.NodeCount()))
	}
	t.Logf("corpus: %d entries, %d artifact bytes vs %d naive bytes (%.1f%%)",
		len(entries), artifactBytes, naiveBytes, 100*float64(artifactBytes)/float64(naiveBytes))
	if artifactBytes*100 > naiveBytes*60 {
		t.Fatalf("artifact encoding too large: %d bytes vs naive %d — exceeds the 60%% bar", artifactBytes, naiveBytes)
	}
}

// corrupt applies f to a copy of enc and asserts Decode rejects it with
// a typed error.
func corrupt(t *testing.T, name string, enc []byte, f func([]byte) []byte, want error) {
	t.Helper()
	mut := f(append([]byte(nil), enc...))
	_, err := artifact.Decode(mut)
	if err == nil {
		t.Fatalf("%s: Decode accepted the mutated stream", name)
	}
	if want != nil && !errors.Is(err, want) {
		t.Fatalf("%s: error %v, want %v", name, err, want)
	}
	if !errors.Is(err, artifact.ErrBadMagic) && !errors.Is(err, artifact.ErrBadVersion) &&
		!errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrCorrupt) {
		t.Fatalf("%s: error %v is not one of the typed sentinels", name, err)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	a, err := artifact.Build(funcs.Parity(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := a.Encode()

	corrupt(t, "empty", enc, func(b []byte) []byte { return nil }, artifact.ErrTruncated)
	corrupt(t, "short-magic", enc, func(b []byte) []byte { return b[:3] }, artifact.ErrTruncated)
	corrupt(t, "bad-magic", enc, func(b []byte) []byte { b[0] = 'X'; return b }, artifact.ErrBadMagic)
	corrupt(t, "bad-version", enc, func(b []byte) []byte { b[4] = 99; return b }, artifact.ErrBadVersion)
	corrupt(t, "huge-n", enc, func(b []byte) []byte { b[5] = 200; return b }, artifact.ErrCorrupt)
	// Every proper prefix is rejected, and with ErrTruncated once past
	// the magic.
	for i := 0; i < len(enc); i++ {
		_, err := artifact.Decode(enc[:i])
		if err == nil {
			t.Fatalf("Decode accepted the %d-byte prefix of a %d-byte stream", i, len(enc))
		}
		if !errors.Is(err, artifact.ErrTruncated) {
			t.Fatalf("prefix %d: error %v, want ErrTruncated", i, err)
		}
	}
	corrupt(t, "trailing", enc, func(b []byte) []byte { return append(b, 0) }, artifact.ErrCorrupt)
	corrupt(t, "padding", enc, func(b []byte) []byte { b[len(b)-1] |= 0x80; return b }, nil)
}

// stream hand-assembles an encoded artifact from header fields and raw
// level bytes, for corruption cases a mutation of a valid stream cannot
// reach.
func stream(n int, ordering []byte, counts []byte, root byte, levels ...byte) []byte {
	b := []byte("OBDa\x01")
	b = append(b, byte(n))
	b = append(b, ordering...)
	b = append(b, counts...)
	b = append(b, root)
	return append(b, levels...)
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	// Reference: parity of 2 variables under the natural ordering.
	// counts = [1, 2]; level 1 packs (0,1),(1,0) in 1-bit edges → 0x06;
	// level 0 packs (2,3) in 2-bit edges → 0x0e; root = 4.
	valid := stream(2, []byte{1, 0}, []byte{1, 2}, 4, 0x06, 0x0e)
	if a, err := artifact.Decode(valid); err != nil {
		t.Fatalf("reference stream rejected: %v", err)
	} else if got, want := a.ToTruthTable().Hex(), funcs.Parity(2).Hex(); got != want {
		t.Fatalf("reference stream denotes %s, want %s", got, want)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"ordering-not-permutation", stream(2, []byte{0, 0}, []byte{1, 2}, 4, 0x06, 0x0e)},
		{"ordering-out-of-range", stream(2, []byte{2, 0}, []byte{1, 2}, 4, 0x06, 0x0e)},
		{"root-not-total-plus-one", stream(2, []byte{1, 0}, []byte{1, 2}, 3, 0x06, 0x0e)},
		{"constant-root-nonterminal", stream(2, []byte{1, 0}, []byte{0, 0}, 2)},
		{"redundant-node", stream(2, []byte{1, 0}, []byte{1, 2}, 4, 0x07, 0x0e)},  // level-1 node (1,1)
		{"duplicate-node", stream(2, []byte{1, 0}, []byte{1, 2}, 4, 0x05, 0x0e)},  // (1,0),(1,0)
		{"unsorted-level", stream(2, []byte{1, 0}, []byte{1, 2}, 4, 0x09, 0x0e)},  // (1,0),(0,1)
		{"edge-out-of-range", stream(2, []byte{1, 0}, []byte{1, 1}, 3, 0x02, 0x0c)}, // root (0,3): 3 ≥ base 3
		{"unreachable-node", stream(2, []byte{1, 0}, []byte{1, 2}, 4, 0x06, 0x04)}, // root (0,1) strands ids 2 and 3
		// 0x80 0x00 decodes to the same value as 0x00 but re-encodes
		// shorter, so canonicality demands minimal varints (fuzzer find).
		{"nonminimal-varint-n", []byte("OBDa\x01\x80\x00")},
		{"nonminimal-varint-root", stream(2, []byte{1, 0}, []byte{0, 0}, 0x80, 0x00)},
	}
	for _, tc := range cases {
		_, err := artifact.Decode(tc.data)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("%s: error %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestDecodedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tt := range roundTripTables(t) {
		for _, ord := range orderingsFor(tt.NumVars(), rng) {
			a, err := artifact.Build(tt, ord)
			if err != nil {
				t.Fatal(err)
			}
			enc := a.Encode()
			got, err := artifact.DecodedOrdering(enc)
			if err != nil {
				t.Fatal(err)
			}
			want := a.Ordering()
			if len(got) != len(want) {
				t.Fatalf("ordering length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("DecodedOrdering %v, artifact carries %v", got, want)
				}
			}
		}
	}
	if _, err := artifact.DecodedOrdering([]byte("OB")); !errors.Is(err, artifact.ErrTruncated) {
		t.Fatalf("short header: %v, want ErrTruncated", err)
	}
	if _, err := artifact.DecodedOrdering([]byte("XBDa\x01\x00")); !errors.Is(err, artifact.ErrBadMagic) {
		t.Fatalf("bad magic: %v, want ErrBadMagic", err)
	}
}

func TestEvalRejectsWrongArity(t *testing.T) {
	a, err := artifact.Build(funcs.Parity(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Eval([]bool{true}); err == nil {
		t.Fatal("Eval accepted a 1-assignment for a 3-variable artifact")
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	tt := funcs.Parity(4)
	a, err := artifact.Build(tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := funcs.Threshold(4, 2)
	if err := artifact.Verify(a, other); err == nil {
		t.Fatal("Verify accepted an artifact of a different function")
	}
	if err := artifact.Verify(a, funcs.Parity(3)); err == nil {
		t.Fatal("Verify accepted a variable-count mismatch")
	}
	if err := artifact.Verify(nil, tt); err == nil {
		t.Fatal("Verify accepted a nil artifact")
	}
}

// TestVerifySampledPath exercises the sampled branch (n > 16) once:
// parity of 17 variables has a 18-node OBDD, so Build is cheap even
// though the table is 2^17 bits.
func TestVerifySampledPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large table in -short mode")
	}
	tt := funcs.Parity(17)
	a, err := artifact.Build(tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := artifact.Verify(a, tt); err != nil {
		t.Fatal(err)
	}
	if got, want := a.SatCount(), tt.CountOnes(); got != want {
		t.Fatalf("SatCount %d, want %d", got, want)
	}
	// Flip a bit the Weyl sample is guaranteed to visit: the first
	// sampled index (one step of the sequence, reduced mod the size).
	const step = 0x9e3779b97f4a7c15
	hit := uint64(step) % tt.Size()
	flipped := funcs.Parity(17)
	flipped.Set(hit, !flipped.Bit(hit))
	if err := artifact.Verify(a, flipped); err == nil {
		t.Fatalf("sampled Verify missed a disagreement at index %d", hit)
	}
}

func TestEqual(t *testing.T) {
	a, _ := artifact.Build(funcs.Parity(3), nil)
	b, _ := artifact.Build(funcs.Parity(3), nil)
	c, _ := artifact.Build(funcs.Threshold(3, 2), nil)
	d, _ := artifact.Build(funcs.Parity(3), truthtable.Ordering{0, 1, 2})
	if !a.Equal(b) {
		t.Fatal("identical builds not Equal")
	}
	if a.Equal(c) {
		t.Fatal("different functions Equal")
	}
	// Parity is symmetric, so a and d share node structure — only the
	// recorded ordering differs, and Equal must see it.
	if a.Equal(d) {
		t.Fatal("Equal ignored the ordering")
	}
	if a.Equal(nil) || (*artifact.Artifact)(nil).Equal(a) {
		t.Fatal("nil comparisons")
	}
	var nilA, nilB *artifact.Artifact
	if !nilA.Equal(nilB) {
		t.Fatal("nil.Equal(nil) should hold")
	}
}
