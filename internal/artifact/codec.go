package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"obddopt/internal/truthtable"
)

// Wire format (all multi-byte integers are unsigned LEB128 varints;
// edge fields are LSB-first bit-packed):
//
//	magic    4 bytes  "OBDa"
//	version  1 byte   0x01
//	n        varint   variable count, ≤ truthtable.MaxVars
//	ordering n×varint bottom-up variable ordering (a permutation)
//	counts   n×varint nodes per root-first level (level 0 first)
//	root     varint   root id: total+1 when total > 0, else 0 or 1
//	levels   packed   per nonempty level, bottom-up (level n−1 first):
//	                  count×2 edge ids of w = max(1, ⌈log₂ base⌉) bits
//	                  each, LSB-first, byte-aligned per level, padding
//	                  bits zero; base = 2 + nodes of deeper levels
//
// Every accepted byte stream is canonical: Decode validates magic,
// version, permutation, edge ranges, reducedness (lo ≠ hi), strict
// within-level (lo, hi) order (the merge rule plus canonical sorting),
// zero padding, absence of trailing bytes, root consistency and
// reachability of every node — so Encode(Decode(b)) == b for every b
// Decode accepts, and unequal byte streams denote unequal (function,
// ordering) pairs.

// MediaType is the HTTP content type of an encoded artifact.
const MediaType = "application/x-obdd"

const (
	magic   = "OBDa"
	version = 1
	// maxNodes bounds the node count Decode will consider; far above any
	// exactly-solvable diagram, low enough that a hostile header cannot
	// make Decode allocate unboundedly before length validation.
	maxNodes = 1 << 28
)

// Typed decode errors; test with errors.Is. Every Decode failure wraps
// exactly one of these.
var (
	// ErrBadMagic reports that the stream does not start with the
	// artifact magic — it is not an artifact at all.
	ErrBadMagic = errors.New("artifact: bad magic")
	// ErrBadVersion reports an artifact of an unsupported format
	// version.
	ErrBadVersion = errors.New("artifact: unsupported version")
	// ErrTruncated reports a stream that ends before the structure it
	// announces is complete.
	ErrTruncated = errors.New("artifact: truncated")
	// ErrCorrupt reports a structurally invalid or non-canonical
	// stream: bad permutation, edge out of range, redundant or
	// duplicate node, wrong root, unreachable nodes, nonzero padding or
	// trailing bytes.
	ErrCorrupt = errors.New("artifact: corrupt")
)

// Encode serializes the artifact in canonical form. Building the same
// function under the same ordering always yields these exact bytes.
func (a *Artifact) Encode() []byte {
	total := len(a.lo)
	buf := make([]byte, 0, 16+3*a.n+total)
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.AppendUvarint(buf, uint64(a.n))
	for _, v := range a.ordering {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, c := range a.counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(a.root))
	base := uint64(2)
	node := 0
	for lvl := a.n - 1; lvl >= 0; lvl-- {
		c := int(a.counts[lvl])
		if c == 0 {
			continue
		}
		w := edgeWidth(base)
		var bw bitWriter
		for i := node; i < node+c; i++ {
			bw.write(uint64(a.lo[i]), w)
			bw.write(uint64(a.hi[i]), w)
		}
		buf = append(buf, bw.flush()...)
		node += c
		base += uint64(c)
	}
	return buf
}

// edgeWidth returns the bit width of an edge id when base ids are in
// play: ⌈log₂ base⌉, at least 1.
func edgeWidth(base uint64) int {
	w := bits.Len64(base - 1)
	if w == 0 {
		w = 1
	}
	return w
}

// Decode parses and fully validates an encoded artifact. It never
// panics on arbitrary input: malformed streams return an error wrapping
// ErrBadMagic, ErrBadVersion, ErrTruncated or ErrCorrupt.
func Decode(data []byte) (*Artifact, error) {
	r := &byteReader{data: data}
	head, ok := r.take(len(magic))
	if !ok {
		return nil, fmt.Errorf("%w: %d-byte stream is shorter than the magic", ErrTruncated, len(data))
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, head)
	}
	ver, ok := r.take(1)
	if !ok {
		return nil, fmt.Errorf("%w: missing version byte", ErrTruncated)
	}
	if ver[0] != version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrBadVersion, ver[0], version)
	}
	n64, err := r.uvarint("variable count")
	if err != nil {
		return nil, err
	}
	if n64 > truthtable.MaxVars {
		return nil, fmt.Errorf("%w: variable count %d exceeds %d", ErrCorrupt, n64, truthtable.MaxVars)
	}
	n := int(n64)

	ordering := make(truthtable.Ordering, n)
	for i := range ordering {
		v, err := r.uvarint("ordering")
		if err != nil {
			return nil, err
		}
		if v >= uint64(n) {
			return nil, fmt.Errorf("%w: ordering entry %d out of range [0,%d)", ErrCorrupt, v, n)
		}
		ordering[i] = int(v)
	}
	if !ordering.Valid() {
		return nil, fmt.Errorf("%w: ordering %v is not a permutation", ErrCorrupt, ordering)
	}

	counts := make([]uint32, n)
	var total uint64
	for i := range counts {
		c, err := r.uvarint("level count")
		if err != nil {
			return nil, err
		}
		total += c
		if c > maxNodes || total > maxNodes {
			return nil, fmt.Errorf("%w: node count overflows the %d-node bound", ErrCorrupt, maxNodes)
		}
		counts[i] = uint32(c)
	}
	root64, err := r.uvarint("root")
	if err != nil {
		return nil, err
	}
	if total == 0 {
		if root64 > 1 {
			return nil, fmt.Errorf("%w: empty diagram with nonterminal root %d", ErrCorrupt, root64)
		}
	} else if root64 != total+1 {
		return nil, fmt.Errorf("%w: root %d, canonical form requires %d", ErrCorrupt, root64, total+1)
	}

	a := &Artifact{
		n:        n,
		ordering: ordering,
		counts:   counts,
		lo:       make([]uint32, 0, total),
		hi:       make([]uint32, 0, total),
		level:    make([]uint8, 0, total),
		root:     uint32(root64),
	}
	base := uint64(2)
	for lvl := n - 1; lvl >= 0; lvl-- {
		c := uint64(counts[lvl])
		if c == 0 {
			continue
		}
		w := edgeWidth(base)
		nbytes := int((2*c*uint64(w) + 7) / 8)
		chunk, ok := r.take(nbytes)
		if !ok {
			return nil, fmt.Errorf("%w: level %d needs %d edge bytes, %d left", ErrTruncated, lvl, nbytes, r.left())
		}
		br := bitReader{data: chunk}
		var prevLo, prevHi uint64
		for i := uint64(0); i < c; i++ {
			lo := br.read(w)
			hi := br.read(w)
			if lo >= base || hi >= base {
				return nil, fmt.Errorf("%w: level %d edge (%d,%d) out of range [0,%d)", ErrCorrupt, lvl, lo, hi, base)
			}
			if lo == hi {
				return nil, fmt.Errorf("%w: level %d node %d is redundant (lo == hi == %d)", ErrCorrupt, lvl, i, lo)
			}
			if i > 0 && (lo < prevLo || (lo == prevLo && hi <= prevHi)) {
				return nil, fmt.Errorf("%w: level %d nodes out of canonical (lo,hi) order", ErrCorrupt, lvl)
			}
			prevLo, prevHi = lo, hi
			a.lo = append(a.lo, uint32(lo))
			a.hi = append(a.hi, uint32(hi))
			a.level = append(a.level, uint8(lvl))
		}
		if !br.paddingZero() {
			return nil, fmt.Errorf("%w: level %d has nonzero padding bits", ErrCorrupt, lvl)
		}
		base += c
	}
	if r.left() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last level", ErrCorrupt, r.left())
	}
	if total > 0 {
		if err := a.checkReachable(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// DecodedOrdering reads only the header of an encoded artifact and
// returns its variable ordering — the cheap consistency probe the
// result cache uses to confirm a stored artifact still matches the
// ordering of the result it is served next to.
func DecodedOrdering(data []byte) (truthtable.Ordering, error) {
	r := &byteReader{data: data}
	head, ok := r.take(len(magic) + 1)
	if !ok {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, head[len(magic)])
	}
	n64, err := r.uvarint("variable count")
	if err != nil {
		return nil, err
	}
	if n64 > truthtable.MaxVars {
		return nil, fmt.Errorf("%w: variable count %d exceeds %d", ErrCorrupt, n64, truthtable.MaxVars)
	}
	ordering := make(truthtable.Ordering, n64)
	for i := range ordering {
		v, err := r.uvarint("ordering")
		if err != nil {
			return nil, err
		}
		if v >= n64 {
			return nil, fmt.Errorf("%w: ordering entry %d out of range", ErrCorrupt, v)
		}
		ordering[i] = int(v)
	}
	if !ordering.Valid() {
		return nil, fmt.Errorf("%w: ordering is not a permutation", ErrCorrupt)
	}
	return ordering, nil
}

// checkReachable verifies every node is reachable from the root. Edges
// point at strictly smaller ids, so one descending scan propagates
// reachability without recursion.
func (a *Artifact) checkReachable() error {
	total := len(a.lo)
	reach := make([]bool, total)
	reach[a.root-2] = true
	for i := total - 1; i >= 0; i-- {
		if !reach[i] {
			continue
		}
		if a.lo[i] >= 2 {
			reach[a.lo[i]-2] = true
		}
		if a.hi[i] >= 2 {
			reach[a.hi[i]-2] = true
		}
	}
	for i, ok := range reach {
		if !ok {
			return fmt.Errorf("%w: node %d (level %d) is unreachable from the root", ErrCorrupt, i+2, a.level[i])
		}
	}
	return nil
}

// byteReader is a bounds-checked cursor over the input.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) left() int { return len(r.data) - r.off }

func (r *byteReader) take(n int) ([]byte, bool) {
	if n < 0 || r.left() < n {
		return nil, false
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, true
}

// uvarint reads one LEB128 varint; the field name lands in the error.
// Non-minimal encodings (a redundant zero continuation group, e.g.
// 0x80 0x00 for 0) are rejected: they decode to the same value but
// would break the canonical encode(decode(b)) == b property.
func (r *byteReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n == 0 {
		return 0, fmt.Errorf("%w: %s varint runs off the end", ErrTruncated, field)
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: %s varint overflows 64 bits", ErrCorrupt, field)
	}
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, fmt.Errorf("%w: %s varint is not minimally encoded", ErrCorrupt, field)
	}
	r.off += n
	return v, nil
}

// bitWriter packs LSB-first bit fields into bytes.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nbit int
}

func (w *bitWriter) write(v uint64, width int) {
	w.cur |= v << uint(w.nbit)
	w.nbit += width
	for w.nbit >= 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur >>= 8
		w.nbit -= 8
	}
}

func (w *bitWriter) flush() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// bitReader unpacks LSB-first bit fields; reads past the end yield
// zeros (the caller sizes the chunk exactly, so that never decodes into
// accepted structure).
type bitReader struct {
	data []byte
	cur  uint64
	nbit int
	off  int
}

func (r *bitReader) read(width int) uint64 {
	for r.nbit < width {
		var b byte
		if r.off < len(r.data) {
			b = r.data[r.off]
			r.off++
		}
		r.cur |= uint64(b) << uint(r.nbit)
		r.nbit += 8
	}
	v := r.cur & (1<<uint(width) - 1)
	r.cur >>= uint(width)
	r.nbit -= width
	return v
}

// paddingZero reports whether every bit beyond the last field — the
// buffered remainder and any unread bytes — is zero.
func (r *bitReader) paddingZero() bool {
	if r.cur != 0 {
		return false
	}
	for _, b := range r.data[r.off:] {
		if b != 0 {
			return false
		}
	}
	return true
}
