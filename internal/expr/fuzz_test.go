package expr

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser's robustness and the parse → String →
// reparse fixed point on arbitrary byte strings. Run the seed corpus with
// plain `go test`; explore with `go test -fuzz FuzzParse ./internal/expr`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x1", "!x1 & x2", "x1 | x2 ^ x3", "(x1 -> x2) <-> x3",
		"0 | 1 & x10", "x1&x2|x3&x4|x5&x6", "~(~x1)", "x1 + x2 * x3",
		"((((x1))))", "x1 -> x2 -> x3", "", "x", ")(", "x1 @@ x2",
		"x999", "x1 <-> <-> x2", "!",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted inputs must round-trip semantically via String.
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("String output %q does not reparse: %v", s, err)
		}
		n := e.MaxVar() + 1
		if n < 1 {
			n = 1
		}
		if n > 12 {
			return // keep the truth-table comparison tractable
		}
		t1, err1 := ToTruthTable(e, n)
		t2, err2 := ToTruthTable(back, n)
		if err1 != nil || err2 != nil {
			t.Fatalf("compilation failed after successful parse: %v %v", err1, err2)
		}
		if !t1.Equal(t2) {
			t.Fatalf("round trip changed semantics for %q (→ %q)", src, s)
		}
		if strings.Count(s, "(") != strings.Count(s, ")") {
			t.Fatalf("unbalanced parentheses in String output %q", s)
		}
	})
}
