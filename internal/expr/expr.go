// Package expr provides a Boolean-formula frontend: a lexer, parser,
// evaluator and truth-table compiler for propositional expressions over
// variables x1, x2, …. It realizes the setting of Corollary 2: any
// representation on which f can be evaluated in polynomial time yields the
// truth table in O*(2^n) evaluations, after which the optimal-ordering
// algorithms apply unchanged. Experiment E11 feeds the same function
// through this frontend, the circuit frontend and a raw truth table and
// checks the optima coincide.
//
// Grammar (loosest binding first):
//
//	expr   := iff
//	iff    := imp ("<->" imp)*
//	imp    := or ("->" or)*          (right associative)
//	or     := xor ("|" xor)*
//	xor    := and ("^" and)*
//	and    := unary ("&" unary)*
//	unary  := "!" unary | primary
//	primary:= "0" | "1" | var | "(" expr ")"
//	var    := "x" digits             (1-based: x1 is variable index 0)
package expr

import (
	"fmt"
	"strconv"
	"strings"

	"obddopt/internal/truthtable"
)

// Expr is a parsed Boolean expression.
type Expr interface {
	// Eval evaluates under the assignment (x[i] = variable i).
	Eval(x []bool) bool
	// MaxVar returns the largest 0-based variable index used, or −1.
	MaxVar() int
	// String renders the expression with full parenthesization.
	String() string
}

// Const is a Boolean constant.
type Const bool

// Eval implements Expr.
func (c Const) Eval([]bool) bool { return bool(c) }

// MaxVar implements Expr.
func (c Const) MaxVar() int { return -1 }

// String implements Expr.
func (c Const) String() string {
	if c {
		return "1"
	}
	return "0"
}

// Var is a variable reference (0-based index; renders 1-based).
type Var int

// Eval implements Expr.
func (v Var) Eval(x []bool) bool { return x[v] }

// MaxVar implements Expr.
func (v Var) MaxVar() int { return int(v) }

// String implements Expr.
func (v Var) String() string { return fmt.Sprintf("x%d", int(v)+1) }

// Not is logical negation.
type Not struct{ X Expr }

// Eval implements Expr.
func (n Not) Eval(x []bool) bool { return !n.X.Eval(x) }

// MaxVar implements Expr.
func (n Not) MaxVar() int { return n.X.MaxVar() }

// String implements Expr.
func (n Not) String() string { return "!" + n.X.String() }

// Op is a binary connective.
type Op byte

// The binary connectives.
const (
	And Op = '&'
	Or  Op = '|'
	Xor Op = '^'
	Imp Op = '>'
	Iff Op = '='
)

// Binary is a binary application.
type Binary struct {
	Op   Op
	L, R Expr
}

// Eval implements Expr.
func (b Binary) Eval(x []bool) bool {
	l := b.L.Eval(x)
	switch b.Op {
	case And:
		return l && b.R.Eval(x)
	case Or:
		return l || b.R.Eval(x)
	case Xor:
		return l != b.R.Eval(x)
	case Imp:
		return !l || b.R.Eval(x)
	case Iff:
		return l == b.R.Eval(x)
	}
	panic("expr: unknown operator")
}

// MaxVar implements Expr.
func (b Binary) MaxVar() int {
	l, r := b.L.MaxVar(), b.R.MaxVar()
	if l > r {
		return l
	}
	return r
}

// String implements Expr.
func (b Binary) String() string {
	opStr := map[Op]string{And: " & ", Or: " | ", Xor: " ^ ", Imp: " -> ", Iff: " <-> "}[b.Op]
	return "(" + b.L.String() + opStr + b.R.String() + ")"
}

// parser is a recursive-descent parser over a token stream.
type parser struct {
	toks []token
	pos  int
}

type token struct {
	kind string // "var", "const", "op", "lparen", "rparen", "not"
	text string
	v    int
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: "lparen"})
			i++
		case c == ')':
			toks = append(toks, token{kind: "rparen"})
			i++
		case c == '!' || c == '~':
			toks = append(toks, token{kind: "not"})
			i++
		case c == '&' || c == '*':
			toks = append(toks, token{kind: "op", text: "&"})
			i++
		case c == '|' || c == '+':
			toks = append(toks, token{kind: "op", text: "|"})
			i++
		case c == '^':
			toks = append(toks, token{kind: "op", text: "^"})
			i++
		case strings.HasPrefix(s[i:], "<->"):
			toks = append(toks, token{kind: "op", text: "<->"})
			i += 3
		case strings.HasPrefix(s[i:], "->"):
			toks = append(toks, token{kind: "op", text: "->"})
			i += 2
		case c == '0' || c == '1':
			toks = append(toks, token{kind: "const", v: int(c - '0')})
			i++
		case c == 'x' || c == 'X':
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("expr: variable name without index at offset %d", i)
			}
			idx, err := strconv.Atoi(s[i+1 : j])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("expr: bad variable index %q", s[i:j])
			}
			toks = append(toks, token{kind: "var", v: idx - 1})
			i = j
		default:
			return nil, fmt.Errorf("expr: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

// Parse parses an expression.
func Parse(s string) (Expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseIff()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("expr: trailing tokens at position %d", p.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and fixed literals.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) peekOp(text string) bool {
	return p.pos < len(p.toks) && p.toks[p.pos].kind == "op" && p.toks[p.pos].text == text
}

func (p *parser) parseIff() (Expr, error) {
	l, err := p.parseImp()
	if err != nil {
		return nil, err
	}
	for p.peekOp("<->") {
		p.pos++
		r, err := p.parseImp()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: Iff, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseImp() (Expr, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peekOp("->") {
		p.pos++
		r, err := p.parseImp() // right associative
		if err != nil {
			return nil, err
		}
		return Binary{Op: Imp, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.peekOp("|") {
		p.pos++
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: Or, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekOp("^") {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: Xor, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekOp("&") {
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: And, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == "not" {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.pos >= len(p.toks) {
		return nil, fmt.Errorf("expr: unexpected end of input")
	}
	t := p.toks[p.pos]
	switch t.kind {
	case "const":
		p.pos++
		return Const(t.v == 1), nil
	case "var":
		p.pos++
		return Var(t.v), nil
	case "lparen":
		p.pos++
		e, err := p.parseIff()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.toks) || p.toks[p.pos].kind != "rparen" {
			return nil, fmt.Errorf("expr: missing closing parenthesis")
		}
		p.pos++
		return e, nil
	}
	return nil, fmt.Errorf("expr: unexpected token %q", t.kind)
}

// ToTruthTable compiles the expression to the truth table over n variables
// (n must be at least MaxVar()+1) — the O*(2^n) preparation step of
// Corollary 2.
func ToTruthTable(e Expr, n int) (*truthtable.Table, error) {
	if need := e.MaxVar() + 1; n < need {
		return nil, fmt.Errorf("expr: expression uses %d variables, table has %d", need, n)
	}
	return truthtable.FromFunc(n, e.Eval), nil
}
