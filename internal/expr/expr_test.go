package expr

import (
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func TestParseAndEvalBasics(t *testing.T) {
	cases := []struct {
		src  string
		x    []bool
		want bool
	}{
		{"x1", []bool{true}, true},
		{"!x1", []bool{true}, false},
		{"x1 & x2", []bool{true, false}, false},
		{"x1 | x2", []bool{true, false}, true},
		{"x1 ^ x2", []bool{true, true}, false},
		{"x1 -> x2", []bool{true, false}, false},
		{"x1 -> x2", []bool{false, false}, true},
		{"x1 <-> x2", []bool{true, true}, true},
		{"0 | 1", nil, true},
		{"x1 & x2 | x3", []bool{false, false, true}, true}, // & binds tighter
		{"x1 | x2 & x3", []bool{true, false, false}, true}, // than |
		{"!(x1 | x2)", []bool{false, false}, true},
		{"x1 + x2 * x3", []bool{false, true, true}, true}, // +,* aliases
		{"~x1", []bool{false}, true},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := e.Eval(c.x); got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.src, c.x, got, c.want)
		}
	}
}

func TestImplicationRightAssociative(t *testing.T) {
	// a -> b -> c parses as a -> (b -> c): with a=1,b=0,c=0 it is 1.
	e := MustParse("x1 -> x2 -> x3")
	if !e.Eval([]bool{true, false, false}) {
		t.Errorf("-> not right associative")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "x", "x0", "(x1", "x1 &", "x1 x2", "y1", "x1 @ x2", "x1)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMaxVar(t *testing.T) {
	if MustParse("x3 & (x1 | x7)").MaxVar() != 6 {
		t.Errorf("MaxVar wrong")
	}
	if (Const(true)).MaxVar() != -1 {
		t.Errorf("constant MaxVar should be -1")
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		e := randomExpr(rng, 4, 3)
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse %q: %v", s, err)
		}
		// Semantically equal on all assignments over 4 vars.
		t1, _ := ToTruthTable(e, 4)
		t2, _ := ToTruthTable(back, 4)
		if !t1.Equal(t2) {
			t.Fatalf("round trip changed semantics: %q", s)
		}
	}
}

func randomExpr(rng *rand.Rand, nvars, depth int) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(6) == 0 {
			return Const(rng.Intn(2) == 1)
		}
		return Var(rng.Intn(nvars))
	}
	switch rng.Intn(6) {
	case 0:
		return Not{X: randomExpr(rng, nvars, depth-1)}
	case 1:
		return Binary{Op: Or, L: randomExpr(rng, nvars, depth-1), R: randomExpr(rng, nvars, depth-1)}
	case 2:
		return Binary{Op: Xor, L: randomExpr(rng, nvars, depth-1), R: randomExpr(rng, nvars, depth-1)}
	case 3:
		return Binary{Op: Imp, L: randomExpr(rng, nvars, depth-1), R: randomExpr(rng, nvars, depth-1)}
	case 4:
		return Binary{Op: Iff, L: randomExpr(rng, nvars, depth-1), R: randomExpr(rng, nvars, depth-1)}
	default:
		return Binary{Op: And, L: randomExpr(rng, nvars, depth-1), R: randomExpr(rng, nvars, depth-1)}
	}
}

func TestToTruthTable(t *testing.T) {
	e := MustParse("x1 & x2 | x3 & x4 | x5 & x6")
	tt, err := ToTruthTable(e, 6)
	if err != nil {
		t.Fatalf("ToTruthTable: %v", err)
	}
	if !tt.Equal(funcs.AchillesHeel(3)) {
		t.Errorf("expression does not match the Fig. 1 generator")
	}
	if _, err := ToTruthTable(e, 3); err == nil {
		t.Errorf("too-small table should error")
	}
}

func TestCorollary2PathMatchesDirect(t *testing.T) {
	// Experiment E11 core: the optimum from the expression representation
	// equals the optimum from the raw truth table.
	src := "(x1 <-> x2) & (x3 | !x4) ^ x5"
	e := MustParse(src)
	tt, err := ToTruthTable(e, 5)
	if err != nil {
		t.Fatalf("%v", err)
	}
	direct := truthtable.FromFunc(5, e.Eval)
	if !tt.Equal(direct) {
		t.Fatalf("compilation mismatch")
	}
	r1 := core.OptimalOrdering(tt, nil)
	r2 := core.OptimalOrdering(direct, nil)
	if r1.MinCost != r2.MinCost {
		t.Errorf("optima differ across representations")
	}
}
