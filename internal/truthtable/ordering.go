package truthtable

import (
	"fmt"
	"math/rand"
	"strings"
)

// Ordering is a variable ordering in the papers' bottom-up convention:
// Ordering[0] is the variable read last (level 1, adjacent to the
// terminals), Ordering[len−1] the variable read first (the root level).
// Entries are 0-based variable indices and must form a permutation.
type Ordering []int

// IdentityOrdering returns (0, 1, …, n−1): variable 0 at the bottom.
// Reading top-down this is x_n first, x_1 last — the papers' natural
// ordering (x_1, …, x_n) read root-first corresponds to ReverseOrdering.
func IdentityOrdering(n int) Ordering {
	o := make(Ordering, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// ReverseOrdering returns (n−1, …, 1, 0): variable 0 at the root, i.e. the
// conventional "x_1 read first" ordering written bottom-up.
func ReverseOrdering(n int) Ordering {
	o := make(Ordering, n)
	for i := range o {
		o[i] = n - 1 - i
	}
	return o
}

// RandomOrdering returns a uniformly random permutation drawn from rng.
func RandomOrdering(n int, rng *rand.Rand) Ordering {
	return Ordering(rng.Perm(n))
}

// Valid reports whether o is a permutation of {0, …, len(o)−1}.
func (o Ordering) Valid() bool {
	seen := make([]bool, len(o))
	for _, v := range o {
		if v < 0 || v >= len(o) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Equal reports whether o and p are the same ordering, element for
// element.
func (o Ordering) Equal(p Ordering) bool {
	if len(o) != len(p) {
		return false
	}
	for i, v := range o {
		if v != p[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of o.
func (o Ordering) Clone() Ordering {
	c := make(Ordering, len(o))
	copy(c, o)
	return c
}

// RootFirst returns the ordering listed from the root down — the order in
// which a top-down evaluation reads the variables.
func (o Ordering) RootFirst() []int {
	r := make([]int, len(o))
	for i, v := range o {
		r[len(o)-1-i] = v
	}
	return r
}

// FromRootFirst converts a root-first variable list into the bottom-up
// convention used throughout this repository.
func FromRootFirst(vars []int) Ordering {
	o := make(Ordering, len(vars))
	for i, v := range vars {
		o[len(vars)-1-i] = v
	}
	return o
}

// LevelOf returns the 1-based level at which variable v is read (level 1 is
// the bottom). It returns 0 if v does not appear.
func (o Ordering) LevelOf(v int) int {
	for i, w := range o {
		if w == v {
			return i + 1
		}
	}
	return 0
}

// String renders the ordering root-first in the papers' x_i notation, e.g.
// "(x1, x3, x2)" meaning x1 is read first.
func (o Ordering) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range o.RootFirst() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "x%d", v+1)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Swap exchanges the variables at levels i+1 and j+1 (0-based positions i
// and j) in place.
func (o Ordering) Swap(i, j int) { o[i], o[j] = o[j], o[i] }

// MoveTo moves the variable currently at position from to position to,
// shifting the intermediate variables, in place. It is the primitive of
// the sifting heuristic.
func (o Ordering) MoveTo(from, to int) {
	if from == to {
		return
	}
	v := o[from]
	if from < to {
		copy(o[from:to], o[from+1:to+1])
	} else {
		copy(o[to+1:from+1], o[to:from])
	}
	o[to] = v
}
