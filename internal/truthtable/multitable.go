package truthtable

import (
	"fmt"
	"sort"
)

// MultiTable is the truth table of a multi-valued function
// f : {0,1}^n → Z ⊂ ℕ, the input of the MTBDD generalization of the
// dynamic program (Remark 2 of the restatement). Cell indexing follows the
// same convention as Table: variable i contributes bit i of the index.
type MultiTable struct {
	n    int
	vals []int
}

// NewMulti returns the all-zero multi-valued function over n variables.
func NewMulti(n int) *MultiTable {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truthtable: variable count %d out of range [0,%d]", n, MaxVars))
	}
	return &MultiTable{n: n, vals: make([]int, 1<<uint(n))}
}

// MultiFromFunc builds the table of f by evaluating it on all assignments.
func MultiFromFunc(n int, f func(x []bool) int) *MultiTable {
	t := NewMulti(n)
	x := make([]bool, n)
	for idx := range t.vals {
		for i := 0; i < n; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		t.vals[idx] = f(x)
	}
	return t
}

// FromBool lifts a Boolean table to a {0,1}-valued MultiTable.
func FromBool(b *Table) *MultiTable {
	t := NewMulti(b.NumVars())
	for idx := uint64(0); idx < b.Size(); idx++ {
		if b.Bit(idx) {
			t.vals[idx] = 1
		}
	}
	return t
}

// NumVars returns the number of variables.
func (t *MultiTable) NumVars() int { return t.n }

// Size returns 2^n.
func (t *MultiTable) Size() uint64 { return 1 << uint(t.n) }

// At returns the function value at cell index idx.
func (t *MultiTable) At(idx uint64) int { return t.vals[idx] }

// Set assigns the function value at cell index idx.
func (t *MultiTable) Set(idx uint64, v int) { t.vals[idx] = v }

// Values returns the sorted set of distinct function values — the terminal
// nodes of the minimum MTBDD.
func (t *MultiTable) Values() []int {
	seen := map[int]bool{}
	for _, v := range t.vals {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Dense returns a copy of the table with values renumbered to 0..k−1 in
// increasing value order, along with the value corresponding to each dense
// code. Dense codes are the terminal IDs used by the dynamic program.
func (t *MultiTable) Dense() (codes []uint32, terminals []int) {
	terminals = t.Values()
	rank := make(map[int]uint32, len(terminals))
	for i, v := range terminals {
		rank[v] = uint32(i)
	}
	codes = make([]uint32, len(t.vals))
	for i, v := range t.vals {
		codes[i] = rank[v]
	}
	return codes, terminals
}

// Equal reports whether the two tables are the same function.
func (t *MultiTable) Equal(o *MultiTable) bool {
	if t.n != o.n {
		return false
	}
	for i := range t.vals {
		if t.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}
