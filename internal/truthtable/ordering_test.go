package truthtable

import (
	"math/rand"
	"testing"
)

func TestIdentityAndReverse(t *testing.T) {
	id := IdentityOrdering(4)
	rev := ReverseOrdering(4)
	if !id.Valid() || !rev.Valid() {
		t.Fatalf("orderings invalid")
	}
	for i := 0; i < 4; i++ {
		if id[i] != i {
			t.Errorf("identity[%d] = %d", i, id[i])
		}
		if rev[i] != 3-i {
			t.Errorf("reverse[%d] = %d", i, rev[i])
		}
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		o    Ordering
		want bool
	}{
		{Ordering{}, true},
		{Ordering{0}, true},
		{Ordering{1, 0, 2}, true},
		{Ordering{0, 0, 1}, false},
		{Ordering{0, 3, 1}, false},
		{Ordering{-1, 0}, false},
	}
	for _, c := range cases {
		if c.o.Valid() != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.o, c.o.Valid(), c.want)
		}
	}
}

func TestRootFirstRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		o := RandomOrdering(n, rng)
		back := FromRootFirst(o.RootFirst())
		for i := range o {
			if back[i] != o[i] {
				t.Fatalf("RootFirst round trip failed: %v vs %v", o, back)
			}
		}
	}
}

func TestLevelOf(t *testing.T) {
	o := Ordering{2, 0, 1} // x2 at level 1, x0 at level 2, x1 at level 3 (root)
	if o.LevelOf(2) != 1 || o.LevelOf(0) != 2 || o.LevelOf(1) != 3 {
		t.Errorf("LevelOf wrong: %d %d %d", o.LevelOf(2), o.LevelOf(0), o.LevelOf(1))
	}
	if o.LevelOf(9) != 0 {
		t.Errorf("LevelOf missing variable should be 0")
	}
}

func TestOrderingString(t *testing.T) {
	// Bottom-up (2,0,1) means root-first (x2, x1, x3) in 1-based names.
	o := Ordering{2, 0, 1}
	if got := o.String(); got != "(x2, x1, x3)" {
		t.Errorf("String = %q", got)
	}
}

func TestMoveTo(t *testing.T) {
	o := Ordering{0, 1, 2, 3, 4}
	o.MoveTo(1, 3)
	want := Ordering{0, 2, 3, 1, 4}
	for i := range want {
		if o[i] != want[i] {
			t.Fatalf("MoveTo forward: got %v, want %v", o, want)
		}
	}
	o = Ordering{0, 1, 2, 3, 4}
	o.MoveTo(3, 0)
	want = Ordering{3, 0, 1, 2, 4}
	for i := range want {
		if o[i] != want[i] {
			t.Fatalf("MoveTo backward: got %v, want %v", o, want)
		}
	}
	o.MoveTo(2, 2) // no-op
	if !o.Valid() {
		t.Errorf("MoveTo no-op broke ordering")
	}
}

func TestMoveToStaysPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := RandomOrdering(9, rng)
	for trial := 0; trial < 200; trial++ {
		o.MoveTo(rng.Intn(9), rng.Intn(9))
		if !o.Valid() {
			t.Fatalf("MoveTo produced non-permutation: %v", o)
		}
	}
}

func TestSwap(t *testing.T) {
	o := Ordering{0, 1, 2}
	o.Swap(0, 2)
	if o[0] != 2 || o[2] != 0 {
		t.Errorf("Swap failed: %v", o)
	}
}

func TestMultiTableBasics(t *testing.T) {
	// Weight function: number of true inputs.
	w := MultiFromFunc(3, func(x []bool) int {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return c
	})
	if w.At(0) != 0 || w.At(7) != 3 || w.At(5) != 2 {
		t.Errorf("weight values wrong: %d %d %d", w.At(0), w.At(7), w.At(5))
	}
	vals := w.Values()
	if len(vals) != 4 || vals[0] != 0 || vals[3] != 3 {
		t.Errorf("Values = %v", vals)
	}
	codes, terms := w.Dense()
	if len(terms) != 4 {
		t.Errorf("Dense terminals = %v", terms)
	}
	for i, c := range codes {
		if terms[c] != w.At(uint64(i)) {
			t.Errorf("Dense code mismatch at %d", i)
		}
	}
}

func TestFromBool(t *testing.T) {
	b := Var(3, 1)
	m := FromBool(b)
	for idx := uint64(0); idx < b.Size(); idx++ {
		want := 0
		if b.Bit(idx) {
			want = 1
		}
		if m.At(idx) != want {
			t.Errorf("FromBool wrong at %d", idx)
		}
	}
	if !m.Equal(FromBool(b)) {
		t.Errorf("Equal failed")
	}
	if m.Equal(NewMulti(2)) {
		t.Errorf("Equal across n should be false")
	}
}
