package truthtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"obddopt/internal/bitops"
)

func TestNewAndSize(t *testing.T) {
	for n := 0; n <= 10; n++ {
		tt := New(n)
		if tt.NumVars() != n {
			t.Errorf("NumVars = %d, want %d", tt.NumVars(), n)
		}
		if tt.Size() != 1<<uint(n) {
			t.Errorf("Size = %d, want %d", tt.Size(), 1<<uint(n))
		}
		if c, v := tt.IsConst(); !c || v {
			t.Errorf("New(%d) should be constant false", n)
		}
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, MaxVars + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSetAndBit(t *testing.T) {
	tt := New(7)
	idxs := []uint64{0, 1, 63, 64, 65, 127}
	for _, i := range idxs {
		tt.Set(i, true)
	}
	for i := uint64(0); i < tt.Size(); i++ {
		want := false
		for _, j := range idxs {
			if i == j {
				want = true
			}
		}
		if tt.Bit(i) != want {
			t.Errorf("Bit(%d) = %v, want %v", i, tt.Bit(i), want)
		}
	}
	tt.Set(63, false)
	if tt.Bit(63) {
		t.Errorf("clear failed")
	}
}

func TestFromFuncAndEval(t *testing.T) {
	// Majority of three variables.
	maj := FromFunc(3, func(x []bool) bool {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return c >= 2
	})
	cases := []struct {
		x    []bool
		want bool
	}{
		{[]bool{false, false, false}, false},
		{[]bool{true, false, false}, false},
		{[]bool{true, true, false}, true},
		{[]bool{true, true, true}, true},
		{[]bool{false, true, true}, true},
	}
	for _, c := range cases {
		if maj.Eval(c.x) != c.want {
			t.Errorf("maj(%v) = %v, want %v", c.x, maj.Eval(c.x), c.want)
		}
	}
	if maj.CountOnes() != 4 {
		t.Errorf("CountOnes = %d, want 4", maj.CountOnes())
	}
}

func TestVarAndConst(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for v := 0; v < n; v++ {
			x := Var(n, v)
			for idx := uint64(0); idx < x.Size(); idx++ {
				if x.Bit(idx) != (idx>>uint(v)&1 == 1) {
					t.Fatalf("Var(%d,%d) wrong at %d", n, v, idx)
				}
			}
		}
	}
	tr := Const(4, true)
	if c, v := tr.IsConst(); !c || !v {
		t.Errorf("Const(4,true) not constant true")
	}
	if tr.CountOnes() != 16 {
		t.Errorf("Const true CountOnes = %d", tr.CountOnes())
	}
}

func TestAlgebra(t *testing.T) {
	n := 5
	rng := rand.New(rand.NewSource(1))
	a, b := Random(n, rng), Random(n, rng)
	and, or, xor, nota := a.And(b), a.Or(b), a.Xor(b), a.Not()
	for idx := uint64(0); idx < a.Size(); idx++ {
		av, bv := a.Bit(idx), b.Bit(idx)
		if and.Bit(idx) != (av && bv) {
			t.Fatalf("And wrong at %d", idx)
		}
		if or.Bit(idx) != (av || bv) {
			t.Fatalf("Or wrong at %d", idx)
		}
		if xor.Bit(idx) != (av != bv) {
			t.Fatalf("Xor wrong at %d", idx)
		}
		if nota.Bit(idx) != !av {
			t.Fatalf("Not wrong at %d", idx)
		}
	}
	// De Morgan: ¬(a ∧ b) == ¬a ∨ ¬b.
	if !and.Not().Equal(a.Not().Or(b.Not())) {
		t.Errorf("De Morgan violated")
	}
}

func TestCofactorShannon(t *testing.T) {
	// Shannon expansion: f = x̄_v f0 + x_v f1, checked by re-evaluation.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		f := Random(n, rng)
		v := rng.Intn(n)
		f0, f1 := f.Cofactor(v, false), f.Cofactor(v, true)
		if f0.NumVars() != n-1 || f1.NumVars() != n-1 {
			t.Fatalf("cofactor variable count wrong")
		}
		for idx := uint64(0); idx < f.Size(); idx++ {
			sub, bit := bitops.ExtractIndex(idx, uint(v))
			var want bool
			if bit == 1 {
				want = f1.Bit(sub)
			} else {
				want = f0.Bit(sub)
			}
			if f.Bit(idx) != want {
				t.Fatalf("Shannon expansion fails: n=%d v=%d idx=%d", n, v, idx)
			}
		}
	}
}

func TestDependsOnAndSupport(t *testing.T) {
	// f = x0 XOR x2 over 4 variables: depends on 0 and 2 only.
	f := Var(4, 0).Xor(Var(4, 2))
	wantDep := []bool{true, false, true, false}
	for v, want := range wantDep {
		if f.DependsOn(v) != want {
			t.Errorf("DependsOn(%d) = %v, want %v", v, f.DependsOn(v), want)
		}
	}
	if f.Support() != bitops.Mask(0b0101) {
		t.Errorf("Support = %#b", f.Support())
	}
	c := Const(3, true)
	if c.Support() != 0 {
		t.Errorf("constant function should have empty support")
	}
}

func TestHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 9; n++ {
		f := Random(n, rng)
		s := f.Hex()
		g, err := ParseHex(s)
		if err != nil {
			t.Fatalf("ParseHex(%q): %v", s, err)
		}
		if !f.Equal(g) {
			t.Errorf("hex round trip failed for n=%d: %q", n, s)
		}
	}
}

func TestHexKnownValues(t *testing.T) {
	// x0 over 2 vars: cells 1,3 true → bits 1010 → hex "a".
	if got := Var(2, 0).Hex(); got != "2:a" {
		t.Errorf("Var(2,0).Hex() = %q, want 2:a", got)
	}
	// AND of two vars: cell 3 only → 1000 → "8".
	if got := Var(2, 0).And(Var(2, 1)).Hex(); got != "2:8" {
		t.Errorf("AND hex = %q, want 2:8", got)
	}
}

func TestParseHexErrors(t *testing.T) {
	bad := []string{"", "3", "abc", "2:xyz", "2:aaa", "-1:a", "99:0"}
	for _, s := range bad {
		if _, err := ParseHex(s); err == nil {
			t.Errorf("ParseHex(%q) should fail", s)
		}
	}
}

func TestEqualDifferentN(t *testing.T) {
	if New(3).Equal(New(4)) {
		t.Errorf("tables of different n must not be Equal")
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	a := Random(8, rand.New(rand.NewSource(5)))
	b := Random(8, rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Errorf("Random not deterministic for fixed seed")
	}
}

// Property: cofactoring on val and !val partitions the ones count.
func TestCofactorCountProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, vRaw uint8) bool {
		n := 1 + int(nRaw%7)
		v := int(vRaw) % n
		tt := Random(n, rand.New(rand.NewSource(seed)))
		return tt.Cofactor(v, false).CountOnes()+tt.Cofactor(v, true).CountOnes() == tt.CountOnes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := Random(4, rng)
	sigma := []int{2, 0, 3, 1}
	g := f.Permute(sigma)
	x := make([]bool, 4)
	y := make([]bool, 4)
	for idx := uint64(0); idx < 16; idx++ {
		for i := 0; i < 4; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		for i := 0; i < 4; i++ {
			y[i] = x[sigma[i]]
		}
		if g.Eval(x) != f.Eval(y) {
			t.Fatalf("Permute wrong at %v", x)
		}
	}
	// Identity permutation is a fixed point; inverse composes to identity.
	if !f.Permute([]int{0, 1, 2, 3}).Equal(f) {
		t.Errorf("identity Permute changed the function")
	}
	inv := make([]int, 4)
	for i, v := range sigma {
		inv[v] = i
	}
	if !g.Permute(inv).Equal(f) {
		t.Errorf("inverse Permute does not round trip")
	}
	for _, bad := range [][]int{{0, 1}, {0, 0, 1, 2}, {0, 1, 2, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", bad)
				}
			}()
			f.Permute(bad)
		}()
	}
}
