// Package truthtable implements packed truth tables of Boolean functions,
// the input representation assumed by the Friedman–Supowit dynamic program
// (Theorem 5 of the restatement: "Suppose that the truth table of
// f : {0,1}^n → {0,1} is given as input").
//
// A Table stores the 2^n function values as a packed bit vector. The cell
// index of an assignment (x_0, …, x_{n−1}) is Σ x_i·2^i: variable i
// contributes bit i of the index. All cofactor and compaction index
// arithmetic throughout the repository relies on this convention.
//
// The package also defines Ordering, the shared representation of variable
// orderings. Following the papers' convention (§2.2 of the restatement),
// orderings are stored bottom-up: Ordering[0] is the variable read last
// (level 1, adjacent to the terminals) and Ordering[n−1] the variable read
// first (the root). Variables are 0-based in code; display helpers render
// the 1-based x_i names used in the papers.
package truthtable

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"obddopt/internal/bitops"
)

// MaxVars bounds the number of variables a Table supports. 2^30 bits is
// 128 MiB, already far past the reach of the exponential algorithms.
const MaxVars = 30

// Table is the truth table of a Boolean function over n variables, packed
// 64 values per word.
type Table struct {
	n     int
	words []uint64
}

// New returns the all-false function over n variables. It panics when n
// is out of range; NewChecked is the error-returning variant for callers
// handling untrusted input.
func New(n int) *Table {
	t, err := NewChecked(n)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// NewChecked is New returning an error instead of panicking when the
// variable count is outside [0, MaxVars].
func NewChecked(n int) (*Table, error) {
	if n < 0 || n > MaxVars {
		return nil, fmt.Errorf("truthtable: variable count %d out of range [0,%d]", n, MaxVars)
	}
	return &Table{n: n, words: make([]uint64, wordsFor(n))}, nil
}

func wordsFor(n int) int {
	size := uint64(1) << uint(n)
	return int((size + 63) / 64)
}

// FromFunc builds the table of f by evaluating it on all 2^n assignments.
// The assignment slice passed to f has x[i] = value of variable i.
func FromFunc(n int, f func(x []bool) bool) *Table {
	t := New(n)
	x := make([]bool, n)
	size := uint64(1) << uint(n)
	for idx := uint64(0); idx < size; idx++ {
		for i := 0; i < n; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		if f(x) {
			t.setBit(idx)
		}
	}
	return t
}

// NumVars returns n, the number of variables.
func (t *Table) NumVars() int { return t.n }

// Size returns 2^n, the number of cells.
func (t *Table) Size() uint64 { return 1 << uint(t.n) }

// Bit returns the function value at cell index idx.
func (t *Table) Bit(idx uint64) bool {
	return t.words[idx>>6]>>(idx&63)&1 == 1
}

func (t *Table) setBit(idx uint64)   { t.words[idx>>6] |= 1 << (idx & 63) }
func (t *Table) clearBit(idx uint64) { t.words[idx>>6] &^= 1 << (idx & 63) }

// Set assigns the function value at cell index idx.
func (t *Table) Set(idx uint64, v bool) {
	if v {
		t.setBit(idx)
	} else {
		t.clearBit(idx)
	}
}

// Eval evaluates the function on an assignment given as a bool slice
// (x[i] = variable i). It panics if len(x) != NumVars().
func (t *Table) Eval(x []bool) bool {
	if len(x) != t.n {
		panic("truthtable: Eval assignment length mismatch")
	}
	var idx uint64
	for i, v := range x {
		if v {
			idx |= 1 << uint(i)
		}
	}
	return t.Bit(idx)
}

// EvalMask evaluates the function on the assignment encoded as an index.
func (t *Table) EvalMask(idx uint64) bool { return t.Bit(idx) }

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := &Table{n: t.n, words: make([]uint64, len(t.words))}
	copy(c.words, t.words)
	return c
}

// Equal reports whether t and o are the same function over the same
// variable count.
func (t *Table) Equal(o *Table) bool {
	if t.n != o.n {
		return false
	}
	// Mask off unused high bits of the last word for n < 6.
	mask := lastWordMask(t.n)
	for i := range t.words {
		a, b := t.words[i], o.words[i]
		if i == len(t.words)-1 {
			a &= mask
			b &= mask
		}
		if a != b {
			return false
		}
	}
	return true
}

func lastWordMask(n int) uint64 {
	size := uint64(1) << uint(n)
	if size%64 == 0 {
		return ^uint64(0)
	}
	return uint64(1)<<(size%64) - 1
}

// CountOnes returns the number of satisfying assignments.
func (t *Table) CountOnes() uint64 {
	var c uint64
	mask := lastWordMask(t.n)
	for i, w := range t.words {
		if i == len(t.words)-1 {
			w &= mask
		}
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// IsConst reports whether the function is constant, and which constant.
func (t *Table) IsConst() (isConst, value bool) {
	ones := t.CountOnes()
	switch ones {
	case 0:
		return true, false
	case t.Size():
		return true, true
	}
	return false, false
}

// Cofactor returns the (n−1)-variable function f|_{x_v = val}. Variables
// above v shift down by one position (variable v+1 becomes variable v, …).
func (t *Table) Cofactor(v int, val bool) *Table {
	if v < 0 || v >= t.n {
		panic("truthtable: Cofactor variable out of range")
	}
	c := New(t.n - 1)
	b := uint64(0)
	if val {
		b = 1
	}
	half := uint64(1) << uint(t.n-1)
	for idx := uint64(0); idx < half; idx++ {
		if t.Bit(bitops.SpliceIndex(idx, uint(v), b)) {
			c.setBit(idx)
		}
	}
	return c
}

// DependsOn reports whether the function value depends on variable v,
// i.e. the two cofactors differ.
func (t *Table) DependsOn(v int) bool {
	half := uint64(1) << uint(t.n-1)
	for idx := uint64(0); idx < half; idx++ {
		if t.Bit(bitops.SpliceIndex(idx, uint(v), 0)) != t.Bit(bitops.SpliceIndex(idx, uint(v), 1)) {
			return true
		}
	}
	return false
}

// Support returns the mask of variables the function actually depends on.
func (t *Table) Support() bitops.Mask {
	var m bitops.Mask
	for v := 0; v < t.n; v++ {
		if t.DependsOn(v) {
			m = m.With(v)
		}
	}
	return m
}

// binaryOp applies op wordwise. Both tables must have the same n.
func (t *Table) binaryOp(o *Table, op func(a, b uint64) uint64) *Table {
	if t.n != o.n {
		panic("truthtable: variable count mismatch in binary operation")
	}
	r := New(t.n)
	for i := range t.words {
		r.words[i] = op(t.words[i], o.words[i])
	}
	return r
}

// And returns t ∧ o.
func (t *Table) And(o *Table) *Table {
	return t.binaryOp(o, func(a, b uint64) uint64 { return a & b })
}

// Or returns t ∨ o.
func (t *Table) Or(o *Table) *Table {
	return t.binaryOp(o, func(a, b uint64) uint64 { return a | b })
}

// Xor returns t ⊕ o.
func (t *Table) Xor(o *Table) *Table {
	return t.binaryOp(o, func(a, b uint64) uint64 { return a ^ b })
}

// Not returns ¬t.
func (t *Table) Not() *Table {
	r := New(t.n)
	for i := range t.words {
		r.words[i] = ^t.words[i]
	}
	return r
}

// Permute returns g(x_0, …, x_{n−1}) = f(x_{sigma[0]}, …, x_{sigma[n−1]}):
// the function obtained by relabeling variable sigma[i] to position i.
// sigma must be a permutation of {0, …, n−1}. The minimum diagram size is
// invariant under Permute (orderings relabel bijectively).
func (t *Table) Permute(sigma []int) *Table {
	if len(sigma) != t.n {
		panic("truthtable: Permute permutation length mismatch")
	}
	seen := make([]bool, t.n)
	for _, v := range sigma {
		if v < 0 || v >= t.n || seen[v] {
			panic("truthtable: Permute argument is not a permutation")
		}
		seen[v] = true
	}
	g := New(t.n)
	size := t.Size()
	for idx := uint64(0); idx < size; idx++ {
		// f's argument i takes the value of x_{sigma[i]}.
		var src uint64
		for i := 0; i < t.n; i++ {
			if idx>>uint(sigma[i])&1 == 1 {
				src |= 1 << uint(i)
			}
		}
		if t.Bit(src) {
			g.setBit(idx)
		}
	}
	return g
}

// Var returns the projection function x_v over n variables.
func Var(n, v int) *Table {
	if v < 0 || v >= n {
		panic("truthtable: Var index out of range")
	}
	t := New(n)
	size := t.Size()
	for idx := uint64(0); idx < size; idx++ {
		if idx>>uint(v)&1 == 1 {
			t.setBit(idx)
		}
	}
	return t
}

// Const returns the constant function over n variables.
func Const(n int, v bool) *Table {
	t := New(n)
	if v {
		for i := range t.words {
			t.words[i] = ^uint64(0)
		}
	}
	return t
}

// Random returns a uniformly random function over n variables drawn from rng.
func Random(n int, rng *rand.Rand) *Table {
	t := New(n)
	for i := range t.words {
		t.words[i] = rng.Uint64()
	}
	// Zero the unused tail so Equal/CountOnes invariants hold trivially.
	t.words[len(t.words)-1] &= lastWordMask(n)
	return t
}

// Hex serializes the table as a big-endian hex string of the packed bits
// (most significant cell first), prefixed by the variable count:
// "n:hexdigits". Tables with n < 2 are padded to one hex digit.
func (t *Table) Hex() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", t.n)
	size := t.Size()
	digits := int((size + 3) / 4)
	for d := digits - 1; d >= 0; d-- {
		var nib uint64
		for b := 0; b < 4; b++ {
			idx := uint64(d*4 + b)
			if idx < size && t.Bit(idx) {
				nib |= 1 << uint(b)
			}
		}
		fmt.Fprintf(&sb, "%x", nib)
	}
	return sb.String()
}

// ParseHex parses the format produced by Hex.
func ParseHex(s string) (*Table, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return nil, errors.New("truthtable: missing ':' in hex literal")
	}
	var n int
	if _, err := fmt.Sscanf(s[:colon], "%d", &n); err != nil {
		return nil, fmt.Errorf("truthtable: bad variable count %q", s[:colon])
	}
	if n < 0 || n > MaxVars {
		return nil, fmt.Errorf("truthtable: variable count %d out of range", n)
	}
	// Validate the digit count before allocating: a bare "30:" must not
	// cost a 128 MiB table just to be rejected.
	hexpart := s[colon+1:]
	size := uint64(1) << uint(n)
	digits := int((size + 3) / 4)
	if len(hexpart) != digits {
		return nil, fmt.Errorf("truthtable: expected %d hex digits for n=%d, got %d", digits, n, len(hexpart))
	}
	t := New(n)
	for pos, ch := range hexpart {
		d := digits - 1 - pos // digit index from least significant
		var nib uint64
		switch {
		case ch >= '0' && ch <= '9':
			nib = uint64(ch - '0')
		case ch >= 'a' && ch <= 'f':
			nib = uint64(ch-'a') + 10
		case ch >= 'A' && ch <= 'F':
			nib = uint64(ch-'A') + 10
		default:
			return nil, fmt.Errorf("truthtable: invalid hex digit %q", ch)
		}
		for b := 0; b < 4; b++ {
			idx := uint64(d*4 + b)
			if idx < size && nib>>uint(b)&1 == 1 {
				t.setBit(idx)
			}
		}
	}
	return t, nil
}

// String renders small tables as their hex literal.
func (t *Table) String() string { return t.Hex() }
