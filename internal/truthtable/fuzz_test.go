package truthtable

import (
	"strings"
	"testing"
)

// FuzzTruthTableNew checks the untrusted-input surface of the package:
// NewChecked must reject out-of-range arities with an error (never a
// panic), and ParseHex must either reject a malformed literal with an
// error or produce a table that round-trips through Hex unchanged. Run
// the seed corpus with plain `go test`; explore with
// `go test -fuzz FuzzTruthTableNew ./internal/truthtable`.
func FuzzTruthTableNew(f *testing.F) {
	f.Add(0, "0:0")
	f.Add(3, "3:ff")
	f.Add(5, "5:deadbeef")
	f.Add(MaxVars, "2:bad")
	f.Add(-1, "30:")
	f.Add(1<<30, ":")
	f.Add(4, "4:012g")
	f.Add(2, "-7:f")
	f.Fuzz(func(t *testing.T, n int, hex string) {
		tt, err := NewChecked(n)
		if err != nil {
			if n >= 0 && n <= MaxVars {
				t.Fatalf("NewChecked(%d) rejected an in-range arity: %v", n, err)
			}
		} else {
			if n < 0 || n > MaxVars {
				t.Fatalf("NewChecked(%d) accepted an out-of-range arity", n)
			}
			if tt.NumVars() != n || tt.CountOnes() != 0 {
				t.Fatalf("NewChecked(%d) = %d vars, %d ones; want %d vars, all false",
					n, tt.NumVars(), tt.CountOnes(), n)
			}
		}

		parsed, err := ParseHex(hex)
		if err != nil {
			return // rejected with an error: that is the contract
		}
		// Accepted literals must survive a Hex round trip with identical
		// semantics (case and the canonical "n:" prefix normalize).
		out := parsed.Hex()
		back, err := ParseHex(out)
		if err != nil {
			t.Fatalf("Hex output %q of accepted literal %q does not reparse: %v", out, hex, err)
		}
		if !back.Equal(parsed) {
			t.Fatalf("round trip changed the table: %q -> %q", hex, out)
		}
		if !strings.EqualFold(back.Hex(), out) {
			t.Fatalf("Hex is not a fixed point: %q -> %q", out, back.Hex())
		}
	})
}
