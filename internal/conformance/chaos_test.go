package conformance

import (
	"context"
	"reflect"
	"testing"
)

func chaosRequests(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 60
	}
	// The acceptance floor: >= 200 seeded fault-injected requests with
	// zero invariant violations and zero goroutine leaks.
	return 200
}

// TestRunChaos drives the full fault mix against a real in-process
// server and asserts the service contract held for every response.
func TestRunChaos(t *testing.T) {
	rep, err := RunChaos(context.Background(), ChaosConfig{Seed: 1701, Requests: chaosRequests(t)})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation (reproduce with seed %d): %s", rep.Seed, v)
	}
	if rep.GoroutineLeak {
		t.Errorf("goroutine leak: %d before, %d after", rep.GoroutinesBefore, rep.GoroutinesAfter)
	}
	if rep.Successes == 0 {
		t.Error("chaos run produced no verified successes")
	}
	if rep.Fault.Resets == 0 || rep.Fault.Truncated == 0 || rep.Fault.Storm429 == 0 {
		t.Errorf("fault mix injected too little: %+v", rep.Fault)
	}
	if len(rep.TransportFaults) == 0 {
		t.Error("no transport fault ever surfaced to the client")
	}
	if rep.SolverRuns == 0 {
		t.Error("server never ran a solver")
	}
	if rep.Cache.Hits == 0 {
		t.Error("the repeated plan never hit the result cache")
	}
	t.Logf("seed=%d successes=%d sentinels=%v transport=%v solver_runs=%d cache=%+v",
		rep.Seed, rep.Successes, rep.Sentinels, rep.TransportFaults, rep.SolverRuns, rep.Cache)
}

// TestRunChaosDeterministic: the same seed replays the same outcome
// counts — what makes a printed chaos seed a reproduction recipe.
func TestRunChaosDeterministic(t *testing.T) {
	n := chaosRequests(t)
	if !testing.Short() {
		n = 100 // two full runs; keep the pair brisk
	}
	run := func() *ChaosReport {
		rep, err := RunChaos(context.Background(), ChaosConfig{Seed: 77, Requests: n})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("violations: %v", rep.Violations)
		}
		return rep
	}
	a, b := run(), run()
	if a.Successes != b.Successes ||
		!reflect.DeepEqual(a.Sentinels, b.Sentinels) ||
		!reflect.DeepEqual(a.TransportFaults, b.TransportFaults) ||
		!reflect.DeepEqual(a.Fault, b.Fault) {
		t.Errorf("same seed, different runs:\n%+v %+v %+v %+v\n%+v %+v %+v %+v",
			a.Successes, a.Sentinels, a.TransportFaults, a.Fault,
			b.Successes, b.Sentinels, b.TransportFaults, b.Fault)
	}
}

// TestRunChaosStarvationBudget: with a high starvation probability the
// ErrBudgetExceeded path is exercised end-to-end and still classified
// as a sentinel, never a violation.
func TestRunChaosStarvationBudget(t *testing.T) {
	rep, err := RunChaos(context.Background(), ChaosConfig{
		Seed:       9,
		Requests:   80,
		BudgetProb: 0.5,
		Fault:      FaultConfig{Seed: 9, LatencyProb: 0.2}, // no drops: every outcome observable
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Sentinels["budget_exceeded"] == 0 {
		t.Errorf("starvation budgets never surfaced ErrBudgetExceeded: %+v", rep.Sentinels)
	}
}

// TestRunChaosCtxDeath: a dead context aborts the harness with its
// error instead of hanging or fabricating violations.
func TestRunChaosCtxDeath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunChaos(ctx, ChaosConfig{Seed: 4, Requests: 10}); err == nil {
		t.Fatal("canceled ctx: want error")
	}
}
