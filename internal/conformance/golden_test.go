package conformance

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGoldenCorpusSize pins the acceptance floor: the embedded corpus
// holds at least 50 verified entries covering both rules and several
// families, each with a well-formed table and ordering.
func TestGoldenCorpusSize(t *testing.T) {
	entries, err := DefaultGolden()
	if err != nil {
		t.Fatalf("DefaultGolden: %v", err)
	}
	if len(entries) < 50 {
		t.Fatalf("corpus has %d entries, want >= 50", len(entries))
	}
	rules, families := map[string]int{}, map[string]int{}
	for _, e := range entries {
		tt, _, err := e.decode()
		if err != nil {
			t.Fatalf("entry %q: %v", e.Table, err)
		}
		if len(e.Ordering) != tt.NumVars() {
			t.Errorf("entry %q: ordering length %d for n=%d", e.Table, len(e.Ordering), tt.NumVars())
		}
		if e.Source == "" {
			t.Errorf("entry %q: missing verification source", e.Table)
		}
		rules[e.Rule]++
		families[e.Family]++
	}
	if rules["obdd"] == 0 || rules["zdd"] == 0 {
		t.Errorf("corpus misses a rule: %v", rules)
	}
	if len(families) < 5 {
		t.Errorf("corpus covers %d families, want >= 5: %v", len(families), families)
	}
}

// TestVerifyGolden replays the whole corpus against every registered
// solver (bounded by the per-solver arity caps) — zero violations.
func TestVerifyGolden(t *testing.T) {
	entries, err := DefaultGolden()
	if err != nil {
		t.Fatalf("DefaultGolden: %v", err)
	}
	solvers := []string(nil) // all registered
	if testing.Short() {
		solvers = []string{"fs", "brute"}
	}
	rep, err := VerifyGolden(context.Background(), entries, solvers)
	if err != nil {
		t.Fatalf("VerifyGolden: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s %s solver=%s: %s", v.Entry.Table, v.Entry.Rule, v.Solver, v.Err)
	}
	if rep.Checks == 0 {
		t.Fatal("replay checked nothing")
	}
	t.Logf("entries=%d checks=%d skipped=%d", rep.Entries, rep.Checks, rep.Skipped)
}

// TestVerifyGoldenDetectsCorruption proves the replay can actually
// fail: corrupting MinCost, the recorded ordering, or the table literal
// must each surface a violation.
func TestVerifyGoldenDetectsCorruption(t *testing.T) {
	entries, err := DefaultGolden()
	if err != nil {
		t.Fatalf("DefaultGolden: %v", err)
	}
	small := entries[0]
	for _, e := range entries {
		if tt, _, err := e.decode(); err == nil && tt.NumVars() <= 4 && e.MinCost > 0 {
			small = e
			break
		}
	}

	cases := map[string]func(e GoldenEntry) GoldenEntry{
		"min-cost": func(e GoldenEntry) GoldenEntry { e.MinCost++; return e },
		"ordering": func(e GoldenEntry) GoldenEntry {
			e.Ordering = e.Ordering[:len(e.Ordering)-1] // no longer a permutation
			return e
		},
		"table": func(e GoldenEntry) GoldenEntry { e.Table = "not-a-table"; return e },
		"rule":  func(e GoldenEntry) GoldenEntry { e.Rule = "bogus"; return e },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			rep, err := VerifyGolden(context.Background(), []GoldenEntry{corrupt(small)}, []string{"fs"})
			if err != nil {
				t.Fatalf("VerifyGolden: %v", err)
			}
			if len(rep.Violations) == 0 {
				t.Errorf("corrupted entry (%s) replayed clean", name)
			}
		})
	}
}

// TestLoadGolden round-trips a corpus file and rejects garbage.
func TestLoadGolden(t *testing.T) {
	entries, err := DefaultGolden()
	if err != nil {
		t.Fatalf("DefaultGolden: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "golden.json")
	data, err := json.Marshal(entries[:3])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGolden(path)
	if err != nil {
		t.Fatalf("LoadGolden: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(got))
	}
	if _, err := LoadGolden(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGolden(bad); err == nil {
		t.Error("malformed file: want error")
	}
}

// TestGenerateGoldenMatchesCorpus regenerates the corpus and compares
// it to the embedded file, so the checked-in artifact can never drift
// from its generator. Skipped in -short (regeneration solves ~230
// instances).
func TestGenerateGoldenMatchesCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("regeneration is a long test")
	}
	want, err := DefaultGolden()
	if err != nil {
		t.Fatalf("DefaultGolden: %v", err)
	}
	got, err := GenerateGolden(context.Background())
	if err != nil {
		t.Fatalf("GenerateGolden: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("generator yields %d entries, corpus has %d — rerun `bddverify -gen`", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		g.Ordering, w.Ordering = nil, nil // ordering-class: any optimum is valid
		if !reflect.DeepEqual(g, w) {
			t.Errorf("entry %d drifted:\n gen %+v\n file %+v — rerun `bddverify -gen`", i, g, w)
		}
		if gotLen, wantLen := len(got[i].Ordering), len(want[i].Ordering); gotLen != wantLen {
			t.Errorf("entry %d: ordering length %d vs %d", i, gotLen, wantLen)
		}
	}
}
