package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// This file is the fault injector of the chaos harness: a deterministic
// seed-driven http.RoundTripper that sits between the obddd Client and
// Server and injects latency, connection resets, mid-body truncation,
// and 429/503 storms. Every decision comes from one seeded PRNG drawn
// under a lock in request order, so a chaos run that drives requests
// sequentially replays bit-identically from its seed.

// ErrInjectedReset is the transport error FaultRT returns for an
// injected connection reset. The chaos invariant checker recognizes it
// (via errors.Is through the client's %w wrapping) as an injected
// fault rather than a service bug.
var ErrInjectedReset = errors.New("faultrt: injected connection reset")

// FaultConfig parameterizes one fault plan. Probabilities are per
// request, evaluated in the fixed order reset → storm → truncate →
// latency; at most one response-altering fault fires per request
// (latency composes with a clean forward). The zero value injects
// nothing.
type FaultConfig struct {
	// Seed drives every injection decision.
	Seed int64
	// ResetProb drops the request with ErrInjectedReset. Half the
	// resets (by a deterministic coin) happen before the request is
	// forwarded — the server never sees it — and half after, discarding
	// a response the server already produced.
	ResetProb float64
	// TruncateProb forwards the request but cuts the response body
	// mid-stream, so the client's read fails with io.ErrUnexpectedEOF.
	TruncateProb float64
	// Code429Prob / Code503Prob synthesize an admission-style rejection
	// (WireError code "saturated" / "draining") without contacting the
	// server, opening a storm: the next StormLen-1 requests get the
	// same synthetic rejection.
	Code429Prob float64
	Code503Prob float64
	// StormLen is the total length of a synthetic 429/503 storm
	// (default 3).
	StormLen int
	// LatencyProb delays the forwarded request by up to MaxLatency
	// (default 2ms), honoring the request context while sleeping.
	LatencyProb float64
	MaxLatency  time.Duration
}

// FaultStats counts what the injector did, keyed for reports.
type FaultStats struct {
	Requests  int `json:"requests"`
	Clean     int `json:"clean"`
	Resets    int `json:"resets"`
	Truncated int `json:"truncated"`
	Storm429  int `json:"storm_429"`
	Storm503  int `json:"storm_503"`
	Delayed   int `json:"delayed"`
}

// FaultRT is the fault-injecting RoundTripper. Create with NewFaultRT,
// install as an http.Client Transport, and flip Enable around traffic
// that must pass untouched (dialing, post-run probes). It is safe for
// concurrent use; decisions are serialized in arrival order.
type FaultRT struct {
	next http.RoundTripper
	cfg  FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	enabled   bool
	stormLeft int
	stormCode int
	stats     FaultStats
}

// NewFaultRT wraps next (nil selects a fresh keep-alive-free
// http.Transport, so chaos runs hold no idle-connection goroutines)
// with the configured fault plan. The injector starts disabled.
func NewFaultRT(next http.RoundTripper, cfg FaultConfig) *FaultRT {
	if next == nil {
		next = &http.Transport{DisableKeepAlives: true}
	}
	if cfg.StormLen <= 0 {
		cfg.StormLen = 3
	}
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 2 * time.Millisecond
	}
	return &FaultRT{next: next, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Enable turns injection on or off. Disabled, FaultRT forwards
// untouched (still counting Requests/Clean).
func (f *FaultRT) Enable(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.enabled = on
}

// Stats snapshots the injection counters.
func (f *FaultRT) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// CloseIdleConnections releases the underlying transport's idle
// connections so goroutine counts can return to baseline after a run.
func (f *FaultRT) CloseIdleConnections() {
	type closeIdler interface{ CloseIdleConnections() }
	if ci, ok := f.next.(closeIdler); ok {
		ci.CloseIdleConnections()
	}
}

// decision is the per-request fault plan drawn under the lock.
type decision struct {
	reset       bool
	resetBefore bool
	truncate    bool
	stormCode   int // 0 none, else 429 or 503
	delay       time.Duration
}

func (f *FaultRT) decide() decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Requests++
	if !f.enabled {
		f.stats.Clean++
		return decision{}
	}
	var d decision
	if f.stormLeft > 0 {
		f.stormLeft--
		d.stormCode = f.stormCode
	} else {
		switch r := f.rng.Float64(); {
		case r < f.cfg.ResetProb:
			d.reset = true
			d.resetBefore = f.rng.Intn(2) == 0
		case r < f.cfg.ResetProb+f.cfg.TruncateProb:
			d.truncate = true
		case r < f.cfg.ResetProb+f.cfg.TruncateProb+f.cfg.Code429Prob:
			d.stormCode = http.StatusTooManyRequests
		case r < f.cfg.ResetProb+f.cfg.TruncateProb+f.cfg.Code429Prob+f.cfg.Code503Prob:
			d.stormCode = http.StatusServiceUnavailable
		}
		if d.stormCode != 0 {
			f.stormCode = d.stormCode
			f.stormLeft = f.cfg.StormLen - 1
		}
	}
	if f.rng.Float64() < f.cfg.LatencyProb {
		d.delay = time.Duration(1 + f.rng.Int63n(int64(f.cfg.MaxLatency)))
	}
	switch {
	case d.reset:
		f.stats.Resets++
	case d.truncate:
		f.stats.Truncated++
	case d.stormCode == http.StatusTooManyRequests:
		f.stats.Storm429++
	case d.stormCode == http.StatusServiceUnavailable:
		f.stats.Storm503++
	default:
		f.stats.Clean++
	}
	if d.delay > 0 {
		f.stats.Delayed++
	}
	return d
}

// RoundTrip implements http.RoundTripper with the drawn fault plan.
func (f *FaultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	d := f.decide()
	if d.delay > 0 {
		t := time.NewTimer(d.delay)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		case <-t.C:
		}
	}
	if d.reset && d.resetBefore {
		return nil, ErrInjectedReset
	}
	if d.stormCode != 0 {
		return syntheticRejection(req, d.stormCode), nil
	}
	resp, err := f.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.reset {
		// Post-dispatch reset: the server did the work, the client
		// never learns the outcome.
		resp.Body.Close()
		return nil, ErrInjectedReset
	}
	if d.truncate {
		return truncateBody(resp)
	}
	return resp, nil
}

// syntheticRejection fabricates the admission-control rejection the
// real server would send when saturated (429) or draining (503),
// matching the wire schema so the typed client maps it onto
// ErrSaturated / ErrDraining.
func syntheticRejection(req *http.Request, code int) *http.Response {
	wireCode := "saturated"
	if code == http.StatusServiceUnavailable {
		wireCode = "draining"
	}
	body := fmt.Sprintf(`{"error":{"code":%q,"message":"faultrt: injected %d storm"}}`, wireCode, code)
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		h.Set("Retry-After", "1")
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody reads the true response and re-bodies it so the reader
// gets roughly half the bytes and then io.ErrUnexpectedEOF — the
// signature of a connection cut mid-body.
func truncateBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	cut := len(data) / 2
	resp.Body = io.NopCloser(&truncatedReader{data: data[:cut]})
	resp.ContentLength = int64(len(data))
	resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	return resp, nil
}

// truncatedReader yields its data and then fails with
// io.ErrUnexpectedEOF instead of a clean EOF.
type truncatedReader struct {
	data []byte
	off  int
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, t.data[t.off:])
	t.off += n
	return n, nil
}
