// Package conformance is the repository's verification subsystem: a
// metamorphic oracle library cross-checking every registered solver
// against the algebraic invariants the paper proves (Lemma 3 level-width
// invariance under relabeling, Lemma 4 exact-solver agreement, Lemmas
// 7/8 shared-forest consistency), a fault-injecting chaos harness for
// the obddd network service, and a golden corpus of known-optimal
// orderings replayed by cmd/bddverify.
//
// Everything in the package is deterministic from a seed: a failing
// suite, chaos run or soak prints the seed that reproduces it.
package conformance

import (
	"math/rand"

	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

// Family is one seeded generator of a structured truth-table family.
// The metamorphic properties hold for arbitrary Boolean functions, but
// structured families (symmetric, threshold, Achilles-heel, read-once,
// sparse) exercise solver code paths — wide levels, skipped levels,
// heavy sharing — that uniform random tables almost never reach.
type Family struct {
	// Name identifies the family in reports and violation records.
	Name string
	// MinVars and MaxVars bound the variable counts the generator
	// supports; the suite clamps its requested arity into this range.
	MinVars, MaxVars int
	// New returns a table over n variables, deterministic in rng.
	New func(n int, rng *rand.Rand) *truthtable.Table
}

// Families returns the table families the conformance suite draws from.
// The slice is freshly allocated; callers may filter or reorder it.
func Families() []Family {
	return []Family{
		{
			// Value depends only on the assignment's weight: every
			// ordering gives the same profile, so any solver that breaks
			// ties or counts levels wrongly disagrees immediately.
			Name: "symmetric", MinVars: 1, MaxVars: 16,
			New: func(n int, rng *rand.Rand) *truthtable.Table {
				spectrum := make([]bool, n+1)
				for i := range spectrum {
					spectrum[i] = rng.Intn(2) == 1
				}
				return funcs.Symmetric(n, spectrum)
			},
		},
		{
			// [Σ x_i ≥ k] for a random k — totally symmetric with O(n)
			// width per level.
			Name: "threshold", MinVars: 1, MaxVars: 16,
			New: func(n int, rng *rand.Rand) *truthtable.Table {
				return funcs.Threshold(n, 1+rng.Intn(n))
			},
		},
		{
			// The papers' Fig. 1 ordering-sensitivity function
			// x₀x₁ + x₂x₃ + …; on odd arities the last variable is
			// irrelevant, which doubles as a built-in dummy-variable case.
			Name: "achilles", MinVars: 2, MaxVars: 16,
			New: func(n int, rng *rand.Rand) *truthtable.Table {
				pairs := n / 2
				return truthtable.FromFunc(n, func(x []bool) bool {
					for i := 0; i < 2*pairs; i += 2 {
						if x[i] && x[i+1] {
							return true
						}
					}
					return false
				})
			},
		},
		{
			// A random read-once formula: each variable appears exactly
			// once in a random AND/OR chain over a random permutation.
			// Read-once functions have linear-size minimum OBDDs.
			Name: "readonce", MinVars: 1, MaxVars: 16,
			New: func(n int, rng *rand.Rand) *truthtable.Table {
				perm := rng.Perm(n)
				ops := make([]bool, n) // true = AND, false = OR
				for i := range ops {
					ops[i] = rng.Intn(2) == 1
				}
				return truthtable.FromFunc(n, func(x []bool) bool {
					acc := x[perm[0]]
					for i := 1; i < n; i++ {
						if ops[i] {
							acc = acc && x[perm[i]]
						} else {
							acc = acc || x[perm[i]]
						}
					}
					return acc
				})
			},
		},
		{
			// Random k-sparse: exactly k satisfying assignments for a
			// small random k — the regime ZDDs are built for, where the
			// zero-suppressed rule skips almost every node.
			Name: "sparse", MinVars: 1, MaxVars: 16,
			New: func(n int, rng *rand.Rand) *truthtable.Table {
				t := truthtable.New(n)
				k := 1 + rng.Intn(4)
				for i := 0; i < k; i++ {
					t.Set(uint64(rng.Intn(1<<uint(n))), true)
				}
				return t
			},
		},
		{
			// Uniformly random tables keep the structured families
			// honest: no generator bias survives this control.
			Name: "random", MinVars: 1, MaxVars: 16,
			New:  truthtable.Random,
		},
	}
}
