package conformance

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/funcs"
	"obddopt/internal/server"
)

// TestArtifactTruncationSurfacesUnexpectedEOF is the chaos-harness
// contract for artifact transfers: a raw (application/x-obdd) response
// cut mid-body must fail loudly with io.ErrUnexpectedEOF — never decode
// into a silently short diagram. The server sets Content-Length on the
// raw path exactly so that a cut transfer is detectable; this test
// drives that end to end through the real HTTP stack and the fault
// injector.
func TestArtifactTruncationSurfacesUnexpectedEOF(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	srv := server.New(ctx, server.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	frt := NewFaultRT(nil, FaultConfig{Seed: 1, TruncateProb: 1})
	client, err := server.DialWithClient(ctx, "http://"+ln.Addr().String(), &http.Client{Transport: frt})
	if err != nil {
		t.Fatal(err)
	}
	defer frt.CloseIdleConnections()

	tt := funcs.Parity(5)

	// Clean pass first: the raw path works and the bytes decode to the
	// solved function.
	raw, err := client.SolveArtifactRaw(ctx, tt, nil)
	if err != nil {
		t.Fatalf("clean raw artifact fetch: %v", err)
	}
	a, err := artifact.Decode(raw)
	if err != nil {
		t.Fatalf("clean raw artifact bytes: %v", err)
	}
	if err := artifact.Verify(a, tt); err != nil {
		t.Fatalf("clean raw artifact: %v", err)
	}

	// Now every response is cut mid-body. The read must surface the
	// truncation sentinel through the client's error wrapping.
	frt.Enable(true)
	_, err = client.SolveArtifactRaw(ctx, tt, nil)
	frt.Enable(false)
	if err == nil {
		t.Fatal("truncated artifact transfer returned no error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated artifact transfer: %v, want io.ErrUnexpectedEOF through errors.Is", err)
	}
	if st := frt.Stats(); st.Truncated == 0 {
		t.Fatal("fault injector reports no truncation — the assertion exercised nothing")
	}

	// The verified JSON-envelope path over the same live server: decode
	// + re-verify happens client-side in SolveArtifact.
	res, av, err := client.SolveArtifact(ctx, tt, nil)
	if err != nil {
		t.Fatalf("SolveArtifact: %v", err)
	}
	if av.NodeCount() != res.MinCost {
		t.Fatalf("artifact NodeCount %d, result MinCost %d", av.NodeCount(), res.MinCost)
	}
	if !av.Equal(a) {
		t.Fatal("JSON-envelope artifact differs from the raw-path artifact for the same function")
	}
}
