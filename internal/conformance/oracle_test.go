package conformance

import (
	"context"
	"reflect"
	"testing"

	"obddopt/internal/core"

	_ "obddopt/internal/heuristics" // portfolio seeder, as in production binaries
)

// TestLibraryShape pins the acceptance floor: at least 5 property
// families and 5 table families, unique names, every property declaring
// its applicable rules.
func TestLibraryShape(t *testing.T) {
	props := Properties()
	if len(props) < 5 {
		t.Fatalf("only %d properties, want >= 5", len(props))
	}
	seen := map[string]bool{}
	for _, p := range props {
		if p.Name == "" || p.Doc == "" || p.Check == nil {
			t.Errorf("property %+v incomplete", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate property %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Rules) == 0 {
			t.Errorf("property %q declares no applicable rules", p.Name)
		}
	}
	fams := Families()
	if len(fams) < 5 {
		t.Fatalf("only %d table families, want >= 5", len(fams))
	}
	seen = map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.New == nil || f.MinVars < 1 || f.MaxVars < f.MinVars {
			t.Errorf("family %+v incomplete", f.Name)
		}
		if seen[f.Name] {
			t.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = true
	}
	if _, ok := PropertyByName("relabel"); !ok {
		t.Error("PropertyByName(relabel) not found")
	}
	if _, ok := PropertyByName("no-such"); ok {
		t.Error("PropertyByName invented a property")
	}
}

func suiteConfig(t *testing.T, seed int64) SuiteConfig {
	t.Helper()
	cfg := SuiteConfig{Seed: seed}
	if testing.Short() {
		cfg.TablesPerFamily = 1
		cfg.MaxVars = 5
	}
	return cfg
}

// TestRunSuite is the tentpole gate: every registered solver, both
// rules, all properties over all families — zero violations.
func TestRunSuite(t *testing.T) {
	rep, err := RunSuite(context.Background(), suiteConfig(t, 42))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Checks == 0 || rep.Tables == 0 {
		t.Fatalf("suite ran nothing: %+v", rep)
	}
	if len(rep.Solvers) != len(core.SolverNames()) {
		t.Errorf("suite covered solvers %v, registry has %v", rep.Solvers, core.SolverNames())
	}
	t.Logf("seed=%d checks=%d tables=%d", rep.Seed, rep.Checks, rep.Tables)
}

// TestRunSuiteDeterministic: identical seeds replay identical runs —
// the property that makes a printed seed a reproduction recipe.
func TestRunSuiteDeterministic(t *testing.T) {
	a, err := RunSuite(context.Background(), suiteConfig(t, 7))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunSuite(context.Background(), suiteConfig(t, 7))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	a.ElapsedMS, b.ElapsedMS = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

// TestRunSuiteCtxDeath: a dead context aborts the run with its error
// instead of recording bogus violations.
func TestRunSuiteCtxDeath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunSuite(ctx, SuiteConfig{Seed: 1})
	if err == nil {
		t.Fatal("canceled ctx: want error")
	}
	if len(rep.Violations) != 0 {
		t.Errorf("canceled run recorded violations: %v", rep.Violations)
	}
}

// TestSolveWithUnknownSolver: the oracle surfaces ErrInvalidInput for a
// solver name outside the registry rather than a panic or nil result.
func TestSolveWithUnknownSolver(t *testing.T) {
	fam := Families()[0]
	tt := fam.New(3, newTestRng(1))
	if _, err := solveWith(context.Background(), "no-such-solver", tt, core.OBDD); err == nil {
		t.Fatal("unknown solver: want error")
	}
}
