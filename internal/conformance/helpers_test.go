package conformance

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// contextWithTestTimeout is a short-lived context for tests that assert
// prompt cancellation behavior.
func contextWithTestTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 100*time.Millisecond)
}
