package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"time"

	"obddopt/internal/cache"
	"obddopt/internal/core"
	"obddopt/internal/server"
	"obddopt/internal/truthtable"
)

// This file is the chaos harness: it boots a real obddd Server on a
// loopback listener, dials it with the typed Client through the FaultRT
// injector, drives a deterministic request plan, and checks the service
// contract under fire. The invariants:
//
//  1. Every response is either a result bit-identical to the locally
//     computed proven optimum (the deterministic fs solver makes cached
//     and fresh answers byte-equal), or an error mapping onto a known
//     sentinel (ErrCanceled / ErrBudgetExceeded / ErrSaturated /
//     ErrDraining), or a transport failure carrying the injector's own
//     signature (ErrInjectedReset, io.ErrUnexpectedEOF). Anything else
//     — a wrong result, an unmapped error — is a violation.
//  2. After drain, the server answers ErrDraining.
//  3. After shutdown, the goroutine count returns to its pre-run
//     baseline (no leaked handlers, workers, or keep-alive loops).

// ChaosConfig parameterizes one chaos run. The zero value of every
// field has a working default applied by RunChaos.
type ChaosConfig struct {
	// Seed makes the run reproducible: the table pool, the request
	// plan, and every fault injection derive from it.
	Seed int64
	// Requests is the number of solve calls to drive (default 200).
	Requests int
	// Fault is the injection plan; a zero value selects
	// DefaultFaultConfig(Seed).
	Fault FaultConfig
	// Workers sizes the server's admission pool (default 2).
	Workers int
	// MaxVars bounds the pooled tables' arity (default 5 — small enough
	// that the reference solves are microseconds).
	MaxVars int
	// BudgetProb is the fraction of requests sent with a starvation
	// budget (MaxCells=1) to exercise the ErrBudgetExceeded path
	// end-to-end (default 0.08).
	BudgetProb float64
}

// DefaultFaultConfig is the standard chaos mix: frequent small delays,
// occasional resets and truncations, and short 429/503 storms.
func DefaultFaultConfig(seed int64) FaultConfig {
	return FaultConfig{
		Seed:         seed,
		ResetProb:    0.06,
		TruncateProb: 0.06,
		Code429Prob:  0.03,
		Code503Prob:  0.02,
		StormLen:     3,
		LatencyProb:  0.30,
		MaxLatency:   2 * time.Millisecond,
	}
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Requests <= 0 {
		c.Requests = 200
	}
	zero := FaultConfig{}
	if c.Fault == zero {
		c.Fault = DefaultFaultConfig(c.Seed)
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 5
	}
	if c.BudgetProb <= 0 {
		c.BudgetProb = 0.08
	}
	return c
}

// ChaosReport summarizes one chaos run. A run passes when Violations is
// empty and GoroutineLeak is false.
type ChaosReport struct {
	Seed     int64 `json:"seed"`
	Requests int   `json:"requests"`

	// Successes are responses with a nil error, every one verified
	// bit-identical to the local reference solve.
	Successes int `json:"successes"`
	// Sentinels counts error responses by sentinel name.
	Sentinels map[string]int `json:"sentinels,omitempty"`
	// TransportFaults counts injected-signature transport failures.
	TransportFaults map[string]int `json:"transport_faults,omitempty"`

	// SolverRuns is the server-side solver invocation count; the gap to
	// Successes is work served from cache or coalesced away.
	SolverRuns uint64      `json:"solver_runs"`
	Cache      cache.Stats `json:"cache"`
	Fault      FaultStats  `json:"fault"`

	GoroutinesBefore int  `json:"goroutines_before"`
	GoroutinesAfter  int  `json:"goroutines_after"`
	GoroutineLeak    bool `json:"goroutine_leak"`

	Violations []string `json:"violations,omitempty"`
	ElapsedMS  float64  `json:"elapsed_ms"`
}

// chaosCase is one pooled (table, rule) with its locally computed
// reference answer, serialized exactly as the client will re-serialize
// the server's.
type chaosCase struct {
	tt   *truthtable.Table
	rule core.Rule
	ref  []byte
}

// RunChaos executes one seeded chaos run against a fresh in-process
// server and returns the report. The returned error covers harness
// failures (listener, dial, reference solves, ctx death) — contract
// violations are reported in ChaosReport.Violations, not as errors.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &ChaosReport{
		Seed:            cfg.Seed,
		Requests:        cfg.Requests,
		Sentinels:       map[string]int{},
		TransportFaults: map[string]int{},
	}
	rep.GoroutinesBefore = runtime.NumGoroutine()

	pool, err := buildChaosPool(ctx, cfg)
	if err != nil {
		return rep, err
	}

	// Boot a real server on a loopback listener.
	srvCtx, srvStop := context.WithCancel(ctx)
	defer srvStop()
	srv := server.New(srvCtx, server.Config{
		Workers:     cfg.Workers,
		MaxDeadline: 10 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, fmt.Errorf("chaos: listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	defer func() {
		hs.Close()
		<-serveErr
	}()

	frt := NewFaultRT(nil, cfg.Fault)
	defer frt.CloseIdleConnections()
	client, err := server.DialWithClient(ctx, "http://"+ln.Addr().String(), &http.Client{Transport: frt})
	if err != nil {
		return rep, fmt.Errorf("chaos: dial: %w", err)
	}

	// The request plan is drawn up front so fault alignment depends
	// only on the seed, not on timing.
	planRng := rand.New(rand.NewSource(subSeed(cfg.Seed, 0x9a05)))
	frt.Enable(true)
	for i := 0; i < cfg.Requests; i++ {
		if err := ctx.Err(); err != nil {
			rep.ElapsedMS = msSince(start)
			return rep, err
		}
		cs := pool[planRng.Intn(len(pool))]
		p := &server.Params{Solver: "fs", Rule: cs.rule}
		starved := planRng.Float64() < cfg.BudgetProb
		if starved {
			p.Budget = core.Budget{MaxCells: 1}
		}
		res, err := client.Solve(ctx, cs.tt, p)
		classifyChaosOutcome(rep, i, cs, starved, res, err)
	}
	frt.Enable(false)

	// Drain, then verify the server refuses new work with ErrDraining.
	if err := srv.Drain(ctx); err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("drain failed: %v", err))
	}
	if _, err := client.Solve(ctx, pool[0].tt, &server.Params{Solver: "fs", Rule: pool[0].rule}); !errors.Is(err, server.ErrDraining) {
		rep.Violations = append(rep.Violations, fmt.Sprintf("post-drain solve returned %v, want ErrDraining", err))
	}

	rep.SolverRuns = srv.SolveCount()
	rep.Cache = srv.CacheStats()
	rep.Fault = frt.Stats()

	// Tear down and wait for goroutines to return to baseline.
	hs.Close()
	<-serveErr
	serveErr <- nil // keep the deferred drain from blocking
	srvStop()
	frt.CloseIdleConnections()
	rep.GoroutinesAfter = awaitGoroutineBaseline(ctx, rep.GoroutinesBefore)
	const slack = 3
	if rep.GoroutinesAfter > rep.GoroutinesBefore+slack {
		rep.GoroutineLeak = true
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"goroutine leak: %d before, %d after", rep.GoroutinesBefore, rep.GoroutinesAfter))
	}
	rep.ElapsedMS = msSince(start)
	return rep, nil
}

// buildChaosPool draws the table pool and computes each case's
// reference answer locally with the same deterministic fs solver the
// requests pin, so any server-side divergence — including a corrupted
// cache hit — is detectable byte-for-byte.
func buildChaosPool(ctx context.Context, cfg ChaosConfig) ([]chaosCase, error) {
	var pool []chaosCase
	fams := Families()
	for fi, fam := range fams {
		rng := rand.New(rand.NewSource(subSeed(cfg.Seed, 0xc4a5, uint64(fi))))
		n := clamp(2+rng.Intn(cfg.MaxVars-1), fam.MinVars, fam.MaxVars)
		tt := fam.New(n, rng)
		for _, rule := range bothRules {
			res, err := solveWith(ctx, "fs", tt, rule)
			if err != nil {
				return nil, fmt.Errorf("chaos: reference solve (%s, %s): %w", fam.Name, rule, err)
			}
			ref, err := json.Marshal(res)
			if err != nil {
				return nil, fmt.Errorf("chaos: marshal reference: %w", err)
			}
			pool = append(pool, chaosCase{tt: tt, rule: rule, ref: ref})
		}
	}
	return pool, nil
}

// classifyChaosOutcome buckets one response under the chaos contract
// and records a violation when it fits no bucket.
func classifyChaosOutcome(rep *ChaosReport, i int, cs chaosCase, starved bool, res *core.Result, err error) {
	switch {
	case err == nil:
		got, merr := json.Marshal(res)
		if merr != nil || !bytes.Equal(got, cs.ref) {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"request %d (table %s rule %s): result diverges from reference: got %s want %s",
				i, cs.tt.Hex(), cs.rule, got, cs.ref))
			return
		}
		rep.Successes++
	case errors.Is(err, core.ErrBudgetExceeded):
		if !starved {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"request %d: ErrBudgetExceeded without a starvation budget: %v", i, err))
			return
		}
		rep.Sentinels["budget_exceeded"]++
	case errors.Is(err, core.ErrCanceled):
		rep.Sentinels["canceled"]++
	case errors.Is(err, server.ErrSaturated):
		rep.Sentinels["saturated"]++
	case errors.Is(err, server.ErrDraining):
		rep.Sentinels["draining"]++
	case errors.Is(err, ErrInjectedReset):
		rep.TransportFaults["reset"]++
	case errors.Is(err, io.ErrUnexpectedEOF):
		rep.TransportFaults["truncated"]++
	default:
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"request %d: error maps onto no sentinel and carries no injected signature: %v", i, err))
	}
}

// awaitGoroutineBaseline polls until the goroutine count drops to the
// baseline (+small slack) or five seconds pass, returning the last
// observed count.
func awaitGoroutineBaseline(ctx context.Context, baseline int) int {
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline+slack && time.Now().Before(deadline) && ctx.Err() == nil {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
