package conformance

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// This file is the metamorphic oracle library: machine-checkable
// invariants of exact optimal-ordering solvers. Each Property takes a
// function, transforms it in a way with a *provable* effect on the
// minimum diagram size (none, or an exactly predicted delta), solves
// both sides with the solver under test, and fails on any disagreement.
// Because the expected outcome is derived from the paper's lemmas rather
// than from a reference implementation, the properties catch bugs that
// differential tests against a same-family implementation would share.

// solveWith runs the named registered solver on tt under rule with no
// deadline or budget, so any error is a conformance violation rather
// than an expected early stop (unless the parent ctx itself died).
func solveWith(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule) (*core.Result, error) {
	s, ok := core.LookupSolver(solver)
	if !ok {
		return nil, fmt.Errorf("%w: unknown solver %q (have %v)", core.ErrInvalidInput, solver, core.SolverNames())
	}
	return s(ctx, tt, &core.SolveOptions{Rule: rule})
}

// Property is one metamorphic invariant. Check solves with the named
// registered solver and returns nil when the invariant holds, a
// descriptive error when it is violated. rng drives the property's
// random choices (permutations, variable picks) and is deterministic
// per check.
type Property struct {
	// Name identifies the property in reports and violation records.
	Name string
	// Doc states the invariant and the lemma it derives from.
	Doc string
	// Rules lists the diagram rules the invariant is proven for (output
	// and input complementation preserve OBDD structure but not the
	// asymmetric zero-suppressed rule).
	Rules []core.Rule
	// Check runs the property for one (solver, table, rule) case.
	Check func(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error
}

var bothRules = []core.Rule{core.OBDD, core.ZDD}

// Properties returns the metamorphic property families the suite runs.
// The slice is freshly allocated; callers may filter it.
func Properties() []Property {
	return []Property{
		{
			Name:  "reconstruction",
			Doc:   "the returned ordering is a permutation achieving exactly the claimed MinCost, and the profile accounts for it (Lemma 4's recurrence reconstructed bottom-up)",
			Rules: bothRules,
			Check: checkReconstruction,
		},
		{
			Name:  "relabel",
			Doc:   "relabeling variables by a permutation σ leaves MinCost invariant and maps an optimal ordering through σ to an optimal ordering (Lemma 3: level widths depend only on the set of absorbed variables)",
			Rules: bothRules,
			Check: checkRelabel,
		},
		{
			Name:  "complement",
			Doc:   "complementing the output (¬f) preserves MinCost: the OBDD is the same diagram with the terminals exchanged",
			Rules: []core.Rule{core.OBDD},
			Check: checkComplement,
		},
		{
			Name:  "input-complement",
			Doc:   "complementing one input preserves MinCost: each node at that level swaps its children, the node count per level is unchanged",
			Rules: []core.Rule{core.OBDD},
			Check: checkInputComplement,
		},
		{
			Name:  "dummy-variable",
			Doc:   "adding an irrelevant variable changes MinCost by exactly the predicted amount (zero for OBDDs: the Shannon rule skips the level everywhere)",
			Rules: []core.Rule{core.OBDD},
			Check: checkDummyVariable,
		},
		{
			Name:  "shared-singleton",
			Doc:   "SolveShared on the singleton {f} equals Solve on f (Lemmas 7/8: the shared DP restricted to one root is the plain DP)",
			Rules: bothRules,
			Check: checkSharedSingleton,
		},
		{
			Name:  "agreement",
			Doc:   "every exact solver agrees with the Friedman–Supowit dynamic program on MinCost (Lemma 4: the recurrence has a unique value)",
			Rules: bothRules,
			Check: checkAgreement,
		},
		{
			Name:  "artifact",
			Doc:   "the OBDD artifact built under the solver's ordering round-trips losslessly through the canonical codec, evaluates identically to the source table on all 2^n inputs, counts satisfying assignments exactly, and (under the OBDD rule) has exactly MinCost nodes",
			Rules: bothRules,
			Check: checkArtifact,
		},
	}
}

// PropertyByName returns the named property.
func PropertyByName(name string) (Property, bool) {
	for _, p := range Properties() {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

func checkReconstruction(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	res, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	n := tt.NumVars()
	if res.N != n {
		return fmt.Errorf("result reports n=%d for an n=%d input", res.N, n)
	}
	if len(res.Ordering) != n || !res.Ordering.Valid() {
		return fmt.Errorf("ordering %v is not a permutation of %d variables", res.Ordering, n)
	}
	want := res.MinCost + uint64(res.Terminals)
	if res.Size != want {
		return fmt.Errorf("Size %d != MinCost %d + Terminals %d", res.Size, res.MinCost, res.Terminals)
	}
	if got := core.SizeUnder(tt, res.Ordering, rule, nil); got != want {
		return fmt.Errorf("ordering %v evaluates to size %d, result claims %d", res.Ordering, got, want)
	}
	var sum uint64
	for _, w := range res.Profile {
		sum += w
	}
	if sum != res.MinCost {
		return fmt.Errorf("profile %v sums to %d, MinCost is %d", res.Profile, sum, res.MinCost)
	}
	return nil
}

func checkRelabel(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	n := tt.NumVars()
	if n == 0 {
		return nil
	}
	ref, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	sigma := rng.Perm(n)
	g := tt.Permute(sigma)
	pres, err := solveWith(ctx, solver, g, rule)
	if err != nil {
		return fmt.Errorf("solve of relabeled table failed: %w", err)
	}
	if ref.MinCost != pres.MinCost {
		return fmt.Errorf("MinCost %d changed to %d under relabeling σ=%v", ref.MinCost, pres.MinCost, sigma)
	}
	if ref.Terminals != pres.Terminals {
		return fmt.Errorf("terminal count %d changed to %d under relabeling", ref.Terminals, pres.Terminals)
	}
	// f's variable i is g's variable sigma[i], so an optimal ordering of
	// f maps elementwise through sigma to an ordering of g that must
	// achieve the same size.
	mapped := make(truthtable.Ordering, n)
	for i, v := range ref.Ordering {
		mapped[i] = sigma[v]
	}
	want := ref.MinCost + uint64(ref.Terminals)
	if got := core.SizeUnder(g, mapped, rule, nil); got != want {
		return fmt.Errorf("σ-mapped optimal ordering %v has size %d on the relabeled table, want %d", mapped, got, want)
	}
	return nil
}

func checkComplement(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	ref, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	cres, err := solveWith(ctx, solver, tt.Not(), rule)
	if err != nil {
		return fmt.Errorf("solve of complement failed: %w", err)
	}
	if ref.MinCost != cres.MinCost {
		return fmt.Errorf("MinCost %d changed to %d under output complement", ref.MinCost, cres.MinCost)
	}
	return nil
}

func checkInputComplement(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	n := tt.NumVars()
	if n == 0 {
		return nil
	}
	v := rng.Intn(n)
	g := truthtable.FromFunc(n, func(x []bool) bool {
		y := append([]bool(nil), x...)
		y[v] = !y[v]
		return tt.Eval(y)
	})
	ref, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	cres, err := solveWith(ctx, solver, g, rule)
	if err != nil {
		return fmt.Errorf("solve of input-complemented table failed: %w", err)
	}
	if ref.MinCost != cres.MinCost {
		return fmt.Errorf("MinCost %d changed to %d when input x%d was complemented", ref.MinCost, cres.MinCost, v+1)
	}
	return nil
}

func checkDummyVariable(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	n := tt.NumVars()
	if n >= truthtable.MaxVars {
		return nil
	}
	p := rng.Intn(n + 1)
	g := truthtable.FromFunc(n+1, func(x []bool) bool {
		y := make([]bool, 0, n)
		y = append(y, x[:p]...)
		y = append(y, x[p+1:]...)
		return tt.Eval(y)
	})
	ref, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	dres, err := solveWith(ctx, solver, g, rule)
	if err != nil {
		return fmt.Errorf("solve with dummy variable failed: %w", err)
	}
	// Predicted delta for OBDDs: zero. The Shannon rule skips the
	// irrelevant level under every ordering, so the diagram is unchanged.
	if dres.MinCost != ref.MinCost {
		return fmt.Errorf("MinCost %d became %d after inserting an irrelevant variable at position %d (predicted delta 0)",
			ref.MinCost, dres.MinCost, p)
	}
	return nil
}

func checkSharedSingleton(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	res, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	sh, err := core.OptimalOrderingSharedCtx(ctx, []*truthtable.Table{tt}, core.NewSolveOptions(core.WithRule(rule)))
	if err != nil {
		return fmt.Errorf("shared solve failed: %w", err)
	}
	if res.MinCost != sh.MinCost {
		return fmt.Errorf("solver MinCost %d != shared-singleton MinCost %d", res.MinCost, sh.MinCost)
	}
	if res.Terminals != sh.Terminals {
		return fmt.Errorf("solver terminals %d != shared-singleton terminals %d", res.Terminals, sh.Terminals)
	}
	want := sh.MinCost + uint64(sh.Terminals)
	if got := core.SharedSizeUnder([]*truthtable.Table{tt}, sh.Ordering, rule); got != want {
		return fmt.Errorf("shared ordering %v evaluates to size %d, shared result claims %d", sh.Ordering, got, want)
	}
	return nil
}

func checkAgreement(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	res, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	ref, err := core.OptimalOrderingCtx(ctx, tt, core.NewSolveOptions(core.WithRule(rule)))
	if err != nil {
		return fmt.Errorf("reference DP failed: %w", err)
	}
	if res.MinCost != ref.MinCost {
		return fmt.Errorf("solver MinCost %d != dynamic program %d", res.MinCost, ref.MinCost)
	}
	return nil
}

func checkArtifact(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, rng *rand.Rand) error {
	res, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	// The artifact is always the OBDD of the function under the solver's
	// ordering; only under the OBDD rule is that ordering the diagram's
	// own optimum, so only there does NodeCount pin MinCost.
	a, err := artifact.Build(tt, res.Ordering)
	if err != nil {
		return fmt.Errorf("artifact build: %v", err)
	}
	enc := a.Encode()
	dec, err := artifact.Decode(enc)
	if err != nil {
		return fmt.Errorf("artifact decode: %v", err)
	}
	if !a.Equal(dec) {
		return fmt.Errorf("decode(encode) is not node-identical")
	}
	if re := dec.Encode(); !bytes.Equal(enc, re) {
		return fmt.Errorf("encode→decode→encode is not byte-identical")
	}
	// Exhaustive equivalence: the suite's tables stay at n ≤ 10, so this
	// sweeps all 2^n assignments.
	size := tt.Size()
	x := make([]bool, tt.NumVars())
	for idx := uint64(0); idx < size; idx++ {
		for i := range x {
			x[i] = idx>>uint(i)&1 == 1
		}
		got, err := dec.Eval(x)
		if err != nil {
			return fmt.Errorf("artifact eval: %v", err)
		}
		if got != tt.Bit(idx) {
			return fmt.Errorf("decoded artifact disagrees with the table at assignment %d", idx)
		}
	}
	if got, want := dec.SatCount(), tt.CountOnes(); got != want {
		return fmt.Errorf("artifact SatCount %d, table has %d ones", got, want)
	}
	if rule == core.OBDD && dec.NodeCount() != res.MinCost {
		return fmt.Errorf("artifact has %d nodes, solver claims MinCost %d", dec.NodeCount(), res.MinCost)
	}
	return nil
}

// Violation records one failed conformance check with everything needed
// to reproduce it: the case coordinates and the table literal.
type Violation struct {
	Property string `json:"property"`
	Family   string `json:"family"`
	Solver   string `json:"solver"`
	Rule     string `json:"rule"`
	N        int    `json:"n"`
	Table    string `json:"table"`
	Err      string `json:"err"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s solver=%s rule=%s n=%d table=%s: %s",
		v.Property, v.Family, v.Solver, v.Rule, v.N, v.Table, v.Err)
}

// SuiteConfig parameterizes one metamorphic suite run. The zero value is
// not usable; call (*SuiteConfig).withDefaults via RunSuite.
type SuiteConfig struct {
	// Seed makes the run reproducible: table draws and property
	// randomness all derive from it.
	Seed int64
	// Solvers lists the registered solver names under test; empty
	// selects every registered solver.
	Solvers []string
	// Rules lists the diagram rules; empty selects OBDD and ZDD.
	Rules []core.Rule
	// Families and Properties default to the full library.
	Families   []Family
	Properties []Property
	// MinVars/MaxVars bound the drawn arities (defaults 2..6 — large
	// enough for structure, small enough that brute force stays cheap).
	MinVars, MaxVars int
	// TablesPerFamily is how many tables each family contributes
	// (default 2).
	TablesPerFamily int
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if len(c.Solvers) == 0 {
		c.Solvers = core.SolverNames()
	}
	if len(c.Rules) == 0 {
		c.Rules = bothRules
	}
	if len(c.Families) == 0 {
		c.Families = Families()
	}
	if len(c.Properties) == 0 {
		c.Properties = Properties()
	}
	if c.MinVars <= 0 {
		c.MinVars = 2
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 6
	}
	if c.MaxVars > truthtable.MaxVars-1 {
		c.MaxVars = truthtable.MaxVars - 1
	}
	if c.MinVars > c.MaxVars {
		c.MinVars = c.MaxVars
	}
	if c.TablesPerFamily <= 0 {
		c.TablesPerFamily = 2
	}
	return c
}

// SuiteReport summarizes one metamorphic suite run.
type SuiteReport struct {
	Seed       int64       `json:"seed"`
	Checks     int         `json:"checks"`
	Tables     int         `json:"tables"`
	Solvers    []string    `json:"solvers"`
	Families   []string    `json:"families"`
	Properties []string    `json:"properties"`
	Violations []Violation `json:"violations,omitempty"`
	ElapsedMS  float64     `json:"elapsed_ms"`
}

// splitmix64 derives independent sub-seeds from one master seed, so each
// check's randomness depends only on its coordinates, not on iteration
// order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func subSeed(seed int64, parts ...uint64) int64 {
	x := uint64(seed)
	for _, p := range parts {
		x = splitmix64(x ^ p)
	}
	return int64(x)
}

// RunSuite runs every applicable (family × table × rule × property ×
// solver) combination and collects violations. It returns early with
// ctx's error if the context dies mid-run; the partial report is still
// returned. A report with no violations and Checks > 0 is a pass.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*SuiteReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &SuiteReport{Seed: cfg.Seed, Solvers: cfg.Solvers}
	for _, f := range cfg.Families {
		rep.Families = append(rep.Families, f.Name)
	}
	for _, p := range cfg.Properties {
		rep.Properties = append(rep.Properties, p.Name)
	}

	for fi, fam := range cfg.Families {
		for t := 0; t < cfg.TablesPerFamily; t++ {
			if err := ctx.Err(); err != nil {
				rep.ElapsedMS = msSince(start)
				return rep, err
			}
			genRng := rand.New(rand.NewSource(subSeed(cfg.Seed, uint64(fi), uint64(t))))
			n := cfg.MinVars
			if cfg.MaxVars > cfg.MinVars {
				n += genRng.Intn(cfg.MaxVars - cfg.MinVars + 1)
			}
			n = clamp(n, fam.MinVars, fam.MaxVars)
			tt := fam.New(n, genRng)
			rep.Tables++
			hex := tt.Hex()

			for _, rule := range cfg.Rules {
				for pi, prop := range cfg.Properties {
					if !ruleApplies(prop, rule) {
						continue
					}
					for si, solver := range cfg.Solvers {
						if err := ctx.Err(); err != nil {
							rep.ElapsedMS = msSince(start)
							return rep, err
						}
						checkRng := rand.New(rand.NewSource(subSeed(cfg.Seed,
							uint64(fi), uint64(t), uint64(rule), uint64(pi), uint64(si))))
						rep.Checks++
						if err := prop.Check(ctx, solver, tt, rule, checkRng); err != nil {
							if ctx.Err() != nil {
								rep.ElapsedMS = msSince(start)
								return rep, ctx.Err()
							}
							rep.Violations = append(rep.Violations, Violation{
								Property: prop.Name,
								Family:   fam.Name,
								Solver:   solver,
								Rule:     rule.String(),
								N:        n,
								Table:    hex,
								Err:      err.Error(),
							})
						}
					}
				}
			}
		}
	}
	rep.ElapsedMS = msSince(start)
	return rep, nil
}

func ruleApplies(p Property, rule core.Rule) bool {
	for _, r := range p.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
