package conformance

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/server"
	"obddopt/internal/truthtable"
)

// These tests pin Client.SolveBatch's partial-failure semantics under
// injected faults: one bad table in a batch must fail alone — sibling
// results stay correct and the cache is not poisoned by the failure.

func newBatchHarness(t *testing.T, fault FaultConfig) (*server.Server, *server.Client, *FaultRT) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv := server.New(ctx, server.Config{
		Workers:     2,
		MaxVars:     4, // the lever: a 5+ variable table is per-item invalid input
		MaxDeadline: 10 * time.Second,
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	frt := NewFaultRT(nil, fault)
	t.Cleanup(frt.CloseIdleConnections)
	client, err := server.DialWithClient(ctx, hs.URL, &http.Client{Transport: frt})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return srv, client, frt
}

// reference solves tt locally with the same pinned deterministic solver
// the batch uses and returns its canonical JSON.
func reference(t *testing.T, tt *truthtable.Table) (*core.Result, []byte) {
	t.Helper()
	res, err := solveWith(context.Background(), "fs", tt, core.OBDD)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, data
}

func TestSolveBatchPartialFailureUnderFaults(t *testing.T) {
	srv, client, frt := newBatchHarness(t, FaultConfig{
		Seed:        11,
		LatencyProb: 1, // every request delayed, none dropped: outcomes stay observable
		MaxLatency:  2 * time.Millisecond,
	})
	frt.Enable(true)

	good3 := funcs.Majority(3)
	bad6 := funcs.Parity(6) // 6 > MaxVars(4): per-item invalid input
	good4 := funcs.Threshold(4, 2)
	_, ref3 := reference(t, good3)
	_, ref4 := reference(t, good4)

	params := &server.Params{Solver: "fs"}
	batch := []*truthtable.Table{good3, bad6, good4}
	results, err := client.SolveBatch(context.Background(), batch, params)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 requests", len(results))
	}

	if !errors.Is(results[1].Err, core.ErrInvalidInput) {
		t.Errorf("bad item error = %v, want ErrInvalidInput", results[1].Err)
	}
	for i, want := range map[int][]byte{0: ref3, 2: ref4} {
		if results[i].Err != nil {
			t.Errorf("sibling %d poisoned by the bad item: %v", i, results[i].Err)
			continue
		}
		got, merr := json.Marshal(results[i].Result)
		if merr != nil || string(got) != string(want) {
			t.Errorf("sibling %d diverges from local reference:\n got %s\nwant %s", i, got, want)
		}
	}

	// Replaying the same batch must serve the good items from cache —
	// same bytes, no new solver runs — proving the failure did not
	// displace or corrupt the cached entries.
	runsBefore := srv.SolveCount()
	hitsBefore := srv.CacheStats().Hits
	again, err := client.SolveBatch(context.Background(), batch, params)
	if err != nil {
		t.Fatalf("replay SolveBatch: %v", err)
	}
	if !errors.Is(again[1].Err, core.ErrInvalidInput) {
		t.Errorf("replay bad item error = %v, want ErrInvalidInput", again[1].Err)
	}
	for i, want := range map[int][]byte{0: ref3, 2: ref4} {
		got, merr := json.Marshal(again[i].Result)
		if again[i].Err != nil || merr != nil || string(got) != string(want) {
			t.Errorf("replayed sibling %d diverges: err=%v got %s", i, again[i].Err, got)
		}
	}
	if runs := srv.SolveCount(); runs != runsBefore {
		t.Errorf("replay ran %d fresh solves; the cache should have served both good items", runs-runsBefore)
	}
	if hits := srv.CacheStats().Hits; hits < hitsBefore+2 {
		t.Errorf("cache hits went %d -> %d, want at least +2", hitsBefore, hits)
	}
}

// TestSolveBatchTransportFailure: a whole-batch transport fault surfaces
// as one call-level error with the injector's signature, and a clean
// retry afterward succeeds with an unpoisoned cache.
func TestSolveBatchTransportFailure(t *testing.T) {
	srv, client, frt := newBatchHarness(t, FaultConfig{Seed: 13, ResetProb: 1})
	good3 := funcs.Majority(3)
	good4 := funcs.Threshold(4, 2)
	_, ref3 := reference(t, good3)
	params := &server.Params{Solver: "fs"}
	batch := []*truthtable.Table{good3, good4}

	frt.Enable(true)
	if _, err := client.SolveBatch(context.Background(), batch, params); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("batch under resets returned %v, want ErrInjectedReset", err)
	}
	frt.Enable(false)

	results, err := client.SolveBatch(context.Background(), batch, params)
	if err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("retry item %d: %v", i, r.Err)
		}
	}
	if got, _ := json.Marshal(results[0].Result); string(got) != string(ref3) {
		t.Errorf("retry result diverges from reference:\n got %s\nwant %s", got, ref3)
	}
	if srv.SolveCount() == 0 {
		t.Error("server never solved anything")
	}
}

// TestSolveBatchAllInvalid: a batch of only-invalid tables fails per
// item, leaves the cache empty of junk, and a following valid solve is
// unaffected.
func TestSolveBatchAllInvalid(t *testing.T) {
	_, client, _ := newBatchHarness(t, FaultConfig{Seed: 17})
	bad5 := funcs.Parity(5)
	bad6 := funcs.Parity(6)
	results, err := client.SolveBatch(context.Background(), []*truthtable.Table{bad5, bad6}, &server.Params{Solver: "fs"})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, core.ErrInvalidInput) {
			t.Errorf("item %d error = %v, want ErrInvalidInput", i, r.Err)
		}
		if r.Result != nil {
			t.Errorf("item %d carries a result despite invalid input", i)
		}
	}
	good := funcs.Majority(3)
	res, err := client.Solve(context.Background(), good, &server.Params{Solver: "fs"})
	if err != nil {
		t.Fatalf("follow-up solve: %v", err)
	}
	refRes, _ := reference(t, good)
	if res.MinCost != refRes.MinCost {
		t.Errorf("follow-up MinCost %d, reference %d", res.MinCost, refRes.MinCost)
	}
}
