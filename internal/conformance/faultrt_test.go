package conformance

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stubRT answers every request with a fixed 200 JSON body, counting
// how many requests actually reached it.
type stubRT struct {
	hits int
	body string
}

func (s *stubRT) RoundTrip(req *http.Request) (*http.Response, error) {
	s.hits++
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(s.body)),
		Request:    req,
	}, nil
}

func driveFaultRT(t *testing.T, cfg FaultConfig, n int) (*stubRT, *FaultRT, FaultStats) {
	t.Helper()
	stub := &stubRT{body: `{"ok":true}`}
	frt := NewFaultRT(stub, cfg)
	frt.Enable(true)
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://chaos.invalid/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := frt.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return stub, frt, frt.Stats()
}

// TestFaultRTDeterministic: same seed, same request count — identical
// injection statistics, the replay guarantee chaos runs rest on.
func TestFaultRTDeterministic(t *testing.T) {
	cfg := DefaultFaultConfig(99)
	_, _, a := driveFaultRT(t, cfg, 300)
	_, _, b := driveFaultRT(t, cfg, 300)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	if a.Resets == 0 || a.Truncated == 0 || a.Storm429 == 0 || a.Storm503 == 0 || a.Delayed == 0 {
		t.Errorf("default mix over 300 requests injected nothing of some kind: %+v", a)
	}
	if a.Requests != 300 {
		t.Errorf("counted %d requests, drove 300", a.Requests)
	}
}

// TestFaultRTDisabledPassesThrough: a disabled injector forwards every
// request untouched.
func TestFaultRTDisabledPassesThrough(t *testing.T) {
	stub := &stubRT{body: `{"ok":true}`}
	frt := NewFaultRT(stub, FaultConfig{Seed: 1, ResetProb: 1})
	for i := 0; i < 10; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://chaos.invalid/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := frt.RoundTrip(req)
		if err != nil {
			t.Fatalf("disabled injector failed a request: %v", err)
		}
		resp.Body.Close()
	}
	if stub.hits != 10 {
		t.Errorf("stub saw %d of 10 requests", stub.hits)
	}
	if s := frt.Stats(); s.Clean != 10 || s.Resets != 0 {
		t.Errorf("disabled stats: %+v", s)
	}
}

// TestFaultRTReset: ResetProb 1 fails every request with
// ErrInjectedReset, and pre-dispatch resets never reach the server.
func TestFaultRTReset(t *testing.T) {
	stub := &stubRT{body: `{}`}
	frt := NewFaultRT(stub, FaultConfig{Seed: 5, ResetProb: 1})
	frt.Enable(true)
	for i := 0; i < 20; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://chaos.invalid/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := frt.RoundTrip(req); !errors.Is(err, ErrInjectedReset) {
			t.Fatalf("request %d: got %v, want ErrInjectedReset", i, err)
		}
	}
	s := frt.Stats()
	if s.Resets != 20 {
		t.Errorf("stats count %d resets of 20", s.Resets)
	}
	if stub.hits >= 20 {
		t.Errorf("every reset reached the server (%d hits): pre-dispatch resets missing", stub.hits)
	}
	if stub.hits == 0 {
		t.Errorf("no reset reached the server: post-dispatch resets missing")
	}
}

// TestFaultRTTruncation: a truncated body yields some prefix and then
// io.ErrUnexpectedEOF — never a clean EOF.
func TestFaultRTTruncation(t *testing.T) {
	stub := &stubRT{body: strings.Repeat("x", 4096)}
	frt := NewFaultRT(stub, FaultConfig{Seed: 2, TruncateProb: 1})
	frt.Enable(true)
	req, err := http.NewRequest(http.MethodGet, "http://chaos.invalid/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := frt.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read ended with %v, want io.ErrUnexpectedEOF", err)
	}
	if len(data) == 0 || len(data) >= 4096 {
		t.Errorf("truncation kept %d of 4096 bytes, want a strict prefix", len(data))
	}
}

// TestFaultRTStorm: a synthesized 429 opens a storm of StormLen
// identical rejections whose bodies parse as the service wire error.
func TestFaultRTStorm(t *testing.T) {
	stub := &stubRT{body: `{}`}
	frt := NewFaultRT(stub, FaultConfig{Seed: 3, Code429Prob: 1, StormLen: 4})
	frt.Enable(true)
	for i := 0; i < 4; i++ {
		req, err := http.NewRequest(http.MethodPost, "http://chaos.invalid/v1/solve", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := frt.RoundTrip(req)
		if err != nil {
			t.Fatalf("storm request %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("storm request %d: status %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var envelope struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "saturated" {
			t.Errorf("storm body %s does not carry code saturated (%v)", body, err)
		}
	}
	if stub.hits != 0 {
		t.Errorf("storm leaked %d requests to the server", stub.hits)
	}
	if s := frt.Stats(); s.Storm429 != 4 {
		t.Errorf("stats count %d storm responses of 4: %+v", s.Storm429, s)
	}
}

// TestFaultRTLatencyHonorsContext: an injected delay aborts promptly
// when the request context dies instead of sleeping through it.
func TestFaultRTLatencyHonorsContext(t *testing.T) {
	stub := &stubRT{body: `{}`}
	frt := NewFaultRT(stub, FaultConfig{Seed: 4, LatencyProb: 1, MaxLatency: time.Minute})
	frt.Enable(true)
	req, err := http.NewRequest(http.MethodGet, "http://chaos.invalid/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	start := time.Now()
	_, rtErr := frt.RoundTrip(req.WithContext(ctx))
	if rtErr == nil {
		t.Fatal("want a context error from the delayed request")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("delay ignored the dying context (%s)", elapsed)
	}
}

// TestSyntheticRejectionBodies: both storm codes synthesize the wire
// envelope the client maps onto ErrSaturated / ErrDraining.
func TestSyntheticRejectionBodies(t *testing.T) {
	req, err := http.NewRequest(http.MethodPost, "http://chaos.invalid/v1/solve", nil)
	if err != nil {
		t.Fatal(err)
	}
	for code, wireCode := range map[int]string{
		http.StatusTooManyRequests:    "saturated",
		http.StatusServiceUnavailable: "draining",
	} {
		resp := syntheticRejection(req, code)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Contains(body, []byte(wireCode)) {
			t.Errorf("code %d body %s misses %q", code, body, wireCode)
		}
	}
}
