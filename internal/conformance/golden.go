package conformance

import (
	"bytes"
	"context"
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"obddopt/internal/artifact"
	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

// This file is the golden corpus: known-optimal (table, rule, MinCost,
// ordering) entries checked into testdata/golden.json and replayed by
// the conformance tests and cmd/bddverify. Entries at n≤6 were
// established by exhaustive brute force over all n! orderings and
// cross-checked against the FS dynamic program; entries at n=7..10 are
// FS results cross-checked against the independent parallel
// implementation. The corpus pins today's verified optima so a future
// solver change that silently shifts a minimum cost fails loudly.

//go:embed testdata/golden.json
var goldenJSON []byte

// GoldenEntry is one verified-optimal record. Ordering is one concrete
// optimal ordering (bottom-up, as everywhere in this module) — solvers
// may legitimately return a different member of the optimal class, so
// replay checks the cost, not ordering equality.
type GoldenEntry struct {
	// Table is the truth-table literal "n:hexdigits".
	Table string `json:"table"`
	// Rule is "obdd" or "zdd".
	Rule string `json:"rule"`
	// MinCost and Terminals are the proven minimum internal-node count
	// and the terminal count.
	MinCost   uint64 `json:"min_cost"`
	Terminals int    `json:"terminals"`
	// Ordering is one ordering achieving MinCost.
	Ordering []int `json:"ordering"`
	// ArtifactSHA256 pins the sha256 (hex) of the canonical encoded
	// OBDD artifact (internal/artifact) of the table under Ordering.
	// Canonical encoding makes this a content address: any change to
	// the artifact layer that shifts even one byte fails the replay.
	ArtifactSHA256 string `json:"artifact_sha256,omitempty"`
	// SatCount pins the function's satisfying-assignment count — the
	// cheap analytics contract the artifact's iterative counter must
	// reproduce.
	SatCount uint64 `json:"sat_count"`
	// Family and Source document where the entry came from and how it
	// was verified.
	Family string `json:"family"`
	Source string `json:"source"`
}

// DefaultGolden decodes the embedded corpus.
func DefaultGolden() ([]GoldenEntry, error) {
	var entries []GoldenEntry
	if err := json.Unmarshal(goldenJSON, &entries); err != nil {
		return nil, fmt.Errorf("golden: embedded corpus: %w", err)
	}
	return entries, nil
}

// LoadGolden decodes a corpus file (for -golden overrides).
func LoadGolden(path string) ([]GoldenEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("golden: %w", err)
	}
	var entries []GoldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return entries, nil
}

// replayCaps bounds the arity each solver is asked to replay: brute
// force is n! and the divide-and-conquer solver re-enumerates subsets
// aggressively, so they sit out the largest entries.
var replayCaps = map[string]int{
	"brute": 7,
	"dnc":   9,
}

const defaultReplayCap = 10

// GoldenViolation records one failed replay.
type GoldenViolation struct {
	Entry  GoldenEntry `json:"entry"`
	Solver string      `json:"solver"`
	Err    string      `json:"err"`
}

// GoldenReport summarizes one corpus replay.
type GoldenReport struct {
	Entries    int               `json:"entries"`
	Checks     int               `json:"checks"`
	Skipped    int               `json:"skipped"`
	Solvers    []string          `json:"solvers"`
	Violations []GoldenViolation `json:"violations,omitempty"`
}

// VerifyGolden replays every entry against every named solver (empty
// selects all registered), checking that the solver reproduces the
// recorded MinCost, that its reconstructed ordering achieves it, and
// that the recorded ordering still evaluates to it. Returns ctx's error
// if the context dies; violations are collected, not returned.
func VerifyGolden(ctx context.Context, entries []GoldenEntry, solvers []string) (*GoldenReport, error) {
	if len(solvers) == 0 {
		solvers = core.SolverNames()
	}
	rep := &GoldenReport{Entries: len(entries), Solvers: solvers}
	for _, e := range entries {
		tt, rule, err := e.decode()
		if err != nil {
			rep.Violations = append(rep.Violations, GoldenViolation{Entry: e, Err: err.Error()})
			continue
		}
		want := e.MinCost + uint64(e.Terminals)
		ord := truthtable.Ordering(e.Ordering)
		if len(ord) != tt.NumVars() || !ord.Valid() {
			rep.Violations = append(rep.Violations, GoldenViolation{Entry: e,
				Err: fmt.Sprintf("recorded ordering %v is not a permutation of %d variables", ord, tt.NumVars())})
			continue
		}
		if got := core.SizeUnder(tt, ord, rule, nil); got != want {
			rep.Violations = append(rep.Violations, GoldenViolation{Entry: e,
				Err: fmt.Sprintf("recorded ordering evaluates to size %d, corpus claims %d", got, want)})
			continue
		}
		if err := verifyEntryArtifact(e, tt, ord, rule); err != nil {
			rep.Violations = append(rep.Violations, GoldenViolation{Entry: e, Err: err.Error()})
			continue
		}
		for _, solver := range solvers {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			limit := defaultReplayCap
			if c, ok := replayCaps[solver]; ok {
				limit = c
			}
			if tt.NumVars() > limit {
				rep.Skipped++
				continue
			}
			rep.Checks++
			if err := replayOne(ctx, solver, tt, rule, e, want); err != nil {
				if ctx.Err() != nil {
					return rep, ctx.Err()
				}
				rep.Violations = append(rep.Violations, GoldenViolation{Entry: e, Solver: solver, Err: err.Error()})
			}
		}
	}
	return rep, nil
}

// verifyEntryArtifact replays the artifact contract of one entry: the
// canonical encoding of the table's OBDD under the recorded ordering
// must hash to the pinned digest, round-trip byte-identically, count
// satisfying assignments to the pinned SatCount, and (under the OBDD
// rule, where the recorded ordering is the diagram's own optimum)
// reproduce MinCost as its node count. Entries predating the artifact
// fields (empty ArtifactSHA256) are checked for internal consistency
// but not against a pin.
func verifyEntryArtifact(e GoldenEntry, tt *truthtable.Table, ord truthtable.Ordering, rule core.Rule) error {
	a, err := artifact.Build(tt, ord)
	if err != nil {
		return fmt.Errorf("artifact build: %v", err)
	}
	enc := a.Encode()
	dec, err := artifact.Decode(enc)
	if err != nil {
		return fmt.Errorf("artifact decode: %v", err)
	}
	if re := dec.Encode(); !bytes.Equal(enc, re) {
		return fmt.Errorf("artifact encode→decode→encode drifted")
	}
	if err := artifact.Verify(dec, tt); err != nil {
		return fmt.Errorf("decoded artifact: %v", err)
	}
	if e.ArtifactSHA256 != "" {
		if got := artifactDigest(enc); got != e.ArtifactSHA256 {
			return fmt.Errorf("artifact sha256 %s, corpus pins %s", got, e.ArtifactSHA256)
		}
	}
	if got, want := dec.SatCount(), tt.CountOnes(); got != want {
		return fmt.Errorf("artifact SatCount %d, table has %d ones", got, want)
	}
	if e.ArtifactSHA256 != "" && dec.SatCount() != e.SatCount {
		return fmt.Errorf("artifact SatCount %d, corpus pins %d", dec.SatCount(), e.SatCount)
	}
	if rule == core.OBDD && dec.NodeCount() != e.MinCost {
		return fmt.Errorf("artifact has %d nodes, corpus pins MinCost %d", dec.NodeCount(), e.MinCost)
	}
	return nil
}

// artifactDigest is the content address of encoded artifact bytes.
func artifactDigest(enc []byte) string {
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

func replayOne(ctx context.Context, solver string, tt *truthtable.Table, rule core.Rule, e GoldenEntry, want uint64) error {
	res, err := solveWith(ctx, solver, tt, rule)
	if err != nil {
		return fmt.Errorf("solve failed: %w", err)
	}
	if res.MinCost != e.MinCost {
		return fmt.Errorf("MinCost %d, corpus says %d", res.MinCost, e.MinCost)
	}
	if res.Terminals != e.Terminals {
		return fmt.Errorf("terminals %d, corpus says %d", res.Terminals, e.Terminals)
	}
	if got := core.SizeUnder(tt, res.Ordering, rule, nil); got != want {
		return fmt.Errorf("solver ordering %v evaluates to %d, want %d", res.Ordering, got, want)
	}
	return nil
}

func (e GoldenEntry) decode() (*truthtable.Table, core.Rule, error) {
	tt, err := truthtable.ParseHex(e.Table)
	if err != nil {
		return nil, 0, fmt.Errorf("bad table literal: %v", err)
	}
	rule, err := core.ParseRule(e.Rule)
	if err != nil {
		return nil, 0, fmt.Errorf("bad rule: %w", err)
	}
	return tt, rule, nil
}

// goldenSource is one named table headed for the corpus.
type goldenSource struct {
	family string
	tt     *truthtable.Table
}

// GenerateGolden regenerates the corpus from scratch: a fixed roster of
// structured functions plus seeded random draws, each solved under both
// rules and verified by two independent solvers — brute force + FS at
// n≤6, FS + parallel at n=7..10. It exists for `bddverify -gen`; the
// checked-in corpus is the contract.
func GenerateGolden(ctx context.Context) ([]GoldenEntry, error) {
	var sources []goldenSource
	add := func(family string, tt *truthtable.Table) {
		sources = append(sources, goldenSource{family: family, tt: tt})
	}
	for pairs := 1; pairs <= 5; pairs++ {
		add("achilles", funcs.AchillesHeel(pairs))
	}
	for n := 2; n <= 10; n++ {
		add("parity", funcs.Parity(n))
	}
	for n := 3; n <= 8; n++ {
		add("threshold", funcs.Threshold(n, (n+2)/3))
	}
	for _, n := range []int{3, 5, 7, 9} {
		add("majority", funcs.Majority(n))
	}
	add("multiplexer", funcs.Multiplexer(1))
	add("multiplexer", funcs.Multiplexer(2))
	for n := 3; n <= 10; n++ {
		add("readonce", funcs.ReadOnceChain(n))
	}
	for n := 4; n <= 8; n++ {
		add("hwb", funcs.HiddenWeightedBit(n))
	}
	for bits := 2; bits <= 4; bits++ {
		add("comparator", funcs.Comparator(bits))
		add("equality", funcs.Equality(bits))
		add("adder-carry", funcs.AdderCarry(bits))
	}
	rng := rand.New(rand.NewSource(0x601d))
	for n := 2; n <= 6; n++ {
		add("random", truthtable.Random(n, rng))
		add("sparse", funcs.SparseFamily(n, 1+rng.Intn(3), n, rng))
	}

	var entries []GoldenEntry
	for _, src := range sources {
		for _, rule := range bothRules {
			e, err := verifiedEntry(ctx, src, rule)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Family != entries[j].Family {
			return entries[i].Family < entries[j].Family
		}
		if entries[i].Table != entries[j].Table {
			return entries[i].Table < entries[j].Table
		}
		return entries[i].Rule < entries[j].Rule
	})
	return entries, nil
}

// verifiedEntry solves src under rule with two independent solvers and
// refuses to mint an entry they disagree on.
func verifiedEntry(ctx context.Context, src goldenSource, rule core.Rule) (GoldenEntry, error) {
	n := src.tt.NumVars()
	primary, secondary, source := "fs", "parallel", "fs+parallel(n=7..10)"
	if n <= 6 {
		primary, secondary, source = "brute", "fs", "brute+fs(n<=6)"
	}
	pres, err := solveWith(ctx, primary, src.tt, rule)
	if err != nil {
		return GoldenEntry{}, fmt.Errorf("golden: %s n=%d %s via %s: %w", src.family, n, rule, primary, err)
	}
	sres, err := solveWith(ctx, secondary, src.tt, rule)
	if err != nil {
		return GoldenEntry{}, fmt.Errorf("golden: %s n=%d %s via %s: %w", src.family, n, rule, secondary, err)
	}
	if pres.MinCost != sres.MinCost || pres.Terminals != sres.Terminals {
		return GoldenEntry{}, fmt.Errorf("golden: %s n=%d %s: %s says %d/%d, %s says %d/%d — refusing to mint",
			src.family, n, rule, primary, pres.MinCost, pres.Terminals, secondary, sres.MinCost, sres.Terminals)
	}
	a, err := artifact.Build(src.tt, pres.Ordering)
	if err != nil {
		return GoldenEntry{}, fmt.Errorf("golden: %s n=%d %s: artifact: %w", src.family, n, rule, err)
	}
	return GoldenEntry{
		Table:          src.tt.Hex(),
		Rule:           strings.ToLower(rule.String()),
		MinCost:        pres.MinCost,
		Terminals:      pres.Terminals,
		Ordering:       []int(pres.Ordering),
		ArtifactSHA256: artifactDigest(a.Encode()),
		SatCount:       a.SatCount(),
		Family:         src.family,
		Source:         source,
	}, nil
}
