package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip checks the bucket geometry invariants: every
// value lands in a bucket whose bounds contain it, bucket bounds are
// monotone, and the relative bucket width never exceeds 1/8.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := []uint64{0, 1, 7, 8, 15, 16, 17, 255, 256, 1 << 20, math.MaxUint64}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Uint64())
		values = append(values, uint64(rng.Int63n(1<<16)))
	}
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		upper := bucketUpper(i)
		if v > upper {
			t.Fatalf("value %d above its bucket upper bound %d (bucket %d)", v, upper, i)
		}
		if i > 0 {
			lower := bucketUpper(i-1) + 1
			if v < lower {
				t.Fatalf("value %d below its bucket lower bound %d (bucket %d)", v, lower, i)
			}
			if width := float64(upper - lower + 1); lower > 16 && width/float64(lower) > 0.125+1e-9 {
				t.Fatalf("bucket %d relative width %g exceeds 1/8", i, width/float64(lower))
			}
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket upper bounds not strictly increasing at %d: %d then %d",
				i, bucketUpper(i-1), bucketUpper(i))
		}
	}
}

// TestQuantileErrorBounds records random samples from several
// distributions and checks every quantile estimate against the exact
// order statistic: the estimate must never fall below it and must not
// exceed it by more than the 12.5% bucket-width bound.
func TestQuantileErrorBounds(t *testing.T) {
	distributions := map[string]func(*rand.Rand) uint64{
		"uniform_small": func(r *rand.Rand) uint64 { return uint64(r.Int63n(1000)) },
		"uniform_large": func(r *rand.Rand) uint64 { return uint64(r.Int63n(1 << 40)) },
		"exponentialish": func(r *rand.Rand) uint64 {
			return uint64(math.Exp(r.Float64()*20)) + 1
		},
		"bimodal": func(r *rand.Rand) uint64 {
			if r.Intn(2) == 0 {
				return uint64(r.Int63n(100))
			}
			return uint64(r.Int63n(1<<30)) + 1<<29
		},
	}
	quantiles := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := NewHistogram()
			samples := make([]uint64, 5000)
			for i := range samples {
				samples[i] = gen(rng)
				h.Record(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range quantiles {
				rank := int(math.Ceil(q * float64(len(samples))))
				if rank < 1 {
					rank = 1
				}
				exact := samples[rank-1]
				est := h.Quantile(q)
				if est < exact {
					t.Errorf("q=%g: estimate %d below exact %d", q, est, exact)
				}
				if limit := float64(exact)*1.125 + 1; float64(est) > limit {
					t.Errorf("q=%g: estimate %d exceeds exact %d by more than 12.5%%", q, est, exact)
				}
			}
			if h.Max() != samples[len(samples)-1] {
				t.Errorf("Max = %d, want %d", h.Max(), samples[len(samples)-1])
			}
			if h.Min() != samples[0] {
				t.Errorf("Min = %d, want %d", h.Min(), samples[0])
			}
			if h.Count() != uint64(len(samples)) {
				t.Errorf("Count = %d, want %d", h.Count(), len(samples))
			}
		})
	}
}

// TestHistogramEmpty checks the zero-observation edge cases.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram not all-zero: %+v", h.Snapshot())
	}
	var js map[string]uint64
	if err := json.Unmarshal([]byte(h.String()), &js); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
}

// TestMergeAssociativity checks that Merge is associative and
// commutative on every statistic: (a⊕b)⊕c and a⊕(b⊕c) built from the
// same three sample sets must agree exactly, and must equal one
// histogram fed all samples directly.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := make([][]uint64, 3)
	for i := range sets {
		sets[i] = make([]uint64, 500+rng.Intn(500))
		for j := range sets[i] {
			sets[i][j] = uint64(rng.Int63n(1 << uint(10+4*i)))
		}
	}
	fill := func(idx ...int) *Histogram {
		h := NewHistogram()
		for _, i := range idx {
			for _, v := range sets[i] {
				h.Record(v)
			}
		}
		return h
	}

	// (a⊕b)⊕c
	left := fill(0)
	left.Merge(fill(1))
	left.Merge(fill(2))
	// a⊕(b⊕c)
	bc := fill(1)
	bc.Merge(fill(2))
	right := fill(0)
	right.Merge(bc)
	// direct
	direct := fill(0, 1, 2)

	for name, pair := range map[string][2]*Histogram{
		"left-vs-right":  {left, right},
		"left-vs-direct": {left, direct},
	} {
		a, b := pair[0], pair[1]
		if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Max() != b.Max() || a.Min() != b.Min() {
			t.Errorf("%s: summary stats differ: %+v vs %+v", name, a.Snapshot(), b.Snapshot())
		}
		for i := range a.buckets {
			if a.buckets[i].Load() != b.buckets[i].Load() {
				t.Errorf("%s: bucket %d differs: %d vs %d", name, i, a.buckets[i].Load(), b.buckets[i].Load())
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if a.Quantile(q) != b.Quantile(q) {
				t.Errorf("%s: Quantile(%g) differs: %d vs %d", name, q, a.Quantile(q), b.Quantile(q))
			}
		}
	}

	// Merging nil and merging an empty histogram are no-ops.
	before := direct.Snapshot()
	direct.Merge(nil)
	direct.Merge(NewHistogram())
	if direct.Snapshot() != before {
		t.Errorf("nil/empty merge changed the histogram: %+v vs %+v", direct.Snapshot(), before)
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines (run
// under -race in CI) and checks that no observation is lost.
func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(uint64(rng.Int63n(1 << 30)))
			}
		}(g)
	}
	// Concurrent readers must be race-free too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Quantile(0.9)
			_ = h.Snapshot()
			_ = h.String()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d (lost observations)", got, goroutines*perG)
	}
}

// TestHistRegistry checks the named-registry contract: same name+labels
// returns the identical histogram, different labels a distinct one, and
// iteration is deterministic and complete.
func TestHistRegistry(t *testing.T) {
	a := Hist("test_registry_ns", "solver", "fs")
	b := Hist("test_registry_ns", "solver", "fs")
	c := Hist("test_registry_ns", "solver", "bnb")
	if a != b {
		t.Error("same name+labels returned distinct histograms")
	}
	if a == c {
		t.Error("different labels returned the same histogram")
	}
	a.Record(10)

	seen := map[string]bool{}
	var lastKey string
	EachHistogram(func(name string, labels [][2]string, h *Histogram) {
		key := histKey(name, labels)
		if key < lastKey {
			t.Errorf("EachHistogram out of order: %q after %q", key, lastKey)
		}
		lastKey = key
		seen[key] = true
	})
	if !seen[`test_registry_ns{solver="fs"}`] || !seen[`test_registry_ns{solver="bnb"}`] {
		t.Errorf("registry iteration missed test entries: %v", seen)
	}
	snap := HistogramsSnapshot()
	if snap[`test_registry_ns{solver="fs"}`].Count == 0 {
		t.Error("HistogramsSnapshot lost the recorded observation")
	}
}

// TestHistogramSink checks that the layer sink folds KindLayerEnd
// events into the dp_layer histograms and ignores everything else.
func TestHistogramSink(t *testing.T) {
	sink := NewHistogramSink()
	beforeNS := Hist(HistNameDPLayer).Count()
	beforeCells := Hist(HistNameDPLayerCells).Count()
	sink.Emit(Event{Kind: KindLayerEnd, Elapsed: 5 * time.Millisecond, CellOps: 1234})
	sink.Emit(Event{Kind: KindCompaction, CellOps: 99})
	if got := Hist(HistNameDPLayer).Count(); got != beforeNS+1 {
		t.Errorf("dp_layer_ns count = %d, want %d", got, beforeNS+1)
	}
	if got := Hist(HistNameDPLayerCells).Count(); got != beforeCells+1 {
		t.Errorf("dp_layer_cell_ops count = %d, want %d", got, beforeCells+1)
	}
}

// TestRecordDuration checks nanosecond conversion and the negative
// clamp.
func TestRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Microsecond)
	h.RecordDuration(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("negative duration did not clamp to 0: Min = %d", h.Min())
	}
	if h.Max() < 3000 || h.Max() > 3375 {
		t.Errorf("Max = %d, want ~3000 (3µs in ns)", h.Max())
	}
}
