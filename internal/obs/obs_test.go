package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	for k := KindLayerStart; k <= KindQuantumBatch; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := EventKind(200).String(); s != "kind(200)" {
		t.Errorf("unknown kind = %q", s)
	}
	b, err := KindLayerEnd.MarshalJSON()
	if err != nil || string(b) != `"layer_end"` {
		t.Errorf("MarshalJSON = %s, %v", b, err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindLayerEnd, K: 1, CellOps: 10})
	r.Emit(Event{Kind: KindLayerEnd, K: 2, CellOps: 20})
	r.Emit(Event{Kind: KindBnBBest, Cost: 7})
	if got := r.Count(KindLayerEnd); got != 2 {
		t.Errorf("Count(layer_end) = %d, want 2", got)
	}
	if got := r.SumCellOps(KindLayerEnd); got != 30 {
		t.Errorf("SumCellOps = %d, want 30", got)
	}
	evs := r.Events()
	if len(evs) != 3 || evs[2].Cost != 7 {
		t.Errorf("Events = %+v", evs)
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Kind: KindCompaction, CellOps: 1})
			}
		}()
	}
	wg.Wait()
	if got := r.SumCellOps(KindCompaction); got != 800 {
		t.Errorf("concurrent SumCellOps = %d, want 800", got)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of nothing should be nil")
	}
	a, b := NewRecorder(), NewRecorder()
	if got := Multi(a); got != Tracer(a) {
		t.Error("Multi of one tracer should return it directly")
	}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: KindLayerEnd})
	if a.Count(KindLayerEnd) != 1 || b.Count(KindLayerEnd) != 1 {
		t.Error("Multi did not fan out")
	}
}

func TestProgressRendersSelectedKinds(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.Emit(Event{Kind: KindLayerEnd, K: 3, Subsets: 10, CellOps: 99, Elapsed: time.Millisecond})
	p.Emit(Event{Kind: KindCompaction}) // ignored
	p.Emit(Event{Kind: KindBnBBest, Cost: 5})
	p.Emit(Event{Kind: KindDnCSplit, Depth: 1, Mask: 0x3f, Subsets: 6})
	p.Emit(Event{Kind: KindDnCMerge, Mask: 0x3, Cost: 4})
	p.Emit(Event{Kind: KindHeurPass, K: 1, Cost: 9, Evals: 12})
	p.Emit(Event{Kind: KindQuantumBatch, Evals: 20, Queries: 4.5, Cost: 2})
	out := buf.String()
	for _, want := range []string{"layer  3", "incumbent 5", "split level 1", "chose subset 0x3",
		"pass 1", "quantum: min over 20"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q in:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Errorf("progress printed %d lines, want 6", lines)
	}
}

func TestCollectorReport(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: KindLayerStart, K: 1})
	c.Emit(Event{Kind: KindLayerEnd, K: 1, Subsets: 4, CellOps: 32, LiveCells: 64, PeakCells: 96, Elapsed: 2 * time.Millisecond})
	c.Emit(Event{Kind: KindBnBExpand, CellOps: 8})
	c.Emit(Event{Kind: KindBnBPruneMemo})
	c.Emit(Event{Kind: KindBnBPruneIncumbent})
	c.Emit(Event{Kind: KindBnBPruneBound})
	c.Emit(Event{Kind: KindBnBBest, Cost: 11})
	c.Emit(Event{Kind: KindDnCSplit, Subsets: 15})
	c.Emit(Event{Kind: KindDnCMerge})
	c.Emit(Event{Kind: KindHeurSwap})
	c.Emit(Event{Kind: KindHeurPass, K: 1, Cost: 12, Evals: 30})
	c.Emit(Event{Kind: KindQuantumBatch, Evals: 15, Queries: 7.5, Cost: 3})
	rep := c.Report()
	if rep.Events != 12 {
		t.Errorf("Events = %d, want 12", rep.Events)
	}
	if len(rep.Layers) != 1 || rep.Layers[0].CellOps != 32 || rep.Layers[0].ElapsedMS != 2 {
		t.Errorf("Layers = %+v", rep.Layers)
	}
	if rep.BnB == nil || rep.BnB.Expansions != 1 || rep.BnB.PrunedMemo != 1 ||
		rep.BnB.PrunedIncumbent != 1 || rep.BnB.PrunedLowerBound != 1 ||
		rep.BnB.Improvements != 1 || rep.BnB.BestCost != 11 || rep.BnB.CellOps != 8 {
		t.Errorf("BnB = %+v", rep.BnB)
	}
	if rep.DnC == nil || rep.DnC.Splits != 1 || rep.DnC.Candidates != 15 || rep.DnC.Merges != 1 {
		t.Errorf("DnC = %+v", rep.DnC)
	}
	if rep.Heuristic == nil || rep.Heuristic.Passes != 1 || rep.Heuristic.Swaps != 1 ||
		rep.Heuristic.FinalCost != 12 || rep.Heuristic.Evals != 30 {
		t.Errorf("Heuristic = %+v", rep.Heuristic)
	}
	if rep.Quantum == nil || rep.Quantum.Batches != 1 || rep.Quantum.OracleEvals != 15 ||
		rep.Quantum.Queries != 7.5 {
		t.Errorf("Quantum = %+v", rep.Quantum)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"layers", "bnb", "dnc", "heuristic", "quantum"} {
		if _, ok := round[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, data)
		}
	}
}

func TestCollectorEmptySections(t *testing.T) {
	rep := NewCollector().Report()
	if rep.BnB != nil || rep.DnC != nil || rep.Heuristic != nil || rep.Quantum != nil {
		t.Errorf("empty collector grew sections: %+v", rep)
	}
	data, _ := json.Marshal(rep)
	for _, absent := range []string{"bnb", "dnc", "heuristic", "quantum", "layers"} {
		if strings.Contains(string(data), `"`+absent+`"`) {
			t.Errorf("empty report should omit %q: %s", absent, data)
		}
	}
}

func TestCountersAndGauges(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || c.String() != "5" {
		t.Errorf("counter = %v / %s", c.Value(), c.String())
	}
	var g MaxGauge
	g.Observe(10)
	g.Observe(3)
	if g.Value() != 10 || g.String() != "10" {
		t.Errorf("gauge = %v / %s", g.Value(), g.String())
	}
	g.Observe(12)
	if g.Value() != 12 {
		t.Errorf("gauge did not raise: %v", g.Value())
	}
}

func TestMetricsSnapshotAndDelta(t *testing.T) {
	before := MetricsSnapshot()
	Metrics.CellOps.Add(100)
	Metrics.RunsStarted.Inc()
	Metrics.PeakCells.Observe(before["peak_cells"] + 50)
	after := MetricsSnapshot()
	delta := MetricsDelta(before, after)
	if delta["cell_ops"] != 100 {
		t.Errorf("delta cell_ops = %d, want 100", delta["cell_ops"])
	}
	if delta["runs_started"] != 1 {
		t.Errorf("delta runs_started = %d, want 1", delta["runs_started"])
	}
	if delta["peak_cells"] != after["peak_cells"] {
		t.Errorf("peak_cells should pass through the after value")
	}
}

func TestDebugServer(t *testing.T) {
	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"obddopt"`) {
		t.Errorf("/debug/vars missing obddopt map")
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatalf("GET /debug/pprof/cmdline: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status %d", resp2.StatusCode)
	}
}
