package obs

import (
	"net"
	"net/http"

	// Register /debug/pprof handlers on the default mux; expvar's own
	// init registers /debug/vars the same way, so serving the default
	// mux exposes both.
	_ "net/http/pprof"
)

// StartDebugServer serves net/http/pprof and expvar (/debug/pprof/*,
// /debug/vars) on addr in a background goroutine and returns the bound
// address (useful with ":0"). The server lives until the process exits —
// it exists to profile long exact runs, which end with the process.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// The listener closes only at process exit; Serve's error is
		// irrelevant by then.
		_ = http.Serve(ln, http.DefaultServeMux)
	}()
	return ln.Addr().String(), nil
}
