package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNewRequestIDUnique(t *testing.T) {
	const n = 1000
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n/100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ids <- NewRequestID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool, n)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("request ID %q missing nonce-sequence separator", id)
		}
	}
	if len(seen) != n {
		t.Fatalf("got %d IDs, want %d", len(seen), n)
	}
}

func TestSpanIDAndEvents(t *testing.T) {
	sp := NewSpan("req-123")
	if sp.ID() != "req-123" {
		t.Errorf("ID = %q, want req-123", sp.ID())
	}
	sp.Event("admitted")
	sp.Event("worker_acquired")
	evs := sp.Events()
	if len(evs) != 2 || evs[0].Name != "admitted" || evs[1].Name != "worker_acquired" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].AtNS < 0 || evs[1].AtNS < evs[0].AtNS {
		t.Errorf("event offsets not monotone: %+v", evs)
	}
	// Events() returns a copy: mutating it must not affect the span.
	evs[0].Name = "clobbered"
	if sp.Events()[0].Name != "admitted" {
		t.Error("Events() aliases internal storage")
	}

	if minted := NewSpan(""); minted.ID() == "" {
		t.Error("NewSpan(\"\") did not mint an ID")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	if sp := SpanFromContext(context.Background()); sp != nil {
		t.Errorf("SpanFromContext on empty context = %v, want nil", sp)
	}
	if sp := SpanFromContext(nil); sp != nil { //lint:ignore SA1012 nil-context tolerance is part of the contract
		t.Errorf("SpanFromContext(nil) = %v, want nil", sp)
	}

	sp := NewSpan("abc")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Errorf("round trip lost the span: %v", got)
	}

	// EnsureSpan reuses an existing span and mints otherwise.
	ctx2, got := EnsureSpan(ctx)
	if got != sp || ctx2 != ctx {
		t.Error("EnsureSpan replaced an existing span")
	}
	ctx3, fresh := EnsureSpan(context.Background())
	if fresh == nil || fresh.ID() == "" {
		t.Fatal("EnsureSpan did not mint a span")
	}
	if SpanFromContext(ctx3) != fresh {
		t.Error("EnsureSpan did not attach the minted span")
	}
}

// TestSpanConcurrentEvent exercises concurrent Event/Events under -race.
func TestSpanConcurrentEvent(t *testing.T) {
	sp := NewSpan("")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp.Event("phase")
				_ = sp.Events()
			}
		}()
	}
	wg.Wait()
	if got := len(sp.Events()); got != 2000 {
		t.Fatalf("got %d events, want 2000", got)
	}
}
