package obs

import (
	"expvar"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. It implements
// expvar.Var so it can be published on /debug/vars.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// String implements expvar.Var.
func (c *Counter) String() string { return strconv.FormatUint(c.v.Load(), 10) }

// Gauge is an atomic up/down level — a point-in-time quantity such as
// queue depth or in-flight workers, as opposed to a monotonic Counter.
// It implements expvar.Var.
type Gauge struct{ v atomic.Int64 }

// Inc raises the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set forces the gauge to n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// String implements expvar.Var.
func (g *Gauge) String() string { return strconv.FormatInt(g.v.Load(), 10) }

// MaxGauge tracks the maximum value ever observed. It implements
// expvar.Var.
type MaxGauge struct{ v atomic.Uint64 }

// Observe raises the gauge to n if n exceeds the current maximum.
func (g *MaxGauge) Observe(n uint64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the maximum observed so far.
func (g *MaxGauge) Value() uint64 { return g.v.Load() }

// String implements expvar.Var.
func (g *MaxGauge) String() string { return strconv.FormatUint(g.v.Load(), 10) }

// Metrics is the process-wide registry: every solver run in the process
// accumulates into these counters regardless of whether a Meter or Tracer
// is attached (updates are layer- or run-granular, never per cell). The
// registry is published on expvar under the "obddopt" map, so a process
// serving /debug/vars (see StartDebugServer) exposes live totals.
var Metrics struct {
	// RunsStarted / RunsCompleted count solver entry points entered and
	// finished (OptimalOrdering and friends).
	RunsStarted   Counter
	RunsCompleted Counter
	// CellOps counts table-compaction cell visits across all runs — the
	// unit of the papers' n·3^{n−1} time bound.
	CellOps Counter
	// Compactions counts COMPACT invocations (DP transitions).
	Compactions Counter
	// Evaluations counts cost-oracle evaluations (complete orderings
	// costed by search drivers and heuristics).
	Evaluations Counter
	// WorkerSpawns counts goroutines launched by the parallel solver.
	WorkerSpawns Counter
	// ShardsExecuted counts lattice shards processed by the work-stealing
	// DP scheduler; ShardSteals the subset of those a worker took from
	// another worker's deque rather than its own.
	ShardsExecuted Counter
	ShardSteals    Counter
	// PeakCells is the largest metered live-cell count ever observed —
	// Remark 1's space quantity, process-wide.
	PeakCells MaxGauge
	// CacheHits / CacheMisses / CacheEvictions / CacheCoalesced count
	// canonical-result-cache lookups (see internal/cache): entries served
	// without a solver run, entries that required one, entries displaced
	// by the byte bound, and lookups coalesced onto an identical
	// in-flight computation by single-flight.
	CacheHits      Counter
	CacheMisses    Counter
	CacheEvictions Counter
	CacheCoalesced Counter
	// RequestsServed / RequestsRejected count network solve requests
	// admitted and completed versus turned away by admission control
	// (saturated queue or draining server); see internal/server.
	RequestsServed   Counter
	RequestsRejected Counter
	// QueueDepth is the number of admitted requests currently waiting
	// for a worker slot; InFlightWorkers the number currently holding
	// one (running a solver). Both are levels, not totals — the
	// admission layer raises and lowers them around its semaphores.
	QueueDepth      Gauge
	InFlightWorkers Gauge
}

func init() {
	m := expvar.NewMap("obddopt")
	m.Set("runs_started", &Metrics.RunsStarted)
	m.Set("runs_completed", &Metrics.RunsCompleted)
	m.Set("cell_ops", &Metrics.CellOps)
	m.Set("compactions", &Metrics.Compactions)
	m.Set("evaluations", &Metrics.Evaluations)
	m.Set("worker_spawns", &Metrics.WorkerSpawns)
	m.Set("shards_executed", &Metrics.ShardsExecuted)
	m.Set("shard_steals", &Metrics.ShardSteals)
	m.Set("peak_cells", &Metrics.PeakCells)
	m.Set("cache_hits", &Metrics.CacheHits)
	m.Set("cache_misses", &Metrics.CacheMisses)
	m.Set("cache_evictions", &Metrics.CacheEvictions)
	m.Set("cache_coalesced", &Metrics.CacheCoalesced)
	m.Set("requests_served", &Metrics.RequestsServed)
	m.Set("requests_rejected", &Metrics.RequestsRejected)
	m.Set("queue_depth", &Metrics.QueueDepth)
	m.Set("inflight_workers", &Metrics.InFlightWorkers)
}

// clampUint64 renders a gauge level for the uint64 snapshot map; levels
// are never negative in steady state, but a mid-transition read may see
// a transient dip below zero.
func clampUint64(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// MetricsSnapshot returns the current value of every registry metric,
// keyed by its expvar name. Subtracting two snapshots isolates one run's
// contribution.
func MetricsSnapshot() map[string]uint64 {
	return map[string]uint64{
		"runs_started":      Metrics.RunsStarted.Value(),
		"runs_completed":    Metrics.RunsCompleted.Value(),
		"cell_ops":          Metrics.CellOps.Value(),
		"compactions":       Metrics.Compactions.Value(),
		"evaluations":       Metrics.Evaluations.Value(),
		"worker_spawns":     Metrics.WorkerSpawns.Value(),
		"shards_executed":   Metrics.ShardsExecuted.Value(),
		"shard_steals":      Metrics.ShardSteals.Value(),
		"peak_cells":        Metrics.PeakCells.Value(),
		"cache_hits":        Metrics.CacheHits.Value(),
		"cache_misses":      Metrics.CacheMisses.Value(),
		"cache_evictions":   Metrics.CacheEvictions.Value(),
		"cache_coalesced":   Metrics.CacheCoalesced.Value(),
		"requests_served":   Metrics.RequestsServed.Value(),
		"requests_rejected": Metrics.RequestsRejected.Value(),
		"queue_depth":       clampUint64(Metrics.QueueDepth.Value()),
		"inflight_workers":  clampUint64(Metrics.InFlightWorkers.Value()),
	}
}

// MetricsDelta subtracts snapshot before from after, field by field.
// Gauges (peak_cells, queue_depth, inflight_workers) are passed through
// from after, since a level or maximum is not additive.
func MetricsDelta(before, after map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for k, v := range after {
		if gaugeMetrics[k] {
			out[k] = v
			continue
		}
		out[k] = v - before[k]
	}
	return out
}
