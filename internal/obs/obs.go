// Package obs is the unified instrumentation layer of the repository: a
// nil-safe tracing interface threaded through every solver, a process-wide
// metrics registry published via expvar, and the consumer ends (live
// progress rendering, structured run reports, a pprof/expvar debug server).
//
// Design constraints, in order:
//
//  1. Zero cost when off. Solvers hold a Tracer interface value and guard
//     every emission with a nil check; an unset Trace field adds one
//     predictable branch per layer, nothing per cell. Global counters are
//     updated at layer granularity (one atomic add per DP layer), never
//     per cell.
//  2. Race freedom. The parallel dynamic program emits events only from
//     its coordinating goroutine; the bundled Tracer implementations
//     (Recorder, Progress, Collector) are additionally safe for concurrent
//     Emit calls so custom fan-outs stay correct under -race.
//  3. One schema. The same RunReport shape backs `optobdd -json`,
//     `bddbench -json` and `bddstats -json`, so downstream tooling (and
//     the ordering-learning literature that consumes per-run features)
//     parses one format.
//
// Events map one-to-one onto the quantities the papers' complexity claims
// are stated in: KindLayerEnd carries the per-layer cell-operation count
// whose total Theorem 5 bounds by n·3^{n−1}, and the live/peak cell gauges
// realize Remark 1's two-layer space argument. See DESIGN.md's
// "Observability" note for the full mapping.
package obs

import (
	"fmt"
	"time"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// KindLayerStart marks the start of one subset-DP layer: K is the
	// layer cardinality k, Subsets the size of the completed layer k−1.
	KindLayerStart EventKind = iota
	// KindLayerEnd marks a completed DP layer: K, Subsets (kept subsets),
	// CellOps (table cells visited by this layer's compactions), the
	// meter's LiveCells/PeakCells if metering, and wall-clock Elapsed.
	KindLayerEnd
	// KindCompaction is one table compaction inside a DP layer: K, Var
	// (the absorbed variable), Cost (the produced level width) and
	// CellOps (cells visited). High-volume; emitted only by the serial
	// dynamic program.
	KindCompaction
	// KindBnBExpand is one branch-and-bound child expansion: Depth, Var,
	// Cost (child context cost) and CellOps.
	KindBnBExpand
	// KindBnBPruneMemo is a subtree abandoned by the dominance memo.
	KindBnBPruneMemo
	// KindBnBPruneIncumbent is a subtree abandoned by the incumbent test.
	KindBnBPruneIncumbent
	// KindBnBPruneBound is a subtree abandoned by the lower bound; Bound
	// carries the bounding value.
	KindBnBPruneBound
	// KindBnBBest is an incumbent improvement: Cost is the new best.
	KindBnBBest
	// KindDnCSplit is a divide-and-conquer division: Depth is the
	// division level t, Mask the variable set being split, Subsets the
	// candidate division-subset count.
	KindDnCSplit
	// KindDnCMerge records the chosen division subset: Mask is the
	// winning subset K, Cost the optimal cost of the merged solution.
	KindDnCMerge
	// KindHeurPass is one heuristic improvement sweep: K is the pass
	// number, Cost the best cost after the pass, Evals the oracle
	// evaluations so far.
	KindHeurPass
	// KindHeurSwap is an accepted heuristic move: Var the moved variable
	// (or transposition position), K the target position, Cost the
	// resulting cost.
	KindHeurSwap
	// KindQuantumBatch is one (simulated) quantum minimum-finding call:
	// Evals is the candidate-set size, Queries the metered quantum oracle
	// queries, Cost the found minimum.
	KindQuantumBatch
	// KindLaneStart marks a portfolio lane starting: Lane names the lane
	// ("heuristic", or a registered solver name like "fs" / "bnb").
	KindLaneStart
	// KindLaneResult marks a lane finishing on its own: Lane names it,
	// Cost carries the cost it achieved (when it produced a result) and
	// Elapsed its wall-clock time. A lane that failed carries no Cost.
	KindLaneResult
	// KindRaceWon marks the portfolio race deciding: Lane is the winning
	// lane, Cost the proven-optimal cost, Elapsed the race duration.
	KindRaceWon
	// KindLaneCanceled marks a losing lane being canceled after the race
	// was decided: Lane names the canceled lane.
	KindLaneCanceled
)

var kindNames = [...]string{
	KindLayerStart:        "layer_start",
	KindLayerEnd:          "layer_end",
	KindCompaction:        "compaction",
	KindBnBExpand:         "bnb_expand",
	KindBnBPruneMemo:      "bnb_prune_memo",
	KindBnBPruneIncumbent: "bnb_prune_incumbent",
	KindBnBPruneBound:     "bnb_prune_bound",
	KindBnBBest:           "bnb_best",
	KindDnCSplit:          "dnc_split",
	KindDnCMerge:          "dnc_merge",
	KindHeurPass:          "heur_pass",
	KindHeurSwap:          "heur_swap",
	KindQuantumBatch:      "quantum_batch",
	KindLaneStart:         "lane_start",
	KindLaneResult:        "lane_result",
	KindRaceWon:           "race_won",
	KindLaneCanceled:      "lane_canceled",
}

// String returns the snake_case event name used in JSON reports.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one trace record. It is a flat union: which fields are
// meaningful depends on Kind (see the kind constants). Events are passed
// by value so emitting one allocates nothing.
type Event struct {
	Kind      EventKind     `json:"kind"`
	K         int           `json:"k,omitempty"`
	Var       int           `json:"var,omitempty"`
	Depth     int           `json:"depth,omitempty"`
	Mask      uint64        `json:"mask,omitempty"`
	Subsets   int           `json:"subsets,omitempty"`
	CellOps   uint64        `json:"cell_ops,omitempty"`
	Cost      uint64        `json:"cost,omitempty"`
	Bound     uint64        `json:"bound,omitempty"`
	LiveCells uint64        `json:"live_cells,omitempty"`
	PeakCells uint64        `json:"peak_cells,omitempty"`
	Evals     uint64        `json:"evals,omitempty"`
	Queries   float64       `json:"queries,omitempty"`
	Elapsed   time.Duration `json:"elapsed_ns,omitempty"`
	// Lane names the portfolio lane for the Lane* kinds ("heuristic", or
	// a registered solver name); empty for all other kinds.
	Lane string `json:"lane,omitempty"`
}

// Tracer receives trace events. Implementations used with the parallel
// solvers or shared across goroutines must be safe for concurrent Emit
// calls (all implementations in this package are). A nil Tracer disables
// tracing; solvers check for nil before building an Event, so the off
// path costs one branch.
type Tracer interface {
	Emit(Event)
}

// Multi fans events out to every non-nil tracer. It returns nil when no
// tracer remains, so the result can be stored directly in an options
// struct and keep the nil fast path.
func Multi(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}
