package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped tracing side of the package: a Span
// carries one request's identity (the trace/request ID minted in Solve
// or accepted from the X-Request-ID wire header) and its phase
// timeline — admission, queue wait, cache outcome, solver lanes — as a
// flat list of named, monotonically timestamped events. Spans travel
// through context.Context, so the solver stack annotates them without
// new parameters, and they serialize into the RunReport schema so the
// wire response, the access log and the CLI -json output all tell the
// same story about one request.

// SpanEvent is one phase marker: Name identifies the phase (e.g.
// "worker_acquired", "lane_start:fs") and AtNS is its offset from the
// span's start in nanoseconds.
type SpanEvent struct {
	Name string `json:"name"`
	AtNS int64  `json:"at_ns"`
}

// Span is one request's trace: an ID plus an append-only event
// timeline. It is safe for concurrent Event calls. The nil-safety
// contract matches Tracer: call sites guard against a nil *Span (a
// context without one), enforced by the tracesafe analyzer.
type Span struct {
	id    string
	start time.Time

	mu     sync.Mutex
	events []SpanEvent
}

// NewSpan returns a span with the given ID, minting a fresh request ID
// when id is empty. The span's clock starts now.
func NewSpan(id string) *Span {
	if id == "" {
		id = NewRequestID()
	}
	return &Span{id: id, start: time.Now()}
}

// requestIDSeq and requestIDNonce make minted IDs unique within and
// across processes: the nonce is drawn from crypto/rand once at init
// (falling back to the process start time), the sequence is atomic.
var (
	requestIDSeq   atomic.Uint64
	requestIDNonce = func() uint64 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// NewRequestID mints a process-unique request ID: 16 hex digits of
// process nonce, a dash, and a hex sequence number.
func NewRequestID() string {
	return fmt.Sprintf("%016x-%x", requestIDNonce, requestIDSeq.Add(1))
}

// ID returns the span's request/trace ID.
func (s *Span) ID() string { return s.id }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// Event appends a named phase marker timestamped relative to the
// span's start.
func (s *Span) Event(name string) {
	at := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, AtNS: at})
	s.mu.Unlock()
}

// Events returns a copy of the recorded phase markers in append order.
func (s *Span) Events() []SpanEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanEvent, len(s.events))
	copy(out, s.events)
	return out
}

// spanKey is the context key type for span propagation.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil when there is
// none (callers must guard before Event).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// EnsureSpan returns ctx's span, minting and attaching a fresh one
// (with a new request ID) when ctx carries none. The returned span is
// never nil.
func EnsureSpan(ctx context.Context) (context.Context, *Span) {
	if sp := SpanFromContext(ctx); sp != nil {
		return ctx, sp
	}
	sp := NewSpan("")
	return ContextWithSpan(ctx, sp), sp
}
