package obs

import (
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the latency/size distribution side of the metrics
// registry: a lock-cheap log-linear histogram whose Record path is a
// handful of atomic adds, a process-wide named registry rendered on
// /debug/vars and /metrics, and a Tracer sink folding per-layer solver
// events into histograms. Counters (metrics.go) answer "how much";
// histograms answer "how is it distributed" — p50/p90/p99 solve
// latency, queue wait, per-lane wall time — the quantities every
// hot-path PR after this one is judged against.

// Histogram bucket geometry: values below 2^(histSubBits+1) get exact
// unit buckets; above that, each power-of-two octave is split into
// 2^histSubBits log-linear sub-buckets, so the relative width of any
// bucket is at most 2^-histSubBits = 1/8. Quantile estimates return a
// bucket upper bound and therefore over-estimate by at most 12.5% —
// tight enough to compare runs, cheap enough to record per layer.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits + 1) * histSubCount
)

// bucketIndex maps a value to its bucket. Values 0..15 map exactly.
func bucketIndex(v uint64) int {
	if v < histSubCount*2 {
		return int(v)
	}
	e := uint(bits.Len64(v) - 1)
	sub := (v >> (e - histSubBits)) & (histSubCount - 1)
	return int((e-histSubBits+1)<<histSubBits + uint(sub))
}

// bucketUpper is the largest value stored in bucket i — the "le" bound
// of the Prometheus exposition.
func bucketUpper(i int) uint64 {
	if i < histSubCount*2 {
		return uint64(i)
	}
	block := uint(i >> histSubBits)
	sub := uint64(i & (histSubCount - 1))
	e := block + histSubBits - 1
	lower := uint64(1)<<e + sub<<(e-histSubBits)
	return lower + uint64(1)<<(e-histSubBits) - 1
}

// Histogram is a fixed-size log-linear histogram safe for concurrent
// Record calls: every mutation is an atomic add or CAS, no locks, so
// recording from solver lanes and request handlers never contends. Like
// Meter it is mergeable — Merge folds another histogram in bucket-wise,
// the idiom the portfolio uses for per-lane accounting.
//
// The nil-safety contract matches Tracer: methods must not be called on
// a nil *Histogram, and call sites either hold a registry-returned
// histogram (never nil) or guard with a nil check; the tracesafe
// analyzer enforces this.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	min     atomic.Uint64 // stores math.MaxUint64 until the first Record
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an unregistered histogram (tests, private
// accounting). Production histograms come from the registry via Hist.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration records d in nanoseconds; negative durations clamp to
// zero.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	m := h.min.Load()
	if m == math.MaxUint64 && h.count.Load() == 0 {
		return 0
	}
	return m
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution. The estimate is an upper bound of the true quantile and
// exceeds it by at most one bucket width — a relative error of at most
// 2^-histSubBits (12.5%) — and is additionally clamped to the exact
// observed maximum. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			v := bucketUpper(i)
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.max.Load()
}

// Merge folds other into h bucket-wise. Merging is commutative and
// associative on every statistic (the quantile estimator sees the union
// of the buckets), so per-lane histograms can be combined in any order.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for i := range h.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if v := other.max.Load(); other.count.Load() > 0 {
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
		mn := other.min.Load()
		for {
			cur := h.min.Load()
			if mn >= cur || h.min.CompareAndSwap(cur, mn) {
				break
			}
		}
	}
}

// HistogramSnapshot is a point-in-time summary of one histogram, the
// shape embedded in /v1/stats and run reports.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
}

// Snapshot summarizes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// String implements expvar.Var: the snapshot as a JSON object.
func (h *Histogram) String() string {
	s := h.Snapshot()
	return fmt.Sprintf(`{"count":%d,"sum":%d,"min":%d,"max":%d,"p50":%d,"p90":%d,"p99":%d}`,
		s.Count, s.Sum, s.Min, s.Max, s.P50, s.P90, s.P99)
}

// eachBucket calls fn for every non-empty bucket in ascending value
// order with the bucket's inclusive upper bound and its count.
func (h *Histogram) eachBucket(fn func(upper uint64, n uint64)) {
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			fn(bucketUpper(i), n)
		}
	}
}

// ---- registry ----

// histEntry is one registered histogram with its metric name and label
// pairs (the Prometheus identity).
type histEntry struct {
	name   string
	labels [][2]string
	h      *Histogram
}

// histReg's expvar map is created in the struct literal, not an init
// function, so package-level Hist calls (dpLayerHist below) find it
// ready regardless of initialization order.
var histReg = struct {
	sync.RWMutex
	m     map[string]*histEntry
	expvr *expvar.Map
}{m: make(map[string]*histEntry), expvr: expvar.NewMap("obddopt_hist")}

// histKey renders the canonical registry key name{k="v",...}.
func histKey(name string, labels [][2]string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

// Hist returns the registered histogram for name and the given label
// key/value pairs, creating and publishing it on first use. The result
// is never nil, so chained recording — Hist("solve_latency_ns").Record(v)
// — is safe without a guard. Label pairs must come in key, value order;
// a trailing odd key is ignored.
func Hist(name string, kv ...string) *Histogram {
	var labels [][2]string
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, [2]string{kv[i], kv[i+1]})
	}
	key := histKey(name, labels)
	histReg.RLock()
	e, ok := histReg.m[key]
	histReg.RUnlock()
	if ok {
		return e.h
	}
	histReg.Lock()
	defer histReg.Unlock()
	if e, ok := histReg.m[key]; ok {
		return e.h
	}
	e = &histEntry{name: name, labels: labels, h: NewHistogram()}
	histReg.m[key] = e
	histReg.expvr.Set(key, e.h)
	return e.h
}

// EachHistogram calls fn for every registered histogram in sorted
// (name, labels) order — the deterministic iteration behind /metrics
// and the stats snapshot.
func EachHistogram(fn func(name string, labels [][2]string, h *Histogram)) {
	histReg.RLock()
	keys := make([]string, 0, len(histReg.m))
	for k := range histReg.m {
		keys = append(keys, k)
	}
	entries := make(map[string]*histEntry, len(histReg.m))
	for k, e := range histReg.m {
		entries[k] = e
	}
	histReg.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		e := entries[k]
		fn(e.name, e.labels, e.h)
	}
}

// HistogramsSnapshot summarizes every registered histogram, keyed by
// its canonical name{labels} identity.
func HistogramsSnapshot() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	EachHistogram(func(name string, labels [][2]string, h *Histogram) {
		out[histKey(name, labels)] = h.Snapshot()
	})
	return out
}

// Well-known histogram names. Durations are recorded in nanoseconds
// (the _ns suffix); sizes are raw counts.
const (
	// HistNameLaneWall / HistNameLaneCells / HistNameLanePeak hold the
	// per-portfolio-lane distributions (label "lane"): wall time, table
	// cells touched, and peak live cells of each lane run.
	HistNameLaneWall  = "lane_wall_ns"
	HistNameLaneCells = "lane_cell_ops"
	HistNameLanePeak  = "lane_peak_cells"
	// HistNameSolverWall / Cells / Peak are the same quantities per
	// top-level solver invocation (label "solver"), recorded by the
	// Solve facade and the obddd service.
	HistNameSolverWall  = "solver_wall_ns"
	HistNameSolverCells = "solver_cell_ops"
	HistNameSolverPeak  = "solver_peak_cells"
	// HistNameQueueWait / SolveLatency / CacheLookup are the obddd
	// request-path distributions: time waiting for a worker slot, solver
	// run time, and canonical-cache lookup time.
	HistNameQueueWait    = "queue_wait_ns"
	HistNameSolveLatency = "solve_latency_ns"
	HistNameCacheLookup  = "cache_lookup_ns"
	// HistNameDPLayer / DPLayerCells are per-DP-layer wall time and cell
	// operations, folded from KindLayerEnd events by HistogramSink.
	HistNameDPLayer      = "dp_layer_ns"
	HistNameDPLayerCells = "dp_layer_cell_ops"
	// HistNameShardOccupancy / RunSteals describe the work-stealing DP
	// scheduler: shards executed per worker per run (occupancy — a flat
	// distribution means the steal protocol balanced the layer pipeline)
	// and shards stolen per run.
	HistNameShardOccupancy = "ws_shard_occupancy"
	HistNameRunSteals      = "ws_run_steals"
)

// Package-level handles for the layer sink's hot path (one lookup at
// init instead of one per layer).
var (
	dpLayerHist      = Hist(HistNameDPLayer)
	dpLayerCellsHist = Hist(HistNameDPLayerCells)
)

// HistogramSink is a Tracer folding the layer-granular event stream
// into registry histograms: every KindLayerEnd records the layer's wall
// time into dp_layer_ns and its cell operations into dp_layer_cell_ops.
// High-volume kinds (per-compaction, per-expansion) return after one
// switch, so attaching the sink costs roughly what the Progress
// renderer does. The zero value is ready; the sink is stateless and
// safe for concurrent Emit calls.
type HistogramSink struct{}

// NewHistogramSink returns a HistogramSink tracer.
func NewHistogramSink() *HistogramSink { return &HistogramSink{} }

// Emit implements Tracer.
func (s *HistogramSink) Emit(ev Event) {
	if ev.Kind != KindLayerEnd {
		return
	}
	dpLayerHist.RecordDuration(ev.Elapsed)
	dpLayerCellsHist.Record(ev.CellOps)
}
