package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parsePromLine splits a sample line into (series, value), rejecting
// malformed lines. Series keeps the label block verbatim.
func parsePromLine(t *testing.T, line string) (string, uint64) {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	v, err := strconv.ParseUint(line[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("malformed value in %q: %v", line, err)
	}
	return line[:i], v
}

func TestWritePrometheusFormat(t *testing.T) {
	Metrics.RunsStarted.Inc()
	h := Hist(HistNameSolveLatency, "solver", `we"ird\`)
	h.Record(100)
	h.Record(100000)

	rec := httptest.NewRecorder()
	PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()

	typed := map[string]string{}
	values := map[string]uint64{}
	var order []string
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := typed[parts[2]]; dup {
				t.Errorf("duplicate TYPE header for %s", parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		series, v := parsePromLine(t, line)
		values[series] = v
		order = append(order, series)
	}

	// Counters and gauges are present and typed.
	if typed["obddopt_runs_started"] != "counter" {
		t.Errorf("runs_started type = %q, want counter", typed["obddopt_runs_started"])
	}
	for _, g := range []string{"obddopt_queue_depth", "obddopt_inflight_workers", "obddopt_peak_cells"} {
		if typed[g] != "gauge" {
			t.Errorf("%s type = %q, want gauge", g, typed[g])
		}
	}
	if values["obddopt_runs_started"] < 1 {
		t.Error("runs_started sample missing or zero")
	}

	// The histogram family is typed once, label values are escaped, the
	// le buckets are cumulative and capped by +Inf == _count, and _sum
	// matches.
	if typed["obddopt_"+HistNameSolveLatency] != "histogram" {
		t.Fatalf("solve latency histogram not typed: %v", typed)
	}
	esc := `solver="we\"ird\\"`
	var cum []uint64
	for _, s := range order {
		if strings.HasPrefix(s, "obddopt_"+HistNameSolveLatency+"_bucket{"+esc) {
			cum = append(cum, values[s])
		}
	}
	if len(cum) < 3 { // two value buckets + +Inf at minimum
		t.Fatalf("expected escaped-label buckets, got %d series in:\n%s", len(cum), body)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("le buckets not cumulative: %v", cum)
		}
	}
	inf := values["obddopt_"+HistNameSolveLatency+`_bucket{`+esc+`,le="+Inf"}`]
	cnt := values["obddopt_"+HistNameSolveLatency+`_count{`+esc+`}`]
	sum := values["obddopt_"+HistNameSolveLatency+`_sum{`+esc+`}`]
	if inf != cnt || cnt < 2 {
		t.Errorf("+Inf bucket %d != count %d (or count < 2)", inf, cnt)
	}
	if sum < 100100 {
		t.Errorf("sum = %d, want >= 100100", sum)
	}
}
