package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file renders the process-wide registry — counters, gauges and
// histograms — in the Prometheus text exposition format (version
// 0.0.4), with no dependency beyond the standard library. The obddd
// service mounts it on GET /metrics, so the same numbers served as JSON
// on /debug/vars and /v1/stats are scrapeable by any Prometheus-
// compatible collector.

// promNamespace prefixes every exposed metric name.
const promNamespace = "obddopt"

// gaugeMetrics names the registry entries that are gauges (point-in-
// time levels) rather than monotonic counters; MetricsDelta passes them
// through for the same reason.
var gaugeMetrics = map[string]bool{
	"peak_cells":       true,
	"queue_depth":      true,
	"inflight_workers": true,
}

// WritePrometheus renders every registered metric and histogram to w in
// the Prometheus text format. Counters and gauges come from the Metrics
// registry; histograms from the histogram registry, with their labels
// preserved and cumulative le buckets synthesized from the log-linear
// bucket layout.
func WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	snap := MetricsSnapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		kind := "counter"
		if gaugeMetrics[name] {
			kind = "gauge"
		}
		fmt.Fprintf(bw, "# TYPE %s_%s %s\n", promNamespace, name, kind)
		fmt.Fprintf(bw, "%s_%s %d\n", promNamespace, name, snap[name])
	}

	// Histograms grouped by metric name so each family gets one # TYPE
	// header; EachHistogram already iterates in sorted (name, labels)
	// order.
	lastName := ""
	EachHistogram(func(name string, labels [][2]string, h *Histogram) {
		full := promNamespace + "_" + name
		if name != lastName {
			fmt.Fprintf(bw, "# TYPE %s histogram\n", full)
			lastName = name
		}
		var cum uint64
		h.eachBucket(func(upper, n uint64) {
			cum += n
			fmt.Fprintf(bw, "%s_bucket{%s} %d\n", full, promLabels(labels, fmt.Sprintf("%d", upper)), cum)
		})
		fmt.Fprintf(bw, "%s_bucket{%s} %d\n", full, promLabels(labels, "+Inf"), h.Count())
		fmt.Fprintf(bw, "%s_sum%s %d\n", full, promLabelBlock(labels), h.Sum())
		fmt.Fprintf(bw, "%s_count%s %d\n", full, promLabelBlock(labels), h.Count())
	})
	return bw.Flush()
}

// promLabels renders the label pairs plus the le bound as the inside of
// a label block.
func promLabels(labels [][2]string, le string) string {
	var b strings.Builder
	for _, kv := range labels {
		fmt.Fprintf(&b, "%s=%s,", kv[0], promQuote(kv[1]))
	}
	fmt.Fprintf(&b, "le=%s", promQuote(le))
	return b.String()
}

// promLabelBlock renders {k="v",...} or the empty string when there are
// no labels (for the _sum/_count series).
func promLabelBlock(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", kv[0], promQuote(kv[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// promQuote escapes a label value per the exposition format: backslash,
// double quote and newline.
func promQuote(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return `"` + v + `"`
}

// PrometheusHandler returns an http.Handler serving WritePrometheus —
// the GET /metrics endpoint of the obddd service.
func PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
}
