package obs

import (
	"sync"
	"time"
)

// RunReport is the machine-readable run summary shared by all CLI `-json`
// modes (`optobdd`, `bddbench`, `bddstats`) and by library users via
// Collector.Report. Solver-specific sections are pointers and omitted
// when the run produced no such events; Meter and Result hold the
// `core.Meter` / `core.Result` (or shared/heuristic equivalents) of the
// run, which carry their own JSON tags.
type RunReport struct {
	Tool      string          `json:"tool,omitempty"`
	Algorithm string          `json:"algorithm,omitempty"`
	Rule      string          `json:"rule,omitempty"`
	// RequestID is the request/trace ID of the run's span — minted by
	// Solve, or accepted from the X-Request-ID wire header by obddd —
	// and Span its phase timeline (admission, queue, cache, solver
	// lanes). See internal/obs span.go.
	RequestID string          `json:"request_id,omitempty"`
	Span      []SpanEvent     `json:"span,omitempty"`
	N         int             `json:"n,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`
	Events    int             `json:"events,omitempty"`
	Layers    []LayerStat     `json:"layers,omitempty"`
	BnB       *BnBStats       `json:"bnb,omitempty"`
	DnC       *DnCStats       `json:"dnc,omitempty"`
	Heuristic *HeurStats      `json:"heuristic,omitempty"`
	Quantum   *QuantStats     `json:"quantum,omitempty"`
	Portfolio *PortfolioStats `json:"portfolio,omitempty"`
	Metrics   any             `json:"metrics,omitempty"`
	Meter     any             `json:"meter,omitempty"`
	Result    any             `json:"result,omitempty"`
	Details   any             `json:"details,omitempty"`
}

// LayerStat summarizes one completed DP layer (one KindLayerEnd event).
type LayerStat struct {
	K         int     `json:"k"`
	Subsets   int     `json:"subsets"`
	CellOps   uint64  `json:"cell_ops"`
	LiveCells uint64  `json:"live_cells,omitempty"`
	PeakCells uint64  `json:"peak_cells,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// BnBStats aggregates branch-and-bound events.
type BnBStats struct {
	Expansions       uint64 `json:"expansions"`
	PrunedMemo       uint64 `json:"pruned_memo"`
	PrunedIncumbent  uint64 `json:"pruned_incumbent"`
	PrunedLowerBound uint64 `json:"pruned_lower_bound"`
	Improvements     uint64 `json:"improvements"`
	BestCost         uint64 `json:"best_cost"`
	CellOps          uint64 `json:"cell_ops"`
}

// DnCStats aggregates divide-and-conquer events.
type DnCStats struct {
	Splits     uint64 `json:"splits"`
	Merges     uint64 `json:"merges"`
	Candidates uint64 `json:"candidates"`
}

// HeurStats aggregates heuristic-search events.
type HeurStats struct {
	Passes    uint64 `json:"passes"`
	Swaps     uint64 `json:"swaps"`
	FinalCost uint64 `json:"final_cost"`
	Evals     uint64 `json:"evals"`
}

// QuantStats aggregates simulated quantum minimum-finding batches.
type QuantStats struct {
	Batches     uint64  `json:"batches"`
	OracleEvals uint64  `json:"oracle_evals"`
	Queries     float64 `json:"queries"`
}

// LaneStat summarizes one portfolio lane.
type LaneStat struct {
	Lane      string  `json:"lane"`
	Cost      uint64  `json:"cost,omitempty"`
	Canceled  bool    `json:"canceled,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// PortfolioStats aggregates portfolio race events.
type PortfolioStats struct {
	Lanes   []LaneStat `json:"lanes,omitempty"`
	Winner  string     `json:"winner,omitempty"`
	WonCost uint64     `json:"won_cost,omitempty"`
	RaceMS  float64    `json:"race_ms,omitempty"`
}

// Collector is a Tracer that folds the event stream into a RunReport as
// it arrives, so emitting a JSON report at the end of a run needs no
// event buffering. It is safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	start   time.Time
	events  int
	layers  []LayerStat
	bnb     BnBStats
	hasBnB  bool
	dnc     DnCStats
	hasDnC  bool
	heur    HeurStats
	hasHeur bool
	quant   QuantStats
	hasQu   bool
	port    PortfolioStats
	hasPort bool
}

// NewCollector returns a Collector; elapsed time in the report is
// measured from this call.
func NewCollector() *Collector { return &Collector{start: time.Now()} }

// Emit implements Tracer.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++
	switch ev.Kind {
	case KindLayerEnd:
		c.layers = append(c.layers, LayerStat{
			K:         ev.K,
			Subsets:   ev.Subsets,
			CellOps:   ev.CellOps,
			LiveCells: ev.LiveCells,
			PeakCells: ev.PeakCells,
			ElapsedMS: float64(ev.Elapsed) / float64(time.Millisecond),
		})
	case KindBnBExpand:
		c.hasBnB = true
		c.bnb.Expansions++
		c.bnb.CellOps += ev.CellOps
	case KindBnBPruneMemo:
		c.hasBnB = true
		c.bnb.PrunedMemo++
	case KindBnBPruneIncumbent:
		c.hasBnB = true
		c.bnb.PrunedIncumbent++
	case KindBnBPruneBound:
		c.hasBnB = true
		c.bnb.PrunedLowerBound++
	case KindBnBBest:
		c.hasBnB = true
		c.bnb.Improvements++
		c.bnb.BestCost = ev.Cost
	case KindDnCSplit:
		c.hasDnC = true
		c.dnc.Splits++
		c.dnc.Candidates += uint64(ev.Subsets)
	case KindDnCMerge:
		c.hasDnC = true
		c.dnc.Merges++
	case KindHeurPass:
		c.hasHeur = true
		c.heur.Passes++
		c.heur.FinalCost = ev.Cost
		c.heur.Evals = ev.Evals
	case KindHeurSwap:
		c.hasHeur = true
		c.heur.Swaps++
	case KindQuantumBatch:
		c.hasQu = true
		c.quant.Batches++
		c.quant.OracleEvals += ev.Evals
		c.quant.Queries += ev.Queries
	case KindLaneStart:
		c.hasPort = true
	case KindLaneResult:
		c.hasPort = true
		c.port.Lanes = append(c.port.Lanes, LaneStat{
			Lane:      ev.Lane,
			Cost:      ev.Cost,
			ElapsedMS: float64(ev.Elapsed) / float64(time.Millisecond),
		})
	case KindLaneCanceled:
		c.hasPort = true
		c.port.Lanes = append(c.port.Lanes, LaneStat{Lane: ev.Lane, Canceled: true})
	case KindRaceWon:
		c.hasPort = true
		c.port.Winner = ev.Lane
		c.port.WonCost = ev.Cost
		c.port.RaceMS = float64(ev.Elapsed) / float64(time.Millisecond)
	}
}

// Report assembles the collected statistics into a RunReport. The caller
// typically fills in Tool/Algorithm/Rule/N/Meter/Result before encoding.
func (c *Collector) Report() *RunReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &RunReport{
		ElapsedMS: float64(time.Since(c.start)) / float64(time.Millisecond),
		Events:    c.events,
		Layers:    append([]LayerStat(nil), c.layers...),
	}
	if c.hasBnB {
		b := c.bnb
		rep.BnB = &b
	}
	if c.hasDnC {
		d := c.dnc
		rep.DnC = &d
	}
	if c.hasHeur {
		h := c.heur
		rep.Heuristic = &h
	}
	if c.hasQu {
		q := c.quant
		rep.Quantum = &q
	}
	if c.hasPort {
		p := c.port
		p.Lanes = append([]LaneStat(nil), c.port.Lanes...)
		rep.Portfolio = &p
	}
	return rep
}
