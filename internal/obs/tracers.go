package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Recorder is a Tracer that appends every event to an in-memory log. It
// is safe for concurrent use and intended for tests and offline analysis
// (e.g. exporting run features for learned variable-ordering methods).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns the number of recorded events of the given kind.
func (r *Recorder) Count(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// SumCellOps returns the total CellOps over events of the given kind.
func (r *Recorder) SumCellOps(kind EventKind) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	for _, ev := range r.events {
		if ev.Kind == kind {
			sum += ev.CellOps
		}
	}
	return sum
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Progress is a Tracer that renders a live, human-readable run log —
// one line per DP layer, incumbent improvement, division step or
// heuristic pass — to a writer (normally stderr). High-volume events
// (per-compaction, per-expansion) are ignored, so attaching Progress to
// a large run costs a cheap type switch per event.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewProgress returns a Progress renderer writing to w.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()}
}

// Emit implements Tracer.
func (p *Progress) Emit(ev Event) {
	switch ev.Kind {
	case KindLayerEnd, KindBnBBest, KindDnCSplit, KindDnCMerge, KindHeurPass, KindQuantumBatch,
		KindLaneStart, KindLaneResult, KindRaceWon, KindLaneCanceled:
	default:
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	since := time.Since(p.start).Round(time.Millisecond)
	switch ev.Kind {
	case KindLayerEnd:
		fmt.Fprintf(p.w, "[%8s] layer %2d: %d subsets, %d cell ops, live %d cells (peak %d), %s\n",
			since, ev.K, ev.Subsets, ev.CellOps, ev.LiveCells, ev.PeakCells,
			ev.Elapsed.Round(time.Microsecond))
	case KindBnBBest:
		fmt.Fprintf(p.w, "[%8s] bnb: new incumbent %d nonterminals\n", since, ev.Cost)
	case KindDnCSplit:
		fmt.Fprintf(p.w, "[%8s] dnc: split level %d over mask %#x, %d candidate subsets\n",
			since, ev.Depth, ev.Mask, ev.Subsets)
	case KindDnCMerge:
		fmt.Fprintf(p.w, "[%8s] dnc: chose subset %#x, cost %d\n", since, ev.Mask, ev.Cost)
	case KindHeurPass:
		fmt.Fprintf(p.w, "[%8s] heuristic pass %d: cost %d after %d evaluations\n",
			since, ev.K, ev.Cost, ev.Evals)
	case KindQuantumBatch:
		fmt.Fprintf(p.w, "[%8s] quantum: min over %d candidates, %.1f metered queries, min cost %d\n",
			since, ev.Evals, ev.Queries, ev.Cost)
	case KindLaneStart:
		fmt.Fprintf(p.w, "[%8s] portfolio: lane %q started\n", since, ev.Lane)
	case KindLaneResult:
		fmt.Fprintf(p.w, "[%8s] portfolio: lane %q finished, cost %d in %s\n",
			since, ev.Lane, ev.Cost, ev.Elapsed.Round(time.Microsecond))
	case KindRaceWon:
		fmt.Fprintf(p.w, "[%8s] portfolio: lane %q won the race, optimal cost %d\n",
			since, ev.Lane, ev.Cost)
	case KindLaneCanceled:
		fmt.Fprintf(p.w, "[%8s] portfolio: lane %q canceled\n", since, ev.Lane)
	}
}
