package pla

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

const adderPLA = `# 1-bit full adder: inputs a b cin, outputs sum carry
.i 3
.o 2
.ilb a b cin
.ob sum carry
.p 7
100 10
010 10
001 10
111 11
11- 01
1-1 01
-11 01
.e
`

func TestParseAdder(t *testing.T) {
	p, err := Parse(strings.NewReader(adderPLA))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.NumInputs != 3 || p.NumOutputs != 2 || len(p.Terms) != 7 {
		t.Fatalf("shape wrong: %+v", p)
	}
	if p.InputNames[2] != "cin" || p.OutputNames[1] != "carry" {
		t.Errorf("names wrong")
	}
	sum := p.OutputTable(0)
	carry := p.OutputTable(1)
	wantSum := truthtable.FromFunc(3, func(x []bool) bool {
		c := 0
		for _, v := range x {
			if v {
				c++
			}
		}
		return c%2 == 1
	})
	wantCarry := funcs.Majority(3)
	if !sum.Equal(wantSum) {
		t.Errorf("sum output wrong")
	}
	if !carry.Equal(wantCarry) {
		t.Errorf("carry output wrong")
	}
	if len(p.Tables()) != 2 {
		t.Errorf("Tables length wrong")
	}
}

func TestDontCareAndTilde(t *testing.T) {
	src := ".i 2\n.o 1\n-1 1\n10 ~\n.e\n"
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tt := p.OutputTable(0)
	// Only the -1 cube contributes: x1 = 1.
	if !tt.Equal(truthtable.Var(2, 1)) {
		t.Errorf("don't-care handling wrong: %s", tt.Hex())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no decls":      "01 1\n",
		"bad i":         ".i x\n",
		"bad o":         ".o -2\n",
		"bad directive": ".i 2\n.o 1\n.type fr\n",
		"cube length":   ".i 3\n.o 1\n01 1\n",
		"output length": ".i 2\n.o 2\n01 1\n",
		"cube char":     ".i 2\n.o 1\n0x 1\n",
		"output char":   ".i 2\n.o 1\n01 2\n",
		"missing decls": "# nothing\n",
		"p mismatch":    ".i 2\n.o 1\n.p 2\n01 1\n.e\n",
		"ilb mismatch":  ".i 2\n.o 1\n.ilb a\n01 1\n",
		"ob mismatch":   ".i 2\n.o 1\n.ob a b\n01 1\n",
		"term shape":    ".i 2\n.o 1\n01 1 extra\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse succeeded on %q", name, src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(adderPLA))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for j := 0; j < p.NumOutputs; j++ {
		if !back.OutputTable(j).Equal(p.OutputTable(j)) {
			t.Errorf("output %d changed in round trip", j)
		}
	}
}

func TestFromTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 15; trial++ {
		n := 1 + trial%5
		tt := truthtable.Random(n, rng)
		p := FromTable(tt)
		if p.NumInputs != n || p.NumOutputs != 1 {
			t.Fatalf("FromTable shape wrong")
		}
		if uint64(len(p.Terms)) != tt.CountOnes() {
			t.Fatalf("term count %d != ones %d", len(p.Terms), tt.CountOnes())
		}
		if !p.OutputTable(0).Equal(tt) {
			t.Fatalf("FromTable does not reproduce the function")
		}
	}
}

func TestOptimalOrderingFromPLA(t *testing.T) {
	// End-to-end Corollary 2 path: the PLA carry output's optimum equals
	// the direct majority function's.
	p, err := Parse(strings.NewReader(adderPLA))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	viaPLA := core.OptimalOrdering(p.OutputTable(1), nil)
	direct := core.OptimalOrdering(funcs.Majority(3), nil)
	if viaPLA.MinCost != direct.MinCost {
		t.Errorf("PLA path optimum %d != direct %d", viaPLA.MinCost, direct.MinCost)
	}
}

func TestOutputTablePanics(t *testing.T) {
	p := &PLA{NumInputs: 2, NumOutputs: 1}
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on bad output index")
		}
	}()
	p.OutputTable(3)
}
