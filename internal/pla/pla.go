// Package pla reads and writes two-level covers in the Berkeley/espresso
// PLA format — the interchange format of classical logic-synthesis
// benchmarks, and the kind of input the 1987 evaluation drew its examples
// from. A PLA is parsed into per-output truth tables (the O*(2^n)
// preparation of Corollary 2), after which the exact ordering algorithms
// apply.
//
// Supported directives: .i, .o (required), .p (checked when present),
// .ilb/.ob (names, retained), .e/.end, and '#' comments. Input-plane
// characters are 0, 1 and - (don't care); output-plane characters are 1
// (member), and 0/-/~ (non-member), i.e. the F-type cover interpretation.
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"obddopt/internal/truthtable"
)

// PLA is a parsed two-level cover.
type PLA struct {
	// NumInputs and NumOutputs are the .i and .o declarations.
	NumInputs, NumOutputs int
	// InputNames and OutputNames hold .ilb/.ob labels when present.
	InputNames, OutputNames []string
	// Terms are the product terms: input cube and output mask per row.
	Terms []Term
}

// Term is one cover row.
type Term struct {
	// Cube[i] is '0', '1' or '-' for input i.
	Cube []byte
	// Outputs[j] reports whether the term belongs to output j's cover.
	Outputs []bool
}

// Parse reads a PLA description.
func Parse(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	p := &PLA{NumInputs: -1, NumOutputs: -1}
	declaredTerms := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".i":
			n, err := positiveArg(fields)
			if err != nil {
				return nil, fmt.Errorf("pla: line %d: .i: %v", lineNo, err)
			}
			p.NumInputs = n
		case ".o":
			n, err := positiveArg(fields)
			if err != nil {
				return nil, fmt.Errorf("pla: line %d: .o: %v", lineNo, err)
			}
			p.NumOutputs = n
		case ".p":
			n, err := positiveArg(fields)
			if err != nil {
				return nil, fmt.Errorf("pla: line %d: .p: %v", lineNo, err)
			}
			declaredTerms = n
		case ".ilb":
			p.InputNames = append([]string{}, fields[1:]...)
		case ".ob":
			p.OutputNames = append([]string{}, fields[1:]...)
		case ".e", ".end":
			// terminator; ignore the rest
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("pla: line %d: unsupported directive %s", lineNo, fields[0])
			}
			if p.NumInputs < 0 || p.NumOutputs < 0 {
				return nil, fmt.Errorf("pla: line %d: product term before .i/.o", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla: line %d: expected '<cube> <outputs>'", lineNo)
			}
			term, err := parseTerm(fields[0], fields[1], p.NumInputs, p.NumOutputs)
			if err != nil {
				return nil, fmt.Errorf("pla: line %d: %v", lineNo, err)
			}
			p.Terms = append(p.Terms, term)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.NumInputs < 0 || p.NumOutputs < 0 {
		return nil, fmt.Errorf("pla: missing .i/.o declarations")
	}
	if declaredTerms >= 0 && declaredTerms != len(p.Terms) {
		return nil, fmt.Errorf("pla: .p declares %d terms, found %d", declaredTerms, len(p.Terms))
	}
	if p.InputNames != nil && len(p.InputNames) != p.NumInputs {
		return nil, fmt.Errorf("pla: .ilb names %d inputs, .i declares %d", len(p.InputNames), p.NumInputs)
	}
	if p.OutputNames != nil && len(p.OutputNames) != p.NumOutputs {
		return nil, fmt.Errorf("pla: .ob names %d outputs, .o declares %d", len(p.OutputNames), p.NumOutputs)
	}
	return p, nil
}

func positiveArg(fields []string) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("expected one argument")
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad count %q", fields[1])
	}
	return n, nil
}

func parseTerm(cube, outs string, ni, no int) (Term, error) {
	if len(cube) != ni {
		return Term{}, fmt.Errorf("cube %q has %d characters, want %d", cube, len(cube), ni)
	}
	if len(outs) != no {
		return Term{}, fmt.Errorf("output part %q has %d characters, want %d", outs, len(outs), no)
	}
	t := Term{Cube: make([]byte, ni), Outputs: make([]bool, no)}
	for i := 0; i < ni; i++ {
		switch cube[i] {
		case '0', '1', '-':
			t.Cube[i] = cube[i]
		default:
			return Term{}, fmt.Errorf("bad cube character %q", cube[i])
		}
	}
	for j := 0; j < no; j++ {
		switch outs[j] {
		case '1':
			t.Outputs[j] = true
		case '0', '-', '~':
			t.Outputs[j] = false
		default:
			return Term{}, fmt.Errorf("bad output character %q", outs[j])
		}
	}
	return t, nil
}

// Matches reports whether the term's cube covers the assignment
// (x[i] = value of input i).
func (t Term) Matches(x []bool) bool {
	for i, c := range t.Cube {
		if c == '-' {
			continue
		}
		if (c == '1') != x[i] {
			return false
		}
	}
	return true
}

// OutputTable compiles output j to its truth table over the inputs.
func (p *PLA) OutputTable(j int) *truthtable.Table {
	if j < 0 || j >= p.NumOutputs {
		panic("pla: output index out of range")
	}
	return truthtable.FromFunc(p.NumInputs, func(x []bool) bool {
		for _, t := range p.Terms {
			if t.Outputs[j] && t.Matches(x) {
				return true
			}
		}
		return false
	})
}

// Tables compiles every output.
func (p *PLA) Tables() []*truthtable.Table {
	out := make([]*truthtable.Table, p.NumOutputs)
	for j := range out {
		out[j] = p.OutputTable(j)
	}
	return out
}

// FromTable builds a (canonical minterm) PLA for a single function — one
// term per satisfying assignment. Useful for writing a function out in an
// interchangeable form; no two-level minimization is attempted.
func FromTable(tt *truthtable.Table) *PLA {
	n := tt.NumVars()
	p := &PLA{NumInputs: n, NumOutputs: 1}
	for idx := uint64(0); idx < tt.Size(); idx++ {
		if !tt.Bit(idx) {
			continue
		}
		cube := make([]byte, n)
		for i := 0; i < n; i++ {
			if idx>>uint(i)&1 == 1 {
				cube[i] = '1'
			} else {
				cube[i] = '0'
			}
		}
		p.Terms = append(p.Terms, Term{Cube: cube, Outputs: []bool{true}})
	}
	return p
}

// Write serializes the PLA.
func (p *PLA) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", p.NumInputs, p.NumOutputs)
	if p.InputNames != nil {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(p.InputNames, " "))
	}
	if p.OutputNames != nil {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(p.OutputNames, " "))
	}
	fmt.Fprintf(bw, ".p %d\n", len(p.Terms))
	for _, t := range p.Terms {
		bw.Write(t.Cube)
		bw.WriteByte(' ')
		for _, o := range t.Outputs {
			if o {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}
