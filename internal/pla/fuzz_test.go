package pla

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the PLA reader's robustness and the parse → Write →
// reparse fixed point. Run the seed corpus with plain `go test`; explore
// with `go test -fuzz FuzzParse ./internal/pla`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		adderPLA,
		".i 2\n.o 1\n-1 1\n.e\n",
		".i 1\n.o 1\n.p 1\n0 1\n",
		".i 2\n.o 2\n.ilb a b\n.ob f g\n01 10\n",
		"", ".i x\n", ".i 2\n.o 1\n01 2\n", "# only a comment\n",
		".i 0\n.o 1\n 1\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if p.NumInputs > 14 {
			return // keep table materialization tractable
		}
		// Accepted PLAs must survive a write/reparse round trip with
		// identical semantics per output.
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			t.Fatalf("Write failed on accepted PLA: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("Write output does not reparse: %v\n%s", err, buf.String())
		}
		for j := 0; j < p.NumOutputs; j++ {
			if !back.OutputTable(j).Equal(p.OutputTable(j)) {
				t.Fatalf("output %d changed in round trip", j)
			}
		}
	})
}
