package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// This file is the wire schema of the solve service: the JSON request
// and response bodies of POST /v1/solve and /v1/solve/batch, and the
// bidirectional mapping between service error codes and the engine's
// sentinel errors, so a remote caller holding the typed client sees the
// exact error contract of the in-process Solve API (errors.Is against
// core.ErrCanceled / ErrBudgetExceeded / ErrInvalidInput).

// SolveRequest is the body of POST /v1/solve and one element of a
// batch. Result and report shapes reuse the run-report schema of
// internal/obs, so responses feed the same tooling as the CLIs' -json
// output.
type SolveRequest struct {
	// Table is the truth-table literal "n:hexdigits" as produced by
	// (*truthtable.Table).Hex — the canonical input form.
	Table string `json:"table"`
	// Rule selects the diagram variant: "obdd" (default) or "zdd".
	Rule string `json:"rule,omitempty"`
	// Solver names the strategy (see GET /v1/solvers); empty selects
	// the portfolio.
	Solver string `json:"solver,omitempty"`
	// DeadlineMS bounds the solve's wall-clock time in milliseconds; 0
	// adopts the server's default. The server clamps it to its
	// configured maximum either way.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxCells / MaxNodes bound the solve's resources (live DP cells,
	// search-node expansions); 0 is unlimited up to the server's caps.
	MaxCells uint64 `json:"max_cells,omitempty"`
	MaxNodes uint64 `json:"max_nodes,omitempty"`
	// Workers is the goroutine count for parallel lanes; 0 selects
	// GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// NoCache bypasses the canonical result cache for this request
	// (the fresh result still populates it).
	NoCache bool `json:"no_cache,omitempty"`
	// Report requests the per-run obs.RunReport in the response.
	Report bool `json:"report,omitempty"`
	// Hints carries optional scheduling hints. Servers that predate the
	// "batch-hints" feature reject unknown fields, so clients send it
	// only after seeing the feature in GET /v1/solvers.
	Hints *SolveHints `json:"hints,omitempty"`
}

// SolveHints are best-effort scheduling hints; the server is free to
// ignore them, and the decision it took is echoed in
// SolveResponse.Scheduling.
type SolveHints struct {
	// Coschedule marks a batch item as a co-scheduling candidate: the
	// batch planner may group it with other opted-in items of the same
	// variable count and rule whose tables overlap, and solve the group
	// as one shared forest under a single worker slot. A co-scheduled
	// item's result carries the cost of the item's diagram under the
	// group's jointly optimal ordering — optimal for the shared forest,
	// not necessarily for the item alone — so such results are never
	// cached as canonical optima. Ignored outside /v1/solve/batch.
	Coschedule bool `json:"coschedule,omitempty"`
}

// SchedulingEcho reports the batch planner's decision for one item; it
// is present exactly when the request carried hints.
type SchedulingEcho struct {
	// Coscheduled reports whether the item was solved as part of a
	// shared-forest group.
	Coscheduled bool `json:"coscheduled"`
	// Group identifies the co-scheduling group (variable count, rule and
	// canonical-digest prefix); empty when Coscheduled is false.
	Group string `json:"group,omitempty"`
	// GroupSize is the number of batch items solved together.
	GroupSize int `json:"group_size,omitempty"`
}

// WireError is the service error envelope. Code is stable and machine-
// mapped; Message is human diagnostic detail.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
}

// The stable service error codes.
const (
	CodeCanceled       = "canceled"
	CodeBudgetExceeded = "budget_exceeded"
	CodeInvalidInput   = "invalid_input"
	CodeSaturated      = "saturated"
	CodeDraining       = "draining"
	CodeInternal       = "internal"
)

// Service-level sentinel errors (admission failures have no in-process
// counterpart; the engine sentinels cover everything else).
var (
	// ErrSaturated reports that the server's admission queue was full;
	// retry after the Retry-After interval.
	ErrSaturated = errors.New("obddd: server saturated")
	// ErrDraining reports that the server is shutting down and no
	// longer admits work.
	ErrDraining = errors.New("obddd: server draining")
)

// SolveResponse is the body of a completed solve (HTTP 200) or a
// rejected one (400/429/503). Result may be non-nil alongside a
// canceled/budget_exceeded error: it is the best incumbent found, a
// valid ordering whose optimality is not proven — the same graceful-
// degradation contract as the in-process API.
type SolveResponse struct {
	Result *core.Result   `json:"result,omitempty"`
	Report *obs.RunReport `json:"report,omitempty"`
	// RequestID is the request's trace ID: the value of the caller's
	// X-Request-ID header when one was sent, a server-minted ID
	// otherwise. The same ID appears in the X-Request-ID response
	// header, the access log, and the RunReport when one was requested.
	RequestID string `json:"request_id,omitempty"`
	// Cached reports the result was served from the canonical cache
	// without running a solver.
	Cached bool `json:"cached,omitempty"`
	// ElapsedMS is the server-side handling time.
	ElapsedMS float64    `json:"elapsed_ms,omitempty"`
	Error     *WireError `json:"error,omitempty"`
	// BDD is the encoded OBDD artifact (internal/artifact wire format,
	// base64 in JSON) of the function under Result.Ordering. Present
	// only when the request asked for it (?include=bdd or Accept:
	// application/x-obdd), the solve proved optimality, and the rule is
	// OBDD; incumbents from early-stopped solves never carry one.
	BDD []byte `json:"bdd,omitempty"`
	// Scheduling echoes the batch planner's decision when the request
	// carried hints; nil otherwise.
	Scheduling *SchedulingEcho `json:"scheduling,omitempty"`

	// Access-log bookkeeping, filled by solveOne and never serialized:
	// time spent waiting for a worker slot, solver run time, and the
	// cache outcome ("hit", "miss", "bypass", or empty when the request
	// failed before the lookup).
	queueWaitNS int64
	solveNS     int64
	cacheState  string
}

// BatchRequest is the body of POST /v1/solve/batch.
type BatchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchResponse carries one SolveResponse per request, index-aligned.
type BatchResponse struct {
	Responses []SolveResponse `json:"responses"`
}

// SolversResponse is the body of GET /v1/solvers.
type SolversResponse struct {
	Solvers []string `json:"solvers"`
	Rules   []string `json:"rules"`
	// MaxVars is the largest variable count the server accepts.
	MaxVars int `json:"max_vars"`
	// MaxDeadlineMS is the server's per-request deadline cap.
	MaxDeadlineMS int64 `json:"max_deadline_ms,omitempty"`
	// Workers and QueueDepth describe the admission configuration.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Features lists optional wire-protocol capabilities this server
	// understands (see the Feature* constants). Clients gate optional
	// request fields on the advertised set, so old servers — whose
	// strict decoder rejects unknown fields — never see them.
	Features []string `json:"features,omitempty"`
}

// FeatureBatchHints advertises that SolveRequest.Hints is understood and
// the batch planner may co-schedule opted-in items.
const FeatureBatchHints = "batch-hints"

// FeatureArtifact advertises that /v1/solve understands artifact
// content negotiation: ?include=bdd embeds the encoded OBDD in the JSON
// envelope's "bdd" field, and Accept: application/x-obdd returns the
// raw artifact bytes.
const FeatureArtifact = "obdd-artifact"

// ArtifactMediaType is the content type of a raw artifact response.
const ArtifactMediaType = artifact.MediaType

// errorToWire maps an engine or admission error onto its wire envelope.
func errorToWire(err error) *WireError {
	if err == nil {
		return nil
	}
	code := CodeInternal
	switch {
	case errors.Is(err, core.ErrInvalidInput):
		code = CodeInvalidInput
	case errors.Is(err, core.ErrBudgetExceeded):
		code = CodeBudgetExceeded
	case errors.Is(err, core.ErrCanceled), isCtxErr(err):
		code = CodeCanceled
	case errors.Is(err, ErrSaturated):
		code = CodeSaturated
	case errors.Is(err, ErrDraining):
		code = CodeDraining
	}
	return &WireError{Code: code, Message: err.Error()}
}

// wireToError maps a wire envelope back onto the sentinel contract, so
// client-side errors.Is works exactly as for in-process calls.
func wireToError(we *WireError) error {
	if we == nil {
		return nil
	}
	msg := we.Message
	if msg == "" {
		msg = we.Code
	}
	switch we.Code {
	case CodeCanceled:
		return fmt.Errorf("%w: %s", core.ErrCanceled, msg)
	case CodeBudgetExceeded:
		return fmt.Errorf("%w: %s", core.ErrBudgetExceeded, msg)
	case CodeInvalidInput:
		return fmt.Errorf("%w: %s", core.ErrInvalidInput, msg)
	case CodeSaturated:
		return fmt.Errorf("%w: %s", ErrSaturated, msg)
	case CodeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	default:
		return errors.New(msg)
	}
}

// isCtxErr reports a bare context cancellation (a request canceled
// before the solver wrapped it, e.g. while coalesced on the cache).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// parseRequest validates a SolveRequest against the server's limits and
// resolves it to engine inputs. All failures wrap core.ErrInvalidInput.
func (s *Server) parseRequest(req *SolveRequest) (*truthtable.Table, core.Rule, string, *core.SolveOptions, time.Duration, error) {
	tt, err := truthtable.ParseHex(req.Table)
	if err != nil {
		return nil, 0, "", nil, 0, fmt.Errorf("%w: table: %v", core.ErrInvalidInput, err)
	}
	if tt.NumVars() > s.cfg.MaxVars {
		return nil, 0, "", nil, 0, fmt.Errorf("%w: %d variables exceeds the server's limit of %d",
			core.ErrInvalidInput, tt.NumVars(), s.cfg.MaxVars)
	}
	rule := core.OBDD
	if req.Rule != "" {
		// core.ParseRule's *UnknownRuleError already errors.Is-matches
		// core.ErrInvalidInput, so the transport classifies it as a 400.
		var err error
		if rule, err = core.ParseRule(req.Rule); err != nil {
			return nil, 0, "", nil, 0, err
		}
	}
	name := req.Solver
	if name == "" {
		name = "portfolio"
	}
	if _, ok := core.LookupSolver(name); !ok {
		return nil, 0, "", nil, 0, fmt.Errorf("%w: unknown solver %q (have %v)",
			core.ErrInvalidInput, name, core.SolverNames())
	}
	if req.DeadlineMS < 0 || req.Workers < 0 {
		return nil, 0, "", nil, 0, fmt.Errorf("%w: negative deadline or worker count", core.ErrInvalidInput)
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (deadline == 0 || deadline > s.cfg.MaxDeadline) {
		deadline = s.cfg.MaxDeadline
	}
	budget := core.Budget{MaxCells: req.MaxCells, MaxNodes: req.MaxNodes}
	if limit := s.cfg.MaxBudget.MaxCells; limit > 0 && (budget.MaxCells == 0 || budget.MaxCells > limit) {
		budget.MaxCells = limit
	}
	if limit := s.cfg.MaxBudget.MaxNodes; limit > 0 && (budget.MaxNodes == 0 || budget.MaxNodes > limit) {
		budget.MaxNodes = limit
	}
	opts := &core.SolveOptions{Rule: rule, Budget: budget, Workers: req.Workers}
	return tt, rule, name, opts, deadline, nil
}

// resultBytes estimates the in-memory footprint of a cached result for
// the cache's byte bound: the struct plus its ordering, profile and
// terminal-value slices.
func resultBytes(res *core.Result) int64 {
	if res == nil {
		return 0
	}
	const structOverhead = 128
	return structOverhead + int64(len(res.Ordering))*8 + int64(len(res.Profile))*8 + int64(len(res.TerminalValues))*8
}
