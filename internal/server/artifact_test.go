package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// postRaw sends a solve request with an arbitrary path suffix and
// Accept header and returns the undecoded response. The caller owns the
// body.
func postRaw(t *testing.T, url, suffix, accept string, req *SolveRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/solve"+suffix, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if accept != "" {
		hreq.Header.Set("Accept", accept)
	}
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return hr
}

// TestArtifactNegotiationMatrix pins the three request shapes: no
// opt-in yields a plain envelope, ?include=bdd embeds base64 bytes in
// the envelope, and Accept: application/x-obdd returns the raw binary —
// winning over the query parameter when both are present. All three
// artifact-bearing variants must produce the same canonical bytes.
func TestArtifactNegotiationMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := truthtable.Random(7, rand.New(rand.NewSource(77)))
	req := &SolveRequest{Table: tt.Hex(), Solver: "fs"}

	// Absent: no artifact in the envelope.
	plain, hr := postSolve(t, ts.URL, req)
	if hr.StatusCode != http.StatusOK || plain.Error != nil {
		t.Fatalf("plain solve: HTTP %d, %+v", hr.StatusCode, plain.Error)
	}
	if len(plain.BDD) != 0 {
		t.Fatalf("plain solve carried %d artifact bytes without opting in", len(plain.BDD))
	}

	// Query opt-in: base64 inside the JSON envelope.
	hr = postRaw(t, ts.URL, "?include=bdd", "", req)
	defer hr.Body.Close()
	var jresp SolveResponse
	if err := json.NewDecoder(hr.Body).Decode(&jresp); err != nil {
		t.Fatalf("decoding ?include=bdd envelope (HTTP %d): %v", hr.StatusCode, err)
	}
	if jresp.Error != nil || len(jresp.BDD) == 0 {
		t.Fatalf("?include=bdd: %+v, want artifact bytes", jresp)
	}
	a, err := artifact.Decode(jresp.BDD)
	if err != nil {
		t.Fatalf("decoding envelope artifact: %v", err)
	}
	if err := artifact.Verify(a, tt); err != nil {
		t.Fatalf("envelope artifact: %v", err)
	}
	if a.NodeCount() != jresp.Result.MinCost {
		t.Fatalf("artifact has %d nodes, result claims %d", a.NodeCount(), jresp.Result.MinCost)
	}

	// Accept header: raw binary body with explicit framing, and the
	// header wins even when ?include=bdd is also present.
	for _, suffix := range []string{"", "?include=bdd"} {
		hr := postRaw(t, ts.URL, suffix, ArtifactMediaType, req)
		raw, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("raw solve%s: HTTP %d: %s", suffix, hr.StatusCode, raw)
		}
		if ct := hr.Header.Get("Content-Type"); ct != ArtifactMediaType {
			t.Fatalf("raw solve%s: Content-Type %q, want %q", suffix, ct, ArtifactMediaType)
		}
		if cl := hr.Header.Get("Content-Length"); cl != strconv.Itoa(len(raw)) {
			t.Fatalf("raw solve%s: Content-Length %q for a %d-byte body", suffix, cl, len(raw))
		}
		if !bytes.Equal(raw, jresp.BDD) {
			t.Fatalf("raw solve%s: body differs from the envelope artifact", suffix)
		}
	}
}

// TestArtifactCacheHitByteIdentical pins the content-addressed store
// contract: a repeated artifact request is answered entirely from cache
// — zero additional solver runs — with byte-identical artifact bytes.
func TestArtifactCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	tt := truthtable.Random(8, rand.New(rand.NewSource(88)))
	req := &SolveRequest{Table: tt.Hex(), Solver: "fs"}

	get := func() *SolveResponse {
		hr := postRaw(t, ts.URL, "?include=bdd", "", req)
		defer hr.Body.Close()
		var resp SolveResponse
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatalf("decode (HTTP %d): %v", hr.StatusCode, err)
		}
		if resp.Error != nil || len(resp.BDD) == 0 {
			t.Fatalf("solve = %+v, want artifact bytes", resp)
		}
		return &resp
	}

	cold := get()
	if got := s.SolveCount(); got != 1 {
		t.Fatalf("solver ran %d times after cold artifact solve, want 1", got)
	}
	warm := get()
	if !warm.Cached {
		t.Error("second identical artifact request not served from cache")
	}
	if got := s.SolveCount(); got != 1 {
		t.Errorf("solver ran %d times after warm artifact solve, want 1", got)
	}
	if !bytes.Equal(cold.BDD, warm.BDD) {
		t.Error("cached artifact bytes differ from the cold solve's")
	}
	// Both classes are stored: the exact result and the encoded artifact.
	if st := s.CacheStats(); st.Entries != 2 {
		t.Errorf("cache entries = %d, want 2 (exact + artifact)", st.Entries)
	}
}

// TestArtifactBytesCountAgainstBudget: encoded artifacts are charged to
// the same per-shard byte budget as exact results — filling the cache
// with artifact-bearing solves must trigger evictions and never exceed
// the configured bound.
func TestArtifactBytesCountAgainstBudget(t *testing.T) {
	const budget = 2048
	s, ts := newTestServer(t, Config{CacheBytes: budget})
	rng := rand.New(rand.NewSource(333))
	for i := 0; i < 100; i++ {
		tt := truthtable.Random(7, rng)
		hr := postRaw(t, ts.URL, "?include=bdd", "", &SolveRequest{Table: tt.Hex(), Solver: "fs"})
		var resp SolveResponse
		err := json.NewDecoder(hr.Body).Decode(&resp)
		hr.Body.Close()
		if err != nil || resp.Error != nil || len(resp.BDD) == 0 {
			t.Fatalf("solve %d: err=%v resp=%+v", i, err, resp.Error)
		}
	}
	st := s.CacheStats()
	if st.Bytes > budget {
		t.Errorf("cache holds %d bytes, budget is %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions after 100 artifact-bearing solves into a %d-byte cache (stats %+v)", budget, st)
	}
}

// TestArtifactZDDRejected: artifacts encode reduced OBDDs; asking for
// one under the ZDD rule is an input error, in both negotiation shapes.
func TestArtifactZDDRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := truthtable.Random(6, rand.New(rand.NewSource(55)))
	req := &SolveRequest{Table: tt.Hex(), Rule: "zdd"}
	for _, tc := range []struct{ suffix, accept string }{
		{"?include=bdd", ""},
		{"", ArtifactMediaType},
	} {
		hr := postRaw(t, ts.URL, tc.suffix, tc.accept, req)
		var resp SolveResponse
		err := json.NewDecoder(hr.Body).Decode(&resp)
		hr.Body.Close()
		if err != nil {
			t.Fatalf("%s accept=%q: decode (HTTP %d): %v", tc.suffix, tc.accept, hr.StatusCode, err)
		}
		if hr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s accept=%q: HTTP %d, want 400", tc.suffix, tc.accept, hr.StatusCode)
		}
		if resp.Error == nil || resp.Error.Code != CodeInvalidInput {
			t.Errorf("%s accept=%q: error = %+v, want invalid_input", tc.suffix, tc.accept, resp.Error)
		}
	}
}

// TestBatchIgnoresArtifactMode: batch responses never carry artifacts,
// regardless of header or query opt-in — the batch envelope has no
// binary framing, so the negotiation is defined out of scope there.
func TestBatchIgnoresArtifactMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := truthtable.Random(6, rand.New(rand.NewSource(9)))
	body, _ := json.Marshal(&BatchRequest{Requests: []SolveRequest{{Table: a.Hex(), Solver: "fs"}}})
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve/batch?include=bdd", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", ArtifactMediaType)
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); ct == ArtifactMediaType {
		t.Fatalf("batch answered with Content-Type %q", ct)
	}
	var bresp BatchResponse
	if err := json.NewDecoder(hr.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Responses) != 1 {
		t.Fatalf("got %d responses, want 1", len(bresp.Responses))
	}
	if r := bresp.Responses[0]; r.Error != nil || len(r.BDD) != 0 {
		t.Fatalf("batch item = %+v, want success with no artifact bytes", r)
	}
}

// TestClientSolveArtifact: the verified client path returns a decoded
// artifact that matches the result, and refuses bad inputs before
// touching the wire.
func TestClientSolveArtifact(t *testing.T) {
	_, c := newTestClient(t, Config{})
	ctx := context.Background()
	tt := truthtable.Random(7, rand.New(rand.NewSource(21)))

	res, a, err := c.SolveArtifact(ctx, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || a.NodeCount() != res.MinCost {
		t.Fatalf("artifact %v for result %+v", a, res)
	}
	if err := artifact.Verify(a, tt); err != nil {
		t.Fatal(err)
	}
	if !a.Ordering().Equal(res.Ordering) {
		t.Fatalf("artifact ordering %v, result ordering %v", a.Ordering(), res.Ordering)
	}

	if _, _, err := c.SolveArtifact(ctx, nil, nil); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("nil table: err = %v, want ErrInvalidInput", err)
	}
	if _, _, err := c.SolveArtifact(ctx, tt, &Params{Rule: core.ZDD}); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("zdd rule: err = %v, want ErrInvalidInput", err)
	}

	// An early-stopped solve carries the incumbent out with a nil
	// artifact — unproven orderings never get a diagram.
	registerSlowSolver()
	_, a2, err := c.SolveArtifact(ctx, truthtable.Random(8, rand.New(rand.NewSource(22))),
		&Params{Solver: "slowtest", Deadline: 30 * time.Millisecond, NoCache: true})
	if !errors.Is(err, core.ErrCanceled) {
		t.Errorf("deadline solve: err = %v, want ErrCanceled", err)
	}
	if a2 != nil {
		t.Error("early-stopped solve returned an artifact for an unproven ordering")
	}

	// A server that does not advertise the feature is refused up front.
	c.featMu.Lock()
	delete(c.feats, FeatureArtifact)
	c.featMu.Unlock()
	if _, _, err := c.SolveArtifact(ctx, tt, nil); err == nil || !strings.Contains(err.Error(), FeatureArtifact) {
		t.Errorf("featureless server: err = %v, want a feature refusal", err)
	}
	if _, err := c.SolveArtifactRaw(ctx, tt, nil); err == nil || !strings.Contains(err.Error(), FeatureArtifact) {
		t.Errorf("featureless raw: err = %v, want a feature refusal", err)
	}
}

// TestClientVerifyArtifact drives the client-side trust boundary
// directly: served bytes are returned only when they provably match the
// result they came with.
func TestClientVerifyArtifact(t *testing.T) {
	_, c := newTestClient(t, Config{})
	tt := truthtable.Random(6, rand.New(rand.NewSource(31)))
	res, err := c.Solve(context.Background(), tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := artifact.Build(tt, res.Ordering)
	if err != nil {
		t.Fatal(err)
	}
	enc := a.Encode()

	if _, err := c.verifyArtifact(enc, tt, res); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	if _, err := c.verifyArtifact(nil, tt, res); err == nil {
		t.Error("empty bytes accepted")
	}
	if _, err := c.verifyArtifact(enc[:len(enc)-1], tt, res); err == nil {
		t.Error("truncated bytes accepted")
	}
	other := truthtable.Random(7, rand.New(rand.NewSource(32)))
	if _, err := c.verifyArtifact(enc, other, res); err == nil {
		t.Error("variable-count mismatch accepted")
	}
	if _, err := c.verifyArtifact(enc, tt, nil); err == nil {
		t.Error("nil result accepted")
	}
	rev := *res
	rev.Ordering = truthtable.ReverseOrdering(tt.NumVars())
	if rev.Ordering.Equal(res.Ordering) {
		t.Skip("optimal ordering happens to be the reverse ordering")
	}
	if _, err := c.verifyArtifact(enc, tt, &rev); err == nil {
		t.Error("ordering mismatch accepted")
	}
	big := *res
	big.MinCost = res.MinCost + 1
	if _, err := c.verifyArtifact(enc, tt, &big); err == nil {
		t.Error("node-count mismatch accepted")
	}
}

// TestClientSolveArtifactRaw: raw bytes arrive undecoded but exact, and
// solve failures come back mapped onto sentinels via the JSON envelope.
func TestClientSolveArtifactRaw(t *testing.T) {
	_, c := newTestClient(t, Config{})
	ctx := context.Background()
	tt := truthtable.Random(7, rand.New(rand.NewSource(41)))

	raw, err := c.SolveArtifactRaw(ctx, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Solve(ctx, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := artifact.Build(tt, res.Ordering)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, a.Encode()) {
		t.Error("raw bytes differ from a local build under the solved ordering")
	}

	if _, err := c.SolveArtifactRaw(ctx, nil, nil); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("nil table: err = %v, want ErrInvalidInput", err)
	}
	if _, err := c.SolveArtifactRaw(ctx, tt, &Params{Rule: core.ZDD}); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("zdd rule: err = %v, want ErrInvalidInput", err)
	}
	// A server-side rejection rides the JSON envelope back into the
	// sentinel mapping.
	if _, err := c.SolveArtifactRaw(ctx, tt, &Params{Solver: "no-such-solver"}); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("unknown solver: err = %v, want ErrInvalidInput", err)
	}
}
