package server

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// newTestClient stands up a server and a dialed client against it.
func newTestClient(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, ts := newTestServer(t, cfg)
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return s, c
}

func TestDialValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial(ctx, "ftp://example.com"); err == nil {
		t.Error("Dial accepted a non-http URL")
	}
	if _, err := Dial(ctx, "http://127.0.0.1:1"); err == nil {
		t.Error("Dial succeeded against a dead port")
	}
	// A live HTTP server that is not an obddd service must also fail.
	other := httptest.NewServer(http.NotFoundHandler())
	defer other.Close()
	if _, err := Dial(ctx, other.URL); err == nil {
		t.Error("Dial accepted a non-obddd HTTP server")
	}
}

// TestClientSolveRoundTrip: a remote solve returns the same result shape
// and optimum as the in-process engine.
func TestClientSolveRoundTrip(t *testing.T) {
	_, c := newTestClient(t, Config{})
	tt := mustExprTable(t, 6)
	res, err := c.Solve(context.Background(), tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCost != 6 || res.N != 6 || len(res.Ordering) != 6 {
		t.Fatalf("result = %+v", res)
	}
	// ZDD params route through.
	zres, err := c.Solve(context.Background(), tt, &Params{Rule: core.ZDD, Solver: "fs"})
	if err != nil {
		t.Fatal(err)
	}
	if zres.Rule != core.ZDD {
		t.Errorf("rule = %v, want ZDD", zres.Rule)
	}
}

// TestClientErrorMapping is the acceptance check: each service outcome
// round-trips to the engine's sentinel through errors.Is, so remote and
// local callers share one error-handling path.
func TestClientErrorMapping(t *testing.T) {
	registerSlowSolver()
	_, c := newTestClient(t, Config{MaxBudget: core.Budget{MaxCells: 2048}, MaxDeadline: -1})
	ctx := context.Background()

	t.Run("invalid input", func(t *testing.T) {
		// 40 variables exceed every limit; the server rejects before solving.
		_, err := c.Solve(ctx, truthtable.New(2), &Params{Solver: "no-such-solver"})
		if !errors.Is(err, core.ErrInvalidInput) {
			t.Errorf("err = %v, want errors.Is ErrInvalidInput", err)
		}
	})

	t.Run("budget exceeded", func(t *testing.T) {
		tt := truthtable.Random(12, rand.New(rand.NewSource(5)))
		res, err := c.Solve(ctx, tt, &Params{Solver: "fs", NoCache: true})
		if !errors.Is(err, core.ErrBudgetExceeded) {
			t.Errorf("err = %v, want errors.Is ErrBudgetExceeded", err)
		}
		_ = res // incumbent may or may not exist under a cell budget
	})

	t.Run("canceled", func(t *testing.T) {
		tt := truthtable.Random(8, rand.New(rand.NewSource(6)))
		_, err := c.Solve(ctx, tt, &Params{Solver: "slowtest", Deadline: 30 * time.Millisecond, NoCache: true})
		if !errors.Is(err, core.ErrCanceled) {
			t.Errorf("err = %v, want errors.Is ErrCanceled", err)
		}
	})

	t.Run("nil table", func(t *testing.T) {
		if _, err := c.Solve(ctx, nil, nil); !errors.Is(err, core.ErrInvalidInput) {
			t.Errorf("err = %v, want ErrInvalidInput", err)
		}
	})
}

// TestClientSaturation: a full queue maps onto ErrSaturated client-side.
func TestClientSaturation(t *testing.T) {
	registerSlowSolver()
	_, c := newTestClient(t, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))

	// Six concurrent slow solves against a 2-slot building (1 worker +
	// 1 queue place): the overflow must surface as ErrSaturated and
	// nothing else may fail.
	const n = 6
	tables := make([]*truthtable.Table, n)
	for i := range tables {
		tables[i] = truthtable.Random(6, rng)
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := c.Solve(ctx, tables[i], &Params{Solver: "slowtest", NoCache: true})
			errs <- err
		}(i)
	}
	var ok, saturated int
	for i := 0; i < n; i++ {
		switch err := <-errs; {
		case err == nil:
			ok++
		case errors.Is(err, ErrSaturated):
			saturated++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if saturated == 0 {
		t.Error("no solve surfaced ErrSaturated against a full queue")
	}
	if ok == 0 {
		t.Error("no solve succeeded at all")
	}
}

// TestClientDraining: a draining server maps onto ErrDraining.
func TestClientDraining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	_, err = c.Solve(context.Background(), truthtable.New(2), nil)
	if !errors.Is(err, ErrDraining) {
		t.Errorf("err = %v, want errors.Is ErrDraining", err)
	}
}

// TestClientSolveBatch: index alignment, per-item errors, cache reuse.
func TestClientSolveBatch(t *testing.T) {
	s, c := newTestClient(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	a := truthtable.Random(7, rng)
	b := truthtable.Random(7, rng)

	if _, err := c.SolveBatch(ctx, nil, nil); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("empty batch err = %v, want ErrInvalidInput", err)
	}
	if _, err := c.SolveBatch(ctx, []*truthtable.Table{a, nil}, nil); !errors.Is(err, core.ErrInvalidInput) {
		t.Errorf("nil element err = %v, want ErrInvalidInput", err)
	}

	results, err := c.SolveBatch(ctx, []*truthtable.Table{a, b, a}, &Params{Solver: "fs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("item %d: %v", i, r.Err)
		}
		if r.Result == nil || r.Result.N != 7 {
			t.Errorf("item %d result = %+v", i, r.Result)
		}
	}
	if results[0].Result.MinCost != results[2].Result.MinCost {
		t.Error("identical tables disagree on MinCost across the batch")
	}
	// a appears twice but must solve once (cache inside the batch).
	if got := s.SolveCount(); got != 2 {
		t.Errorf("solver ran %d times for {a, b, a}, want 2", got)
	}
}

// TestClientReport: SolveReport surfaces the server-side run report.
func TestClientReport(t *testing.T) {
	_, c := newTestClient(t, Config{})
	tt := truthtable.Random(6, rand.New(rand.NewSource(13)))
	res, rep, err := c.SolveReport(context.Background(), tt, &Params{Solver: "fs", Report: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || rep == nil {
		t.Fatalf("res=%v rep=%v", res, rep)
	}
	if rep.Tool != "obddd" || rep.Algorithm != "fs" {
		t.Errorf("report header = %+v", rep)
	}
}

// TestClientSolvers exposes the server limits through the client.
func TestClientSolvers(t *testing.T) {
	_, c := newTestClient(t, Config{Workers: 2, QueueDepth: 3, MaxVars: 12})
	info, err := c.Solvers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxVars != 12 || info.Workers != 2 || info.QueueDepth != 3 {
		t.Errorf("limits = %+v", info)
	}
	if !strings.Contains(strings.Join(info.Solvers, ","), "fs") {
		t.Errorf("solvers = %v, want fs present", info.Solvers)
	}
}

// TestClientContextCancel: the caller's own context aborts the HTTP
// request and surfaces as a context error, not a service error.
func TestClientContextCancel(t *testing.T) {
	registerSlowSolver()
	_, c := newTestClient(t, Config{MaxDeadline: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	tt := truthtable.Random(6, rand.New(rand.NewSource(21)))
	_, err := c.Solve(ctx, tt, &Params{Solver: "slowtest", NoCache: true})
	if err == nil {
		t.Fatal("expected an error from a canceled client context")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBatchCoschedule drives the batch co-scheduling hint end to end:
// overlapping opted-in items solve as one shared forest (one solver
// invocation for the pair), the planner's decision is echoed per item,
// and the co-scheduled costs are never mistaken for canonical optima.
func TestBatchCoschedule(t *testing.T) {
	s, c := newTestClient(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(91))

	// a and b agree on the top half of their cells — same digest prefix,
	// high overlap — while d has a different variable count and can
	// never join their group.
	a := truthtable.Random(7, rng)
	b := a.Clone()
	for _, idx := range []uint64{3, 17, 41, 60} {
		b.Set(idx, !b.Bit(idx))
	}
	d := truthtable.Random(6, rng)

	results, err := c.SolveBatch(ctx, []*truthtable.Table{a, b, d}, &Params{Coschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r := results[i]
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Scheduling == nil || !r.Scheduling.Coscheduled || r.Scheduling.GroupSize != 2 {
			t.Fatalf("item %d scheduling = %+v, want coscheduled group of 2", i, r.Scheduling)
		}
	}
	if results[0].Scheduling.Group != results[1].Scheduling.Group {
		t.Errorf("group labels differ: %q vs %q", results[0].Scheduling.Group, results[1].Scheduling.Group)
	}
	if results[2].Scheduling == nil || results[2].Scheduling.Coscheduled {
		t.Errorf("item 2 scheduling = %+v, want declined echo", results[2].Scheduling)
	}
	// One shared run for {a, b} plus one solo run for d.
	if got := s.SolveCount(); got != 2 {
		t.Errorf("solver ran %d times, want 2", got)
	}
	// Group members share the jointly optimal ordering, and each item's
	// cost under it can only be at or above the item's own optimum.
	for i := range results[0].Result.Ordering {
		if results[0].Result.Ordering[i] != results[1].Result.Ordering[i] {
			t.Fatalf("group orderings differ: %v vs %v", results[0].Result.Ordering, results[1].Result.Ordering)
		}
	}
	opt := core.OptimalOrdering(a, nil)
	if results[0].Result.MinCost < opt.MinCost {
		t.Errorf("co-scheduled cost %d below the true optimum %d", results[0].Result.MinCost, opt.MinCost)
	}
	// Co-scheduled results must not have been cached as canonical: a
	// direct solve of a still runs the solver and returns the optimum.
	res, err := c.Solve(ctx, a, &Params{Solver: "fs"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SolveCount(); got != 3 {
		t.Errorf("direct solve after co-scheduling hit a cache (solves = %d, want 3)", got)
	}
	if res.MinCost != opt.MinCost {
		t.Errorf("direct solve cost %d != optimum %d", res.MinCost, opt.MinCost)
	}
}

// TestBatchHintsNegotiation pins the compatibility contract: against a
// server that does not advertise the batch-hints feature, the client
// omits the hints field entirely — old servers reject unknown fields,
// so the hint must never reach one.
func TestBatchHintsNegotiation(t *testing.T) {
	var batchBody string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/solvers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &SolversResponse{Solvers: []string{"fs"}, Rules: []string{"obdd"}, MaxVars: 30})
	})
	mux.HandleFunc("POST /v1/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		batchBody = string(data)
		writeJSON(w, http.StatusOK, &BatchResponse{Responses: make([]SolveResponse, 1)})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tt := truthtable.Random(5, rand.New(rand.NewSource(7)))
	if _, err := c.SolveBatch(context.Background(), []*truthtable.Table{tt}, &Params{Coschedule: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(batchBody, "hints") {
		t.Errorf("hints sent to a server that never advertised them: %s", batchBody)
	}
	if c.hasFeature(FeatureBatchHints) {
		t.Error("client believes an old server supports batch-hints")
	}
}
