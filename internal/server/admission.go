package server

import (
	"context"
	"sync"

	"obddopt/internal/obs"
)

// admission is the server's load-shedding layer. It bounds the work a
// process accepts with two counting semaphores:
//
//   - running (capacity Workers) bounds concurrent solver executions —
//     the "worker pool", sized to GOMAXPROCS by default, except that the
//     pool is a semaphore acquired by the request's own goroutine rather
//     than a set of long-lived workers, so there is no job handoff and
//     nothing to leak on shutdown;
//   - admitted (capacity Workers+QueueDepth) bounds the total requests
//     in the building: at most QueueDepth requests wait for a running
//     slot. When admitted is full the request is rejected immediately
//     with ErrSaturated (HTTP 429 + Retry-After) instead of queueing
//     unboundedly — the engine's O*(3^n) worst case makes an unbounded
//     queue a memory-and-latency time bomb.
//
// Draining flips the gate shut: new requests fail with ErrDraining and
// the drain caller can wait for the in-flight count to reach zero.
type admission struct {
	admitted chan struct{}
	running  chan struct{}

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		admitted: make(chan struct{}, workers+queueDepth),
		running:  make(chan struct{}, workers),
	}
}

// admit claims a building slot without blocking. The returned release
// function must be called exactly once when the request finishes. admit
// accounts admission metrics for both outcomes.
func (a *admission) admit() (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		obs.Metrics.RequestsRejected.Inc()
		return nil, ErrDraining
	}
	// Claim under the lock so a concurrent drain() observes a stable
	// inflight count once it has flipped the gate.
	select {
	case a.admitted <- struct{}{}:
		a.inflight.Add(1)
		a.mu.Unlock()
	default:
		a.mu.Unlock()
		obs.Metrics.RequestsRejected.Inc()
		return nil, ErrSaturated
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.admitted
			a.inflight.Done()
		})
	}, nil
}

// acquireWorker blocks until a running slot frees up or ctx dies; on
// success the returned release function returns the slot. The wait is
// accounted in the queue-depth gauge and the hold in the in-flight-
// worker gauge, so /metrics and /debug/vars show live admission
// occupancy, not just rejection totals.
func (a *admission) acquireWorker(ctx context.Context) (release func(), err error) {
	obs.Metrics.QueueDepth.Inc()
	select {
	case a.running <- struct{}{}:
		obs.Metrics.QueueDepth.Dec()
		obs.Metrics.InFlightWorkers.Inc()
		return func() {
			<-a.running
			obs.Metrics.InFlightWorkers.Dec()
		}, nil
	case <-ctx.Done():
		obs.Metrics.QueueDepth.Dec()
		return nil, ctx.Err()
	}
}

// startDrain closes the gate: subsequent admits fail with ErrDraining.
func (a *admission) startDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// wait blocks until every admitted request has released, or ctx dies.
func (a *admission) wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		a.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
