package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// Client is the typed Go client of the obddd service. Its Solve mirrors
// the in-process Solve contract: the wire schema round-trips back into
// *core.Result, and service error codes map onto the engine's sentinel
// errors, so errors.Is(err, core.ErrCanceled) (and friends) holds for
// remote calls exactly as for local ones — callers switch between
// in-process and remote solving without touching their error handling.
// A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	// feats is the server's advertised feature set, captured from the
	// latest Solvers call (Dial always makes one). Optional request
	// fields are sent only when the matching feature is present, so old
	// servers — which reject unknown fields — keep working unchanged.
	featMu sync.Mutex
	feats  map[string]bool
}

// hasFeature reports whether the server advertised the named wire
// feature.
func (c *Client) hasFeature(name string) bool {
	c.featMu.Lock()
	defer c.featMu.Unlock()
	return c.feats[name]
}

// Params configures one remote solve; the zero value requests the
// portfolio solver on OBDDs under the server's default limits.
type Params struct {
	// Solver names the strategy; empty selects the portfolio.
	Solver string
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule core.Rule
	// Deadline bounds the solve's wall-clock time (clamped by the
	// server's cap); 0 adopts the server default.
	Deadline time.Duration
	// Budget bounds the solve's resources (clamped by the server).
	Budget core.Budget
	// Workers is the goroutine count for parallel lanes.
	Workers int
	// NoCache bypasses the server's canonical result cache.
	NoCache bool
	// Coschedule marks SolveBatch items as co-scheduling candidates: the
	// server may solve overlapping items of the batch as one shared
	// forest, returning each item's cost under the group's jointly
	// optimal ordering (see SolveHints.Coschedule). Best-effort: the
	// hint is sent only when the server advertises the "batch-hints"
	// feature, and the server's decision comes back in
	// BatchResult.Scheduling. Ignored by Solve.
	Coschedule bool
	// Report requests the per-run obs.RunReport (retrievable via
	// SolveReport).
	Report bool
	// RequestID, when non-empty, is sent as the X-Request-ID header so
	// the server adopts the caller's trace ID instead of minting one;
	// it comes back in the response envelope, the RunReport, and the
	// server's access log. When empty, a span already on the call's
	// context (obs.ContextWithSpan) supplies its ID instead.
	RequestID string
}

// requestID resolves the trace ID to send: the explicit Params field
// first, then the context span's ID, else empty (server mints one).
func requestID(ctx context.Context, p *Params) string {
	if p != nil && p.RequestID != "" {
		return p.RequestID
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		return sp.ID()
	}
	return ""
}

// Dial validates baseURL ("http://host:port") and verifies the service
// is reachable by fetching GET /v1/solvers. Use DialWithClient to
// supply a custom http.Client (timeouts, transports).
func Dial(ctx context.Context, baseURL string) (*Client, error) {
	return DialWithClient(ctx, baseURL, nil)
}

// DialWithClient is Dial with a caller-supplied http.Client; nil uses a
// fresh default client.
func DialWithClient(ctx context.Context, baseURL string, hc *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("obddd client: bad base URL %q: %v", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("obddd client: base URL %q must be http(s)", baseURL)
	}
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: hc}
	if _, err := c.Solvers(ctx); err != nil {
		return nil, fmt.Errorf("obddd client: service unreachable at %s: %w", baseURL, err)
	}
	return c, nil
}

// Solvers fetches the service's registered solver names and limits.
func (c *Client) Solvers(ctx context.Context) (*SolversResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/solvers", nil)
	if err != nil {
		return nil, err
	}
	var out SolversResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	c.featMu.Lock()
	c.feats = make(map[string]bool, len(out.Features))
	for _, f := range out.Features {
		c.feats[f] = true
	}
	c.featMu.Unlock()
	return &out, nil
}

// Solve solves tt remotely. The outcome contract matches the local
// Solve API: a nil error guarantees the result is a proven optimum
// (possibly served from the server's canonical cache); ErrCanceled /
// ErrBudgetExceeded arrive with the best incumbent when the server
// found one; malformed input surfaces ErrInvalidInput; a saturated
// server surfaces ErrSaturated.
func (c *Client) Solve(ctx context.Context, tt *truthtable.Table, p *Params) (*core.Result, error) {
	res, _, err := c.SolveReport(ctx, tt, p)
	return res, err
}

// SolveReport is Solve returning the server-side run report as well
// (nil unless Params.Report was set and a solver actually ran — cached
// and coalesced answers carry no fresh report).
func (c *Client) SolveReport(ctx context.Context, tt *truthtable.Table, p *Params) (*core.Result, *obs.RunReport, error) {
	if tt == nil {
		return nil, nil, fmt.Errorf("%w: nil truth table", core.ErrInvalidInput)
	}
	wire, err := c.post(ctx, "/v1/solve", toWire(tt, p), requestID(ctx, p))
	if err != nil {
		return nil, nil, err
	}
	return wire.Result, wire.Report, wireToError(wire.Error)
}

// BatchResult is one outcome of SolveBatch, index-aligned with its
// input; Result and Err follow the Solve contract.
type BatchResult struct {
	Result *core.Result
	Err    error
	// Scheduling echoes the server's co-scheduling decision for this
	// item; nil when the request carried no hints (Params.Coschedule
	// unset, or the server predates the batch-hints feature).
	Scheduling *SchedulingEcho
}

// SolveBatch solves several tables in one request. The batch occupies
// one server admission slot and runs sequentially there; per-item
// outcomes (including per-item errors) come back index-aligned. The
// returned error covers transport and whole-batch failures only.
func (c *Client) SolveBatch(ctx context.Context, tts []*truthtable.Table, p *Params) ([]BatchResult, error) {
	if len(tts) == 0 {
		return nil, fmt.Errorf("%w: empty batch", core.ErrInvalidInput)
	}
	breq := BatchRequest{Requests: make([]SolveRequest, len(tts))}
	sendHints := p != nil && p.Coschedule && c.hasFeature(FeatureBatchHints)
	for i, tt := range tts {
		if tt == nil {
			return nil, fmt.Errorf("%w: nil truth table at index %d", core.ErrInvalidInput, i)
		}
		breq.Requests[i] = *toWire(tt, p)
		if sendHints {
			breq.Requests[i].Hints = &SolveHints{Coschedule: true}
		}
	}
	body, err := json.Marshal(&breq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/solve/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if id := requestID(ctx, p); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	var out BatchResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	if len(out.Responses) != len(tts) {
		return nil, fmt.Errorf("obddd client: batch returned %d responses for %d requests", len(out.Responses), len(tts))
	}
	results := make([]BatchResult, len(out.Responses))
	for i := range out.Responses {
		results[i] = BatchResult{
			Result:     out.Responses[i].Result,
			Err:        wireToError(out.Responses[i].Error),
			Scheduling: out.Responses[i].Scheduling,
		}
	}
	return results, nil
}

// SolveArtifact is Solve additionally returning the solved function's
// compact OBDD artifact (the diagram under the proven-optimal
// ordering). The artifact arrives base64-embedded in the JSON envelope
// (?include=bdd) and is decoded and re-verified locally before being
// handed to the caller: the variable count, recorded ordering and node
// count must match the result, and the diagram must evaluate back to
// tt. Artifacts exist for the OBDD rule only — a ZDD Params.Rule is
// ErrInvalidInput — and require a server advertising the
// "obdd-artifact" feature. On early-stopped solves the incumbent result
// and its error come back with a nil artifact.
func (c *Client) SolveArtifact(ctx context.Context, tt *truthtable.Table, p *Params) (*core.Result, *artifact.Artifact, error) {
	if tt == nil {
		return nil, nil, fmt.Errorf("%w: nil truth table", core.ErrInvalidInput)
	}
	if p != nil && p.Rule != core.OBDD {
		return nil, nil, fmt.Errorf("%w: artifacts are defined for the obdd rule only", core.ErrInvalidInput)
	}
	if !c.hasFeature(FeatureArtifact) {
		return nil, nil, fmt.Errorf("obddd client: server does not advertise the %q feature", FeatureArtifact)
	}
	wire, err := c.post(ctx, "/v1/solve?include=bdd", toWire(tt, p), requestID(ctx, p))
	if err != nil {
		return nil, nil, err
	}
	if werr := wireToError(wire.Error); werr != nil {
		return wire.Result, nil, werr
	}
	a, err := c.verifyArtifact(wire.BDD, tt, wire.Result)
	if err != nil {
		return wire.Result, nil, err
	}
	return wire.Result, a, nil
}

// verifyArtifact decodes served artifact bytes and holds them against
// the result they came with — the client-side trust boundary: a
// decoded diagram is returned only after it provably denotes tt under
// the result's ordering with the result's node count.
func (c *Client) verifyArtifact(data []byte, tt *truthtable.Table, res *core.Result) (*artifact.Artifact, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("obddd client: server sent no artifact with a proven-optimal result")
	}
	a, err := artifact.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("obddd client: served artifact: %w", err)
	}
	if a.NumVars() != tt.NumVars() {
		return nil, fmt.Errorf("obddd client: served artifact has %d variables, request had %d", a.NumVars(), tt.NumVars())
	}
	if res == nil || !a.Ordering().Equal(res.Ordering) {
		return nil, fmt.Errorf("obddd client: served artifact's ordering does not match the result's")
	}
	if a.NodeCount() != res.MinCost {
		return nil, fmt.Errorf("obddd client: served artifact has %d nodes, result claims MinCost %d", a.NodeCount(), res.MinCost)
	}
	if err := artifact.Verify(a, tt); err != nil {
		return nil, fmt.Errorf("obddd client: %w", err)
	}
	return a, nil
}

// SolveArtifactRaw solves tt and returns the artifact's raw encoded
// bytes, negotiated via Accept: application/x-obdd — the transfer path
// for callers that store or forward artifacts without inflating them.
// The bytes are NOT decoded or verified here (use artifact.Decode /
// artifact.Verify, or SolveArtifact for the verified path); transport
// truncation is still loud, surfacing as io.ErrUnexpectedEOF. Solve
// failures come back on the JSON envelope path with the usual sentinel
// mapping.
func (c *Client) SolveArtifactRaw(ctx context.Context, tt *truthtable.Table, p *Params) ([]byte, error) {
	if tt == nil {
		return nil, fmt.Errorf("%w: nil truth table", core.ErrInvalidInput)
	}
	if p != nil && p.Rule != core.OBDD {
		return nil, fmt.Errorf("%w: artifacts are defined for the obdd rule only", core.ErrInvalidInput)
	}
	if !c.hasFeature(FeatureArtifact) {
		return nil, fmt.Errorf("obddd client: server does not advertise the %q feature", FeatureArtifact)
	}
	body, err := json.Marshal(toWire(tt, p))
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", ArtifactMediaType)
	if id := requestID(ctx, p); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("obddd client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		// Keep the sentinel visible: a body cut short of its declared
		// Content-Length is io.ErrUnexpectedEOF, and errors.Is must see
		// it through the wrap.
		return nil, fmt.Errorf("obddd client: reading artifact body: %w", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, ArtifactMediaType) {
		// The server answered on the JSON envelope path: a solve error,
		// admission rejection, or input rejection.
		var out SolveResponse
		if err := json.Unmarshal(data, &out); err != nil {
			return nil, fmt.Errorf("obddd client: HTTP %d with undecodable body: %v", resp.StatusCode, err)
		}
		if werr := wireToError(out.Error); werr != nil {
			return nil, werr
		}
		return nil, fmt.Errorf("obddd client: server answered JSON without an error to a %s request", ArtifactMediaType)
	}
	return data, nil
}

// toWire renders (tt, p) as a wire request.
func toWire(tt *truthtable.Table, p *Params) *SolveRequest {
	if p == nil {
		p = &Params{}
	}
	return &SolveRequest{
		Table:      tt.Hex(),
		Rule:       strings.ToLower(p.Rule.String()),
		Solver:     p.Solver,
		DeadlineMS: p.Deadline.Milliseconds(),
		MaxCells:   p.Budget.MaxCells,
		MaxNodes:   p.Budget.MaxNodes,
		Workers:    p.Workers,
		NoCache:    p.NoCache,
		Report:     p.Report,
	}
}

// post sends one SolveRequest and decodes the SolveResponse envelope
// regardless of HTTP status (the service encodes solve and admission
// outcomes in the body; do surfaces transport-level failures).
func (c *Client) post(ctx context.Context, path string, sreq *SolveRequest, reqID string) (*SolveResponse, error) {
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	var out SolveResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do executes req and decodes the JSON body into out. Non-2xx statuses
// are not errors by themselves: the service carries its outcome in the
// body envelope. A body that fails to decode is a transport error.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("obddd client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return fmt.Errorf("obddd client: reading response: %w", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("obddd client: HTTP %d with undecodable body: %v", resp.StatusCode, err)
	}
	return nil
}
