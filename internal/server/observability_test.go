package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"obddopt/internal/obs"
)

// TestRequestIDRoundTrip sends a caller-chosen trace ID through the
// typed client and checks it lands everywhere the contract promises:
// the response envelope, the X-Request-ID response header, and the
// RunReport's request_id and span timeline.
func TestRequestIDRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := mustExprTable(t, 6)

	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	const id = "trace-roundtrip-42"
	res, rep, err := c.SolveReport(context.Background(), tt, &Params{Solver: "fs", RequestID: id, Report: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.MinCost != 6 {
		t.Fatalf("result = %+v", res)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.RequestID != id {
		t.Errorf("report request_id = %q, want %q", rep.RequestID, id)
	}
	if len(rep.Span) == 0 {
		t.Fatal("report carries no span events")
	}
	names := map[string]bool{}
	for _, ev := range rep.Span {
		names[ev.Name] = true
		if ev.AtNS < 0 {
			t.Errorf("span event %q has negative offset %d", ev.Name, ev.AtNS)
		}
	}
	for _, want := range []string{"admitted", "worker_acquired", "solver_start:fs", "solver_done:fs"} {
		if !names[want] {
			t.Errorf("span missing %q (have %v)", want, rep.Span)
		}
	}

	// The raw envelope and header echo the same ID.
	resp, hr := postSolveWithHeader(t, ts.URL, &SolveRequest{Table: tt.Hex(), NoCache: true}, id)
	if resp.RequestID != id {
		t.Errorf("envelope request_id = %q, want %q", resp.RequestID, id)
	}
	if got := hr.Header.Get("X-Request-ID"); got != id {
		t.Errorf("X-Request-ID header = %q, want %q", got, id)
	}
}

// postSolveWithHeader is postSolve with an X-Request-ID header.
func postSolveWithHeader(t *testing.T, url string, req *SolveRequest, id string) (*SolveResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id != "" {
		hreq.Header.Set("X-Request-ID", id)
	}
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", hr.StatusCode, err)
	}
	return &resp, hr
}

// TestRequestIDMintedAndSanitized checks that a missing or hostile
// X-Request-ID yields a server-minted ID, never an echo of garbage.
func TestRequestIDMintedAndSanitized(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := mustExprTable(t, 4)

	resp, _ := postSolveWithHeader(t, ts.URL, &SolveRequest{Table: tt.Hex()}, "")
	if resp.RequestID == "" {
		t.Error("no request ID minted for a header-less request")
	}

	// Hostile values over the wire (ones net/http will still transmit).
	for _, bad := range []string{"has space", strings.Repeat("x", 200)} {
		resp, _ := postSolveWithHeader(t, ts.URL, &SolveRequest{Table: tt.Hex()}, bad)
		if resp.RequestID == bad || resp.RequestID == "" {
			t.Errorf("hostile ID %q not replaced (got %q)", bad, resp.RequestID)
		}
	}
	// Values the client library itself refuses to send still go through
	// the sanitizer when injected by other fronts.
	for _, bad := range []string{"ctrl\x01byte", "nl\nbyte", "", "dél"} {
		if got := sanitizeRequestID(bad); got != "" {
			t.Errorf("sanitizeRequestID(%q) = %q, want \"\"", bad, got)
		}
	}
	if got := sanitizeRequestID("ok-id_42"); got != "ok-id_42" {
		t.Errorf("sanitizeRequestID rejected a clean ID: %q", got)
	}
}

// TestMetricsEndpoint checks that GET /metrics serves parseable
// Prometheus text including the solve-latency histogram after a solve.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := mustExprTable(t, 6)
	if resp, _ := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "fs", NoCache: true}); resp.Error != nil {
		t.Fatalf("solve failed: %+v", resp.Error)
	}

	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	var (
		sawLatencyBucket, sawLatencyCount, sawQueueGauge bool
	)
	sc := bufio.NewScanner(hr.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Every sample line must end in a decimal value.
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Fatalf("malformed line %q", line)
		}
		switch {
		case strings.HasPrefix(line, "obddopt_solve_latency_ns_bucket{solver=\"fs\""):
			sawLatencyBucket = true
		case strings.HasPrefix(line, "obddopt_solve_latency_ns_count{solver=\"fs\"}"):
			sawLatencyCount = true
		case strings.HasPrefix(line, "obddopt_queue_depth "):
			sawQueueGauge = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawLatencyBucket || !sawLatencyCount {
		t.Error("solve latency histogram series missing from /metrics")
	}
	if !sawQueueGauge {
		t.Error("queue_depth gauge missing from /metrics")
	}
}

// TestStatsIncludesHistograms checks /v1/stats carries the histogram
// snapshot map alongside counters.
func TestStatsIncludesHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := mustExprTable(t, 4)
	postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "fs", NoCache: true})

	hr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var stats struct {
		Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Histograms) == 0 {
		t.Fatal("stats carry no histograms")
	}
	if h, ok := stats.Histograms[`solve_latency_ns{solver="fs"}`]; !ok || h.Count == 0 {
		t.Errorf("solve_latency_ns{solver=\"fs\"} absent or empty: %+v", stats.Histograms)
	}
}

// TestAccessLog checks the one-line-per-request contract: a cold solve
// logs a miss with solve time, the warm repeat logs a hit, and every
// line is valid JSON with the request ID and route.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Config{AccessLog: &buf})
	tt := mustExprTable(t, 6)

	postSolveWithHeader(t, ts.URL, &SolveRequest{Table: tt.Hex()}, "log-test-1")
	postSolveWithHeader(t, ts.URL, &SolveRequest{Table: tt.Hex()}, "log-test-2")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d access-log lines, want 2:\n%s", len(lines), buf.String())
	}
	type rec struct {
		TS          string  `json:"ts"`
		RequestID   string  `json:"request_id"`
		Route       string  `json:"route"`
		Status      int     `json:"status"`
		QueueWaitMS float64 `json:"queue_wait_ms"`
		SolveMS     float64 `json:"solve_ms"`
		Cache       string  `json:"cache"`
	}
	var cold, warm rec
	if err := json.Unmarshal([]byte(lines[0]), &cold); err != nil {
		t.Fatalf("line 1 not JSON: %v (%q)", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &warm); err != nil {
		t.Fatalf("line 2 not JSON: %v (%q)", err, lines[1])
	}
	if cold.RequestID != "log-test-1" || warm.RequestID != "log-test-2" {
		t.Errorf("request IDs = %q, %q", cold.RequestID, warm.RequestID)
	}
	if cold.Route != "/v1/solve" || cold.Status != http.StatusOK {
		t.Errorf("cold line route/status = %q/%d", cold.Route, cold.Status)
	}
	if cold.Cache != "miss" {
		t.Errorf("cold cache state = %q, want miss", cold.Cache)
	}
	if warm.Cache != "hit" {
		t.Errorf("warm cache state = %q, want hit", warm.Cache)
	}
	if cold.SolveMS <= 0 {
		t.Errorf("cold solve_ms = %v, want > 0", cold.SolveMS)
	}
	if cold.TS == "" {
		t.Error("missing timestamp")
	}
}

// TestAccessLogDisabledByDefault checks no lines appear without the
// config knob.
func TestAccessLogDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := mustExprTable(t, 4)
	postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex()})
	// Nothing to assert directly (nil writer): reaching here without a
	// panic is the contract. Exercise the writer-less path once more via
	// a rejected request for coverage of logAccess's nil guard.
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("nil access log panicked: %v", r)
			}
		}()
		srv := New(context.Background(), Config{})
		srv.logAccess("/v1/solve", obs.NewSpan("x"), 200, &SolveResponse{})
	}()
}

// TestAdmissionGauges observes the queue-depth and in-flight-worker
// gauges live: during a slow solve holding the single worker slot, the
// in-flight gauge must read ≥1 and a queued second request must raise
// queue depth; after quiescence both return to their baselines.
func TestAdmissionGauges(t *testing.T) {
	registerSlowSolver()
	baseQueue := obs.Metrics.QueueDepth.Value()
	baseWorkers := obs.Metrics.InFlightWorkers.Value()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	tt := mustExprTable(t, 4)

	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "slowtest", NoCache: true})
		}()
	}
	sawBusy, sawQueued := false, false
	deadline := time.Now().Add(5 * time.Second)
	for (!sawBusy || !sawQueued) && time.Now().Before(deadline) {
		if obs.Metrics.InFlightWorkers.Value() > baseWorkers {
			sawBusy = true
		}
		if obs.Metrics.QueueDepth.Value() > baseQueue {
			sawQueued = true
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	<-done
	if !sawBusy {
		t.Error("in-flight worker gauge never rose during a slow solve")
	}
	if !sawQueued {
		t.Error("queue depth gauge never rose with a queued request")
	}
	if got := obs.Metrics.InFlightWorkers.Value(); got != baseWorkers {
		t.Errorf("in-flight workers = %d after quiescence, want %d", got, baseWorkers)
	}
	if got := obs.Metrics.QueueDepth.Value(); got != baseQueue {
		t.Errorf("queue depth = %d after quiescence, want %d", got, baseQueue)
	}
}

// TestBatchRequestID checks every item of a batch response carries the
// batch's trace ID.
func TestBatchRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := mustExprTable(t, 4)
	breq := BatchRequest{Requests: []SolveRequest{{Table: tt.Hex()}, {Table: tt.Hex()}}}
	body, _ := json.Marshal(&breq)
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve/batch", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-ID", "batch-7")
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	data, _ := io.ReadAll(hr.Body)
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 2 {
		t.Fatalf("responses = %d", len(out.Responses))
	}
	for i, r := range out.Responses {
		if r.RequestID != "batch-7" {
			t.Errorf("response %d request_id = %q, want batch-7", i, r.RequestID)
		}
	}
	if got := hr.Header.Get("X-Request-ID"); got != "batch-7" {
		t.Errorf("batch X-Request-ID header = %q", got)
	}
}
