// Package server is the obddd network solve service: an HTTP/JSON
// daemon exposing the cancellable Solve engine behind admission control
// and a canonical result cache.
//
// Endpoints:
//
//	POST /v1/solve        one solve; body SolveRequest, reply SolveResponse
//	POST /v1/solve/batch  several solves under one admission slot
//	GET  /v1/solvers      registered solvers, rules and server limits
//	GET  /v1/stats        admission, cache and process metrics snapshot
//	GET  /healthz         liveness ("ok", or "draining" while shutting down)
//	GET  /debug/vars      the process-wide expvar registry (internal/obs)
//	GET  /metrics         the same registry in Prometheus text format
//
// Admission control bounds concurrent solver runs (Workers) and waiting
// requests (QueueDepth); excess load is rejected with 429 + Retry-After
// rather than queued unboundedly. Identical concurrent requests
// coalesce onto one solver run through the single-flight result cache
// (internal/cache), and proven-optimal results are memoized so repeat
// queries — the dominant pattern of re-minimization loops — are served
// in microseconds without re-running the O*(3^n) dynamic program.
// Graceful drain (Server.Drain, wired to SIGTERM by cmd/obddd) stops
// admitting, cancels in-flight solver contexts, and waits for handlers
// to flush their (incumbent-carrying) responses.
package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obddopt/internal/artifact"
	"obddopt/internal/cache"
	"obddopt/internal/core"
	_ "obddopt/internal/heuristics" // installs the portfolio's default heuristic seeder
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// Config sizes the server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Workers bounds concurrent solver executions; 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// running ones; further requests get 429. 0 selects 4×Workers.
	QueueDepth int
	// DefaultDeadline applies to requests that set no deadline; 0
	// means MaxDeadline (requests never run unbounded when a cap is
	// configured).
	DefaultDeadline time.Duration
	// MaxDeadline caps every request's deadline; 0 selects 30s.
	// Negative disables the cap (trusted single-tenant deployments).
	MaxDeadline time.Duration
	// MaxBudget caps every request's resource budget component-wise;
	// zero components leave the caller's budget unchanged.
	MaxBudget core.Budget
	// MaxVars caps the accepted variable count; 0 selects
	// truthtable.MaxVars (30). Solves are exponential in this.
	MaxVars int
	// CacheBytes bounds the canonical result cache; 0 selects 64 MiB,
	// negative disables caching.
	CacheBytes int64
	// RetryAfter is the hint returned with 429 responses; 0 selects 1s.
	RetryAfter time.Duration
	// Trace, if non-nil, receives every request's solver events (it
	// must be safe for concurrent Emit; all internal/obs tracers are).
	Trace obs.Tracer
	// AccessLog, if non-nil, receives one JSON line per handled request
	// (request ID, route, status, queue wait, solve time, cache
	// outcome). Writes are serialized by the server; any io.Writer
	// works. nil (the default) disables access logging.
	AccessLog io.Writer
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxDeadline < 0 {
		c.MaxDeadline = 0
	}
	if c.MaxVars <= 0 || c.MaxVars > truthtable.MaxVars {
		c.MaxVars = truthtable.MaxVars
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the solve service. Create with New, expose via Handler,
// shut down via Drain.
type Server struct {
	cfg   Config
	adm   *admission
	cache *cache.Cache
	mux   *http.ServeMux

	// lifeCtx is canceled by Drain: every solver context derives from
	// it, so draining cancels in-flight runs cooperatively.
	lifeCtx  context.Context
	lifeStop context.CancelFunc

	// solves counts solver invocations (not requests): the observable
	// that proves cache hits and single-flight coalescing skip work.
	solves atomic.Uint64

	// accessMu serializes AccessLog writes so concurrent handlers never
	// interleave lines.
	accessMu sync.Mutex
}

// layerSink folds every traced run's KindLayerEnd events into the
// process-wide dp_layer histograms; one stateless instance serves all
// requests.
var layerSink = obs.NewHistogramSink()

// New returns a ready-to-serve Server. ctx is the server's lifetime
// anchor: canceling it is equivalent to Drain (cmd/obddd passes its
// signal context).
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		adm: newAdmission(cfg.Workers, cfg.QueueDepth),
	}
	if cfg.CacheBytes >= 0 {
		s.cache = cache.New(cfg.CacheBytes)
	}
	s.lifeCtx, s.lifeStop = context.WithCancel(ctx)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.Handle("GET /metrics", obs.PrometheusHandler())
	return s
}

// Handler returns the service's HTTP handler (mountable under any
// http.Server or test harness).
func (s *Server) Handler() http.Handler { return s.mux }

// SolveCount reports how many solver invocations the server has made —
// cache hits and coalesced requests do not increment it.
func (s *Server) SolveCount() uint64 { return s.solves.Load() }

// CacheStats snapshots the result cache (zero Stats when disabled).
func (s *Server) CacheStats() cache.Stats {
	if s.cache == nil {
		return cache.Stats{}
	}
	return s.cache.Stats()
}

// Drain gracefully shuts the service down: it stops admitting (new
// requests get 503), cancels every in-flight solver context — solves
// return promptly with ErrCanceled and their responses carry the best
// incumbent — and waits for the in-flight count to reach zero or ctx
// to expire. It is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.adm.startDrain()
	s.lifeStop()
	return s.adm.wait(ctx)
}

// requestSpan attaches a request-scoped span to r's context: the trace
// ID is the caller's X-Request-ID header when it is sane (printable
// ASCII, at most 128 bytes), a freshly minted ID otherwise. The ID is
// echoed in the X-Request-ID response header immediately, so even
// rejected requests are correlatable.
func requestSpan(w http.ResponseWriter, r *http.Request) (context.Context, *obs.Span) {
	sp := obs.NewSpan(sanitizeRequestID(r.Header.Get("X-Request-ID")))
	w.Header().Set("X-Request-ID", sp.ID())
	return obs.ContextWithSpan(r.Context(), sp), sp
}

// sanitizeRequestID accepts a caller-supplied trace ID only when it is
// non-empty printable ASCII of bounded length; anything else returns ""
// (mint a fresh one) — the ID lands in headers and log lines, so it
// must not smuggle control bytes.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c < 0x21 || c > 0x7e {
			return ""
		}
	}
	return id
}

// artifactMode is a /v1/solve request's negotiated artifact shape:
// none, base64 inside the JSON envelope, or the raw binary body.
type artifactMode int

const (
	artifactNone artifactMode = iota
	artifactJSON               // ?include=bdd → "bdd" field, base64
	artifactRaw                // Accept: application/x-obdd → binary body
)

// negotiateArtifact resolves the request's artifact mode. The Accept
// header wins over the query parameter: a caller asking for the binary
// media type gets binary even if a proxy appended ?include=bdd.
func negotiateArtifact(r *http.Request) artifactMode {
	if strings.Contains(r.Header.Get("Accept"), ArtifactMediaType) {
		return artifactRaw
	}
	if r.URL.Query().Get("include") == "bdd" {
		return artifactJSON
	}
	return artifactNone
}

// handleSolve serves POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeResponse(w, http.StatusBadRequest, &SolveResponse{Error: &WireError{Code: CodeInvalidInput, Message: err.Error()}}, 0)
		return
	}
	mode := negotiateArtifact(r)
	ctx, sp := requestSpan(w, r)
	release, err := s.adm.admit()
	if err != nil {
		s.writeAdmissionError(w, "/v1/solve", sp, err)
		return
	}
	defer release()
	if sp != nil {
		sp.Event("admitted")
	}
	resp, status := s.solveOne(ctx, &req, mode)
	resp.RequestID = sp.ID()
	s.logAccess("/v1/solve", sp, status, resp)
	if mode == artifactRaw && resp.Error == nil && len(resp.BDD) > 0 {
		// Raw negotiation succeeded: the body is the artifact itself.
		// Content-Length is set explicitly so a truncated transfer
		// surfaces as io.ErrUnexpectedEOF client-side, never as a
		// silently short diagram.
		w.Header().Set("Content-Type", ArtifactMediaType)
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.BDD)))
		w.WriteHeader(status)
		_, _ = w.Write(resp.BDD)
		return
	}
	writeResponse(w, status, resp, s.cfg.RetryAfter)
}

// handleBatch serves POST /v1/solve/batch: the whole batch occupies one
// admission slot and runs its items sequentially, so a batch cannot
// monopolize the worker pool ahead of interactive traffic.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeResponse(w, http.StatusBadRequest, &SolveResponse{Error: &WireError{Code: CodeInvalidInput, Message: err.Error()}}, 0)
		return
	}
	if len(req.Requests) == 0 {
		writeResponse(w, http.StatusBadRequest, &SolveResponse{Error: &WireError{Code: CodeInvalidInput, Message: "empty batch"}}, 0)
		return
	}
	ctx, sp := requestSpan(w, r)
	release, err := s.adm.admit()
	if err != nil {
		s.writeAdmissionError(w, "/v1/solve/batch", sp, err)
		return
	}
	defer release()
	if sp != nil {
		sp.Event("admitted")
	}
	out := BatchResponse{Responses: make([]SolveResponse, len(req.Requests))}
	// Co-scheduling pass first: opted-in overlapping items solve as one
	// shared forest each; everything else (and every item whose group
	// never formed) takes the independent path below.
	done := s.runCoscheduled(ctx, &req, &out)
	for i := range req.Requests {
		if done[i] {
			out.Responses[i].RequestID = sp.ID()
			continue
		}
		resp, _ := s.solveOne(ctx, &req.Requests[i], artifactNone)
		resp.RequestID = sp.ID()
		if req.Requests[i].Hints != nil {
			// The item sent hints but was not co-scheduled; echo the
			// decision so the client can tell "declined" from "ignored".
			resp.Scheduling = &SchedulingEcho{}
		}
		out.Responses[i] = *resp
	}
	s.logAccess("/v1/solve/batch", sp, http.StatusOK, nil)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	_ = enc.Encode(&out)
}

// solveOne runs one admitted request end to end: validation, worker
// acquisition, cache lookup / single-flight solve, error mapping. It
// returns the response body and HTTP status (always 200 for solve
// outcomes, including early-stopped ones — the outcome is in the body).
func (s *Server) solveOne(reqCtx context.Context, req *SolveRequest, mode artifactMode) (*SolveResponse, int) {
	start := time.Now()
	sp := obs.SpanFromContext(reqCtx)
	tt, rule, solverName, opts, deadline, err := s.parseRequest(req)
	if err != nil {
		return &SolveResponse{Error: errorToWire(err)}, http.StatusBadRequest
	}
	if mode != artifactNone && rule != core.OBDD {
		return &SolveResponse{Error: &WireError{Code: CodeInvalidInput,
			Message: "artifacts are defined for the obdd rule only"}}, http.StatusBadRequest
	}

	// The request context is bounded by the request deadline and by the
	// server's lifetime, so Drain cancels in-flight solves.
	ctx, cancel := context.WithCancel(reqCtx)
	defer cancel()
	stop := context.AfterFunc(s.lifeCtx, cancel)
	defer stop()
	if deadline > 0 {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithTimeout(ctx, deadline)
		defer dcancel()
	}

	// Fast path: a cached canonical result needs no worker slot — the
	// microsecond answer path for repeat queries stays open even when
	// the solver pool is saturated.
	var key string
	cacheState := ""
	if s.cache != nil && !req.NoCache {
		key = cache.Key(tt.Hex(), rule.String(), cache.ClassExact)
		if v, ok := s.cache.Get(key); ok {
			if sp != nil {
				sp.Event("cache_hit")
			}
			obs.Metrics.RequestsServed.Inc()
			resp := &SolveResponse{Result: v.(*core.Result), Cached: true, cacheState: "hit"}
			if mode != artifactNone {
				if resp.BDD, err = s.artifactFor(tt, resp.Result, req.NoCache); err != nil {
					return &SolveResponse{Error: errorToWire(err), cacheState: "hit"}, http.StatusOK
				}
			}
			resp.ElapsedMS = msSince(start)
			return resp, http.StatusOK
		}
		cacheState = "miss"
		if sp != nil {
			sp.Event("cache_miss")
		}
	} else {
		cacheState = "bypass"
	}

	// Wait (bounded by QueueDepth occupancy) for a worker slot. The wait
	// is the queue-wait distribution — recorded on both outcomes, since a
	// request that dies queued waited all the same.
	queueStart := time.Now()
	releaseWorker, err := s.adm.acquireWorker(ctx)
	queueWait := time.Since(queueStart)
	obs.Hist(obs.HistNameQueueWait).RecordDuration(queueWait)
	if err != nil {
		resp := &SolveResponse{Error: errorToWire(fmt.Errorf("%w: while queued: %v", core.ErrCanceled, err)), ElapsedMS: msSince(start),
			queueWaitNS: queueWait.Nanoseconds(), cacheState: cacheState}
		return resp, http.StatusOK
	}
	defer releaseWorker()
	if sp != nil {
		sp.Event("worker_acquired")
	}

	var solveNS int64
	run := func() (*core.Result, *obs.RunReport, error) {
		var col *obs.Collector
		runOpts := *opts
		if req.Report {
			// A typed-nil *Collector would defeat Multi's nil filtering,
			// so col only enters the fan-out when it exists.
			col = obs.NewCollector()
			runOpts.Trace = obs.Multi(col, s.cfg.Trace, layerSink)
		} else {
			runOpts.Trace = obs.Multi(s.cfg.Trace, layerSink)
		}
		solver, _ := core.LookupSolver(solverName)
		s.solves.Add(1)
		if sp != nil {
			sp.Event("solver_start:" + solverName)
		}
		solveStart := time.Now()
		res, err := solver(ctx, tt, &runOpts)
		// run executes on this goroutine (cache.Do invokes compute
		// synchronously in the owning request), so plain assignment is
		// safe; a coalesced request never calls run and reports 0.
		elapsed := time.Since(solveStart)
		solveNS = elapsed.Nanoseconds()
		obs.Hist(obs.HistNameSolveLatency, "solver", solverName).RecordDuration(elapsed)
		if sp != nil {
			sp.Event("solver_done:" + solverName)
		}
		var rep *obs.RunReport
		if col != nil {
			rep = col.Report()
			rep.Tool = "obddd"
			rep.Algorithm = solverName
			rep.Rule = rule.String()
			rep.N = tt.NumVars()
			rep.Result = res
			if sp != nil {
				rep.RequestID = sp.ID()
				rep.Span = sp.Events()
			}
		}
		return res, rep, err
	}

	var (
		res    *core.Result
		rep    *obs.RunReport
		cached bool
	)
	if s.cache != nil && !req.NoCache {
		var v any
		v, cached, err = s.cache.Do(ctx, key, func() (any, int64, error) {
			r, report, err := run()
			rep = report
			if err != nil {
				// Early-stopped incumbents are not canonical; surface
				// them to this caller but never cache them.
				res = r
				return nil, 0, err
			}
			return r, resultBytes(r), nil
		})
		if err == nil {
			res = v.(*core.Result)
		}
	} else {
		res, rep, err = run()
	}

	resp := &SolveResponse{Result: res, Report: rep, Cached: cached, ElapsedMS: msSince(start),
		queueWaitNS: queueWait.Nanoseconds(), solveNS: solveNS, cacheState: cacheState}
	if err != nil {
		resp.Error = errorToWire(err)
		// Solve outcomes — including cancellation and budget exhaustion,
		// which carry graceful-degradation incumbents — are 200s; only
		// input rejection is a 4xx.
		if resp.Error.Code == CodeInvalidInput {
			return resp, http.StatusBadRequest
		}
		obs.Metrics.RequestsServed.Inc()
		return resp, http.StatusOK
	}
	if mode != artifactNone {
		// Proven-optimal outcome: attach the encoded OBDD under the
		// result's ordering (from the artifact cache class when it is
		// already stored there).
		if resp.BDD, err = s.artifactFor(tt, res, req.NoCache); err != nil {
			resp.Result, resp.Error = nil, errorToWire(err)
		}
	}
	obs.Metrics.RequestsServed.Inc()
	return resp, http.StatusOK
}

// artifactFor returns the canonical encoded OBDD of tt under the
// proven-optimal result res, consulting the cache's artifact class
// before building. A cached artifact is served only when its recorded
// ordering matches the result it travels with — the exact and artifact
// classes are stored independently, so the pairing is re-validated at
// the seam rather than assumed.
func (s *Server) artifactFor(tt *truthtable.Table, res *core.Result, noCache bool) ([]byte, error) {
	var akey string
	if s.cache != nil && !noCache {
		akey = cache.Key(tt.Hex(), core.OBDD.String(), cache.ClassArtifact)
		if v, ok := s.cache.Get(akey); ok {
			enc := v.([]byte)
			if ord, err := artifact.DecodedOrdering(enc); err == nil && ord.Equal(res.Ordering) {
				return enc, nil
			}
			// Ordering drift (or a corrupt entry): fall through and
			// rebuild; the Put below overwrites the stale bytes.
		}
	}
	a, err := artifact.Build(tt, res.Ordering)
	if err != nil {
		return nil, fmt.Errorf("encoding artifact: %w", err)
	}
	enc := a.Encode()
	if akey != "" {
		// Best effort: an artifact bigger than a cache shard is simply
		// not stored.
		s.cache.Put(akey, enc, int64(len(enc)))
	}
	return enc, nil
}

// handleSolvers serves GET /v1/solvers.
func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	resp := SolversResponse{
		Solvers:       core.SolverNames(),
		Rules:         []string{"obdd", "zdd"},
		MaxVars:       s.cfg.MaxVars,
		MaxDeadlineMS: s.cfg.MaxDeadline.Milliseconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Features:      []string{FeatureBatchHints, FeatureArtifact},
	}
	writeJSON(w, http.StatusOK, &resp)
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cache":      s.CacheStats(),
		"solves":     s.SolveCount(),
		"metrics":    obs.MetricsSnapshot(),
		"histograms": obs.HistogramsSnapshot(),
	})
}

// handleHealth serves GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.lifeCtx.Err() != nil {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// writeAdmissionError renders saturation/draining rejections with their
// HTTP statuses and the Retry-After hint; rejections are access-logged
// like every other outcome.
func (s *Server) writeAdmissionError(w http.ResponseWriter, route string, sp *obs.Span, err error) {
	status := http.StatusServiceUnavailable
	if err == ErrSaturated {
		status = http.StatusTooManyRequests
	}
	resp := &SolveResponse{Error: errorToWire(err)}
	if sp != nil {
		resp.RequestID = sp.ID()
	}
	s.logAccess(route, sp, status, resp)
	writeResponse(w, status, resp, s.cfg.RetryAfter)
}

// accessRecord is one access-log line: who (request ID), what (route,
// status, cache outcome, error code), and where the time went (queue
// wait, solver run, total handling).
type accessRecord struct {
	Time        string  `json:"ts"`
	RequestID   string  `json:"request_id"`
	Route       string  `json:"route"`
	Status      int     `json:"status"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	SolveMS     float64 `json:"solve_ms,omitempty"`
	Cache       string  `json:"cache,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// logAccess writes one JSON line for a handled request when access
// logging is configured. resp may be nil (batch envelopes log only
// route/status/ID).
func (s *Server) logAccess(route string, sp *obs.Span, status int, resp *SolveResponse) {
	if s.cfg.AccessLog == nil {
		return
	}
	rec := accessRecord{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		Route:  route,
		Status: status,
	}
	if sp != nil {
		rec.RequestID = sp.ID()
	}
	if resp != nil {
		rec.QueueWaitMS = float64(resp.queueWaitNS) / float64(time.Millisecond)
		rec.SolveMS = float64(resp.solveNS) / float64(time.Millisecond)
		rec.Cache = resp.cacheState
		rec.ElapsedMS = resp.ElapsedMS
		if resp.Error != nil {
			rec.Error = resp.Error.Code
		}
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.accessMu.Lock()
	_, _ = s.cfg.AccessLog.Write(line)
	s.accessMu.Unlock()
}

// decodeJSON reads a JSON body, bounded and strict.
func decodeJSON(r *http.Request, dst any) error {
	const maxBody = 512 << 20 // a 30-var table literal is ~268 MiB of hex
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// writeResponse writes a SolveResponse with the status and, for 429s,
// the Retry-After header.
func writeResponse(w http.ResponseWriter, status int, resp *SolveResponse, retryAfter time.Duration) {
	if status == http.StatusTooManyRequests && retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
