package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// slowSolverOnce registers "slowtest": a solver that holds its worker
// slot for a fixed interval (or until canceled), making queue
// saturation and drain behavior deterministic instead of relying on
// real solves being slow enough.
var slowSolverOnce sync.Once

const slowSolverDelay = 300 * time.Millisecond

func registerSlowSolver() {
	slowSolverOnce.Do(func() {
		core.RegisterSolver("slowtest", func(ctx context.Context, tt *truthtable.Table, opts *core.SolveOptions) (*core.Result, error) {
			select {
			case <-time.After(slowSolverDelay):
				fs, _ := core.LookupSolver("fs")
				return fs(ctx, tt, opts)
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %v", core.ErrCanceled, ctx.Err())
			}
		})
	})
}

// newTestServer builds a Server plus an httptest frontend; the cleanup
// drains the server so no solver goroutines outlive a test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer dcancel()
		if err := s.Drain(drainCtx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		cancel()
	})
	return s, ts
}

// postSolve sends one solve request and decodes the envelope.
func postSolve(t *testing.T, url string, req *SolveRequest) (*SolveResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", hr.StatusCode, err)
	}
	return &resp, hr
}

// TestSolveEndpoint is the basic round trip: a known function solves to
// its known optimum over the wire.
func TestSolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The Fig. 1 function: optimal OBDD has 6 nonterminals.
	tt := mustExprTable(t, 6)
	resp, hr := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex()})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", hr.StatusCode)
	}
	if resp.Error != nil {
		t.Fatalf("error: %+v", resp.Error)
	}
	if resp.Result == nil || resp.Result.MinCost != 6 {
		t.Fatalf("result = %+v, want MinCost 6", resp.Result)
	}
	if len(resp.Result.Ordering) != 6 {
		t.Fatalf("ordering = %v", resp.Result.Ordering)
	}
}

// mustExprTable builds x1&x2 | x3&x4 | … over n variables (n even): the
// papers' Achilles-heel family with a 2·(n/2)+... known shape; we only
// rely on determinism, not the exact cost, except for n=6 (cost 6).
func mustExprTable(t *testing.T, n int) *truthtable.Table {
	t.Helper()
	return truthtable.FromFunc(n, func(x []bool) bool {
		for i := 0; i+1 < n; i += 2 {
			if x[i] && x[i+1] {
				return true
			}
		}
		return false
	})
}

// TestSolveValidation exercises the 400 paths.
func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxVars: 8})
	cases := []struct {
		name string
		req  SolveRequest
	}{
		{"bad table", SolveRequest{Table: "zzz"}},
		{"bad rule", SolveRequest{Table: "2:8", Rule: "bdd2"}},
		{"unknown solver", SolveRequest{Table: "2:8", Solver: "nope"}},
		{"too many vars", SolveRequest{Table: truthtable.New(10).Hex()}},
		{"negative deadline", SolveRequest{Table: "2:8", DeadlineMS: -5}},
	}
	for _, tc := range cases {
		resp, hr := postSolve(t, ts.URL, &tc.req)
		if hr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, hr.StatusCode)
		}
		if resp.Error == nil || resp.Error.Code != CodeInvalidInput {
			t.Errorf("%s: error = %+v, want invalid_input", tc.name, resp.Error)
		}
	}
	// Malformed JSON body.
	hr, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", hr.StatusCode)
	}
}

// TestCacheHitSkipsSolver pins the acceptance contract: a repeated
// identical request is served from cache — recorded in the hit metrics
// — and the solver runs exactly once.
func TestCacheHitSkipsSolver(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	tt := truthtable.Random(8, rand.New(rand.NewSource(41)))
	req := &SolveRequest{Table: tt.Hex(), Solver: "fs"}

	before := obs.MetricsSnapshot()
	cold, _ := postSolve(t, ts.URL, req)
	if cold.Error != nil || cold.Cached {
		t.Fatalf("cold solve = %+v", cold)
	}
	if got := s.SolveCount(); got != 1 {
		t.Fatalf("solver ran %d times after cold solve, want 1", got)
	}
	warm, _ := postSolve(t, ts.URL, req)
	if warm.Error != nil {
		t.Fatalf("warm solve error: %+v", warm.Error)
	}
	if !warm.Cached {
		t.Error("second identical request not served from cache")
	}
	if got := s.SolveCount(); got != 1 {
		t.Errorf("solver ran %d times after warm solve, want 1 (cache must answer)", got)
	}
	if warm.Result == nil || warm.Result.MinCost != cold.Result.MinCost {
		t.Errorf("cached result %+v != cold result %+v", warm.Result, cold.Result)
	}
	delta := obs.MetricsDelta(before, obs.MetricsSnapshot())
	if delta["cache_hits"] == 0 {
		t.Errorf("cache_hits delta = 0, want ≥ 1 (got %+v)", delta)
	}
	if st := s.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("cache stats = %+v, want recorded hit and a stored entry", st)
	}
}

// TestSingleFlightCoalesces fires many concurrent identical requests
// and requires exactly one solver invocation: the flight owner's; the
// rest coalesce on the in-flight computation or hit the fresh entry.
func TestSingleFlightCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	tt := truthtable.Random(10, rand.New(rand.NewSource(4242)))
	req := &SolveRequest{Table: tt.Hex(), Solver: "fs"}

	const concurrent = 24
	var wg sync.WaitGroup
	resps := make([]*SolveResponse, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer hr.Body.Close()
			var resp SolveResponse
			if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
				t.Error(err)
				return
			}
			if hr.StatusCode != http.StatusOK {
				t.Errorf("HTTP %d: %+v", hr.StatusCode, resp.Error)
				return
			}
			resps[i] = &resp
		}(i)
	}
	wg.Wait()
	if got := s.SolveCount(); got != 1 {
		t.Errorf("solver invocations = %d for %d identical concurrent requests, want 1 (single-flight)", got, concurrent)
	}
	var want *core.Result
	for i, r := range resps {
		if r == nil || r.Result == nil {
			t.Fatalf("request %d got no result", i)
		}
		if want == nil {
			want = r.Result
		} else if r.Result.MinCost != want.MinCost {
			t.Errorf("request %d MinCost %d != %d", i, r.Result.MinCost, want.MinCost)
		}
	}
}

// TestLoadSheddingUnderSaturation is the acceptance load test: 64
// concurrent solves against a 2-worker, 2-deep queue produce only 200s
// and 429s — never a 5xx — and the 429s carry Retry-After.
func TestLoadSheddingUnderSaturation(t *testing.T) {
	registerSlowSolver()
	s, ts := newTestServer(t, Config{
		Workers:    2,
		QueueDepth: 2,
		RetryAfter: 2 * time.Second,
	})
	rng := rand.New(rand.NewSource(7))
	tables := make([]*truthtable.Table, 64)
	for i := range tables {
		tables[i] = truthtable.Random(6, rng)
	}

	type outcome struct {
		status     int
		retryAfter string
		errCode    string
	}
	outcomes := make([]outcome, len(tables))
	var wg sync.WaitGroup
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// NoCache + distinct tables: every request needs a worker,
			// so the queue genuinely saturates.
			body, _ := json.Marshal(&SolveRequest{Table: tables[i].Hex(), Solver: "slowtest", NoCache: true})
			hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer hr.Body.Close()
			var resp SolveResponse
			_ = json.NewDecoder(hr.Body).Decode(&resp)
			o := outcome{status: hr.StatusCode, retryAfter: hr.Header.Get("Retry-After")}
			if resp.Error != nil {
				o.errCode = resp.Error.Code
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for i, o := range outcomes {
		counts[o.status]++
		switch o.status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			if o.retryAfter == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
			if o.errCode != CodeSaturated {
				t.Errorf("request %d: 429 with code %q, want %q", i, o.errCode, CodeSaturated)
			}
		default:
			t.Errorf("request %d: HTTP %d — only 200 and 429 are acceptable under saturation", i, o.status)
		}
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Error("no 429s from 64 concurrent requests against a 4-slot building; admission control not engaging")
	}
	if counts[http.StatusOK] == 0 {
		t.Error("no successes at all; the pool made no progress")
	}
	t.Logf("outcomes: %d OK, %d 429 (solver ran %d times)", counts[200], counts[429], s.SolveCount())
}

// TestDrainCancelsInFlight: a long-running solve is canceled by Drain,
// its response still arrives (graceful, status 200 + canceled error),
// new work is refused with 503, and no goroutines leak.
func TestDrainCancelsInFlight(t *testing.T) {
	registerSlowSolver()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Workers: 2, QueueDepth: 2, MaxDeadline: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// slowtest blocks in its worker slot until canceled, so the drain
	// demonstrably interrupts a solve rather than racing its completion.
	tt := truthtable.Random(8, rand.New(rand.NewSource(3)))
	respCh := make(chan *SolveResponse, 1)
	statusCh := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(&SolveRequest{Table: tt.Hex(), Solver: "slowtest", NoCache: true})
		hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			respCh <- nil
			statusCh <- 0
			return
		}
		defer hr.Body.Close()
		var resp SolveResponse
		_ = json.NewDecoder(hr.Body).Decode(&resp)
		respCh <- &resp
		statusCh <- hr.StatusCode
	}()

	// Wait until the solve is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for s.SolveCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	resp, status := <-respCh, <-statusCh
	if resp == nil {
		t.Fatal("in-flight request got no response through drain")
	}
	if status != http.StatusOK {
		t.Errorf("in-flight request: HTTP %d, want 200 (canceled outcome in body)", status)
	}
	if resp.Error == nil || resp.Error.Code != CodeCanceled {
		t.Errorf("in-flight request error = %+v, want canceled", resp.Error)
	}

	// New work is refused while drained.
	body, _ := json.Marshal(&SolveRequest{Table: "2:8"})
	hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: HTTP %d, want 503", hr.StatusCode)
	}

	// Health flips to draining.
	hh, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hh.Body.Close()
	if hh.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: HTTP %d, want 503", hh.StatusCode)
	}

	// Goroutine-leak check: after draining and closing the frontend,
	// the count returns to the baseline (with slack for the HTTP
	// keep-alive reaper and test plumbing).
	ts.Close()
	ok := false
	for wait := time.Now().Add(5 * time.Second); time.Now().Before(wait); {
		if runtime.NumGoroutine() <= baseline+4 {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Errorf("goroutines = %d, baseline %d: drain leaked", runtime.NumGoroutine(), baseline)
	}
}

// TestDeadlineCapAndDegradation: the server clamps absurd deadlines and
// a deadline-stopped portfolio solve still returns an incumbent.
func TestDeadlineCapAndDegradation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDeadline: 80 * time.Millisecond})
	tt := truthtable.Random(16, rand.New(rand.NewSource(11)))
	start := time.Now()
	resp, hr := postSolve(t, ts.URL, &SolveRequest{
		Table:      tt.Hex(),
		Solver:     "portfolio",
		DeadlineMS: 3_600_000, // one hour, clamped to 80ms
		NoCache:    true,
	})
	elapsed := time.Since(start)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", hr.StatusCode)
	}
	if resp.Error == nil || resp.Error.Code != CodeCanceled {
		t.Fatalf("error = %+v, want canceled (deadline clamped)", resp.Error)
	}
	if resp.Result == nil || len(resp.Result.Ordering) != 16 {
		t.Errorf("degraded result = %+v, want a 16-variable incumbent", resp.Result)
	}
	if elapsed > 5*time.Second {
		t.Errorf("request took %v; the 80ms cap did not bite", elapsed)
	}
}

// TestBudgetCap: the server applies its configured budget ceiling.
func TestBudgetCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBudget: core.Budget{MaxCells: 4096}})
	tt := truthtable.Random(12, rand.New(rand.NewSource(5)))
	resp, hr := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "fs", NoCache: true})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", hr.StatusCode)
	}
	if resp.Error == nil || resp.Error.Code != CodeBudgetExceeded {
		t.Fatalf("error = %+v, want budget_exceeded under the server cap", resp.Error)
	}
}

// TestEarlyStopNotCached: an incumbent from a canceled run must never
// be served as a canonical cached result.
func TestEarlyStopNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	tt := truthtable.Random(16, rand.New(rand.NewSource(23)))
	resp, _ := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "portfolio", DeadlineMS: 50})
	if resp.Error == nil || resp.Error.Code != CodeCanceled {
		t.Fatalf("expected a canceled first solve, got %+v", resp)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("cache entries = %d after canceled solve, want 0", st.Entries)
	}
	resp2, _ := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "portfolio", DeadlineMS: 50})
	if resp2.Cached {
		t.Error("second request was served a non-canonical cached incumbent")
	}
}

// TestBatchEndpoint: responses are index-aligned, per-item errors stay
// per-item, and an intra-batch repeat hits the cache.
func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	a := truthtable.Random(7, rand.New(rand.NewSource(1)))
	breq := BatchRequest{Requests: []SolveRequest{
		{Table: a.Hex(), Solver: "fs"},
		{Table: "zzz"}, // invalid: per-item error, not whole-batch failure
		{Table: a.Hex(), Solver: "fs"},
	}}
	body, _ := json.Marshal(&breq)
	hr, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", hr.StatusCode)
	}
	var bresp BatchResponse
	if err := json.NewDecoder(hr.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(bresp.Responses))
	}
	if bresp.Responses[0].Error != nil || bresp.Responses[0].Result == nil {
		t.Errorf("item 0 = %+v, want success", bresp.Responses[0])
	}
	if bresp.Responses[1].Error == nil || bresp.Responses[1].Error.Code != CodeInvalidInput {
		t.Errorf("item 1 error = %+v, want invalid_input", bresp.Responses[1].Error)
	}
	if !bresp.Responses[2].Cached {
		t.Error("item 2 (repeat of item 0) not served from cache")
	}
	if got := s.SolveCount(); got != 1 {
		t.Errorf("solver ran %d times for the batch, want 1", got)
	}
}

// TestSolversEndpoint and the stats/debug surfaces.
func TestSolversEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 5})
	hr, err := http.Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp SolversResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range resp.Solvers {
		if name == "portfolio" {
			found = true
		}
	}
	if !found {
		t.Errorf("solvers = %v, want portfolio listed", resp.Solvers)
	}
	if resp.Workers != 3 || resp.QueueDepth != 5 {
		t.Errorf("limits = %+v, want workers 3 queue 5", resp)
	}
	if len(resp.Rules) != 2 {
		t.Errorf("rules = %v", resp.Rules)
	}

	for _, path := range []string{"/v1/stats", "/debug/vars", "/healthz"} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("GET %s: HTTP %d", path, r2.StatusCode)
		}
	}
}

// TestReportRequested: the response embeds an obs.RunReport when asked.
func TestReportRequested(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := truthtable.Random(6, rand.New(rand.NewSource(99)))
	resp, _ := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Solver: "fs", Report: true, NoCache: true})
	if resp.Error != nil {
		t.Fatalf("error: %+v", resp.Error)
	}
	if resp.Report == nil {
		t.Fatal("no report in response")
	}
	if resp.Report.Tool != "obddd" || resp.Report.Algorithm != "fs" || resp.Report.N != 6 {
		t.Errorf("report header = %+v", resp.Report)
	}
	if len(resp.Report.Layers) == 0 {
		t.Error("report has no layer stats; tracer not threaded through")
	}
}

// TestZDDRule solves under the ZDD rule over the wire and verifies the
// rule round-trips into the result.
func TestZDDRule(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tt := truthtable.Random(6, rand.New(rand.NewSource(12)))
	resp, _ := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Rule: "zdd", Solver: "fs"})
	if resp.Error != nil {
		t.Fatalf("error: %+v", resp.Error)
	}
	if resp.Result.Rule != core.ZDD {
		t.Errorf("result rule = %v, want ZDD", resp.Result.Rule)
	}
	// Same table under OBDD must occupy a distinct cache entry.
	resp2, _ := postSolve(t, ts.URL, &SolveRequest{Table: tt.Hex(), Rule: "obdd", Solver: "fs"})
	if resp2.Cached {
		t.Error("OBDD request hit the ZDD cache entry; rule missing from the key")
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
