package server

import (
	"context"
	"fmt"
	"strings"
	"time"

	"obddopt/internal/core"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// This file is the batch co-scheduling planner: /v1/solve/batch items
// that opt in via SolveHints.Coschedule are grouped by variable count,
// rule and canonical-digest prefix, and each group whose tables overlap
// is solved as ONE shared-forest dynamic program under one worker slot —
// the shared DP amortizes the subset lattice across the group, so k
// overlapping items cost far less than k independent solves. The
// planner's decision is echoed per item in SolveResponse.Scheduling.

// coschedulePrefixLen caps the length (hex digits) of the canonical-
// digest prefix in the grouping key; small tables use half their digits
// so that near-identical functions still bucket together. Items must
// share the prefix to even be considered; the overlap test below does
// the fine-grained check.
const coschedulePrefixLen = 16

// coscheduleOverlap is the minimum fraction of equal hex digits between
// an item's table and its group head's for the item to join the group.
// Unrelated random tables agree on ~1/16 of digits; functions close
// enough to share subtables in a forest agree on far more.
const coscheduleOverlap = 0.25

// batchGroup is one planned co-scheduling group: batch indices plus the
// parsed tables, index-aligned.
type batchGroup struct {
	key    string
	items  []int
	tts    []*truthtable.Table
	digits []string
}

// planCoschedule partitions a batch's co-scheduling opt-ins into groups.
// Only items the shared dynamic program can serve are eligible (solver
// "" or "fs", parseable table, known rule); anything else is left for
// the per-item path, which surfaces the proper rejection. Groups of one
// are discarded — co-scheduling exists to share work, and a lone item is
// better served by the single-function engine and the result cache.
func (s *Server) planCoschedule(req *BatchRequest) []*batchGroup {
	groups := make(map[string]*batchGroup)
	var order []string
	for i := range req.Requests {
		r := &req.Requests[i]
		if r.Hints == nil || !r.Hints.Coschedule {
			continue
		}
		if r.Solver != "" && r.Solver != "fs" {
			continue
		}
		tt, err := truthtable.ParseHex(r.Table)
		if err != nil || tt.NumVars() > s.cfg.MaxVars {
			continue
		}
		rule := core.OBDD
		if r.Rule != "" {
			if rule, err = core.ParseRule(r.Rule); err != nil {
				continue
			}
		}
		hex := tt.Hex()
		digits := hex[strings.IndexByte(hex, ':')+1:]
		prefix := digits
		if half := (len(digits) + 1) / 2; half < len(prefix) {
			prefix = prefix[:half]
		}
		if len(prefix) > coschedulePrefixLen {
			prefix = prefix[:coschedulePrefixLen]
		}
		key := fmt.Sprintf("%d/%s/%s", tt.NumVars(), strings.ToLower(rule.String()), prefix)
		g := groups[key]
		if g == nil {
			groups[key] = &batchGroup{key: key, items: []int{i}, tts: []*truthtable.Table{tt}, digits: []string{digits}}
			order = append(order, key)
			continue
		}
		if digitOverlap(digits, g.digits[0]) < coscheduleOverlap {
			continue
		}
		g.items = append(g.items, i)
		g.tts = append(g.tts, tt)
		g.digits = append(g.digits, digits)
	}
	planned := make([]*batchGroup, 0, len(order))
	for _, key := range order {
		if g := groups[key]; len(g.items) >= 2 {
			planned = append(planned, g)
		}
	}
	return planned
}

// digitOverlap returns the fraction of positions at which the two hex
// encodings agree; 0 when the lengths differ (different variable counts
// never group anyway).
func digitOverlap(a, b string) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	equal := 0
	for i := 0; i < len(a); i++ {
		if a[i] == b[i] {
			equal++
		}
	}
	return float64(equal) / float64(len(a))
}

// runCoscheduled plans and executes the batch's co-scheduled groups,
// filling their slots of out. The returned slice marks which items were
// answered here; the caller solves the rest independently.
func (s *Server) runCoscheduled(ctx context.Context, req *BatchRequest, out *BatchResponse) []bool {
	done := make([]bool, len(req.Requests))
	for _, g := range s.planCoschedule(req) {
		if s.solveGroup(ctx, req, g, out) {
			for _, i := range g.items {
				done[i] = true
			}
		}
	}
	return done
}

// solveGroup runs one planned group as a single shared-forest solve. The
// group head's limits (deadline, budget, schedule) govern the run — the
// members opted into riding along with it. It reports false when the
// group could not even start (head fails validation), sending every item
// back to the per-item path.
func (s *Server) solveGroup(reqCtx context.Context, req *BatchRequest, g *batchGroup, out *BatchResponse) bool {
	start := time.Now()
	sp := obs.SpanFromContext(reqCtx)
	_, rule, _, opts, deadline, err := s.parseRequest(&req.Requests[g.items[0]])
	if err != nil {
		return false
	}

	// Same lifetime plumbing as solveOne: bounded by the request
	// deadline and the server's Drain.
	ctx, cancel := context.WithCancel(reqCtx)
	defer cancel()
	stop := context.AfterFunc(s.lifeCtx, cancel)
	defer stop()
	if deadline > 0 {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithTimeout(ctx, deadline)
		defer dcancel()
	}

	echo := func() *SchedulingEcho {
		return &SchedulingEcho{Coscheduled: true, Group: g.key, GroupSize: len(g.items)}
	}

	queueStart := time.Now()
	releaseWorker, err := s.adm.acquireWorker(ctx)
	queueWait := time.Since(queueStart)
	obs.Hist(obs.HistNameQueueWait).RecordDuration(queueWait)
	if err != nil {
		for _, i := range g.items {
			out.Responses[i] = SolveResponse{
				Error:       errorToWire(fmt.Errorf("%w: while queued: %v", core.ErrCanceled, err)),
				Scheduling:  echo(),
				ElapsedMS:   msSince(start),
				queueWaitNS: queueWait.Nanoseconds(),
			}
			obs.Metrics.RequestsServed.Inc()
		}
		return true
	}
	defer releaseWorker()
	if sp != nil {
		sp.Event(fmt.Sprintf("coschedule_group:%s:%d", g.key, len(g.items)))
	}

	s.solves.Add(1)
	solveStart := time.Now()
	shared, err := core.OptimalOrderingSharedCtx(ctx, g.tts, opts)
	elapsed := time.Since(solveStart)
	obs.Hist(obs.HistNameSolveLatency, "solver", "shared").RecordDuration(elapsed)

	for k, i := range g.items {
		resp := SolveResponse{
			Scheduling:  echo(),
			ElapsedMS:   msSince(start),
			queueWaitNS: queueWait.Nanoseconds(),
			solveNS:     elapsed.Nanoseconds(),
			cacheState:  "bypass",
		}
		if err != nil {
			// The shared DP carries no incumbent, so the whole group
			// degrades together.
			resp.Error = errorToWire(err)
		} else {
			resp.Result = coscheduledResult(g.tts[k], shared, rule)
		}
		obs.Metrics.RequestsServed.Inc()
		out.Responses[i] = resp
	}
	return true
}

// coscheduledResult projects the group's jointly optimal ordering back
// onto one item: the item's own level profile and node count under that
// ordering. The cost is optimal for the shared forest, not proven
// optimal for the item alone, which is why co-scheduled results never
// enter the canonical cache.
func coscheduledResult(tt *truthtable.Table, shared *core.SharedResult, rule core.Rule) *core.Result {
	widths := core.Profile(tt, shared.Ordering, rule, nil)
	var minCost uint64
	for _, w := range widths {
		minCost += w
	}
	termVals := []int{0, 1}
	switch ones := tt.CountOnes(); {
	case ones == 0:
		termVals = []int{0}
	case ones == tt.Size():
		termVals = []int{1}
	}
	return &core.Result{
		N:              tt.NumVars(),
		Rule:           rule,
		MinCost:        minCost,
		Terminals:      len(termVals),
		Size:           minCost + uint64(len(termVals)),
		Ordering:       shared.Ordering,
		Profile:        widths,
		TerminalValues: termVals,
	}
}
