// Package zdd implements zero-suppressed decision diagrams (Minato 1993),
// the OBDD variant the papers adapt their algorithm to with a two-line
// modification (Remark 2). A ZDD canonically represents a family of
// subsets of {0, …, n−1}: the 1-terminal is the family {∅}, the 0-terminal
// the empty family, and a node (v, lo, hi) represents
// lo ∪ {S ∪ {v} : S ∈ hi}. The zero-suppression rule — a node whose hi
// edge is the 0-terminal is skipped — makes ZDDs compact exactly on the
// sparse families that combinatorial applications produce.
//
// The package mirrors internal/bdd structurally (unique table, memoized
// set operations) and exists both as a substrate for the set-family
// examples and as the independent cross-check of the dynamic program's ZDD
// rule (experiment E9).
package zdd

import (
	"fmt"
	"sort"
	"strings"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// Node identifies a ZDD node within its Manager.
type Node uint32

// Terminals: Empty is the empty family ∅; Unit is the family {∅}.
const (
	Empty Node = 0
	Unit  Node = 1
)

type nodeData struct {
	level  uint32
	lo, hi Node
}

type mkKey struct {
	level  uint32
	lo, hi Node
}

type opKey struct {
	op   byte
	f, g Node
}

// Manager owns a collection of shared ZDD nodes over a fixed element
// ordering. Managers are not safe for concurrent use.
type Manager struct {
	nvars      int
	varAtLevel []int
	levelOfVar []int
	nodes      []nodeData
	unique     map[mkKey]Node
	opCache    map[opKey]Node
}

// New returns a manager over n elements with the given bottom-up ordering
// (nil selects element 0 at the root).
func New(n int, order truthtable.Ordering) *Manager {
	if order == nil {
		order = truthtable.ReverseOrdering(n)
	}
	if len(order) != n || !order.Valid() {
		panic("zdd: ordering is not a permutation of the elements")
	}
	m := &Manager{
		nvars:      n,
		varAtLevel: order.RootFirst(),
		levelOfVar: make([]int, n),
		nodes:      []nodeData{{level: uint32(n)}, {level: uint32(n)}},
		unique:     make(map[mkKey]Node),
		opCache:    make(map[opKey]Node),
	}
	for lvl, v := range m.varAtLevel {
		m.levelOfVar[v] = lvl
	}
	return m
}

// NumVars returns the number of elements of the universe.
func (m *Manager) NumVars() int { return m.nvars }

// Ordering returns the manager's element ordering, bottom-up.
func (m *Manager) Ordering() truthtable.Ordering {
	return truthtable.FromRootFirst(append([]int{}, m.varAtLevel...))
}

func (m *Manager) level(f Node) uint32 { return m.nodes[f].level }

// mk applies the zero-suppression rule and the unique table.
func (m *Manager) mk(level uint32, lo, hi Node) Node {
	if hi == Empty {
		return lo
	}
	key := mkKey{level, lo, hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique[key] = n
	return n
}

// Single returns the family {{v}}.
func (m *Manager) Single(v int) Node {
	if v < 0 || v >= m.nvars {
		panic("zdd: Single element out of range")
	}
	return m.mk(uint32(m.levelOfVar[v]), Empty, Unit)
}

// Base returns the family {∅}.
func (m *Manager) Base() Node { return Unit }

// cofactorsAt splits f at the given level: f = lo ∪ {S∪{v} : S ∈ hi}.
func (m *Manager) cofactorsAt(f Node, level uint32) (lo, hi Node) {
	if m.level(f) == level {
		d := m.nodes[f]
		return d.lo, d.hi
	}
	return f, Empty
}

// Union returns f ∪ g.
func (m *Manager) Union(f, g Node) Node {
	switch {
	case f == Empty:
		return g
	case g == Empty || f == g:
		return f
	}
	key := opKey{'u', minNode(f, g), maxNode(f, g)}
	if r, ok := m.opCache[key]; ok {
		return r
	}
	top := minU32(m.level(f), m.level(g))
	f0, f1 := m.cofactorsAt(f, top)
	g0, g1 := m.cofactorsAt(g, top)
	r := m.mk(top, m.Union(f0, g0), m.Union(f1, g1))
	m.opCache[key] = r
	return r
}

// Intersect returns f ∩ g.
func (m *Manager) Intersect(f, g Node) Node {
	switch {
	case f == Empty || g == Empty:
		return Empty
	case f == g:
		return f
	}
	key := opKey{'i', minNode(f, g), maxNode(f, g)}
	if r, ok := m.opCache[key]; ok {
		return r
	}
	top := minU32(m.level(f), m.level(g))
	f0, f1 := m.cofactorsAt(f, top)
	g0, g1 := m.cofactorsAt(g, top)
	r := m.mk(top, m.Intersect(f0, g0), m.Intersect(f1, g1))
	m.opCache[key] = r
	return r
}

// Diff returns f ∖ g.
func (m *Manager) Diff(f, g Node) Node {
	switch {
	case f == Empty || f == g:
		return Empty
	case g == Empty:
		return f
	}
	key := opKey{'d', f, g}
	if r, ok := m.opCache[key]; ok {
		return r
	}
	top := minU32(m.level(f), m.level(g))
	f0, f1 := m.cofactorsAt(f, top)
	g0, g1 := m.cofactorsAt(g, top)
	r := m.mk(top, m.Diff(f0, g0), m.Diff(f1, g1))
	m.opCache[key] = r
	return r
}

// Join returns {S ∪ T : S ∈ f, T ∈ g}, Minato's product of families.
func (m *Manager) Join(f, g Node) Node {
	switch {
	case f == Empty || g == Empty:
		return Empty
	case f == Unit:
		return g
	case g == Unit:
		return f
	}
	key := opKey{'j', minNode(f, g), maxNode(f, g)}
	if r, ok := m.opCache[key]; ok {
		return r
	}
	top := minU32(m.level(f), m.level(g))
	f0, f1 := m.cofactorsAt(f, top)
	g0, g1 := m.cofactorsAt(g, top)
	// Sets containing the top element arise from any pairing with at
	// least one hi part.
	hi := m.Union(m.Union(m.Join(f1, g1), m.Join(f1, g0)), m.Join(f0, g1))
	r := m.mk(top, m.Join(f0, g0), hi)
	m.opCache[key] = r
	return r
}

// Change toggles element v in every member set.
func (m *Manager) Change(f Node, v int) Node {
	level := uint32(m.levelOfVar[v])
	var rec func(Node) Node
	memo := map[Node]Node{}
	rec = func(g Node) Node {
		if m.level(g) > level {
			// v absent below here: toggle inserts v into every set.
			return m.mk(level, Empty, g)
		}
		if r, ok := memo[g]; ok {
			return r
		}
		d := m.nodes[g]
		var r Node
		if d.level == level {
			r = m.mk(level, d.hi, d.lo)
		} else {
			r = m.mk(d.level, rec(d.lo), rec(d.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Count returns the number of member sets of the family f.
func (m *Manager) Count(f Node) uint64 {
	memo := map[Node]uint64{}
	var rec func(Node) uint64
	rec = func(g Node) uint64 {
		switch g {
		case Empty:
			return 0
		case Unit:
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		d := m.nodes[g]
		c := rec(d.lo) + rec(d.hi)
		memo[g] = c
		return c
	}
	return rec(f)
}

// Contains reports whether the set (as an element mask) is in the family.
func (m *Manager) Contains(f Node, set bitops.Mask) bool {
	for lvl := 0; lvl < m.nvars; lvl++ {
		v := m.varAtLevel[lvl]
		lo, hi := m.cofactorsAt(f, uint32(lvl))
		if set.Has(v) {
			f = hi
		} else {
			f = lo
		}
	}
	return f == Unit
}

// FromFamily builds the ZDD of an explicit family of sets.
func (m *Manager) FromFamily(sets []bitops.Mask) Node {
	f := Empty
	for _, s := range sets {
		one := Unit
		// Insert elements bottom-up (deepest level first) so mk sees
		// canonical children.
		for lvl := m.nvars - 1; lvl >= 0; lvl-- {
			v := m.varAtLevel[lvl]
			if s.Has(v) {
				one = m.mk(uint32(lvl), Empty, one)
			}
		}
		f = m.Union(f, one)
	}
	return f
}

// ToFamily lists the member sets of f in ascending mask order.
func (m *Manager) ToFamily(f Node) []bitops.Mask {
	var out []bitops.Mask
	var rec func(g Node, acc bitops.Mask)
	rec = func(g Node, acc bitops.Mask) {
		switch g {
		case Empty:
			return
		case Unit:
			out = append(out, acc)
			return
		}
		d := m.nodes[g]
		v := m.varAtLevel[d.level]
		rec(d.lo, acc)
		rec(d.hi, acc.With(v))
	}
	rec(f, 0)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FromTruthTable builds the ZDD of the family whose characteristic
// function is tt (cell index bit v = element v present).
func (m *Manager) FromTruthTable(tt *truthtable.Table) Node {
	if tt.NumVars() != m.nvars {
		panic("zdd: truth table variable count mismatch")
	}
	n := m.nvars
	size := tt.Size()
	cur := make([]Node, size)
	for idx := uint64(0); idx < size; idx++ {
		var ttIdx uint64
		for j := 0; j < n; j++ {
			if idx>>uint(j)&1 == 1 {
				ttIdx |= 1 << uint(m.varAtLevel[n-1-j])
			}
		}
		if tt.Bit(ttIdx) {
			cur[idx] = Unit
		} else {
			cur[idx] = Empty
		}
	}
	for level := n - 1; level >= 0; level-- {
		next := make([]Node, len(cur)/2)
		for i := range next {
			next[i] = m.mk(uint32(level), cur[2*i], cur[2*i+1])
		}
		cur = next
	}
	return cur[0]
}

// CountNodes returns the number of nonterminal nodes reachable from f.
func (m *Manager) CountNodes(f Node) uint64 {
	var count uint64
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if g == Empty || g == Unit || seen[g] {
			return
		}
		seen[g] = true
		count++
		rec(m.nodes[g].lo)
		rec(m.nodes[g].hi)
	}
	rec(f)
	return count
}

// LevelCounts returns reachable node counts per level, bottom-up, matching
// the dynamic program's ZDD profile for the same ordering.
func (m *Manager) LevelCounts(f Node) []uint64 {
	counts := make([]uint64, m.nvars)
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(g Node) {
		if g == Empty || g == Unit || seen[g] {
			return
		}
		seen[g] = true
		d := m.nodes[g]
		counts[uint32(m.nvars)-1-d.level]++
		rec(d.lo)
		rec(d.hi)
	}
	rec(f)
	return counts
}

// String renders small families for diagnostics, e.g. "{{}, {x1,x3}}".
func (m *Manager) FamilyString(f Node) string {
	fam := m.ToFamily(f)
	parts := make([]string, len(fam))
	for i, s := range fam {
		var elems []string
		for _, v := range s.Members(nil) {
			elems = append(elems, fmt.Sprintf("x%d", v+1))
		}
		parts[i] = "{" + strings.Join(elems, ",") + "}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func minNode(a, b Node) Node {
	if a < b {
		return a
	}
	return b
}

func maxNode(a, b Node) Node {
	if a > b {
		return a
	}
	return b
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
