package zdd

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the family rooted at f in Graphviz format: circles labeled
// with element names, solid 1-edges (element present) and dashed 0-edges,
// box terminals ∅ and ε (the empty family and {∅}).
func (m *Manager) DOT(f Node, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=TB;\n")
	seen := map[Node]bool{}
	byLevel := make([][]Node, m.nvars+1)
	var collect func(Node)
	collect = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		byLevel[m.level(g)] = append(byLevel[m.level(g)], g)
		if g == Empty || g == Unit {
			return
		}
		collect(m.nodes[g].lo)
		collect(m.nodes[g].hi)
	}
	collect(f)
	for lvl, ns := range byLevel {
		if len(ns) == 0 {
			continue
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		if lvl < m.nvars {
			fmt.Fprintf(&sb, "  { rank=same;")
			for _, g := range ns {
				fmt.Fprintf(&sb, " n%d;", g)
			}
			sb.WriteString(" }\n")
			for _, g := range ns {
				fmt.Fprintf(&sb, "  n%d [label=\"x%d\", shape=circle];\n", g, m.varAtLevel[lvl]+1)
			}
		} else {
			for _, g := range ns {
				label := "∅"
				if g == Unit {
					label = "ε"
				}
				fmt.Fprintf(&sb, "  n%d [label=%q, shape=box];\n", g, label)
			}
		}
	}
	for g := range seen {
		if g == Empty || g == Unit {
			continue
		}
		d := m.nodes[g]
		fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed];\n", g, d.lo)
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", g, d.hi)
	}
	sb.WriteString("}\n")
	return sb.String()
}
