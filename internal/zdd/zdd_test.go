package zdd

import (
	"math/rand"
	"strings"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// refFamily materializes a family as a map for reference comparisons.
type refFamily map[bitops.Mask]bool

func toRef(sets []bitops.Mask) refFamily {
	r := refFamily{}
	for _, s := range sets {
		r[s] = true
	}
	return r
}

func randomFamily(n, m int, rng *rand.Rand) []bitops.Mask {
	if max := 1 << uint(n); m > max {
		m = max
	}
	seen := map[bitops.Mask]bool{}
	for len(seen) < m {
		seen[bitops.Mask(rng.Uint64())&bitops.FullMask(n)] = true
	}
	var out []bitops.Mask
	for s := range seen {
		out = append(out, s)
	}
	return out
}

func TestTerminalsAndSingle(t *testing.T) {
	m := New(3, nil)
	if m.Count(Empty) != 0 || m.Count(Unit) != 1 {
		t.Fatalf("terminal counts wrong")
	}
	s := m.Single(1)
	if m.Count(s) != 1 || !m.Contains(s, bitops.Mask(0b010)) {
		t.Errorf("Single(1) wrong")
	}
	if m.Contains(s, 0) {
		t.Errorf("Single(1) should not contain ∅")
	}
	if m.Base() != Unit {
		t.Errorf("Base should be Unit")
	}
}

func TestFromToFamilyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%6
		maxM := 1 << uint(n)
		fam := randomFamily(n, 1+rng.Intn(maxM), rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromFamily(fam)
		if m.Count(f) != uint64(len(fam)) {
			t.Fatalf("Count %d != %d", m.Count(f), len(fam))
		}
		back := toRef(m.ToFamily(f))
		want := toRef(fam)
		if len(back) != len(want) {
			t.Fatalf("family round trip size mismatch")
		}
		for s := range want {
			if !back[s] {
				t.Fatalf("set %b lost in round trip", s)
			}
			if !m.Contains(f, s) {
				t.Fatalf("Contains(%b) false for member", s)
			}
		}
	}
}

func TestSetOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%4
		m := New(n, truthtable.RandomOrdering(n, rng))
		fa := randomFamily(n, 1+rng.Intn(6), rng)
		fb := randomFamily(n, 1+rng.Intn(6), rng)
		a, b := m.FromFamily(fa), m.FromFamily(fb)
		ra, rb := toRef(fa), toRef(fb)

		union := toRef(m.ToFamily(m.Union(a, b)))
		inter := toRef(m.ToFamily(m.Intersect(a, b)))
		diff := toRef(m.ToFamily(m.Diff(a, b)))
		for s := bitops.Mask(0); s < 1<<uint(n); s++ {
			if union[s] != (ra[s] || rb[s]) {
				t.Fatalf("union wrong at %b", s)
			}
			if inter[s] != (ra[s] && rb[s]) {
				t.Fatalf("intersect wrong at %b", s)
			}
			if diff[s] != (ra[s] && !rb[s]) {
				t.Fatalf("diff wrong at %b", s)
			}
		}
		// Join: all pairwise unions.
		join := toRef(m.ToFamily(m.Join(a, b)))
		wantJoin := refFamily{}
		for s := range ra {
			for u := range rb {
				wantJoin[s|u] = true
			}
		}
		if len(join) != len(wantJoin) {
			t.Fatalf("join size %d != %d", len(join), len(wantJoin))
		}
		for s := range wantJoin {
			if !join[s] {
				t.Fatalf("join missing %b", s)
			}
		}
	}
}

func TestJoinIdentities(t *testing.T) {
	m := New(4, nil)
	fam := m.FromFamily([]bitops.Mask{0b0011, 0b0100})
	if m.Join(fam, Unit) != fam || m.Join(Unit, fam) != fam {
		t.Errorf("Unit is not the Join identity")
	}
	if m.Join(fam, Empty) != Empty {
		t.Errorf("Empty does not annihilate Join")
	}
}

func TestChange(t *testing.T) {
	m := New(3, nil)
	fam := m.FromFamily([]bitops.Mask{0b000, 0b011})
	c := m.Change(fam, 0)
	got := toRef(m.ToFamily(c))
	want := toRef([]bitops.Mask{0b001, 0b010})
	for s := range want {
		if !got[s] {
			t.Fatalf("Change missing %b: got %v", s, m.FamilyString(c))
		}
	}
	// Change is an involution.
	if m.Change(c, 0) != fam {
		t.Errorf("Change twice is not identity")
	}
}

func TestZeroSuppressionCanonicity(t *testing.T) {
	// Families over different universe sizes: adding unused elements must
	// not change the diagram node count — the defining ZDD property.
	fam := []bitops.Mask{0b01, 0b10}
	m3 := New(2, nil)
	m8 := New(8, nil)
	f3 := m3.FromFamily(fam)
	f8 := m8.FromFamily(fam)
	if m3.CountNodes(f3) != m8.CountNodes(f8) {
		t.Errorf("ZDD size depends on unused universe elements: %d vs %d",
			m3.CountNodes(f3), m8.CountNodes(f8))
	}
}

func TestLevelCountsMatchDPZDDProfile(t *testing.T) {
	// Cross-check of the dynamic program's ZDD compaction rule
	// (experiment E9): manager level counts equal DP widths.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%5
		tt := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		m := New(n, ord)
		f := m.FromTruthTable(tt)
		got := m.LevelCounts(f)
		want := core.Profile(tt, ord, core.ZDD, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ZDD level %d count %d != DP width %d (f=%s ord=%v)",
					n, i+1, got[i], want[i], tt.Hex(), ord)
			}
		}
	}
}

func TestZDDOptimalMatchesManager(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 3 + trial%4
		tt := truthtable.Random(n, rng)
		res := core.OptimalOrdering(tt, &core.SolveOptions{Rule: core.ZDD})
		m := New(n, res.Ordering)
		f := m.FromTruthTable(tt)
		if m.CountNodes(f) != res.MinCost {
			t.Fatalf("manager ZDD nodes %d != DP MinCost %d", m.CountNodes(f), res.MinCost)
		}
	}
}

func TestFromTruthTableMatchesFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 5
	fam := randomFamily(n, 7, rng)
	tt := truthtable.New(n)
	for _, s := range fam {
		tt.Set(uint64(s), true)
	}
	m := New(n, truthtable.RandomOrdering(n, rng))
	if m.FromTruthTable(tt) != m.FromFamily(fam) {
		t.Errorf("FromTruthTable and FromFamily disagree")
	}
}

func TestFamilyString(t *testing.T) {
	m := New(3, nil)
	f := m.FromFamily([]bitops.Mask{0, 0b101})
	s := m.FamilyString(f)
	if s != "{{}, {x1,x3}}" {
		t.Errorf("FamilyString = %q", s)
	}
}

func TestPanics(t *testing.T) {
	m := New(2, nil)
	for name, fn := range map[string]func(){
		"bad order":   func() { New(2, truthtable.Ordering{1, 1}) },
		"single oob":  func() { m.Single(2) },
		"tt mismatch": func() { m.FromTruthTable(truthtable.New(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDOTOutput(t *testing.T) {
	m := New(2, nil)
	f := m.FromFamily([]bitops.Mask{0b01, 0b10})
	dot := m.DOT(f, "pair")
	for _, want := range []string{"digraph", "x1", "x2", "shape=box", "style=dashed", "ε"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
