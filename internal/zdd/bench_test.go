package zdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

func benchFamilies(n, m int, rng *rand.Rand) ([]bitops.Mask, []bitops.Mask) {
	a := randomFamily(n, m, rng)
	b := randomFamily(n, m, rng)
	return a, b
}

// BenchmarkUnion measures family union over random 14-element families.
func BenchmarkUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := New(14, nil)
	fa, fb := benchFamilies(14, 400, rng)
	x, y := m.FromFamily(fa), m.FromFamily(fb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Union(x, y)
	}
}

// BenchmarkJoin measures Minato's product on moderate families.
func BenchmarkJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New(12, nil)
	fa, fb := benchFamilies(12, 60, rng)
	x, y := m.FromFamily(fa), m.FromFamily(fb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Join(x, y)
	}
}

// BenchmarkFromTruthTable measures the 2^n construction path.
func BenchmarkFromTruthTable(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tt := truthtable.Random(14, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(14, nil)
		m.FromTruthTable(tt)
	}
}
