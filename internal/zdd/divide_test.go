package zdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

func TestSubset01(t *testing.T) {
	m := New(4, nil)
	fam := m.FromFamily([]bitops.Mask{0b0001, 0b0011, 0b0110, 0b0000})
	s1 := m.Subset1(fam, 0)
	want1 := toRef([]bitops.Mask{0b0000, 0b0010})
	got1 := toRef(m.ToFamily(s1))
	if len(got1) != len(want1) {
		t.Fatalf("Subset1 = %v", m.FamilyString(s1))
	}
	for s := range want1 {
		if !got1[s] {
			t.Fatalf("Subset1 missing %b", s)
		}
	}
	s0 := m.Subset0(fam, 0)
	want0 := toRef([]bitops.Mask{0b0110, 0b0000})
	got0 := toRef(m.ToFamily(s0))
	if len(got0) != len(want0) {
		t.Fatalf("Subset0 = %v", m.FamilyString(s0))
	}
	for s := range want0 {
		if !got0[s] {
			t.Fatalf("Subset0 missing %b", s)
		}
	}
	// Partition property: f = Subset0 ∪ Join(Subset1, {{v}}).
	back := m.Union(s0, m.Join(s1, m.Single(0)))
	if back != fam {
		t.Errorf("Subset0/1 do not partition the family")
	}
}

// refDivide computes weak division by definition, for cross-checking.
func refDivide(f, g []bitops.Mask, n int) map[bitops.Mask]bool {
	inF := map[bitops.Mask]bool{}
	for _, s := range f {
		inF[s] = true
	}
	q := map[bitops.Mask]bool{}
	for s := bitops.Mask(0); s < 1<<uint(n); s++ {
		ok := true
		for _, tg := range g {
			if s&tg != 0 || !inF[s|tg] {
				ok = false
				break
			}
		}
		if ok {
			q[s] = true
		}
	}
	return q
}

func TestDivideAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 30; trial++ {
		n := 2 + trial%4
		m := New(n, truthtable.RandomOrdering(n, rng))
		fam := randomFamily(n, 1+rng.Intn(10), rng)
		div := randomFamily(n, 1+rng.Intn(3), rng)
		f := m.FromFamily(fam)
		g := m.FromFamily(div)
		q := m.Divide(f, g)
		want := refDivide(fam, div, n)
		got := toRef(m.ToFamily(q))
		if len(got) != len(want) {
			t.Fatalf("n=%d: quotient %v, want %d members", n, m.FamilyString(q), len(want))
		}
		for s := range want {
			if !got[s] {
				t.Fatalf("quotient missing %b", s)
			}
		}
		// Factorization: f = Join(q, g) ⊎ remainder (disjoint).
		jq := m.Join(q, g)
		rem := m.Remainder(f, g)
		if m.Union(jq, rem) != f {
			t.Fatalf("factorization does not recompose f")
		}
		if m.Intersect(jq, rem) != Empty {
			t.Fatalf("quotient·divisor and remainder overlap")
		}
		if m.Diff(jq, f) != Empty {
			t.Fatalf("Join(q,g) ⊄ f")
		}
	}
}

func TestDivideIdentities(t *testing.T) {
	m := New(3, nil)
	fam := m.FromFamily([]bitops.Mask{0b001, 0b011, 0b101})
	if m.Divide(fam, Unit) != fam {
		t.Errorf("f / {∅} != f")
	}
	if m.Divide(Empty, m.Single(0)) != Empty {
		t.Errorf("∅ / g != ∅")
	}
	// Dividing by {{v}} equals Subset1 on v.
	if m.Divide(fam, m.Single(0)) != m.Subset1(fam, 0) {
		t.Errorf("f / {{v}} != Subset1")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("division by ∅ did not panic")
		}
	}()
	m.Divide(fam, Empty)
}

func TestDivideSelf(t *testing.T) {
	// f / f ⊇ {∅} when f nonempty and f's members can't pair with
	// another nonempty member disjointly… at minimum ∅ ∈ f/f iff every
	// member of f is in f (trivially true): f/f always contains ∅.
	m := New(3, nil)
	fam := m.FromFamily([]bitops.Mask{0b001, 0b010})
	q := m.Divide(fam, fam)
	if !m.Contains(q, 0) {
		t.Errorf("∅ ∉ f/f: %s", m.FamilyString(q))
	}
}
