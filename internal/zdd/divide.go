package zdd

// Minato's algebraic operators on set families: subset extraction and
// weak division, the primitives of ZDD-based logic factorization and
// combinatorics (unate cube-set algebra).

// Subset1 returns {S ∖ {v} : S ∈ f, v ∈ S} — the members containing v,
// with v removed.
func (m *Manager) Subset1(f Node, v int) Node {
	level := uint32(m.levelOfVar[v])
	memo := map[Node]Node{}
	var rec func(Node) Node
	rec = func(g Node) Node {
		if m.level(g) > level {
			return Empty // v cannot occur below its level
		}
		if r, ok := memo[g]; ok {
			return r
		}
		d := m.nodes[g]
		var r Node
		if d.level == level {
			r = d.hi
		} else {
			r = m.mk(d.level, rec(d.lo), rec(d.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Subset0 returns {S ∈ f : v ∉ S} — the members not containing v.
func (m *Manager) Subset0(f Node, v int) Node {
	level := uint32(m.levelOfVar[v])
	memo := map[Node]Node{}
	var rec func(Node) Node
	rec = func(g Node) Node {
		if m.level(g) > level {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		d := m.nodes[g]
		var r Node
		if d.level == level {
			r = d.lo
		} else {
			r = m.mk(d.level, rec(d.lo), rec(d.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Divide returns Minato's weak division f / g: the largest family q with
// Join(q, g) ⊆ f and every member of q disjoint from every member of g.
// Together with Remainder it factorizes f = Join(f/g, g) ∪ rem.
func (m *Manager) Divide(f, g Node) Node {
	switch {
	case g == Empty:
		panic("zdd: division by the empty family")
	case g == Unit:
		return f
	case f == Empty || f == Unit:
		return Empty
	}
	key := opKey{'/', f, g}
	if r, ok := m.opCache[key]; ok {
		return r
	}
	var r Node
	if m.level(f) < m.level(g) {
		// f's top element w is absent from g, so quotient members may
		// contain w freely: split the quotient on w.
		d := m.nodes[f]
		r = m.mk(d.level, m.Divide(d.lo, g), m.Divide(d.hi, g))
	} else {
		// Split on g's top element v (level(g) ≤ level(f), so f's
		// v-cofactors are well defined). Quotient members never contain
		// v (disjointness): q must satisfy q ⋈ g1 ⊆ f1 and q ⋈ g0 ⊆ f0.
		top := m.level(g)
		g0, g1 := m.cofactorsAt(g, top)
		f0, f1 := m.cofactorsAt(f, top)
		r = m.Divide(f1, g1)
		if r != Empty && g0 != Empty {
			r = m.Intersect(r, m.Divide(f0, g0))
		}
	}
	m.opCache[key] = r
	return r
}

// Remainder returns f ∖ Join(f/g, g), completing the weak division
// f = Join(f/g, g) ∪ Remainder(f, g) (a disjoint union).
func (m *Manager) Remainder(f, g Node) Node {
	return m.Diff(f, m.Join(m.Divide(f, g), g))
}
