// Package params numerically reproduces the complexity-parameter tables of
// the divide-and-conquer analysis: the balance equations (8)–(9) whose
// solutions give Table 1 (the exponents γ_k and division fractions α for
// OptOBDD(k, α), k = 1..6), and the composed system (14)–(15) whose fixed
// iteration gives Table 2 (γ = 3 → 2.83728 → … → 2.77286 after ten
// compositions). It also provides the closed-form cost-recurrence
// evaluators used to predict the query/operation curves of experiment E6.
//
// Notation (Sec. 3.2 of the restatement), all logarithms base 2:
//
//	f_γ(x, y) = ½·y·H(x/y) + g_γ(x, y)
//	g_γ(x, y) = (1 − y) + (y − x)·log2 γ
//
// and the system, with α_{k+1} = 1:
//
//	1 − α₁ + H(α₁) = f_γ(α_k, 1)                 (balance with preprocessing)
//	f_γ(α_{j−1}, α_j) = g_γ(α_j, α_{j+1})        (j = 2, …, k)
//
// The resulting exponent is γ_k = 2^{1−α₁+H(α₁)}.
package params

import (
	"errors"
	"fmt"
	"math"

	"obddopt/internal/bitops"
)

// F evaluates f_γ(x, y) = ½·y·H(x/y) + g_γ(x, y) for 0 < x < y ≤ 1.
func F(gamma, x, y float64) float64 {
	return 0.5*y*bitops.Entropy(x/y) + G(gamma, x, y)
}

// G evaluates g_γ(x, y) = (1 − y) + (y − x)·log2 γ.
func G(gamma, x, y float64) float64 {
	return (1 - y) + (y-x)*math.Log2(gamma)
}

// Solution is one row of Table 1 / Table 2: the division fractions and the
// achieved exponent.
type Solution struct {
	// Gamma is the subroutine exponent γ the system was solved against
	// (3 for Table 1; the previous row's result for Table 2).
	Gamma float64
	// K is the number of division points.
	K int
	// Alphas are the solved fractions α₁ < … < α_K.
	Alphas []float64
	// Exponent is the resulting bound exponent: the algorithm runs in
	// O*(Exponent^n). For Table 1 this is γ_k; for Table 2 it is β₆.
	Exponent float64
}

// String formats a solution like the papers' tables (6 digits).
func (s Solution) String() string {
	out := fmt.Sprintf("k=%d γ_in=%.6g exponent=%.5f α=(", s.K, s.Gamma, s.Exponent)
	for i, a := range s.Alphas {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.6f", a)
	}
	return out + ")"
}

// residuals evaluates the k balance equations at α.
func residuals(gamma float64, alpha []float64) []float64 {
	k := len(alpha)
	r := make([]float64, k)
	r[0] = (1 - alpha[0] + bitops.Entropy(alpha[0])) - F(gamma, alpha[k-1], 1)
	for j := 2; j <= k; j++ {
		next := 1.0
		if j < k {
			next = alpha[j]
		}
		r[j-1] = F(gamma, alpha[j-2], alpha[j-1]) - G(gamma, alpha[j-1], next)
	}
	return r
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Solve finds the division fractions for k division points against
// subroutine exponent gamma by damped Newton iteration with a numerical
// Jacobian. It returns an error if the iteration fails to converge to
// residual norm 1e−13, which does not occur for the parameter ranges of
// the tables (γ ∈ [2.7, 3], k ≤ 8).
func Solve(gamma float64, k int) (Solution, error) {
	if k < 1 {
		return Solution{}, errors.New("params: k must be ≥ 1")
	}
	alpha := initialGuess(gamma, k)
	const (
		tol     = 1e-13
		maxIter = 400
	)
	r := residuals(gamma, alpha)
	for iter := 0; iter < maxIter; iter++ {
		if norm(r) < tol {
			return Solution{
				Gamma:    gamma,
				K:        k,
				Alphas:   alpha,
				Exponent: math.Exp2(1 - alpha[0] + bitops.Entropy(alpha[0])),
			}, nil
		}
		J := jacobian(gamma, alpha)
		step, err := solveLinear(J, r)
		if err != nil {
			return Solution{}, fmt.Errorf("params: singular Jacobian at iter %d: %w", iter, err)
		}
		// Damped update: halve the step until the residual improves and
		// the iterate stays feasible (0 < α₁ < … < α_k < 1).
		lambda := 1.0
		for {
			cand := make([]float64, k)
			for i := range cand {
				cand[i] = alpha[i] - lambda*step[i]
			}
			if feasible(cand) {
				if rc := residuals(gamma, cand); norm(rc) < norm(r) {
					alpha, r = cand, rc
					break
				}
			}
			lambda /= 2
			if lambda < 1e-12 {
				return Solution{}, errors.New("params: Newton line search stalled")
			}
		}
	}
	return Solution{}, errors.New("params: Newton did not converge")
}

func feasible(a []float64) bool {
	prev := 0.0
	for _, x := range a {
		if x <= prev || x >= 1 {
			return false
		}
		prev = x
	}
	return true
}

// initialGuess seeds Newton. The table solutions have a characteristic
// shape — nearly equal small fractions with a geometric ramp at the end —
// so a fixed profile scaled into (0.1, 0.4) converges for all table rows.
func initialGuess(gamma float64, k int) []float64 {
	_ = gamma
	a := make([]float64, k)
	for i := range a {
		t := float64(i) / float64(k)
		a[i] = 0.18 + 0.17*math.Pow(t, 3)
	}
	// Enforce strict monotonicity for small k.
	for i := 1; i < k; i++ {
		if a[i] <= a[i-1] {
			a[i] = a[i-1] + 1e-4
		}
	}
	return a
}

// jacobian computes ∂r/∂α by central differences.
func jacobian(gamma float64, alpha []float64) [][]float64 {
	k := len(alpha)
	J := make([][]float64, k)
	for i := range J {
		J[i] = make([]float64, k)
	}
	const h = 1e-7
	for j := 0; j < k; j++ {
		plus := append([]float64{}, alpha...)
		minus := append([]float64{}, alpha...)
		plus[j] += h
		minus[j] -= h
		rp := residuals(gamma, plus)
		rm := residuals(gamma, minus)
		for i := 0; i < k; i++ {
			J[i][j] = (rp[i] - rm[i]) / (2 * h)
		}
	}
	return J
}

// solveLinear solves J·x = r by Gaussian elimination with partial pivoting.
func solveLinear(J [][]float64, r []float64) ([]float64, error) {
	k := len(r)
	a := make([][]float64, k)
	for i := range a {
		a[i] = append(append([]float64{}, J[i]...), r[i])
	}
	for col := 0; col < k; col++ {
		piv := col
		for row := col + 1; row < k; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[piv][col]) {
				piv = row
			}
		}
		if math.Abs(a[piv][col]) < 1e-15 {
			return nil, errors.New("pivot ≈ 0")
		}
		a[col], a[piv] = a[piv], a[col]
		for row := col + 1; row < k; row++ {
			fac := a[row][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[row][c] -= fac * a[col][c]
			}
		}
	}
	x := make([]float64, k)
	for row := k - 1; row >= 0; row-- {
		s := a[row][k]
		for c := row + 1; c < k; c++ {
			s -= a[row][c] * x[c]
		}
		x[row] = s / a[row][row]
	}
	return x, nil
}

// Table1 reproduces Table 1 of the restatement: for each k = 1..maxK
// (paper: 6) the solution of the system against γ = 3 (the classical FS*
// subroutine). Expected exponents: 2.97625, 2.85690, 2.83925, 2.83744,
// 2.83729, 2.83728.
func Table1(maxK int) ([]Solution, error) {
	out := make([]Solution, 0, maxK)
	for k := 1; k <= maxK; k++ {
		s, err := Solve(3, k)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Table2 reproduces Table 2: starting from γ = 3, repeatedly solve the
// k = 6 system against the previous exponent (the composition of
// Theorems 10–13). Ten rounds reach 2.77286, the bound of Theorem 13.
func Table2(rounds int) ([]Solution, error) {
	gamma := 3.0
	out := make([]Solution, 0, rounds)
	for i := 0; i < rounds; i++ {
		s, err := Solve(gamma, 6)
		if err != nil {
			return nil, fmt.Errorf("round %d (γ=%v): %w", i, gamma, err)
		}
		out = append(out, s)
		gamma = s.Exponent
	}
	return out, nil
}

// CompositionFixedPoint iterates Table 2 until the exponent change drops
// below tol, returning the final solution and the number of rounds. The
// fixed point is the true limit of the composition scheme (≈ 2.772853…),
// which the papers truncate at 2.77286 after ten rounds.
func CompositionFixedPoint(tol float64, maxRounds int) (Solution, int, error) {
	gamma := 3.0
	var last Solution
	for i := 0; i < maxRounds; i++ {
		s, err := Solve(gamma, 6)
		if err != nil {
			return Solution{}, i, err
		}
		last = s
		if math.Abs(s.Exponent-gamma) < tol {
			return last, i + 1, nil
		}
		gamma = s.Exponent
	}
	return last, maxRounds, errors.New("params: composition did not reach the fixed point")
}

// SimpleSplit reproduces the two single-split bounds of §3.1:
// γ₀ = 2.98581 (no preprocessing, α ≈ 0.269577) and γ₁ = 2.97625 (with
// preprocessing, α ≈ 0.274863 — the k = 1 row of Table 1).
func SimpleSplit() (gamma0, alpha0, gamma1, alpha1 float64) {
	l3 := math.Log2(3)
	alpha0 = (l3 - 1) / (2*l3 - 1)
	gamma0 = math.Exp2(0.5*bitops.Entropy(alpha0) + (1-alpha0)*l3)
	s, err := Solve(3, 1)
	if err != nil {
		panic("params: k=1 solve failed: " + err.Error())
	}
	return gamma0, alpha0, s.Exponent, s.Alphas[0]
}

// PredictedLogCost returns log2 of the dominant term of the cost
// recurrence (5)–(7) at input size n for a solved parameter set — the
// curve experiment E6 compares metered costs against. For a balanced
// solution every term equals the exponent, so this is n·log2(exponent).
func PredictedLogCost(s Solution, n int) float64 {
	return float64(n) * math.Log2(s.Exponent)
}

// ClassicalLogCosts returns log2 of the FS bound 3^n and of the brute-force
// bound n!·2^n for reporting alongside the quantum predictions.
func ClassicalLogCosts(n int) (fs, brute float64) {
	fs = float64(n) * math.Log2(3)
	brute = float64(n)
	for i := 2; i <= n; i++ {
		brute += math.Log2(float64(i))
	}
	return fs, brute
}
