package params

import (
	"math"
	"testing"
)

// Table 1 of the restatement, 6-digit values.
var wantTable1 = []struct {
	gamma  float64
	alphas []float64
}{
	{2.97625, []float64{0.274862}},
	{2.85690, []float64{0.192754, 0.334571}},
	{2.83925, []float64{0.184664, 0.205128, 0.342677}},
	{2.83744, []float64{0.183859, 0.186017, 0.206375, 0.343503}},
	{2.83729, []float64{0.183795, 0.183967, 0.186125, 0.206474, 0.343569}},
	{2.83728, []float64{0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573}},
}

func TestTable1ReproducesPaper(t *testing.T) {
	rows, err := Table1(6)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	for i, row := range rows {
		want := wantTable1[i]
		// The k=2 row of the published table reads 2.85690, but the
		// paper's own Appendix B quotes γ₂ = 2.8569 and the solved α
		// vector (which matches ours to all six printed digits) yields
		// 2.856887 — the table padded 2.8569 with a trailing zero. Allow
		// that half-ulp of the 5-digit value.
		tol := 6e-6
		if i == 1 {
			tol = 2e-5
		}
		if math.Abs(row.Exponent-want.gamma) > tol {
			t.Errorf("k=%d: γ = %.6f, want %.5f", i+1, row.Exponent, want.gamma)
		}
		if len(row.Alphas) != len(want.alphas) {
			t.Fatalf("k=%d: %d alphas", i+1, len(row.Alphas))
		}
		for j, a := range row.Alphas {
			if math.Abs(a-want.alphas[j]) > 5e-6 {
				t.Errorf("k=%d α_%d = %.6f, want %.6f", i+1, j+1, a, want.alphas[j])
			}
		}
	}
}

// Table 2 of the restatement: the β₆ column over ten composition rounds.
var wantTable2Exponents = []float64{
	2.83728, 2.79364, 2.77981, 2.77521, 2.77366,
	2.77313, 2.77295, 2.77289, 2.77287, 2.77286,
}

func TestTable2ReproducesPaper(t *testing.T) {
	rows, err := Table2(10)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, row := range rows {
		if math.Abs(row.Exponent-wantTable2Exponents[i]) > 6e-6 {
			t.Errorf("round %d: β₆ = %.6f, want %.5f", i+1, row.Exponent, wantTable2Exponents[i])
		}
	}
	// Final-round alphas (last row of Table 2).
	wantAlphas := []float64{0.157910, 0.157914, 0.157990, 0.159230, 0.174208, 0.299109}
	last := rows[9]
	for j, a := range last.Alphas {
		if math.Abs(a-wantAlphas[j]) > 5e-6 {
			t.Errorf("final α_%d = %.6f, want %.6f", j+1, a, wantAlphas[j])
		}
	}
}

func TestTheorem13Bound(t *testing.T) {
	// The headline claim: the tenth composition is below 2.77286 (up to
	// the papers' rounding).
	rows, err := Table2(10)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if rows[9].Exponent > 2.772865 {
		t.Errorf("tenth composition exponent %.6f exceeds the Theorem 13 bound 2.77286", rows[9].Exponent)
	}
	// And it beats the classical 3^n as well as every earlier row.
	prev := 3.0
	for i, r := range rows {
		if r.Exponent >= prev {
			t.Errorf("round %d did not improve: %.6f ≥ %.6f", i+1, r.Exponent, prev)
		}
		prev = r.Exponent
	}
}

func TestCompositionFixedPoint(t *testing.T) {
	s, rounds, err := CompositionFixedPoint(1e-10, 200)
	if err != nil {
		t.Fatalf("fixed point: %v", err)
	}
	if rounds < 10 {
		t.Errorf("fixed point reached suspiciously fast: %d rounds", rounds)
	}
	// The limit is just below the 2.77286 truncation.
	if s.Exponent > 2.77286 || s.Exponent < 2.7727 {
		t.Errorf("fixed-point exponent %.7f outside expected range", s.Exponent)
	}
}

func TestSimpleSplit(t *testing.T) {
	g0, a0, g1, a1 := SimpleSplit()
	if math.Abs(g0-2.98581) > 1e-4 {
		t.Errorf("γ₀ = %.6f, want 2.98581", g0)
	}
	if math.Abs(a0-0.269577) > 1e-5 {
		t.Errorf("α₀ = %.6f, want 0.269577", a0)
	}
	if math.Abs(g1-2.97625) > 1e-4 {
		t.Errorf("γ₁ = %.6f, want 2.97625", g1)
	}
	if math.Abs(a1-0.274862) > 1e-5 {
		t.Errorf("α₁* = %.6f, want 0.274862", a1)
	}
	if !(g1 < g0 && g0 < 3) {
		t.Errorf("ordering of bounds violated: %v %v", g0, g1)
	}
}

func TestResidualsVanishAtSolution(t *testing.T) {
	s, err := Solve(3, 4)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i, r := range residuals(3, s.Alphas) {
		if math.Abs(r) > 1e-12 {
			t.Errorf("residual %d = %v at claimed solution", i, r)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(3, 0); err == nil {
		t.Errorf("k=0 should error")
	}
}

func TestFGConsistency(t *testing.T) {
	// f(x,y) − g(x,y) = ½·y·H(x/y) ≥ 0, zero iff x=y or x=0.
	for _, xy := range [][2]float64{{0.1, 0.3}, {0.2, 0.5}, {0.15, 1}} {
		x, y := xy[0], xy[1]
		d := F(3, x, y) - G(3, x, y)
		if d < 0 {
			t.Errorf("f−g negative at (%v,%v)", x, y)
		}
	}
	if F(3, 0.3, 0.3)-G(3, 0.3, 0.3) != 0 {
		t.Errorf("f−g should vanish at x=y")
	}
	// g decreases in γ for y > x: smaller subroutine exponent is cheaper.
	if !(G(2.8, 0.1, 0.5) < G(3, 0.1, 0.5)) {
		t.Errorf("g not monotone in γ")
	}
}

func TestPredictedLogCost(t *testing.T) {
	s, err := Solve(3, 6)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	got := PredictedLogCost(s, 10)
	want := 10 * math.Log2(s.Exponent)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictedLogCost = %v, want %v", got, want)
	}
	fs, brute := ClassicalLogCosts(10)
	if math.Abs(fs-10*math.Log2(3)) > 1e-12 {
		t.Errorf("fs log cost wrong: %v", fs)
	}
	// n!·2^n for n=10: log2(3628800) + 10 ≈ 31.79.
	if math.Abs(brute-(math.Log2(3628800)+10)) > 1e-9 {
		t.Errorf("brute log cost wrong: %v", brute)
	}
	// Quantum beats classical FS for this solution.
	if got >= fs {
		t.Errorf("quantum prediction %v not below classical %v", got, fs)
	}
}
