package analysis_test

import (
	"strings"
	"testing"

	"obddopt/internal/analysis"
	"obddopt/internal/analysis/analysistest"
)

// TestAnalyzers runs every analyzer over its golden fixture package and
// checks the findings against the // want expectations embedded there.
// Each fixture contains, per rule: at least one violation that must be
// flagged, the sanctioned pattern that must stay silent, and a
// //lint:allow-suppressed site that must also stay silent.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		dir string
		a   *analysis.Analyzer
	}{
		{"meterbalance", analysis.MeterBalance},
		{"arenaowner", analysis.ArenaOwner},
		{"pooldiscipline", analysis.PoolDiscipline},
		{"atomicfield", analysis.AtomicField},
		{"ctxcheckpoint", analysis.CtxCheckpoint},
		{"nopanic", analysis.NoPanic},
		{"tracesafe", analysis.TraceSafe},
		{"solverregistry", analysis.SolverRegistry},
		// A second, entirely non-flagging solverregistry fixture: a test
		// sweeping SolverNames() under cancellation covers all names.
		{"solverregistry_sweep", analysis.SolverRegistry},
	}
	for _, tc := range tests {
		t.Run(tc.dir, func(t *testing.T) {
			analysistest.Run(t, "testdata/src/"+tc.dir, tc.a)
		})
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	all := analysis.All()
	if len(all) != 8 {
		t.Fatalf("All() returned %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
		got, ok := analysis.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want the analyzer itself", a.Name, got, ok)
		}
	}
	for _, name := range []string{
		"meterbalance", "arenaowner", "pooldiscipline", "atomicfield",
		"ctxcheckpoint", "nopanic", "tracesafe", "solverregistry",
	} {
		if !seen[name] {
			t.Errorf("analyzer %q missing from All()", name)
		}
	}
	if _, ok := analysis.ByName("nosuchrule"); ok {
		t.Error("ByName accepted an unknown analyzer name")
	}
}

func TestFindingString(t *testing.T) {
	f := analysis.Finding{Analyzer: "nopanic", Message: "panic in library code"}
	f.Pos.Filename = "internal/core/fs.go"
	f.Pos.Line = 42
	f.Pos.Column = 7
	got := f.String()
	for _, part := range []string{"internal/core/fs.go:42:7", "[nopanic]", "panic in library code"} {
		if !strings.Contains(got, part) {
			t.Errorf("Finding.String() = %q, missing %q", got, part)
		}
	}
}
