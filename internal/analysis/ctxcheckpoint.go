package analysis

import (
	"go/ast"
)

// CtxCheckpoint enforces the cooperative-cancellation contract of the
// solver engine: work under a deadline or budget must stop within one
// DP transition / node expansion of the signal, which requires that
//
//   - solver code threads the caller's context instead of minting its
//     own: context.Background() and context.TODO() are forbidden inside
//     the solver packages (the sanctioned nil-context compatibility shim
//     carries an allow directive);
//   - exported entry points named *Ctx accept a context.Context, and any
//     function taking a context takes it as the first parameter, so the
//     context is visibly threaded top-down;
//   - every unbounded loop (`for { ... }`) contains a cancellation
//     checkpoint: a limiter check/spend/stopped call, a ctxStopped /
//     ctxDone helper, a ctx.Done() receive, or a select statement.
//
// Bounded loops (`for i := ...; cond; ...` and range loops) are exempt:
// the engine's promptness contract is stated per transition, and those
// loops sit inside checkpointed outer loops.
var CtxCheckpoint = &Analyzer{
	Name: "ctxcheckpoint",
	Doc: "enforce context threading in solver packages: no context.Background/TODO, " +
		"ctx-first signatures for *Ctx entry points, and a cancellation checkpoint in every unbounded loop",
	Run: runCtxCheckpoint,
}

// checkpointFuncNames are the callables whose presence inside a loop body
// counts as a cooperative checkpoint.
var checkpointFuncNames = map[string]bool{
	"check":      true, // (*limiter).check
	"spend":      true, // (*limiter).spend
	"stopped":    true, // (*limiter).stopped
	"ctxStopped": true, // quantum's nil-safe poll
	"ctxDone":    true, // heuristics' nil-safe poll
	"Done":       true, // raw <-ctx.Done()
	"Err":        true, // ctx.Err() != nil polls
}

func runCtxCheckpoint(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Binaries own their root context; minting one there is the
		// point, not a violation.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name, ok := pkgFuncCall(pass.TypesInfo, n); ok && pkg == "context" &&
					(name == "Background" || name == "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s inside a solver package: thread the caller's ctx down instead (nil-context shims need //lint:allow ctxcheckpoint <why>)",
						name)
				}
			case *ast.FuncDecl:
				checkCtxSignature(pass, n)
			case *ast.ForStmt:
				if n.Cond == nil && !hasCheckpoint(n.Body) {
					pass.Reportf(n.Pos(),
						"unbounded loop without a cancellation checkpoint: poll the limiter (check/spend/stopped) or ctx.Done() once per iteration")
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxSignature flags *Ctx entry points without a context and any
// signature where the context is not the first parameter.
func checkCtxSignature(pass *Pass, fd *ast.FuncDecl) {
	params := fd.Type.Params
	ctxIndex := -1
	if params != nil {
		flat := 0
		for _, field := range params.List {
			isCtx := isContextParamField(field)
			if !isCtx {
				if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
					isCtx = isContextType(tv.Type)
				}
			}
			names := len(field.Names)
			if names == 0 {
				names = 1
			}
			if isCtx && ctxIndex < 0 {
				ctxIndex = flat
			}
			flat += names
		}
	}
	name := fd.Name.Name
	exported := ast.IsExported(name)
	if exported && len(name) > 3 && name[len(name)-3:] == "Ctx" && ctxIndex != 0 {
		pass.Reportf(fd.Pos(),
			"exported entry point %s must accept a context.Context as its first parameter", name)
		return
	}
	if ctxIndex > 0 {
		pass.Reportf(fd.Pos(),
			"%s takes a context.Context but not as the first parameter; keep ctx first so threading is auditable", name)
	}
}

// hasCheckpoint reports whether the loop body contains a cooperative
// cancellation checkpoint.
func hasCheckpoint(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			// Event loops block on channels; any select is a yield
			// point the race coordinator can cancel through.
			found = true
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if checkpointFuncNames[fun.Sel.Name] {
					found = true
				}
			case *ast.Ident:
				if checkpointFuncNames[fun.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
