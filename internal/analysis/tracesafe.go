package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TraceSafe enforces the nil-safe tracing contract of internal/obs: a nil
// Tracer disables tracing, so every solver holds an interface value that
// is nil on the hot path, and every Emit must sit behind a nil check (or
// go through a nil-safe wrapper such as quantum's emitBatch). An
// unguarded Emit works in every traced test and then panics in production
// the first time a run is started without tracing.
//
// A call x.Emit(...) on a Tracer-typed interface value is accepted when
// the enclosing top-level function contains a nil comparison of the same
// expression (`x != nil` guard, or an `x == nil` early return) lexically
// before the call. The obs package itself — home of the wrappers and the
// concrete tracer implementations — is exempt.
//
// The same contract covers the other observability value types that flow
// as possibly-nil pointers: Record / RecordDuration on a *Histogram and
// Event on a *Span (obs.SpanFromContext returns nil when no span is
// attached, so span handles are nil on every untraced path). Calls chained
// directly onto another call — obs.Hist(...).Record(v) — are accepted:
// the registry getters and constructors never return nil, and that
// guarantee is exactly why the chained form is the recommended idiom.
var TraceSafe = &Analyzer{
	Name: "tracesafe",
	Doc: "forbid Emit on possibly-nil Tracer values, and Record/RecordDuration/Event on " +
		"possibly-nil *Histogram / *Span handles, outside a nil check or a nil-safe wrapper",
	Run: runTraceSafe,
}

// traceSafeTarget classifies a method call as one of the guarded
// observability call shapes, returning the noun used in diagnostics ("",
// when the call is not covered by the contract).
func traceSafeTarget(pass *Pass, sel *ast.SelectorExpr) string {
	switch sel.Sel.Name {
	case "Emit":
		if isTracerInterface(pass, sel.X) {
			return "tracer"
		}
	case "Record", "RecordDuration":
		if isObsPointer(pass, sel.X, "Histogram") {
			return "histogram"
		}
	case "Event":
		if isObsPointer(pass, sel.X, "Span") {
			return "span"
		}
	}
	return ""
}

func runTraceSafe(pass *Pass) error {
	if strings.HasSuffix(pass.Path, "internal/obs") {
		return nil
	}
	for _, file := range pass.Files {
		// nilChecks maps the printed form of an expression to the
		// positions where it is compared against nil.
		nilChecks := make(map[string][]token.Pos)
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			other := be.X
			if id, ok := be.Y.(*ast.Ident); !ok || id.Name != "nil" {
				if id, ok := be.X.(*ast.Ident); ok && id.Name == "nil" {
					other = be.Y
				} else {
					return true
				}
			}
			key := exprText(other)
			nilChecks[key] = append(nilChecks[key], be.Pos())
			return true
		})

		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := traceSafeTarget(pass, sel)
			if kind == "" {
				return true
			}
			if _, chained := sel.X.(*ast.CallExpr); chained && kind != "tracer" {
				// obs.Hist(...).Record(v) and friends: the getters are
				// documented never to return nil.
				return true
			}
			_, outer := enclosingFuncs(stack)
			if outer == nil {
				return true
			}
			key := exprText(sel.X)
			guarded := false
			for _, pos := range nilChecks[key] {
				if pos >= outer.Pos() && pos < call.Pos() {
					guarded = true
					break
				}
			}
			if !guarded {
				pass.Reportf(call.Pos(),
					"%s on possibly-nil %s %s without a nil check in the enclosing function; guard with `if %s != nil` or route through a nil-safe wrapper",
					sel.Sel.Name, kind, key, key)
			}
			return true
		})
	}
	return nil
}

// isTracerInterface reports whether the static type of e is an interface
// named Tracer (obs.Tracer, or a structurally identical local double in
// fixtures). Concrete tracer implementations (*Recorder, *Progress) are
// excluded: calling Emit on a value of concrete type is ordinary use.
func isTracerInterface(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj().Name() != "Tracer" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

// isObsPointer reports whether the static type of e is a pointer to a
// named struct called name ("Histogram", "Span") — obs's handle types, or
// structurally identical local doubles in fixtures. A non-pointer value of
// those types cannot be nil and is not flagged.
func isObsPointer(pass *Pass, e ast.Expr, name string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := types.Unalias(tv.Type).(*types.Pointer)
	if !ok {
		return false
	}
	return namedTypeName(ptr.Elem()) == name
}
