package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicField enforces all-or-nothing atomicity on struct fields: a
// field that is accessed through a sync/atomic function anywhere in the
// package (atomic.AddUint64(&s.f, 1), atomic.LoadUint32(&s.f), …) must
// be accessed that way everywhere — one plain read or write racing with
// the atomic users is a data race the race detector only catches on the
// schedules that happen to collide.
//
// The check is two-pass and package-wide rather than path-sensitive:
// pass one collects every struct field whose address is taken by a
// sync/atomic call; pass two reports every other access to those fields
// (reads, writes, compound assignments) that does not go through
// sync/atomic. Fields of the typed atomic.Uint64 / atomic.Int64 /
// atomic.Value family are immune by construction — the type system
// already forbids plain access — and are the recommended fix.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "report struct fields accessed both through sync/atomic functions and plainly: a field " +
		"used atomically anywhere must be used atomically everywhere (or become a typed atomic.*)",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: fields addressed by sync/atomic calls, and the exact
	// selector nodes inside those calls (legitimate accesses).
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic site
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fld := fieldVar(pass, sel)
				if fld == nil {
					continue
				}
				sanctioned[sel] = true
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a racing plain
	// access.
	type plainAccess struct {
		pos token.Pos
		fld *types.Var
	}
	var plains []plainAccess
	for _, file := range pass.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fld := fieldVar(pass, sel)
			if fld == nil {
				return true
			}
			if _, ok := atomicFields[fld]; ok {
				plains = append(plains, plainAccess{pos: sel.Pos(), fld: fld})
			}
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
	for _, p := range plains {
		pass.Reportf(p.pos,
			"plain access to field %s, which is accessed with sync/atomic at line %d: a field used "+
				"atomically anywhere must be used atomically everywhere (or become a typed atomic.*)",
			p.fld.Name(), pass.Fset.Position(atomicFields[p.fld]).Line)
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a function of package
// sync/atomic (atomic.AddUint64, atomic.LoadUint32, …).
func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
