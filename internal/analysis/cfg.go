package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file builds the intraprocedural control-flow graphs the dataflow
// analyzers (meterbalance, arenaowner, pooldiscipline) run on. It is the
// stdlib mirror of golang.org/x/tools/go/cfg, specialized to what the
// engine contracts need:
//
//   - structured statements are decomposed: a block holds only simple
//     statements and the expression parts of control headers (an if
//     condition, a range operand, a switch tag), never a statement whose
//     body belongs to another block — so a transfer function can
//     ast.Inspect every node of a block without double-visiting;
//   - returns edge into one synthetic Exit block and panic-shaped
//     terminators (panic, os.Exit, log.Fatal*, runtime.Goexit) into a
//     separate Panic block, so analyzers can demand release-on-return
//     while exempting paths the runtime tears down anyway;
//   - a function body that can fall off its end gets a synthetic bare
//     ReturnStmt (positioned at the closing brace), so "every exit path"
//     uniformly means "every node that is a *ast.ReturnStmt";
//   - defer statements appear in their block (they execute their
//     arguments in path order) and are additionally recorded in
//     CFG.Defers, so an exit check can replay deferred releases.
//
// Nested function literals are NOT traversed: a FuncLit is one opaque
// node of its enclosing block, and callers build a separate CFG for its
// body (see funcCFGs).

// BlockKind classifies the special blocks of a CFG.
type BlockKind uint8

const (
	// BlockBody is an ordinary straight-line block.
	BlockBody BlockKind = iota
	// BlockEntry is the function entry (always Blocks[0], no nodes).
	BlockEntry
	// BlockExit collects every normal return path (no nodes).
	BlockExit
	// BlockPanic collects every panic-terminated path (no nodes).
	BlockPanic
)

func (k BlockKind) String() string {
	switch k {
	case BlockEntry:
		return "entry"
	case BlockExit:
		return "exit"
	case BlockPanic:
		return "panic"
	}
	return "body"
}

// Block is one basic block: a maximal run of simple nodes with a single
// entry and a set of successor edges.
type Block struct {
	Index int
	Kind  BlockKind
	// Nodes holds, in execution order, the simple statements of the block
	// and the expression parts of any control headers (conditions, range
	// operands, switch tags, case expressions).
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Panic is non-nil only when at least one path terminates in a
	// panic-shaped call.
	Panic *Block
	// Defers lists every defer statement of the body in source order.
	// A path-sensitive exit check replays their release effects before
	// judging the fact at a return.
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the state of one BuildCFG run.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopFrame
	// labels maps a label name to its pending goto target and loop frame.
	labels map[string]*labelInfo
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type labelInfo struct {
	// target is the block a goto to this label jumps to; created lazily
	// for forward gotos and wired when the label is reached.
	target *Block
	placed bool
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelInfo{}}
	entry := b.newBlock(BlockEntry)
	exit := b.newBlock(BlockExit)
	b.cfg.Entry, b.cfg.Exit = entry, exit
	b.cur = b.newBlock(BlockBody)
	b.edge(entry, b.cur)
	b.stmtList(body.List)
	// A body that can still fall through exits with an implicit bare
	// return; synthesize one so exit checks see a ReturnStmt on every
	// normal path.
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, &ast.ReturnStmt{Return: body.Rbrace})
		b.edge(b.cur, exit)
	}
	// Drop unreachable empty blocks the builder created after terminators
	// (removal can cascade through empty chains), then renumber.
	for {
		blocks := b.cfg.Blocks[:0]
		pruned := false
		for _, blk := range b.cfg.Blocks {
			if blk.Kind == BlockBody && len(blk.Preds) == 0 && len(blk.Nodes) == 0 {
				for _, s := range blk.Succs {
					s.Preds = removeBlock(s.Preds, blk)
				}
				pruned = true
				continue
			}
			blocks = append(blocks, blk)
		}
		b.cfg.Blocks = blocks
		if !pruned {
			break
		}
	}
	for i, blk := range b.cfg.Blocks {
		blk.Index = i
	}
	return b.cfg
}

func removeBlock(list []*Block, b *Block) []*Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

func (b *cfgBuilder) newBlock(kind BlockKind) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a simple node to the current block (no-op after a
// terminator made the path dead).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// panicBlock lazily creates the shared panic exit.
func (b *cfgBuilder) panicBlock() *Block {
	if b.cfg.Panic == nil {
		b.cfg.Panic = b.newBlock(BlockPanic)
	}
	return b.cfg.Panic
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the pending label when the
// statement is the body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	if b.cur == nil {
		// Dead code after a terminator still needs a block so inner
		// labels/gotos resolve; it has no predecessors and the solver
		// treats it as unreachable.
		b.cur = b.newBlock(BlockBody)
	}
	switch s := s.(type) {
	case *ast.LabeledStmt:
		name := s.Label.Name
		li := b.labelFor(name)
		// The label's target is the start of the labeled statement.
		target := b.startNewBlock()
		if li.placed {
			// Duplicate label: malformed source; ignore.
		} else {
			// Wire any earlier gotos that jumped forward to this label.
			if li.target != nil {
				b.edge(li.target, target)
			}
			li.target = target
			li.placed = true
		}
		b.stmt(s.Stmt, name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock(BlockBody)
		// Then branch.
		thenBlk := b.newBlock(BlockBody)
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		// Else branch (or fallthrough to join).
		if s.Else != nil {
			elseBlk := b.newBlock(BlockBody)
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startNewBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		condBlk := b.cur
		body := b.newBlock(BlockBody)
		after := b.newBlock(BlockBody)
		post := b.newBlock(BlockBody)
		b.edge(condBlk, body)
		if s.Cond != nil {
			b.edge(condBlk, after)
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, post)
		b.loops = b.loops[:len(b.loops)-1]
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startNewBlock()
		// The head performs the per-iteration key/value assignment; the
		// range operand was evaluated once above.
		if s.Key != nil {
			b.add(&ast.AssignStmt{Lhs: rangeLhs(s), Tok: s.Tok, TokPos: s.TokPos, Rhs: []ast.Expr{&ast.Ident{Name: "range", NamePos: s.For}}})
		}
		headBlk := b.cur
		body := b.newBlock(BlockBody)
		after := b.newBlock(BlockBody)
		b.edge(headBlk, body)
		b.edge(headBlk, after)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes
		}, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Node { return nil }, true)

	case *ast.SelectStmt:
		clauses := make([]ast.Stmt, len(s.Body.List))
		copy(clauses, s.Body.List)
		b.commClauses(clauses, label)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.edge(b.cur, b.panicBlock())
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, BadStmt:
		// simple nodes.
		b.add(s)
	}
}

// rangeLhs collects the assignable operands of a range head.
func rangeLhs(s *ast.RangeStmt) []ast.Expr {
	lhs := []ast.Expr{s.Key}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	return lhs
}

// startNewBlock ends the current block with a fallthrough edge into a
// fresh one and returns the fresh block (the target for loop back edges
// and labels).
func (b *cfgBuilder) startNewBlock() *Block {
	next := b.newBlock(BlockBody)
	b.edge(b.cur, next)
	b.cur = next
	return next
}

// caseClauses lowers a (type) switch body: every clause block branches
// from the header, falls out to a shared join, and fallthrough edges link
// consecutive clause bodies. breakable installs a break frame.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, caseNodes func(*ast.CaseClause) []ast.Node, breakable bool) {
	header := b.cur
	join := b.newBlock(BlockBody)
	if breakable {
		b.loops = append(b.loops, loopFrame{label: label, breakTo: join})
		defer func() { b.loops = b.loops[:len(b.loops)-1] }()
	}
	hasDefault := false
	var prevBody *Block // for fallthrough
	var pendingFallthrough bool
	for _, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clause := b.newBlock(BlockBody)
		b.edge(header, clause)
		if pendingFallthrough && prevBody != nil {
			b.edge(prevBody, clause)
		}
		b.cur = clause
		for _, n := range caseNodes(cc) {
			b.add(n)
		}
		pendingFallthrough = false
		for _, inner := range cc.Body {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				pendingFallthrough = true
				continue
			}
			b.stmt(inner, "")
		}
		prevBody = b.cur
		b.edge(b.cur, join)
	}
	if !hasDefault {
		b.edge(header, join)
	}
	b.cur = join
}

// commClauses lowers a select body.
func (b *cfgBuilder) commClauses(list []ast.Stmt, label string) {
	header := b.cur
	join := b.newBlock(BlockBody)
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join})
	defer func() { b.loops = b.loops[:len(b.loops)-1] }()
	hasDefault := false
	for _, cs := range list {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		clause := b.newBlock(BlockBody)
		b.edge(header, clause)
		b.cur = clause
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	// A select with no default still always takes one of its clauses, so
	// no header→join edge; with zero clauses it blocks forever.
	_ = hasDefault
	b.cur = join
}

// branch lowers break/continue/goto.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if s.Label == nil || fr.label == s.Label.Name {
				b.edge(b.cur, fr.breakTo)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if fr.continueTo == nil {
				continue // switch/select frames are not continuable
			}
			if s.Label == nil || fr.label == s.Label.Name {
				b.edge(b.cur, fr.continueTo)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			li := b.labelFor(s.Label.Name)
			if li.placed {
				b.edge(b.cur, li.target)
			} else {
				// Forward goto: route through a placeholder join that the
				// label wires up when reached.
				if li.target == nil {
					li.target = b.newBlock(BlockBody)
				}
				b.edge(b.cur, li.target)
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by caseClauses; a stray one ends the path.
		b.cur = nil
	}
}

func (b *cfgBuilder) labelFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// isTerminatingCall reports whether an expression statement is a call
// that never returns: panic, os.Exit, runtime.Goexit, log.Fatal*.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}

// String renders the CFG compactly for tests and debugging:
//
//	0 entry → 2
//	2 [x := f(); x.Close()] → 1
//	1 exit
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "%d", blk.Index)
		if blk.Kind != BlockBody {
			fmt.Fprintf(&sb, " %s", blk.Kind)
		}
		if len(blk.Nodes) > 0 {
			sb.WriteString(" [")
			for i, n := range blk.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(nodeText(n))
			}
			sb.WriteString("]")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" →")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeText renders one CFG node on a single line, truncated.
func nodeText(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), n); err != nil {
		return fmt.Sprintf("%T", n)
	}
	s := buf.String()
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// funcCFGs builds the CFG of fd's body plus one CFG per nested function
// literal (each literal analyzed as its own function). The returned map
// carries the function type of each body so exit checks can resolve named
// results and carrier returns.
type funcGraph struct {
	cfg *CFG
	typ *ast.FuncType
	// name identifies the function in diagnostics ("runDP", "func literal").
	name string
}

func funcCFGs(fd *ast.FuncDecl) []funcGraph {
	if fd.Body == nil {
		return nil
	}
	graphs := []funcGraph{{cfg: buildWithoutLits(fd.Body), typ: fd.Type, name: fd.Name.Name}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			graphs = append(graphs, funcGraph{cfg: buildWithoutLits(lit.Body), typ: lit.Type, name: fd.Name.Name + ": func literal"})
		}
		return true
	})
	return graphs
}

// buildWithoutLits is BuildCFG; the builder already treats a FuncLit as
// one opaque node (it never descends into nested bodies through stmt —
// literals only appear inside expressions, which are added whole).
func buildWithoutLits(body *ast.BlockStmt) *CFG {
	return BuildCFG(body)
}
