package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ArenaOwner enforces the block-ownership discipline behind the arena's
// recycling contract (internal/core/arena): every []uint32 block a
// function obtains with (*Arena).GetU32 must, on every path to every
// return, be either
//
//   - put back with (*Arena).PutU32 (directly or via a recycle helper
//     that the block variable is passed to), or
//   - transferred to a sanctioned owner: stored into a table slot
//     (an element of a local slice or of a whitelisted struct's slice
//     field) or into a field of one of the engine's owning structs
//     (fsContext, sharedContext, dpState, workspace, wsLayer, Arena),
//     or returned to the caller.
//
// A store into a field of any other struct is an escape out of the
// ownership model and is reported at the store: a block squirreled away
// in unsanctioned storage can never be recycled and silently defeats
// Remark 1's two-layer space bound. The check mirrors meterbalance but
// tracks block identities (variables) instead of metered quantities, so
// it is the storage-side twin of the LiveCells accounting: GetU32/PutU32
// must balance exactly where alloc/free do.
//
// Like meterbalance, the analyzer reports definite leaks only: a block
// is flagged at a return only if NO path into that return released or
// transferred it. Blocks acquired straight into composite literals or
// slice elements (never bound to a variable) are the container's
// responsibility and are not tracked.
var ArenaOwner = &Analyzer{
	Name: "arenaowner",
	Doc: "report arena blocks ((*Arena).GetU32) that a path can leak — neither PutU32 back nor " +
		"transferred into sanctioned table storage or the return value — and blocks escaping " +
		"into fields outside the dpState/workspace ownership whitelist",
	Run: runArenaOwner,
}

// arenaOwnerWhitelist names the struct types sanctioned to own arena
// blocks: the DP's context/state carriers — including the work-stealing
// scheduler's per-layer result arrays (wsLayer), whose tables are
// released by the unique layer completer or the engine's releaseAll —
// and the arena itself.
var arenaOwnerWhitelist = map[string]bool{
	"fsContext":     true,
	"sharedContext": true,
	"dpState":       true,
	"workspace":     true,
	"wsLayer":       true,
	"Arena":         true,
}

func runArenaOwner(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The arena's own methods implement the primitives being
			// checked; GetU32's free-list pops are not acquisitions.
			if recvNamed(pass, fd) == "Arena" {
				continue
			}
			for _, g := range funcCFGs(fd) {
				checkArenaGraph(pass, g)
			}
		}
	}
	return nil
}

// recvNamed returns the name of fd's receiver type ("" for functions).
func recvNamed(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok {
		return namedTypeName(tv.Type)
	}
	return ""
}

// arenaMethodCall reports whether call is a.<name>(...) on a receiver
// whose (possibly pointer) type is named Arena.
func arenaMethodCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
		return namedTypeName(tv.Type) == "Arena"
	}
	return false
}

// arenaKey identifies one tracked block: the variable bound to the
// GetU32 result and the acquisition site. Rebinding the variable at a
// new acquisition kills the old key (a strong update — the variable can
// only hold one block at a time).
type arenaKey struct {
	obj  types.Object
	site token.Pos
}

type arenaFact = map[arenaKey]resState

// arenaFlow is the arenaowner transfer function over one function graph.
type arenaFlow struct {
	pass *Pass
	g    funcGraph
	// escapes collects field-store escape reports found during Apply;
	// Apply runs both under Fixpoint and Replay, so reports are deduped
	// by position and emitted after the replay.
	escapes map[token.Pos]string
}

func (af *arenaFlow) Entry() arenaFact              { return arenaFact{} }
func (af *arenaFlow) Clone(f arenaFact) arenaFact   { return cloneStates(f) }
func (af *arenaFlow) Join(a, b arenaFact) arenaFact { return joinStates(a, b) }
func (af *arenaFlow) Equal(a, b arenaFact) bool     { return equalStates(a, b) }

func (af *arenaFlow) Apply(f arenaFact, n ast.Node) arenaFact {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Deferred puts run at the exits, not at registration: they are
		// replayed into the exit fact by checkArenaGraph.
		return f
	case *ast.AssignStmt:
		af.applyAssign(f, n)
		return f
	case *ast.ReturnStmt:
		// Any tracked variable appearing in a result expression is handed
		// to the caller.
		for _, e := range n.Results {
			inspectNoLits(e, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					af.markObjState(f, id, stateEscaped)
				}
				return true
			})
		}
		return f
	}
	inspectNoLits(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			af.applyCall(f, x)
		case *ast.CompositeLit:
			af.applyCompositeLit(f, x)
		case *ast.AssignStmt:
			// Assignments nested inside other nodes (e.g. an if-statement
			// init clause decomposed into the condition node).
			af.applyAssign(f, x)
		}
		return true
	})
	return f
}

// applyAssign handles the statement forms that move block ownership:
// binding a GetU32 result to a variable, storing a tracked variable into
// a slice element or struct field, and rebinding.
func (af *arenaFlow) applyAssign(f arenaFact, as *ast.AssignStmt) {
	// Process RHS side effects first (a GetU32 in the RHS of a store).
	for _, rhs := range as.Rhs {
		inspectNoLits(rhs, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if !arenaMethodCall(af.pass, x, "GetU32") {
					af.applyCall(f, x)
				}
			case *ast.CompositeLit:
				af.applyCompositeLit(f, x)
			}
			return true
		})
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lhs := as.Lhs[i]
		if call, ok := rhs.(*ast.CallExpr); ok && arenaMethodCall(af.pass, call, "GetU32") {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := af.identObj(id); obj != nil {
					// Strong update: the variable now holds the new block.
					for k := range f {
						if k.obj == obj {
							delete(f, k)
						}
					}
					f[arenaKey{obj: obj, site: call.Pos()}] = stateHeld
					continue
				}
			}
			// Acquired straight into a slot: the container owns it.
			af.checkStoreTarget(f, lhs, call.Pos())
			continue
		}
		// Storing a tracked variable (or an expression mentioning one)
		// into a slot transfers — or escapes — that block.
		if id, ok := rhs.(*ast.Ident); ok {
			if obj := af.identObj(id); obj != nil && af.tracked(f, obj) {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					// Aliasing (y := x): the alias may outlive our
					// tracking; treat as a transfer to stay quiet rather
					// than chase alias sets.
					af.markObjState(f, id, stateEscaped)
					continue
				}
				af.checkStoreTarget(f, lhs, 0)
				af.markObjState(f, id, stateEscaped)
			}
		}
	}
}

// checkStoreTarget judges an assignment target receiving a block. Slice
// element stores are transfers (table storage); field stores are checked
// against the ownership whitelist and reported when the owner is not
// sanctioned. pos anchors the report (0 = at the target).
func (af *arenaFlow) checkStoreTarget(f arenaFact, lhs ast.Expr, pos token.Pos) {
	base := lhs
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			break
		}
		base = ix.X
	}
	sel, ok := base.(*ast.SelectorExpr)
	if !ok {
		// Element of a local slice (tables[r] = dst): sanctioned table
		// storage.
		return
	}
	if tv, ok := af.pass.TypesInfo.Types[sel.X]; ok {
		name := namedTypeName(tv.Type)
		if arenaOwnerWhitelist[name] {
			return
		}
		at := pos
		if at == 0 {
			at = lhs.Pos()
		}
		af.escapes[at] = "arena block stored into field " + exprText(lhs) + " of " + name +
			": outside the fsContext/sharedContext/dpState/workspace/wsLayer ownership whitelist, " +
			"the block can never be recycled (annotate with //lint:allow arenaowner <why> if sanctioned)"
	}
}

// applyCall handles PutU32 (release) and tracked variables passed to
// other calls: passing a block to a callee transfers responsibility
// (recycle helpers, kernels that retain it) only when the callee is a
// Put; otherwise the block is merely borrowed and stays held.
func (af *arenaFlow) applyCall(f arenaFact, call *ast.CallExpr) {
	if arenaMethodCall(af.pass, call, "PutU32") && len(call.Args) == 1 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			af.markObjState(f, id, stateReleased)
		}
	}
}

// applyCompositeLit transfers tracked variables used as composite-literal
// values, checking struct literals against the whitelist.
func (af *arenaFlow) applyCompositeLit(f arenaFact, lit *ast.CompositeLit) {
	var anyTracked []*ast.Ident
	for _, elt := range lit.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if id, ok := v.(*ast.Ident); ok {
			if obj := af.identObj(id); obj != nil && af.tracked(f, obj) {
				anyTracked = append(anyTracked, id)
			}
		}
	}
	if len(anyTracked) == 0 {
		return
	}
	name := ""
	if tv, ok := af.pass.TypesInfo.Types[lit]; ok {
		name = namedTypeName(tv.Type)
	}
	if name != "" && !arenaOwnerWhitelist[name] {
		if _, isStruct := structUnder(af.pass, lit); isStruct {
			af.escapes[lit.Pos()] = "arena block stored into a " + name + " literal: outside the " +
				"fsContext/sharedContext/dpState/workspace/wsLayer ownership whitelist, the block can never be " +
				"recycled (annotate with //lint:allow arenaowner <why> if sanctioned)"
		}
	}
	for _, id := range anyTracked {
		af.markObjState(f, id, stateEscaped)
	}
}

// structUnder reports whether lit's type is (a pointer to) a struct.
func structUnder(pass *Pass, lit *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// markObjState moves every key of id's object out of Held into state.
func (af *arenaFlow) markObjState(f arenaFact, id *ast.Ident, state resState) {
	obj := af.identObj(id)
	if obj == nil {
		return
	}
	for k, s := range f {
		if k.obj == obj && s.mayBeHeld() {
			f[k] = (s &^ stateHeld) | state
		}
	}
}

func (af *arenaFlow) identObj(id *ast.Ident) types.Object {
	if obj := af.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return af.pass.TypesInfo.Defs[id]
}

func (af *arenaFlow) tracked(f arenaFact, obj types.Object) bool {
	for k := range f {
		if k.obj == obj {
			return true
		}
	}
	return false
}

// checkArenaGraph runs the fixpoint over one function graph and reports
// definite leaks at returns plus field-store escapes.
func checkArenaGraph(pass *Pass, g funcGraph) {
	af := &arenaFlow{pass: pass, g: g, escapes: map[token.Pos]string{}}
	sol := Fixpoint[arenaFact](g.cfg, af)
	reported := map[token.Pos]bool{}
	ReplayFacts[arenaFact](g.cfg, af, sol, func(f arenaFact, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		eff := af.Clone(f)
		eff = af.Apply(eff, ret)
		for _, d := range g.cfg.Defers {
			applyDeferredArenaPuts(pass, af, eff, d)
		}
		var leaks []arenaKey
		for k, s := range eff {
			if s.mayBeHeld() && s&(stateReleased|stateEscaped) == 0 {
				leaks = append(leaks, k)
			}
		}
		if len(leaks) == 0 {
			return
		}
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].site < leaks[j].site })
		k := leaks[0]
		if reported[ret.Pos()] {
			return
		}
		reported[ret.Pos()] = true
		pass.Reportf(ret.Pos(),
			"return path in %s leaks the arena block %q obtained at line %d: every path — including "+
				"ErrCanceled/ErrBudgetExceeded exits — must PutU32 the block back or transfer it into "+
				"table storage or the return value",
			g.name, k.obj.Name(), pass.Fset.Position(k.site).Line)
	})
	var escPos []token.Pos
	for p := range af.escapes {
		escPos = append(escPos, p)
	}
	sort.Slice(escPos, func(i, j int) bool { return escPos[i] < escPos[j] })
	for _, p := range escPos {
		pass.Reportf(p, "%s", af.escapes[p])
	}
}

// applyDeferredArenaPuts replays PutU32 calls a defer performs (directly
// or inside a deferred closure) into the exit fact.
func applyDeferredArenaPuts(pass *Pass, af *arenaFlow, f arenaFact, d *ast.DeferStmt) {
	ast.Inspect(d, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && arenaMethodCall(pass, call, "PutU32") && len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				af.markObjState(f, id, stateReleased)
			}
		}
		return true
	})
}
