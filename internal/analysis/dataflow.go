package analysis

import "go/ast"

// This file is the worklist fixpoint solver the path-sensitive analyzers
// share. A rule supplies a Transfer over its own fact lattice; the solver
// iterates block transfer functions to a fixpoint and then replays the
// facts so the rule can check each node against the fact that holds
// immediately before it on every path.
//
// Termination is the rule's contract: Join must be monotone over a
// finite-height lattice. The resource rules all use maps from a finite
// key set (acquisition sites / variables of the function) to small state
// bitsets, where Join is pointwise bitwise-or — height ≤ |keys|·|bits|.

// Transfer is one rule's fact lattice and transfer function over fact
// type F.
type Transfer[F any] interface {
	// Entry returns the fact holding at function entry.
	Entry() F
	// Apply transforms a fact across one CFG node. It may mutate and
	// return its argument; the solver clones facts at block boundaries.
	Apply(f F, n ast.Node) F
	// Clone returns an independent copy of a fact.
	Clone(f F) F
	// Join merges a predecessor's exit fact into an accumulating fact.
	// It may mutate and return its first argument.
	Join(into, from F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b F) bool
}

// Solution holds the entry fact of every block after Fixpoint, indexed by
// Block.Index. Reachable reports whether the block was ever entered
// (unreachable code keeps a zero fact and is skipped by ReplayFacts).
type Solution[F any] struct {
	In        []F
	Reachable []bool
}

// Fixpoint runs the forward worklist algorithm over c.
func Fixpoint[F any](c *CFG, t Transfer[F]) *Solution[F] {
	sol := &Solution[F]{
		In:        make([]F, len(c.Blocks)),
		Reachable: make([]bool, len(c.Blocks)),
	}
	sol.In[c.Entry.Index] = t.Entry()
	sol.Reachable[c.Entry.Index] = true

	work := []*Block{c.Entry}
	queued := make([]bool, len(c.Blocks))
	queued[c.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false

		out := t.Clone(sol.In[blk.Index])
		for _, n := range blk.Nodes {
			out = t.Apply(out, n)
		}
		for _, succ := range blk.Succs {
			var merged F
			if sol.Reachable[succ.Index] {
				merged = t.Join(t.Clone(sol.In[succ.Index]), out)
			} else {
				merged = t.Clone(out)
			}
			if sol.Reachable[succ.Index] && t.Equal(merged, sol.In[succ.Index]) {
				continue
			}
			sol.In[succ.Index] = merged
			sol.Reachable[succ.Index] = true
			if !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}
	return sol
}

// ReplayFacts walks every reachable block, invoking visit with each node
// and the fact holding immediately BEFORE that node, then applying the
// transfer to advance the fact. Rules report diagnostics from visit.
func ReplayFacts[F any](c *CFG, t Transfer[F], sol *Solution[F], visit func(f F, n ast.Node)) {
	for _, blk := range c.Blocks {
		if !sol.Reachable[blk.Index] {
			continue
		}
		f := t.Clone(sol.In[blk.Index])
		for _, n := range blk.Nodes {
			visit(f, n)
			f = t.Apply(f, n)
		}
	}
}

// resState is the possible-states bitset the resource-ownership rules
// (meterbalance, arenaowner, pooldiscipline) track per resource. A fact
// maps each resource to the set of states it may be in on some path
// reaching the program point; Join is pointwise union.
type resState uint8

const (
	// stateHeld: the resource is owned here and not yet released.
	stateHeld resState = 1 << iota
	// stateReleased: ownership was returned (freed / Put back).
	stateReleased
	// stateEscaped: ownership transferred out of the function's hands
	// (stored into sanctioned storage, returned to the caller).
	stateEscaped
	// stateReset: the value was Reset on this path (pooldiscipline's
	// Reset-before-Put bit; carried alongside the ownership states).
	stateReset
)

// mayBeHeld reports whether some path reaches this point with the
// resource still owned.
func (s resState) mayBeHeld() bool { return s&stateHeld != 0 }

// joinStates merges two resource-state maps pointwise (missing keys are
// adopted as-is: a resource acquired on one arm of a branch simply does
// not exist on the other, and its states on the acquiring arm are the
// only evidence).
func joinStates[K comparable](into, from map[K]resState) map[K]resState {
	for k, v := range from {
		into[k] |= v
	}
	return into
}

func cloneStates[K comparable](f map[K]resState) map[K]resState {
	out := make(map[K]resState, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func equalStates[K comparable](a, b map[K]resState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
