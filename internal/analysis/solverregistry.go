package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// SolverRegistry audits the named-solver registry behind the Solve
// facade. Every RegisterSolver call must be statically auditable and
// every registered lane must keep the engine's cancellation promise:
//
//   - the solver name must be a non-empty lowercase string literal (a
//     computed name defeats the -solver flag documentation and this very
//     audit), unique within the package;
//   - the registered function must take a context.Context first, so the
//     lane is cancellable by construction;
//   - the package's tests must exercise cancellation for the name: a
//     Test function that references the name literal (or sweeps the
//     whole registry via SolverNames/LookupSolver) and uses ErrCanceled,
//     context.WithCancel or context.WithTimeout.
//
// Together with the runtime duplicate-name panic in RegisterSolver this
// keeps the registry and the Solve facade in lockstep: a lane nobody can
// reach or cancel fails the lint run, not a production deadline.
var SolverRegistry = &Analyzer{
	Name: "solverregistry",
	Doc: "require RegisterSolver calls to use literal, unique, lowercase names, ctx-first solver " +
		"functions, and a cancellation test covering every registered name",
	Run: runSolverRegistry,
}

var solverNameRe = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)

func runSolverRegistry(pass *Pass) error {
	type registration struct {
		name string
		call *ast.CallExpr
	}
	var regs []registration
	seen := make(map[string]bool)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 || calleeName(call) != "RegisterSolver" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"solver name must be a string literal so the registry is statically auditable")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !solverNameRe.MatchString(name) {
				pass.Reportf(lit.Pos(),
					"solver name %s must be lowercase ([a-z][a-z0-9_-]*): it doubles as the -solver flag value", lit.Value)
				return true
			}
			if seen[name] {
				pass.Reportf(lit.Pos(), "solver %q registered more than once", name)
				return true
			}
			seen[name] = true
			regs = append(regs, registration{name: name, call: call})
			if !solverTakesCtxFirst(pass, call.Args[1]) {
				pass.Reportf(call.Args[1].Pos(),
					"registered solver %q must be a function taking a context.Context as its first parameter", name)
			}
			return true
		})
	}
	if len(regs) == 0 {
		return nil
	}

	covered, coversAll := cancelTestCoverage(pass)
	if coversAll {
		return nil
	}
	for _, reg := range regs {
		if !covered[reg.name] {
			pass.Reportf(reg.call.Pos(),
				"registered solver %q has no cancellation test: add a Test that runs it under ErrCanceled/WithCancel/WithTimeout (or sweep SolverNames())", reg.name)
		}
	}
	return nil
}

// calleeName returns the bare name of the called function ("RegisterSolver"
// for both RegisterSolver(...) and core.RegisterSolver(...)).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// solverTakesCtxFirst reports whether the expression registered as a
// solver has a ctx-first signature. Falls back to accepting the site when
// type information is unavailable (go vet covers the type errors).
func solverTakesCtxFirst(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
		if !ok {
			return false
		}
		return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
	}
	if lit, ok := e.(*ast.FuncLit); ok {
		params := lit.Type.Params
		return params != nil && len(params.List) > 0 && isContextParamField(params.List[0])
	}
	return true
}

// cancelTestCoverage scans the package's test files for cancellation
// tests, returning the solver names covered by name and whether some test
// sweeps the entire registry.
func cancelTestCoverage(pass *Pass) (covered map[string]bool, coversAll bool) {
	covered = make(map[string]bool)
	for _, file := range pass.TestFiles {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(fd.Name.Name) < 5 || fd.Name.Name[:4] != "Test" {
				continue
			}
			hasCancel := false
			sweepsRegistry := false
			var names []string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					switch n.Name {
					case "ErrCanceled", "WithCancel", "WithTimeout", "WithDeadline":
						hasCancel = true
					case "SolverNames":
						sweepsRegistry = true
					}
				case *ast.SelectorExpr:
					switch n.Sel.Name {
					case "ErrCanceled", "WithCancel", "WithTimeout", "WithDeadline":
						hasCancel = true
					case "SolverNames":
						sweepsRegistry = true
					}
					return false // don't double-count the .Sel ident
				case *ast.BasicLit:
					if s, err := strconv.Unquote(n.Value); err == nil && solverNameRe.MatchString(s) {
						names = append(names, s)
					}
				}
				return true
			})
			if !hasCancel {
				continue
			}
			if sweepsRegistry {
				coversAll = true
			}
			for _, s := range names {
				covered[s] = true
			}
		}
	}
	return covered, coversAll
}
