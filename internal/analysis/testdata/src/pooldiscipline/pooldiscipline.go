// Fixture for the pooldiscipline analyzer: a local double of the
// engine's pooled workspace (wsPool / acquireWorkspace / release) and
// pooled arena (Acquire / Release). The analyzer recognizes the acquire
// and release wrappers from their bodies, so the fixture defines its
// own.
package pooldiscipline

import (
	"errors"
	"sync"
)

type scratch struct{ buf []byte }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// acquireScratch is the acquire-wrapper shape (returns a pool.Get).
func acquireScratch() *scratch { return scratchPool.Get().(*scratch) }

// release is the release-method shape (Puts its receiver).
func (s *scratch) release() { scratchPool.Put(s) }

// counter has a Reset method, so a direct Put must Reset first.
type counter struct{ n int }

func (c *counter) Reset() { c.n = 0 }

var counterPool = sync.Pool{New: func() any { return new(counter) }}

// releaseCounter Puts a parameter without Reset: flagged (the engine's
// arena.Release carries a justified allow for exactly this shape).
func releaseCounter(c *counter) {
	counterPool.Put(c) // want `pooled value c is Put without a Reset`
}

// releaseCounterReset Resets before the Put. Must stay silent.
func releaseCounterReset(c *counter) {
	c.Reset()
	counterPool.Put(c)
}

var errBoom = errors.New("boom")

// missingPutOnErrorPath is the seeded acceptance violation: the error
// exit returns without putting the scratch back.
func missingPutOnErrorPath(fail bool) error {
	s := acquireScratch()
	if fail {
		return errBoom // want `return path in missingPutOnErrorPath never puts back the pooled value "s"`
	}
	s.release()
	return nil
}

// balancedDefer releases through a defer: every path balanced at once.
// Must stay silent.
func balancedDefer(fail bool) error {
	s := acquireScratch()
	defer s.release()
	if fail {
		return errBoom
	}
	return nil
}

// balancedStraightLine is profileAlong's shape: acquire, work, release,
// return. Must stay silent.
func balancedStraightLine(xs []int) int {
	s := acquireScratch()
	total := 0
	for _, x := range xs {
		total += x
		_ = s.buf
	}
	s.release()
	return total
}

// useAfterPut touches the scratch after every path has put it back: the
// pool may already have handed it to another goroutine.
func useAfterPut() int {
	s := acquireScratch()
	s.release()
	return len(s.buf) // want `pooled value s used after it was put back`
}

// doublePut puts the scratch back twice on the same path.
func doublePut() {
	s := acquireScratch()
	s.release()
	s.release() // want `pooled value s is put back twice on some path`
}

// transferIntoSlot hands ownership to a container (the parallel solver's
// per-worker slice). Must stay silent: the container releases later.
func transferIntoSlot(n int) []*scratch {
	out := make([]*scratch, n)
	for i := range out {
		out[i] = acquireScratch()
	}
	return out
}

// directGetRoundTrip uses the pool without wrappers. Must stay silent.
func directGetRoundTrip() {
	s := scratchPool.Get().(*scratch)
	s.buf = s.buf[:0]
	scratchPool.Put(s)
}
