// Fixture for the solverregistry analyzer's registry-sweep path: a test
// that iterates SolverNames() under cancellation covers every registered
// name at once, so nothing here may be flagged.
package solverregistry_sweep

import "context"

type Result struct{ Cost int }

var registry = map[string]any{}

func RegisterSolver(name string, fn any) { registry[name] = fn }

func SolverNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	return names
}

func alphaSolver(ctx context.Context, n int) (Result, error) { return Result{Cost: n}, nil }
func betaSolver(ctx context.Context, n int) (Result, error)  { return Result{Cost: -n}, nil }

func init() {
	RegisterSolver("alpha", alphaSolver)
	RegisterSolver("beta", betaSolver)
}
