package solverregistry_sweep

import (
	"context"
	"testing"
)

// TestSweepCancellation sweeps the whole registry under a canceled
// context: the analyzer treats this as covering every registered name.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range SolverNames() {
		if ctx.Err() == nil {
			t.Fatalf("context not canceled while sweeping %s", name)
		}
	}
}
