// Fixture for the arenaowner analyzer: a local double of the engine's
// arena and owning structs (the analyzer keys on type names, so the
// fixture needs no import of internal/core).
package arenaowner

import "errors"

type Arena struct{ free [][]uint32 }

func (a *Arena) GetU32(size uint64) []uint32 {
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free = a.free[:n-1]
		return b[:size]
	}
	return make([]uint32, size)
}

func (a *Arena) PutU32(b []uint32) { a.free = append(a.free, b) }

// fsContext and dpState mirror the whitelisted owners.
type fsContext struct {
	table []uint32
	cost  uint64
}

type dpState struct {
	tables [][]uint32
}

// rogueCache is NOT a sanctioned owner: blocks stored here can never be
// recycled.
type rogueCache struct {
	stash []uint32
}

var errBoom = errors.New("boom")

// leakOnErrorPath is the seeded acceptance violation: the error exit
// returns with the block neither put back nor transferred.
func leakOnErrorPath(ar *Arena, size uint64, fail bool) ([]uint32, error) {
	blk := ar.GetU32(size)
	if fail {
		return nil, errBoom // want `return path in leakOnErrorPath leaks the arena block "blk"`
	}
	return blk, nil
}

// balancedErrorPath puts the block back before the early exit and
// returns it (a transfer) on the happy path. Must stay silent.
func balancedErrorPath(ar *Arena, size uint64, fail bool) ([]uint32, error) {
	blk := ar.GetU32(size)
	if fail {
		ar.PutU32(blk)
		return nil, errBoom
	}
	return blk, nil
}

// transferIntoContext is compact's shape: the block leaves through a
// whitelisted carrier struct. Must stay silent.
func transferIntoContext(ar *Arena, size uint64) *fsContext {
	blk := ar.GetU32(size)
	return &fsContext{table: blk}
}

// transferIntoTableSlot is runDP's shape: the incumbent slot of a local
// layer slice takes ownership; the dropped candidate goes back. Must
// stay silent.
func transferIntoTableSlot(ar *Arena, size uint64, keep []bool) [][]uint32 {
	tables := make([][]uint32, len(keep))
	for i := range keep {
		dst := ar.GetU32(size)
		if keep[i] {
			tables[i] = dst
		} else {
			ar.PutU32(dst)
		}
	}
	return tables
}

// transferIntoState stores into a whitelisted owner's slice field (the
// compactShared shape). Must stay silent.
func transferIntoState(ar *Arena, st *dpState, size uint64) {
	out := ar.GetU32(size)
	st.tables[0] = out
	_ = st
}

// escapeIntoRogueField squirrels a block away in unsanctioned storage:
// reported at the store even though no return leaks it.
func escapeIntoRogueField(ar *Arena, c *rogueCache, size uint64) {
	blk := ar.GetU32(size)
	c.stash = blk // want `arena block stored into field c\.stash of rogueCache`
}

// deferredPut releases through a defer; every path is balanced at once.
// Must stay silent.
func deferredPut(ar *Arena, size uint64, fail bool) error {
	blk := ar.GetU32(size)
	defer ar.PutU32(blk)
	if fail {
		return errBoom
	}
	return nil
}

// rebind retires the incumbent before rebinding the variable: the strong
// update tracks the latest block only. Must stay silent.
func rebind(ar *Arena, rounds int) {
	var blk []uint32
	for i := 0; i < rounds; i++ {
		if i > 0 {
			ar.PutU32(blk)
		}
		blk = ar.GetU32(8)
	}
	if rounds > 0 {
		ar.PutU32(blk)
	}
}
