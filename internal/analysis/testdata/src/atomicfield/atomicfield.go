// Fixture for the atomicfield analyzer: fields mixing sync/atomic and
// plain access are flagged at every plain access; typed atomic.* fields
// and consistently-plain fields stay silent.
package atomicfield

import (
	"sync/atomic"
)

// gauge mixes atomic and plain access to hits: every plain touch races
// with the atomic users.
type gauge struct {
	hits  uint64
	limit uint64
}

func (g *gauge) recordAtomic() {
	atomic.AddUint64(&g.hits, 1)
}

func (g *gauge) readPlain() uint64 {
	return g.hits // want `plain access to field hits, which is accessed with sync/atomic`
}

func (g *gauge) bumpPlain() {
	g.hits++ // want `plain access to field hits, which is accessed with sync/atomic`
}

// limit is only ever accessed plainly: no finding.
func (g *gauge) checkLimit() bool {
	return g.limit > 0
}

// typedGauge uses the typed atomic family: plain access is impossible,
// the analyzer has nothing to say.
type typedGauge struct {
	hits atomic.Uint64
}

func (t *typedGauge) record() { t.hits.Add(1) }
func (t *typedGauge) read() uint64 {
	return t.hits.Load()
}

// mixedInOneFunc is flagged even when both access kinds share a
// function: the analyzer is package-wide, not path-sensitive.
type flags struct {
	state uint32
}

func toggle(f *flags) uint32 {
	atomic.StoreUint32(&f.state, 1)
	return f.state // want `plain access to field state, which is accessed with sync/atomic`
}
