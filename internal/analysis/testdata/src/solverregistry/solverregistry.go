// Fixture for the solverregistry analyzer: local doubles of the core
// registry surface (the analyzer keys on the RegisterSolver callee name,
// so the fixture needs no import of internal/core).
package solverregistry

import (
	"context"
	"errors"
)

type Result struct{ Cost int }

var ErrCanceled = errors.New("solverregistry: canceled")

var registry = map[string]any{}

func RegisterSolver(name string, fn any) { registry[name] = fn }

func goodSolver(ctx context.Context, n int) (Result, error) {
	if ctx.Err() != nil {
		return Result{}, ErrCanceled
	}
	return Result{Cost: n}, nil
}

// noCtxSolver cannot be cancelled by construction.
func noCtxSolver(n int) (Result, error) { return Result{Cost: n}, nil }

var computedName = "dyn" + "amic"

func init() {
	RegisterSolver("good", goodSolver)
	RegisterSolver("BadName", goodSolver)    // want `solver name "BadName" must be lowercase`
	RegisterSolver(computedName, goodSolver) // want `solver name must be a string literal`
	RegisterSolver("good", goodSolver)       // want `solver "good" registered more than once`
	RegisterSolver("noctx", noCtxSolver)     // want `registered solver "noctx" must be a function taking a context\.Context as its first parameter`
	RegisterSolver("orphan", goodSolver)     // want `registered solver "orphan" has no cancellation test`
}
