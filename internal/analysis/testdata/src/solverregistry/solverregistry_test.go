package solverregistry

import "testing"

// TestGoodCancellation covers "good" and "noctx" by name under an
// ErrCanceled assertion; "orphan" is deliberately left uncovered so the
// analyzer's coverage finding fires in the fixture.
func TestGoodCancellation(t *testing.T) {
	if _, ok := registry["good"]; !ok {
		t.Fatal("solver good is not registered")
	}
	if _, ok := registry["noctx"]; !ok {
		t.Fatal("solver noctx is not registered")
	}
	_ = ErrCanceled
}
