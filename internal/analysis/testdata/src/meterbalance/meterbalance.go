// Fixture for the meterbalance analyzer: a local double of core.Meter
// (the analyzer keys on the type name and the alloc/free method names,
// so the fixture needs no import of internal/core).
package meterbalance

import "errors"

type Meter struct{ live uint64 }

func (m *Meter) alloc(n uint64) { m.live += n }
func (m *Meter) free(n uint64) {
	if n > m.live {
		m.live = 0
		return
	}
	m.live -= n
}

var errBoom = errors.New("boom")

// leakNoFree allocs and never frees: the classic leak.
func leakNoFree(m *Meter) {
	m.alloc(8) // want `no \(\*Meter\)\.free anywhere in leakNoFree`
}

// leakEarlyReturn frees on the happy path but not on the error path —
// the shape the cancellable engine must never regress into.
func leakEarlyReturn(m *Meter, fail bool) error {
	m.alloc(8)
	if fail {
		return errBoom // want `return path in leakEarlyReturn after \(\*Meter\)\.alloc`
	}
	m.free(8)
	return nil
}

// balancedAbort is the runDP idiom: a cleanup closure defined before the
// early exits releases everything the function owns. Must stay silent.
func balancedAbort(m *Meter, fail bool) error {
	abort := func() { m.free(8) }
	m.alloc(8)
	if fail {
		abort()
		return errBoom
	}
	m.free(8)
	return nil
}

// balancedDefer releases through a defer: every path is balanced at
// once. Must stay silent.
func balancedDefer(m *Meter, fail bool) error {
	m.alloc(8)
	defer m.free(8)
	if fail {
		return errBoom
	}
	return nil
}

// closureReturns: returns inside a nested function literal are the
// closure's exits, not this function's. Must stay silent.
func closureReturns(m *Meter, xs []int) {
	m.alloc(8)
	ok := func(x int) bool {
		if x < 0 {
			return false
		}
		return true
	}
	for _, x := range xs {
		_ = ok(x)
	}
	m.free(8)
}

// newBlock transfers ownership of the allocated cells to the caller: the
// sanctioned, annotated false positive (compact's shape). Must stay
// silent because of the allow directive.
func newBlock(m *Meter) uint64 {
	m.alloc(16) //lint:allow meterbalance ownership of the cells transfers to the caller, which frees them
	return 16
}
