// Fixture for the meterbalance analyzer: a local double of core.Meter
// (the analyzer keys on the type name and the alloc/free method names,
// so the fixture needs no import of internal/core).
package meterbalance

import "errors"

type Meter struct{ live uint64 }

func (m *Meter) alloc(n uint64) { m.live += n }
func (m *Meter) free(n uint64) {
	if n > m.live {
		m.live = 0
		return
	}
	m.live -= n
}

var errBoom = errors.New("boom")

// leakNoFree allocs and never frees: the classic leak.
func leakNoFree(m *Meter) {
	m.alloc(8) // want `no \(\*Meter\)\.free anywhere in leakNoFree`
}

// leakEarlyReturn frees on the happy path but not on the error path —
// the shape the cancellable engine must never regress into.
func leakEarlyReturn(m *Meter, fail bool) error {
	m.alloc(8)
	if fail {
		return errBoom // want `return path in leakEarlyReturn after \(\*Meter\)\.alloc`
	}
	m.free(8)
	return nil
}

// balancedAbort is the runDP idiom: a cleanup closure defined before the
// early exits releases everything the function owns. Must stay silent.
func balancedAbort(m *Meter, fail bool) error {
	abort := func() { m.free(8) }
	m.alloc(8)
	if fail {
		abort()
		return errBoom
	}
	m.free(8)
	return nil
}

// balancedDefer releases through a defer: every path is balanced at
// once. Must stay silent.
func balancedDefer(m *Meter, fail bool) error {
	m.alloc(8)
	defer m.free(8)
	if fail {
		return errBoom
	}
	return nil
}

// closureReturns: returns inside a nested function literal are the
// closure's exits, not this function's. Must stay silent.
func closureReturns(m *Meter, xs []int) {
	m.alloc(8)
	ok := func(x int) bool {
		if x < 0 {
			return false
		}
		return true
	}
	for _, x := range xs {
		_ = ok(x)
	}
	m.free(8)
}

// newBlock allocates cells the caller is meant to free, but nothing in
// the signature carries them: the transfer cannot be proven, so the
// annotated allow is still required. Must stay silent because of the
// directive.
func newBlock(m *Meter) uint64 {
	m.alloc(16) //lint:allow meterbalance ownership of the cells transfers to the caller, which frees them
	return 16
}

// fsContext mirrors the engine's table-carrying context: returning one
// is a PROVEN ownership transfer (the allocated table leaves through the
// return value).
type fsContext struct {
	table []uint32
	cost  uint64
}

// transferByReturn is compact's shape: alloc, build a table-carrying
// context, return it. The dataflow engine proves the transfer — no
// annotation needed. Must stay silent.
func transferByReturn(m *Meter, size uint64) *fsContext {
	m.alloc(size)
	return &fsContext{table: make([]uint32, size)}
}

// leakOnErrorPath transfers on the happy path but the nil-carrier error
// return exits with the cells still held and never freed on any path
// into it: the classic early-exit leak, now caught path-sensitively.
func leakOnErrorPath(m *Meter, size uint64, fail bool) (*fsContext, error) {
	m.alloc(size)
	if fail {
		return nil, errBoom // want `return path in leakOnErrorPath after \(\*Meter\)\.alloc`
	}
	return &fsContext{table: make([]uint32, size)}, nil
}

// balancedErrorPath is the engine's cancellable idiom proven end to end:
// the early exit frees before returning a nil carrier, the happy path
// transfers. Must stay silent — this is the shape the old lexical
// analyzer could not distinguish from a leak.
func balancedErrorPath(m *Meter, size uint64, fail bool) (*fsContext, error) {
	m.alloc(size)
	if fail {
		m.free(size)
		return nil, errBoom
	}
	return &fsContext{table: make([]uint32, size)}, nil
}

// loopRetire is runDP's rolling-layer shape: each iteration allocates a
// block and either keeps it (freeing the incumbent) or frees it; the
// loop exit retires through a free. Must stay silent.
func loopRetire(m *Meter, rounds int, keep func(int) bool) {
	var live bool
	for i := 0; i < rounds; i++ {
		m.alloc(8)
		if keep(i) {
			if live {
				m.free(8)
			}
			live = true
		} else {
			m.free(8)
		}
	}
	if live {
		m.free(8)
	}
}

// namedCarrierReturn transfers through a named result: the bare return
// hands the table-carrying context to the caller. Must stay silent.
func namedCarrierReturn(m *Meter, size uint64) (out *fsContext) {
	m.alloc(size)
	out = &fsContext{table: make([]uint32, size)}
	return
}
