// Fixture for the tracesafe analyzer: a local double of the obs.Tracer
// interface (the analyzer keys on the interface name and Emit method, so
// the fixture needs no import of internal/obs).
package tracesafe

type Event struct{ K int }

type Tracer interface{ Emit(Event) }

type opts struct{ Trace Tracer }

// unguarded emits without any nil check: panics the first time a run
// starts without tracing.
func unguarded(tr Tracer) {
	tr.Emit(Event{K: 1}) // want `Emit on possibly-nil tracer tr without a nil check`
}

// fieldUnguarded is the same bug through an options field.
func fieldUnguarded(o *opts) {
	o.Trace.Emit(Event{K: 2}) // want `Emit on possibly-nil tracer o\.Trace without a nil check`
}

// guarded is the engine idiom. Must stay silent.
func guarded(tr Tracer) {
	if tr != nil {
		tr.Emit(Event{K: 3})
	}
}

// wrapper is the nil-safe wrapper pattern (quantum's emitBatch): the
// early return is the guard. Must stay silent.
func wrapper(tr Tracer, ev Event) {
	if tr == nil {
		return
	}
	tr.Emit(ev)
}

// fieldGuarded guards the exact field expression. Must stay silent.
func fieldGuarded(o *opts) {
	if o.Trace != nil {
		o.Trace.Emit(Event{K: 4})
	}
}

// otherGuard checks a DIFFERENT expression: guarding tr does not make
// o.Trace safe.
func otherGuard(o *opts, tr Tracer) {
	if tr != nil {
		o.Trace.Emit(Event{K: 5}) // want `Emit on possibly-nil tracer o\.Trace without a nil check`
	}
}

// recorder is a concrete tracer: calling Emit on a concrete type is
// ordinary use, not a nil hazard the contract covers. Must stay silent.
type recorder struct{ events []Event }

func (r *recorder) Emit(ev Event) { r.events = append(r.events, ev) }

func concrete(r *recorder) {
	r.Emit(Event{K: 6})
}
