// Fixture for the tracesafe analyzer: a local double of the obs.Tracer
// interface (the analyzer keys on the interface name and Emit method, so
// the fixture needs no import of internal/obs).
package tracesafe

type Event struct{ K int }

type Tracer interface{ Emit(Event) }

type opts struct{ Trace Tracer }

// unguarded emits without any nil check: panics the first time a run
// starts without tracing.
func unguarded(tr Tracer) {
	tr.Emit(Event{K: 1}) // want `Emit on possibly-nil tracer tr without a nil check`
}

// fieldUnguarded is the same bug through an options field.
func fieldUnguarded(o *opts) {
	o.Trace.Emit(Event{K: 2}) // want `Emit on possibly-nil tracer o\.Trace without a nil check`
}

// guarded is the engine idiom. Must stay silent.
func guarded(tr Tracer) {
	if tr != nil {
		tr.Emit(Event{K: 3})
	}
}

// wrapper is the nil-safe wrapper pattern (quantum's emitBatch): the
// early return is the guard. Must stay silent.
func wrapper(tr Tracer, ev Event) {
	if tr == nil {
		return
	}
	tr.Emit(ev)
}

// fieldGuarded guards the exact field expression. Must stay silent.
func fieldGuarded(o *opts) {
	if o.Trace != nil {
		o.Trace.Emit(Event{K: 4})
	}
}

// otherGuard checks a DIFFERENT expression: guarding tr does not make
// o.Trace safe.
func otherGuard(o *opts, tr Tracer) {
	if tr != nil {
		o.Trace.Emit(Event{K: 5}) // want `Emit on possibly-nil tracer o\.Trace without a nil check`
	}
}

// recorder is a concrete tracer: calling Emit on a concrete type is
// ordinary use, not a nil hazard the contract covers. Must stay silent.
type recorder struct{ events []Event }

func (r *recorder) Emit(ev Event) { r.events = append(r.events, ev) }

func concrete(r *recorder) {
	r.Emit(Event{K: 6})
}

// Histogram and Span are local doubles of the obs handle types: the
// analyzer keys on the pointer-to-named-type shape and the method names,
// so the fixture needs no import of internal/obs.
type Histogram struct{ count uint64 }

func (h *Histogram) Record(v uint64)         { h.count++ }
func (h *Histogram) RecordDuration(ns int64) { h.count++ }

// Hist stands in for the obs registry getter, which never returns nil.
func Hist(name string) *Histogram { return &Histogram{} }

type Span struct{ id string }

func (s *Span) Event(name string) {}

type spanOpts struct{ Sp *Span }

// histUnguarded records on a possibly-nil handle: panics on the first
// run that never touched the registry.
func histUnguarded(h *Histogram) {
	h.Record(1)            // want `Record on possibly-nil histogram h without a nil check`
	h.RecordDuration(1000) // want `RecordDuration on possibly-nil histogram h without a nil check`
}

// histGuarded is the sanctioned pointer-handle idiom. Must stay silent.
func histGuarded(h *Histogram) {
	if h != nil {
		h.Record(2)
		h.RecordDuration(2000)
	}
}

// histChained records through the registry getter directly: getters never
// return nil, so the chained form needs no guard. Must stay silent.
func histChained() {
	Hist("lane_wall_ns").Record(3)
	Hist("lane_wall_ns").RecordDuration(3000)
}

// histValue is a non-pointer handle: it cannot be nil. Must stay silent.
func histValue(h Histogram) {
	h.Record(4)
}

// spanUnguarded events on a possibly-nil span: SpanFromContext-style
// lookups return nil on every untraced path.
func spanUnguarded(sp *Span) {
	sp.Event("admitted") // want `Event on possibly-nil span sp without a nil check`
}

// spanGuarded is the engine idiom. Must stay silent.
func spanGuarded(sp *Span) {
	if sp != nil {
		sp.Event("admitted")
	}
}

// spanFieldOtherGuard checks a DIFFERENT expression: guarding sp does not
// make o.Sp safe.
func spanFieldOtherGuard(o *spanOpts, sp *Span) {
	if sp != nil {
		o.Sp.Event("worker_acquired") // want `Event on possibly-nil span o\.Sp without a nil check`
	}
}

// spanAllowed carries a sanctioned suppression. Must stay silent.
func spanAllowed(sp *Span) {
	sp.Event("drain") //lint:allow tracesafe fixture: caller contract guarantees a live span here
}
