// Fixture for the ctxcheckpoint analyzer.
package ctxcheckpoint

import "context"

// mint forges a fresh context inside solver code: forbidden.
func mint() context.Context {
	return context.Background() // want `context\.Background inside a solver package`
}

// todo is the other spelling of the same sin.
func todo() context.Context {
	return context.TODO() // want `context\.TODO inside a solver package`
}

// orBackground is the sanctioned nil-context compatibility shim: the
// allow directive keeps it silent.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() //lint:allow ctxcheckpoint nil-context compatibility shim for legacy callers
	}
	return ctx
}

// SolveCtx is a *Ctx entry point without a context: the name promises
// cancellability the signature does not deliver.
func SolveCtx(n int) error { // want `exported entry point SolveCtx must accept a context\.Context as its first parameter`
	_ = n
	return nil
}

// RunCtx is the compliant shape. Must stay silent.
func RunCtx(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// misplaced buries the context mid-signature, hiding the threading.
func misplaced(n int, ctx context.Context) { // want `takes a context\.Context but not as the first parameter`
	_ = n
	_ = ctx
}

// spin is an unbounded loop with no cancellation checkpoint: under a
// deadline this lane can never be stopped cooperatively.
func spin(n *int) {
	for { // want `unbounded loop without a cancellation checkpoint`
		*n++
	}
}

// pump is an event loop: the select is the yield point. Must stay silent.
func pump(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// poll checks ctx.Err per iteration: a checkpoint. Must stay silent.
func poll(ctx context.Context, n *int) {
	for {
		if ctx.Err() != nil {
			return
		}
		*n++
	}
}

// limiter mirrors the engine's cooperative checkpoint object.
type limiter struct{}

func (l *limiter) spend(n uint64) error { return nil }

// metered polls the limiter per transition: a checkpoint. Must stay
// silent.
func metered(l *limiter, n *int) {
	for {
		if err := l.spend(1); err != nil {
			return
		}
		*n++
	}
}
