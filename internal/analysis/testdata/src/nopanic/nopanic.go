// Fixture for the nopanic analyzer.
package nopanic

import (
	"errors"
	"log"
	"os"
)

var errInvalid = errors.New("nopanic: invalid input")

// validate panics on bad input where it should return an error.
func validate(n int) error {
	if n < 0 {
		panic("negative") // want `panic in library code`
	}
	return nil
}

// fatal tears the process down from library code.
func fatal(err error) {
	log.Fatalf("boom: %v", err) // want `log\.Fatalf in library code`
}

// exit is the same sin without the log line.
func exit() {
	os.Exit(1) // want `os\.Exit in library code`
}

// checked is the sanctioned shape: a wrapped sentinel error. Must stay
// silent.
func checked(n int) error {
	if n < 0 {
		return errInvalid
	}
	return nil
}

// invariant is a sanctioned programmer-error panic with the documented
// escape hatch. Must stay silent.
func invariant(state int) {
	if state != 0 {
		panic("nopanic: corrupt state") //lint:allow nopanic internal invariant unreachable via the public API
	}
}

// shadowed calls a local function that happens to be named panic: the
// analyzer resolves the builtin through go/types and must stay silent.
func shadowed() {
	panic := func(string) {}
	panic("fine")
}
