// Package analysistest runs an analyzer over a golden fixture package and
// compares its findings against // want expectations embedded in the
// fixture source — the stdlib mirror of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line that should be flagged carries a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// with one quoted (double- or back-quoted) regular expression per
// expected finding on that line. Suppressed findings (a //lint:allow
// directive the runner honors exactly as the bddlint driver does) must
// NOT carry a want — fixtures thereby also pin the escape-hatch
// behavior.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"obddopt/internal/analysis"
)

var (
	loaderMu sync.Mutex
	loader   *analysis.Loader
)

// sharedLoader returns one process-wide loader so fixtures share the
// (source-importer) type-checking of the standard library.
func sharedLoader(dir string) (*analysis.Loader, error) {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if loader == nil {
		l, err := analysis.NewLoader(dir)
		if err != nil {
			return nil, err
		}
		loader = l
	}
	return loader, nil
}

// expectation is one parsed want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the expectations of one file.
func parseWants(fset *token.FileSet, file *ast.File) ([]expectation, error) {
	var out []expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				var lit string
				switch rest[0] {
				case '"':
					end := -1
					for i := 1; i < len(rest); i++ {
						if rest[i] == '"' && rest[i-1] != '\\' {
							end = i
							break
						}
					}
					if end < 0 {
						return nil, fmt.Errorf("%s: unterminated want string: %s", pos, rest)
					}
					unq, err := strconv.Unquote(rest[:end+1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want string %s: %v", pos, rest[:end+1], err)
					}
					lit, rest = unq, strings.TrimSpace(rest[end+1:])
				case '`':
					end := strings.Index(rest[1:], "`")
					if end < 0 {
						return nil, fmt.Errorf("%s: unterminated want raw string: %s", pos, rest)
					}
					lit, rest = rest[1:end+1], strings.TrimSpace(rest[end+2:])
				default:
					return nil, fmt.Errorf("%s: want expects quoted regexps, got: %s", pos, rest)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
				}
				out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out, nil
}

// Run loads the fixture package in dir, applies the analyzer, and reports
// any mismatch between its unsuppressed findings and the fixture's want
// expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l, err := sharedLoader(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := l.LoadDir(abs, "fixtures/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("analysistest: fixture does not type-check: %v", e)
	}

	var wants []expectation
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
		ws, err := parseWants(pkg.Fset, f)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		matched := false
		for i := range wants {
			w := &wants[i]
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}
