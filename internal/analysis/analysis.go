// Package analysis is the repository's custom static-analysis layer: a
// suite of invariant checkers that mechanically enforce the solver-engine
// contracts PRs 1–2 threaded through the tree — balanced Meter accounting
// on every exit path (the paper's cell-count metric is only trustworthy if
// allocations and frees pair up), cooperative context checkpoints in every
// solver loop, nil-safe tracer usage, panic-free library surfaces, and a
// statically auditable solver registry.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis pass
// model (Analyzer / Pass / Diagnostic, an analysistest-style fixture
// runner, a multichecker driver in cmd/bddlint) but is implemented on the
// standard library alone: the module has no third-party dependencies, so
// the loader in load.go parses and type-checks packages with go/parser and
// go/types directly. If the tree ever vendors x/tools, each Analyzer's Run
// function ports over unchanged — the Pass surface is a strict subset.
//
// # Suppressing findings
//
// A diagnostic is suppressed by an allow directive on the flagged line or
// the line immediately above it:
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory: a directive without one does not
// suppress anything (the driver reports it as malformed instead). This
// keeps every sanctioned violation documented in place, e.g. a Meter
// allocation whose ownership transfers to the caller.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant-checking pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	// It must be a lowercase identifier.
	Name string
	// Doc is the one-paragraph help text shown by `bddlint -help`.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one loaded package. It is the
// stdlib mirror of golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path ("obddopt/internal/core").
	Path string
	// Files holds the type-checked non-test files of the package.
	Files []*ast.File
	// TestFiles holds the package's _test.go files, parsed (with
	// comments) but not type-checked. Analyzers that audit test
	// coverage (solverregistry) scan these syntactically.
	TestFiles []*ast.File
	// Pkg and TypesInfo expose the go/types view of Files. TypesInfo is
	// always non-nil, but entries may be missing for code that failed to
	// type-check; analyzers must degrade gracefully.
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position translated through the file
// set and tagged with the analyzer that produced it and whether an allow
// directive suppressed it.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// Justification is the allow directive's reason when Suppressed.
	Justification string
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer      string
	justification string
	line          int
	malformed     string // non-empty when the directive cannot suppress
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\b\s*(\S*)\s*(.*)$`)

// parseAllowDirectives extracts the allow directives of one file, keyed by
// the line they apply to.
func parseAllowDirectives(fset *token.FileSet, file *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := allowDirective{
				analyzer:      m[1],
				justification: strings.TrimSpace(m[2]),
				line:          fset.Position(c.Pos()).Line,
			}
			switch {
			case d.analyzer == "":
				d.malformed = "missing analyzer name"
			case d.justification == "":
				d.malformed = "missing justification (write //lint:allow " + d.analyzer + " <why>)"
			}
			out = append(out, d)
		}
	}
	return out
}

// RunOptions configures a run of the analyzer suite.
type RunOptions struct {
	// Scopes restricts named analyzers to packages whose import path
	// contains one of the listed fragments. Analyzers absent from the
	// map run on every package. The driver uses this to pin each
	// contract to the packages the contract is stated for; the fixture
	// tests leave it empty.
	Scopes map[string][]string
}

// inScope reports whether an analyzer applies to a package path.
func (o *RunOptions) inScope(analyzer, path string) bool {
	if o == nil || o.Scopes == nil {
		return true
	}
	frags, ok := o.Scopes[analyzer]
	if !ok || len(frags) == 0 {
		return true
	}
	for _, f := range frags {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the loaded packages and returns every
// finding (suppressed ones included, so callers can audit the allow
// inventory), sorted by position. Malformed allow directives are returned
// as findings of the pseudo-analyzer "allowdirective" and cannot be
// suppressed themselves.
func Run(pkgs []*Package, analyzers []*Analyzer, opts *RunOptions) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		// Index this package's allow directives by file and line.
		allows := make(map[string]map[int]allowDirective)
		for _, file := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
			dirs := parseAllowDirectives(pkg.Fset, file)
			if len(dirs) == 0 {
				continue
			}
			name := pkg.Fset.Position(file.Pos()).Filename
			byLine := allows[name]
			if byLine == nil {
				byLine = make(map[int]allowDirective)
				allows[name] = byLine
			}
			for _, d := range dirs {
				byLine[d.line] = d
				if d.malformed != "" {
					findings = append(findings, Finding{
						Analyzer: "allowdirective",
						Pos:      token.Position{Filename: name, Line: d.line, Column: 1},
						Message:  "malformed //lint:allow directive: " + d.malformed,
					})
				}
			}
		}
		for _, an := range analyzers {
			if !opts.inScope(an.Name, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  an,
				Fset:      pkg.Fset,
				Path:      pkg.Path,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: an.Name, Pos: pos, Message: d.Message}
				if byLine := allows[pos.Filename]; byLine != nil {
					for _, line := range []int{pos.Line, pos.Line - 1} {
						if dir, ok := byLine[line]; ok && dir.malformed == "" &&
							(dir.analyzer == an.Name || dir.analyzer == "all") {
							f.Suppressed = true
							f.Justification = dir.justification
							break
						}
					}
				}
				findings = append(findings, f)
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", an.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MeterBalance,
		ArenaOwner,
		PoolDiscipline,
		AtomicField,
		CtxCheckpoint,
		NoPanic,
		TraceSafe,
		SolverRegistry,
	}
}

// ByName resolves an analyzer by name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
