package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (for its non-test files) type-checked
// package of the enclosing module.
type Package struct {
	// Path is the import path; Dir the directory holding the sources.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files are the compiled (non-test) files; TestFiles the package's
	// _test.go files, parsed with comments but not type-checked.
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects soft type-checking errors. The analyzers run
	// regardless (degrading where type information is missing); the
	// driver surfaces them so a broken tree is not silently half-linted.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module using only the
// standard library. Imports within the module resolve recursively through
// the loader itself; all other imports (the standard library — the module
// has no third-party dependencies) resolve through go/importer's source
// importer, which type-checks $GOROOT/src directly and therefore needs no
// pre-built export data.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader returns a loader rooted at the module containing dir: it
// walks upward to the nearest go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModulePath: modPath,
		RootDir:    root,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Import implements types.Importer so a Loader can be handed straight to
// types.Config: module-local paths load recursively, everything else is
// delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.RootDir, 0)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.RootDir, filepath.FromSlash(rel))
}

// Load returns the package with the given module-local import path,
// parsing and type-checking it (and, recursively, its module-local
// imports) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pkg, err := l.loadDir(l.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir loads the package in dir under a caller-chosen import path
// without requiring the directory to sit at the path's location in the
// module. The analysistest fixture runner uses it to load golden packages
// from testdata while their imports still resolve through the module.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if pkg, ok := l.pkgs[asPath]; ok {
		return pkg, nil
	}
	pkg, err := l.loadDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[asPath] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var fileNames, testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
		} else {
			fileNames = append(fileNames, name)
		}
	}
	sort.Strings(fileNames)
	sort.Strings(testNames)
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range testNames {
		// Test files are parsed for syntactic audits only; parse errors
		// are soft (recorded, not fatal) so a broken test file cannot
		// take the whole lint run down.
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
			continue
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}

	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (if incomplete) *types.Package even when
	// soft errors were reported; the hard-error case still yields a
	// non-nil placeholder, so analyzers can rely on pkg.Types.
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.TypesInfo)
	pkg.Types = tpkg
	return pkg, nil
}

// Expand resolves package patterns relative to the module root into
// import paths. Supported forms mirror the go tool: "./..." (and
// "./prefix/..."), "./relative/dir", and plain import paths within the
// module. Directories named testdata or vendor and hidden directories are
// skipped, as the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.RootDir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir := l.dirForPattern(base)
			if err := l.walk(dir, add); err != nil {
				return nil, err
			}
		default:
			dir := l.dirForPattern(pat)
			path, ok := l.pathForDir(dir)
			if !ok {
				return nil, fmt.Errorf("analysis: pattern %q is outside module %s", pat, l.ModulePath)
			}
			add(path)
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirForPattern maps one non-wildcard pattern to a directory.
func (l *Loader) dirForPattern(pat string) string {
	if pat == "." || pat == "./" {
		return l.RootDir
	}
	if strings.HasPrefix(pat, "./") {
		return filepath.Join(l.RootDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	}
	if pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/") {
		return l.dirFor(pat)
	}
	return filepath.Join(l.RootDir, filepath.FromSlash(pat))
}

// pathForDir maps a directory back to its import path.
func (l *Loader) pathForDir(dir string) (string, bool) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true
}

// walk collects the import path of every package directory under root.
func (l *Loader) walk(root string, add func(string)) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") ||
			strings.HasPrefix(d.Name(), ".") || strings.HasPrefix(d.Name(), "_") {
			return nil
		}
		if path, ok := l.pathForDir(filepath.Dir(p)); ok {
			add(path)
		}
		return nil
	})
}

// LoadPatterns expands the patterns and loads every matched package,
// returning them in deterministic (sorted-path) order.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
