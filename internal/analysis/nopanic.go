package analysis

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic, log.Fatal* and os.Exit in library packages: a
// production engine serving traffic must surface malformed input as a
// wrapped core.ErrInvalidInput (the pattern PR 2 introduced with
// truthtable.NewChecked) rather than tearing the process down.
//
// Programmer-error invariants — states unreachable through any exported
// API, where limping on would corrupt the DP tables — remain legitimate
// panic sites in the stdlib tradition; each such site carries an
// explicit //lint:allow nopanic <why>, which doubles as an inventory of
// the engine's internal invariants.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "forbid panic/log.Fatal/os.Exit in library packages; return wrapped ErrInvalidInput for bad input, " +
		"and annotate sanctioned programmer-error invariants with //lint:allow nopanic <why>",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "panic" {
					return true
				}
				if obj, ok := pass.TypesInfo.Uses[fun]; ok {
					if _, builtin := obj.(*types.Builtin); !builtin {
						return true // a local function shadowing panic
					}
				}
				pass.Reportf(call.Pos(),
					"panic in library code: return a wrapped ErrInvalidInput for bad input, or annotate a programmer-error invariant with //lint:allow nopanic <why>")
			case *ast.SelectorExpr:
				pkg, name, ok := pkgFuncCall(pass.TypesInfo, call)
				if !ok {
					return true
				}
				if pkg == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
					name == "Panic" || name == "Panicf" || name == "Panicln") {
					pass.Reportf(call.Pos(), "log.%s in library code terminates the process; return an error instead", name)
				}
				if pkg == "os" && name == "Exit" {
					pass.Reportf(call.Pos(), "os.Exit in library code terminates the process; return an error instead")
				}
			}
			return true
		})
	}
	return nil
}
