package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFor parses one function and builds its CFG.
func buildFor(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// TestCFGShapes pins the block/edge structure of the control shapes the
// dataflow analyzers depend on, so an analyzer bug bisects cleanly to
// engine (CFG) vs rule (transfer function). The golden strings are the
// deterministic CFG.String() rendering: one line per block with its
// nodes and successor indices.
func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "straight line",
			src:  `func f() { x := 1; use(x) }`,
			want: `0 entry → 2
1 exit
2 [x := 1; use(x); return] → 1
`,
		},
		{
			name: "multi return",
			src: `func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`,
			want: `0 entry → 2
1 exit
2 [a] → 4 3
3 [return 2] → 1
4 [return 1] → 1
`,
		},
		{
			name: "panic terminated",
			src: `func f(a bool) {
	if a {
		panic("boom")
	}
	done()
}`,
			want: `0 entry → 2
1 exit
2 [a] → 4 3
3 [done(); return] → 1
4 [panic("boom")] → 5
5 panic
`,
		},
		{
			name: "defer in loop",
			src: `func f(xs []int) {
	for _, x := range xs {
		defer release(x)
	}
}`,
			want: `0 entry → 2
1 exit
2 [xs] → 3
3 [_, x := range] → 4 5
4 [defer release(x)] → 3
5 [return] → 1
`,
		},
		{
			name: "labeled break",
			src: `func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for {
			if stop() {
				break outer
			}
			step()
		}
	}
	done()
}`,
			want: `0 entry → 2
1 exit
2 → 3
3 [i := 0] → 4
4 [i < n] → 5 6
5 → 8
6 [done(); return] → 1
7 [i++] → 4
8 → 9
9 [stop()] → 12 11
10 → 8
11 [step()] → 10
12 → 6
`,
		},
		{
			name: "unbounded loop with early error return",
			src: `func f() error {
	acquire()
	for {
		if err := poll(); err != nil {
			release()
			return err
		}
		work()
	}
}`,
			want: `0 entry → 2
1 exit
2 [acquire()] → 3
3 → 4
4 [err := poll(); err != nil] → 8 7
5 [return] → 1
6 → 3
7 [work()] → 6
8 [release(); return err] → 1
`,
		},
		{
			name: "switch with fallthrough and default",
			src: `func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	done()
}`,
			want: `0 entry → 2
1 exit
2 [x] → 4 5 6
3 [done(); return] → 1
4 [1; one()] → 3 5
5 [2; two()] → 3
6 [other()] → 3
`,
		},
		{
			name: "select",
			src: `func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`,
			want: `0 entry → 2
1 exit
2 → 4 5
3 [return 0] → 1
4 [v := <-a; return v] → 1
5 [<-b] → 3
`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := buildFor(t, tc.src)
			if got := cfg.String(); got != tc.want {
				t.Errorf("CFG mismatch\n--- got:\n%s--- want:\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGDefersRecorded pins that every defer site is captured exactly
// once, including defers inside loops and branches.
func TestCFGDefersRecorded(t *testing.T) {
	cfg := buildFor(t, `func f(xs []int, a bool) {
	defer top()
	if a {
		defer inIf()
	}
	for _, x := range xs {
		defer inLoop(x)
	}
}`)
	if got := len(cfg.Defers); got != 3 {
		t.Fatalf("recorded %d defers, want 3:\n%s", got, cfg.String())
	}
}

// TestCFGSyntheticReturn pins that a body falling off its end gets an
// implicit return edge into Exit, and that a body that cannot fall
// through does not.
func TestCFGSyntheticReturn(t *testing.T) {
	fall := buildFor(t, `func f() { work() }`)
	if n := len(fall.Exit.Preds); n != 1 {
		t.Errorf("fallthrough body: exit has %d preds, want 1\n%s", n, fall.String())
	}
	noFall := buildFor(t, `func f() int { return 1 }`)
	for _, blk := range noFall.Blocks {
		for _, n := range blk.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 0 {
				t.Errorf("non-fallthrough body grew a synthetic bare return\n%s", noFall.String())
			}
		}
	}
	panics := buildFor(t, `func f() { panic("x") }`)
	if panics.Panic == nil || len(panics.Panic.Preds) != 1 {
		t.Errorf("panic-only body: missing panic block\n%s", panics.String())
	}
	if n := len(panics.Exit.Preds); n != 0 {
		t.Errorf("panic-only body: exit has %d preds, want 0\n%s", n, panics.String())
	}
}

// TestCFGFixpointSmoke runs a trivial reachability transfer over a looped
// CFG, checking the solver terminates and marks every live block.
func TestCFGFixpointSmoke(t *testing.T) {
	cfg := buildFor(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		s += i
	}
	return s
}`)
	tr := unitTransfer{}
	sol := Fixpoint[struct{}](cfg, tr)
	for _, blk := range cfg.Blocks {
		if !sol.Reachable[blk.Index] {
			t.Errorf("block %d unreachable in a fully live function\n%s", blk.Index, cfg.String())
		}
	}
	visited := 0
	ReplayFacts[struct{}](cfg, tr, sol, func(_ struct{}, n ast.Node) { visited++ })
	total := 0
	for _, blk := range cfg.Blocks {
		total += len(blk.Nodes)
	}
	if visited != total {
		t.Errorf("ReplayFacts visited %d nodes, want %d", visited, total)
	}
}

type unitTransfer struct{}

func (unitTransfer) Entry() struct{}                       { return struct{}{} }
func (unitTransfer) Apply(f struct{}, _ ast.Node) struct{} { return f }
func (unitTransfer) Clone(f struct{}) struct{}             { return f }
func (unitTransfer) Join(into, _ struct{}) struct{}        { return into }
func (unitTransfer) Equal(_, _ struct{}) bool              { return true }

// TestCFGNodeTextTruncation keeps the debug rendering bounded.
func TestCFGNodeTextTruncation(t *testing.T) {
	cfg := buildFor(t, `func f() { veryLongFunctionName(argumentOne, argumentTwo, argumentThree, argumentFour, argumentFive) }`)
	for _, line := range strings.Split(cfg.String(), "\n") {
		if len(line) > 120 {
			t.Errorf("over-long rendering line: %q", line)
		}
	}
}
