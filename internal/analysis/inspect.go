package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// walkStack traverses the AST in depth-first order, invoking fn with each
// node and the stack of its ancestors (outermost first, not including the
// node itself). Returning false from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push/pop symmetrically: Inspect will send the nil
			// pop only if we return true, so unwind here instead.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// exprText renders an expression to its source form, the structural key
// used to match nil checks against call receivers ("tr", "opts.Trace",
// "l.tr").
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}

// namedTypeName unwraps pointers and aliases and returns the name of the
// underlying named type, or "" when the type is unnamed.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return namedTypeName(types.Unalias(t))
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isContextParamField reports (syntactically) whether a parameter field's
// type is context.Context — the fallback when type information is absent.
func isContextParamField(f *ast.Field) bool {
	sel, ok := f.Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && (id.Name == "context" || id.Name == "stdctx")
}

// pkgFuncCall resolves a call to a package-level function and returns its
// package path and name ("context", "Background"). The second result is
// false when the callee is not a package-level function or cannot be
// resolved.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	// A method call has a receiver; package-level functions do not.
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// enclosingFuncs returns the innermost and outermost function nodes
// (FuncDecl or FuncLit) on the stack.
func enclosingFuncs(stack []ast.Node) (inner, outer ast.Node) {
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if outer == nil {
				outer = n
			}
			inner = n
		}
	}
	return inner, outer
}

// isTestFile reports whether the file belongs to the package's test
// corpus (the loader keeps those in Pass.TestFiles, but analyzers that
// walk merged slices can double-check by filename).
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Pos()).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
