package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolDiscipline enforces the sync.Pool round-trip contract on the
// engine's pooled scratch (workspaces via wsPool, arenas via the
// process-wide arena pool): a value obtained from a pool — directly with
// (*sync.Pool).Get or through an acquire wrapper like acquireWorkspace /
// arena.Acquire — must on every path to every return be
//
//   - put back (directly with (*sync.Pool).Put, through a release
//     wrapper like (*workspace).release / arena.Release, or via a
//     deferred release), or
//   - transferred out of the function (stored into a slot, returned).
//
// Additionally:
//
//   - a pooled value must not be used after it was put back on every
//     path reaching the use (use-after-Put races with the next Get), and
//   - a value whose type has a Reset method must be Reset before a
//     direct (*sync.Pool).Put — unless the pool's contract is that
//     values carry no per-use state, which is exactly the kind of
//     decision that belongs in a //lint:allow justification at the Put.
//
// Wrapper recognition is intraprocedural but package-aware: a function
// whose body returns a (*sync.Pool).Get result is an acquire wrapper; a
// function or method that Puts one of its parameters (or its receiver)
// into a sync.Pool is a release wrapper. Like the other resource rules,
// leaks are reported as definite leaks only (no path released or
// transferred the value).
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc: "report pool Get/Put imbalance on the pooled workspaces and arenas: values acquired from a " +
		"sync.Pool (directly or via acquire wrappers) must be put back or transferred on every path, " +
		"never used after Put, and Reset before a direct Put when the type has a Reset method",
	Run: runPoolDiscipline,
}

// poolWrappers is the package-level pre-scan result: which function
// objects acquire from and release to a sync.Pool.
type poolWrappers struct {
	// acquirers: function objects whose body returns a pool.Get result.
	acquirers map[types.Object]bool
	// releasers: function objects that Put a parameter into a pool,
	// keyed to the index of that parameter.
	releasers map[types.Object]int
	// methodReleasers: method objects that Put their receiver.
	methodReleasers map[types.Object]bool
}

func runPoolDiscipline(pass *Pass) error {
	pw := collectPoolWrappers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, g := range funcCFGs(fd) {
				checkPoolGraph(pass, pw, g)
			}
		}
	}
	return nil
}

// poolCall reports whether call is p.<name>(...) on a sync.Pool.
func poolCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// collectPoolWrappers pre-scans the package for acquire/release wrappers.
func collectPoolWrappers(pass *Pass) *poolWrappers {
	pw := &poolWrappers{
		acquirers:       map[types.Object]bool{},
		releasers:       map[types.Object]int{},
		methodReleasers: map[types.Object]bool{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			// Parameter and receiver objects, for Put-target matching.
			paramIdx := map[types.Object]int{}
			if fd.Type.Params != nil {
				i := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if po := pass.TypesInfo.Defs[name]; po != nil {
							paramIdx[po] = i
						}
						i++
					}
				}
			}
			var recvObj types.Object
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recvObj = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.ReturnStmt:
					for _, e := range x.Results {
						if c := poolGetUnder(pass, e); c != nil {
							pw.acquirers[obj] = true
						}
					}
				case *ast.CallExpr:
					if poolCall(pass, x, "Put") && len(x.Args) == 1 {
						if id, ok := x.Args[0].(*ast.Ident); ok {
							po := pass.TypesInfo.Uses[id]
							if po == nil {
								break
							}
							if idx, ok := paramIdx[po]; ok {
								pw.releasers[obj] = idx
							} else if po == recvObj {
								pw.methodReleasers[obj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return pw
}

// poolGetUnder unwraps type assertions and returns the (*sync.Pool).Get
// call under e, or nil.
func poolGetUnder(pass *Pass, e ast.Expr) *ast.CallExpr {
	for {
		switch x := e.(type) {
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			if poolCall(pass, x, "Get") {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// poolKey identifies one tracked pooled value: the variable and the
// acquisition site.
type poolKey struct {
	obj  types.Object
	site token.Pos
}

type poolFact = map[poolKey]resState

// poolFlow is the pooldiscipline transfer function over one function
// graph.
type poolFlow struct {
	pass *Pass
	pw   *poolWrappers
	g    funcGraph
	// diags collects use-after-put / double-put / put-after-escape /
	// missing-Reset reports found while walking facts (deduped by
	// position, emitted after replay). They are recorded only when
	// record is set — i.e. during the replay over the FINAL facts: the
	// conditions are not monotone in the fact, so a partial fact seen
	// mid-fixpoint could assert states the converged solution refutes.
	record bool
	diags  map[token.Pos]string
}

func (pf *poolFlow) Entry() poolFact             { return poolFact{} }
func (pf *poolFlow) Clone(f poolFact) poolFact   { return cloneStates(f) }
func (pf *poolFlow) Join(a, b poolFact) poolFact { return joinStates(a, b) }
func (pf *poolFlow) Equal(a, b poolFact) bool    { return equalStates(a, b) }

func (pf *poolFlow) Apply(f poolFact, n ast.Node) poolFact {
	if _, ok := n.(*ast.DeferStmt); ok {
		// Deferred releases run at the exits, not at registration: they
		// are replayed into the exit fact by checkPoolGraph.
		return f
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		// Releases and uses buried in the RHS (err := run(ws)) first,
		// then the binding itself.
		for _, rhs := range as.Rhs {
			if pf.acquisition(rhs) != nil {
				continue
			}
			inspectNoLits(rhs, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok {
					pf.applyCall(f, c)
				}
				return true
			})
		}
		pf.applyAssign(f, as)
		return f
	}
	if ret, ok := n.(*ast.ReturnStmt); ok {
		for _, e := range ret.Results {
			inspectNoLits(e, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					// A result expression reading a value every path
					// already put back (return len(s.buf)) races like any
					// other use.
					pf.checkUseAfterPut(f, id)
					pf.markObjState(f, id, stateEscaped)
				}
				return true
			})
		}
		return f
	}
	inspectNoLits(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			pf.applyCall(f, x)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id, ok := v.(*ast.Ident); ok {
					pf.markObjState(f, id, stateEscaped)
				}
			}
		case *ast.AssignStmt:
			pf.applyAssign(f, x)
		}
		return true
	})
	return f
}

// acquisition returns the Get/acquire-wrapper call under e, or nil.
func (pf *poolFlow) acquisition(e ast.Expr) *ast.CallExpr {
	if c := poolGetUnder(pf.pass, e); c != nil {
		return c
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var fnObj types.Object
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		fnObj = pf.pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		fnObj = pf.pass.TypesInfo.Uses[fn.Sel]
	}
	if fnObj != nil && pf.pw.acquirers[fnObj] {
		return call
	}
	return nil
}

func (pf *poolFlow) applyAssign(f poolFact, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lhs := as.Lhs[i]
		if call := pf.acquisition(rhs); call != nil {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pf.identObj(id); obj != nil {
					for k := range f {
						if k.obj == obj {
							delete(f, k)
						}
					}
					f[poolKey{obj: obj, site: call.Pos()}] = stateHeld
				}
			}
			// Acquired straight into a slot (wss[w] = acquireWorkspace()):
			// the container owns it.
			continue
		}
		if id, ok := rhs.(*ast.Ident); ok {
			// Storing or aliasing a tracked value transfers it.
			if obj := pf.identObj(id); obj != nil && pf.tracked(f, obj) {
				pf.markObjState(f, id, stateEscaped)
			}
		}
	}
}

// applyCall handles releases (direct Put, release wrappers, release
// methods) and flags use-after-put on arguments.
func (pf *poolFlow) applyCall(f poolFact, call *ast.CallExpr) {
	// Direct (*sync.Pool).Put(x).
	if poolCall(pf.pass, call, "Put") && len(call.Args) == 1 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			pf.checkResetBeforePut(f, call, id)
			pf.release(f, id, call)
		}
		return
	}
	// Release wrapper: Release(x) / helper(…, x, …).
	var fnObj types.Object
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		fnObj = pf.pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		fnObj = pf.pass.TypesInfo.Uses[fn.Sel]
	}
	if fnObj != nil {
		if idx, ok := pf.pw.releasers[fnObj]; ok && idx < len(call.Args) {
			if id, ok := call.Args[idx].(*ast.Ident); ok {
				pf.release(f, id, call)
				return
			}
		}
		if pf.pw.methodReleasers[fnObj] {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					pf.release(f, id, call)
					return
				}
			}
		}
	}
	// Any other call mentioning a released value is a use-after-put.
	for _, arg := range call.Args {
		inspectNoLits(arg, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				pf.checkUseAfterPut(f, id)
			}
			return true
		})
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			pf.checkUseAfterPut(f, id)
		}
	}
}

// release marks id's value released, reporting double puts and puts of
// escaped values.
func (pf *poolFlow) release(f poolFact, id *ast.Ident, call *ast.CallExpr) {
	obj := pf.identObj(id)
	if obj == nil {
		return
	}
	for k, s := range f {
		if k.obj != obj {
			continue
		}
		switch {
		case s.mayBeHeld():
			f[k] = (s &^ stateHeld) | stateReleased
		case s&stateReleased != 0:
			if pf.record {
				pf.diags[call.Pos()] = "pooled value " + id.Name + " is put back twice on some path: " +
					"the second Put races with whoever Got it in between"
			}
		case s&stateEscaped != 0:
			if pf.record {
				pf.diags[call.Pos()] = "pooled value " + id.Name + " is put back after escaping " +
					"(stored or returned): the new owner still holds it"
			}
		}
	}
}

// checkUseAfterPut reports uses of values that every path has already
// put back.
func (pf *poolFlow) checkUseAfterPut(f poolFact, id *ast.Ident) {
	if !pf.record {
		return
	}
	obj := pf.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	for k, s := range f {
		// Definite only: put back on every path, never re-held or moved.
		if k.obj == obj && s&(stateHeld|stateEscaped) == 0 && s&stateReleased != 0 {
			pf.diags[id.Pos()] = "pooled value " + id.Name + " used after it was put back: " +
				"the pool may already have handed it to another goroutine"
		}
	}
}

// checkResetBeforePut reports a direct Put of a value whose type has a
// Reset method that no path called. For tracked values the check is
// path-sensitive (the stateReset bit); for parameters and receivers it
// is lexical over the function body.
func (pf *poolFlow) checkResetBeforePut(f poolFact, call *ast.CallExpr, id *ast.Ident) {
	if !pf.record {
		return
	}
	obj := pf.identObj(id)
	if obj == nil || !hasResetMethod(obj.Type()) {
		return
	}
	tracked := false
	for k, s := range f {
		if k.obj == obj {
			tracked = true
			if s&stateReset == 0 && s.mayBeHeld() {
				pf.diags[call.Pos()] = resetDiag(id.Name)
			}
		}
	}
	if tracked {
		return
	}
	// Untracked (parameter/receiver, e.g. a release wrapper's body):
	// accept any lexical <id>.Reset(...) call in the graph.
	for _, blk := range pf.g.cfg.Blocks {
		for _, n := range blk.Nodes {
			found := false
			inspectNoLits(n, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok && isResetCallOn(pf.pass, c, obj) {
					found = true
				}
				return true
			})
			if found {
				return
			}
		}
	}
	pf.diags[call.Pos()] = resetDiag(id.Name)
}

func resetDiag(name string) string {
	return "pooled value " + name + " is Put without a Reset: its type has a Reset method, so per-use " +
		"state bleeds into the next Get (call Reset first, or annotate with //lint:allow pooldiscipline <why> " +
		"if the pool's contract is that values carry no per-use state)"
}

// isResetCallOn reports whether call is <x>.Reset(...) where x resolves
// to obj.
func isResetCallOn(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reset" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// hasResetMethod reports whether t (or *t) has a Reset method.
func hasResetMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Reset" {
			return true
		}
	}
	return false
}

func (pf *poolFlow) markObjState(f poolFact, id *ast.Ident, state resState) {
	obj := pf.identObj(id)
	if obj == nil {
		return
	}
	for k, s := range f {
		if k.obj == obj && s.mayBeHeld() {
			f[k] = (s &^ stateHeld) | state
		}
	}
}

func (pf *poolFlow) identObj(id *ast.Ident) types.Object {
	if obj := pf.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pf.pass.TypesInfo.Defs[id]
}

func (pf *poolFlow) tracked(f poolFact, obj types.Object) bool {
	for k := range f {
		if k.obj == obj {
			return true
		}
	}
	return false
}

// checkPoolGraph runs the fixpoint over one function graph, reports
// definite leaks at returns, and emits the usage diagnostics collected
// along the way.
func checkPoolGraph(pass *Pass, pw *poolWrappers, g funcGraph) {
	pf := &poolFlow{pass: pass, pw: pw, g: g, diags: map[token.Pos]string{}}
	// Track Reset calls path-sensitively by folding them into Apply via a
	// wrapper: Reset on a tracked value sets the stateReset bit.
	sol := Fixpoint[poolFact](g.cfg, &poolResetFlow{pf})
	pf.record = true
	reported := map[token.Pos]bool{}
	ReplayFacts[poolFact](g.cfg, &poolResetFlow{pf}, sol, func(f poolFact, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		eff := pf.Clone(f)
		eff = pf.Apply(eff, ret)
		for _, d := range g.cfg.Defers {
			applyDeferredPoolReleases(pf, eff, d)
		}
		var leaks []poolKey
		for k, s := range eff {
			if s.mayBeHeld() && s&(stateReleased|stateEscaped) == 0 {
				leaks = append(leaks, k)
			}
		}
		if len(leaks) == 0 || reported[ret.Pos()] {
			return
		}
		reported[ret.Pos()] = true
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].site < leaks[j].site })
		k := leaks[0]
		pass.Reportf(ret.Pos(),
			"return path in %s never puts back the pooled value %q acquired at line %d: "+
				"pair every Get/acquire with a Put/release on every path (a defer is the usual shape)",
			g.name, k.obj.Name(), pass.Fset.Position(k.site).Line)
	})
	var ps []token.Pos
	for p := range pf.diags {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	for _, p := range ps {
		pass.Reportf(p, "%s", pf.diags[p])
	}
}

// poolResetFlow wraps poolFlow to also record Reset calls on tracked
// values (the stateReset bit) before delegating.
type poolResetFlow struct{ *poolFlow }

func (pr *poolResetFlow) Apply(f poolFact, n ast.Node) poolFact {
	inspectNoLits(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pr.poolFlow.pass.TypesInfo.Uses[id]; obj != nil {
					for k, s := range f {
						if k.obj == obj {
							f[k] = s | stateReset
						}
					}
				}
			}
		}
		return true
	})
	return pr.poolFlow.Apply(f, n)
}

// applyDeferredPoolReleases replays releases a defer performs (directly
// or inside a deferred closure) into the exit fact.
func applyDeferredPoolReleases(pf *poolFlow, f poolFact, d *ast.DeferStmt) {
	ast.Inspect(d, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if poolCall(pf.pass, call, "Put") && len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				pf.markObjState(f, id, stateReleased)
			}
			return true
		}
		var fnObj types.Object
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			fnObj = pf.pass.TypesInfo.Uses[fn]
		case *ast.SelectorExpr:
			fnObj = pf.pass.TypesInfo.Uses[fn.Sel]
		}
		if fnObj != nil {
			if idx, ok := pf.pw.releasers[fnObj]; ok && idx < len(call.Args) {
				if id, ok := call.Args[idx].(*ast.Ident); ok {
					pf.markObjState(f, id, stateReleased)
				}
			}
			if pf.pw.methodReleasers[fnObj] {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						pf.markObjState(f, id, stateReleased)
					}
				}
			}
		}
		return true
	})
}
