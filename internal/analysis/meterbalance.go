package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MeterBalance enforces the cell-accounting contract behind the paper's
// complexity claims: the Meter's LiveCells gauge (Remark 1's two-layer
// space measure) is only trustworthy if every (*Meter).alloc is paired
// with a (*Meter).free on every exit path — including the early
// ErrCanceled / ErrBudgetExceeded returns the cancellable engine added.
//
// The check is path-sensitive: a CFG is built per function (and per
// function literal) and a worklist fixpoint tracks, for every alloc call
// site, whether some path can reach a return with the cells still held.
// An alloc site is keyed by the source text of its argument, so
// m.free(size) discharges m.alloc(size) specifically; a free whose
// argument matches no outstanding alloc conservatively discharges every
// outstanding site (the meter counts quantities, not identities).
//
// Ownership transfers are PROVEN, not waived: a return whose result
// carries a table — a []uint32 / [][]uint32, or a struct holding one
// (fsContext, sharedContext, dpState) — hands every outstanding
// allocation to the caller, so the path is balanced by transfer. This is
// what discharges compact / compactShared / the compose ladder without
// an annotation: the allocated cells leave through the return value, and
// a `return nil, err` path (a nil carrier) gets no such credit.
//
// Deferred frees and the abort/cleanup-closure idiom (a local closure
// containing frees, called before an early return) are both replayed
// into the exit fact before a path is judged.
var MeterBalance = &Analyzer{
	Name: "meterbalance",
	Doc: "report paths that return with (*Meter).alloc'd cells still held and not transferred; " +
		"pair every alloc with a free on every path or return the table to the caller",
	Run: runMeterBalance,
}

// meterMethodCall reports whether call is m.<name>(...) on a receiver
// whose (possibly pointer) type is named Meter.
func meterMethodCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
		return namedTypeName(tv.Type) == "Meter"
	}
	return false
}

func runMeterBalance(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The Meter's own methods are the accounting primitives, not
			// their users.
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok && namedTypeName(tv.Type) == "Meter" {
					continue
				}
			}
			for _, g := range funcCFGs(fd) {
				checkMeterGraph(pass, g)
			}
		}
	}
	return nil
}

// meterKey identifies one alloc site: its position plus the source text
// of its argument (the quantity being accounted).
type meterKey struct {
	pos token.Pos
	arg string
}

// meterFlow is the meterbalance transfer function over one function
// graph.
type meterFlow struct {
	pass *Pass
	g    funcGraph
	// closureFrees maps a local variable bound to a function literal to
	// the free-argument texts its body performs (the abort-closure
	// idiom); a call through the variable replays them.
	closureFrees map[types.Object][]string
	// hasAnyFree records whether the graph contains any free at all
	// (directly, deferred, or in a local closure); hasCarrierReturn
	// whether any return transfers a table. Together they select between
	// the "no free anywhere" and the "leaking path" diagnostic.
	hasAnyFree       bool
	hasCarrierReturn bool
}

type meterFact = map[meterKey]resState

func (mf *meterFlow) Entry() meterFact              { return meterFact{} }
func (mf *meterFlow) Clone(f meterFact) meterFact   { return cloneStates(f) }
func (mf *meterFlow) Join(a, b meterFact) meterFact { return joinStates(a, b) }
func (mf *meterFlow) Equal(a, b meterFact) bool     { return equalStates(a, b) }

func (mf *meterFlow) Apply(f meterFact, n ast.Node) meterFact {
	inspectNoLits(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case meterMethodCall(mf.pass, call, "alloc"):
			arg := ""
			if len(call.Args) > 0 {
				arg = exprText(call.Args[0])
			}
			f[meterKey{pos: call.Pos(), arg: arg}] = stateHeld
		case meterMethodCall(mf.pass, call, "free"):
			arg := ""
			if len(call.Args) > 0 {
				arg = exprText(call.Args[0])
			}
			applyMeterFree(f, arg)
		default:
			// A call through a local cleanup closure replays its frees.
			if id, ok := call.Fun.(*ast.Ident); ok {
				if obj := mf.pass.TypesInfo.Uses[id]; obj != nil {
					for _, arg := range mf.closureFrees[obj] {
						applyMeterFree(f, arg)
					}
				}
			}
		}
		return true
	})
	if ret, ok := n.(*ast.ReturnStmt); ok {
		if mf.carrierReturn(ret) {
			for k, s := range f {
				if s.mayBeHeld() {
					f[k] = (s &^ stateHeld) | stateEscaped
				}
			}
		}
	}
	return f
}

// applyMeterFree discharges held allocations: sites whose argument text
// matches exactly, or — when none matches — every held site (a free of
// cells the analyzer cannot attribute still lowers LiveCells).
func applyMeterFree(f meterFact, arg string) {
	matched := false
	for k, s := range f {
		if k.arg == arg && s.mayBeHeld() {
			f[k] = (s &^ stateHeld) | stateReleased
			matched = true
		}
	}
	if matched {
		return
	}
	for k, s := range f {
		if s.mayBeHeld() {
			f[k] = (s &^ stateHeld) | stateReleased
		}
	}
}

// carrierReturn reports whether ret transfers table ownership to the
// caller: some non-nil result's type is (or contains) a table slice.
func (mf *meterFlow) carrierReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		// A bare return transfers through named results.
		if res := mf.g.typ.Results; res != nil {
			for _, field := range res.List {
				if len(field.Names) == 0 {
					continue
				}
				if tv, ok := mf.pass.TypesInfo.Types[field.Type]; ok && isTableCarrier(tv.Type) {
					return true
				}
			}
		}
		return false
	}
	for _, e := range ret.Results {
		if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if tv, ok := mf.pass.TypesInfo.Types[e]; ok && isTableCarrier(tv.Type) {
			return true
		}
	}
	return false
}

// isTableCarrier reports whether t is a table slice ([]uint32 or
// [][]uint32) or a (pointer to a) struct with a table-slice field — the
// shapes whose return moves metered cells across the function boundary.
func isTableCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	u := t.Underlying()
	if isTableSlice(u) {
		return true
	}
	st, ok := u.(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isTableSlice(st.Field(i).Type().Underlying()) {
			return true
		}
	}
	return false
}

// isTableSlice matches []uint32 and [][]uint32.
func isTableSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem().Underlying()
	if b, ok := elem.(*types.Basic); ok {
		return b.Kind() == types.Uint32
	}
	if inner, ok := elem.(*types.Slice); ok {
		if b, ok := inner.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Uint32
		}
	}
	return false
}

// checkMeterGraph runs the fixpoint over one function graph and reports
// paths that return with cells held.
func checkMeterGraph(pass *Pass, g funcGraph) {
	mf := &meterFlow{pass: pass, g: g, closureFrees: map[types.Object][]string{}}

	// Pre-scan: local cleanup closures, the presence of any free, and
	// whether any return transfers a table.
	for _, blk := range g.cfg.Blocks {
		for _, n := range blk.Nodes {
			collectMeterPrescan(pass, mf, n)
			if ret, ok := n.(*ast.ReturnStmt); ok && mf.carrierReturn(ret) {
				mf.hasCarrierReturn = true
			}
		}
	}
	for _, d := range g.cfg.Defers {
		ast.Inspect(d, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok && meterMethodCall(pass, call, "free") {
				mf.hasAnyFree = true
			}
			return true
		})
	}

	sol := Fixpoint[meterFact](g.cfg, mf)
	reportedSites := map[token.Pos]bool{}
	ReplayFacts[meterFact](g.cfg, mf, sol, func(f meterFact, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		// Judge the exit fact after replaying deferred frees.
		eff := mf.Clone(f)
		for _, d := range g.cfg.Defers {
			applyDeferredMeterFrees(pass, mf, eff, d)
		}
		if mf.carrierReturn(ret) {
			return
		}
		// Report definite leaks only: the site is held and NO path into
		// this return ever released or transferred it. A key carrying a
		// Released/Escaped bit reached this exit balanced on some path —
		// typically a zero-trip retire loop or a flag-correlated free —
		// and flagging it would punish the engine's own rolling-layer
		// idiom (see runDP's abort sweep).
		var leaks []meterKey
		for k, s := range eff {
			if s.mayBeHeld() && s&(stateReleased|stateEscaped) == 0 {
				leaks = append(leaks, k)
			}
		}
		if len(leaks) == 0 {
			return
		}
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
		if !mf.hasAnyFree && !mf.hasCarrierReturn {
			// The classic leak: allocs with no release anywhere. Anchor at
			// the alloc so an ownership-transfer annotation sits with it.
			for _, k := range leaks {
				if !reportedSites[k.pos] {
					reportedSites[k.pos] = true
					pass.Reportf(k.pos,
						"(*Meter).alloc with no (*Meter).free anywhere in %s: metered cells leak unless ownership transfers to the caller (return the table or annotate with //lint:allow meterbalance <why>)",
						g.name)
				}
			}
			return
		}
		k := leaks[0]
		pass.Reportf(ret.Pos(),
			"return path in %s after (*Meter).alloc at line %d with no (*Meter).free on this path: early exits (ErrCanceled/ErrBudgetExceeded) must release every table they own",
			g.name, pass.Fset.Position(k.pos).Line)
	})
}

// collectMeterPrescan records local closures containing frees and whether
// any free exists in the graph at all.
func collectMeterPrescan(pass *Pass, mf *meterFlow, n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if meterMethodCall(pass, x, "free") {
				mf.hasAnyFree = true
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(x.Lhs) {
					continue
				}
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				var frees []string
				ast.Inspect(lit.Body, func(y ast.Node) bool {
					if call, ok := y.(*ast.CallExpr); ok && meterMethodCall(pass, call, "free") {
						arg := ""
						if len(call.Args) > 0 {
							arg = exprText(call.Args[0])
						}
						frees = append(frees, arg)
						mf.hasAnyFree = true
					}
					return true
				})
				if len(frees) > 0 {
					mf.closureFrees[obj] = frees
				}
			}
		}
		return true
	})
}

// applyDeferredMeterFrees replays the frees a defer performs (directly or
// inside a deferred closure) into the exit fact.
func applyDeferredMeterFrees(pass *Pass, mf *meterFlow, f meterFact, d *ast.DeferStmt) {
	ast.Inspect(d, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if meterMethodCall(pass, call, "free") {
			arg := ""
			if len(call.Args) > 0 {
				arg = exprText(call.Args[0])
			}
			applyMeterFree(f, arg)
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				for _, arg := range mf.closureFrees[obj] {
					applyMeterFree(f, arg)
				}
			}
		}
		return true
	})
}

// inspectNoLits walks n without descending into nested function literals
// (each literal is analyzed as its own graph).
func inspectNoLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return fn(x)
	})
}
