package analysis

import (
	"go/ast"
	"go/token"
)

// MeterBalance enforces the cell-accounting contract behind the paper's
// complexity claims: the Meter's LiveCells gauge (Remark 1's two-layer
// space measure) is only trustworthy if every (*Meter).alloc is paired
// with a (*Meter).free on every exit path — including the early
// ErrCanceled / ErrBudgetExceeded returns the cancellable engine added.
//
// The check is a lexical approximation of path balance, tuned to the
// repository's idiom rather than a full data-flow analysis:
//
//   - a function that calls alloc but never free on any path is flagged
//     at the alloc (the classic leak, unless ownership of the cells
//     transfers to the caller — annotate those sites);
//   - a return statement lexically after the first alloc with no free
//     (and no deferred free) anywhere before it is flagged (the classic
//     early-return-on-error leak);
//   - free calls inside function literals defined earlier in the same
//     function (the abort/cleanup-closure idiom of runDP) count, since
//     the closure's text precedes the return.
//
// Ownership-transfer helpers (compact, compactShared: the callee
// allocates a table the caller must free) are sanctioned false positives,
// suppressed with //lint:allow meterbalance <why>.
var MeterBalance = &Analyzer{
	Name: "meterbalance",
	Doc: "report functions that alloc Meter cells without freeing them on every return path; " +
		"pair every (*Meter).alloc with a (*Meter).free or annotate the ownership transfer",
	Run: runMeterBalance,
}

// meterMethodCall reports whether call is m.<name>(...) on a receiver
// whose (possibly pointer) type is named Meter.
func meterMethodCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
		return namedTypeName(tv.Type) == "Meter"
	}
	return false
}

func runMeterBalance(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The Meter's own methods are the accounting primitives, not
			// their users.
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok && namedTypeName(tv.Type) == "Meter" {
					continue
				}
			}
			checkMeterBalance(pass, fd)
		}
	}
	return nil
}

func checkMeterBalance(pass *Pass, fd *ast.FuncDecl) {
	var (
		allocs  []token.Pos
		frees   []token.Pos
		returns []token.Pos
		deferOK bool
	)
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if meterMethodCall(pass, n, "alloc") {
				allocs = append(allocs, n.Pos())
			}
			if meterMethodCall(pass, n, "free") {
				frees = append(frees, n.Pos())
			}
		case *ast.ReturnStmt:
			// A return inside a nested function literal exits the
			// closure, not this function: only the function's own
			// returns are its exit paths. (Closure frees still count
			// above: a cleanup closure defined before a return
			// lexically precedes it.)
			if inner, _ := enclosingFuncs(stack); inner == nil {
				returns = append(returns, n.Pos())
			}
		case *ast.DeferStmt:
			// A deferred free (directly or inside a deferred closure)
			// balances every path at once.
			ast.Inspect(n, func(d ast.Node) bool {
				if call, ok := d.(*ast.CallExpr); ok && meterMethodCall(pass, call, "free") {
					deferOK = true
				}
				return true
			})
		}
		return true
	})
	if len(allocs) == 0 || deferOK {
		return
	}
	firstAlloc := allocs[0]
	if len(frees) == 0 {
		pass.Reportf(firstAlloc,
			"(*Meter).alloc with no (*Meter).free anywhere in %s: metered cells leak unless ownership transfers to the caller (annotate with //lint:allow meterbalance <why>)",
			fd.Name.Name)
		return
	}
	for _, ret := range returns {
		if ret <= firstAlloc {
			continue
		}
		balanced := false
		for _, fr := range frees {
			if fr < ret {
				balanced = true
				break
			}
		}
		if !balanced {
			pass.Reportf(ret,
				"return path in %s after (*Meter).alloc with no (*Meter).free before it: early exits (ErrCanceled/ErrBudgetExceeded) must release every table they own",
				fd.Name.Name)
		}
	}
}
