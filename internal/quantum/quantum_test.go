package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func costsFromSlice(c []uint64) func(uint64) uint64 {
	return func(i uint64) uint64 { return c[i] }
}

func TestExactFindsMinimum(t *testing.T) {
	m := &Meter{}
	e := &Exact{Eps: 0.001, Meter: m}
	costs := []uint64{5, 3, 9, 3, 7}
	got := e.MinIndex(5, costsFromSlice(costs))
	if got != 1 {
		t.Errorf("MinIndex = %d, want 1 (first minimum)", got)
	}
	if m.OracleEvals != 5 || m.Invocations != 1 {
		t.Errorf("meter: %+v", m)
	}
	want := LemmaSixQueries(5, 0.001)
	if math.Abs(m.Queries-want) > 1e-12 {
		t.Errorf("Queries = %v, want %v", m.Queries, want)
	}
}

func TestExactNilMeter(t *testing.T) {
	e := &Exact{Eps: 0.5}
	if got := e.MinIndex(3, costsFromSlice([]uint64{2, 1, 2})); got != 1 {
		t.Errorf("nil-meter MinIndex = %d", got)
	}
}

func TestExactPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on empty domain")
		}
	}()
	(&Exact{}).MinIndex(0, func(uint64) uint64 { return 0 })
}

func TestLemmaSixQueries(t *testing.T) {
	if LemmaSixQueries(0, 0.1) != 0 {
		t.Errorf("N=0 should cost 0")
	}
	// √100·ln(1/e^-1)= 10·1 with eps = 1/e.
	got := LemmaSixQueries(100, math.Exp(-1))
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("LemmaSixQueries(100, 1/e) = %v, want 10", got)
	}
	// Degenerate eps values fall back to a sane default rather than ±Inf.
	if v := LemmaSixQueries(4, 0); math.IsInf(v, 0) || v <= 0 {
		t.Errorf("eps=0 gave %v", v)
	}
	if v := LemmaSixQueries(4, 2); math.IsInf(v, 0) || v <= 0 {
		t.Errorf("eps=2 gave %v", v)
	}
}

func TestNoisyEpsZeroIsExact(t *testing.T) {
	q := &Noisy{Eps: 0, Rng: rand.New(rand.NewSource(1))}
	costs := []uint64{4, 4, 1, 9}
	for i := 0; i < 20; i++ {
		if got := q.MinIndex(4, costsFromSlice(costs)); got != 2 {
			t.Fatalf("eps=0 returned %d", got)
		}
	}
}

func TestNoisyEpsOneAlwaysErrs(t *testing.T) {
	q := &Noisy{Eps: 1, Rng: rand.New(rand.NewSource(2))}
	costs := []uint64{4, 4, 1, 9}
	for i := 0; i < 20; i++ {
		got := q.MinIndex(4, costsFromSlice(costs))
		if costs[got] == 1 {
			t.Fatalf("eps=1 returned a minimum")
		}
	}
}

func TestNoisyConstantCostsReturnValidIndex(t *testing.T) {
	// With all costs equal there is no non-minimal index; even ε=1 must
	// return the minimum.
	q := &Noisy{Eps: 1, Rng: rand.New(rand.NewSource(3))}
	got := q.MinIndex(5, func(uint64) uint64 { return 7 })
	if got >= 5 {
		t.Errorf("invalid index %d", got)
	}
}

func TestNoisyErrorRateApproximatesEps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := &Noisy{Eps: 0.3, Rng: rng}
	costs := []uint64{0, 1, 2, 3}
	errs := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if q.MinIndex(4, costsFromSlice(costs)) != 0 {
			errs++
		}
	}
	rate := float64(errs) / trials
	if math.Abs(rate-0.3) > 0.05 {
		t.Errorf("error rate %v, want ≈ 0.3", rate)
	}
}

func TestDurrHoyerAlwaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := &DurrHoyer{Rng: rng, Meter: &Meter{}}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		costs := make([]uint64, n)
		min := uint64(math.MaxUint64)
		for i := range costs {
			costs[i] = uint64(rng.Intn(40))
			if costs[i] < min {
				min = costs[i]
			}
		}
		got := d.MinIndex(uint64(n), costsFromSlice(costs))
		if costs[got] != min {
			t.Fatalf("DurrHoyer returned cost %d, min is %d", costs[got], min)
		}
	}
}

func TestDurrHoyerQueryScaling(t *testing.T) {
	// Average metered queries over random instances must stay within a
	// modest constant of √N (Dürr–Høyer's 22.5·√N bound is loose; the
	// expectation is ≈ 4.5·√N for distinct costs, lower with ties).
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{16, 64, 256, 1024} {
		m := &Meter{}
		d := &DurrHoyer{Rng: rng, Meter: m}
		const reps = 30
		for r := 0; r < reps; r++ {
			costs := make([]uint64, n)
			for i := range costs {
				costs[i] = rng.Uint64() % 1000003
			}
			d.MinIndex(uint64(n), costsFromSlice(costs))
		}
		avg := m.Queries / reps
		bound := 25 * math.Sqrt(float64(n))
		if avg > bound {
			t.Errorf("n=%d: avg queries %v exceeds %v", n, avg, bound)
		}
		if avg < math.Sqrt(float64(n)) {
			t.Errorf("n=%d: avg queries %v below √N — final verification not charged?", n, avg)
		}
	}
}

func TestMeterNilSafety(t *testing.T) {
	var m *Meter
	m.addQueries(1)
	m.addEvals(1)
	m.invoked()
	d := &DurrHoyer{Rng: rand.New(rand.NewSource(1))}
	if got := d.MinIndex(4, costsFromSlice([]uint64{3, 1, 2, 8})); got != 1 {
		t.Errorf("nil meter DurrHoyer got %d", got)
	}
}
