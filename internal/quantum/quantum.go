// Package quantum is the simulated quantum substrate required by the
// divide-and-conquer ordering algorithm (OptOBDD). The papers' algorithm
// runs Dürr–Høyer quantum minimum finding (Lemma 6 of the restatement) over
// exponentially large candidate sets stored in QRAM. No quantum hardware is
// available, so — per the task's substitution rule — this package provides
// classical simulators that
//
//   - return minima over the same search spaces, exercising the identical
//     control flow of the consuming algorithm;
//   - meter the number of oracle queries a quantum device would spend,
//     using the Lemma 6 bound O(√N·log(1/ε)) and, for the faithful
//     Dürr–Høyer simulation, the per-round Grover search costs Θ(√(N/t));
//   - optionally inject the advertised error: with probability ε the
//     reported minimizer is not minimal, realizing Theorem 1's "the OBDD
//     is always valid but non-minimum with exponentially small
//     probability".
//
// The consuming code treats the minimizer as an opaque strategy, so the
// simulation boundary is exactly the boundary a QRAM implementation would
// have.
package quantum

import (
	"context"
	"math"
	"math/rand"

	"obddopt/internal/obs"
)

// ctxStopped reports whether the optional cancellation context has fired.
// All simulators poll it between oracle evaluations and, once it fires,
// stop scanning and return the best index seen so far — the result stays
// a valid index but loses the minimality guarantee, exactly the
// degradation mode the consuming algorithms must already tolerate for the
// noisy simulator.
func ctxStopped(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Meter accumulates cost-model counters across minimum-finding calls.
type Meter struct {
	// Queries is the metered quantum oracle-query count: what a quantum
	// device would spend under Lemma 6 / Dürr–Høyer accounting.
	Queries float64
	// OracleEvals is the number of classical cost-oracle evaluations the
	// simulator actually performed (the classical simulation overhead).
	OracleEvals uint64
	// Invocations counts minimum-finding calls.
	Invocations uint64
}

func (m *Meter) addQueries(q float64) {
	if m != nil {
		m.Queries += q
	}
}

func (m *Meter) addEvals(n uint64) {
	if m != nil {
		m.OracleEvals += n
	}
}

func (m *Meter) invoked() {
	if m != nil {
		m.Invocations++
	}
}

// Minimizer finds an index x ∈ [0, n) minimizing cost(x). Implementations
// may be exact or may err with bounded probability, but must always return
// a valid index for n ≥ 1.
type Minimizer interface {
	MinIndex(n uint64, cost func(uint64) uint64) uint64
}

// LemmaSixQueries returns the query budget of Lemma 6: c·√N·ln(1/ε) with
// unit constant, the quantity metered per minimum-finding invocation.
func LemmaSixQueries(n uint64, eps float64) float64 {
	if n == 0 {
		return 0
	}
	if eps <= 0 || eps >= 1 {
		eps = 1e-9
	}
	return math.Sqrt(float64(n)) * math.Log(1/eps)
}

// Exact is the default simulator: a classical exhaustive scan that returns
// the true minimizer (first index achieving the minimum) while charging the
// Lemma 6 quantum query budget for error probability Eps.
type Exact struct {
	// Eps is the error probability the metered quantum algorithm would be
	// configured for. It only affects metering; results are always exact.
	Eps float64
	// Meter, if non-nil, accumulates cost counters.
	Meter *Meter
	// Trace, if non-nil, receives one KindQuantumBatch event per
	// minimum-finding call.
	Trace obs.Tracer
	// Ctx, if non-nil, is polled between oracle evaluations; once it is
	// done the scan stops early and the best index seen so far is
	// returned (see ctxStopped).
	Ctx context.Context
}

// MinIndex implements Minimizer.
func (e *Exact) MinIndex(n uint64, cost func(uint64) uint64) uint64 {
	if n == 0 {
		panic("quantum: MinIndex over empty domain") //lint:allow nopanic documented programmer-error precondition: minimum over an empty domain is undefined
	}
	e.Meter.invoked()
	queries := LemmaSixQueries(n, e.Eps)
	e.Meter.addQueries(queries)
	best, bestCost := uint64(0), cost(0)
	evals := uint64(1)
	for x := uint64(1); x < n; x++ {
		if ctxStopped(e.Ctx) {
			break
		}
		evals++
		if c := cost(x); c < bestCost {
			best, bestCost = x, c
		}
	}
	e.Meter.addEvals(evals)
	emitBatch(e.Trace, n, queries, bestCost)
	return best
}

// emitBatch reports one completed minimum-finding batch to the tracer.
func emitBatch(tr obs.Tracer, n uint64, queries float64, minCost uint64) {
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindQuantumBatch, Evals: n, Queries: queries, Cost: minCost})
	}
}

// Noisy wraps exhaustive minimum finding with error injection: with
// probability Eps it returns a uniformly random non-minimal index when one
// exists. It realizes the failure mode the quantum algorithm admits, for
// experiment E13.
type Noisy struct {
	// Eps is the injection probability per invocation.
	Eps float64
	// Rng drives the injection; it must be non-nil.
	Rng *rand.Rand
	// Meter, if non-nil, accumulates cost counters.
	Meter *Meter
	// Trace, if non-nil, receives one KindQuantumBatch event per call.
	Trace obs.Tracer
	// Ctx, if non-nil, is polled between oracle evaluations; once it is
	// done the scan stops early and the best index seen so far is
	// returned (see ctxStopped).
	Ctx context.Context
}

// MinIndex implements Minimizer.
func (q *Noisy) MinIndex(n uint64, cost func(uint64) uint64) uint64 {
	if n == 0 {
		panic("quantum: MinIndex over empty domain") //lint:allow nopanic documented programmer-error precondition: minimum over an empty domain is undefined
	}
	q.Meter.invoked()
	queries := LemmaSixQueries(n, q.Eps)
	q.Meter.addQueries(queries)
	costs := make([]uint64, n)
	best, bestCost := uint64(0), cost(0)
	costs[0] = bestCost
	scanned := uint64(1)
	for x := uint64(1); x < n; x++ {
		if ctxStopped(q.Ctx) {
			break
		}
		c := cost(x)
		costs[x] = c
		scanned++
		if c < bestCost {
			best, bestCost = x, c
		}
	}
	q.Meter.addEvals(scanned)
	emitBatch(q.Trace, n, queries, bestCost)
	if scanned < n {
		// Partial scan: injecting a "non-minimal" index from unscanned
		// entries would be meaningless, so return the incumbent directly.
		return best
	}
	if q.Rng.Float64() < q.Eps {
		// Collect non-minimal indices; return one at random if any exist.
		var others []uint64
		for x := uint64(0); x < n; x++ {
			if costs[x] != bestCost {
				others = append(others, x)
			}
		}
		if len(others) > 0 {
			return others[q.Rng.Intn(len(others))]
		}
	}
	return best
}

// DurrHoyer is a faithful classical simulation of the Dürr–Høyer threshold
// minimum-finding algorithm: it repeatedly samples a uniformly random
// element strictly better than the current threshold (the behavior of the
// quantum exponential search) until none exists, metering the Grover cost
// Θ(√(N/t)) of each round, where t is the number of elements below the
// threshold. Its metered query totals concentrate around the O(√N) bound,
// which experiment E6 plots. Results are always exact minima: the
// simulation errs only in cost, never in value.
type DurrHoyer struct {
	// Rng drives the threshold sampling; it must be non-nil.
	Rng *rand.Rand
	// Meter, if non-nil, accumulates cost counters.
	Meter *Meter
	// Trace, if non-nil, receives one KindQuantumBatch event per call.
	Trace obs.Tracer
	// Ctx, if non-nil, is polled between oracle evaluations; once it is
	// done the scan stops early and the best index seen so far is
	// returned (see ctxStopped).
	Ctx context.Context
}

// MinIndex implements Minimizer.
func (d *DurrHoyer) MinIndex(n uint64, cost func(uint64) uint64) uint64 {
	if n == 0 {
		panic("quantum: MinIndex over empty domain") //lint:allow nopanic documented programmer-error precondition: minimum over an empty domain is undefined
	}
	d.Meter.invoked()
	// The simulator evaluates every cost once (classically unavoidable);
	// the metered quantum cost is accumulated per threshold round.
	costs := make([]uint64, n)
	for x := uint64(0); x < n; x++ {
		if ctxStopped(d.Ctx) {
			// Partial scan: fall back to a plain argmin over what was
			// evaluated so far; the threshold rounds below would read
			// unevaluated zeros.
			best := uint64(0)
			for y := uint64(1); y < x; y++ {
				if costs[y] < costs[best] {
					best = y
				}
			}
			d.Meter.addEvals(x)
			emitBatch(d.Trace, n, 0, costs[best])
			return best
		}
		costs[x] = cost(x)
	}
	d.Meter.addEvals(n)

	y := uint64(d.Rng.Int63n(int64(n)))
	queries := 1.0
	d.Meter.addQueries(1)
	for {
		// The threshold strictly improves every round, so the loop
		// terminates — but a caller's deadline must not have to wait for
		// the full descent. Stopping here keeps the same degradation
		// contract as the scan above: y is a valid index, merely not
		// proven minimal.
		if ctxStopped(d.Ctx) {
			emitBatch(d.Trace, n, queries, costs[y])
			return y
		}
		// Elements strictly better than the current threshold.
		var better []uint64
		for x := uint64(0); x < n; x++ {
			if costs[x] < costs[y] {
				better = append(better, x)
			}
		}
		t := uint64(len(better))
		if t == 0 {
			// Final verification search: no marked elements; Grover
			// needs Θ(√N) iterations to conclude absence w.h.p.
			d.Meter.addQueries(math.Sqrt(float64(n)))
			queries += math.Sqrt(float64(n))
			emitBatch(d.Trace, n, queries, costs[y])
			return y
		}
		// Quantum exponential search finds a uniformly random marked
		// element in expected Θ(√(N/t)) iterations.
		d.Meter.addQueries(math.Sqrt(float64(n) / float64(t)))
		queries += math.Sqrt(float64(n) / float64(t))
		y = better[d.Rng.Intn(len(better))]
	}
}
