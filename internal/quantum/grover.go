package quantum

import (
	"math"
	"math/rand"
)

// This file contains a real statevector simulation of Grover search — the
// primitive underlying the minimum-finding subroutine (Lemma 6). It exists
// to validate the query-accounting model used by the fast simulators in
// this package against actual quantum amplitudes, for search spaces small
// enough to hold a 2^q-dimensional state (q ≤ ~20). Experiment E16 plots
// the resulting success probabilities against the metered query counts.

// GroverState is a statevector over q qubits restricted to the uniform
// real subspace Grover's iteration preserves; amplitudes are tracked per
// basis state (float64, exact up to rounding — the operator is real).
type GroverState struct {
	amps []float64
}

// NewGroverState returns the uniform superposition over n = 2^q states.
func NewGroverState(q int) *GroverState {
	if q < 0 || q > 24 {
		panic("quantum: qubit count out of simulable range") //lint:allow nopanic documented programmer-error precondition: qubit count bounded by the simulator
	}
	n := 1 << uint(q)
	s := &GroverState{amps: make([]float64, n)}
	a := 1 / math.Sqrt(float64(n))
	for i := range s.amps {
		s.amps[i] = a
	}
	return s
}

// Len returns the dimension of the state.
func (s *GroverState) Len() int { return len(s.amps) }

// Iterate applies one Grover iteration — the phase oracle marking the
// given predicate followed by inversion about the mean — in O(N) time.
func (s *GroverState) Iterate(marked func(uint64) bool) {
	// Phase oracle.
	for i := range s.amps {
		if marked(uint64(i)) {
			s.amps[i] = -s.amps[i]
		}
	}
	// Diffusion: a = 2·mean − a.
	var mean float64
	for _, a := range s.amps {
		mean += a
	}
	mean /= float64(len(s.amps))
	for i := range s.amps {
		s.amps[i] = 2*mean - s.amps[i]
	}
}

// SuccessProbability returns the total probability mass on marked states.
func (s *GroverState) SuccessProbability(marked func(uint64) bool) float64 {
	var p float64
	for i, a := range s.amps {
		if marked(uint64(i)) {
			p += a * a
		}
	}
	return p
}

// Measure samples a basis state from the current distribution.
func (s *GroverState) Measure(rng *rand.Rand) uint64 {
	r := rng.Float64()
	var acc float64
	for i, a := range s.amps {
		acc += a * a
		if r < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.amps) - 1)
}

// OptimalIterations returns ⌊(π/4)·√(N/t)⌋, the Grover iteration count
// maximizing success probability for t marked among N states (≥ 1).
func OptimalIterations(n, t uint64) int {
	if t == 0 || t > n {
		return 0
	}
	k := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(n)/float64(t))))
	if k < 1 {
		k = 1
	}
	return k
}

// GroverSearch runs the full statevector algorithm: the optimal number of
// iterations followed by a measurement. It returns the measured state and
// the number of oracle queries spent (one per iteration). With t marked
// states the success probability is ≥ 1 − t/N ≈ 1 for t ≪ N.
func GroverSearch(q int, marked func(uint64) bool, rng *rand.Rand) (result uint64, queries int) {
	s := NewGroverState(q)
	n := uint64(s.Len())
	var t uint64
	for i := uint64(0); i < n; i++ {
		if marked(i) {
			t++
		}
	}
	iters := OptimalIterations(n, t)
	for i := 0; i < iters; i++ {
		s.Iterate(marked)
	}
	return s.Measure(rng), iters
}

// GroverMinimum runs Dürr–Høyer minimum finding with a true statevector
// Grover search as the inner threshold search (instead of the classical
// sampling shortcut used by the DurrHoyer simulator). It is exponentially
// slower than the shortcut — O(N) work per simulated query — and exists
// to validate that the query counts metered by the fast simulators match
// what actual amplitude dynamics require. It returns an index achieving
// the minimum with high probability, plus the total oracle queries spent.
func GroverMinimum(q int, cost func(uint64) uint64, rng *rand.Rand) (best uint64, queries int) {
	n := uint64(1) << uint(q)
	y := uint64(rng.Int63n(int64(n)))
	queries++ // initial threshold evaluation
	for round := 0; round < 4*q+8; round++ {
		marked := func(x uint64) bool { return cost(x) < cost(y) }
		// Count marked states to decide whether we are done (the real
		// algorithm detects this by repeated search failure; the direct
		// count changes only the bookkeeping, not the amplitudes).
		var t uint64
		for i := uint64(0); i < n; i++ {
			if marked(i) {
				t++
			}
		}
		if t == 0 {
			queries += int(math.Ceil(math.Sqrt(float64(n))))
			return y, queries
		}
		s := NewGroverState(q)
		iters := OptimalIterations(n, t)
		for i := 0; i < iters; i++ {
			s.Iterate(marked)
		}
		queries += iters
		x := s.Measure(rng)
		if marked(x) {
			y = x
		}
	}
	return y, queries
}
