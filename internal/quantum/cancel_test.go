package quantum

import (
	"context"
	"math/rand"
	"testing"
)

// TestMinimizersHonorContext verifies every simulator degrades to a
// valid best-seen-so-far index under a canceled context instead of
// scanning the full domain — the cooperative-cancellation contract the
// divide-and-conquer solver relies on.
func TestMinimizersHonorContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 1000
	cost := func(x uint64) uint64 { return n - x } // true min at n-1, last scanned

	for _, tc := range []struct {
		name string
		min  Minimizer
	}{
		{"exact", &Exact{Ctx: ctx, Meter: &Meter{}}},
		{"noisy", &Noisy{Eps: 0.5, Rng: rand.New(rand.NewSource(1)), Ctx: ctx, Meter: &Meter{}}},
		{"durrhoyer", &DurrHoyer{Rng: rand.New(rand.NewSource(1)), Ctx: ctx, Meter: &Meter{}}},
	} {
		got := tc.min.MinIndex(n, cost)
		if got >= n {
			t.Errorf("%s: index %d out of domain", tc.name, got)
		}
		// With the context pre-canceled, only index 0 is evaluated before
		// the scan stops, so the degraded answer must be 0 — never the
		// true minimum at n-1, which a full scan would have found.
		if got != 0 {
			t.Errorf("%s: index = %d, want 0 (only evaluated entry)", tc.name, got)
		}
	}

	// Sanity: without a context the same minimizers find the true minimum.
	for _, tc := range []struct {
		name string
		min  Minimizer
	}{
		{"exact", &Exact{}},
		{"durrhoyer", &DurrHoyer{Rng: rand.New(rand.NewSource(2))}},
	} {
		if got := tc.min.MinIndex(n, cost); got != n-1 {
			t.Errorf("%s without ctx: index = %d, want %d", tc.name, got, n-1)
		}
	}
}
