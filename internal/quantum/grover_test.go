package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformStateNormalized(t *testing.T) {
	for q := 0; q <= 8; q++ {
		s := NewGroverState(q)
		var norm float64
		for _, a := range s.amps {
			norm += a * a
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Errorf("q=%d: norm %v", q, norm)
		}
	}
}

func TestNewGroverStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("q=30 did not panic")
		}
	}()
	NewGroverState(30)
}

func TestIteratePreservesNorm(t *testing.T) {
	s := NewGroverState(6)
	marked := func(x uint64) bool { return x == 37 }
	for i := 0; i < 10; i++ {
		s.Iterate(marked)
		var norm float64
		for _, a := range s.amps {
			norm += a * a
		}
		if math.Abs(norm-1) > 1e-10 {
			t.Fatalf("iteration %d: norm %v", i, norm)
		}
	}
}

func TestGroverAmplification(t *testing.T) {
	// Single marked state among 2^8: after ⌊π/4·√N⌋ iterations success
	// probability must exceed 1 − 1/N (theory: sin²((2k+1)θ)).
	q := 8
	marked := func(x uint64) bool { return x == 123 }
	s := NewGroverState(q)
	iters := OptimalIterations(1<<uint(q), 1)
	for i := 0; i < iters; i++ {
		s.Iterate(marked)
	}
	p := s.SuccessProbability(marked)
	if p < 0.99 {
		t.Errorf("success probability %v after %d iterations", p, iters)
	}
	// And the iteration count is Θ(√N): between √N/2 and 2√N.
	sq := math.Sqrt(float64(uint64(1) << uint(q)))
	if float64(iters) < sq/2 || float64(iters) > 2*sq {
		t.Errorf("iteration count %d not Θ(√N)=%v", iters, sq)
	}
}

func TestGroverSuccessProbabilityMatchesTheory(t *testing.T) {
	// p_k = sin²((2k+1)·θ) with sin²θ = t/N. Check a multi-marked case.
	q, tMarked := 7, uint64(5)
	n := uint64(1) << uint(q)
	marked := func(x uint64) bool { return x < tMarked }
	theta := math.Asin(math.Sqrt(float64(tMarked) / float64(n)))
	s := NewGroverState(q)
	for k := 1; k <= 6; k++ {
		s.Iterate(marked)
		want := math.Pow(math.Sin(float64(2*k+1)*theta), 2)
		got := s.SuccessProbability(marked)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: p=%v, theory %v", k, got, want)
		}
	}
}

func TestGroverSearchFindsMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	hits := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		target := uint64(rng.Intn(256))
		got, queries := GroverSearch(8, func(x uint64) bool { return x == target }, rng)
		if got == target {
			hits++
		}
		if queries < 8 || queries > 32 {
			t.Errorf("queries %d outside Θ(√256)", queries)
		}
	}
	if hits < trials*9/10 {
		t.Errorf("GroverSearch hit rate %d/%d", hits, trials)
	}
}

func TestGroverSearchNoMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	_, queries := GroverSearch(5, func(uint64) bool { return false }, rng)
	if queries != 0 {
		t.Errorf("no-marked search should run zero iterations, got %d", queries)
	}
}

func TestGroverMinimumCorrectAndCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	q := 7
	n := uint64(1) << uint(q)
	okCount := 0
	var totalQueries int
	const trials = 25
	costs := make([]uint64, n)
	for trial := 0; trial < trials; trial++ {
		min := uint64(math.MaxUint64)
		for i := range costs {
			costs[i] = uint64(rng.Intn(1000))
			if costs[i] < min {
				min = costs[i]
			}
		}
		got, queries := GroverMinimum(q, func(x uint64) uint64 { return costs[x] }, rng)
		totalQueries += queries
		if costs[got] == min {
			okCount++
		}
	}
	if okCount < trials*8/10 {
		t.Errorf("GroverMinimum success rate %d/%d", okCount, trials)
	}
	// Average queries should be O(√N·log-ish): far below N.
	avg := float64(totalQueries) / trials
	if avg > float64(n)/2 {
		t.Errorf("average queries %v not sublinear in N=%d", avg, n)
	}
	if avg < math.Sqrt(float64(n)) {
		t.Errorf("average queries %v below √N — accounting too optimistic", avg)
	}
}

func TestGroverMinimumQueriesTrackDurrHoyerModel(t *testing.T) {
	// The fast DurrHoyer simulator's metered queries and the statevector
	// implementation's actual queries must agree within a small factor on
	// identical instances — the validation experiment E16 relies on.
	rng := rand.New(rand.NewSource(204))
	q := 6
	n := uint64(1) << uint(q)
	costs := make([]uint64, n)
	for i := range costs {
		costs[i] = uint64(rng.Intn(500))
	}
	cost := func(x uint64) uint64 { return costs[x] }

	var sv float64
	const reps = 20
	for r := 0; r < reps; r++ {
		_, qs := GroverMinimum(q, cost, rng)
		sv += float64(qs)
	}
	sv /= reps

	meter := &Meter{}
	dh := &DurrHoyer{Rng: rng, Meter: meter}
	for r := 0; r < reps; r++ {
		dh.MinIndex(n, cost)
	}
	model := meter.Queries / reps

	ratio := sv / model
	if ratio < 0.2 || ratio > 8 {
		t.Errorf("statevector %.1f vs model %.1f queries: ratio %.2f out of band", sv, model, ratio)
	}
}
