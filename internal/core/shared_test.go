package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

func randomRoots(n, m int, rng *rand.Rand) []*truthtable.Table {
	out := make([]*truthtable.Table, m)
	for i := range out {
		out[i] = truthtable.Random(n, rng)
	}
	return out
}

func TestSharedSingleRootEqualsPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%5
		f := truthtable.Random(n, rng)
		plain := OptimalOrdering(f, nil)
		shared := OptimalOrderingShared([]*truthtable.Table{f}, nil)
		if plain.MinCost != shared.MinCost {
			t.Fatalf("n=%d: single-root shared %d != plain %d", n, shared.MinCost, plain.MinCost)
		}
	}
}

func TestSharedAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%4 // 2..5
		m := 2 + trial%3 // 2..4 roots
		roots := randomRoots(n, m, rng)
		dp := OptimalOrderingShared(roots, nil)
		bf := BruteForceShared(roots, OBDD)
		if dp.MinCost != bf.MinCost {
			t.Fatalf("n=%d m=%d: shared DP %d != brute %d", n, m, dp.MinCost, bf.MinCost)
		}
		if got := SharedSizeUnder(roots, dp.Ordering, OBDD); got != dp.Size {
			t.Fatalf("shared ordering does not realize its size: %d vs %d", got, dp.Size)
		}
	}
}

func TestSharedZDDAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		n := 2 + trial%4
		roots := randomRoots(n, 2, rng)
		dp := OptimalOrderingShared(roots, &SolveOptions{Rule: ZDD})
		bf := BruteForceShared(roots, ZDD)
		if dp.MinCost != bf.MinCost {
			t.Fatalf("ZDD shared: DP %d != brute %d", dp.MinCost, bf.MinCost)
		}
	}
}

func TestSharedDuplicateRootsAddNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	f := truthtable.Random(5, rng)
	one := OptimalOrderingShared([]*truthtable.Table{f}, nil)
	three := OptimalOrderingShared([]*truthtable.Table{f, f, f}, nil)
	if one.MinCost != three.MinCost {
		t.Fatalf("duplicated roots changed the shared size: %d vs %d", one.MinCost, three.MinCost)
	}
}

func TestSharedComplementSharesNothingButCosts(t *testing.T) {
	// f and ¬f share no nonterminal nodes in a diagram without complement
	// edges? They CAN share lower structure… but never exceed the sum.
	rng := rand.New(rand.NewSource(125))
	f := truthtable.Random(5, rng)
	g := f.Not()
	shared := OptimalOrderingShared([]*truthtable.Table{f, g}, nil)
	solo := OptimalOrdering(f, nil)
	if shared.MinCost < solo.MinCost {
		t.Fatalf("shared forest smaller than one of its members")
	}
	if shared.MinCost > 2*solo.MinCost {
		t.Fatalf("shared forest exceeds the sum of members: %d > 2·%d", shared.MinCost, solo.MinCost)
	}
}

func TestSharedBoundsAgainstSumAndMax(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	for trial := 0; trial < 10; trial++ {
		n := 3 + trial%3
		roots := randomRoots(n, 3, rng)
		shared := OptimalOrderingShared(roots, nil)
		var sum, max uint64
		for _, f := range roots {
			c := OptimalOrdering(f, nil).MinCost
			sum += c
			if c > max {
				max = c
			}
		}
		// The shared optimum lies between the largest member's optimum
		// and the sum of member optima… the lower bound is subtle
		// (members must share one ordering), so check only ≤ sum under a
		// common ordering and ≥ max of per-member sizes *under the shared
		// ordering's own profile consistency*:
		if shared.MinCost > sum {
			// Sharing can never exceed per-member optima summed? It can:
			// the shared ordering may be bad for an individual root. But
			// it cannot exceed the sum of the members' sizes under the
			// shared optimum's own ordering.
			var sumUnder uint64
			for _, f := range roots {
				for _, w := range Profile(f, shared.Ordering, OBDD, nil) {
					sumUnder += w
				}
			}
			if shared.MinCost > sumUnder {
				t.Fatalf("shared %d exceeds the per-root sum %d under its own ordering", shared.MinCost, sumUnder)
			}
		}
		_ = max
	}
}

func TestSharedAdderForest(t *testing.T) {
	// All outputs of a 3-bit adder in one forest: the known-good
	// interleaved ordering must be optimal or near; the shared optimum is
	// well below the sum of per-output optima (sharing pays).
	bits := 3
	var roots []*truthtable.Table
	for i := 0; i < bits; i++ {
		roots = append(roots, adderSumBit(bits, i))
	}
	roots = append(roots, adderCarry(bits))
	shared := OptimalOrderingShared(roots, nil)
	var sum uint64
	for _, f := range roots {
		sum += OptimalOrdering(f, nil).MinCost
	}
	if shared.MinCost >= sum {
		t.Errorf("adder forest does not share: %d ≥ %d", shared.MinCost, sum)
	}
	// Profile must sum to MinCost.
	var psum uint64
	for _, w := range shared.Profile {
		psum += w
	}
	if psum != shared.MinCost {
		t.Errorf("shared profile sum %d != MinCost %d", psum, shared.MinCost)
	}
}

func adderSumBit(bits, i int) *truthtable.Table {
	return truthtable.FromFunc(2*bits, func(x []bool) bool {
		var a, b uint64
		for j := 0; j < bits; j++ {
			if x[j] {
				a |= 1 << uint(j)
			}
			if x[bits+j] {
				b |= 1 << uint(j)
			}
		}
		return (a+b)>>uint(i)&1 == 1
	})
}

func adderCarry(bits int) *truthtable.Table {
	return adderSumBit(bits, bits)
}

func TestSharedProfileMatchesBDDManagerUnion(t *testing.T) {
	// Structural cross-check: the shared DP width equals the number of
	// distinct reference-builder nodes per level across all roots. We use
	// the memoized reference builder with a shared memo.
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 10; trial++ {
		n := 2 + trial%4
		roots := randomRoots(n, 3, rng)
		ord := truthtable.RandomOrdering(n, rng)
		widths := SharedProfile(roots, ord, OBDD)
		var total uint64
		for _, w := range widths {
			total += w
		}
		// Reference: one refBuilder shared across roots counts each
		// distinct (level, subfunction) node once.
		b := &refBuilder{rule: OBDD, memo: map[string]uint32{}, next: 2}
		for _, f := range roots {
			b.build(f, ord)
		}
		if int(total) != b.nodes {
			t.Fatalf("n=%d: shared DP total %d != reference %d", n, total, b.nodes)
		}
	}
}

func TestSharedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no roots":       func() { OptimalOrderingShared(nil, nil) },
		"mixed vars":     func() { OptimalOrderingShared([]*truthtable.Table{truthtable.New(2), truthtable.New(3)}, nil) },
		"profile empty":  func() { SharedProfile(nil, nil, OBDD) },
		"profile perm":   func() { SharedProfile([]*truthtable.Table{truthtable.New(2)}, truthtable.Ordering{0, 0}, OBDD) },
		"brute no roots": func() { BruteForceShared(nil, OBDD) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSharedMeterLeakFree(t *testing.T) {
	rng := rand.New(rand.NewSource(128))
	m := &Meter{}
	OptimalOrderingShared(randomRoots(5, 3, rng), &SolveOptions{Meter: m})
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after shared run", m.LiveCells)
	}
}
