package core

import (
	"testing"

	"obddopt/internal/truthtable"
)

// TestExhaustiveFourVariables sweeps all 2^16 four-variable functions and
// checks that the dynamic program and branch and bound agree, and that
// every reported ordering realizes its claimed cost. It runs in a few
// seconds and is skipped under -short.
func TestExhaustiveFourVariables(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in short mode")
	}
	var worst uint64
	for bits := 0; bits < 1<<16; bits++ {
		f := truthtable.New(4)
		for idx := uint64(0); idx < 16; idx++ {
			f.Set(idx, bits>>idx&1 == 1)
		}
		fs := OptimalOrdering(f, nil)
		bb := BranchAndBound(f, nil)
		if fs.MinCost != bb.MinCost {
			t.Fatalf("function %04x: FS %d != B&B %d", bits, fs.MinCost, bb.MinCost)
		}
		if got := SizeUnder(f, fs.Ordering, OBDD, nil); got != fs.Size {
			t.Fatalf("function %04x: ordering does not realize cost", bits)
		}
		if fs.MinCost > worst {
			worst = fs.MinCost
		}
	}
	// The per-level profile bound allows at most 1+2+4+2 = 9 nonterminal
	// nodes for n = 4, but no function's OPTIMAL ordering attains it: the
	// exhaustive maximum of the optimum is 8 (measured by this sweep and
	// pinned here against regressions).
	if worst != 8 {
		t.Errorf("worst-case 4-variable optimal MinCost = %d, expected 8", worst)
	}
}
