package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// restrictedBrute finds min total width over all orderings consistent with
// the block partition, by explicit permutation enumeration — the reference
// for OptimalOrderingBlocks.
func restrictedBrute(f *truthtable.Table, blocks []bitops.Mask, rule Rule) uint64 {
	best := ^uint64(0)
	ws := acquireWorkspace()
	defer ws.release()
	var rec func(c *fsContext, bi int)
	rec = func(c *fsContext, bi int) {
		if bi == len(blocks) {
			if c.cost < best {
				best = c.cost
			}
			return
		}
		remaining := blocks[bi] & c.free
		if remaining == 0 {
			rec(c, bi+1)
			return
		}
		for _, v := range remaining.Members(nil) {
			next, _ := compact(c, v, rule, nil, ws)
			rec(next, bi)
			ws.recycle(next)
		}
	}
	rec(baseContext(f), 0)
	return best
}

func TestBlocksSingleBlockEqualsFS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 3 + trial%4
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, nil)
		br := OptimalOrderingBlocks(f, []bitops.Mask{bitops.FullMask(n)}, nil)
		if br.MinCost != fs.MinCost {
			t.Fatalf("n=%d: single block %d != FS %d", n, br.MinCost, fs.MinCost)
		}
		if !br.Ordering.Valid() || len(br.Ordering) != n {
			t.Fatalf("single block ordering invalid: %v", br.Ordering)
		}
	}
}

func TestBlocksMatchRestrictedBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 20; trial++ {
		n := 4 + trial%3 // 4..6
		f := truthtable.Random(n, rng)
		// Random 2-block partition covering all variables.
		var b1 bitops.Mask
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				b1 = b1.With(v)
			}
		}
		if b1 == 0 || b1 == bitops.FullMask(n) {
			b1 = bitops.Mask(0b11)
		}
		b2 := bitops.FullMask(n) &^ b1
		blocks := []bitops.Mask{b1, b2}
		got := OptimalOrderingBlocks(f, blocks, nil)
		want := restrictedBrute(f, blocks, OBDD)
		if got.MinCost != want {
			t.Fatalf("n=%d blocks=%#b/%#b: FS* %d != brute %d (f=%s)",
				n, b1, b2, got.MinCost, want, f.Hex())
		}
		// Constrained optimum is an upper bound on the unconstrained one.
		if fs := OptimalOrdering(f, nil); got.MinCost < fs.MinCost {
			t.Fatalf("constrained optimum beat unconstrained")
		}
		// Block costs must sum to total.
		var sum uint64
		for _, c := range got.BlockCosts {
			sum += c
		}
		if sum != got.MinCost {
			t.Fatalf("block costs %v do not sum to %d", got.BlockCosts, got.MinCost)
		}
	}
}

func TestBlocksThreeWay(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := truthtable.Random(6, rng)
	blocks := []bitops.Mask{0b000011, 0b001100, 0b110000}
	got := OptimalOrderingBlocks(f, blocks, nil)
	want := restrictedBrute(f, blocks, OBDD)
	if got.MinCost != want {
		t.Fatalf("three-way: FS* %d != brute %d", got.MinCost, want)
	}
	// The ordering must respect the block structure bottom-up.
	for i, v := range got.Ordering {
		var blockOf int
		for bi, b := range blocks {
			if b.Has(v) {
				blockOf = bi
			}
		}
		wantBlock := i / 2
		if blockOf != wantBlock {
			t.Fatalf("ordering position %d (var %d) in block %d, want %d", i, v, blockOf, wantBlock)
		}
	}
}

func TestBlocksSingletonsGiveFixedOrdering(t *testing.T) {
	// Singleton blocks pin the ordering completely: MinCost must equal
	// the profile sum of that exact ordering.
	rng := rand.New(rand.NewSource(23))
	f := truthtable.Random(5, rng)
	ord := truthtable.Ordering{3, 1, 4, 0, 2}
	blocks := make([]bitops.Mask, 5)
	for i, v := range ord {
		blocks[i] = bitops.Mask(0).With(v)
	}
	got := OptimalOrderingBlocks(f, blocks, nil)
	widths := Profile(f, ord, OBDD, nil)
	var sum uint64
	for _, w := range widths {
		sum += w
	}
	if got.MinCost != sum {
		t.Fatalf("singleton blocks: %d != fixed-ordering cost %d", got.MinCost, sum)
	}
	for i := range ord {
		if got.Ordering[i] != ord[i] {
			t.Fatalf("singleton blocks ordering %v != %v", got.Ordering, ord)
		}
	}
}

func TestBlocksPartialCoverage(t *testing.T) {
	// Blocks covering only the bottom two levels: cost counts only those
	// levels and the ordering has length 2.
	rng := rand.New(rand.NewSource(29))
	f := truthtable.Random(5, rng)
	blocks := []bitops.Mask{0b00011}
	got := OptimalOrderingBlocks(f, blocks, nil)
	if len(got.Ordering) != 2 {
		t.Fatalf("partial coverage ordering length %d", len(got.Ordering))
	}
	want := restrictedBrute(f, blocks, OBDD)
	if got.MinCost != want {
		t.Fatalf("partial coverage: %d != %d", got.MinCost, want)
	}
}

func TestBlocksPanics(t *testing.T) {
	f := truthtable.Random(4, rand.New(rand.NewSource(1)))
	for name, blocks := range map[string][]bitops.Mask{
		"empty block":  {0},
		"overlap":      {0b0011, 0b0110},
		"out of range": {0b10000},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			OptimalOrderingBlocks(f, blocks, nil)
		}()
	}
}

func TestBlocksZDDRule(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := truthtable.Random(5, rng)
	blocks := []bitops.Mask{0b00111, 0b11000}
	got := OptimalOrderingBlocks(f, blocks, &SolveOptions{Rule: ZDD})
	want := restrictedBrute(f, blocks, ZDD)
	if got.MinCost != want {
		t.Fatalf("ZDD blocks: %d != %d", got.MinCost, want)
	}
}

func TestBlocksMeterLeakFree(t *testing.T) {
	m := &Meter{}
	f := achilles(3)
	OptimalOrderingBlocks(f, []bitops.Mask{0b000111, 0b111000}, &SolveOptions{Meter: m})
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after blocks run, want 0", m.LiveCells)
	}
}
