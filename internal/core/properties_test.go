package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// This file contains property-based tests of structural invariants of the
// exact algorithms: invariances of the minimum OBDD size under function
// transformations that permute or relabel the diagram without changing
// its shape.

func TestOptimalSizeInvariantUnderRelabeling(t *testing.T) {
	// Renaming variables permutes orderings bijectively, so the optimal
	// size is invariant.
	prop := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%5)
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		sigma := rng.Perm(n)
		a := OptimalOrdering(f, nil).MinCost
		b := OptimalOrdering(f.Permute(sigma), nil).MinCost
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOptimalSizeInvariantUnderComplement(t *testing.T) {
	// ¬f's OBDD is f's with the terminals exchanged: identical
	// nonterminal structure, hence identical MinCost — for every
	// ordering, not just the optimum.
	prop := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%6)
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		wf := Profile(f, ord, OBDD, nil)
		wg := Profile(f.Not(), ord, OBDD, nil)
		for i := range wf {
			if wf[i] != wg[i] {
				return false
			}
		}
		return OptimalOrdering(f, nil).MinCost == OptimalOrdering(f.Not(), nil).MinCost
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOptimalSizeInvariantUnderInputNegation(t *testing.T) {
	// Negating an input flips each node's children at that level: same
	// node count, per level, for every ordering.
	prop := func(seed int64, nRaw, vRaw uint8) bool {
		n := 1 + int(nRaw%6)
		v := int(vRaw) % n
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		g := truthtable.FromFunc(n, func(x []bool) bool {
			y := append([]bool{}, x...)
			y[v] = !y[v]
			return f.Eval(y)
		})
		ord := truthtable.RandomOrdering(n, rng)
		wf := Profile(f, ord, OBDD, nil)
		wg := Profile(g, ord, OBDD, nil)
		for i := range wf {
			if wf[i] != wg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWidthBounds(t *testing.T) {
	// Structural bounds on every profile: level i+1 (bottom-up, i levels
	// below it) has width ≤ min(2^{n−1−i} cells, 2^{2^{i+…}} distinct
	// subfunctions bound simplified to 2^{2^i·…}); we check the cheap
	// cell bound and positivity constraints.
	prop := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%7)
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		widths := Profile(f, ord, OBDD, nil)
		for i, w := range widths {
			// Width at level i+1 is bounded by the number of cells of
			// the table being compacted: 2^{n−1−i}.
			if w > 1<<uint(n-1-i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuasiProfileMonotonicityUnderRestriction(t *testing.T) {
	// Restricting a variable cannot increase the optimal size by more
	// than… in general restriction can reorder arbitrarily, but the
	// minimum OBDD of f|_{x_v=b} never exceeds the minimum OBDD of f
	// (delete the v-level and redirect: a valid, possibly unreduced,
	// diagram of the cofactor exists within f's optimal diagram).
	prop := func(seed int64, nRaw, vRaw uint8, b bool) bool {
		n := 2 + int(nRaw%5)
		v := int(vRaw) % n
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		fb := f.Cofactor(v, b)
		return OptimalOrdering(fb, nil).MinCost <= OptimalOrdering(f, nil).MinCost
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBlockRefinementMonotonicity(t *testing.T) {
	// Refining the block constraint (splitting a block in two) can only
	// increase the constrained optimum: Π(⟨A⊔B⟩) ⊇ Π(⟨A, B⟩).
	prop := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw%4)
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		full := bitops.FullMask(n)
		// Random split of the full set into A ⊔ B, both nonempty.
		var a bitops.Mask
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				a = a.With(v)
			}
		}
		if a == 0 {
			a = 1
		}
		if a == full {
			a = full.Without(n - 1)
		}
		b := full &^ a
		coarse := OptimalOrderingBlocks(f, []bitops.Mask{full}, nil).MinCost
		fine := OptimalOrderingBlocks(f, []bitops.Mask{a, b}, nil).MinCost
		return coarse <= fine
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinCostNeverExceedsQuasiReducedBound(t *testing.T) {
	// The OBDD of any n-variable function has at most 2^n − 1 …
	// precisely: Σ_i min(2^{n−1−i}, #subfunctions) nonterminals; the
	// crude bound MinCost < 2^n suffices to catch counting blowups.
	prop := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%7)
		rng := rand.New(rand.NewSource(seed))
		f := truthtable.Random(n, rng)
		return OptimalOrdering(f, nil).MinCost < 1<<uint(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	// Identical inputs give identical results, including tie-breaking of
	// the reported ordering.
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 5; trial++ {
		f := truthtable.Random(6, rng)
		a := OptimalOrdering(f, nil)
		b := OptimalOrdering(f, nil)
		if a.MinCost != b.MinCost {
			t.Fatalf("nondeterministic cost")
		}
		for i := range a.Ordering {
			if a.Ordering[i] != b.Ordering[i] {
				t.Fatalf("nondeterministic ordering: %v vs %v", a.Ordering, b.Ordering)
			}
		}
	}
}
