package core

import (
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// BruteForceOptions configures the exhaustive baseline.
type BruteForceOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule Rule
	// Meter, if non-nil, accumulates operation counts.
	Meter *Meter
	// Prune enables branch-and-bound pruning: a partial ordering whose
	// accumulated cost already reaches the best known total is abandoned.
	// With Prune false the search visits every ordering prefix, realizing
	// the full O*(n!·2^n) work the papers quote for brute force.
	Prune bool
}

func (o *BruteForceOptions) rule() Rule {
	if o == nil {
		return OBDD
	}
	return o.Rule
}

func (o *BruteForceOptions) meter() *Meter {
	if o == nil {
		return nil
	}
	return o.Meter
}

// BruteForce finds the exact optimal ordering by exhaustive search over all
// n! orderings, sharing work across common prefixes (a DFS over ordering
// prefixes, each step one table compaction). This is the trivial baseline
// whose O*(n!·2^n) bound both papers quote; it exists to validate FS and to
// realize experiment E5. It returns the same Result an FS run would.
func BruteForce(tt *truthtable.Table, opts *BruteForceOptions) *Result {
	rule, m := opts.rule(), opts.meter()
	obs.Metrics.RunsStarted.Inc()
	n := tt.NumVars()
	base := baseContext(tt)
	m.alloc(base.cells())

	best := ^uint64(0)
	bestOrder := make([]int, n)
	order := make([]int, 0, n)
	var searchOps, searchCompactions, evals uint64

	var dfs func(c *context)
	dfs = func(c *context) {
		if len(order) == n {
			if m != nil {
				m.Evaluations++
			}
			evals++
			if c.cost < best {
				best = c.cost
				copy(bestOrder, order)
			}
			return
		}
		if opts != nil && opts.Prune && c.cost >= best {
			return
		}
		ops := c.cells() / 2
		for v := 0; v < n; v++ {
			if !c.free.Has(v) {
				continue
			}
			next, _ := compact(c, v, rule, m)
			searchOps += ops
			searchCompactions++
			order = append(order, v)
			dfs(next)
			order = order[:len(order)-1]
			m.free(next.cells())
		}
	}
	dfs(base)
	m.free(base.cells())
	obs.Metrics.CellOps.Add(searchOps)
	obs.Metrics.Compactions.Add(searchCompactions)
	obs.Metrics.Evaluations.Add(evals)
	finishMetrics(m)

	return finishResult(tt, nil, truthtable.Ordering(bestOrder), best, rule, m)
}
