package core

import (
	stdctx "context"

	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// BruteForceOptions configures the exhaustive baseline.
type BruteForceOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule Rule
	// Meter, if non-nil, accumulates operation counts.
	Meter *Meter
	// Prune enables branch-and-bound pruning: a partial ordering whose
	// accumulated cost already reaches the best known total is abandoned.
	// With Prune false the search visits every ordering prefix, realizing
	// the full O*(n!·2^n) work the papers quote for brute force.
	Prune bool
	// Budget bounds the run's resources (live cells, prefix
	// extensions); the zero value is unlimited. Enforced only by
	// BruteForceCtx.
	Budget Budget
}

func (o *BruteForceOptions) rule() Rule {
	if o == nil {
		return OBDD
	}
	return o.Rule
}

func (o *BruteForceOptions) meter() *Meter {
	if o == nil {
		return nil
	}
	return o.Meter
}

func (o *BruteForceOptions) budget() Budget {
	if o == nil {
		return Budget{}
	}
	return o.Budget
}

// BruteForce finds the exact optimal ordering by exhaustive search over all
// n! orderings, sharing work across common prefixes (a DFS over ordering
// prefixes, each step one table compaction). This is the trivial baseline
// whose O*(n!·2^n) bound both papers quote; it exists to validate FS and to
// realize experiment E5. It returns the same Result an FS run would.
func BruteForce(tt *truthtable.Table, opts *BruteForceOptions) *Result {
	return mustResult(BruteForceCtx(nil, tt, opts))
}

// BruteForceCtx is BruteForce under a context and resource budget: the
// checkpoint is polled once per prefix extension. Like the
// branch-and-bound search, an early stop returns the best incumbent
// found so far (if any complete ordering was reached) alongside the
// ErrCanceled / ErrBudgetExceeded error.
func BruteForceCtx(ctx stdctx.Context, tt *truthtable.Table, opts *BruteForceOptions) (*Result, error) {
	rule := opts.rule()
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	n := tt.NumVars()
	ws := acquireWorkspace()
	defer ws.release()
	base := baseContext(tt)
	m.alloc(base.cells())

	best := ^uint64(0)
	found := false
	bestOrder := make([]int, n)
	order := make([]int, 0, n)
	var searchOps, searchCompactions, evals uint64

	var dfs func(c *fsContext) error
	dfs = func(c *fsContext) error {
		if len(order) == n {
			if m != nil {
				m.Evaluations++
			}
			evals++
			if c.cost < best {
				best = c.cost
				copy(bestOrder, order)
				found = true
			}
			return nil
		}
		if opts != nil && opts.Prune && c.cost >= best {
			return nil
		}
		ops := c.cells() / 2
		for v := 0; v < n; v++ {
			if !c.free.Has(v) {
				continue
			}
			if err := lim.spend(1); err != nil {
				return err
			}
			next, _ := compact(c, v, rule, m, ws)
			searchOps += ops
			searchCompactions++
			order = append(order, v)
			err := dfs(next)
			order = order[:len(order)-1]
			m.free(next.cells())
			ws.recycle(next)
			if err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(base)
	m.free(base.cells())
	obs.Metrics.CellOps.Add(searchOps)
	obs.Metrics.Compactions.Add(searchCompactions)
	obs.Metrics.Evaluations.Add(evals)

	if err != nil {
		if found {
			return finishResult(tt, nil, truthtable.Ordering(append([]int(nil), bestOrder...)), best, rule, m), err
		}
		return nil, err
	}
	finishMetrics(m)
	return finishResult(tt, nil, truthtable.Ordering(bestOrder), best, rule, m), nil
}
