package core

import (
	"testing"

	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

// seedBits packs the first 64 rows of tt into the (n, bits) seed shape
// the fuzz targets use.
func seedBits(tt *truthtable.Table) (int, uint64) {
	var bits uint64
	for idx := uint64(0); idx < tt.Size() && idx < 64; idx++ {
		if tt.Bit(idx) {
			bits |= 1 << idx
		}
	}
	return tt.NumVars(), bits
}

// FuzzFSvsBrute cross-validates the Friedman–Supowit dynamic program
// against the factorial brute-force baseline on random functions of up
// to 6 variables: the DP's MINCOST must equal the true minimum over all
// n! orderings, and the ordering the DP reconstructs must actually
// achieve that cost. Run the seed corpus with plain `go test`; explore
// with `go test -fuzz FuzzFSvsBrute ./internal/core`.
func FuzzFSvsBrute(f *testing.F) {
	f.Add(0, uint64(0))
	f.Add(1, uint64(1))
	f.Add(3, uint64(0xCA))            // the 3-variable multiplexer
	f.Add(4, uint64(0x8000))          // AND of 4 variables
	f.Add(5, uint64(0x96696996_00FF)) // parity-ish upper half
	f.Add(6, uint64(0x0123456789ABCDEF))
	// Structured families with known ordering sensitivity: the
	// Achilles-heel functions (blocked vs interleaved orderings diverge
	// exponentially) and thresholds (totally symmetric, every ordering
	// tied) probe the DP from opposite extremes.
	for _, tt := range []*truthtable.Table{
		funcs.AchillesHeel(2),
		funcs.AchillesHeel(3),
		funcs.Threshold(4, 1),
		funcs.Threshold(5, 2),
		funcs.Threshold(6, 3),
	} {
		n, bits := seedBits(tt)
		f.Add(n, bits)
	}
	f.Fuzz(func(t *testing.T, n int, bits uint64) {
		n = ((n % 7) + 7) % 7 // fold the arity into [0, 6]
		tt := truthtable.New(n)
		size := tt.Size()
		for idx := uint64(0); idx < size && idx < 64; idx++ {
			tt.Set(idx, bits>>idx&1 == 1)
		}

		fs := OptimalOrdering(tt, nil)
		bf := BruteForce(tt, nil)
		if fs.MinCost != bf.MinCost {
			t.Fatalf("n=%d bits=%#x: FS MinCost %d != brute force %d",
				n, bits, fs.MinCost, bf.MinCost)
		}
		if !fs.Ordering.Valid() {
			t.Fatalf("n=%d bits=%#x: FS returned invalid ordering %v", n, bits, fs.Ordering)
		}
		// The reconstructed ordering must achieve the claimed minimum:
		// SizeUnder counts nonterminals plus terminals, MinCost only the
		// nonterminals.
		want := fs.MinCost + uint64(fs.Terminals)
		if got := SizeUnder(tt, fs.Ordering, fs.Rule, nil); got != want {
			t.Fatalf("n=%d bits=%#x: ordering %v has size %d, FS claims %d",
				n, bits, fs.Ordering, got, want)
		}
		// And the level profile is an accounting of that same cost.
		var sum uint64
		for _, w := range fs.Profile {
			sum += w
		}
		if sum != fs.MinCost {
			t.Fatalf("n=%d bits=%#x: profile %v sums to %d, want %d",
				n, bits, fs.Profile, sum, fs.MinCost)
		}
	})
}
