package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// achilles builds f = x0·x1 + x2·x3 + … over 2k variables, the Fig. 1
// ordering-sensitivity function.
func achilles(pairs int) *truthtable.Table {
	n := 2 * pairs
	return truthtable.FromFunc(n, func(x []bool) bool {
		for i := 0; i < n; i += 2 {
			if x[i] && x[i+1] {
				return true
			}
		}
		return false
	})
}

func TestOptimalOrderingAchilles(t *testing.T) {
	// The minimum OBDD of the Fig. 1 function with k pairs has 2k
	// nonterminal nodes (size 2k+2).
	for pairs := 1; pairs <= 4; pairs++ {
		f := achilles(pairs)
		res := OptimalOrdering(f, nil)
		wantCost := uint64(2 * pairs)
		if res.MinCost != wantCost {
			t.Errorf("pairs=%d: MinCost = %d, want %d", pairs, res.MinCost, wantCost)
		}
		if res.Size != wantCost+2 {
			t.Errorf("pairs=%d: Size = %d, want %d", pairs, res.Size, wantCost+2)
		}
		if !res.Ordering.Valid() {
			t.Errorf("pairs=%d: invalid ordering %v", pairs, res.Ordering)
		}
		// Profile must sum to MinCost.
		var sum uint64
		for _, w := range res.Profile {
			sum += w
		}
		if sum != res.MinCost {
			t.Errorf("pairs=%d: profile sum %d != MinCost %d", pairs, sum, res.MinCost)
		}
	}
}

func TestAchillesBadOrderingExponential(t *testing.T) {
	// Under the blocked ordering (x1, x3, …, x2k−1, x2, x4, …) the OBDD
	// has size 2^{k+1} (Fig. 1 right, k pairs).
	for pairs := 2; pairs <= 4; pairs++ {
		f := achilles(pairs)
		rootFirst := make([]int, 0, 2*pairs)
		for i := 0; i < 2*pairs; i += 2 {
			rootFirst = append(rootFirst, i)
		}
		for i := 1; i < 2*pairs; i += 2 {
			rootFirst = append(rootFirst, i)
		}
		ord := truthtable.FromRootFirst(rootFirst)
		size := SizeUnder(f, ord, OBDD, nil)
		want := uint64(1) << uint(pairs+1)
		if size != want {
			t.Errorf("pairs=%d: blocked-ordering size = %d, want %d", pairs, size, want)
		}
	}
}

func TestOptimalOrderingTinyFunctions(t *testing.T) {
	// n=0: constants.
	for _, v := range []bool{false, true} {
		res := OptimalOrdering(truthtable.Const(0, v), nil)
		if res.MinCost != 0 || res.Size != 1 || res.Terminals != 1 {
			t.Errorf("const-%v: %+v", v, res)
		}
	}
	// Single variable x0: one node, two terminals.
	res := OptimalOrdering(truthtable.Var(1, 0), nil)
	if res.MinCost != 1 || res.Size != 3 {
		t.Errorf("x0: MinCost=%d Size=%d", res.MinCost, res.Size)
	}
	// Constant function of 3 variables: zero nonterminals.
	res = OptimalOrdering(truthtable.Const(3, true), nil)
	if res.MinCost != 0 || res.Size != 1 {
		t.Errorf("const3: MinCost=%d Size=%d", res.MinCost, res.Size)
	}
}

func TestParityOrderingInvariant(t *testing.T) {
	// XOR of n variables: every ordering yields the same OBDD of n
	// nonterminal nodes... actually parity needs 2 nodes per level except
	// the root: 2n−1 nonterminals.
	for n := 2; n <= 6; n++ {
		f := truthtable.FromFunc(n, func(x []bool) bool {
			p := false
			for _, v := range x {
				p = p != v
			}
			return p
		})
		res := OptimalOrdering(f, nil)
		want := uint64(2*n - 1)
		if res.MinCost != want {
			t.Errorf("parity n=%d: MinCost = %d, want %d", n, res.MinCost, want)
		}
		// Parity is totally symmetric: a random ordering gives the same size.
		rng := rand.New(rand.NewSource(int64(n)))
		size := SizeUnder(f, truthtable.RandomOrdering(n, rng), OBDD, nil)
		if size != want+2 {
			t.Errorf("parity n=%d: random-order size = %d, want %d", n, size, want+2)
		}
	}
}

func TestFSAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + trial%5 // n in 2..6
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, nil)
		bf := BruteForce(f, nil)
		if fs.MinCost != bf.MinCost {
			t.Fatalf("n=%d trial=%d: FS MinCost %d != brute force %d (f=%s)",
				n, trial, fs.MinCost, bf.MinCost, f.Hex())
		}
		// Both orderings must realize the optimal size.
		if got := SizeUnder(f, fs.Ordering, OBDD, nil); got != fs.Size {
			t.Fatalf("FS ordering does not realize its size: %d vs %d", got, fs.Size)
		}
		if got := SizeUnder(f, bf.Ordering, OBDD, nil); got != bf.Size {
			t.Fatalf("BF ordering does not realize its size: %d vs %d", got, bf.Size)
		}
	}
}

func TestBruteForcePruningEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + trial%3
		f := truthtable.Random(n, rng)
		plain := BruteForce(f, nil)
		pruned := BruteForce(f, &BruteForceOptions{Prune: true})
		if plain.MinCost != pruned.MinCost {
			t.Fatalf("pruning changed the optimum: %d vs %d", plain.MinCost, pruned.MinCost)
		}
	}
}

func TestAllThreeVariableFunctions(t *testing.T) {
	// Exhaustive check over all 2^8 three-variable functions: FS equals
	// brute force (experiment E7's exhaustive core).
	for bitsVal := 0; bitsVal < 256; bitsVal++ {
		f := truthtable.New(3)
		for idx := uint64(0); idx < 8; idx++ {
			f.Set(idx, bitsVal>>idx&1 == 1)
		}
		fs := OptimalOrdering(f, nil)
		bf := BruteForce(f, nil)
		if fs.MinCost != bf.MinCost {
			t.Fatalf("function %02x: FS %d != BF %d", bitsVal, fs.MinCost, bf.MinCost)
		}
	}
}

func TestOptimalIsLowerBoundOverSampledOrderings(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		n := 4 + trial%4
		f := truthtable.Random(n, rng)
		res := OptimalOrdering(f, nil)
		for s := 0; s < 20; s++ {
			ord := truthtable.RandomOrdering(n, rng)
			if size := SizeUnder(f, ord, OBDD, nil); size < res.Size {
				t.Fatalf("ordering %v beats the claimed optimum: %d < %d", ord, size, res.Size)
			}
		}
	}
}

func TestCompactionDistinguishesLevels(t *testing.T) {
	// f = x̄2·x0 + x2·x1 has subfunctions x0 and x1, both with child pair
	// (false, true). A compaction that deduplicated on (u0,u1) across
	// levels would merge them and undercount. The correct minimum OBDD
	// has 3 nonterminal nodes.
	f := truthtable.FromFunc(3, func(x []bool) bool {
		if x[2] {
			return x[1]
		}
		return x[0]
	})
	res := OptimalOrdering(f, nil)
	if res.MinCost != 3 {
		t.Errorf("mux MinCost = %d, want 3", res.MinCost)
	}
	// Under the ordering with x2 at the root, levels 1 and 2 hold x0 and
	// x1 nodes with identical child pairs; both must be counted.
	ord := truthtable.FromRootFirst([]int{2, 1, 0})
	widths := Profile(f, ord, OBDD, nil)
	if widths[0] != 1 || widths[1] != 1 || widths[2] != 1 {
		t.Errorf("mux profile = %v, want [1 1 1]", widths)
	}
}

func TestProfileMatchesSizeUnder(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 3 + trial%4
		f := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		widths := Profile(f, ord, OBDD, nil)
		var sum uint64
		for _, w := range widths {
			sum += w
		}
		if SizeUnder(f, ord, OBDD, nil) != sum+2 {
			t.Fatalf("SizeUnder inconsistent with Profile")
		}
	}
}

func TestMeterCounts(t *testing.T) {
	m := &Meter{}
	f := achilles(2)
	OptimalOrdering(f, &SolveOptions{Meter: m})
	n := f.NumVars()
	// Cell ops: Σ_k C(n,k)·k·2^{n−k}. For n=4: Σ = 4·8 + 12·2·4 + ... compute.
	var want uint64
	for k := 1; k <= n; k++ {
		want += bitops.Binomial(n, k) * uint64(k) << uint(n-k)
	}
	if m.CellOps != want {
		t.Errorf("CellOps = %d, want %d", m.CellOps, want)
	}
	if m.Compactions == 0 || m.PeakCells == 0 {
		t.Errorf("meter fields not populated: %+v", m)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after run, want 0 (leak)", m.LiveCells)
	}
}

func TestProfilePanicsOnBadOrdering(t *testing.T) {
	f := achilles(1)
	defer func() {
		if recover() == nil {
			t.Errorf("Profile with non-permutation did not panic")
		}
	}()
	Profile(f, truthtable.Ordering{0, 0}, OBDD, nil)
}
