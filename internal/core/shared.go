package core

import (
	stdctx "context"
	"sort"
	"sync"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// This file generalizes the dynamic program to multi-rooted (shared)
// decision diagrams: given m Boolean functions over the same variables,
// it finds the ordering minimizing the size of the shared forest — the
// node count of the multi-rooted DAG in which equal subfunctions of
// *different* roots are represented once. This is the quantity that
// matters for multi-output circuits, where all outputs live in one
// manager. The key observation carries over unchanged: a level's width
// (counting shared nodes once) depends only on the set of variables
// below it, so the subset DP remains exact.
//
// Mechanically, a shared context carries one table per root over the same
// free-variable cells; compaction deduplicates (u0, u1) pairs across all
// roots jointly, preserving the invariant that two cells (of any roots)
// hold equal IDs iff their subfunctions are equal.

// sharedContext is the multi-rooted analogue of context.
type sharedContext struct {
	n      int
	free   bitops.Mask
	tables [][]uint32
	cost   uint64
	nTerm  uint32
}

func (c *sharedContext) nextID() uint32 { return c.nTerm + uint32(c.cost) }

func (c *sharedContext) cells() uint64 {
	return uint64(len(c.tables)) * uint64(len(c.tables[0]))
}

func baseSharedContext(tts []*truthtable.Table) *sharedContext {
	n := tts[0].NumVars()
	tables := make([][]uint32, len(tts))
	for r, tt := range tts {
		if tt.NumVars() != n {
			panic("core: shared roots must have the same variable count") //lint:allow nopanic documented programmer-error precondition: shared roots share one variable set
		}
		tbl := make([]uint32, tt.Size())
		for idx := uint64(0); idx < tt.Size(); idx++ {
			if tt.Bit(idx) {
				tbl[idx] = 1
			}
		}
		tables[r] = tbl
	}
	return &sharedContext{n: n, free: bitops.FullMask(n), tables: tables, cost: 0, nTerm: 2}
}

// recycleShared returns a shared context's table blocks to the
// workspace's arena; the metering-side m.free stays at the call site.
func (ws *workspace) recycleShared(c *sharedContext) {
	for _, t := range c.tables {
		ws.ar.PutU32(t)
	}
	c.tables = nil
}

// compactShared absorbs variable v across all roots with one dedup table
// shared by every root: cross-root equal subfunctions must collapse to a
// single ID. The dedup scratch is reset once and IDs continue across the
// per-root kernel calls, reproducing the papers' joint NODE set. The
// result's tables are drawn from ws's arena; the caller returns them with
// ws.recycleShared (plus the matching m.free) when done.
func compactShared(c *sharedContext, v int, rule Rule, m *Meter, ws *workspace) (*sharedContext, uint64) {
	if !c.free.Has(v) {
		panic("core: compactShared on non-free variable") //lint:allow nopanic internal invariant: compacting a non-free variable is a DP-driver bug
	}
	pos := bitops.RelativePosition(c.free, v)
	size := uint64(len(c.tables[0])) / 2
	next := &sharedContext{
		n:      c.n,
		free:   c.free.Without(v),
		tables: make([][]uint32, len(c.tables)),
		cost:   c.cost,
		nTerm:  c.nTerm,
	}
	resetDedup(&ws.dd, size*uint64(len(c.tables)), c.nextID())
	var width uint64
	for r, tbl := range c.tables {
		out := ws.ar.GetU32(size)
		width += compactInto(out, tbl, pos, rule, c.nextID()+uint32(width), &ws.dd)
		next.tables[r] = out
		m.addCells(size)
	}
	next.cost += width
	m.alloc(next.cells()) // ownership transfers via the returned context; proven by meterbalance's carrier-return rule
	return next, width
}

// SharedResult reports a shared-forest minimization. The JSON tags keep
// it interchangeable with Result in CLI run reports.
type SharedResult struct {
	// N is the variable count; Roots the number of functions.
	N     int `json:"n"`
	Roots int `json:"roots"`
	// Rule is the diagram variant minimized.
	Rule Rule `json:"rule"`
	// MinCost is the minimum number of nonterminal nodes of the shared
	// forest.
	MinCost uint64 `json:"min_cost"`
	// Terminals counts the distinct terminal values across all roots.
	Terminals int `json:"terminals"`
	// Size is MinCost + Terminals.
	Size uint64 `json:"size"`
	// Ordering is an optimal ordering, bottom-up.
	Ordering truthtable.Ordering `json:"ordering"`
	// Profile is the shared width per level under Ordering, bottom-up.
	Profile []uint64 `json:"profile"`
}

// OptimalOrderingShared runs the subset dynamic program on the shared
// forest of the given functions, returning the exact minimum shared node
// count and an ordering achieving it. Time and space are O*(m·3^n) for m
// roots over n variables.
func OptimalOrderingShared(tts []*truthtable.Table, opts *SolveOptions) *SharedResult {
	return mustResult(OptimalOrderingSharedCtx(nil, tts, opts))
}

// OptimalOrderingSharedCtx is OptimalOrderingShared under a context and
// resource budget: the cooperative checkpoint is polled once per table
// compaction. On an early stop every layer table is released and a nil
// result is returned with ErrCanceled / ErrBudgetExceeded (the DP holds
// no incumbent before it completes).
//
// An explicit schedule with opts.Workers > 1 fans each popcount layer
// out over a worker pool with a deterministic merge; results stay
// bit-identical to the serial path (the keep rule is arrival-order
// independent). opts.Workers <= 1 — including the 0 default — runs
// serially.
func OptimalOrderingSharedCtx(ctx stdctx.Context, tts []*truthtable.Table, opts *SolveOptions) (*SharedResult, error) {
	if len(tts) == 0 {
		panic("core: OptimalOrderingShared needs at least one root") //lint:allow nopanic documented programmer-error precondition: at least one root required
	}
	if w := opts.workers(); w > 1 && tts[0].NumVars() > 2 {
		return optimalOrderingSharedParallel(ctx, tts, opts, w)
	}
	rule, tr := opts.rule(), opts.trace()
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	n := tts[0].NumVars()
	ws := acquireWorkspace()
	defer ws.release()
	base := baseSharedContext(tts)
	m.alloc(base.cells())

	// abort releases everything the DP owns — the partial next layer and
	// the current layer (including the base, which this function
	// allocated) — so the meter's live-cell gauge returns to its
	// pre-call value.
	abort := func(layer, next map[bitops.Mask]*sharedContext) {
		for _, c := range next {
			m.free(c.cells())
			ws.recycleShared(c)
		}
		for mask, c := range layer {
			if mask != 0 || c != base {
				m.free(c.cells())
				ws.recycleShared(c)
			}
		}
		m.free(base.cells())
	}

	bestLast := make(map[bitops.Mask]int)
	layer := map[bitops.Mask]*sharedContext{0: base}
	for k := 1; k <= n; k++ {
		var layerStart time.Time
		if tr != nil {
			layerStart = time.Now()
			tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: k, Subsets: len(layer)})
		}
		var layerOps, transitions uint64
		next := make(map[bitops.Mask]*sharedContext)
		for prevMask, prevCtx := range layer {
			ops := prevCtx.cells() / 2
			for v := 0; v < n; v++ {
				if prevMask.Has(v) {
					continue
				}
				if err := lim.spend(1); err != nil {
					abort(layer, next)
					return nil, err
				}
				cand, w := compactShared(prevCtx, v, rule, m, ws)
				layerOps += ops
				transitions++
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindCompaction, K: k, Var: v, Cost: w, CellOps: ops})
				}
				key := prevMask.With(v)
				if cur, ok := next[key]; !ok || cand.cost < cur.cost ||
					(cand.cost == cur.cost && v < bestLast[key]) {
					if ok {
						m.free(cur.cells())
						ws.recycleShared(cur)
					}
					next[key] = cand
					bestLast[key] = v
				} else {
					m.free(cand.cells())
					ws.recycleShared(cand)
				}
			}
		}
		for mask, c := range layer {
			if mask != 0 || c != base {
				m.free(c.cells())
				ws.recycleShared(c)
			}
		}
		layer = next
		obs.Metrics.CellOps.Add(layerOps)
		obs.Metrics.Compactions.Add(transitions)
		if tr != nil {
			ev := obs.Event{
				Kind:    obs.KindLayerEnd,
				K:       k,
				Subsets: len(next),
				CellOps: layerOps,
				Elapsed: time.Since(layerStart),
			}
			if m != nil {
				ev.LiveCells, ev.PeakCells = m.LiveCells, m.PeakCells
			}
			tr.Emit(ev)
		}
	}
	full := bitops.FullMask(n)
	minCost := layer[full].cost
	m.free(layer[full].cells())
	if layer[full] != base {
		ws.recycleShared(layer[full])
		m.free(base.cells())
	}
	finishMetrics(m)

	order := make(truthtable.Ordering, n)
	mask := full
	for i := n - 1; i >= 0; i-- {
		v, ok := bestLast[mask]
		if !ok {
			panic("core: shared DP missing parent pointer") //lint:allow nopanic internal invariant: the DP records a parent pointer for every kept subset
		}
		order[i] = v
		mask = mask.Without(v)
	}
	profile, _ := profileShared(tts, order, rule)
	return &SharedResult{
		N:         n,
		Roots:     len(tts),
		Rule:      rule,
		MinCost:   minCost,
		Terminals: sharedTerminals(tts),
		Size:      minCost + uint64(sharedTerminals(tts)),
		Ordering:  order,
		Profile:   profile,
	}, nil
}

// optimalOrderingSharedParallel is the worker-pool shared DP: each layer's
// transitions fan out over opts.Workers goroutines (the transitions of one
// layer are independent — they read only the previous layer), and the
// coordinator merges the candidates deterministically, sorted by
// (destination mask, absorbed variable), under the same keep rule as the
// serial loop — so results are bit-identical, including tie-breaking.
//
// Meter updates merge once per layer: lane meters contribute CellOps /
// Compactions exactly, while LiveCells/PeakCells are layer-granular (the
// whole candidate layer is accounted at the barrier). Trace events are
// layer-granular, emitted only by the coordinator. MaxNodes is charged at
// the layer barrier; MaxCells is checked after each layer's merge.
func optimalOrderingSharedParallel(ctx stdctx.Context, tts []*truthtable.Table, opts *SolveOptions, workers int) (*SharedResult, error) {
	rule, tr := opts.rule(), opts.trace()
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	obs.Metrics.WorkerSpawns.Add(uint64(workers))
	n := tts[0].NumVars()

	wss := make([]*workspace, workers)
	for w := range wss {
		wss[w] = acquireWorkspace()
	}
	defer func() {
		for _, ws := range wss {
			ws.release()
		}
	}()

	base := baseSharedContext(tts)
	m.alloc(base.cells())

	// releaseLayer returns the current layer's contexts (base excluded) to
	// the meter and the coordinator's arena; it runs only between barriers,
	// after every worker has joined.
	releaseLayer := func(layer map[bitops.Mask]*sharedContext) {
		for mask, c := range layer {
			if mask != 0 || c != base {
				m.free(c.cells())
				wss[0].recycleShared(c)
			}
		}
	}

	type cand struct {
		mask bitops.Mask
		v    int
		ctx  *sharedContext
		ws   *workspace // producing worker's workspace, for recycling
	}
	bestLast := make(map[bitops.Mask]int)
	layer := map[bitops.Mask]*sharedContext{0: base}
	for k := 1; k <= n; k++ {
		var layerStart time.Time
		if tr != nil {
			layerStart = time.Now()
			tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: k, Subsets: len(layer)})
		}
		// Snapshot the previous layer into a deterministic work list.
		prev := make([]bitops.Mask, 0, len(layer))
		for mask := range layer {
			prev = append(prev, mask)
		}
		sort.Slice(prev, func(i, j int) bool { return prev[i] < prev[j] })

		results := make([][]cand, workers)
		meters := make([]*Meter, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local []cand
				lm := &Meter{}
				for i := w; i < len(prev); i += workers {
					// Cooperative checkpoint: ctx polling is safe from any
					// goroutine; budget accounting stays with the
					// coordinator at the barrier.
					if lim.stopped() {
						break
					}
					prevMask := prev[i]
					prevCtx := layer[prevMask]
					for v := 0; v < n; v++ {
						if prevMask.Has(v) {
							continue
						}
						c, _ := compactShared(prevCtx, v, rule, lm, wss[w])
						local = append(local, cand{mask: prevMask.With(v), v: v, ctx: c, ws: wss[w]})
					}
				}
				results[w] = local
				meters[w] = lm
			}(w)
		}
		wg.Wait()

		var all []cand
		for _, r := range results {
			all = append(all, r...)
		}
		// Charge the layer's transitions and poll the context once per
		// barrier; on a stop, drop every candidate before it enters the
		// caller's meter.
		if err := lim.spend(uint64(len(all))); err != nil {
			for _, c := range all {
				c.ws.recycleShared(c.ctx)
			}
			releaseLayer(layer)
			m.free(base.cells())
			return nil, err
		}
		// Deterministic merge in (mask, v) order under the serial keep
		// rule: minimum cost, ties to the smallest absorbed variable.
		sort.Slice(all, func(i, j int) bool {
			if all[i].mask != all[j].mask {
				return all[i].mask < all[j].mask
			}
			return all[i].v < all[j].v
		})
		next := make(map[bitops.Mask]*sharedContext, len(all)/k+1)
		var layerCells, keptCells, layerOps uint64
		for _, c := range all {
			layerCells += c.ctx.cells()
			if cur, ok := next[c.mask]; !ok || c.ctx.cost < cur.cost ||
				(c.ctx.cost == cur.cost && c.v < bestLast[c.mask]) {
				if ok {
					keptCells -= cur.cells()
					c.ws.recycleShared(cur)
				}
				next[c.mask] = c.ctx
				bestLast[c.mask] = c.v
				keptCells += c.ctx.cells()
			} else {
				c.ws.recycleShared(c.ctx)
			}
		}
		var layerCompactions uint64
		for _, lm := range meters {
			layerOps += lm.CellOps
			layerCompactions += lm.Compactions
		}
		if m != nil {
			for _, lm := range meters {
				m.CellOps += lm.CellOps
				m.Compactions += lm.Compactions
				m.Evaluations += lm.Evaluations
			}
			m.alloc(layerCells)
			m.free(layerCells - keptCells)
		}
		releaseLayer(layer)
		layer = next
		obs.Metrics.CellOps.Add(layerOps)
		obs.Metrics.Compactions.Add(layerCompactions)

		// The cell budget is enforced at the layer boundary, after the
		// meter has absorbed the layer's surviving tables.
		if err := lim.check(); err != nil {
			releaseLayer(layer)
			m.free(base.cells())
			return nil, err
		}
		if tr != nil {
			ev := obs.Event{
				Kind:    obs.KindLayerEnd,
				K:       k,
				Subsets: len(next),
				CellOps: layerOps,
				Elapsed: time.Since(layerStart),
			}
			if m != nil {
				ev.LiveCells, ev.PeakCells = m.LiveCells, m.PeakCells
			}
			tr.Emit(ev)
		}
	}

	full := bitops.FullMask(n)
	minCost := layer[full].cost
	m.free(layer[full].cells())
	wss[0].recycleShared(layer[full])
	m.free(base.cells())
	finishMetrics(m)

	order := make(truthtable.Ordering, n)
	mask := full
	for i := n - 1; i >= 0; i-- {
		v, ok := bestLast[mask]
		if !ok {
			panic("core: shared DP missing parent pointer") //lint:allow nopanic internal invariant: the DP records a parent pointer for every kept subset
		}
		order[i] = v
		mask = mask.Without(v)
	}
	profile, _ := profileShared(tts, order, rule)
	return &SharedResult{
		N:         n,
		Roots:     len(tts),
		Rule:      rule,
		MinCost:   minCost,
		Terminals: sharedTerminals(tts),
		Size:      minCost + uint64(sharedTerminals(tts)),
		Ordering:  order,
		Profile:   profile,
	}, nil
}

func sharedTerminals(tts []*truthtable.Table) int {
	seen0, seen1 := false, false
	for _, tt := range tts {
		ones := tt.CountOnes()
		if ones > 0 {
			seen1 = true
		}
		if ones < tt.Size() {
			seen0 = true
		}
	}
	t := 0
	if seen0 {
		t++
	}
	if seen1 {
		t++
	}
	return t
}

func profileShared(tts []*truthtable.Table, order truthtable.Ordering, rule Rule) ([]uint64, uint64) {
	ws := acquireWorkspace()
	defer ws.release()
	base := baseSharedContext(tts)
	c := base
	widths := make([]uint64, 0, len(order))
	var total uint64
	for _, v := range order {
		next, w := compactShared(c, v, rule, nil, ws)
		if c != base {
			ws.recycleShared(c)
		}
		c = next
		widths = append(widths, w)
		total += w
	}
	if c != base {
		ws.recycleShared(c)
	}
	return widths, total
}

// SharedProfile returns the shared per-level widths of the forest of tts
// under the given ordering (no optimization), bottom-up.
func SharedProfile(tts []*truthtable.Table, order truthtable.Ordering, rule Rule) []uint64 {
	if len(tts) == 0 {
		panic("core: SharedProfile needs at least one root") //lint:allow nopanic documented programmer-error precondition: at least one root required
	}
	if len(order) != tts[0].NumVars() || !order.Valid() {
		panic("core: SharedProfile ordering is not a permutation") //lint:allow nopanic documented programmer-error precondition: the ordering must be a permutation
	}
	widths, _ := profileShared(tts, order, rule)
	return widths
}

// SharedSizeUnder returns the total shared-forest size under the ordering.
func SharedSizeUnder(tts []*truthtable.Table, order truthtable.Ordering, rule Rule) uint64 {
	widths := SharedProfile(tts, order, rule)
	var total uint64
	for _, w := range widths {
		total += w
	}
	return total + uint64(sharedTerminals(tts))
}

// BruteForceShared exhaustively searches all orderings for the minimum
// shared forest (validation baseline for OptimalOrderingShared).
func BruteForceShared(tts []*truthtable.Table, rule Rule) *SharedResult {
	if len(tts) == 0 {
		panic("core: BruteForceShared needs at least one root") //lint:allow nopanic documented programmer-error precondition: at least one root required
	}
	n := tts[0].NumVars()
	ws := acquireWorkspace()
	best := ^uint64(0)
	bestOrder := make([]int, n)
	order := make([]int, 0, n)
	var dfs func(c *sharedContext)
	dfs = func(c *sharedContext) {
		if len(order) == n {
			if c.cost < best {
				best = c.cost
				copy(bestOrder, order)
			}
			return
		}
		for v := 0; v < n; v++ {
			if !c.free.Has(v) {
				continue
			}
			next, _ := compactShared(c, v, rule, nil, ws)
			order = append(order, v)
			dfs(next)
			order = order[:len(order)-1]
			ws.recycleShared(next)
		}
	}
	dfs(baseSharedContext(tts))
	ws.release()
	profile, _ := profileShared(tts, bestOrder, rule)
	return &SharedResult{
		N:         n,
		Roots:     len(tts),
		Rule:      rule,
		MinCost:   best,
		Terminals: sharedTerminals(tts),
		Size:      best + uint64(sharedTerminals(tts)),
		Ordering:  truthtable.Ordering(append([]int{}, bestOrder...)),
		Profile:   profile,
	}
}
