package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

func TestParallelMatchesSerialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%7 // 2..8
		f := truthtable.Random(n, rng)
		for _, workers := range []int{1, 2, 4, 7} {
			serial := OptimalOrdering(f, nil)
			par := OptimalOrderingParallel(f, &SolveOptions{Workers: workers})
			if serial.MinCost != par.MinCost {
				t.Fatalf("n=%d w=%d: parallel %d != serial %d", n, workers, par.MinCost, serial.MinCost)
			}
			// Bit-identical including tie-breaking.
			for i := range serial.Ordering {
				if serial.Ordering[i] != par.Ordering[i] {
					t.Fatalf("n=%d w=%d: ordering differs: %v vs %v",
						n, workers, par.Ordering, serial.Ordering)
				}
			}
		}
	}
}

func TestParallelZDD(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 8; trial++ {
		n := 3 + trial%4
		f := truthtable.Random(n, rng)
		serial := OptimalOrdering(f, &SolveOptions{Rule: ZDD})
		par := OptimalOrderingParallel(f, &SolveOptions{Rule: ZDD, Workers: 3})
		if serial.MinCost != par.MinCost {
			t.Fatalf("ZDD n=%d: parallel %d != serial %d", n, par.MinCost, serial.MinCost)
		}
	}
}

func TestParallelMeterConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	f := truthtable.Random(8, rng)
	sm, pm := &Meter{}, &Meter{}
	OptimalOrdering(f, &SolveOptions{Meter: sm})
	OptimalOrderingParallel(f, &SolveOptions{Workers: 4, Meter: pm})
	// Cell operations are identical work regardless of scheduling.
	if sm.CellOps != pm.CellOps {
		t.Errorf("parallel CellOps %d != serial %d", pm.CellOps, sm.CellOps)
	}
	if pm.LiveCells != 0 {
		t.Errorf("parallel meter leaks: LiveCells %d", pm.LiveCells)
	}
	// Peak is layer-granular in the parallel meter: at least the serial
	// rolling-layer peak, bounded by producing a whole layer at once.
	if pm.PeakCells < sm.PeakCells {
		t.Errorf("parallel peak %d below serial %d — accounting broken", pm.PeakCells, sm.PeakCells)
	}
}

func TestParallelDefaultsAndTinyInputs(t *testing.T) {
	// nil options and n ≤ 2 fall back to the serial path.
	for n := 0; n <= 2; n++ {
		var f *truthtable.Table
		if n == 0 {
			f = truthtable.Const(0, true)
		} else {
			f = truthtable.Var(n, 0)
		}
		serial := OptimalOrdering(f, nil)
		par := OptimalOrderingParallel(f, nil)
		if serial.MinCost != par.MinCost {
			t.Errorf("n=%d fallback mismatch", n)
		}
	}
}

func BenchmarkParallelFS12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := truthtable.Random(12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalOrderingParallel(f, nil)
	}
}
