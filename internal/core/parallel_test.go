package core

import (
	stdctx "context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"obddopt/internal/truthtable"
)

// TestParallelMatchesSerialExactly is the bit-identity property of the
// work-stealing pipeline: for every worker count and shard granularity,
// cost, ordering (including tie-breaking) and profile equal the serial
// dynamic program's exactly.
func TestParallelMatchesSerialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 12; trial++ {
		n := 2 + trial%7 // 2..8
		f := truthtable.Random(n, rng)
		serial := OptimalOrdering(f, nil)
		for _, workers := range workerCounts {
			for _, shardBits := range []int{0, 1, 3} {
				par := mustResult(OptimalOrderingParallel(nil, f,
					&SolveOptions{Workers: workers, ShardBits: shardBits}))
				if serial.MinCost != par.MinCost {
					t.Fatalf("n=%d w=%d sb=%d: parallel %d != serial %d",
						n, workers, shardBits, par.MinCost, serial.MinCost)
				}
				// Bit-identical including tie-breaking.
				for i := range serial.Ordering {
					if serial.Ordering[i] != par.Ordering[i] {
						t.Fatalf("n=%d w=%d sb=%d: ordering differs: %v vs %v",
							n, workers, shardBits, par.Ordering, serial.Ordering)
					}
				}
				for i := range serial.Profile {
					if serial.Profile[i] != par.Profile[i] {
						t.Fatalf("n=%d w=%d sb=%d: profile differs: %v vs %v",
							n, workers, shardBits, par.Profile, serial.Profile)
					}
				}
			}
		}
	}
}

func TestParallelZDD(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 8; trial++ {
		n := 3 + trial%4
		f := truthtable.Random(n, rng)
		serial := OptimalOrdering(f, &SolveOptions{Rule: ZDD})
		par := mustResult(OptimalOrderingParallel(nil, f,
			&SolveOptions{Rule: ZDD, Workers: 3, ShardBits: 2}))
		if serial.MinCost != par.MinCost {
			t.Fatalf("ZDD n=%d: parallel %d != serial %d", n, par.MinCost, serial.MinCost)
		}
		for i := range serial.Ordering {
			if serial.Ordering[i] != par.Ordering[i] {
				t.Fatalf("ZDD n=%d: ordering differs: %v vs %v", n, par.Ordering, serial.Ordering)
			}
		}
	}
}

func TestParallelMeterConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	f := truthtable.Random(8, rng)
	sm, pm := &Meter{}, &Meter{}
	OptimalOrdering(f, &SolveOptions{Meter: sm})
	mustResult(OptimalOrderingParallel(nil, f, &SolveOptions{Workers: 4, Meter: pm}))
	// Cell operations and transitions are identical work regardless of
	// scheduling: the pipeline charges every candidate — built or
	// width-counted — the same table size the serial DP charges.
	if sm.CellOps != pm.CellOps {
		t.Errorf("parallel CellOps %d != serial %d", pm.CellOps, sm.CellOps)
	}
	if sm.Compactions != pm.Compactions {
		t.Errorf("parallel Compactions %d != serial %d", pm.Compactions, sm.Compactions)
	}
	if pm.LiveCells != 0 {
		t.Errorf("parallel meter leaks: LiveCells %d", pm.LiveCells)
	}
	// PeakCells is NOT compared against the serial meter: the pipeline's
	// three-layer window can exceed the serial rolling pair, while its
	// width-counting kernel never allocates the dropped candidates the
	// serial DP briefly holds — so the peak may land on either side.
	if pm.PeakCells == 0 {
		t.Errorf("parallel PeakCells = 0, want > 0")
	}
}

func TestParallelDefaultsAndTinyInputs(t *testing.T) {
	// nil options and n ≤ 2 fall back to the serial path.
	for n := 0; n <= 2; n++ {
		var f *truthtable.Table
		if n == 0 {
			f = truthtable.Const(0, true)
		} else {
			f = truthtable.Var(n, 0)
		}
		serial := OptimalOrdering(f, nil)
		par := mustResult(OptimalOrderingParallel(nil, f, nil))
		if serial.MinCost != par.MinCost {
			t.Errorf("n=%d fallback mismatch", n)
		}
	}
}

// TestParallelStealStorm drives the scheduler into its contended regime:
// shards of two ranks (ShardBits: 1) and more workers than layers have
// shards, so nearly every task moves through a steal. Meaningful under
// `go test -race`; correctness is still bit-identity with serial.
func TestParallelStealStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	for trial := 0; trial < 3; trial++ {
		n := 8 + trial // 8..10
		f := truthtable.Random(n, rng)
		serial := OptimalOrdering(f, nil)
		par := mustResult(OptimalOrderingParallel(nil, f,
			&SolveOptions{Workers: 8, ShardBits: 1}))
		if serial.MinCost != par.MinCost {
			t.Fatalf("n=%d: steal-storm cost %d != serial %d", n, par.MinCost, serial.MinCost)
		}
		for i := range serial.Ordering {
			if serial.Ordering[i] != par.Ordering[i] {
				t.Fatalf("n=%d: steal-storm ordering differs: %v vs %v",
					n, par.Ordering, serial.Ordering)
			}
		}
	}
}

// TestParallelPinned checks the no-stealing schedule: results stay
// bit-identical when workers only run shards they claimed themselves.
func TestParallelPinned(t *testing.T) {
	f := truthtable.Random(8, rand.New(rand.NewSource(155)))
	serial := OptimalOrdering(f, nil)
	par := mustResult(OptimalOrderingParallel(nil, f,
		&SolveOptions{Workers: 4, ShardBits: 2, Pinned: true}))
	if serial.MinCost != par.MinCost {
		t.Fatalf("pinned cost %d != serial %d", par.MinCost, serial.MinCost)
	}
	for i := range serial.Ordering {
		if serial.Ordering[i] != par.Ordering[i] {
			t.Fatalf("pinned ordering differs: %v vs %v", par.Ordering, serial.Ordering)
		}
	}
}

// TestParallelCancellationDrains cancels mid-run and checks the drain
// contract: ErrCanceled, nil result, and a meter whose live cells return
// to zero — every deque drained and every engine-owned table released.
func TestParallelCancellationDrains(t *testing.T) {
	f := truthtable.Random(10, rand.New(rand.NewSource(156)))
	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel() // pre-canceled: the first checkpoint stops every worker
	m := &Meter{}
	res, err := OptimalOrderingParallel(ctx, f, &SolveOptions{Workers: 4, Meter: m})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after cancellation, want 0", m.LiveCells)
	}
}

// TestParallelBudgetDrains exhausts the node budget mid-pipeline with
// tiny shards and checks the same drain contract for ErrBudgetExceeded.
func TestParallelBudgetDrains(t *testing.T) {
	f := truthtable.Random(10, rand.New(rand.NewSource(157)))
	m := &Meter{}
	res, err := OptimalOrderingParallel(nil, f, &SolveOptions{
		Workers:   4,
		ShardBits: 1,
		Meter:     m,
		Budget:    Budget{MaxNodes: 500},
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after budget stop, want 0", m.LiveCells)
	}
}

// TestSharedParallelMatchesSerial checks the worker-pool shared-forest DP
// against the serial shared DP: bit-identical cost and ordering.
func TestSharedParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(158))
	for trial := 0; trial < 6; trial++ {
		n := 3 + trial%3 // 3..5
		roots := []*truthtable.Table{
			truthtable.Random(n, rng),
			truthtable.Random(n, rng),
			truthtable.Random(n, rng),
		}
		serial := OptimalOrderingShared(roots, nil)
		for _, workers := range []int{2, 4} {
			m := &Meter{}
			par := mustResult(OptimalOrderingSharedCtx(nil, roots,
				&SolveOptions{Workers: workers, Meter: m}))
			if serial.MinCost != par.MinCost {
				t.Fatalf("n=%d w=%d: shared parallel %d != serial %d",
					n, workers, par.MinCost, serial.MinCost)
			}
			for i := range serial.Ordering {
				if serial.Ordering[i] != par.Ordering[i] {
					t.Fatalf("n=%d w=%d: shared ordering differs: %v vs %v",
						n, workers, par.Ordering, serial.Ordering)
				}
			}
			if m.LiveCells != 0 {
				t.Errorf("n=%d w=%d: shared parallel leaks %d live cells", n, workers, m.LiveCells)
			}
		}
	}
}

func BenchmarkParallelFS12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := truthtable.Random(12, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustResult(OptimalOrderingParallel(nil, f, nil))
	}
}
